#include "workload/workload.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace moentwine {

void
AliasTable::build(const std::vector<double> &weights)
{
    const std::size_t n = weights.size();
    MOE_ASSERT(n > 0, "alias table over empty weights");
    double total = 0.0;
    for (const double w : weights) {
        MOE_ASSERT(w >= 0.0, "negative weight");
        total += w;
    }
    MOE_ASSERT(total > 0.0, "weights sum to zero");

    prob_.resize(n);
    alias_.resize(n);
    small_.clear();
    large_.clear();
    const double scale = static_cast<double>(n) / total;
    for (std::size_t i = 0; i < n; ++i) {
        prob_[i] = weights[i] * scale;
        alias_[i] = i;
        (prob_[i] < 1.0 ? small_ : large_).push_back(i);
    }
    while (!small_.empty() && !large_.empty()) {
        const std::size_t s = small_.back();
        small_.pop_back();
        const std::size_t l = large_.back();
        large_.pop_back();
        alias_[s] = l;
        prob_[l] = (prob_[l] + prob_[s]) - 1.0;
        (prob_[l] < 1.0 ? small_ : large_).push_back(l);
    }
    // Floating-point residue: leftover slots carry full probability.
    // Zero-weight categories can never be left over (their mass is
    // exactly 0, so a large partner always remains), so this cannot
    // make an impossible category samplable.
    for (const std::size_t l : large_)
        prob_[l] = 1.0;
    for (const std::size_t s : small_)
        prob_[s] = 1.0;
}

std::size_t
AliasTable::sample(Rng &rng) const
{
    const double scaled = rng.uniform() * static_cast<double>(prob_.size());
    std::size_t idx = static_cast<std::size_t>(scaled);
    if (idx >= prob_.size())
        idx = prob_.size() - 1;
    const double frac = scaled - static_cast<double>(idx);
    return frac < prob_[idx] ? idx : alias_[idx];
}

WorkloadGenerator::WorkloadGenerator(const WorkloadConfig &cfg)
    : cfg_(cfg), rng_(cfg.seed)
{
    MOE_ASSERT(cfg.numExperts > 0, "numExperts must be positive");
    MOE_ASSERT(cfg.topK > 0 && cfg.topK <= cfg.numExperts,
               "topK must be in [1, numExperts]");
    MOE_ASSERT(cfg.mixPeriod > 0, "mixPeriod must be positive");
    MOE_ASSERT(cfg.aliasRebuildPeriod > 0,
               "aliasRebuildPeriod must be positive");
    MOE_ASSERT(cfg.aliasDriftTolerance >= 0.0,
               "aliasDriftTolerance must be non-negative");
}

std::vector<double>
WorkloadGenerator::mixtureWeights(int iteration) const
{
    std::vector<double> mix;
    mixtureWeightsInto(iteration, mix);
    return mix;
}

void
WorkloadGenerator::setScenarioMix(const std::vector<double> &weights)
{
    const std::size_t n = allScenarios().size();
    MOE_ASSERT(weights.size() == n,
               "scenario mix must cover every scenario");
    double total = 0.0;
    for (const double w : weights) {
        MOE_ASSERT(w >= 0.0, "negative scenario mix weight");
        total += w;
    }
    MOE_ASSERT(total > 0.0, "scenario mix weights sum to zero");
    externalMix_.assign(n, 0.0);
    for (std::size_t s = 0; s < n; ++s)
        externalMix_[s] = weights[s] / total;
    mixDirty_ = true;
}

void
WorkloadGenerator::clearScenarioMix()
{
    externalMix_.clear();
    mixDirty_ = true;
}

void
WorkloadGenerator::mixtureWeightsInto(int iteration,
                                      std::vector<double> &mix) const
{
    const auto &scenarios = allScenarios();
    if (!externalMix_.empty()) {
        mix = externalMix_;
        return;
    }
    mix.assign(scenarios.size(), 0.0);
    switch (cfg_.mode) {
      case GatingMode::Balanced:
        // Unused, but keep a defined value.
        std::fill(mix.begin(), mix.end(),
                  1.0 / static_cast<double>(scenarios.size()));
        break;
      case GatingMode::SingleScenario:
        for (std::size_t s = 0; s < scenarios.size(); ++s)
            mix[s] = scenarios[s] == cfg_.scenario ? 1.0 : 0.0;
        break;
      case GatingMode::MixedScenario:
        // Smooth cyclic drift: the shared raised-cosine rotation, one
        // full turn per mixPeriod iterations.
        rotatingScenarioMixInto(2.0 * M_PI *
                                    static_cast<double>(iteration) /
                                    static_cast<double>(cfg_.mixPeriod),
                                nullptr, mix);
        break;
    }
}

void
WorkloadGenerator::affinityInto(int iteration, int layer,
                                std::vector<double> &weights) const
{
    weights.assign(static_cast<std::size_t>(cfg_.numExperts), 0.0);
    if (cfg_.mode == GatingMode::Balanced) {
        std::fill(weights.begin(), weights.end(), 1.0);
    } else {
        const auto &scenarios = allScenarios();
        if (cachedLayer_ != layer) {
            scenarioBase_.clear();
            scenarioBase_.reserve(scenarios.size());
            for (const ScenarioKind s : scenarios)
                scenarioBase_.push_back(scenarioAffinity(
                    s, layer, cfg_.numExperts, cfg_.zipf, cfg_.seed));
            cachedLayer_ = layer;
        }
        const auto mix = mixtureWeights(iteration);
        for (std::size_t s = 0; s < scenarios.size(); ++s) {
            if (mix[s] <= 0.0)
                continue;
            const auto &base = scenarioBase_[s];
            for (std::size_t e = 0; e < weights.size(); ++e)
                weights[e] += mix[s] * base[e];
        }
    }
    double total = 0.0;
    for (double w : weights)
        total += w;
    MOE_ASSERT(total > 0.0, "degenerate affinity");
    for (double &w : weights)
        w /= total;
}

std::vector<double>
WorkloadGenerator::affinity(int iteration, int layer) const
{
    std::vector<double> weights;
    affinityInto(iteration, layer, weights);
    return weights;
}

std::vector<std::vector<int>>
WorkloadGenerator::sampleCounts(int iteration, int layer,
                                int tokensPerGroup, int dpGroups)
{
    std::vector<std::vector<int>> counts;
    sampleCountsInto(iteration, layer, tokensPerGroup, dpGroups, counts);
    return counts;
}

void
WorkloadGenerator::sampleCountsInto(int iteration, int layer,
                                    int tokensPerGroup, int dpGroups,
                                    std::vector<std::vector<int>> &counts)
{
    MOE_ASSERT(tokensPerGroup >= 0, "negative token count");
    MOE_ASSERT(dpGroups > 0, "dpGroups must be positive");

    // Rebuild the alias table only when the affinity changed enough to
    // matter: once per layer in the fixed regimes; under a drifting
    // mixture on a coarse cadence — at most every aliasRebuildPeriod
    // iterations, earlier when the mixture's L1 drift since the last
    // build exceeds aliasDriftTolerance. The mixture rotates once per
    // mixPeriod iterations, so between rebuilds the sampler draws from
    // a boundedly stale distribution (the balancers react on EMAs far
    // slower than that).
    // The mixture moves when MixedScenario rotates it, or when an
    // external mix is (or just stopped being) imposed; a dirty mix must
    // be drift-checked even at an unchanged iteration index.
    const bool drifting = cfg_.mode == GatingMode::MixedScenario ||
        !externalMix_.empty() || mixDirty_;
    bool rebuild = alias_.size() == 0 || layer != aliasLayer_;
    bool mixInScratch = false;
    if (!rebuild && drifting &&
        (iteration != aliasIteration_ || mixDirty_)) {
        // Non-monotonic iteration jumps (tests, replays) force a
        // rebuild rather than trusting a stale age computation.
        const bool aged = iteration < aliasIteration_ ||
            iteration - aliasIteration_ >= cfg_.aliasRebuildPeriod;
        if (aged) {
            rebuild = true;
        } else {
            mixtureWeightsInto(iteration, mixScratch_);
            mixInScratch = true;
            if (aliasMix_.size() != mixScratch_.size()) {
                // The last build ran in a fixed regime and recorded no
                // drift reference.
                rebuild = true;
            } else {
                double drift = 0.0;
                for (std::size_t s = 0; s < mixScratch_.size(); ++s)
                    drift += std::abs(mixScratch_[s] - aliasMix_[s]);
                rebuild = drift > cfg_.aliasDriftTolerance;
            }
        }
    }
    mixDirty_ = false;
    if (rebuild) {
        affinityInto(iteration, layer, affinityScratch_);
        alias_.build(affinityScratch_);
        aliasIteration_ = iteration;
        aliasLayer_ = layer;
        if (drifting) {
            // The drift branch already computed this iteration's
            // mixture; adopt it instead of recomputing.
            if (mixInScratch)
                aliasMix_.swap(mixScratch_);
            else
                mixtureWeightsInto(iteration, aliasMix_);
        }
    }

    counts.resize(static_cast<std::size_t>(dpGroups));
    const int draws = tokensPerGroup * cfg_.topK;
    for (auto &row : counts) {
        row.assign(alias_.size(), 0);
        for (int d = 0; d < draws; ++d)
            ++row[alias_.sample(rng_)];
    }
}

std::vector<double>
WorkloadGenerator::expertLoads(const std::vector<std::vector<int>> &counts,
                               int numExperts)
{
    std::vector<double> loads;
    expertLoadsInto(counts, numExperts, loads);
    return loads;
}

void
WorkloadGenerator::expertLoadsInto(
    const std::vector<std::vector<int>> &counts, int numExperts,
    std::vector<double> &loads)
{
    loads.assign(static_cast<std::size_t>(numExperts), 0.0);
    for (const auto &row : counts) {
        MOE_ASSERT(row.size() == loads.size(),
                   "counts row width mismatch");
        for (std::size_t e = 0; e < row.size(); ++e)
            loads[e] += row[e];
    }
}

std::vector<int>
sampleMultinomial(Rng &rng, const std::vector<double> &weights, int draws)
{
    MOE_ASSERT(!weights.empty(), "empty weight vector");
    std::vector<double> cdf(weights.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        MOE_ASSERT(weights[i] >= 0.0, "negative weight");
        acc += weights[i];
        cdf[i] = acc;
    }
    MOE_ASSERT(acc > 0.0, "weights sum to zero");

    std::vector<int> counts;
    sampleMultinomialFromCdf(rng, cdf, acc, draws, counts);
    return counts;
}

void
sampleMultinomialFromCdf(Rng &rng, const std::vector<double> &cdf,
                         double total, int draws, std::vector<int> &counts)
{
    MOE_ASSERT(!cdf.empty(), "empty CDF");
    MOE_ASSERT(total > 0.0, "CDF total must be positive");
    MOE_ASSERT(draws >= 0, "negative draw count");
    counts.assign(cdf.size(), 0);
    for (int d = 0; d < draws; ++d) {
        const double r = rng.uniform() * total;
        const auto it = std::upper_bound(cdf.begin(), cdf.end(), r);
        const auto idx = static_cast<std::size_t>(
            std::min<std::ptrdiff_t>(it - cdf.begin(),
                                     static_cast<std::ptrdiff_t>(
                                         cdf.size() - 1)));
        ++counts[idx];
    }
}

} // namespace moentwine
