#include "workload/workload.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace moentwine {

WorkloadGenerator::WorkloadGenerator(const WorkloadConfig &cfg)
    : cfg_(cfg), rng_(cfg.seed)
{
    MOE_ASSERT(cfg.numExperts > 0, "numExperts must be positive");
    MOE_ASSERT(cfg.topK > 0 && cfg.topK <= cfg.numExperts,
               "topK must be in [1, numExperts]");
    MOE_ASSERT(cfg.mixPeriod > 0, "mixPeriod must be positive");
}

std::vector<double>
WorkloadGenerator::mixtureWeights(int iteration) const
{
    const auto scenarios = allScenarios();
    std::vector<double> mix(scenarios.size(), 0.0);
    switch (cfg_.mode) {
      case GatingMode::Balanced:
        // Unused, but keep a defined value.
        std::fill(mix.begin(), mix.end(),
                  1.0 / static_cast<double>(scenarios.size()));
        break;
      case GatingMode::SingleScenario:
        for (std::size_t s = 0; s < scenarios.size(); ++s)
            mix[s] = scenarios[s] == cfg_.scenario ? 1.0 : 0.0;
        break;
      case GatingMode::MixedScenario: {
        // Smooth cyclic drift: each scenario's weight is a raised
        // cosine with a phase offset, normalised to a convex mixture.
        const double phase = 2.0 * M_PI *
            static_cast<double>(iteration) /
            static_cast<double>(cfg_.mixPeriod);
        double total = 0.0;
        for (std::size_t s = 0; s < scenarios.size(); ++s) {
            const double offset = 2.0 * M_PI * static_cast<double>(s) /
                static_cast<double>(scenarios.size());
            mix[s] = 1.0 + std::cos(phase - offset);
            total += mix[s];
        }
        for (double &m : mix)
            m /= total;
        break;
      }
    }
    return mix;
}

std::vector<double>
WorkloadGenerator::affinity(int iteration, int layer) const
{
    std::vector<double> weights(
        static_cast<std::size_t>(cfg_.numExperts), 0.0);
    if (cfg_.mode == GatingMode::Balanced) {
        std::fill(weights.begin(), weights.end(), 1.0);
    } else {
        const auto scenarios = allScenarios();
        const auto mix = mixtureWeights(iteration);
        for (std::size_t s = 0; s < scenarios.size(); ++s) {
            if (mix[s] <= 0.0)
                continue;
            const auto base = scenarioAffinity(scenarios[s], layer,
                                               cfg_.numExperts, cfg_.zipf,
                                               cfg_.seed);
            for (std::size_t e = 0; e < weights.size(); ++e)
                weights[e] += mix[s] * base[e];
        }
    }
    double total = 0.0;
    for (double w : weights)
        total += w;
    MOE_ASSERT(total > 0.0, "degenerate affinity");
    for (double &w : weights)
        w /= total;
    return weights;
}

std::vector<std::vector<int>>
WorkloadGenerator::sampleCounts(int iteration, int layer,
                                int tokensPerGroup, int dpGroups)
{
    MOE_ASSERT(tokensPerGroup >= 0, "negative token count");
    MOE_ASSERT(dpGroups > 0, "dpGroups must be positive");
    const auto weights = affinity(iteration, layer);
    std::vector<std::vector<int>> counts;
    counts.reserve(static_cast<std::size_t>(dpGroups));
    const int draws = tokensPerGroup * cfg_.topK;
    for (int g = 0; g < dpGroups; ++g)
        counts.push_back(sampleMultinomial(rng_, weights, draws));
    return counts;
}

std::vector<double>
WorkloadGenerator::expertLoads(const std::vector<std::vector<int>> &counts,
                               int numExperts)
{
    std::vector<double> loads(static_cast<std::size_t>(numExperts), 0.0);
    for (const auto &row : counts) {
        MOE_ASSERT(row.size() == loads.size(),
                   "counts row width mismatch");
        for (std::size_t e = 0; e < row.size(); ++e)
            loads[e] += row[e];
    }
    return loads;
}

std::vector<int>
sampleMultinomial(Rng &rng, const std::vector<double> &weights, int draws)
{
    MOE_ASSERT(!weights.empty(), "empty weight vector");
    MOE_ASSERT(draws >= 0, "negative draw count");
    std::vector<double> cdf(weights.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        MOE_ASSERT(weights[i] >= 0.0, "negative weight");
        acc += weights[i];
        cdf[i] = acc;
    }
    MOE_ASSERT(acc > 0.0, "weights sum to zero");

    std::vector<int> counts(weights.size(), 0);
    for (int d = 0; d < draws; ++d) {
        const double r = rng.uniform() * acc;
        const auto it = std::upper_bound(cdf.begin(), cdf.end(), r);
        const auto idx = static_cast<std::size_t>(
            std::min<std::ptrdiff_t>(it - cdf.begin(),
                                     static_cast<std::ptrdiff_t>(
                                         weights.size() - 1)));
        ++counts[idx];
    }
    return counts;
}

} // namespace moentwine
