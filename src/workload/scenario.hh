/**
 * @file
 * Inference scenarios and their expert-affinity structure.
 *
 * The paper profiles expert-selection traces from four benchmark
 * suites — Chat, Coding, Math, and Privacy-agent — and observes (Fig. 12)
 * that (a) expert popularity is strongly skewed, (b) the skew pattern is
 * scenario-specific and stable within a scenario after a short warm-up,
 * and (c) production mixes drift slowly between scenarios.
 *
 * We reproduce that structure synthetically: each scenario draws a
 * deterministic permutation of the expert set and weights experts by a
 * Zipf law over the permuted rank. Different scenarios therefore favour
 * different (but internally consistent) expert subsets, which is the
 * property the balancing experiments depend on.
 */

#ifndef MOENTWINE_WORKLOAD_SCENARIO_HH
#define MOENTWINE_WORKLOAD_SCENARIO_HH

#include <cstdint>
#include <string>
#include <vector>

namespace moentwine {

/** The four benchmark scenarios of the paper's evaluation. */
enum class ScenarioKind
{
    Chat,
    Coding,
    Math,
    Privacy,
};

/** Human-readable scenario name. */
std::string scenarioName(ScenarioKind kind);

/**
 * All four scenarios in the paper's order. Returns a reference to a
 * function-local constant so per-iteration callers (the MixedScenario
 * drift check) stay allocation-free.
 */
const std::vector<ScenarioKind> &allScenarios();

/**
 * Rotating scenario mixture: raised-cosine weights with one phase
 * offset per scenario, optionally scaled by base weights, normalised
 * to a convex mixture. The shared drift shape of the workload
 * generator's MixedScenario mode (phase from the iteration index) and
 * the serving layer's arrival mixes (phase from the virtual clock).
 *
 * @param phase       Rotation phase in radians (one full rotation per
 *                    2π).
 * @param baseWeights Optional per-scenario scale factors (size must
 *                    match allScenarios()); null means uniform.
 */
std::vector<double> rotatingScenarioMix(
    double phase, const std::vector<double> *baseWeights = nullptr);

/**
 * In-place rotatingScenarioMix() for per-iteration callers (the
 * workload generator's drift check): @p mix is assigned, reusing its
 * storage.
 */
void rotatingScenarioMixInto(double phase,
                             const std::vector<double> *baseWeights,
                             std::vector<double> &mix);

/**
 * Per-scenario, per-layer expert affinity: unnormalised selection
 * weights for every expert.
 *
 * @param kind       Scenario.
 * @param layer      MoE layer index (expert specialisation differs by
 *                   layer).
 * @param numExperts Routed experts in the layer.
 * @param zipf       Zipf exponent of the popularity skew (≥ 0; zero
 *                   yields a uniform distribution).
 * @param seed       Base seed; the same (seed, kind, layer) triple
 *                   always produces the same affinity vector.
 */
std::vector<double> scenarioAffinity(ScenarioKind kind, int layer,
                                     int numExperts, double zipf,
                                     uint64_t seed);

} // namespace moentwine

#endif // MOENTWINE_WORKLOAD_SCENARIO_HH
