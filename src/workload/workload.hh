/**
 * @file
 * Workload generation: per-iteration expert-selection counts for every
 * DP group, driven by scenario affinities and a slowly evolving
 * scenario mixture (the Azure-trace-style production mix of the paper).
 *
 * The generator produces, per (iteration, layer), a DP×E matrix of
 * token-to-expert assignment counts by multinomial sampling of each
 * group's token·top-k slots over the effective affinity. Three regimes
 * are supported:
 *  - Balanced: uniform expert probability — used by the ER-Mapping
 *    communication study to isolate mapping effects (Section VI-B);
 *  - Single scenario: one fixed scenario (e.g. Math-only), whose load
 *    ratios stabilise after warm-up (Fig. 12);
 *  - Mixed: a cyclically drifting convex mixture of all four scenarios,
 *    which keeps load ratios slowly moving and forces continuous
 *    re-balancing (Fig. 15/16).
 */

#ifndef MOENTWINE_WORKLOAD_WORKLOAD_HH
#define MOENTWINE_WORKLOAD_WORKLOAD_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "workload/scenario.hh"

namespace moentwine {

/** Which expert-selection regime drives gating. */
enum class GatingMode
{
    Balanced,       ///< uniform expert probability (communication studies)
    SingleScenario, ///< one fixed scenario
    MixedScenario,  ///< drifting mixture of all scenarios
};

/**
 * Walker/Vose alias table: O(n) build, O(1) exact multinomial draws.
 * The per-iteration gating sampler is the simulator's hottest loop
 * (tokens × top-k draws per DP group), so draws must not pay the
 * O(log n) CDF binary search.
 */
class AliasTable
{
  public:
    /** Build from unnormalised non-negative weights (Σ > 0). */
    void build(const std::vector<double> &weights);

    /** Draw one index, consuming one uniform from @p rng. */
    std::size_t sample(Rng &rng) const;

    /** Number of categories (0 before the first build). */
    std::size_t size() const { return prob_.size(); }

  private:
    std::vector<double> prob_;
    std::vector<std::size_t> alias_;
    // Build worklists, kept to avoid per-build allocation.
    std::vector<std::size_t> small_;
    std::vector<std::size_t> large_;
};

/** Workload generator configuration. */
struct WorkloadConfig
{
    /** Routed experts per MoE layer. */
    int numExperts = 256;
    /** Experts activated per token. */
    int topK = 8;
    /** Selection regime. */
    GatingMode mode = GatingMode::Balanced;
    /** Scenario for SingleScenario mode. */
    ScenarioKind scenario = ScenarioKind::Math;
    /** Zipf exponent of the expert popularity skew. */
    double zipf = 1.0;
    /** Iterations per full mixture rotation (MixedScenario mode). */
    int mixPeriod = 400;
    /**
     * MixedScenario alias-table rebuild cadence: the drifting mixture
     * moves slowly (one rotation per mixPeriod iterations), so the
     * sampler tolerates a slightly stale table instead of paying the
     * O(experts) rebuild every iteration. A rebuild is forced when
     * this many iterations passed since the last one, or earlier when
     * the mixture moved more than aliasDriftTolerance since then.
     * Set to 1 to rebuild every iteration (the pre-cadence behaviour).
     */
    int aliasRebuildPeriod = 16;
    /**
     * L1 distance of the scenario mixture weights (Σ|m_i − m_i'|, in
     * [0, 2]) from the last alias build that forces an early rebuild.
     */
    double aliasDriftTolerance = 0.1;
    /** Base seed; equal configs generate equal traces. */
    uint64_t seed = 42;
};

/**
 * Deterministic expert-selection trace generator.
 */
class WorkloadGenerator
{
  public:
    explicit WorkloadGenerator(const WorkloadConfig &cfg);

    /**
     * Effective per-expert selection probability (normalised) at the
     * given iteration and layer.
     */
    std::vector<double> affinity(int iteration, int layer) const;

    /**
     * Sample the DP×E matrix of token-to-expert assignment counts.
     *
     * @param iteration      Inference iteration index.
     * @param layer          MoE layer index.
     * @param tokensPerGroup Tokens held by each DP group this iteration.
     * @param dpGroups       Number of DP groups.
     * @return counts[group][expert], with each row summing to
     *         tokensPerGroup × topK.
     */
    std::vector<std::vector<int>> sampleCounts(int iteration, int layer,
                                               int tokensPerGroup,
                                               int dpGroups);

    /**
     * In-place variant of sampleCounts() for the engine's per-iteration
     * hot path: @p counts is resized and refilled, reusing row storage
     * across calls. Produces the identical trace for identical calls.
     */
    void sampleCountsInto(int iteration, int layer, int tokensPerGroup,
                          int dpGroups,
                          std::vector<std::vector<int>> &counts);

    /**
     * Drive the scenario mixture from an external source (the serving
     * layer's live mix of admitted requests) instead of the internal
     * cyclic drift. @p weights are unnormalised non-negative weights
     * over allScenarios() (Σ > 0); they stay in effect until the next
     * setScenarioMix() or clearScenarioMix() call. The gating sampler
     * adopts the change on its alias-rebuild cadence: immediately when
     * the mixture moved more than aliasDriftTolerance since the last
     * build, else within aliasRebuildPeriod iterations. Only
     * meaningful for the scenario-driven modes (Balanced gating
     * ignores mixtures).
     */
    void setScenarioMix(const std::vector<double> &weights);

    /** Return to the internally generated scenario mixture. */
    void clearScenarioMix();

    /** Aggregate expert loads (column sums of sampleCounts output). */
    static std::vector<double> expertLoads(
        const std::vector<std::vector<int>> &counts, int numExperts);

    /** In-place variant of expertLoads() (reuses @p loads storage). */
    static void expertLoadsInto(
        const std::vector<std::vector<int>> &counts, int numExperts,
        std::vector<double> &loads);

    /** The configuration in use. */
    const WorkloadConfig &config() const { return cfg_; }

  private:
    /** Mixture weight of each scenario at the given iteration. */
    std::vector<double> mixtureWeights(int iteration) const;

    /** In-place mixtureWeights() (reuses @p mix storage). */
    void mixtureWeightsInto(int iteration,
                            std::vector<double> &mix) const;

    /** Compute affinity() into @p weights, reusing cached scenario
     *  base affinities (they depend only on the layer). */
    void affinityInto(int iteration, int layer,
                      std::vector<double> &weights) const;

    WorkloadConfig cfg_;
    Rng rng_;
    // Externally imposed scenario mixture (normalised); empty when the
    // internal per-iteration drift drives the mix. The dirty flag makes
    // the next sampleCountsInto() drift-check the new mixture even when
    // the iteration index did not advance since the last alias build.
    std::vector<double> externalMix_;
    bool mixDirty_ = false;
    // Per-scenario base affinities for cachedLayer_, built lazily so
    // per-iteration sampling does not recompute the Zipf tables.
    mutable int cachedLayer_ = -1;
    mutable std::vector<std::vector<double>> scenarioBase_;
    // Scratch affinity plus the alias table sampleCountsInto() draws
    // from; the table is rebuilt only when the affinity changes: once
    // per layer in the fixed regimes, and on the coarse
    // aliasRebuildPeriod / aliasDriftTolerance cadence under a
    // drifting MixedScenario mixture.
    std::vector<double> affinityScratch_;
    AliasTable alias_;
    int aliasIteration_ = -1;
    int aliasLayer_ = -1;
    // Mixture weights at the last alias build (drift reference) and
    // the scratch the per-iteration drift check fills.
    std::vector<double> aliasMix_;
    std::vector<double> mixScratch_;
};

/**
 * Multinomial sampling helper: draw @p draws samples from the
 * distribution proportional to @p weights, returning per-index counts.
 * Uses CDF binary search, O(draws · log n).
 */
std::vector<int> sampleMultinomial(Rng &rng,
                                   const std::vector<double> &weights,
                                   int draws);

/**
 * Allocation-lean multinomial core: draw @p draws samples against a
 * prebuilt inclusive CDF whose final value is @p total, writing
 * per-index counts into @p counts (assigned, storage reused).
 */
void sampleMultinomialFromCdf(Rng &rng, const std::vector<double> &cdf,
                              double total, int draws,
                              std::vector<int> &counts);

} // namespace moentwine

#endif // MOENTWINE_WORKLOAD_WORKLOAD_HH
