#include "workload/scenario.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace moentwine {

std::string
scenarioName(ScenarioKind kind)
{
    switch (kind) {
      case ScenarioKind::Chat:
        return "Chat";
      case ScenarioKind::Coding:
        return "Coding";
      case ScenarioKind::Math:
        return "Math";
      case ScenarioKind::Privacy:
        return "Privacy";
    }
    panic("unknown scenario kind");
}

const std::vector<ScenarioKind> &
allScenarios()
{
    static const std::vector<ScenarioKind> kAll = {
        ScenarioKind::Chat, ScenarioKind::Coding, ScenarioKind::Math,
        ScenarioKind::Privacy};
    return kAll;
}

std::vector<double>
rotatingScenarioMix(double phase, const std::vector<double> *baseWeights)
{
    std::vector<double> mix;
    rotatingScenarioMixInto(phase, baseWeights, mix);
    return mix;
}

void
rotatingScenarioMixInto(double phase,
                        const std::vector<double> *baseWeights,
                        std::vector<double> &mix)
{
    const std::size_t n = allScenarios().size();
    MOE_ASSERT(!baseWeights || baseWeights->size() == n,
               "base weights must cover every scenario");
    mix.assign(n, 0.0);
    double total = 0.0;
    for (std::size_t s = 0; s < n; ++s) {
        const double offset =
            2.0 * M_PI * static_cast<double>(s) / static_cast<double>(n);
        const double base = baseWeights ? (*baseWeights)[s] : 1.0;
        mix[s] = base * (1.0 + std::cos(phase - offset));
        total += mix[s];
    }
    MOE_ASSERT(total > 0.0, "degenerate rotating scenario mixture");
    for (double &m : mix)
        m /= total;
}

std::vector<double>
scenarioAffinity(ScenarioKind kind, int layer, int numExperts, double zipf,
                 uint64_t seed)
{
    MOE_ASSERT(numExperts > 0, "affinity needs at least one expert");
    MOE_ASSERT(zipf >= 0.0, "Zipf exponent must be non-negative");

    // Derive a deterministic sub-stream for (scenario, layer).
    const uint64_t mixed = seed ^
        (static_cast<uint64_t>(kind) * 0x9E3779B97F4A7C15ULL) ^
        (static_cast<uint64_t>(layer) * 0xC2B2AE3D27D4EB4FULL);
    Rng rng(mixed);
    const auto perm = rng.permutation(
        static_cast<std::size_t>(numExperts));

    std::vector<double> weights(static_cast<std::size_t>(numExperts));
    for (std::size_t e = 0; e < weights.size(); ++e) {
        const double rank = static_cast<double>(perm[e]) + 1.0;
        weights[e] = 1.0 / std::pow(rank, zipf);
    }
    return weights;
}

} // namespace moentwine
