#include "topology/mesh.hh"

#include <cmath>
#include <cstdlib>

#include "common/logging.hh"

namespace moentwine {

MeshTopology::MeshTopology(const MeshSpec &spec)
    : spec_(spec),
      rows_(spec.meshRows * spec.waferGridRows),
      cols_(spec.meshCols * spec.waferGridCols)
{
    MOE_ASSERT(spec.meshRows > 0 && spec.meshCols > 0,
               "mesh dimensions must be positive");
    MOE_ASSERT(spec.waferGridRows > 0 && spec.waferGridCols > 0,
               "wafer grid dimensions must be positive");

    // A link crosses a wafer boundary when the two endpoints fall in
    // different wafer tiles.
    auto crossesWafer = [&](int r0, int c0, int r1, int c1) {
        return (r0 / spec.meshRows != r1 / spec.meshRows) ||
               (c0 / spec.meshCols != c1 / spec.meshCols);
    };

    auto connect = [&](int r0, int c0, int r1, int c1) {
        const bool cross = crossesWafer(r0, c0, r1, c1);
        const double bw = cross ? spec.crossBandwidth : spec.linkBandwidth;
        const double lat = cross ? spec.crossLatency : spec.linkLatency;
        addLink(deviceAt(r0, c0), deviceAt(r1, c1), bw, lat);
        addLink(deviceAt(r1, c1), deviceAt(r0, c0), bw, lat);
    };

    for (int r = 0; r < rows_; ++r) {
        for (int c = 0; c < cols_; ++c) {
            if (c + 1 < cols_)
                connect(r, c, r, c + 1);
            if (r + 1 < rows_)
                connect(r, c, r + 1, c);
        }
    }
}

MeshTopology
MeshTopology::singleWafer(int n)
{
    MeshSpec spec;
    spec.meshRows = n;
    spec.meshCols = n;
    return MeshTopology(spec);
}

MeshTopology
MeshTopology::waferRow(int wafers, int n)
{
    MeshSpec spec;
    spec.meshRows = n;
    spec.meshCols = n;
    spec.waferGridRows = 1;
    spec.waferGridCols = wafers;
    return MeshTopology(spec);
}

std::vector<LinkId>
MeshTopology::computeRoute(DeviceId src, DeviceId dst) const
{
    MOE_ASSERT(src >= 0 && src < numDevices(), "route: bad src device");
    MOE_ASSERT(dst >= 0 && dst < numDevices(), "route: bad dst device");
    std::vector<LinkId> path;
    Coord cur = coordOf(src);
    const Coord goal = coordOf(dst);
    // X first (move along the row, changing the column), then Y.
    while (cur.col != goal.col) {
        const int next = cur.col + (goal.col > cur.col ? 1 : -1);
        const LinkId l = linkBetween(deviceAt(cur.row, cur.col),
                                     deviceAt(cur.row, next));
        MOE_ASSERT(l >= 0, "mesh adjacency missing during XY routing");
        path.push_back(l);
        cur.col = next;
    }
    while (cur.row != goal.row) {
        const int next = cur.row + (goal.row > cur.row ? 1 : -1);
        const LinkId l = linkBetween(deviceAt(cur.row, cur.col),
                                     deviceAt(next, cur.col));
        MOE_ASSERT(l >= 0, "mesh adjacency missing during XY routing");
        path.push_back(l);
        cur.row = next;
    }
    return path;
}

std::string
MeshTopology::name() const
{
    std::string out;
    if (numWafers() > 1) {
        out += std::to_string(numWafers()) + "x(";
    }
    out += std::to_string(spec_.meshRows) + "x" +
           std::to_string(spec_.meshCols);
    if (numWafers() > 1)
        out += ")";
    out += " WSC";
    return out;
}

Coord
MeshTopology::coordOf(DeviceId d) const
{
    MOE_ASSERT(d >= 0 && d < numDevices(), "coordOf: bad device");
    return Coord{d / cols_, d % cols_};
}

DeviceId
MeshTopology::deviceAt(int row, int col) const
{
    MOE_ASSERT(row >= 0 && row < rows_ && col >= 0 && col < cols_,
               "deviceAt: coordinate out of mesh");
    return row * cols_ + col;
}

int
MeshTopology::waferOf(DeviceId d) const
{
    const Coord c = coordOf(d);
    const int wr = c.row / spec_.meshRows;
    const int wc = c.col / spec_.meshCols;
    return wr * spec_.waferGridCols + wc;
}

std::vector<DeviceId>
MeshTopology::waferDevices(int wafer) const
{
    MOE_ASSERT(wafer >= 0 && wafer < numWafers(), "bad wafer index");
    const int wr = wafer / spec_.waferGridCols;
    const int wc = wafer % spec_.waferGridCols;
    std::vector<DeviceId> out;
    out.reserve(static_cast<std::size_t>(devicesPerWafer()));
    for (int r = 0; r < spec_.meshRows; ++r)
        for (int c = 0; c < spec_.meshCols; ++c)
            out.push_back(deviceAt(wr * spec_.meshRows + r,
                                   wc * spec_.meshCols + c));
    return out;
}

int
MeshTopology::manhattan(DeviceId a, DeviceId b) const
{
    const Coord ca = coordOf(a);
    const Coord cb = coordOf(b);
    return std::abs(ca.row - cb.row) + std::abs(ca.col - cb.col);
}

bool
MeshTopology::isCrossWafer(LinkId l) const
{
    MOE_ASSERT(l >= 0 && static_cast<std::size_t>(l) < links_.size(),
               "bad link id");
    const Link &link = links_[static_cast<std::size_t>(l)];
    return waferOf(link.src) != waferOf(link.dst);
}

} // namespace moentwine
