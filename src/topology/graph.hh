/**
 * @file
 * Basic graph vocabulary shared by the topology headers: node/device/
 * link identifiers, the Link record, and the borrowed PathView range.
 * Split out of topology.hh so the route-storage headers
 * (next_hop_table.hh) can name these types without a circular include.
 */

#ifndef MOENTWINE_TOPOLOGY_GRAPH_HH
#define MOENTWINE_TOPOLOGY_GRAPH_HH

#include <cstddef>

namespace moentwine {

/** Identifier of a compute device or internal switch node. */
using NodeId = int;
/** Identifier of a compute device (subset of NodeId space). */
using DeviceId = int;
/** Index into Topology::links(). */
using LinkId = int;

/**
 * One unidirectional link. Bandwidth is bytes/second for this direction;
 * latency is the per-traversal link latency of Eq.(1) in the paper.
 */
struct Link
{
    NodeId src;
    NodeId dst;
    double bandwidth;
    double latency;
};

/**
 * Non-owning view of a deterministic route: a contiguous LinkId range
 * borrowed from the owning topology's route arena (or, with the route
 * cache disabled or the next-hop storage active, from a per-topology
 * scratch buffer that the next route() call overwrites). Valid while
 * the topology is alive and, on the scratch-backed paths, only until
 * the next route() call.
 */
class PathView
{
  public:
    using value_type = LinkId;
    using const_iterator = const LinkId *;

    PathView() = default;

    PathView(const LinkId *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    const_iterator begin() const { return data_; }
    const_iterator end() const { return data_ + size_; }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    LinkId operator[](std::size_t i) const { return data_[i]; }
    LinkId front() const { return data_[0]; }
    LinkId back() const { return data_[size_ - 1]; }

  private:
    const LinkId *data_ = nullptr;
    std::size_t size_ = 0;
};

} // namespace moentwine

#endif // MOENTWINE_TOPOLOGY_GRAPH_HH
