#include "topology/switch_cluster.hh"

#include "common/logging.hh"
#include "common/units.hh"

namespace moentwine {

SwitchClusterTopology::SwitchClusterTopology(const SwitchClusterSpec &spec)
    : spec_(spec)
{
    MOE_ASSERT(spec.numNodes > 0, "cluster needs at least one node");
    MOE_ASSERT(spec.devicesPerNode > 0, "node needs at least one device");

    const int devices = numDevices();
    const bool multiNode = spec.numNodes > 1;
    totalNodes_ = devices + spec.numNodes + (multiNode ? 1 : 0);

    // Device ↔ node-switch links.
    for (DeviceId d = 0; d < devices; ++d) {
        const NodeId sw = switchOf(nodeOf(d));
        addLink(d, sw, spec.intraBandwidth, spec.intraLatency);
        addLink(sw, d, spec.intraBandwidth, spec.intraLatency);
    }

    // Node-switch ↔ spine links (aggregate IB bandwidth per node).
    if (multiNode) {
        for (int n = 0; n < spec.numNodes; ++n) {
            addLink(switchOf(n), spine(),
                    spec.interBandwidth, spec.interLatency);
            addLink(spine(), switchOf(n),
                    spec.interBandwidth, spec.interLatency);
        }
    }
}

SwitchClusterTopology
SwitchClusterTopology::dgx(int nodes)
{
    SwitchClusterSpec spec;
    spec.numNodes = nodes;
    spec.devicesPerNode = 8;
    // NVLink5: 1.8 TB/s bidirectional per GPU → 0.9 TB/s per direction.
    spec.intraBandwidth = 0.9 * units::TB;
    spec.intraLatency = 350 * units::NANO;
    // 8 × 400 Gb/s ConnectX per node → 400 GB/s aggregate per direction.
    spec.interBandwidth = 0.4 * units::TB;
    // NIC + switch traversal per fabric segment.
    spec.interLatency = 1.2 * units::MICRO;
    spec.label = "DGX";
    return SwitchClusterTopology(spec);
}

SwitchClusterTopology
SwitchClusterTopology::nvl72()
{
    SwitchClusterSpec spec;
    spec.numNodes = 1;
    spec.devicesPerNode = 72;
    spec.intraBandwidth = 0.9 * units::TB;
    spec.intraLatency = 300 * units::NANO;
    spec.label = "NVL72";
    return SwitchClusterTopology(spec);
}

std::vector<LinkId>
SwitchClusterTopology::computeRoute(DeviceId src, DeviceId dst) const
{
    MOE_ASSERT(src >= 0 && src < numDevices(), "route: bad src device");
    MOE_ASSERT(dst >= 0 && dst < numDevices(), "route: bad dst device");
    std::vector<LinkId> path;
    if (src == dst)
        return path;

    const NodeId srcSw = switchOf(nodeOf(src));
    const NodeId dstSw = switchOf(nodeOf(dst));
    path.push_back(linkBetween(src, srcSw));
    if (srcSw != dstSw) {
        path.push_back(linkBetween(srcSw, spine()));
        path.push_back(linkBetween(spine(), dstSw));
    }
    path.push_back(linkBetween(dstSw, dst));
    for (LinkId l : path)
        MOE_ASSERT(l >= 0, "switch-cluster adjacency missing");
    return path;
}

std::string
SwitchClusterTopology::name() const
{
    if (spec_.numNodes == 1)
        return spec_.label;
    return std::to_string(spec_.numNodes) + "-node " + spec_.label + " (" +
           std::to_string(numDevices()) + " GPUs)";
}

int
SwitchClusterTopology::nodeOf(DeviceId d) const
{
    MOE_ASSERT(d >= 0 && d < numDevices(), "nodeOf: bad device");
    return d / spec_.devicesPerNode;
}

NodeId
SwitchClusterTopology::switchOf(int node) const
{
    MOE_ASSERT(node >= 0 && node < spec_.numNodes, "bad node index");
    return numDevices() + node;
}

NodeId
SwitchClusterTopology::spine() const
{
    MOE_ASSERT(spec_.numNodes > 1, "single-node cluster has no spine");
    return numDevices() + spec_.numNodes;
}

} // namespace moentwine
