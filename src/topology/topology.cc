#include "topology/topology.hh"

#include <algorithm>

#include "common/logging.hh"

namespace moentwine {

int
Topology::hops(DeviceId src, DeviceId dst) const
{
    return static_cast<int>(route(src, dst).size());
}

double
Topology::pathLatency(DeviceId src, DeviceId dst) const
{
    double total = 0.0;
    for (LinkId l : route(src, dst))
        total += links_[static_cast<std::size_t>(l)].latency;
    return total;
}

double
Topology::pathBandwidth(DeviceId src, DeviceId dst) const
{
    const auto path = route(src, dst);
    MOE_ASSERT(!path.empty(), "pathBandwidth of a zero-hop route");
    double bw = links_[static_cast<std::size_t>(path.front())].bandwidth;
    for (LinkId l : path)
        bw = std::min(bw, links_[static_cast<std::size_t>(l)].bandwidth);
    return bw;
}

LinkId
Topology::linkBetween(NodeId src, NodeId dst) const
{
    if (src < 0 || static_cast<std::size_t>(src) >= outLinks_.size())
        return -1;
    for (LinkId l : outLinks_[static_cast<std::size_t>(src)]) {
        if (links_[static_cast<std::size_t>(l)].dst == dst)
            return l;
    }
    return -1;
}

LinkId
Topology::addLink(NodeId src, NodeId dst, double bandwidth, double latency)
{
    MOE_ASSERT(src != dst, "self-links are not allowed");
    MOE_ASSERT(bandwidth > 0.0, "link bandwidth must be positive");
    MOE_ASSERT(latency >= 0.0, "link latency must be non-negative");
    const auto id = static_cast<LinkId>(links_.size());
    links_.push_back(Link{src, dst, bandwidth, latency});
    const auto need = static_cast<std::size_t>(src) + 1;
    if (outLinks_.size() < need)
        outLinks_.resize(need);
    outLinks_[static_cast<std::size_t>(src)].push_back(id);
    return id;
}

} // namespace moentwine
