#include "topology/topology.hh"

#include <algorithm>

#include "common/logging.hh"

namespace moentwine {

PathView
Topology::route(DeviceId src, DeviceId dst) const
{
    if (routes_.disabled()) {
        uncachedScratch_ = computeRoute(src, dst);
        return PathView(uncachedScratch_.data(), uncachedScratch_.size());
    }
    ensureRoutes();
    if (nextHops_.built()) {
        // Materialise the walk so callers keep a contiguous view; the
        // scratch is overwritten by the next route() call (see header).
        uncachedScratch_.clear();
        for (const LinkId l : walk(src, dst))
            uncachedScratch_.push_back(l);
        return PathView(uncachedScratch_.data(), uncachedScratch_.size());
    }
    return routes_.path(src, dst);
}

PathWalker
Topology::walk(DeviceId src, DeviceId dst) const
{
    if (routes_.disabled())
        return PathWalker(route(src, dst));
    ensureRoutes();
    if (nextHops_.built())
        return PathWalker(nextHops_, links_.data(), src, dst);
    return PathWalker(routes_.path(src, dst));
}

int
Topology::hops(DeviceId src, DeviceId dst) const
{
    if (routes_.disabled())
        return static_cast<int>(computeRoute(src, dst).size());
    ensureRoutes();
    if (nextHops_.built())
        return nextHops_.hops(src, dst);
    return routes_.hops(src, dst);
}

double
Topology::pathLatency(DeviceId src, DeviceId dst) const
{
    if (routes_.disabled()) {
        double total = 0.0;
        for (LinkId l : computeRoute(src, dst))
            total += links_[static_cast<std::size_t>(l)].latency;
        return total;
    }
    ensureRoutes();
    if (nextHops_.built())
        return nextHops_.latency(src, dst);
    return routes_.latency(src, dst);
}

double
Topology::pathBandwidth(DeviceId src, DeviceId dst) const
{
    if (routes_.disabled()) {
        const auto path = computeRoute(src, dst);
        MOE_ASSERT(!path.empty(), "pathBandwidth of a zero-hop route");
        double bw = links_[static_cast<std::size_t>(path.front())].bandwidth;
        for (LinkId l : path)
            bw = std::min(bw, links_[static_cast<std::size_t>(l)].bandwidth);
        return bw;
    }
    ensureRoutes();
    if (nextHops_.built()) {
        // The compressed storage keeps no bottleneck column (it is the
        // one Eq.(1) ingredient nothing queries per iteration); a walk
        // reproduces the arena's min over the identical link set.
        MOE_ASSERT(nextHops_.hops(src, dst) > 0,
                   "pathBandwidth of a zero-hop route");
        double bw = 0.0;
        for (const LinkId l : walk(src, dst)) {
            const double b = links_[static_cast<std::size_t>(l)].bandwidth;
            bw = bw == 0.0 ? b : std::min(bw, b);
        }
        return bw;
    }
    const double bw = routes_.minBandwidth(src, dst);
    MOE_ASSERT(bw > 0.0, "pathBandwidth of a zero-hop route");
    return bw;
}

double
Topology::pathInvBandwidthSum(DeviceId src, DeviceId dst) const
{
    if (routes_.disabled()) {
        double total = 0.0;
        for (LinkId l : computeRoute(src, dst))
            total += 1.0 / links_[static_cast<std::size_t>(l)].bandwidth;
        return total;
    }
    ensureRoutes();
    if (nextHops_.built())
        return nextHops_.invBandwidthSum(src, dst);
    return routes_.invBandwidthSum(src, dst);
}

const RouteTable &
Topology::routeTable() const
{
    MOE_ASSERT(!routes_.disabled(),
               "routeTable() while the cache is disabled");
    MOE_ASSERT(activeRouteStorage() == RouteStorageKind::CsrArena,
               "routeTable() under the next-hop storage; use "
               "nextHopTable() or walk()");
    ensureRoutes();
    return routes_;
}

const NextHopTable &
Topology::nextHopTable() const
{
    MOE_ASSERT(!routes_.disabled(),
               "nextHopTable() while the cache is disabled");
    MOE_ASSERT(activeRouteStorage() == RouteStorageKind::NextHop,
               "nextHopTable() under the CSR storage; use routeTable()");
    ensureRoutes();
    return nextHops_;
}

void
Topology::setRouteStorage(RouteStorageKind kind)
{
    if (kind == storageKind_)
        return;
    storageKind_ = kind;
    // Drop whichever representation was built; the next query (or
    // finalizeRoutes()) rebuilds under the new policy.
    routes_.reset();
    nextHops_.reset();
    uncachedScratch_.clear();
}

std::size_t
Topology::routeStorageBytes() const
{
    MOE_ASSERT(!routes_.disabled(),
               "routeStorageBytes() while the cache is disabled");
    ensureRoutes();
    return nextHops_.built() ? nextHops_.storageBytes()
                             : routes_.storageBytes();
}

void
Topology::disableRouteCache()
{
    routes_.disableCache();
    nextHops_.reset();
}

void
Topology::ensureRoutes() const
{
    // Double-checked build: the fast path is an acquire load per
    // storage; the slow path serialises racing first users behind a
    // mutex so a shared const topology is safe even without
    // finalizeRoutes().
    if (routes_.built() || nextHops_.built())
        return;
    std::lock_guard<std::mutex> guard(routeBuildMutex_);
    if (routes_.built() || nextHops_.built() || routes_.disabled())
        return;
    if (activeRouteStorage() == RouteStorageKind::NextHop)
        nextHops_.build(*this);
    else
        routes_.build(*this);
}

LinkId
Topology::linkBetween(NodeId src, NodeId dst) const
{
    if (src < 0 || static_cast<std::size_t>(src) >= outIndex_.size())
        return -1;
    const auto &index = outIndex_[static_cast<std::size_t>(src)];
    const auto it = index.find(dst);
    return it == index.end() ? -1 : it->second;
}

void
Topology::invalidateRouteStorage()
{
    routes_.reset();
    nextHops_.reset();
    uncachedScratch_.clear();
}

LinkId
Topology::addLink(NodeId src, NodeId dst, double bandwidth, double latency)
{
    MOE_ASSERT(src != dst, "self-links are not allowed");
    MOE_ASSERT(bandwidth > 0.0, "link bandwidth must be positive");
    MOE_ASSERT(latency >= 0.0, "link latency must be non-negative");
    const auto id = static_cast<LinkId>(links_.size());
    links_.push_back(Link{src, dst, bandwidth, latency});
    const auto need = static_cast<std::size_t>(src) + 1;
    if (outIndex_.size() < need)
        outIndex_.resize(need);
    const bool inserted =
        outIndex_[static_cast<std::size_t>(src)].emplace(dst, id).second;
    MOE_ASSERT(inserted, "duplicate directed link");
    return id;
}

} // namespace moentwine
