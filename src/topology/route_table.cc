#include "topology/topology.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"

namespace moentwine {

RouteTable &
RouteTable::operator=(const RouteTable &other)
{
    if (this == &other)
        return *this;
    devices_ = other.devices_;
    disabled_ = other.disabled_;
    offsets_ = other.offsets_;
    paths_ = other.paths_;
    latency_ = other.latency_;
    minBw_ = other.minBw_;
    invBwSum_ = other.invBwSum_;
    built_.store(other.built_.load(std::memory_order_acquire),
                 std::memory_order_release);
    return *this;
}

RouteTable &
RouteTable::operator=(RouteTable &&other) noexcept
{
    if (this == &other)
        return *this;
    devices_ = other.devices_;
    disabled_ = other.disabled_;
    offsets_ = std::move(other.offsets_);
    paths_ = std::move(other.paths_);
    latency_ = std::move(other.latency_);
    minBw_ = std::move(other.minBw_);
    invBwSum_ = std::move(other.invBwSum_);
    built_.store(other.built_.load(std::memory_order_acquire),
                 std::memory_order_release);
    other.built_.store(false, std::memory_order_release);
    return *this;
}

void
RouteTable::build(const Topology &topo)
{
    const int devices = topo.numDevices();
    MOE_ASSERT(devices > 0, "route table over an empty topology");
    devices_ = devices;

    const auto pairs = static_cast<std::size_t>(devices) *
        static_cast<std::size_t>(devices);
    offsets_.assign(pairs + 1, 0);
    latency_.assign(pairs, 0.0);
    minBw_.assign(pairs, 0.0);
    invBwSum_.assign(pairs, 0.0);
    paths_.clear();
    // Arena size is the sum of all-pairs hop counts; one hop per pair
    // is a safe floor that avoids most of the regrowth during build.
    paths_.reserve(pairs);

    const auto &links = topo.links();
    std::size_t p = 0;
    for (DeviceId src = 0; src < devices; ++src) {
        for (DeviceId dst = 0; dst < devices; ++dst, ++p) {
            const auto path = topo.computeRoute(src, dst);
            double lat = 0.0;
            double invBw = 0.0;
            double minBw = path.empty()
                ? 0.0
                : std::numeric_limits<double>::infinity();
            for (const LinkId l : path) {
                const Link &link = links[static_cast<std::size_t>(l)];
                lat += link.latency;
                invBw += 1.0 / link.bandwidth;
                minBw = std::min(minBw, link.bandwidth);
                paths_.push_back(l);
            }
            offsets_[p + 1] = paths_.size();
            latency_[p] = lat;
            minBw_[p] = minBw;
            invBwSum_[p] = invBw;
        }
    }
    // Publish the finished arena: pairs with built() acquire loads.
    built_.store(true, std::memory_order_release);
}

std::size_t
RouteTable::storageBytes() const
{
    return offsets_.capacity() * sizeof(std::size_t) +
        paths_.capacity() * sizeof(LinkId) +
        latency_.capacity() * sizeof(double) +
        minBw_.capacity() * sizeof(double) +
        invBwSum_.capacity() * sizeof(double);
}

void
RouteTable::reset()
{
    built_.store(false, std::memory_order_release);
    devices_ = 0;
    offsets_.clear();
    offsets_.shrink_to_fit();
    paths_.clear();
    paths_.shrink_to_fit();
    latency_.clear();
    latency_.shrink_to_fit();
    minBw_.clear();
    minBw_.shrink_to_fit();
    invBwSum_.clear();
    invBwSum_.shrink_to_fit();
}

void
RouteTable::disableCache()
{
    disabled_ = true;
    reset();
}

} // namespace moentwine
