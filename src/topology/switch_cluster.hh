/**
 * @file
 * Switch-based GPU-cluster topologies used as baselines: multi-node DGX
 * systems (NVSwitch inside a node, InfiniBand between nodes) and the
 * NVL72 supernode (one unified scale-up switch fabric).
 *
 * Devices attach to their node switch through an uplink/downlink pair
 * whose bandwidth is the device's scale-up injection bandwidth (NVLink).
 * Node switches attach to a spine through links whose bandwidth is the
 * node's aggregate inter-node bandwidth (IB NICs). Congestion therefore
 * appears exactly where it does on real clusters: on the node↔spine
 * links when cross-node all-to-all volume exceeds IB capacity.
 *
 * NVL72 is the single-node special case: every device hangs off one
 * switch at full NVLink bandwidth, so all traffic is "intra-node".
 */

#ifndef MOENTWINE_TOPOLOGY_SWITCH_CLUSTER_HH
#define MOENTWINE_TOPOLOGY_SWITCH_CLUSTER_HH

#include <string>
#include <vector>

#include "topology/topology.hh"

namespace moentwine {

/** Configuration of a switch-based cluster. */
struct SwitchClusterSpec
{
    /** Number of nodes (1 for NVL72-style supernodes). */
    int numNodes = 4;
    /** Compute devices per node. */
    int devicesPerNode = 8;
    /** Per-direction device↔node-switch bandwidth (NVLink, B/s). */
    double intraBandwidth = 0.9e12;
    /** Per-traversal latency of an intra-node link (s). */
    double intraLatency = 300e-9;
    /** Per-direction node-switch↔spine bandwidth per node (IB, B/s). */
    double interBandwidth = 0.1e12;
    /** Per-traversal latency of an inter-node link (s). */
    double interLatency = 3e-6;
    /** Name prefix for bench output. */
    std::string label = "DGX";
};

/**
 * Cluster of devices behind per-node switches and an optional spine.
 */
class SwitchClusterTopology : public Topology
{
  public:
    explicit SwitchClusterTopology(const SwitchClusterSpec &spec);

    /** Factory: n-node DGX-B200 cluster with default link parameters. */
    static SwitchClusterTopology dgx(int nodes);

    /** Factory: NVL72 supernode (72 devices, one switch domain). */
    static SwitchClusterTopology nvl72();

    int numDevices() const override
    {
        return spec_.numNodes * spec_.devicesPerNode;
    }

    int numNodes() const override { return totalNodes_; }

    std::vector<LinkId> computeRoute(DeviceId src,
                                     DeviceId dst) const override;

    std::string name() const override;

    /** Node index hosting a device. */
    int nodeOf(DeviceId d) const;

    /** True when the two devices share a node (same NVSwitch domain). */
    bool sameNode(DeviceId a, DeviceId b) const
    {
        return nodeOf(a) == nodeOf(b);
    }

    /** The specification this cluster was built from. */
    const SwitchClusterSpec &spec() const { return spec_; }

  private:
    /** Internal node id of the switch serving node @p node. */
    NodeId switchOf(int node) const;

    /** Internal node id of the spine (only when numNodes > 1). */
    NodeId spine() const;

    SwitchClusterSpec spec_;
    int totalNodes_;
};

} // namespace moentwine

#endif // MOENTWINE_TOPOLOGY_SWITCH_CLUSTER_HH
