/**
 * @file
 * Compressed next-hop route storage and the on-the-fly path walker.
 *
 * The CSR route arena (RouteTable) stores every (src, dst) path
 * explicitly, so its footprint grows O(devices² × avg hops) — beyond
 * roughly a thousand devices the arena dominates process RSS. The
 * NextHopTable compresses the same deterministic routing function to
 * O(devices²): one first-hop LinkId per (node, destination) pair, plus
 * the per-pair scalars (hop count, path latency, Σ 1/bandwidth) that
 * keep the O(1) Topology::hops()/pathLatency()/pathInvBandwidthSum()
 * queries alive. The few consumers that actually iterate a route's
 * links reconstruct it on the fly with a PathWalker cursor — a
 * handful of loads per hop, no allocation, no borrowed arena.
 *
 * Compression is valid because routing here is node-locally
 * deterministic: the next link toward a destination depends only on
 * the current node and that destination (dimension-ordered XY on the
 * mesh, up/over/down on switch clusters). build() verifies this
 * property while populating the matrix and fails loudly on a topology
 * whose computeRoute() violates it.
 *
 * The per-pair scalars are accumulated link-by-link in exactly the
 * order RouteTable::build() walks them, so a topology answers bitwise
 * identical latency/bandwidth sums under either storage — a
 * representation change, not a semantics change.
 */

#ifndef MOENTWINE_TOPOLOGY_NEXT_HOP_TABLE_HH
#define MOENTWINE_TOPOLOGY_NEXT_HOP_TABLE_HH

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "topology/graph.hh"

namespace moentwine {

class Topology;

/**
 * All-pairs compressed route storage: a nodes×devices first-hop matrix
 * and devices×devices scalar tables. Route queries that need the link
 * sequence walk firstHop() hop by hop (see PathWalker); scalar queries
 * are one load, exactly like the CSR table.
 */
class NextHopTable
{
  public:
    NextHopTable() = default;

    // Copies/moves transfer the table data and the built flag, for the
    // same reason RouteTable's do: topology factories return by value;
    // concurrently used topologies are shared by pointer, never copied.
    NextHopTable(const NextHopTable &other) { *this = other; }
    NextHopTable(NextHopTable &&other) noexcept
    {
        *this = std::move(other);
    }
    NextHopTable &operator=(const NextHopTable &other);
    NextHopTable &operator=(NextHopTable &&other) noexcept;

    /**
     * Precompute the first-hop matrix and per-pair scalars from
     * topo.computeRoute(). Asserts that routing is next-hop consistent
     * (two routes crossing a node toward the same destination leave it
     * over the same link).
     */
    void build(const Topology &topo);

    /**
     * True once build() has run. An acquire load: a true result makes
     * the matrix built by another thread visible, so worker threads
     * share one finalized topology without per-query synchronisation.
     */
    bool built() const { return built_.load(std::memory_order_acquire); }

    /** Drop the table (rebuilds lazily on next use). */
    void reset();

    /**
     * First link of the deterministic route from @p node toward device
     * @p dst; -1 when node == dst or no route crosses this pair.
     */
    LinkId firstHop(NodeId node, DeviceId dst) const
    {
        return nextHop_[static_cast<std::size_t>(node) *
                            static_cast<std::size_t>(devices_) +
                        static_cast<std::size_t>(dst)];
    }

    /** Hop count of the deterministic route (0 when src == dst). */
    int hops(DeviceId src, DeviceId dst) const
    {
        return hops_[pairIndex(src, dst)];
    }

    /** Sum of per-link latencies along the deterministic route. */
    double latency(DeviceId src, DeviceId dst) const
    {
        return latency_[pairIndex(src, dst)];
    }

    /** Σ 1/bandwidth over the deterministic route's links. */
    double invBandwidthSum(DeviceId src, DeviceId dst) const
    {
        return invBwSum_[pairIndex(src, dst)];
    }

    /** Compute devices covered by the scalar tables. */
    int numDevices() const { return devices_; }

    /** Heap footprint of the built table (route-storage bytes). */
    std::size_t storageBytes() const;

  private:
    std::size_t pairIndex(DeviceId src, DeviceId dst) const
    {
        return static_cast<std::size_t>(src) *
                   static_cast<std::size_t>(devices_) +
               static_cast<std::size_t>(dst);
    }

    int devices_ = 0;
    int nodes_ = 0;
    // Release-published by build(); see built().
    std::atomic<bool> built_{false};
    std::vector<LinkId> nextHop_; // nodes × devices first hops
    std::vector<int> hops_;       // devices × devices
    std::vector<double> latency_; // devices × devices
    std::vector<double> invBwSum_; // devices × devices
};

/**
 * Forward cursor over one deterministic route, uniform across the two
 * route storages: over the CSR arena it iterates the borrowed view;
 * over the next-hop table it follows firstHop() links until the
 * destination. Construction and iteration never allocate, which is
 * what keeps PhaseTraffic::addFlow() allocation-free under either
 * storage. Obtain one from Topology::walk().
 */
class PathWalker
{
  public:
    /** Walk a contiguous precomputed path (CSR arena or scratch). */
    explicit PathWalker(PathView view)
        : cur_(view.begin()), end_(view.end())
    {
    }

    /** Walk the next-hop matrix from @p src toward @p dst. */
    PathWalker(const NextHopTable &table, const Link *links, DeviceId src,
               DeviceId dst)
        : table_(&table), links_(links), node_(src), dst_(dst)
    {
    }

    /** Advance one hop into @p out; false when the walk is finished. */
    bool next(LinkId &out)
    {
        if (table_ == nullptr) {
            if (cur_ == end_)
                return false;
            out = *cur_++;
            return true;
        }
        if (node_ == dst_)
            return false;
        const LinkId l = table_->firstHop(node_, dst_);
        // -1 is the matrix fill value: no route ever crossed this
        // (node, dst) pair. Unreachable on connected topologies, but
        // fail loudly instead of indexing links_ with it.
        MOE_ASSERT(l >= 0, "no next hop toward the walked destination");
        node_ = links_[static_cast<std::size_t>(l)].dst;
        out = l;
        return true;
    }

    /** Sentinel for range-for support. */
    struct End
    {
    };

    /** Single-pass input iterator driving next(). */
    class Iterator
    {
      public:
        explicit Iterator(PathWalker &walker) : walker_(&walker)
        {
            live_ = walker_->next(link_);
        }

        LinkId operator*() const { return link_; }

        Iterator &operator++()
        {
            live_ = walker_->next(link_);
            return *this;
        }

        bool operator!=(End) const { return live_; }

      private:
        PathWalker *walker_;
        LinkId link_ = -1;
        bool live_ = false;
    };

    Iterator begin() { return Iterator(*this); }
    End end() const { return End{}; }

  private:
    // Next-hop mode state (table_ non-null).
    const NextHopTable *table_ = nullptr;
    const Link *links_ = nullptr;
    NodeId node_ = 0;
    DeviceId dst_ = 0;
    // Contiguous-view mode state (table_ null).
    const LinkId *cur_ = nullptr;
    const LinkId *end_ = nullptr;
};

} // namespace moentwine

#endif // MOENTWINE_TOPOLOGY_NEXT_HOP_TABLE_HH
