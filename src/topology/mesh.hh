/**
 * @file
 * 2-D mesh topology for wafer-scale chips, supporting both a single wafer
 * and a grid of wafers connected at their borders (Dojo-style).
 *
 * A multi-wafer system is modelled as one large global mesh whose links
 * crossing a wafer boundary carry the (different) cross-wafer bandwidth
 * and latency. This matches the physical construction described by the
 * paper: every facing pair of edge dies on adjacent wafers is connected,
 * so the global structure remains a mesh with heterogeneous links.
 *
 * Routing is deterministic dimension-ordered XY: first along the row
 * (column index changes), then along the column. This is the standard
 * deadlock-free mesh routing assumed by the paper's congestion analysis.
 */

#ifndef MOENTWINE_TOPOLOGY_MESH_HH
#define MOENTWINE_TOPOLOGY_MESH_HH

#include <string>
#include <vector>

#include "topology/topology.hh"

namespace moentwine {

/** Zero-based (row, col) position in the global mesh. */
struct Coord
{
    int row;
    int col;

    bool operator==(const Coord &o) const
    {
        return row == o.row && col == o.col;
    }
};

/** Configuration of a (possibly multi-wafer) mesh. */
struct MeshSpec
{
    /** Rows of compute dies per wafer. */
    int meshRows = 4;
    /** Columns of compute dies per wafer. */
    int meshCols = 4;
    /** Rows of wafers in the system. */
    int waferGridRows = 1;
    /** Columns of wafers in the system. */
    int waferGridCols = 1;
    /**
     * Per-direction bandwidth of an on-wafer die-to-die link (B/s).
     * The paper quotes 8 TB/s *bidirectional per die*; spread over the
     * four mesh edges that is 1 TB/s per edge per direction.
     */
    double linkBandwidth = 1e12;
    /**
     * Per-hop latency of an on-wafer link (s). Includes the NoC router
     * traversal and protocol processing of a store-and-forward hop, so
     * it is substantially larger than the raw wire delay.
     */
    double linkLatency = 300e-9;
    /**
     * Per-direction bandwidth of one cross-wafer border link (B/s).
     * The paper quotes 9 TB/s per wafer border; an 8-wide border gives
     * roughly 0.55 TB/s per facing die pair per direction.
     */
    double crossBandwidth = 0.55e12;
    /** Per-hop latency of a cross-wafer link (s). */
    double crossLatency = 600e-9;
};

/**
 * Wafer-scale 2-D mesh (single- or multi-wafer).
 */
class MeshTopology : public Topology
{
  public:
    /** Build a mesh from a full specification. */
    explicit MeshTopology(const MeshSpec &spec);

    /** Convenience factory: one n×n wafer with default link parameters. */
    static MeshTopology singleWafer(int n);

    /**
     * Convenience factory: a 1×wafers row of n×n wafers with default
     * link parameters (the paper's "4×(8×8)" style systems).
     */
    static MeshTopology waferRow(int wafers, int n);

    int numDevices() const override { return rows_ * cols_; }

    std::vector<LinkId> computeRoute(DeviceId src,
                                     DeviceId dst) const override;

    std::string name() const override;

    /** Total rows in the global mesh. */
    int rows() const { return rows_; }

    /** Total columns in the global mesh. */
    int cols() const { return cols_; }

    /** Rows per wafer. */
    int waferRows() const { return spec_.meshRows; }

    /** Columns per wafer. */
    int waferCols() const { return spec_.meshCols; }

    /** Number of wafers in the system. */
    int numWafers() const
    {
        return spec_.waferGridRows * spec_.waferGridCols;
    }

    /** Devices per wafer. */
    int devicesPerWafer() const
    {
        return spec_.meshRows * spec_.meshCols;
    }

    /** Coordinate of a device in the global mesh. */
    Coord coordOf(DeviceId d) const;

    /** Device at a global mesh coordinate. */
    DeviceId deviceAt(int row, int col) const;

    /** Device at a global mesh coordinate. */
    DeviceId deviceAt(Coord c) const { return deviceAt(c.row, c.col); }

    /** Wafer index (row-major over the wafer grid) hosting a device. */
    int waferOf(DeviceId d) const;

    /** All devices on the given wafer, in row-major order. */
    std::vector<DeviceId> waferDevices(int wafer) const;

    /** Manhattan distance between two devices in the global mesh. */
    int manhattan(DeviceId a, DeviceId b) const;

    /** True when the directed link crosses a wafer boundary. */
    bool isCrossWafer(LinkId l) const;

    /** The specification this mesh was built from. */
    const MeshSpec &spec() const { return spec_; }

  private:
    MeshSpec spec_;
    int rows_;
    int cols_;
};

} // namespace moentwine

#endif // MOENTWINE_TOPOLOGY_MESH_HH
