/**
 * @file
 * Abstract network topology interface shared by the wafer-scale mesh and
 * the GPU-cluster baselines.
 *
 * A topology is a directed graph of unidirectional links between nodes.
 * Nodes [0, numDevices()) are compute devices; a topology may add
 * internal nodes beyond that range (e.g. switches in a DGX cluster).
 * Routing is deterministic: route(src, dst) always returns the same link
 * sequence, which is what lets the analytical congestion model accumulate
 * per-link traffic volumes reproducibly.
 *
 * Because routes are deterministic and topologies immutable after
 * construction, all-pairs routing is precomputed once into one of two
 * interchangeable storages selected by a RouteStorage policy:
 *
 *  - RouteTable (CSR arena): every path stored explicitly, O(devices² ×
 *    avg hops) memory; route() returns a stable borrowed PathView.
 *  - NextHopTable (compressed): one first-hop link per (node, dst),
 *    O(devices²) memory; link sequences are reconstructed on the fly
 *    by a PathWalker cursor (see Topology::walk()).
 *
 * Both storages precompute the per-pair scalars, so hops(),
 * pathLatency(), pathBandwidth() and pathInvBandwidthSum() are O(1)
 * non-allocating lookups either way, and both answer bitwise identical
 * values. The policy defaults to Auto: CSR below
 * kNextHopAutoThreshold devices (compact, stable views), compressed at
 * or above it (kilodevice meshes and switch clusters whose arena would
 * dominate RSS). Consumers that iterate links should prefer walk();
 * route() stays PathView-compatible but materialises into a per-
 * topology scratch under the compressed storage.
 */

#ifndef MOENTWINE_TOPOLOGY_TOPOLOGY_HH
#define MOENTWINE_TOPOLOGY_TOPOLOGY_HH

#include <atomic>
#include <cstddef>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "topology/graph.hh"
#include "topology/next_hop_table.hh"

namespace moentwine {

class Topology;

/**
 * All-pairs route cache over the compute devices of a topology.
 *
 * Paths are stored back to back in one arena vector indexed by a
 * (src, dst) offset table (CSR layout), so a route lookup is two loads
 * and no allocation. Per-pair scalars answer the Eq.(1) ingredients
 * without re-walking links:
 *  - latency(): sum of per-link latencies along the route;
 *  - minBandwidth(): bottleneck link bandwidth;
 *  - invBandwidthSum(): Σ 1/bw over the route's links, so the
 *    store-and-forward volume term of Eq.(1) is bytes × invBandwidthSum.
 */
class RouteTable
{
  public:
    RouteTable() = default;

    // Copies/moves transfer the table data and the built flag. They
    // exist so topology factories can return by value; copying a table
    // that another thread is concurrently building is not supported
    // (finalized topologies are shared by pointer, never copied).
    RouteTable(const RouteTable &other) { *this = other; }
    RouteTable(RouteTable &&other) noexcept { *this = std::move(other); }
    RouteTable &operator=(const RouteTable &other);
    RouteTable &operator=(RouteTable &&other) noexcept;

    /** Precompute all-pairs routes by calling topo.computeRoute(). */
    void build(const Topology &topo);

    /**
     * True once build() has run (and the cache is not disabled). An
     * acquire load: a true result makes the arena built by another
     * thread visible, which is what lets worker threads share one
     * finalized topology without synchronising per query.
     */
    bool built() const { return built_.load(std::memory_order_acquire); }

    /**
     * Test hook: drop the table and make built() stay false so the
     * owning topology falls back to computeRoute() on every query.
     * Used by bench/perf_routing to measure the no-cache baseline.
     */
    void disableCache();

    /** Re-enable caching after disableCache() (table rebuilds lazily). */
    void enableCache() { disabled_ = false; }

    /** True while the test hook holds the cache off. */
    bool disabled() const { return disabled_; }

    /** Drop the table so the storage policy can switch (rebuilds lazily). */
    void reset();

    /** Cached route; empty when src == dst. */
    PathView path(DeviceId src, DeviceId dst) const
    {
        const std::size_t p = pairIndex(src, dst);
        const std::size_t begin = offsets_[p];
        return PathView(paths_.data() + begin, offsets_[p + 1] - begin);
    }

    /** Hop count of the cached route. */
    int hops(DeviceId src, DeviceId dst) const
    {
        const std::size_t p = pairIndex(src, dst);
        return static_cast<int>(offsets_[p + 1] - offsets_[p]);
    }

    /** Sum of per-link latencies along the cached route. */
    double latency(DeviceId src, DeviceId dst) const
    {
        return latency_[pairIndex(src, dst)];
    }

    /** Bottleneck bandwidth of the cached route (0 for zero-hop). */
    double minBandwidth(DeviceId src, DeviceId dst) const
    {
        return minBw_[pairIndex(src, dst)];
    }

    /** Σ 1/bandwidth over the cached route's links. */
    double invBandwidthSum(DeviceId src, DeviceId dst) const
    {
        return invBwSum_[pairIndex(src, dst)];
    }

    /** Heap footprint of the built arena (route-storage bytes). */
    std::size_t storageBytes() const;

  private:
    std::size_t pairIndex(DeviceId src, DeviceId dst) const
    {
        return static_cast<std::size_t>(src) *
                   static_cast<std::size_t>(devices_) +
               static_cast<std::size_t>(dst);
    }

    int devices_ = 0;
    // Release-published by build(); see built(). Makes the table safe
    // to race-check from concurrent const queries.
    std::atomic<bool> built_{false};
    bool disabled_ = false;
    std::vector<std::size_t> offsets_;
    std::vector<LinkId> paths_;
    std::vector<double> latency_;
    std::vector<double> minBw_;
    std::vector<double> invBwSum_;
};

/**
 * Which all-pairs route storage a topology builds. Both storages
 * answer every route query with bitwise identical results; they trade
 * arena memory (CSR) against per-walk pointer chasing (NextHop).
 */
enum class RouteStorageKind
{
    /** CSR below Topology::kNextHopAutoThreshold devices, else NextHop. */
    Auto,
    /** Explicit per-path arena (RouteTable). */
    CsrArena,
    /** Compressed first-hop matrix (NextHopTable). */
    NextHop,
};

/**
 * Base class for all network topologies.
 *
 * Route queries are served from a lazily built route storage (CSR
 * arena or next-hop matrix, see RouteStorageKind). The lazy build is
 * guarded (double-checked mutex + release-published flag), so a fully
 * constructed topology is safe to share across threads through `const`
 * references — including concurrent first use. One exception: route()
 * materialises into an unguarded per-topology scratch when the
 * next-hop storage is active (or the cache is disabled); concurrent
 * consumers must use walk() or the scalar queries, which is what all
 * of src/ does. Call finalizeRoutes() to pay the build cost eagerly
 * (System::make does) so worker threads never contend on the guard.
 *
 * The disableRouteCache()/enableRouteCache() and setRouteStorage()
 * hooks mutate cache state and are NOT thread-safe; they exist for
 * single-threaded configuration and benchmarking only.
 */
class Topology
{
  public:
    virtual ~Topology() = default;

    /**
     * Auto-policy cutover: systems at or above this many devices build
     * the compressed next-hop matrix instead of the CSR arena. Below
     * it the arena is small (a few MB) and keeps route() views stable;
     * above it the arena's O(devices² × avg hops) growth dominates
     * RSS, which is what blocked kilodevice systems.
     */
    static constexpr int kNextHopAutoThreshold = 512;

    // Copy/move keep links, adjacency, the storage policy, and any
    // built route tables, and start with a fresh (unheld) build mutex.
    // They exist so concrete factories can return by value; topologies
    // in active concurrent use are shared by const pointer/reference,
    // never copied.
    Topology(const Topology &other)
        : links_(other.links_),
          outIndex_(other.outIndex_),
          storageKind_(other.storageKind_),
          routes_(other.routes_),
          nextHops_(other.nextHops_)
    {
    }

    Topology(Topology &&other) noexcept
        : links_(std::move(other.links_)),
          outIndex_(std::move(other.outIndex_)),
          storageKind_(other.storageKind_),
          routes_(std::move(other.routes_)),
          nextHops_(std::move(other.nextHops_))
    {
    }

    Topology &operator=(const Topology &other)
    {
        links_ = other.links_;
        outIndex_ = other.outIndex_;
        storageKind_ = other.storageKind_;
        routes_ = other.routes_;
        nextHops_ = other.nextHops_;
        uncachedScratch_.clear();
        return *this;
    }

    Topology &operator=(Topology &&other) noexcept
    {
        links_ = std::move(other.links_);
        outIndex_ = std::move(other.outIndex_);
        storageKind_ = other.storageKind_;
        routes_ = std::move(other.routes_);
        nextHops_ = std::move(other.nextHops_);
        uncachedScratch_.clear();
        return *this;
    }

    /** Number of compute devices (excludes internal switch nodes). */
    virtual int numDevices() const = 0;

    /** Total number of nodes including internal switches. */
    virtual int numNodes() const { return numDevices(); }

    /** All unidirectional links. */
    const std::vector<Link> &links() const { return links_; }

    /**
     * Deterministic route between two compute devices, freshly derived
     * (allocates). Consumers should prefer walk() or the cached route().
     * @return Link indices in traversal order; empty when src == dst.
     */
    virtual std::vector<LinkId> computeRoute(DeviceId src,
                                             DeviceId dst) const = 0;

    /**
     * Deterministic route between two compute devices as a contiguous
     * view. Under the CSR storage the view borrows the arena and stays
     * valid for the topology's lifetime; under the next-hop storage
     * (or with the cache disabled) it is materialised into a per-
     * topology scratch that the next route() call on this topology
     * overwrites — single-threaded use only in those modes. Link-
     * iterating hot paths should use walk() instead, which never
     * materialises.
     * @return Borrowed link-id view; empty when src == dst.
     */
    PathView route(DeviceId src, DeviceId dst) const;

    /**
     * Allocation-free cursor over the deterministic route, uniform
     * across both route storages (and the disabled-cache mode, where
     * it walks the scratch route() just derived). Safe to use
     * concurrently from many threads on a finalized topology.
     */
    PathWalker walk(DeviceId src, DeviceId dst) const;

    /** Hop count of the deterministic route (0 when src == dst). */
    int hops(DeviceId src, DeviceId dst) const;

    /** Sum of per-link latencies along the deterministic route. */
    double pathLatency(DeviceId src, DeviceId dst) const;

    /** Minimum link bandwidth along the deterministic route. */
    double pathBandwidth(DeviceId src, DeviceId dst) const;

    /**
     * Σ 1/bandwidth over the deterministic route's links: the Eq.(1)
     * store-and-forward volume term per byte (0 when src == dst).
     */
    double pathInvBandwidthSum(DeviceId src, DeviceId dst) const;

    /** Human-readable topology name for bench output. */
    virtual std::string name() const = 0;

    /**
     * Index of the directed link src→dst, or -1 when the two nodes are
     * not directly connected. O(1) hash lookup.
     */
    LinkId linkBetween(NodeId src, NodeId dst) const;

    /** The CSR route cache (built on first use; CSR storage only). */
    const RouteTable &routeTable() const;

    /** The compressed route storage (next-hop storage only). */
    const NextHopTable &nextHopTable() const;

    /**
     * Select the all-pairs route storage. A configuration hook, NOT
     * thread-safe: call before the topology is shared (System::make
     * applies SystemConfig::routeStorage here). Any previously built
     * storage is dropped and rebuilt lazily under the new policy.
     */
    void setRouteStorage(RouteStorageKind kind);

    /** The configured storage policy (Auto until overridden). */
    RouteStorageKind routeStorage() const { return storageKind_; }

    /** The policy Auto resolves to for this topology's size. */
    RouteStorageKind activeRouteStorage() const
    {
        if (storageKind_ != RouteStorageKind::Auto)
            return storageKind_;
        return numDevices() >= kNextHopAutoThreshold
            ? RouteStorageKind::NextHop
            : RouteStorageKind::CsrArena;
    }

    /** True once the compressed next-hop storage is built and serving. */
    bool usingNextHopRoutes() const { return nextHops_.built(); }

    /**
     * Heap bytes of the built route storage (whichever representation
     * is active; builds it first). The number perf_routing records.
     */
    std::size_t routeStorageBytes() const;

    /**
     * Test hook: route every query through computeRoute() instead of
     * the cache (bench/perf_routing's no-cache baseline). The scratch-
     * backed PathView returned by route() in this mode is invalidated
     * by the next route() call on this topology.
     */
    void disableRouteCache();

    /** Undo disableRouteCache(); the storage rebuilds on next query. */
    void enableRouteCache() { routes_.enableCache(); }

    /**
     * Eagerly build the all-pairs route storage (no-op when it is
     * already built or disabled). Invoked at topology finalization by
     * System::make so a System can be shared as shared_ptr<const>
     * across sweep worker threads with no lazy state left to race on.
     */
    void finalizeRoutes() const { ensureRoutes(); }

  protected:
    Topology() = default;

    /** Append a link and register it in the adjacency index. */
    LinkId addLink(NodeId src, NodeId dst, double bandwidth, double latency);

    /**
     * Drop any built route storage so the next query rebuilds it from
     * computeRoute(). For subclasses whose link state changes after
     * construction (the fault overlay mutates bandwidths and reroutes
     * around failed links); a finalized base topology stays immutable.
     * NOT thread-safe — callers must quiesce route queries first, which
     * the engine guarantees by applying faults at iteration boundaries.
     */
    void invalidateRouteStorage();

    std::vector<Link> links_;

  private:
    /** Build the active route storage if absent and caching is enabled. */
    void ensureRoutes() const;

    // Per-source dst → link-id adjacency index (O(1) linkBetween).
    std::vector<std::unordered_map<NodeId, LinkId>> outIndex_;

    // Storage policy; resolved by activeRouteStorage() at build time.
    RouteStorageKind storageKind_ = RouteStorageKind::Auto;

    // Lazily built all-pairs storages (at most one is ever built);
    // mutable so const queries can build.
    mutable RouteTable routes_;
    mutable NextHopTable nextHops_;
    // Serialises the lazy build when several threads race on first use.
    mutable std::mutex routeBuildMutex_;
    // Backing storage for route() views while the cache is disabled or
    // the next-hop storage is active. Deliberately unguarded: those
    // route() modes are single-threaded (tests and benchmarking).
    mutable std::vector<LinkId> uncachedScratch_;
};

} // namespace moentwine

#endif // MOENTWINE_TOPOLOGY_TOPOLOGY_HH
