/**
 * @file
 * Abstract network topology interface shared by the wafer-scale mesh and
 * the GPU-cluster baselines.
 *
 * A topology is a directed graph of unidirectional links between nodes.
 * Nodes [0, numDevices()) are compute devices; a topology may add
 * internal nodes beyond that range (e.g. switches in a DGX cluster).
 * Routing is deterministic: route(src, dst) always returns the same link
 * sequence, which is what lets the analytical congestion model accumulate
 * per-link traffic volumes reproducibly.
 */

#ifndef MOENTWINE_TOPOLOGY_TOPOLOGY_HH
#define MOENTWINE_TOPOLOGY_TOPOLOGY_HH

#include <string>
#include <vector>

namespace moentwine {

/** Identifier of a compute device or internal switch node. */
using NodeId = int;
/** Identifier of a compute device (subset of NodeId space). */
using DeviceId = int;
/** Index into Topology::links(). */
using LinkId = int;

/**
 * One unidirectional link. Bandwidth is bytes/second for this direction;
 * latency is the per-traversal link latency of Eq.(1) in the paper.
 */
struct Link
{
    NodeId src;
    NodeId dst;
    double bandwidth;
    double latency;
};

/**
 * Base class for all network topologies.
 */
class Topology
{
  public:
    virtual ~Topology() = default;

    /** Number of compute devices (excludes internal switch nodes). */
    virtual int numDevices() const = 0;

    /** Total number of nodes including internal switches. */
    virtual int numNodes() const { return numDevices(); }

    /** All unidirectional links. */
    const std::vector<Link> &links() const { return links_; }

    /**
     * Deterministic route between two compute devices.
     * @return Link indices in traversal order; empty when src == dst.
     */
    virtual std::vector<LinkId> route(DeviceId src, DeviceId dst) const = 0;

    /** Hop count of the deterministic route (0 when src == dst). */
    int hops(DeviceId src, DeviceId dst) const;

    /** Sum of per-link latencies along the deterministic route. */
    double pathLatency(DeviceId src, DeviceId dst) const;

    /** Minimum link bandwidth along the deterministic route. */
    double pathBandwidth(DeviceId src, DeviceId dst) const;

    /** Human-readable topology name for bench output. */
    virtual std::string name() const = 0;

    /**
     * Index of the directed link src→dst, or -1 when the two nodes are
     * not directly connected.
     */
    LinkId linkBetween(NodeId src, NodeId dst) const;

  protected:
    /** Append a link and register it in the adjacency index. */
    LinkId addLink(NodeId src, NodeId dst, double bandwidth, double latency);

    std::vector<Link> links_;

  private:
    // (src, dst) → link id map, linear-scanned per src bucket; adjacency
    // degree is tiny (≤ 5 for meshes, ≤ numNodes for switches).
    std::vector<std::vector<LinkId>> outLinks_;
};

} // namespace moentwine

#endif // MOENTWINE_TOPOLOGY_TOPOLOGY_HH
