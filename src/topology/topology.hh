/**
 * @file
 * Abstract network topology interface shared by the wafer-scale mesh and
 * the GPU-cluster baselines.
 *
 * A topology is a directed graph of unidirectional links between nodes.
 * Nodes [0, numDevices()) are compute devices; a topology may add
 * internal nodes beyond that range (e.g. switches in a DGX cluster).
 * Routing is deterministic: route(src, dst) always returns the same link
 * sequence, which is what lets the analytical congestion model accumulate
 * per-link traffic volumes reproducibly.
 *
 * Because routes are deterministic and topologies immutable after
 * construction, all-pairs routes are computed once into a RouteTable (a
 * flat CSR-style arena) and every subsequent route(), hops(),
 * pathLatency() and pathBandwidth() query is a non-allocating table
 * lookup. Concrete topologies implement computeRoute(); consumers use
 * the cached route() which returns a borrowed PathView into the arena.
 */

#ifndef MOENTWINE_TOPOLOGY_TOPOLOGY_HH
#define MOENTWINE_TOPOLOGY_TOPOLOGY_HH

#include <atomic>
#include <cstddef>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace moentwine {

/** Identifier of a compute device or internal switch node. */
using NodeId = int;
/** Identifier of a compute device (subset of NodeId space). */
using DeviceId = int;
/** Index into Topology::links(). */
using LinkId = int;

/**
 * One unidirectional link. Bandwidth is bytes/second for this direction;
 * latency is the per-traversal link latency of Eq.(1) in the paper.
 */
struct Link
{
    NodeId src;
    NodeId dst;
    double bandwidth;
    double latency;
};

/**
 * Non-owning view of a deterministic route: a contiguous LinkId range
 * borrowed from the owning topology's route arena (or, with the route
 * cache disabled, from a per-topology scratch buffer that the next
 * route() call overwrites). Valid while the topology is alive and, on
 * the uncached path, only until the next route() call.
 */
class PathView
{
  public:
    using value_type = LinkId;
    using const_iterator = const LinkId *;

    PathView() = default;

    PathView(const LinkId *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    const_iterator begin() const { return data_; }
    const_iterator end() const { return data_ + size_; }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    LinkId operator[](std::size_t i) const { return data_[i]; }
    LinkId front() const { return data_[0]; }
    LinkId back() const { return data_[size_ - 1]; }

  private:
    const LinkId *data_ = nullptr;
    std::size_t size_ = 0;
};

class Topology;

/**
 * All-pairs route cache over the compute devices of a topology.
 *
 * Paths are stored back to back in one arena vector indexed by a
 * (src, dst) offset table (CSR layout), so a route lookup is two loads
 * and no allocation. Per-pair scalars answer the Eq.(1) ingredients
 * without re-walking links:
 *  - latency(): sum of per-link latencies along the route;
 *  - minBandwidth(): bottleneck link bandwidth;
 *  - invBandwidthSum(): Σ 1/bw over the route's links, so the
 *    store-and-forward volume term of Eq.(1) is bytes × invBandwidthSum.
 */
class RouteTable
{
  public:
    RouteTable() = default;

    // Copies/moves transfer the table data and the built flag. They
    // exist so topology factories can return by value; copying a table
    // that another thread is concurrently building is not supported
    // (finalized topologies are shared by pointer, never copied).
    RouteTable(const RouteTable &other) { *this = other; }
    RouteTable(RouteTable &&other) noexcept { *this = std::move(other); }
    RouteTable &operator=(const RouteTable &other);
    RouteTable &operator=(RouteTable &&other) noexcept;

    /** Precompute all-pairs routes by calling topo.computeRoute(). */
    void build(const Topology &topo);

    /**
     * True once build() has run (and the cache is not disabled). An
     * acquire load: a true result makes the arena built by another
     * thread visible, which is what lets worker threads share one
     * finalized topology without synchronising per query.
     */
    bool built() const { return built_.load(std::memory_order_acquire); }

    /**
     * Test hook: drop the table and make built() stay false so the
     * owning topology falls back to computeRoute() on every query.
     * Used by bench/perf_routing to measure the no-cache baseline.
     */
    void disableCache();

    /** Re-enable caching after disableCache() (table rebuilds lazily). */
    void enableCache() { disabled_ = false; }

    /** True while the test hook holds the cache off. */
    bool disabled() const { return disabled_; }

    /** Cached route; empty when src == dst. */
    PathView path(DeviceId src, DeviceId dst) const
    {
        const std::size_t p = pairIndex(src, dst);
        const std::size_t begin = offsets_[p];
        return PathView(paths_.data() + begin, offsets_[p + 1] - begin);
    }

    /** Hop count of the cached route. */
    int hops(DeviceId src, DeviceId dst) const
    {
        const std::size_t p = pairIndex(src, dst);
        return static_cast<int>(offsets_[p + 1] - offsets_[p]);
    }

    /** Sum of per-link latencies along the cached route. */
    double latency(DeviceId src, DeviceId dst) const
    {
        return latency_[pairIndex(src, dst)];
    }

    /** Bottleneck bandwidth of the cached route (0 for zero-hop). */
    double minBandwidth(DeviceId src, DeviceId dst) const
    {
        return minBw_[pairIndex(src, dst)];
    }

    /** Σ 1/bandwidth over the cached route's links. */
    double invBandwidthSum(DeviceId src, DeviceId dst) const
    {
        return invBwSum_[pairIndex(src, dst)];
    }

  private:
    std::size_t pairIndex(DeviceId src, DeviceId dst) const
    {
        return static_cast<std::size_t>(src) *
                   static_cast<std::size_t>(devices_) +
               static_cast<std::size_t>(dst);
    }

    int devices_ = 0;
    // Release-published by build(); see built(). Makes the table safe
    // to race-check from concurrent const queries.
    std::atomic<bool> built_{false};
    bool disabled_ = false;
    std::vector<std::size_t> offsets_;
    std::vector<LinkId> paths_;
    std::vector<double> latency_;
    std::vector<double> minBw_;
    std::vector<double> invBwSum_;
};

/**
 * Base class for all network topologies.
 *
 * Route queries are served from a lazily built RouteTable. The lazy
 * build is guarded (double-checked mutex + release-published flag), so
 * a fully constructed topology is safe to share across threads through
 * `const` references — including concurrent first use. Call
 * finalizeRoutes() to pay the build cost eagerly (System::make does)
 * so worker threads never contend on the guard.
 *
 * The disableRouteCache()/enableRouteCache() test hooks mutate cache
 * state and are NOT thread-safe; they exist for single-threaded
 * baseline benchmarking only.
 */
class Topology
{
  public:
    virtual ~Topology() = default;

    // Copy/move keep links, adjacency, and any built route table, and
    // start with a fresh (unheld) build mutex. They exist so concrete
    // factories can return by value; topologies in active concurrent
    // use are shared by const pointer/reference, never copied.
    Topology(const Topology &other)
        : links_(other.links_),
          outIndex_(other.outIndex_),
          routes_(other.routes_)
    {
    }

    Topology(Topology &&other) noexcept
        : links_(std::move(other.links_)),
          outIndex_(std::move(other.outIndex_)),
          routes_(std::move(other.routes_))
    {
    }

    Topology &operator=(const Topology &other)
    {
        links_ = other.links_;
        outIndex_ = other.outIndex_;
        routes_ = other.routes_;
        uncachedScratch_.clear();
        return *this;
    }

    Topology &operator=(Topology &&other) noexcept
    {
        links_ = std::move(other.links_);
        outIndex_ = std::move(other.outIndex_);
        routes_ = std::move(other.routes_);
        uncachedScratch_.clear();
        return *this;
    }

    /** Number of compute devices (excludes internal switch nodes). */
    virtual int numDevices() const = 0;

    /** Total number of nodes including internal switches. */
    virtual int numNodes() const { return numDevices(); }

    /** All unidirectional links. */
    const std::vector<Link> &links() const { return links_; }

    /**
     * Deterministic route between two compute devices, freshly derived
     * (allocates). Consumers should prefer the cached route().
     * @return Link indices in traversal order; empty when src == dst.
     */
    virtual std::vector<LinkId> computeRoute(DeviceId src,
                                             DeviceId dst) const = 0;

    /**
     * Deterministic route between two compute devices, answered from
     * the all-pairs cache without allocating.
     * @return Borrowed link-id view; empty when src == dst.
     */
    PathView route(DeviceId src, DeviceId dst) const;

    /** Hop count of the deterministic route (0 when src == dst). */
    int hops(DeviceId src, DeviceId dst) const;

    /** Sum of per-link latencies along the deterministic route. */
    double pathLatency(DeviceId src, DeviceId dst) const;

    /** Minimum link bandwidth along the deterministic route. */
    double pathBandwidth(DeviceId src, DeviceId dst) const;

    /**
     * Σ 1/bandwidth over the deterministic route's links: the Eq.(1)
     * store-and-forward volume term per byte (0 when src == dst).
     */
    double pathInvBandwidthSum(DeviceId src, DeviceId dst) const;

    /** Human-readable topology name for bench output. */
    virtual std::string name() const = 0;

    /**
     * Index of the directed link src→dst, or -1 when the two nodes are
     * not directly connected. O(1) hash lookup.
     */
    LinkId linkBetween(NodeId src, NodeId dst) const;

    /** The all-pairs route cache (built on first use). */
    const RouteTable &routeTable() const;

    /**
     * Test hook: route every query through computeRoute() instead of
     * the cache (bench/perf_routing's no-cache baseline). The scratch-
     * backed PathView returned by route() in this mode is invalidated
     * by the next route() call on this topology.
     */
    void disableRouteCache() { routes_.disableCache(); }

    /** Undo disableRouteCache(); the table rebuilds on next query. */
    void enableRouteCache() { routes_.enableCache(); }

    /**
     * Eagerly build the all-pairs route cache (no-op when it is
     * already built or disabled). Invoked at topology finalization by
     * System::make so a System can be shared as shared_ptr<const>
     * across sweep worker threads with no lazy state left to race on.
     */
    void finalizeRoutes() const { ensureRoutes(); }

  protected:
    Topology() = default;

    /** Append a link and register it in the adjacency index. */
    LinkId addLink(NodeId src, NodeId dst, double bandwidth, double latency);

    std::vector<Link> links_;

  private:
    /** Build the route table if it is absent and caching is enabled. */
    void ensureRoutes() const;

    // Per-source dst → link-id adjacency index (O(1) linkBetween).
    std::vector<std::unordered_map<NodeId, LinkId>> outIndex_;

    // Lazily built all-pairs cache; mutable so const queries can build.
    mutable RouteTable routes_;
    // Serialises the lazy build when several threads race on first use.
    mutable std::mutex routeBuildMutex_;
    // Backing storage for route() views while the cache is disabled.
    // Deliberately unguarded: the disabled mode is a single-threaded
    // benchmarking hook.
    mutable std::vector<LinkId> uncachedScratch_;
};

} // namespace moentwine

#endif // MOENTWINE_TOPOLOGY_TOPOLOGY_HH
