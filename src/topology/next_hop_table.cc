#include "topology/next_hop_table.hh"

#include "common/logging.hh"
#include "topology/topology.hh"

namespace moentwine {

NextHopTable &
NextHopTable::operator=(const NextHopTable &other)
{
    if (this == &other)
        return *this;
    devices_ = other.devices_;
    nodes_ = other.nodes_;
    nextHop_ = other.nextHop_;
    hops_ = other.hops_;
    latency_ = other.latency_;
    invBwSum_ = other.invBwSum_;
    built_.store(other.built_.load(std::memory_order_acquire),
                 std::memory_order_release);
    return *this;
}

NextHopTable &
NextHopTable::operator=(NextHopTable &&other) noexcept
{
    if (this == &other)
        return *this;
    devices_ = other.devices_;
    nodes_ = other.nodes_;
    nextHop_ = std::move(other.nextHop_);
    hops_ = std::move(other.hops_);
    latency_ = std::move(other.latency_);
    invBwSum_ = std::move(other.invBwSum_);
    built_.store(other.built_.load(std::memory_order_acquire),
                 std::memory_order_release);
    other.built_.store(false, std::memory_order_release);
    return *this;
}

void
NextHopTable::build(const Topology &topo)
{
    const int devices = topo.numDevices();
    MOE_ASSERT(devices > 0, "next-hop table over an empty topology");
    devices_ = devices;
    nodes_ = topo.numNodes();
    MOE_ASSERT(nodes_ >= devices_, "devices must be a node-id prefix");

    const auto pairs = static_cast<std::size_t>(devices) *
        static_cast<std::size_t>(devices);
    nextHop_.assign(static_cast<std::size_t>(nodes_) *
                        static_cast<std::size_t>(devices),
                    -1);
    hops_.assign(pairs, 0);
    latency_.assign(pairs, 0.0);
    invBwSum_.assign(pairs, 0.0);

    const auto &links = topo.links();
    std::size_t p = 0;
    for (DeviceId src = 0; src < devices; ++src) {
        for (DeviceId dst = 0; dst < devices; ++dst, ++p) {
            const auto path = topo.computeRoute(src, dst);
            // Scalars accumulate link by link in path order — the
            // exact summation order of RouteTable::build(), so both
            // storages answer bitwise identical doubles.
            double lat = 0.0;
            double invBw = 0.0;
            for (const LinkId l : path) {
                const Link &link = links[static_cast<std::size_t>(l)];
                lat += link.latency;
                invBw += 1.0 / link.bandwidth;
                const std::size_t slot =
                    static_cast<std::size_t>(link.src) *
                        static_cast<std::size_t>(devices) +
                    static_cast<std::size_t>(dst);
                if (nextHop_[slot] == -1) {
                    nextHop_[slot] = l;
                } else {
                    // Two routes crossing link.src toward dst must
                    // leave over the same link, or the compressed
                    // matrix cannot reproduce the arena's paths.
                    MOE_ASSERT(nextHop_[slot] == l,
                               "routing is not next-hop consistent");
                }
            }
            hops_[p] = static_cast<int>(path.size());
            latency_[p] = lat;
            invBwSum_[p] = invBw;
        }
    }
    // Publish the finished matrix: pairs with built() acquire loads.
    built_.store(true, std::memory_order_release);
}

void
NextHopTable::reset()
{
    built_.store(false, std::memory_order_release);
    devices_ = 0;
    nodes_ = 0;
    nextHop_.clear();
    nextHop_.shrink_to_fit();
    hops_.clear();
    hops_.shrink_to_fit();
    latency_.clear();
    latency_.shrink_to_fit();
    invBwSum_.clear();
    invBwSum_.shrink_to_fit();
}

std::size_t
NextHopTable::storageBytes() const
{
    return nextHop_.capacity() * sizeof(LinkId) +
        hops_.capacity() * sizeof(int) +
        latency_.capacity() * sizeof(double) +
        invBwSum_.capacity() * sizeof(double);
}

} // namespace moentwine
