#include "cluster/router.hh"

#include "common/logging.hh"

namespace moentwine {

std::string
routerPolicyName(RouterPolicy policy)
{
    switch (policy) {
    case RouterPolicy::RoundRobin:
        return "round_robin";
    case RouterPolicy::LeastKvPressure:
        return "least_kv";
    case RouterPolicy::LeastQueueDepth:
        return "least_queue";
    case RouterPolicy::PowerOfTwo:
        return "power_of_two";
    case RouterPolicy::ScenarioAffinity:
        return "scenario_affinity";
    }
    panic("unknown router policy");
}

const std::vector<RouterPolicy> &
allRouterPolicies()
{
    static const std::vector<RouterPolicy> policies = {
        RouterPolicy::RoundRobin,
        RouterPolicy::LeastKvPressure,
        RouterPolicy::LeastQueueDepth,
        RouterPolicy::PowerOfTwo,
        RouterPolicy::ScenarioAffinity,
    };
    return policies;
}

namespace {

/** True when @p p may receive @p r at all. */
bool
eligible(const ReplicaPressure &p, const ServeRequest &r)
{
    return p.routable && r.kvTokens() <= p.kvBudgetTokens;
}

/**
 * The less loaded of two candidates: fewer outstanding requests, ties
 * to the lower KV fraction, then to the lower replica id.
 */
const ReplicaPressure &
lessLoaded(const ReplicaPressure &a, const ReplicaPressure &b)
{
    if (a.outstanding() != b.outstanding())
        return a.outstanding() < b.outstanding() ? a : b;
    if (a.kvFraction != b.kvFraction)
        return a.kvFraction < b.kvFraction ? a : b;
    return a.replica <= b.replica ? a : b;
}

} // namespace

RequestRouter::RequestRouter(RouterPolicy policy, std::uint64_t seed)
    : policy_(policy), rng_(seed)
{
}

int
RequestRouter::route(const ServeRequest &r,
                     const std::vector<ReplicaPressure> &pressures)
{
    const std::size_t n = pressures.size();
    MOE_ASSERT(n > 0, "route() over an empty fleet");

    switch (policy_) {
    case RouterPolicy::RoundRobin: {
        // Cyclic scan from the cursor; the cursor advances past the
        // pick so ineligible replicas are skipped, not starved around.
        for (std::size_t step = 0; step < n; ++step) {
            const std::size_t i = (rrCursor_ + step) % n;
            if (eligible(pressures[i], r)) {
                rrCursor_ = (i + 1) % n;
                return pressures[i].replica;
            }
        }
        return -1;
    }
    case RouterPolicy::LeastKvPressure: {
        int best = -1;
        for (std::size_t i = 0; i < n; ++i) {
            const ReplicaPressure &p = pressures[i];
            if (!eligible(p, r))
                continue;
            if (best < 0)
                best = static_cast<int>(i);
            const ReplicaPressure &b =
                pressures[static_cast<std::size_t>(best)];
            if (p.kvFraction < b.kvFraction ||
                (p.kvFraction == b.kvFraction &&
                 p.queueDepth < b.queueDepth)) {
                best = static_cast<int>(i);
            }
        }
        return best < 0
            ? -1
            : pressures[static_cast<std::size_t>(best)].replica;
    }
    case RouterPolicy::LeastQueueDepth: {
        int best = -1;
        for (std::size_t i = 0; i < n; ++i) {
            const ReplicaPressure &p = pressures[i];
            if (!eligible(p, r))
                continue;
            if (best < 0)
                best = static_cast<int>(i);
            const ReplicaPressure &b =
                pressures[static_cast<std::size_t>(best)];
            if (p.queueDepth < b.queueDepth ||
                (p.queueDepth == b.queueDepth &&
                 p.kvFraction < b.kvFraction)) {
                best = static_cast<int>(i);
            }
        }
        return best < 0
            ? -1
            : pressures[static_cast<std::size_t>(best)].replica;
    }
    case RouterPolicy::PowerOfTwo: {
        std::vector<const ReplicaPressure *> candidates;
        candidates.reserve(n);
        for (const ReplicaPressure &p : pressures) {
            if (eligible(p, r))
                candidates.push_back(&p);
        }
        if (candidates.empty())
            return -1;
        if (candidates.size() == 1)
            return candidates.front()->replica;
        // Two distinct uniform draws (the second skips the first), then
        // the classic power-of-two-choices pick of the less loaded.
        const std::size_t a = static_cast<std::size_t>(
            rng_.below(candidates.size()));
        std::size_t b = static_cast<std::size_t>(
            rng_.below(candidates.size() - 1));
        if (b >= a)
            ++b;
        return lessLoaded(*candidates[a], *candidates[b]).replica;
    }
    case RouterPolicy::ScenarioAffinity: {
        // The scenario hashes to a home replica; unroutable homes
        // probe linearly upward so a drained home degrades gracefully
        // to its neighbour instead of dropping the scenario.
        const std::size_t home =
            static_cast<std::size_t>(r.scenario) % n;
        for (std::size_t step = 0; step < n; ++step) {
            const std::size_t i = (home + step) % n;
            if (eligible(pressures[i], r))
                return pressures[i].replica;
        }
        return -1;
    }
    }
    panic("unknown router policy");
}

} // namespace moentwine
