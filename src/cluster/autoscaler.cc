#include "cluster/autoscaler.hh"

#include <limits>

#include "common/logging.hh"

namespace moentwine {

Autoscaler::Autoscaler(const AutoscalerConfig &cfg)
    : cfg_(cfg),
      nextEval_(cfg.enabled ? cfg.evalPeriodSec
                            : std::numeric_limits<double>::infinity())
{
    if (!cfg_.enabled)
        return;
    MOE_ASSERT(cfg_.evalPeriodSec > 0.0,
               "autoscaler evaluation period must be positive");
    MOE_ASSERT(cfg_.spinUpDelaySec >= 0.0,
               "negative spin-up delay");
    MOE_ASSERT(cfg_.scaleDownThreshold < cfg_.scaleUpThreshold,
               "autoscaler deadband is inverted");
    MOE_ASSERT(cfg_.minReplicas >= 1,
               "autoscaler must keep at least one replica");
}

ScaleDecision
Autoscaler::evaluate(double avgOutstanding, int admitting,
                     int wakeable, int starting)
{
    MOE_ASSERT(cfg_.enabled, "evaluate() on a disabled autoscaler");
    nextEval_ += cfg_.evalPeriodSec;
    if (avgOutstanding > cfg_.scaleUpThreshold && starting == 0 &&
        wakeable > 0) {
        return ScaleDecision::Up;
    }
    if (avgOutstanding < cfg_.scaleDownThreshold &&
        admitting > cfg_.minReplicas) {
        return ScaleDecision::Down;
    }
    return ScaleDecision::Hold;
}

} // namespace moentwine
