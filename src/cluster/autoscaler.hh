/**
 * @file
 * Autoscaler: reactive replica-count control against the offered load.
 *
 * The fleet evaluates the autoscaler on a fixed virtual-time cadence.
 * The control signal is the mean outstanding work (queued + running
 * requests) per admitting replica — the quantity a diurnal arrival
 * curve modulates directly. Crossing the high watermark wakes the
 * lowest-id parked replica (charged a configurable cold-start delay
 * before it becomes routable); crossing the low watermark drains the
 * highest-id admitting replica (it stops receiving dispatches,
 * finishes its in-flight work, then parks). The lowest-id admitting
 * replicas are therefore the stable core of the fleet, and scale
 * decisions are a pure function of the load signal sequence —
 * deterministic like everything else in the simulator.
 *
 * One decision per evaluation: scaling moves one replica at a time,
 * which bounds oscillation without a separate cooldown knob (the
 * evaluation period is the cooldown).
 */

#ifndef MOENTWINE_CLUSTER_AUTOSCALER_HH
#define MOENTWINE_CLUSTER_AUTOSCALER_HH

namespace moentwine {

/** Autoscaler configuration. */
struct AutoscalerConfig
{
    /** Master switch; disabled keeps the replica set static. */
    bool enabled = false;
    /** Virtual seconds between control evaluations. */
    double evalPeriodSec = 0.25;
    /** Cold-start delay: virtual seconds between waking a parked
     *  replica and it becoming routable. */
    double spinUpDelaySec = 0.5;
    /** Wake a parked replica above this mean outstanding per
     *  admitting replica. */
    double scaleUpThreshold = 8.0;
    /** Drain an admitting replica below this mean outstanding per
     *  admitting replica. */
    double scaleDownThreshold = 2.0;
    /** Admitting replicas the scaler never drains below. */
    int minReplicas = 1;
};

/** One control decision. */
enum class ScaleDecision
{
    Hold, ///< load inside the deadband (or no replica to move)
    Up,   ///< wake the lowest-id parked replica
    Down, ///< drain the highest-id admitting replica
};

/**
 * The control law. The fleet owns the replica state machine; this
 * class owns only the evaluation schedule and the threshold logic.
 */
class Autoscaler
{
  public:
    explicit Autoscaler(const AutoscalerConfig &cfg);

    bool enabled() const { return cfg_.enabled; }

    /** Virtual time of the next evaluation (infinity when disabled). */
    double nextEval() const { return nextEval_; }

    /**
     * Evaluate the control law at nextEval() and advance the schedule
     * by one period.
     * @param avgOutstanding Mean outstanding (queued + running)
     *                       requests per admitting replica.
     * @param admitting      Replicas currently accepting dispatches
     *                       (Active; Starting and Draining excluded).
     * @param wakeable       Parked replicas available to wake.
     * @param starting       Replicas already spinning up (a pending
     *                       start satisfies the up-pressure, so the
     *                       scaler holds instead of waking another).
     */
    ScaleDecision evaluate(double avgOutstanding, int admitting,
                           int wakeable, int starting);

    const AutoscalerConfig &config() const { return cfg_; }

  private:
    AutoscalerConfig cfg_;
    double nextEval_;
};

} // namespace moentwine

#endif // MOENTWINE_CLUSTER_AUTOSCALER_HH
