#include "cluster/fleet.hh"

#include <algorithm>
#include <limits>
#include <string>

#include "common/logging.hh"
#include "common/stats.hh"

namespace moentwine {

const char *
scaleEventKindName(ScaleEventKind kind)
{
    switch (kind) {
    case ScaleEventKind::Start:
        return "start";
    case ScaleEventKind::Activate:
        return "activate";
    case ScaleEventKind::Drain:
        return "drain";
    case ScaleEventKind::Park:
        return "park";
    }
    panic("unknown scale-event kind");
}

namespace {

/**
 * Replica life cycle. Only Active replicas receive dispatches;
 * Draining and Starting replicas still run (Draining finishes its
 * in-flight work, Starting has none by construction — a replica is
 * always drained before it parks, so it wakes empty).
 */
enum class ReplicaState
{
    Active,
    Starting,
    Draining,
    Parked,
};

} // namespace

struct FleetSimulator::Replica
{
    std::unique_ptr<StatRegistry> stats;
    std::unique_ptr<ServeLoop> loop;
    ReplicaState state = ReplicaState::Active;
    double activationTime = 0.0; ///< Starting only
};

FleetSimulator::FleetSimulator(const FleetConfig &cfg) : cfg_(cfg)
{
    MOE_ASSERT(!cfg_.replicas.empty(),
               "fleet needs at least one replica");
    MOE_ASSERT(cfg_.numRequests > 0, "fleet run needs requests");
    bool anyActive = false;
    systems_.reserve(cfg_.replicas.size());
    for (const ReplicaConfig &rc : cfg_.replicas) {
        anyActive = anyActive || !rc.startParked;
        systems_.push_back(
            std::make_shared<const System>(System::make(rc.system)));
    }
    MOE_ASSERT(anyActive,
               "fleet cannot start with every replica parked");
}

FleetSimulator::~FleetSimulator() = default;

FleetReport
FleetSimulator::run()
{
    const int n = static_cast<int>(cfg_.replicas.size());
    const double inf = std::numeric_limits<double>::infinity();
    const int fleetPid = 2 * n;

    // Fleet-level registry; merged with the replica registries (in
    // replica-id order) into stats_ at the end of the run.
    StatRegistry fleetStats;
    const StatRegistry::Handle dispatchedStat =
        fleetStats.counter("fleet.dispatched");
    const StatRegistry::Handle frontShedStat =
        fleetStats.counter("fleet.front_door_shed");
    const StatRegistry::Handle startStat =
        fleetStats.counter("fleet.scale.starts");
    const StatRegistry::Handle activateStat =
        fleetStats.counter("fleet.scale.activations");
    const StatRegistry::Handle drainStat =
        fleetStats.counter("fleet.scale.drains");
    const StatRegistry::Handle parkStat =
        fleetStats.counter("fleet.scale.parks");
    if (trace_ != nullptr) {
        trace_->processName(fleetPid, "fleet");
        trace_->threadName(fleetPid, 0, "dispatch");
        trace_->threadName(fleetPid, 1, "scale");
    }

    std::vector<Replica> reps;
    reps.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        Replica rep;
        rep.stats = std::make_unique<StatRegistry>();
        rep.loop = std::make_unique<ServeLoop>(
            systems_[static_cast<std::size_t>(i)]->mapping(),
            cfg_.replicas[static_cast<std::size_t>(i)].serve,
            rep.stats.get(), trace_, 2 * i,
            "replica" + std::to_string(i),
            "replica" + std::to_string(i) + ".requests");
        rep.state = cfg_.replicas[static_cast<std::size_t>(i)].startParked
            ? ReplicaState::Parked
            : ReplicaState::Active;
        reps.push_back(std::move(rep));
    }

    // Mirror the bare serving loop's time-zero boundary on every
    // initially active replica: a fault plan firing at iteration 0
    // stamps its event time at 0 in both drivers.
    for (Replica &rep : reps) {
        if (rep.state == ReplicaState::Active) {
            const bool started = rep.loop->beginIteration();
            MOE_ASSERT(!started, "iteration started with no requests");
        }
    }

    const std::vector<ServeRequest> stream =
        ArrivalProcess(cfg_.arrival).generate(cfg_.numRequests);
    RequestRouter router(cfg_.router, cfg_.routerSeed);
    Autoscaler scaler(cfg_.autoscaler);

    FleetReport report;
    report.totalRequests = static_cast<int>(stream.size());
    report.dispatched.assign(static_cast<std::size_t>(n), 0);
    std::size_t nextDispatch = 0;

    const auto recordScale = [&](double t, int replica,
                                 ScaleEventKind kind,
                                 StatRegistry::Handle stat) {
        report.scaleEvents.push_back(ScaleEvent{t, replica, kind});
        fleetStats.add(stat);
        if (trace_ != nullptr) {
            trace_->instant(
                fleetPid, 1, "scale", scaleEventKindName(kind), t,
                {{"replica",
                  TraceSink::num(static_cast<long long>(replica))}});
        }
    };

    for (;;) {
        // Termination: everything dispatched, every replica drained.
        bool done = nextDispatch == stream.size();
        for (int i = 0; done && i < n; ++i) {
            const Replica &rep = reps[static_cast<std::size_t>(i)];
            if (rep.loop->inFlight() || !rep.loop->allFinished())
                done = false;
        }
        if (done)
            break;

        // Earliest pending action of each class; lowest replica id
        // wins inside a class (strict < keeps the first minimum).
        double tAct = inf;
        int actId = -1;
        double tStart = inf;
        int startId = -1;
        double tComp = inf;
        int compId = -1;
        for (int i = 0; i < n; ++i) {
            Replica &rep = reps[static_cast<std::size_t>(i)];
            if (rep.state == ReplicaState::Starting &&
                rep.activationTime < tAct) {
                tAct = rep.activationTime;
                actId = i;
            }
            if (rep.loop->inFlight()) {
                if (rep.loop->iterationEnd() < tComp) {
                    tComp = rep.loop->iterationEnd();
                    compId = i;
                }
            } else if ((rep.state == ReplicaState::Active ||
                        rep.state == ReplicaState::Draining) &&
                       !rep.loop->allFinished() &&
                       rep.loop->now() < tStart) {
                tStart = rep.loop->now();
                startId = i;
            }
        }
        const double tArr = nextDispatch < stream.size()
            ? stream[nextDispatch].arrivalTime
            : inf;
        const double tEval = scaler.enabled() ? scaler.nextEval() : inf;

        // Fixed priority at exact time ties: activation, arrival,
        // start, completion, autoscaler evaluation. Arrivals before
        // starts is the invariant the ServeLoop push contract needs
        // (every request reaches its replica no later than the
        // boundary covering its arrival time); activations before
        // arrivals make a replica whose spin-up ends at t routable
        // for a request arriving at t.
        if (tAct <= tArr && tAct <= tStart && tAct <= tComp &&
            tAct <= tEval) {
            Replica &rep = reps[static_cast<std::size_t>(actId)];
            rep.state = ReplicaState::Active;
            rep.loop->advanceIdle(std::max(rep.loop->now(), tAct));
            recordScale(tAct, actId, ScaleEventKind::Activate,
                        activateStat);
        } else if (tArr <= tStart && tArr <= tComp && tArr <= tEval) {
            const ServeRequest &req = stream[nextDispatch++];
            std::vector<ReplicaPressure> pressures(
                static_cast<std::size_t>(n));
            for (int i = 0; i < n; ++i) {
                const Replica &rep = reps[static_cast<std::size_t>(i)];
                const ContinuousBatchScheduler &sched =
                    rep.loop->scheduler();
                ReplicaPressure &p =
                    pressures[static_cast<std::size_t>(i)];
                p.replica = i;
                p.queueDepth = sched.queueDepth();
                p.runningCount = sched.runningCount();
                p.kvFraction = sched.kvReservedFraction();
                p.kvBudgetTokens =
                    rep.loop->config().scheduler.kvBudgetTokens;
                p.routable = rep.state == ReplicaState::Active;
            }
            const int target = router.route(req, pressures);
            if (target < 0) {
                // Front-door shed: no routable replica can ever fit
                // the request (it never enters a scheduler).
                ++report.frontDoorShed;
                fleetStats.add(frontShedStat);
                if (trace_ != nullptr) {
                    trace_->instant(
                        fleetPid, 0, "dispatch", "front_door_shed",
                        tArr,
                        {{"request",
                          TraceSink::num(
                              static_cast<long long>(req.id))}});
                }
            } else {
                Replica &rep = reps[static_cast<std::size_t>(target)];
                if (!rep.loop->inFlight()) {
                    rep.loop->advanceIdle(
                        std::max(rep.loop->now(), tArr));
                }
                rep.loop->push(req);
                ++report.dispatched[static_cast<std::size_t>(target)];
                fleetStats.add(dispatchedStat);
                if (trace_ != nullptr) {
                    trace_->instant(
                        fleetPid, 0, "dispatch", "dispatch", tArr,
                        {{"request",
                          TraceSink::num(
                              static_cast<long long>(req.id))},
                         {"replica",
                          TraceSink::num(
                              static_cast<long long>(target))}});
                }
            }
        } else if (tStart <= tComp && tStart <= tEval) {
            Replica &rep = reps[static_cast<std::size_t>(startId)];
            const bool started = rep.loop->beginIteration();
            // false is only legal when the boundary shed the last of
            // the replica's work (degraded-KV admission control).
            MOE_ASSERT(started || rep.loop->allFinished(),
                       "idle replica with runnable work");
        } else if (tComp <= tEval) {
            Replica &rep = reps[static_cast<std::size_t>(compId)];
            rep.loop->finishIteration();
            if (rep.loop->allFinished()) {
                if (nextDispatch < stream.size()) {
                    // The bare loop runs one more (empty) boundary
                    // when it goes idle mid-stream; mirror it so a
                    // fault event landing in the idle gap stamps the
                    // same time in both drivers.
                    const bool started = rep.loop->beginIteration();
                    MOE_ASSERT(!started,
                               "drained replica began an iteration");
                }
                if (rep.state == ReplicaState::Draining) {
                    rep.state = ReplicaState::Parked;
                    recordScale(tComp, compId, ScaleEventKind::Park,
                                parkStat);
                }
            }
        } else {
            MOE_ASSERT(tEval < inf, "fleet event loop stalled");
            int admitting = 0;
            int wakeable = 0;
            int starting = 0;
            double outstanding = 0.0;
            for (const Replica &rep : reps) {
                switch (rep.state) {
                case ReplicaState::Active:
                    ++admitting;
                    outstanding += rep.loop->scheduler().queueDepth() +
                        rep.loop->scheduler().runningCount();
                    break;
                case ReplicaState::Parked:
                    ++wakeable;
                    break;
                case ReplicaState::Starting:
                    ++starting;
                    break;
                case ReplicaState::Draining:
                    break;
                }
            }
            const double avg =
                admitting > 0 ? outstanding / admitting : 0.0;
            const ScaleDecision decision =
                scaler.evaluate(avg, admitting, wakeable, starting);
            if (decision == ScaleDecision::Up) {
                for (int i = 0; i < n; ++i) {
                    Replica &rep = reps[static_cast<std::size_t>(i)];
                    if (rep.state != ReplicaState::Parked)
                        continue;
                    rep.state = ReplicaState::Starting;
                    rep.activationTime =
                        tEval + cfg_.autoscaler.spinUpDelaySec;
                    recordScale(tEval, i, ScaleEventKind::Start,
                                startStat);
                    break;
                }
            } else if (decision == ScaleDecision::Down) {
                for (int i = n - 1; i >= 0; --i) {
                    Replica &rep = reps[static_cast<std::size_t>(i)];
                    if (rep.state != ReplicaState::Active)
                        continue;
                    rep.state = ReplicaState::Draining;
                    recordScale(tEval, i, ScaleEventKind::Drain,
                                drainStat);
                    if (rep.loop->allFinished() &&
                        !rep.loop->inFlight()) {
                        // Already empty: parks on the spot.
                        rep.state = ReplicaState::Parked;
                        recordScale(tEval, i, ScaleEventKind::Park,
                                    parkStat);
                    }
                    break;
                }
            }
        }
    }

    // Per-replica reports in replica-id order; the fleet-wide
    // percentile samples accumulate in the same order so the merge is
    // deterministic.
    Summary ttft;
    Summary tpot;
    Summary latency;
    double outputTokens = 0.0;
    int good = 0;
    report.replicas.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        ServeReport r =
            reps[static_cast<std::size_t>(i)].loop->finalize();
        report.iterationsTotal += r.iterations;
        report.makespan = std::max(report.makespan, r.makespan);
        report.shedRequests += r.shedRequests;
        report.failedRequests += r.failedRequests;
        report.retriesTotal += r.retriesTotal;
        for (const RequestMetrics &m : r.requests) {
            if (m.outcome != RequestOutcome::Completed)
                continue;
            ++report.completedRequests;
            ttft.add(m.ttft());
            tpot.add(m.tpot());
            latency.add(m.latency());
            outputTokens += m.outputTokens;
            good += cfg_.slo.met(m);
        }
        report.replicas.push_back(std::move(r));
    }
    if (ttft.count() > 0) {
        report.ttftP50 = ttft.percentile(50.0);
        report.ttftP95 = ttft.percentile(95.0);
        report.ttftP99 = ttft.percentile(99.0);
        report.tpotP50 = tpot.percentile(50.0);
        report.tpotP95 = tpot.percentile(95.0);
        report.tpotP99 = tpot.percentile(99.0);
        report.latencyP50 = latency.percentile(50.0);
        report.latencyP99 = latency.percentile(99.0);
    }
    if (report.makespan > 0.0) {
        report.throughputTokensPerSec =
            outputTokens / report.makespan;
        report.goodputRequestsPerSec = good / report.makespan;
    }
    report.sloAttainment = report.totalRequests > 0
        ? static_cast<double>(good) /
            static_cast<double>(report.totalRequests)
        : 0.0;

    std::vector<StatRegistry> parts;
    parts.reserve(static_cast<std::size_t>(n) + 1);
    parts.push_back(std::move(fleetStats));
    for (Replica &rep : reps)
        parts.push_back(std::move(*rep.stats));
    stats_ = StatRegistry::mergedInOrder(parts);
    return report;
}

} // namespace moentwine
