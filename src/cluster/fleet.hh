/**
 * @file
 * FleetSimulator: N serving replicas behind one request router on a
 * shared virtual clock.
 *
 * Each replica is a full ServeLoop over its own System (heterogeneous
 * fleets mix platforms — e.g. WSC wafers next to DGX nodes — via
 * per-replica SystemConfig), with its own engine, scheduler, fault
 * plan, and StatRegistry. The fleet generates a single arrival stream
 * and dispatches each request at its arrival instant through a
 * RequestRouter policy; an optional Autoscaler wakes parked replicas
 * under load (charging a cold-start spin-up delay) and drains surplus
 * ones (stop admitting, finish in-flight work, park).
 *
 * Execution is a deterministic single-threaded event loop. Pending
 * actions are ordered by virtual time with a fixed priority at exact
 * ties — activation, arrival, iteration start, iteration completion,
 * autoscaler evaluation — and by replica id inside a class. Iteration
 * durations are pure functions of the iteration's own plan (ServeLoop
 * steps the engine eagerly at the boundary), so the interleaving is a
 * pure function of the configuration: equal configs produce byte-
 * identical fleet reports for any host, worker count, or run.
 *
 * Determinism contract (pinned by tests/cluster_test.cpp): a fleet of
 * one always-active replica under RoundRobin with the autoscaler off
 * reproduces a bare ServeSimulator run bitwise — same report, same
 * stats — because both drive the identical ServeLoop with the
 * identical call sequence.
 */

#ifndef MOENTWINE_CLUSTER_FLEET_HH
#define MOENTWINE_CLUSTER_FLEET_HH

#include <memory>
#include <vector>

#include "cluster/autoscaler.hh"
#include "cluster/router.hh"
#include "core/moentwine.hh"
#include "serve/serve_loop.hh"

namespace moentwine {

/** One replica of the fleet. */
struct ReplicaConfig
{
    /** Platform the replica serves on (heterogeneous fleets differ
     *  here). */
    SystemConfig system;
    /**
     * Per-replica serving configuration: engine, scheduler, SLO, and
     * fault plan/policy thread through unchanged. The arrival process
     * and numRequests are ignored — the fleet owns the stream.
     */
    ServeConfig serve;
    /** Start in the parked pool (autoscaler spare capacity) instead
     *  of admitting from time zero. */
    bool startParked = false;
};

/** Fleet-run configuration. */
struct FleetConfig
{
    /** The replicas, id = index. At least one must not start parked. */
    std::vector<ReplicaConfig> replicas;
    /** Fleet-wide arrival stream. */
    ArrivalConfig arrival;
    /** Requests to generate and dispatch. */
    int numRequests = 200;
    /** Dispatch policy of the front door. */
    RouterPolicy router = RouterPolicy::RoundRobin;
    /** Router Rng seed (PowerOfTwo draws; other policies ignore it). */
    std::uint64_t routerSeed = 0;
    /** Fleet-level SLO for aggregate goodput/attainment accounting
     *  (replicas keep their own SLO for per-replica reports). */
    SloConfig slo;
    /** Replica-count control (disabled = static fleet). */
    AutoscalerConfig autoscaler;
};

/** Replica life-cycle transition kinds the autoscaler drives. */
enum class ScaleEventKind
{
    Start,    ///< parked → starting (cold start begins)
    Activate, ///< starting → active (spin-up delay elapsed)
    Drain,    ///< active → draining (stops admitting)
    Park,     ///< draining → parked (in-flight work finished)
};

/** Human-readable transition name ("start", "activate", ...). */
const char *scaleEventKindName(ScaleEventKind kind);

/** One autoscaler-driven replica transition. */
struct ScaleEvent
{
    /** Virtual time of the transition (s). */
    double time = 0.0;
    /** Replica id. */
    int replica = 0;
    ScaleEventKind kind = ScaleEventKind::Start;
};

/** Aggregate fleet metrics of one run. */
struct FleetReport
{
    /** Per-replica serving reports, replica-id order. */
    std::vector<ServeReport> replicas;
    /** Requests dispatched to each replica, replica-id order. */
    std::vector<int> dispatched;

    /** Requests generated (dispatched + front-door shed). */
    int totalRequests = 0;
    /** Requests no routable replica could ever fit (never entered a
     *  scheduler; counted against SLO attainment). */
    int frontDoorShed = 0;
    /** Outcome sums across replicas. */
    int completedRequests = 0;
    int shedRequests = 0; ///< replica-level admission-control sheds
    int failedRequests = 0;
    int retriesTotal = 0;
    /** Engine iterations summed over replicas. */
    int iterationsTotal = 0;
    /** Latest replica virtual clock at the end of the run (s). */
    double makespan = 0.0;

    // Fleet-wide latency percentiles over all completions, merged in
    // replica-id order (zero when nothing completed).
    double ttftP50 = 0.0, ttftP95 = 0.0, ttftP99 = 0.0;
    double tpotP50 = 0.0, tpotP95 = 0.0, tpotP99 = 0.0;
    double latencyP50 = 0.0, latencyP99 = 0.0;

    /** Output tokens per second of makespan, fleet-wide. */
    double throughputTokensPerSec = 0.0;
    /** FleetConfig::slo-satisfying completions per second. */
    double goodputRequestsPerSec = 0.0;
    /** SLO-met fraction of totalRequests (front-door sheds count
     *  against it). */
    double sloAttainment = 0.0;

    /** Autoscaler transitions in processing order. */
    std::vector<ScaleEvent> scaleEvents;
};

/**
 * Multi-replica serving simulation behind one request router.
 */
class FleetSimulator
{
  public:
    /** Builds every replica's System up front; fatal on an invalid
     *  configuration (no replicas, all parked, ...). */
    explicit FleetSimulator(const FleetConfig &cfg);
    ~FleetSimulator();

    /** Run the stream to completion and report. Call once. */
    FleetReport run();

    /**
     * Stats of the run (populated by run()): the fleet-level registry
     * ("fleet.dispatched", "fleet.front_door_shed", "fleet.scale.*")
     * merged with every replica's registry in replica-id order — the
     * deterministic-aggregate idiom of src/obs/.
     */
    const StatRegistry &stats() const { return stats_; }

    /**
     * Attach a trace sink (null = no tracing). Replica i emits on
     * pids 2i ("replica<i>": iteration phases, faults, counters) and
     * 2i+1 ("replica<i>.requests"); the fleet emits dispatch and
     * scale instants on pid 2N ("fleet"). Must be set before run().
     */
    void setTrace(TraceSink *trace) { trace_ = trace; }

    const FleetConfig &config() const { return cfg_; }

    /** The per-replica systems, replica-id order (bench labelling). */
    const std::vector<std::shared_ptr<const System>> &systems() const
    {
        return systems_;
    }

  private:
    struct Replica;

    FleetConfig cfg_;
    std::vector<std::shared_ptr<const System>> systems_;
    StatRegistry stats_;
    TraceSink *trace_ = nullptr;
};

} // namespace moentwine

#endif // MOENTWINE_CLUSTER_FLEET_HH
