/**
 * @file
 * RequestRouter: the fleet front door's dispatch policy — which
 * replica gets the next request.
 *
 * A policy sees one ReplicaPressure snapshot per replica (in replica-id
 * order) describing load at the replica's most recent scheduling
 * boundary: wait-queue depth, running-batch size, and the reserved
 * fraction of the KV budget. The signals are the scheduler's own
 * pressure accessors (ContinuousBatchScheduler::queueDepth() /
 * runningCount() / kvReservedFraction()), so what the router acts on
 * is exactly what the observability layer records.
 *
 * Every policy is deterministic: given the same pressure sequence it
 * produces the same dispatch sequence. PowerOfTwo draws from an
 * explicitly seeded Rng owned by the router, so even the "random"
 * policy is a pure function of (seed, pressure history). Ties always
 * break toward the lowest replica id.
 */

#ifndef MOENTWINE_CLUSTER_ROUTER_HH
#define MOENTWINE_CLUSTER_ROUTER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "serve/request.hh"

namespace moentwine {

/** Fleet dispatch policy. */
enum class RouterPolicy
{
    RoundRobin,      ///< cyclic over routable replicas
    LeastKvPressure, ///< lowest reserved KV fraction
    LeastQueueDepth, ///< shortest wait queue
    PowerOfTwo,      ///< two random candidates, pick the less loaded
    ScenarioAffinity, ///< scenario id hashed to a home replica
};

/** Human-readable policy name ("round_robin", "least_kv", ...). */
std::string routerPolicyName(RouterPolicy policy);

/** All policies, in enum order (sweep axis / bench convenience). */
const std::vector<RouterPolicy> &allRouterPolicies();

/**
 * One replica's router-visible load at its last scheduling boundary.
 */
struct ReplicaPressure
{
    /** Fleet replica id (index into the fleet's replica vector). */
    int replica = 0;
    /** Requests waiting for admission. */
    int queueDepth = 0;
    /** Running-batch size. */
    int runningCount = 0;
    /** Reserved fraction of the full KV budget, in [0, 1]. */
    double kvFraction = 0.0;
    /** Full configured KV budget (tokens) — heterogeneous fleets
     *  filter replicas a request cannot ever fit. */
    int kvBudgetTokens = 0;
    /** False while the replica is parked, starting, or draining:
     *  the router must not dispatch to it. */
    bool routable = false;

    /** Outstanding work: queued plus running requests. */
    int outstanding() const { return queueDepth + runningCount; }
};

/**
 * Stateful fleet dispatch policy. One instance per fleet run.
 */
class RequestRouter
{
  public:
    /**
     * @param policy Dispatch policy.
     * @param seed   Rng seed (PowerOfTwo only; other policies draw
     *               nothing and ignore it).
     */
    explicit RequestRouter(RouterPolicy policy, std::uint64_t seed = 0);

    /**
     * Pick the replica for @p r among @p pressures (replica-id order,
     * one entry per fleet replica). Only routable replicas whose full
     * KV budget fits the request are candidates; returns -1 when no
     * candidate exists (the fleet front door sheds the request).
     */
    int route(const ServeRequest &r,
              const std::vector<ReplicaPressure> &pressures);

    RouterPolicy policy() const { return policy_; }

  private:
    RouterPolicy policy_;
    Rng rng_;                  ///< PowerOfTwo candidate draws
    std::size_t rrCursor_ = 0; ///< RoundRobin position
};

} // namespace moentwine

#endif // MOENTWINE_CLUSTER_ROUTER_HH
