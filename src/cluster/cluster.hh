/**
 * @file
 * Umbrella header of the fleet-scale serving subsystem: the request
 * router policies, the autoscaler control law, and the multi-replica
 * FleetSimulator composed from per-replica ServeLoops.
 */

#ifndef MOENTWINE_CLUSTER_CLUSTER_HH
#define MOENTWINE_CLUSTER_CLUSTER_HH

#include "cluster/autoscaler.hh"
#include "cluster/fleet.hh"
#include "cluster/router.hh"

#endif // MOENTWINE_CLUSTER_CLUSTER_HH
