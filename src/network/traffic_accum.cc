#include "network/traffic_accum.hh"

namespace moentwine {

namespace {

/** Floor for the sparse compaction trigger: buffers smaller than this
 *  (1 MB of entries) just accumulate and compact once, at emission. */
constexpr std::size_t kMinCompactEntries = std::size_t{1} << 16;

} // namespace

void TrafficAccumulator::reset(int devices, TrafficStorageKind kind)
{
    MOE_ASSERT(devices >= 0, "traffic accumulator device count negative");
    devices_ = devices;
    active_ = resolve(kind, devices);
    if (active_ == TrafficStorageKind::Dense) {
        const std::size_t cells = static_cast<std::size_t>(devices) *
            static_cast<std::size_t>(devices);
        if (dense_.size() != cells)
            dense_.assign(cells, 0.0);
        else
            std::fill(dense_.begin(), dense_.end(), 0.0);
        return;
    }
    const std::size_t numTiles =
        (static_cast<std::size_t>(devices) + kTileDevices - 1) /
        kTileDevices;
    tileBits_ = 0;
    while ((std::size_t{1} << tileBits_) < numTiles)
        ++tileBits_;
    // The radix histogram covers the in-tile digit (12 bits), the
    // combined two-tile digit (2·tileBits when that fits 16 bits), or
    // a single tile digit; 12 tile bits = 262144 devices.
    MOE_ASSERT(tileBits_ <= 12,
               "sparse traffic accumulation supports up to 262144 devices");
    const std::size_t histSize = std::size_t{1}
        << std::max<unsigned>(12, tileBits_ <= 8 ? 2 * tileBits_
                                                 : tileBits_);
    if (hist_.size() < histSize)
        hist_.assign(histSize, 0u);
    if (compactLimit_ < kMinCompactEntries)
        compactLimit_ = kMinCompactEntries;
    entries_.clear();
    sorted_ = true;
}

void TrafficAccumulator::compact() const
{
    if (sorted_)
        return;
    ++compactions_;
    const std::size_t n = entries_.size();
    scratch_.resize(n);
    // Stable LSD counting passes over the tile-order key: the in-tile
    // digit (12 bits), then the tile fields — one combined pass when
    // 2·tileBits fits the histogram (systems up to 16k devices), two
    // otherwise. Duplicate keys stay in arrival order throughout.
    radixPass(entries_.data(), scratch_.data(), n, 0,
              std::size_t{1} << 12);
    const Entry *sorted = scratch_.data();
    if (tileBits_ > 0 && tileBits_ <= 8) {
        radixPass(scratch_.data(), entries_.data(), n, 12,
                  std::size_t{1} << (2 * tileBits_));
        sorted = entries_.data();
    } else if (tileBits_ > 8) {
        radixPass(scratch_.data(), entries_.data(), n, 12,
                  std::size_t{1} << tileBits_);
        radixPass(entries_.data(), scratch_.data(), n, 12 + tileBits_,
                  std::size_t{1} << tileBits_);
        sorted = scratch_.data();
    }
    // Left-fold duplicates in arrival order: the same double-addition
    // sequence the dense matrix's in-place `+=` performs, so per-pair
    // sums stay bit-identical across storages and across mid-stream
    // compactions. Writing back into entries_ is safe even when it is
    // the sorted buffer itself — the write index never passes the read
    // index.
    std::size_t out = 0;
    for (std::size_t i = 0; i < n;) {
        const std::uint64_t key = sorted[i].first;
        double sum = sorted[i].second;
        for (++i; i < n && sorted[i].first == key; ++i)
            sum += sorted[i].second;
        entries_[out++] = Entry(key, sum);
    }
    entries_.resize(out);
    sorted_ = true;
    compactLimit_ =
        std::max(kMinCompactEntries, entries_.size() * 2);
}

void TrafficAccumulator::radixPass(const Entry *src, Entry *dst,
                                   std::size_t n, unsigned shift,
                                   std::size_t buckets) const
{
    std::fill(hist_.begin(),
              hist_.begin() + static_cast<std::ptrdiff_t>(buckets), 0u);
    const std::uint64_t mask = buckets - 1;
    for (std::size_t i = 0; i < n; ++i)
        ++hist_[(src[i].first >> shift) & mask];
    std::uint32_t base = 0;
    for (std::size_t b = 0; b < buckets; ++b) {
        const std::uint32_t count = hist_[b];
        hist_[b] = base;
        base += count;
    }
    for (std::size_t i = 0; i < n; ++i)
        dst[hist_[(src[i].first >> shift) & mask]++] = src[i];
}

double TrafficAccumulator::at(DeviceId src, DeviceId dst) const
{
    MOE_ASSERT(src >= 0 && src < devices_ && dst >= 0 && dst < devices_,
               "traffic accumulator pair out of range");
    if (active_ == TrafficStorageKind::Dense) {
        return dense_[static_cast<std::size_t>(src) *
                          static_cast<std::size_t>(devices_) +
                      static_cast<std::size_t>(dst)];
    }
    compact();
    const std::uint64_t key = tileOrderKey(src, dst);
    const auto it = std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const Entry &e, std::uint64_t k) { return e.first < k; });
    return (it != entries_.end() && it->first == key) ? it->second : 0.0;
}

std::size_t TrafficAccumulator::occupancy() const
{
    if (active_ == TrafficStorageKind::Sparse) {
        compact();
        std::size_t n = 0;
        for (const Entry &e : entries_) {
            if (e.second > 0.0)
                ++n;
        }
        return n;
    }
    std::size_t n = 0;
    for (const double v : dense_) {
        if (v > 0.0)
            ++n;
    }
    return n;
}

std::size_t TrafficAccumulator::storageBytes() const
{
    return dense_.capacity() * sizeof(double) +
        (entries_.capacity() + scratch_.capacity()) * sizeof(Entry) +
        hist_.capacity() * sizeof(std::uint32_t);
}

} // namespace moentwine
