/**
 * @file
 * Collective-communication timing models: ring reduce-scatter /
 * all-gather / all-reduce (including the entwined multi-hop rings of
 * ER-Mapping), hierarchical multi-wafer all-reduce, and the all-to-all
 * phase used for MoE token dispatch and combine.
 *
 * Ring collectives follow the textbook algorithm: a group of p devices
 * arranged in a ring exchanges p-1 chunk rounds per phase (reduce-scatter
 * and all-gather are one phase each; all-reduce is both). Each round a
 * device forwards bytes/p to its ring successor along the topology's
 * deterministic route, so an "entwined" ring whose neighbours sit two
 * mesh hops apart pays exactly the 2× round cost the paper describes.
 *
 * When several rings run concurrently they either
 *  - share no links (baseline mapping: quadrant-local rings), or
 *  - share links but are time-staggered (ER-Mapping: entwined rings send
 *    bi-directionally step by step, so intersecting links serve the two
 *    rings on alternating cycles without conflict — Fig. 8(d)).
 * The `staggered` flag selects the second model; with it disabled,
 * concurrent rounds are charged for link sharing, which is the honest
 * cost of naively interleaving rings without the ER schedule.
 */

#ifndef MOENTWINE_NETWORK_COLLECTIVES_HH
#define MOENTWINE_NETWORK_COLLECTIVES_HH

#include <vector>

#include "network/traffic.hh"
#include "topology/topology.hh"

namespace moentwine {

/** Which ring phase(s) to run. */
enum class RingOp
{
    ReduceScatter, ///< p-1 rounds; each device ends with 1/p of the sum.
    AllGather,     ///< p-1 rounds; each device ends with the full tensor.
    AllReduce,     ///< reduce-scatter followed by all-gather.
};

/** Result of a collective: completion time plus aggregated traffic. */
struct CollectiveTiming
{
    /** Completion time of the collective (seconds). */
    double time;
    /** Per-link volume accumulated over all rounds (for heatmaps). */
    PhaseTraffic traffic;
};

/**
 * Reusable per-caller buffers for the allocation-free collective entry
 * points. One engine owns one scratch per collective call site and
 * reuses it across iterations, so the attention all-reduce and the ESP
 * expert all-reduce perform no steady-state allocation (mirroring the
 * MoE all-to-all's allToAllInto() path). Scratches are caller state,
 * never mapping state: mappings stay immutable and shareable across
 * sweep worker threads.
 */
struct CollectiveScratch
{
    /** @param topo Topology the collectives run on (must outlive). */
    explicit CollectiveScratch(const Topology &topo)
        : traffic(topo), round(topo)
    {
    }

    /** Re-point both buffers at a same-link-set topology (see
     *  PhaseTraffic::retarget); used at fault boundaries. */
    void retarget(const Topology &topo)
    {
        traffic.retarget(topo);
        round.retarget(topo);
    }

    /** Aggregated per-link volume of the last collective run. */
    PhaseTraffic traffic;
    /** Per-round accumulation buffer for the un-staggered path. */
    PhaseTraffic round;
};

/**
 * Ring collective over one or more concurrent rings.
 *
 * @param topo      Network to run on.
 * @param rings     Ordered device lists; every ring must have the same
 *                  size p ≥ 1. Ring i's device j forwards to device
 *                  (j+1) mod p.
 * @param bytes     Full tensor size per device (chunk = bytes / p).
 * @param op        Phase(s) to run.
 * @param staggered True when rounds of different rings sharing a link
 *                  are time-staggered (ER-Mapping's entwined schedule).
 * @return Completion time and aggregated traffic.
 */
CollectiveTiming ringCollective(const Topology &topo,
                                const std::vector<std::vector<DeviceId>>
                                    &rings,
                                double bytes, RingOp op, bool staggered);

/**
 * Allocation-free ringCollective(): clears @p scratch (keeping its
 * volume buffers), accumulates the collective's per-link traffic into
 * scratch.traffic — using scratch.round on the un-staggered path
 * instead of a fresh per-call PhaseTraffic — and returns the
 * completion time. Identical results to ringCollective().
 */
double ringCollectiveInto(const Topology &topo,
                          const std::vector<std::vector<DeviceId>> &rings,
                          double bytes, RingOp op, bool staggered,
                          CollectiveScratch &scratch);

/**
 * Hierarchical all-reduce for multi-wafer systems (Fig. 10(c)): an
 * intra-wafer reduce-scatter over @p intraRings followed by an
 * inter-wafer all-gather over @p interRings. Used by Hierarchical
 * ER-Mapping; both stages use the staggered entwined schedule.
 */
CollectiveTiming hierarchicalAllReduce(const Topology &topo,
                                       const std::vector<
                                           std::vector<DeviceId>>
                                           &intraRings,
                                       const std::vector<
                                           std::vector<DeviceId>>
                                           &interRings,
                                       double bytes);

/** Allocation-free hierarchicalAllReduce() (see ringCollectiveInto). */
double hierarchicalAllReduceInto(const Topology &topo,
                                 const std::vector<std::vector<DeviceId>>
                                     &intraRings,
                                 const std::vector<std::vector<DeviceId>>
                                     &interRings,
                                 double bytes, CollectiveScratch &scratch);

/**
 * All-to-all phase (token dispatch or combine) from explicit flows.
 * Completion time is the congestion-aware phase time of the flow set.
 */
CollectiveTiming allToAll(const Topology &topo,
                          const std::vector<Flow> &flows);

/**
 * Allocation-free all-to-all: clears @p traffic (which keeps its
 * volume buffer), accumulates @p flows into it, and returns the phase
 * time. The engine reuses one PhaseTraffic per phase across
 * iterations through this entry point.
 */
double allToAllInto(const std::vector<Flow> &flows, PhaseTraffic &traffic);

} // namespace moentwine

#endif // MOENTWINE_NETWORK_COLLECTIVES_HH
