/**
 * @file
 * Occupancy-adaptive per-(src, dst) traffic accumulation for the token
 * router's flow aggregation.
 *
 * The MoE all-to-all touches O(dp · experts · replicas · tp) device
 * pairs — a vanishing fraction of devices² at wafer scale (a 16k-device
 * system has 268M pairs but dispatch reaches only a few hundred
 * thousand of them). The dense byte matrix that made 1k devices fast
 * therefore becomes the memory wall at 10k+ devices: devices² doubles
 * is ~2 GB per phase at 16k, allocated and cleared every iteration.
 *
 * TrafficAccumulator hides the storage choice behind one interface,
 * mirroring the RouteStorageKind policy of the routing core:
 *
 *  - Dense: a devices² double matrix (today's representation; O(1)
 *    add, O(devices²) memory and clear);
 *  - Sparse: an append-only buffer of (pair, bytes) entries compacted
 *    by a stable radix sort — add() is a sequential push (no hashing,
 *    no random cache-line touches), duplicates merge at compaction in
 *    arrival order, and memory stays O(distinct pairs) because the
 *    buffer self-compacts whenever it doubles past the last distinct
 *    count. Steady-state allocation-free once the buffers reach the
 *    workload's high-water mark;
 *  - Auto: Dense below kSparseAutoThreshold devices, Sparse at/above.
 *
 * Both storages are bitwise equivalent: per-pair byte sums accumulate
 * in identical arrival order — the sparse merge is a left fold over
 * entries kept in arrival order by the *stable* sort, and folding via
 * an intermediate partial sum (compaction) is the same double-addition
 * sequence as dense's in-place `+=` — and forEachTiled() emits the
 * non-zero pairs of either storage in the same deterministic
 * tile-major order: (src-tile, dst-tile, src, dst) with
 * kTileDevices×kTileDevices tiles. The tiling is what blocks the
 * matrix→PhaseTraffic::addFlow reduction for cache locality: flows of
 * one (src, dst) block walk routes with hot next-hop rows instead of
 * striding the full matrix. Systems with at most kTileDevices devices
 * fit in a single tile, so their emission order is plain row-major —
 * identical to the historical dense scan.
 */

#ifndef MOENTWINE_NETWORK_TRAFFIC_ACCUM_HH
#define MOENTWINE_NETWORK_TRAFFIC_ACCUM_HH

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "topology/graph.hh"

namespace moentwine {

/**
 * Which per-(src, dst) accumulator the token router uses. Both kinds
 * produce bitwise identical flow lists; they trade the dense matrix's
 * O(devices²) memory and clear against the sparse path's per-emission
 * radix compaction of the appended entries.
 */
enum class TrafficStorageKind
{
    /** Dense below TrafficAccumulator::kSparseAutoThreshold devices,
     *  Sparse at/above. */
    Auto,
    /** Explicit devices×devices byte matrix. */
    Dense,
    /** Self-compacting append buffer of touched (src, dst) pairs. */
    Sparse,
};

/**
 * Per-(src, dst) byte accumulator behind the TrafficStorageKind policy.
 *
 * Lifecycle per iteration: reset() (keeps capacity), add() for every
 * logical transfer, forEachTiled() to materialise flows. All three are
 * allocation-free in steady state under both storages; the sparse path
 * allocates only while growing toward the workload's high-water
 * occupancy.
 */
class TrafficAccumulator
{
  public:
    /**
     * Auto-policy cutover: systems at or above this many devices use
     * the sparse accumulator. Below it the dense matrix is at most
     * ~128 MB and its branch-free add/clear wins; at or above it the
     * matrix's devices² growth (2.1 GB at 16k devices) dominates RSS
     * while MoE dispatch still touches only O(dp · experts · tp) pairs.
     */
    static constexpr int kSparseAutoThreshold = 4096;

    /**
     * Edge length of the (src, dst) emission tiles. 64×64 pairs cover
     * a 32 KB dense block and keep the destination next-hop columns of
     * one tile resident across the route walks of its flows. Also the
     * compatibility knob: systems with <= kTileDevices devices emit in
     * plain row-major order, bit-identical to the pre-tiling scan.
     */
    static constexpr int kTileDevices = 64;

    /** The storage Auto resolves to for a system of @p devices. */
    static TrafficStorageKind resolve(TrafficStorageKind kind, int devices)
    {
        if (kind != TrafficStorageKind::Auto)
            return kind;
        return devices >= kSparseAutoThreshold ? TrafficStorageKind::Sparse
                                               : TrafficStorageKind::Dense;
    }

    /** Heap bytes the dense matrix needs for @p devices (analytic). */
    static std::size_t denseBytes(int devices)
    {
        return static_cast<std::size_t>(devices) *
            static_cast<std::size_t>(devices) * sizeof(double);
    }

    /**
     * Clear and re-shape for a system of @p devices under @p kind
     * (Auto resolves by device count). Buffers keep their capacity, so
     * repeated resets at a fixed size allocate nothing (dense) or
     * nothing once the buffers reached the workload's high-water
     * entry count (sparse).
     */
    void reset(int devices, TrafficStorageKind kind);

    /** Accumulate @p bytes onto the (src, dst) pair. */
    void add(DeviceId src, DeviceId dst, double bytes)
    {
        if (active_ == TrafficStorageKind::Dense) {
            dense_[static_cast<std::size_t>(src) *
                       static_cast<std::size_t>(devices_) +
                   static_cast<std::size_t>(dst)] += bytes;
            return;
        }
        entries_.emplace_back(tileOrderKey(src, dst), bytes);
        sorted_ = false;
        if (entries_.size() >= compactLimit_)
            compact();
    }

    /** Accumulated bytes of one pair (0 when never touched). */
    double at(DeviceId src, DeviceId dst) const;

    /**
     * Number of distinct pairs holding a positive byte sum (sparse:
     * compacts, then counts, O(entries); dense: counted by scan,
     * O(devices²)).
     */
    std::size_t occupancy() const;

    /** The storage in use since the last reset() (never Auto). */
    TrafficStorageKind activeKind() const { return active_; }

    /** Device count of the last reset(). */
    int devices() const { return devices_; }

    /**
     * Sparse compaction passes (radix sort + duplicate fold) run so
     * far, across resets — an observability counter for the obs
     * layer (always 0 under the dense storage). Mid-stream
     * compactions signal the append buffer doubling past the
     * workload's distinct-pair count; emission-time ones are the
     * expected one-per-iteration sort.
     */
    std::uint64_t compactions() const { return compactions_; }

    /** Heap footprint of the accumulator (all retained buffers). */
    std::size_t storageBytes() const;

    /**
     * Emit every pair with positive bytes as fn(src, dst, bytes), in
     * tile-major order — (src / kTileDevices, dst / kTileDevices, src,
     * dst) lexicographic — identically under both storages. The dense
     * path scans the matrix in blocked order; the sparse path compacts
     * its append buffer into the same order (stable LSD radix passes
     * over reused scratch vectors plus an arrival-order duplicate
     * merge: O(entries), no steady-state allocation).
     */
    template <typename Fn>
    void forEachTiled(Fn &&fn)
    {
        if (devices_ <= 0)
            return;
        if (active_ == TrafficStorageKind::Dense) {
            const int T = kTileDevices;
            for (int st = 0; st < devices_; st += T) {
                const int sEnd = std::min(st + T, devices_);
                for (int dt = 0; dt < devices_; dt += T) {
                    const int dEnd = std::min(dt + T, devices_);
                    for (int s = st; s < sEnd; ++s) {
                        const double *row = dense_.data() +
                            static_cast<std::size_t>(s) *
                                static_cast<std::size_t>(devices_);
                        for (int d = dt; d < dEnd; ++d) {
                            if (row[d] > 0.0)
                                fn(static_cast<DeviceId>(s),
                                   static_cast<DeviceId>(d), row[d]);
                        }
                    }
                }
            }
            return;
        }
        compact();
        for (const Entry &e : entries_) {
            if (e.second <= 0.0)
                continue;
            DeviceId s, d;
            unpackTileOrderKey(e.first, s, d);
            fn(s, d, e.second);
        }
    }

  private:
    /**
     * Pack a pair so plain ascending order equals tile-major order:
     * [src-tile : tileBits_][dst-tile : tileBits_][src-in-tile : 6]
     * [dst-in-tile : 6] (kTileDevices = 64 fixes the 6-bit fields;
     * tileBits_ is sized to the device count at reset()). Keeping the
     * two tile fields adjacent lets the radix sort cover both in one
     * counting pass on systems up to 16k devices.
     */
    std::uint64_t tileOrderKey(DeviceId src, DeviceId dst) const
    {
        const auto s = static_cast<std::uint64_t>(
            static_cast<std::uint32_t>(src));
        const auto d = static_cast<std::uint64_t>(
            static_cast<std::uint32_t>(dst));
        return ((s >> 6) << (12 + tileBits_)) | ((d >> 6) << 12) |
            ((s & 63u) << 6) | (d & 63u);
    }

    void unpackTileOrderKey(std::uint64_t key, DeviceId &src,
                            DeviceId &dst) const
    {
        const std::uint64_t tileMask = (std::uint64_t{1} << tileBits_) - 1;
        src = static_cast<DeviceId>(((key >> (12 + tileBits_)) << 6) |
                                    ((key >> 6) & 63u));
        dst = static_cast<DeviceId>((((key >> 12) & tileMask) << 6) |
                                    (key & 63u));
    }

    using Entry = std::pair<std::uint64_t, double>;

    /**
     * Compact the append buffer: stable-radix-sort the entries by
     * tile-order key (LSD counting passes: in-tile digit, then
     * dst-tile, then src-tile) and left-fold duplicate keys in arrival
     * order. Logically a no-op — every observable per-pair value is
     * bit-identical before and after (hence const + mutable buffers) —
     * so it doubles as the emission sort and as the mid-stream memory
     * bound. O(entries), allocation-free at steady state.
     */
    void compact() const;

    /** One stable counting pass on digit (key >> shift) & (buckets-1). */
    void radixPass(const Entry *src, Entry *dst, std::size_t n,
                   unsigned shift, std::size_t buckets) const;

    int devices_ = 0;
    TrafficStorageKind active_ = TrafficStorageKind::Dense;

    // Dense storage: row-major src × devices + dst byte matrix.
    std::vector<double> dense_;

    // Sparse storage: append buffer of (tile-order key, bytes) entries
    // plus the radix ping-pong scratch and digit histogram. compact()
    // folds duplicates whenever the buffer doubles past the last
    // distinct count, so memory tracks distinct pairs, not adds. All
    // mutable: compaction never changes an observable value.
    mutable std::vector<Entry> entries_;
    mutable std::vector<Entry> scratch_;
    mutable std::vector<std::uint32_t> hist_;
    mutable std::size_t compactLimit_ = 0;
    mutable bool sorted_ = false;
    mutable std::uint64_t compactions_ = 0;
    unsigned tileBits_ = 0;
};

} // namespace moentwine

#endif // MOENTWINE_NETWORK_TRAFFIC_ACCUM_HH
