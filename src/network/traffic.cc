#include "network/traffic.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace moentwine {

double
flowTime(const Topology &topo, DeviceId src, DeviceId dst, double bytes)
{
    if (src == dst)
        return 0.0;
    // Eq.(1): each hop stores and forwards the full payload, so the
    // total is bytes × Σ 1/bw plus the summed link latencies — both
    // precomputed per pair by the route cache.
    return bytes * topo.pathInvBandwidthSum(src, dst) +
        topo.pathLatency(src, dst);
}

PhaseTraffic::PhaseTraffic(const Topology &topo)
    : topo_(&topo), volume_(topo.links().size(), 0.0)
{
}

void
PhaseTraffic::retarget(const Topology &topo)
{
    MOE_ASSERT(topo.links().size() == volume_.size(),
               "retarget across topologies with different link sets");
    topo_ = &topo;
    clear();
}

void
PhaseTraffic::clear()
{
    std::fill(volume_.begin(), volume_.end(), 0.0);
    maxPathLatency_ = 0.0;
    totalFlowBytes_ = 0.0;
}

void
PhaseTraffic::addFlow(DeviceId src, DeviceId dst, double bytes)
{
    MOE_ASSERT(bytes >= 0.0, "flow volume must be non-negative");
    if (src == dst || bytes == 0.0)
        return;
    // Walk the deterministic route without borrowing an arena slice:
    // under the CSR storage the walker iterates the cached view, under
    // the compressed storage it follows next-hop links — either way
    // the link order (and therefore the latency summation) is the one
    // computeRoute() defines, and no allocation happens.
    double pathLatency = 0.0;
    for (const LinkId l : topo_->walk(src, dst)) {
        MOE_ASSERT(l >= 0 && static_cast<std::size_t>(l) < volume_.size(),
                   "bad link id in route walk");
        volume_[static_cast<std::size_t>(l)] += bytes;
        pathLatency += topo_->links()[static_cast<std::size_t>(l)].latency;
    }
    maxPathLatency_ = std::max(maxPathLatency_, pathLatency);
    totalFlowBytes_ += bytes;
}

void
PhaseTraffic::addFlows(const std::vector<Flow> &flows)
{
    for (const Flow &f : flows)
        addFlow(f.src, f.dst, f.bytes);
}

void
PhaseTraffic::merge(const PhaseTraffic &other)
{
    MOE_ASSERT(volume_.size() == other.volume_.size(),
               "merging phases over different topologies");
    for (std::size_t i = 0; i < volume_.size(); ++i)
        volume_[i] += other.volume_[i];
    maxPathLatency_ = std::max(maxPathLatency_, other.maxPathLatency_);
    totalFlowBytes_ += other.totalFlowBytes_;
}

double
PhaseTraffic::serializationTime() const
{
    double worst = 0.0;
    for (std::size_t i = 0; i < volume_.size(); ++i) {
        if (volume_[i] <= 0.0)
            continue;
        worst = std::max(worst, volume_[i] / topo_->links()[i].bandwidth);
    }
    return worst;
}

double
PhaseTraffic::linkVolume(LinkId l) const
{
    MOE_ASSERT(l >= 0 && static_cast<std::size_t>(l) < volume_.size(),
               "bad link id");
    return volume_[static_cast<std::size_t>(l)];
}

double
PhaseTraffic::maxLinkVolume() const
{
    double worst = 0.0;
    for (double v : volume_)
        worst = std::max(worst, v);
    return worst;
}

double
PhaseTraffic::totalByteHops() const
{
    double total = 0.0;
    for (double v : volume_)
        total += v;
    return total;
}

int
PhaseTraffic::busyLinkCount() const
{
    int n = 0;
    for (double v : volume_)
        if (v > 0.0)
            ++n;
    return n;
}

std::vector<bool>
PhaseTraffic::hotLinks(double fraction) const
{
    MOE_ASSERT(fraction >= 0.0 && fraction <= 1.0,
               "hot-link fraction must be in [0, 1]");
    const double peak = maxLinkVolume();
    std::vector<bool> hot(volume_.size(), false);
    if (peak <= 0.0)
        return hot;
    for (std::size_t i = 0; i < volume_.size(); ++i)
        hot[i] = volume_[i] > fraction * peak;
    return hot;
}

double
PhaseTraffic::idleBytes(LinkId l, double window) const
{
    MOE_ASSERT(window >= 0.0, "idle window must be non-negative");
    const Link &link = topo_->links()[static_cast<std::size_t>(l)];
    const double budget = link.bandwidth * window -
        volume_[static_cast<std::size_t>(l)];
    return std::max(0.0, budget);
}

std::string
PhaseTraffic::heatmapAscii(const MeshTopology &mesh) const
{
    const double peak = maxLinkVolume();
    auto digit = [&](DeviceId a, DeviceId b) -> char {
        const LinkId fwd = mesh.linkBetween(a, b);
        const LinkId rev = mesh.linkBetween(b, a);
        if (fwd < 0 || rev < 0)
            return '?';
        const double v = linkVolume(fwd) + linkVolume(rev);
        if (peak <= 0.0 || v <= 0.0)
            return '.';
        const int level = std::min(
            9, static_cast<int>(std::floor(v / (2.0 * peak) * 10.0)));
        return static_cast<char>('0' + level);
    };

    std::string out;
    for (int r = 0; r < mesh.rows(); ++r) {
        // Device row with horizontal links.
        for (int c = 0; c < mesh.cols(); ++c) {
            out += 'o';
            if (c + 1 < mesh.cols()) {
                out += '-';
                out += digit(mesh.deviceAt(r, c), mesh.deviceAt(r, c + 1));
                out += '-';
            }
        }
        out += '\n';
        // Vertical links row.
        if (r + 1 < mesh.rows()) {
            for (int c = 0; c < mesh.cols(); ++c) {
                out += digit(mesh.deviceAt(r, c), mesh.deviceAt(r + 1, c));
                if (c + 1 < mesh.cols())
                    out += "   ";
            }
            out += '\n';
        }
    }
    return out;
}

} // namespace moentwine
