/**
 * @file
 * Analytical traffic accounting for one communication phase.
 *
 * The simulator follows the paper's Eq.(1),
 *     latency = (volume / bandwidth + link_latency) × hops,
 * in two complementary forms:
 *
 *  - flowTime() applies Eq.(1) literally to a single point-to-point
 *    transfer (used for invasive expert-migration costs);
 *  - PhaseTraffic models a *phase* in which many flows run concurrently
 *    (an all-to-all dispatch, one all-reduce step). Each flow deposits
 *    its volume on every link of its deterministic route; the phase time
 *    is the worst per-link serialisation time plus the worst path
 *    latency. Congestion therefore emerges exactly as in the paper: when
 *    FTDs intersect, the shared central mesh links accumulate the volume
 *    of several domains and dominate the maximum.
 *
 * PhaseTraffic also exposes per-link volumes for heatmap rendering and
 * the hot/cold-link classification that NI-Balancer schedules against.
 */

#ifndef MOENTWINE_NETWORK_TRAFFIC_HH
#define MOENTWINE_NETWORK_TRAFFIC_HH

#include <string>
#include <vector>

#include "topology/mesh.hh"
#include "topology/topology.hh"

namespace moentwine {

/** One point-to-point transfer inside a communication phase. */
struct Flow
{
    DeviceId src;
    DeviceId dst;
    /** Payload volume in bytes. */
    double bytes;
};

/**
 * Eq.(1) store-and-forward latency of a single transfer along the
 * topology's deterministic route. Answered from the route cache's
 * per-pair scalars without walking links.
 */
double flowTime(const Topology &topo, DeviceId src, DeviceId dst,
                double bytes);

/**
 * Per-link volume accumulation for one concurrently-executing phase.
 */
class PhaseTraffic
{
  public:
    /** Construct an empty phase over @p topo (not owned, must outlive). */
    explicit PhaseTraffic(const Topology &topo);

    /**
     * Reset to an empty phase, keeping the volume buffer allocated so
     * the engine can reuse one instance across iterations.
     */
    void clear();

    /**
     * Add a flow along the topology's deterministic route, walked in
     * place (Topology::walk()): allocation-free under both route
     * storages.
     */
    void addFlow(DeviceId src, DeviceId dst, double bytes);

    /** Add all flows of @p flows. */
    void addFlows(const std::vector<Flow> &flows);

    /**
     * Merge another phase's per-link volumes into this one. Both
     * phases must cover topologies with identical link id sets (same
     * link count); merging across mismatched topologies would corrupt
     * the volume buffer, so it aborts loudly instead (MOE_ASSERT,
     * pinned by a death test).
     */
    void merge(const PhaseTraffic &other);

    /**
     * Worst per-link serialisation time: max over links of accumulated
     * volume divided by link bandwidth. Zero for an empty phase.
     */
    double serializationTime() const;

    /** Worst accumulated path latency over all added flows. */
    double maxPathLatency() const { return maxPathLatency_; }

    /**
     * Phase completion time: serialisation bottleneck plus the worst
     * path latency (the Eq.(1) link-latency term).
     */
    double phaseTime() const
    {
        return serializationTime() + maxPathLatency_;
    }

    /** Accumulated volume on one link. */
    double linkVolume(LinkId l) const;

    /** Largest accumulated per-link volume. */
    double maxLinkVolume() const;

    /** Sum of per-link volumes (byte-hops of the phase). */
    double totalByteHops() const;

    /** Sum of injected flow bytes (volume not multiplied by hops). */
    double totalFlowBytes() const { return totalFlowBytes_; }

    /** Number of links carrying non-zero volume. */
    int busyLinkCount() const;

    /**
     * Hot-link classification: link l is hot when its volume exceeds
     * @p fraction of the maximum per-link volume of the phase. With an
     * all-zero phase every link is cold.
     */
    std::vector<bool> hotLinks(double fraction = 0.5) const;

    /**
     * Remaining byte budget of link @p l inside a window of @p window
     * seconds: bandwidth × window − accumulated volume (floored at 0).
     * This is the capacity NI-Balancer steals for hidden migration.
     */
    double idleBytes(LinkId l, double window) const;

    /**
     * ASCII heatmap of horizontal+vertical link volumes for a mesh,
     * normalised to the phase maximum (0-9 digits per link).
     */
    std::string heatmapAscii(const MeshTopology &mesh) const;

    /** The topology this phase runs on. */
    const Topology &topology() const { return *topo_; }

    /**
     * Re-point the phase at another topology with the SAME link ids
     * (the fault overlay copies the base link set, so the volume
     * buffer stays valid). Clears accumulated state; the engine calls
     * this at a fault boundary before refilling the phase. A target
     * with a different link count cannot share the buffer and aborts
     * loudly (MOE_ASSERT, pinned by a death test).
     */
    void retarget(const Topology &topo);

  private:
    const Topology *topo_;
    std::vector<double> volume_;
    double maxPathLatency_ = 0.0;
    double totalFlowBytes_ = 0.0;
};

} // namespace moentwine

#endif // MOENTWINE_NETWORK_TRAFFIC_HH
