#include "network/collectives.hh"

#include <algorithm>

#include "common/logging.hh"

namespace moentwine {

namespace {

/** Number of chunk rounds for a ring phase over p devices. */
int
roundsFor(RingOp op, int p)
{
    const int perPhase = p - 1;
    return op == RingOp::AllReduce ? 2 * perPhase : perPhase;
}

/**
 * Per-round serialisation cost of forwarding one chunk between
 * consecutive ring members: store-and-forward over every link of the
 * deterministic route, volume term only. O(1) from the route cache's
 * per-pair Σ 1/bandwidth.
 */
double
edgeVolumeCost(const Topology &topo, DeviceId src, DeviceId dst,
               double chunk)
{
    return chunk * topo.pathInvBandwidthSum(src, dst);
}

/**
 * Core of the ring collective: accumulates traffic into
 * scratch.traffic (already cleared by the caller) and returns the
 * completion time. scratch.round backs the un-staggered path.
 */
double
ringCollectiveAppend(const Topology &topo,
                     const std::vector<std::vector<DeviceId>> &rings,
                     double bytes, RingOp op, bool staggered,
                     CollectiveScratch &scratch)
{
    MOE_ASSERT(!rings.empty(), "ringCollective requires at least one ring");
    const auto p = rings.front().size();
    for (const auto &ring : rings) {
        MOE_ASSERT(ring.size() == p, "all rings must have equal size");
        MOE_ASSERT(!ring.empty(), "empty ring");
    }

    if (p == 1) {
        // Degenerate single-member group: nothing to exchange.
        return 0.0;
    }

    const double chunk = bytes / static_cast<double>(p);
    const int rounds = roundsFor(op, static_cast<int>(p));

    // Aggregate traffic: every round, every device forwards one chunk to
    // its ring successor. Total per edge = rounds × chunk.
    for (const auto &ring : rings) {
        for (std::size_t i = 0; i < p; ++i) {
            const DeviceId src = ring[i];
            const DeviceId dst = ring[(i + 1) % p];
            // addFlow walks the deterministic route in place, so this
            // stays allocation-free under both route storages (ring
            // neighbours are distinct devices and chunk is positive).
            scratch.traffic.addFlow(src, dst,
                                    chunk * static_cast<double>(rounds));
        }
    }

    // Rings send bi-directionally (Fig. 8(d)): two chunks are in
    // flight across every round boundary, so the per-round link
    // latency is exposed only half the rounds.
    const double latencyRounds = rounds / 2.0;

    double time = 0.0;
    if (staggered) {
        // ER-Mapping schedule: rings sharing links alternate cycles, so
        // each ring completes in rounds × (its slowest edge cost) and
        // the phase finishes with the slowest ring (Fig. 8(d)).
        for (const auto &ring : rings) {
            double edge = 0.0;
            double edgeLat = 0.0;
            for (std::size_t i = 0; i < p; ++i) {
                edge = std::max(edge,
                                edgeVolumeCost(topo, ring[i],
                                               ring[(i + 1) % p],
                                               chunk));
                edgeLat = std::max(edgeLat,
                                   topo.pathLatency(ring[i],
                                                    ring[(i + 1) % p]));
            }
            time = std::max(time, edge * static_cast<double>(rounds) +
                                      edgeLat * latencyRounds);
        }
    } else {
        // Un-staggered: all rings inject each round simultaneously; a
        // round costs the congestion-aware phase time of the combined
        // round traffic.
        scratch.round.clear();
        for (const auto &ring : rings)
            for (std::size_t i = 0; i < p; ++i)
                scratch.round.addFlow(ring[i], ring[(i + 1) % p], chunk);
        time = scratch.round.serializationTime() *
                static_cast<double>(rounds) +
            scratch.round.maxPathLatency() * latencyRounds;
    }
    return time;
}

} // namespace

double
ringCollectiveInto(const Topology &topo,
                   const std::vector<std::vector<DeviceId>> &rings,
                   double bytes, RingOp op, bool staggered,
                   CollectiveScratch &scratch)
{
    scratch.traffic.clear();
    return ringCollectiveAppend(topo, rings, bytes, op, staggered,
                                scratch);
}

CollectiveTiming
ringCollective(const Topology &topo,
               const std::vector<std::vector<DeviceId>> &rings,
               double bytes, RingOp op, bool staggered)
{
    CollectiveScratch scratch(topo);
    const double time =
        ringCollectiveInto(topo, rings, bytes, op, staggered, scratch);
    return CollectiveTiming{time, std::move(scratch.traffic)};
}

double
hierarchicalAllReduceInto(const Topology &topo,
                          const std::vector<std::vector<DeviceId>>
                              &intraRings,
                          const std::vector<std::vector<DeviceId>>
                              &interRings,
                          double bytes, CollectiveScratch &scratch)
{
    scratch.traffic.clear();
    const double intra = ringCollectiveAppend(
        topo, intraRings, bytes, RingOp::ReduceScatter, true, scratch);
    // After the intra-wafer reduce-scatter each device holds 1/p_intra of
    // the tensor; the inter-wafer all-gather moves those shards.
    const double shard =
        bytes / static_cast<double>(intraRings.front().size());
    const double inter = ringCollectiveAppend(
        topo, interRings, shard, RingOp::AllGather, true, scratch);
    return intra + inter;
}

CollectiveTiming
hierarchicalAllReduce(const Topology &topo,
                      const std::vector<std::vector<DeviceId>> &intraRings,
                      const std::vector<std::vector<DeviceId>> &interRings,
                      double bytes)
{
    CollectiveScratch scratch(topo);
    const double time = hierarchicalAllReduceInto(topo, intraRings,
                                                  interRings, bytes,
                                                  scratch);
    return CollectiveTiming{time, std::move(scratch.traffic)};
}

CollectiveTiming
allToAll(const Topology &topo, const std::vector<Flow> &flows)
{
    PhaseTraffic traffic(topo);
    const double time = allToAllInto(flows, traffic);
    return CollectiveTiming{time, std::move(traffic)};
}

double
allToAllInto(const std::vector<Flow> &flows, PhaseTraffic &traffic)
{
    traffic.clear();
    traffic.addFlows(flows);
    return traffic.phaseTime();
}

} // namespace moentwine
