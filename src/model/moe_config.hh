/**
 * @file
 * MoE model configurations (Table I of the paper) and the device
 * specification of the evaluation platform.
 *
 * Per the paper's setup, every device — whether a WSC die or a GPU — is
 * modelled as an NVIDIA B200-equivalent: 2250 TFLOPS FP16 (double that
 * in INT8), 180 GB HBM at 8 TB/s. Attention and all communication run
 * in FP16; the expert FFNs run in INT8 (1 byte/parameter), which is why
 * expert FLOPs-per-token can be derived directly from the Table I
 * expert sizes.
 */

#ifndef MOENTWINE_MODEL_MOE_CONFIG_HH
#define MOENTWINE_MODEL_MOE_CONFIG_HH

#include <string>
#include <vector>

namespace moentwine {

/** Compute-device specification (defaults model an NVIDIA B200). */
struct DeviceSpec
{
    /** FP16 dense throughput (FLOP/s). */
    double fp16Flops = 2250e12;
    /** INT8 dense throughput (OP/s). */
    double int8Ops = 4500e12;
    /** HBM capacity (bytes). */
    double hbmBytes = 180e9;
    /** HBM bandwidth (B/s). */
    double hbmBandwidth = 8e12;
};

/** One MoE model from Table I. */
struct MoEModelConfig
{
    /** Human-readable name for bench output. */
    std::string name;
    /** Total parameter count (for documentation only). */
    double totalParams;
    /** Number of sparse (MoE) transformer layers. */
    int sparseLayers;
    /** Total transformer layers. */
    int totalLayers;
    /** Weight bytes of a single expert (INT8). */
    double expertBytes;
    /** Experts activated per token (top-k). */
    int expertsActivated;
    /** Total routed experts per MoE layer. */
    int expertsTotal;
    /** Model hidden size (token embedding width). */
    int hiddenSize;
    /**
     * KV-cache width relative to the hidden size. SOTA MoE models use
     * MLA or grouped-query attention, so the per-token KV footprint is
     * a small fraction of 2×hidden; 0.125 approximates both.
     */
    double kvCompression = 0.125;

    /** Bytes of one token's hidden activation in FP16. */
    double tokenBytes() const { return 2.0 * hiddenSize; }

    /**
     * INT8 operations per token per expert: 2 ops per parameter
     * (multiply + accumulate), parameters = expertBytes at 1 B/param.
     */
    double expertOpsPerToken() const { return 2.0 * expertBytes; }

    /** E/D ratio for a given expert-parallel degree. */
    double edRatio(int ep) const
    {
        return static_cast<double>(expertsTotal) / ep;
    }
};

/** DeepSeek-V3: 671B, 58/61 layers, 42 MB experts, 8/256. */
MoEModelConfig deepseekV3();

/** Qwen3-235B: 94/94 layers, 18 MB experts, 8/128. */
MoEModelConfig qwen3();

/** DeepSeek-V2: 236B, 59/60 layers, 23 MB experts, 6/160. */
MoEModelConfig deepseekV2();

/** DBRX: 132B, 40/40 layers, 189 MB experts, 4/16. */
MoEModelConfig dbrx();

/** Mixtral-8x22B: 141B, 56/56 layers, 288 MB experts, 2/8. */
MoEModelConfig mixtral8x22b();

/** All Table I models in the paper's order. */
std::vector<MoEModelConfig> allModels();

} // namespace moentwine

#endif // MOENTWINE_MODEL_MOE_CONFIG_HH
