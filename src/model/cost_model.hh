/**
 * @file
 * Roofline compute/memory cost model for attention and MoE expert
 * execution on one device.
 *
 * This replaces the paper's FlashInfer-profile dataset with an analytic
 * model built from the same published B200 constants. Figures in the
 * paper compare *relative* latencies, which the roofline preserves:
 *
 *  - expert FFN compute is INT8 GEMM work: ops = 2 × params × tokens;
 *  - expert weights are streamed from HBM once per iteration per layer
 *    (token generation is memory-bound when experts outnumber devices —
 *    the E/D effect of Fig. 4);
 *  - attention is FP16: prefill is compute-bound in sequence length,
 *    decode is dominated by the KV-cache read.
 */

#ifndef MOENTWINE_MODEL_COST_MODEL_HH
#define MOENTWINE_MODEL_COST_MODEL_HH

#include "model/moe_config.hh"

namespace moentwine {

/** Inference stage; affects attention cost and token counts. */
enum class Stage
{
    Prefill, ///< long inputs, compute-bound attention
    Decode,  ///< single-token steps, memory-bound attention
};

/** Breakdown of one device's MoE execution time. */
struct MoeDeviceCost
{
    /** INT8 GEMM time for the tokens routed to this device (s). */
    double computeTime;
    /** HBM streaming time for the expert weights resident here (s). */
    double memoryTime;

    /** Total device-local MoE time (compute and weight streaming are
     *  serialised on the same SM/HBM pipeline). */
    double total() const { return computeTime + memoryTime; }
};

/**
 * Analytic cost model for one device.
 */
class CostModel
{
  public:
    /**
     * @param spec  Device specification (B200 by default).
     * @param efficiency Achievable fraction of peak (GEMM efficiency on
     *        small expert tiles; 0 < efficiency ≤ 1).
     */
    explicit CostModel(const DeviceSpec &spec = DeviceSpec{},
                       double efficiency = 0.6);

    /**
     * MoE execution time of one device in one layer.
     *
     * @param model        Model configuration.
     * @param tokensRouted Tokens (counting expert multiplicity) routed
     *                     to this device's experts in this layer.
     * @param expertsResident Activated experts whose weights this
     *                     device must stream this layer.
     * @param computeFactor Straggler multiplier on the device's whole
     *                     pipeline (SM clock and HBM throttled alike);
     *                     1 is nominal. Injected by the fault layer.
     */
    MoeDeviceCost moeDevice(const MoEModelConfig &model,
                            double tokensRouted, double expertsResident,
                            double computeFactor = 1.0) const;

    /**
     * Attention time of one device for one layer.
     *
     * @param model       Model configuration.
     * @param tokens      Tokens processed by this device's TP shard.
     * @param tp          Tensor-parallel degree (weights/heads split).
     * @param contextLen  Average context length (KV entries per token).
     * @param stage       Prefill or decode.
     * @param computeFactor Straggler multiplier (see moeDevice()); the
     *                    engine passes the worst live factor, since TP
     *                    shards run in lockstep.
     */
    double attentionTime(const MoEModelConfig &model, double tokens,
                         int tp, double contextLen, Stage stage,
                         double computeFactor = 1.0) const;

    /** Expert-weight HBM streaming time for @p bytes of weights. */
    double weightStreamTime(double bytes) const;

    /** The device specification. */
    const DeviceSpec &spec() const { return spec_; }

    /** The GEMM efficiency factor. */
    double efficiency() const { return efficiency_; }

  private:
    DeviceSpec spec_;
    double efficiency_;
};

} // namespace moentwine

#endif // MOENTWINE_MODEL_COST_MODEL_HH
