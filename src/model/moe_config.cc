#include "model/moe_config.hh"

#include "common/units.hh"

namespace moentwine {

MoEModelConfig
deepseekV3()
{
    MoEModelConfig m;
    m.name = "DeepSeek-V3";
    m.totalParams = 671e9;
    m.sparseLayers = 58;
    m.totalLayers = 61;
    m.expertBytes = 42 * units::MB;
    m.expertsActivated = 8;
    m.expertsTotal = 256;
    m.hiddenSize = 7168;
    return m;
}

MoEModelConfig
qwen3()
{
    MoEModelConfig m;
    m.name = "Qwen3-235B";
    m.totalParams = 235e9;
    m.sparseLayers = 94;
    m.totalLayers = 94;
    m.expertBytes = 18 * units::MB;
    m.expertsActivated = 8;
    m.expertsTotal = 128;
    m.hiddenSize = 4096;
    return m;
}

MoEModelConfig
deepseekV2()
{
    MoEModelConfig m;
    m.name = "DeepSeek-V2";
    m.totalParams = 236e9;
    m.sparseLayers = 59;
    m.totalLayers = 60;
    m.expertBytes = 23 * units::MB;
    m.expertsActivated = 6;
    m.expertsTotal = 160;
    m.hiddenSize = 5120;
    return m;
}

MoEModelConfig
dbrx()
{
    MoEModelConfig m;
    m.name = "DBRX";
    m.totalParams = 132e9;
    m.sparseLayers = 40;
    m.totalLayers = 40;
    m.expertBytes = 189 * units::MB;
    m.expertsActivated = 4;
    m.expertsTotal = 16;
    m.hiddenSize = 6144;
    return m;
}

MoEModelConfig
mixtral8x22b()
{
    MoEModelConfig m;
    m.name = "Mixtral-8x22B";
    m.totalParams = 141e9;
    m.sparseLayers = 56;
    m.totalLayers = 56;
    m.expertBytes = 288 * units::MB;
    m.expertsActivated = 2;
    m.expertsTotal = 8;
    m.hiddenSize = 6144;
    return m;
}

std::vector<MoEModelConfig>
allModels()
{
    return {deepseekV3(), qwen3(), deepseekV2(), dbrx(), mixtral8x22b()};
}

} // namespace moentwine
