#include "model/cost_model.hh"

#include <algorithm>

#include "common/logging.hh"

namespace moentwine {

CostModel::CostModel(const DeviceSpec &spec, double efficiency)
    : spec_(spec), efficiency_(efficiency)
{
    MOE_ASSERT(efficiency > 0.0 && efficiency <= 1.0,
               "efficiency must be in (0, 1]");
}

MoeDeviceCost
CostModel::moeDevice(const MoEModelConfig &model, double tokensRouted,
                     double expertsResident, double computeFactor) const
{
    MOE_ASSERT(tokensRouted >= 0.0, "negative routed token count");
    MOE_ASSERT(expertsResident >= 0.0, "negative resident expert count");
    MOE_ASSERT(computeFactor > 0.0, "compute factor must be positive");
    MoeDeviceCost cost;
    cost.computeTime = tokensRouted * model.expertOpsPerToken() /
        (spec_.int8Ops * efficiency_) * computeFactor;
    cost.memoryTime =
        weightStreamTime(expertsResident * model.expertBytes) *
        computeFactor;
    return cost;
}

double
CostModel::attentionTime(const MoEModelConfig &model, double tokens,
                         int tp, double contextLen, Stage stage,
                         double computeFactor) const
{
    MOE_ASSERT(tp >= 1, "tensor-parallel degree must be >= 1");
    MOE_ASSERT(tokens >= 0.0, "negative token count");
    MOE_ASSERT(computeFactor > 0.0, "compute factor must be positive");
    const double h = model.hiddenSize;

    // QKV + output projections: 8 h^2 MACs per token, split across TP.
    const double projFlops = 2.0 * 8.0 * h * h * tokens / tp;

    // Score/context matmuls: 4 h FLOPs per (token, kv) pair, per TP shard.
    const double scoreFlops = 4.0 * h * tokens * contextLen / tp;

    const double computeTime =
        (projFlops + scoreFlops) / (spec_.fp16Flops * efficiency_);

    // Decode additionally streams the KV cache for every token in the
    // batch: 2 (K and V) × 2 bytes × h/tp per cached position, shrunk
    // by the model's MLA/GQA compression factor.
    double memoryTime = 0.0;
    if (stage == Stage::Decode) {
        const double kvBytes = tokens * contextLen * 2.0 * 2.0 * h *
            model.kvCompression / tp;
        memoryTime = kvBytes / spec_.hbmBandwidth;
    }
    return (std::max(computeTime, memoryTime) +
            std::min(computeTime, memoryTime) * 0.1) *
        computeFactor;
}

double
CostModel::weightStreamTime(double bytes) const
{
    MOE_ASSERT(bytes >= 0.0, "negative weight bytes");
    return bytes / spec_.hbmBandwidth;
}

} // namespace moentwine
