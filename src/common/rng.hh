/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * Every stochastic component in MoEntwine (gating, workload generation,
 * arrival mixing) draws from an explicitly seeded Rng so that benchmark
 * output is bit-identical across runs and platforms. The generator is
 * xoshiro256** seeded via splitmix64, which is fast, high quality, and
 * trivially portable — we intentionally avoid std::mt19937 plus
 * std::*_distribution because their outputs are not guaranteed to be
 * identical across standard library implementations.
 */

#ifndef MOENTWINE_COMMON_RNG_HH
#define MOENTWINE_COMMON_RNG_HH

#include <cstdint>
#include <vector>

namespace moentwine {

/**
 * Deterministic random number generator (xoshiro256** / splitmix64 seed).
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; equal seeds yield equal streams. */
    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n), n > 0. */
    uint64_t below(uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t range(int64_t lo, int64_t hi);

    /** Standard normal variate (Box–Muller, deterministic pairing). */
    double normal();

    /** Normal variate with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Exponential variate with the given rate (lambda). */
    double exponential(double rate);

    /**
     * Sample an index from an unnormalised non-negative weight vector.
     * @param weights Unnormalised weights; at least one must be positive.
     * @return Sampled index in [0, weights.size()).
     */
    std::size_t weightedIndex(const std::vector<double> &weights);

    /** Fisher–Yates shuffle of an index permutation [0, n). */
    std::vector<std::size_t> permutation(std::size_t n);

    /** Fork a child generator with an independent, reproducible stream. */
    Rng fork();

  private:
    uint64_t state_[4];
    bool haveSpareNormal_ = false;
    double spareNormal_ = 0.0;
};

} // namespace moentwine

#endif // MOENTWINE_COMMON_RNG_HH
