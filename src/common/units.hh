/**
 * @file
 * Physical units and constants used across the MoEntwine simulator.
 *
 * The simulator works in SI base units throughout:
 *   - time is expressed in seconds (double),
 *   - data volume in bytes (double, so that fractional per-chunk volumes
 *     arising from collective algorithms do not truncate),
 *   - bandwidth in bytes per second,
 *   - compute rate in FLOP per second.
 *
 * Helper literals keep configuration code readable, e.g.
 * `8 * units::TB` or `150 * units::NANO`.
 */

#ifndef MOENTWINE_COMMON_UNITS_HH
#define MOENTWINE_COMMON_UNITS_HH

namespace moentwine {
namespace units {

/** Kilobyte (decimal, 1e3 bytes) — network convention. */
constexpr double KB = 1e3;
/** Megabyte (decimal, 1e6 bytes). */
constexpr double MB = 1e6;
/** Gigabyte (decimal, 1e9 bytes). */
constexpr double GB = 1e9;
/** Terabyte (decimal, 1e12 bytes). */
constexpr double TB = 1e12;

/** Mebibyte (binary, 2^20 bytes) — memory capacity convention. */
constexpr double MiB = 1024.0 * 1024.0;
/** Gibibyte (binary, 2^30 bytes). */
constexpr double GiB = 1024.0 * MiB;

/** Nanoseconds expressed in seconds. */
constexpr double NANO = 1e-9;
/** Microseconds expressed in seconds. */
constexpr double MICRO = 1e-6;
/** Milliseconds expressed in seconds. */
constexpr double MILLI = 1e-3;

/** TeraFLOP/s expressed in FLOP/s. */
constexpr double TFLOPS = 1e12;
/** PetaFLOP/s expressed in FLOP/s. */
constexpr double PFLOPS = 1e15;

} // namespace units
} // namespace moentwine

#endif // MOENTWINE_COMMON_UNITS_HH
