#include "common/table.hh"

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"

namespace moentwine {

Table::Table(std::vector<std::string> header)
    : header_(std::move(header))
{
    MOE_ASSERT(!header_.empty(), "Table requires at least one column");
}

void
Table::addRow(std::vector<std::string> row)
{
    MOE_ASSERT(row.size() == header_.size(),
               "Table row width must match header");
    rows_.push_back(std::move(row));
}

std::string
Table::render() const
{
    std::vector<std::size_t> width(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto renderRow = [&](const std::vector<std::string> &row) {
        std::string out;
        for (std::size_t c = 0; c < row.size(); ++c) {
            out += row[c];
            out.append(width[c] - row[c].size(), ' ');
            if (c + 1 < row.size())
                out += "  ";
        }
        out += '\n';
        return out;
    };

    std::string out = renderRow(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c + 1 < width.size() ? 2 : 0);
    out.append(total, '-');
    out += '\n';
    for (const auto &row : rows_)
        out += renderRow(row);
    return out;
}

std::string
Table::num(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
Table::pct(double fraction, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%+.*f%%", decimals, fraction * 100.0);
    return buf;
}

} // namespace moentwine
