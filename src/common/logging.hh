/**
 * @file
 * Minimal gem5-style status/error reporting helpers.
 *
 * Two terminating helpers are provided, mirroring gem5's conventions:
 *   - panic():   an internal simulator invariant was violated (a bug in
 *                this code base); aborts so a core dump is available.
 *   - fatal():   the user supplied an impossible configuration; exits
 *                with a non-zero status after printing the reason.
 *
 * warn() and inform() print non-fatal status messages to stderr.
 */

#ifndef MOENTWINE_COMMON_LOGGING_HH
#define MOENTWINE_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace moentwine {

/**
 * Abort the process after reporting an internal invariant violation.
 *
 * @param msg Human-readable description of the broken invariant.
 */
[[noreturn]] inline void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

/**
 * Exit the process after reporting a user configuration error.
 *
 * @param msg Human-readable description of the invalid configuration.
 */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

/** Print a non-fatal warning to stderr. */
inline void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

/** Print an informational status message to stderr. */
inline void
inform(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

/**
 * Check a simulator invariant; panics with the stringified expression
 * when the condition does not hold. Always active (not compiled out in
 * release builds) because the simulator is cheap relative to the cost
 * of silently wrong results.
 */
#define MOE_ASSERT(cond, msg)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::moentwine::panic(std::string("assertion failed: ") + #cond + \
                               " — " + (msg));                              \
        }                                                                   \
    } while (0)

} // namespace moentwine

#endif // MOENTWINE_COMMON_LOGGING_HH
