/**
 * @file
 * Minimal gem5-style status/error reporting helpers.
 *
 * Two terminating helpers are provided, mirroring gem5's conventions:
 *   - panic():   an internal simulator invariant was violated (a bug in
 *                this code base); aborts so a core dump is available.
 *   - fatal():   the user supplied an impossible configuration; exits
 *                with a non-zero status after printing the reason.
 *
 * warn() and inform() print non-fatal status messages to stderr. Each
 * message goes out as ONE stdio call carrying the complete line,
 * newline included: POSIX stdio streams lock around every call, so
 * concurrent sweep workers may interleave whole lines but never the
 * characters within one (no torn "warn: ..." prefixes in parallel
 * bench runs). Multi-line interleaving is still possible — emit one
 * line per call.
 */

#ifndef MOENTWINE_COMMON_LOGGING_HH
#define MOENTWINE_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace moentwine {

/**
 * Abort the process after reporting an internal invariant violation.
 *
 * @param msg Human-readable description of the broken invariant.
 */
[[noreturn]] inline void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

/**
 * Exit the process after reporting a user configuration error.
 *
 * @param msg Human-readable description of the invalid configuration.
 */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

/**
 * Emit one complete log line (prefix + message + newline) as a single
 * locked stdio write, so lines from concurrent threads never
 * interleave mid-line.
 */
inline void
logLine(const char *prefix, const std::string &msg)
{
    std::string line;
    line.reserve(msg.size() + 16);
    line += prefix;
    line += msg;
    line += '\n';
    std::fwrite(line.data(), 1, line.size(), stderr);
}

/** Print a non-fatal warning to stderr (thread-safe, line-atomic). */
inline void
warn(const std::string &msg)
{
    logLine("warn: ", msg);
}

/** Print an informational status message to stderr (thread-safe,
 *  line-atomic). */
inline void
inform(const std::string &msg)
{
    logLine("info: ", msg);
}

/**
 * Check a simulator invariant; panics with the stringified expression
 * when the condition does not hold. Always active (not compiled out in
 * release builds) because the simulator is cheap relative to the cost
 * of silently wrong results.
 */
#define MOE_ASSERT(cond, msg)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::moentwine::panic(std::string("assertion failed: ") + #cond + \
                               " — " + (msg));                              \
        }                                                                   \
    } while (0)

} // namespace moentwine

#endif // MOENTWINE_COMMON_LOGGING_HH
