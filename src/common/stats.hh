/**
 * @file
 * Lightweight statistics helpers used by the engine and benches:
 * running summaries (min/max/mean/stddev), percentiles over retained
 * samples, and a fixed-bin histogram.
 */

#ifndef MOENTWINE_COMMON_STATS_HH
#define MOENTWINE_COMMON_STATS_HH

#include <cstddef>
#include <string>
#include <vector>

namespace moentwine {

/**
 * Running summary of a stream of samples. Retains all samples so exact
 * percentiles are available; simulator sample counts are small (at most
 * a few hundred thousand doubles).
 */
class Summary
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Number of samples added so far. */
    std::size_t count() const { return samples_.size(); }

    /** Sum of all samples (0 when empty). */
    double sum() const { return sum_; }

    /** Arithmetic mean; panics when empty. */
    double mean() const;

    /** Smallest sample; panics when empty. */
    double min() const;

    /** Largest sample; panics when empty. */
    double max() const;

    /** Sample standard deviation (0 for fewer than two samples). */
    double stddev() const;

    /**
     * Exact percentile with linear interpolation.
     * @param p Percentile in [0, 100].
     */
    double percentile(double p) const;

    /** All retained samples in insertion order. */
    const std::vector<double> &samples() const { return samples_; }

  private:
    std::vector<double> samples_;
    double sum_ = 0.0;
};

/**
 * Fixed-width histogram over [lo, hi); samples outside the range clamp
 * into the first/last bin.
 */
class Histogram
{
  public:
    /**
     * @param lo Lower edge of the first bin.
     * @param hi Upper edge of the last bin; must exceed @p lo.
     * @param bins Number of bins; must be positive.
     */
    Histogram(double lo, double hi, std::size_t bins);

    /** Add one sample (clamped into range). */
    void add(double x);

    /** Number of samples in bin @p i. */
    std::size_t binCount(std::size_t i) const { return counts_.at(i); }

    /** Number of bins. */
    std::size_t numBins() const { return counts_.size(); }

    /** Total samples added. */
    std::size_t total() const { return total_; }

    /** Lower edge of bin @p i. */
    double binLow(std::size_t i) const;

    /** Render a compact one-line-per-bin ASCII view. */
    std::string render(std::size_t width = 40) const;

  private:
    double lo_;
    double hi_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

/** Mean of a vector; panics when empty. */
double meanOf(const std::vector<double> &xs);

/** Maximum of a vector; panics when empty. */
double maxOf(const std::vector<double> &xs);

/**
 * Imbalance degree of a load vector, as used in Eq.(2) of the paper:
 * (max - mean) / mean. Zero for a perfectly balanced vector; panics on
 * an empty vector or a zero mean.
 */
double imbalanceDegree(const std::vector<double> &loads);

} // namespace moentwine

#endif // MOENTWINE_COMMON_STATS_HH
