#include "common/rng.hh"

#include <cmath>

#include "common/logging.hh"

namespace moentwine {

namespace {

/** splitmix64 step, used only for seeding the main state. */
uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &s : state_)
        s = splitmix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits → double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

uint64_t
Rng::below(uint64_t n)
{
    MOE_ASSERT(n > 0, "Rng::below requires n > 0");
    // Rejection-free modulo is fine here: n is tiny relative to 2^64 in
    // all simulator uses, so bias is negligible (< 2^-40).
    return next() % n;
}

int64_t
Rng::range(int64_t lo, int64_t hi)
{
    MOE_ASSERT(lo <= hi, "Rng::range requires lo <= hi");
    return lo + static_cast<int64_t>(
        below(static_cast<uint64_t>(hi - lo + 1)));
}

double
Rng::normal()
{
    if (haveSpareNormal_) {
        haveSpareNormal_ = false;
        return spareNormal_;
    }
    double u1 = uniform();
    double u2 = uniform();
    while (u1 <= 1e-300) { // guard against log(0)
        u1 = uniform();
    }
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    spareNormal_ = r * std::sin(theta);
    haveSpareNormal_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::exponential(double rate)
{
    MOE_ASSERT(rate > 0.0, "exponential rate must be positive");
    double u = uniform();
    while (u <= 1e-300) {
        u = uniform();
    }
    return -std::log(u) / rate;
}

std::size_t
Rng::weightedIndex(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        MOE_ASSERT(w >= 0.0, "weights must be non-negative");
        total += w;
    }
    MOE_ASSERT(total > 0.0, "weightedIndex requires a positive weight sum");
    double r = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        r -= weights[i];
        if (r < 0.0)
            return i;
    }
    return weights.size() - 1; // numeric edge: landed exactly on total
}

std::vector<std::size_t>
Rng::permutation(std::size_t n)
{
    std::vector<std::size_t> p(n);
    for (std::size_t i = 0; i < n; ++i)
        p[i] = i;
    for (std::size_t i = n; i > 1; --i) {
        const std::size_t j = below(i);
        std::swap(p[i - 1], p[j]);
    }
    return p;
}

Rng
Rng::fork()
{
    return Rng(next());
}

} // namespace moentwine
