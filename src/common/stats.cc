#include "common/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace moentwine {

void
Summary::add(double x)
{
    samples_.push_back(x);
    sum_ += x;
}

double
Summary::mean() const
{
    MOE_ASSERT(!samples_.empty(), "mean of empty Summary");
    return sum_ / static_cast<double>(samples_.size());
}

double
Summary::min() const
{
    MOE_ASSERT(!samples_.empty(), "min of empty Summary");
    return *std::min_element(samples_.begin(), samples_.end());
}

double
Summary::max() const
{
    MOE_ASSERT(!samples_.empty(), "max of empty Summary");
    return *std::max_element(samples_.begin(), samples_.end());
}

double
Summary::stddev() const
{
    if (samples_.size() < 2)
        return 0.0;
    const double m = mean();
    double acc = 0.0;
    for (double x : samples_)
        acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double
Summary::percentile(double p) const
{
    MOE_ASSERT(!samples_.empty(), "percentile of empty Summary");
    MOE_ASSERT(p >= 0.0 && p <= 100.0, "percentile out of [0, 100]");
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    if (sorted.size() == 1)
        return sorted.front();
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    MOE_ASSERT(hi > lo, "Histogram requires hi > lo");
    MOE_ASSERT(bins > 0, "Histogram requires at least one bin");
}

void
Histogram::add(double x)
{
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    auto idx = static_cast<long>(std::floor((x - lo_) / width));
    idx = std::clamp<long>(idx, 0, static_cast<long>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
}

double
Histogram::binLow(std::size_t i) const
{
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    return lo_ + width * static_cast<double>(i);
}

std::string
Histogram::render(std::size_t width) const
{
    std::size_t peak = 1;
    for (std::size_t c : counts_)
        peak = std::max(peak, c);
    std::string out;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        char label[64];
        std::snprintf(label, sizeof(label), "%10.4g | ", binLow(i));
        out += label;
        const auto bar = counts_[i] * width / peak;
        out.append(bar, '#');
        out += " (" + std::to_string(counts_[i]) + ")\n";
    }
    return out;
}

double
meanOf(const std::vector<double> &xs)
{
    MOE_ASSERT(!xs.empty(), "meanOf empty vector");
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

double
maxOf(const std::vector<double> &xs)
{
    MOE_ASSERT(!xs.empty(), "maxOf empty vector");
    return *std::max_element(xs.begin(), xs.end());
}

double
imbalanceDegree(const std::vector<double> &loads)
{
    const double mu = meanOf(loads);
    MOE_ASSERT(mu > 0.0, "imbalanceDegree requires a positive mean load");
    return (maxOf(loads) - mu) / mu;
}

} // namespace moentwine
