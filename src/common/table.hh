/**
 * @file
 * ASCII table printer used by the bench binaries to emit the rows and
 * series of each paper table/figure in a uniform, diff-friendly layout.
 */

#ifndef MOENTWINE_COMMON_TABLE_HH
#define MOENTWINE_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace moentwine {

/**
 * Column-aligned ASCII table. Usage:
 * @code
 *   Table t({"model", "latency (us)", "speedup"});
 *   t.addRow({"DeepSeek-V3", Table::num(123.4), Table::pct(0.39)});
 *   std::cout << t.render();
 * @endcode
 */
class Table
{
  public:
    /** Construct with header cells. */
    explicit Table(std::vector<std::string> header);

    /** Append a data row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Render the full table with a separator under the header. */
    std::string render() const;

    /** Format a double with the given number of decimals. */
    static std::string num(double v, int decimals = 3);

    /** Format a fraction as a signed percentage, e.g. 0.39 → "+39.0%". */
    static std::string pct(double fraction, int decimals = 1);

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace moentwine

#endif // MOENTWINE_COMMON_TABLE_HH
