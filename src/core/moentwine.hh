/**
 * @file
 * MoEntwine umbrella header: single include for the public API, plus
 * the System factory that assembles a platform (topology + mapping)
 * from a compact configuration. Benches, examples, and downstream
 * users start here.
 *
 * Typical use:
 * @code
 *   SystemConfig sc;
 *   sc.platform = PlatformKind::WscEr;
 *   sc.meshN = 8;
 *   sc.tp = 16;
 *   System sys = System::make(sc);
 *
 *   EngineConfig ec;
 *   ec.model = deepseekV3();
 *   InferenceEngine engine(sys.mapping(), ec);
 *   auto stats = engine.run(100);
 * @endcode
 */

#ifndef MOENTWINE_CORE_MOENTWINE_HH
#define MOENTWINE_CORE_MOENTWINE_HH

#include <memory>
#include <string>

#include "balancer/balancer.hh"
#include "balancer/ni_balancer.hh"
#include "balancer/placement.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/units.hh"
#include "engine/comm_eval.hh"
#include "engine/engine.hh"
#include "engine/token_router.hh"
#include "mapping/baseline_mapping.hh"
#include "mapping/cluster_mapping.hh"
#include "mapping/er_mapping.hh"
#include "mapping/ftd.hh"
#include "mapping/her_mapping.hh"
#include "mapping/parallelism.hh"
#include "model/cost_model.hh"
#include "model/moe_config.hh"
#include "network/collectives.hh"
#include "network/traffic.hh"
#include "serve/serve.hh"
#include "topology/mesh.hh"
#include "topology/switch_cluster.hh"
#include "workload/workload.hh"

namespace moentwine {

/** Platform + mapping combination. */
enum class PlatformKind
{
    WscBaseline, ///< wafer mesh, contiguous-block TP mapping
    WscEr,       ///< wafer mesh, ER-Mapping
    WscHer,      ///< multi-wafer mesh, Hierarchical ER-Mapping
    DgxCluster,  ///< multi-node DGX baseline
    Nvl72,       ///< NVL72 supernode baseline
};

/** Compact system description. */
struct SystemConfig
{
    PlatformKind platform = PlatformKind::WscEr;
    /** Wafer mesh edge (wafer is meshN × meshN dies). */
    int meshN = 4;
    /** Number of wafers (arranged in a row). */
    int wafers = 1;
    /** Tensor-parallel degree. */
    int tp = 4;
    /** DGX node count (DgxCluster platform only). */
    int dgxNodes = 4;
    /**
     * All-pairs route storage policy for the topology. Auto picks the
     * CSR arena below Topology::kNextHopAutoThreshold devices and the
     * compressed next-hop matrix at or above it; force a kind to run
     * the same system under both representations (they are bitwise
     * equivalent — see tests/next_hop_test.cpp).
     */
    RouteStorageKind routeStorage = RouteStorageKind::Auto;
    /**
     * Per-(src, dst) traffic-accumulator policy for the token router.
     * Auto picks the dense byte matrix below
     * TrafficAccumulator::kSparseAutoThreshold devices and the sparse
     * hash at or above it; force a kind to run the same system under
     * both representations (they are bitwise equivalent — see
     * tests/traffic_accum_test.cpp).
     */
    TrafficStorageKind trafficStorage = TrafficStorageKind::Auto;
};

/**
 * Owning bundle of a topology and the mapping placed on it.
 *
 * make() finalizes every lazy cache (all-pairs routes, dispatch-source
 * memos), so a constructed System is deeply immutable behind its const
 * interface and safe to share across threads as shared_ptr<const
 * System> — the contract the sweep runner's worker pool relies on.
 * Only the single-threaded benchmarking hooks
 * (Topology::disableRouteCache()) may mutate it afterwards.
 */
class System
{
  public:
    /** Build a system; fatal on inconsistent configuration. */
    static System make(const SystemConfig &cfg);

    /** The network topology. */
    const Topology &topology() const { return mapping_->topology(); }

    /** The parallelism mapping. */
    const Mapping &mapping() const { return *mapping_; }

    /** The mesh, when the platform is wafer-based (null otherwise). */
    const MeshTopology *mesh() const { return mesh_.get(); }

    /** Platform + mapping label for bench output. */
    std::string name() const;

    /** The configuration this system was built from. */
    const SystemConfig &config() const { return cfg_; }

  private:
    System() = default;

    SystemConfig cfg_;
    std::unique_ptr<MeshTopology> mesh_;
    std::unique_ptr<SwitchClusterTopology> cluster_;
    std::unique_ptr<Mapping> mapping_;
};

} // namespace moentwine

#endif // MOENTWINE_CORE_MOENTWINE_HH
