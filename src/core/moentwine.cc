#include "core/moentwine.hh"

#include "common/logging.hh"

namespace moentwine {

System
System::make(const SystemConfig &cfg)
{
    System sys;
    sys.cfg_ = cfg;
    // Applied to the topology right after construction, before any
    // mapping may trigger a route build.
    const auto applyStorage = [&cfg](Topology &topo) {
        topo.setRouteStorage(cfg.routeStorage);
    };
    switch (cfg.platform) {
      case PlatformKind::WscBaseline: {
        sys.mesh_ = std::make_unique<MeshTopology>(
            MeshTopology::waferRow(cfg.wafers, cfg.meshN));
        applyStorage(*sys.mesh_);
        const auto par = decomposeTp(cfg.tp, sys.mesh_->rows(),
                                     sys.mesh_->cols());
        sys.mapping_ =
            std::make_unique<BaselineMapping>(*sys.mesh_, par);
        break;
      }
      case PlatformKind::WscEr: {
        sys.mesh_ = std::make_unique<MeshTopology>(
            MeshTopology::waferRow(cfg.wafers, cfg.meshN));
        applyStorage(*sys.mesh_);
        const auto par = decomposeTp(cfg.tp, sys.mesh_->rows(),
                                     sys.mesh_->cols());
        sys.mapping_ = std::make_unique<ErMapping>(*sys.mesh_, par);
        break;
      }
      case PlatformKind::WscHer: {
        sys.mesh_ = std::make_unique<MeshTopology>(
            MeshTopology::waferRow(cfg.wafers, cfg.meshN));
        applyStorage(*sys.mesh_);
        const auto par = decomposeTp(cfg.tp, sys.mesh_->waferRows(),
                                     sys.mesh_->waferCols());
        sys.mapping_ =
            std::make_unique<HierarchicalErMapping>(*sys.mesh_, par);
        break;
      }
      case PlatformKind::DgxCluster: {
        sys.cluster_ = std::make_unique<SwitchClusterTopology>(
            SwitchClusterTopology::dgx(cfg.dgxNodes));
        applyStorage(*sys.cluster_);
        sys.mapping_ =
            std::make_unique<ClusterMapping>(*sys.cluster_, cfg.tp);
        break;
      }
      case PlatformKind::Nvl72: {
        sys.cluster_ = std::make_unique<SwitchClusterTopology>(
            SwitchClusterTopology::nvl72());
        applyStorage(*sys.cluster_);
        sys.mapping_ =
            std::make_unique<ClusterMapping>(*sys.cluster_, cfg.tp);
        break;
      }
    }
    MOE_ASSERT(sys.mapping_ != nullptr, "platform construction failed");
    // Traffic-accumulator policy is a pre-sharing configuration hook
    // on the mapping (the token router reads it per routeTokens call).
    sys.mapping_->setTrafficStorage(cfg.trafficStorage);
    // Finalize immutability: build the all-pairs route table and the
    // dispatch-source memos now, so the returned System carries no
    // cold lazy caches and can be shared as shared_ptr<const System>
    // across sweep worker threads (each worker still owns its engine).
    sys.mapping_->prewarmCaches();
    return sys;
}

std::string
System::name() const
{
    return topology().name() + " / " + mapping_->name();
}

} // namespace moentwine
