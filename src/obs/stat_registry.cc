#include "obs/stat_registry.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.hh"

namespace moentwine {

const char *
statKindName(StatKind kind)
{
    switch (kind) {
      case StatKind::Counter:
        return "counter";
      case StatKind::Gauge:
        return "gauge";
      case StatKind::Distribution:
        return "distribution";
    }
    return "?";
}

double
DistributionView::stddev() const
{
    if (count < 2)
        return 0.0;
    const double n = static_cast<double>(count);
    // Sample variance from the streaming moments; clamp the
    // cancellation residue so a constant stream reads exactly 0.
    const double var =
        std::max(0.0, (sumSquares - sum * sum / n) / (n - 1.0));
    return std::sqrt(var);
}

StatRegistry::Handle
StatRegistry::resolve(const std::string &name, StatKind kind)
{
    MOE_ASSERT(!name.empty(), "stat name must be non-empty");
    const auto it = index_.find(name);
    if (it != index_.end()) {
        MOE_ASSERT(slots_[it->second].kind == kind,
                   "stat '" + name + "' already registered as " +
                       statKindName(slots_[it->second].kind));
        return Handle(it->second);
    }
    Slot s;
    s.name = name;
    s.kind = kind;
    slots_.push_back(std::move(s));
    index_.emplace(name, slots_.size() - 1);
    return Handle(slots_.size() - 1);
}

StatRegistry::Handle
StatRegistry::counter(const std::string &name)
{
    return resolve(name, StatKind::Counter);
}

StatRegistry::Handle
StatRegistry::gauge(const std::string &name)
{
    return resolve(name, StatKind::Gauge);
}

StatRegistry::Handle
StatRegistry::distribution(const std::string &name)
{
    return resolve(name, StatKind::Distribution);
}

StatRegistry::Slot &
StatRegistry::slot(Handle h, StatKind kind)
{
    MOE_ASSERT(h.idx_ < slots_.size(),
               "invalid stat handle (wrong registry or never resolved)");
    Slot &s = slots_[h.idx_];
    MOE_ASSERT(s.kind == kind, "stat '" + s.name + "' is a " +
                                   statKindName(s.kind) + ", not a " +
                                   statKindName(kind));
    return s;
}

const StatRegistry::Slot &
StatRegistry::namedSlot(const std::string &name, StatKind kind) const
{
    const auto it = index_.find(name);
    MOE_ASSERT(it != index_.end(), "unknown stat '" + name + "'");
    const Slot &s = slots_[it->second];
    MOE_ASSERT(s.kind == kind, "stat '" + name + "' is a " +
                                   statKindName(s.kind) + ", not a " +
                                   statKindName(kind));
    return s;
}

StatKind
StatRegistry::kindOf(const std::string &name) const
{
    const auto it = index_.find(name);
    MOE_ASSERT(it != index_.end(), "unknown stat '" + name + "'");
    return slots_[it->second].kind;
}

std::int64_t
StatRegistry::counterValue(const std::string &name) const
{
    return namedSlot(name, StatKind::Counter).count;
}

double
StatRegistry::gaugeValue(const std::string &name) const
{
    return namedSlot(name, StatKind::Gauge).sum;
}

DistributionView
StatRegistry::distributionView(const std::string &name) const
{
    const Slot &s = namedSlot(name, StatKind::Distribution);
    DistributionView v;
    v.count = s.count;
    v.sum = s.sum;
    v.sumSquares = s.sumSquares;
    v.min = s.min;
    v.max = s.max;
    return v;
}

void
StatRegistry::merge(const StatRegistry &other)
{
    for (const Slot &o : other.slots_) {
        const Handle h = resolve(o.name, o.kind);
        Slot &s = slots_[h.idx_];
        switch (o.kind) {
          case StatKind::Counter:
            s.count += o.count;
            break;
          case StatKind::Gauge:
            if (o.gaugeSet) {
                s.sum = o.sum;
                s.gaugeSet = true;
            }
            break;
          case StatKind::Distribution:
            if (o.count == 0)
                break;
            if (s.count == 0) {
                s.min = o.min;
                s.max = o.max;
            } else {
                s.min = std::min(s.min, o.min);
                s.max = std::max(s.max, o.max);
            }
            s.count += o.count;
            s.sum += o.sum;
            s.sumSquares += o.sumSquares;
            break;
        }
    }
}

StatRegistry
StatRegistry::mergedInOrder(const std::vector<StatRegistry> &parts)
{
    StatRegistry all;
    for (const StatRegistry &part : parts)
        all.merge(part);
    return all;
}

std::string
StatRegistry::toJson() const
{
    std::vector<const Slot *> ordered;
    ordered.reserve(slots_.size());
    for (const Slot &s : slots_)
        ordered.push_back(&s);
    std::sort(ordered.begin(), ordered.end(),
              [](const Slot *a, const Slot *b) { return a->name < b->name; });

    std::string out = "{\n  \"schema\": \"moentwine.stats.v1\",\n"
                      "  \"stats\": {\n";
    char buf[256];
    for (std::size_t i = 0; i < ordered.size(); ++i) {
        const Slot &s = *ordered[i];
        out += "    \"" + s.name + "\": ";
        switch (s.kind) {
          case StatKind::Counter:
            std::snprintf(buf, sizeof(buf),
                          "{\"kind\": \"counter\", \"value\": %lld}",
                          static_cast<long long>(s.count));
            break;
          case StatKind::Gauge:
            std::snprintf(buf, sizeof(buf),
                          "{\"kind\": \"gauge\", \"value\": %.12g}",
                          s.sum);
            break;
          case StatKind::Distribution: {
            DistributionView v;
            v.count = s.count;
            v.sum = s.sum;
            v.sumSquares = s.sumSquares;
            v.min = s.min;
            v.max = s.max;
            std::snprintf(
                buf, sizeof(buf),
                "{\"kind\": \"distribution\", \"count\": %lld, "
                "\"sum\": %.12g, \"mean\": %.12g, \"stddev\": %.12g, "
                "\"min\": %.12g, \"max\": %.12g}",
                static_cast<long long>(v.count), v.sum, v.mean(),
                v.stddev(), v.min, v.max);
            break;
          }
        }
        out += buf;
        out += i + 1 < ordered.size() ? ",\n" : "\n";
    }
    out += "  }\n}\n";
    return out;
}

} // namespace moentwine
