#include "obs/trace.hh"

#include <cstdio>

#include "common/logging.hh"

namespace moentwine {

namespace {

constexpr double kUsPerSec = 1e6;

} // namespace

std::string
TraceSink::num(double value)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.12g", value);
    return buf;
}

std::string
TraceSink::num(long long value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", value);
    return buf;
}

std::string
TraceSink::str(const std::string &value)
{
    std::string out = "\"";
    for (const char c : value) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned char>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

void
TraceSink::processName(int pid, const std::string &name)
{
    Event e;
    e.ph = 'M';
    e.pid = pid;
    e.name = "process_name";
    e.args.emplace_back("name", str(name));
    meta_.push_back(std::move(e));
}

void
TraceSink::threadName(int pid, int tid, const std::string &name)
{
    Event e;
    e.ph = 'M';
    e.pid = pid;
    e.tid = tid;
    e.name = "thread_name";
    e.args.emplace_back("name", str(name));
    meta_.push_back(std::move(e));
}

void
TraceSink::span(int pid, int tid, const std::string &cat,
                const std::string &name, double startSec, double endSec,
                Args args)
{
    MOE_ASSERT(endSec >= startSec, "trace span ends before it starts");
    Event e;
    e.ph = 'X';
    e.pid = pid;
    e.tid = tid;
    e.tsUs = startSec * kUsPerSec;
    e.durUs = (endSec - startSec) * kUsPerSec;
    e.cat = cat;
    e.name = name;
    e.args = std::move(args);
    events_.push_back(std::move(e));
}

void
TraceSink::instant(int pid, int tid, const std::string &cat,
                   const std::string &name, double timeSec, Args args)
{
    Event e;
    e.ph = 'i';
    e.pid = pid;
    e.tid = tid;
    e.tsUs = timeSec * kUsPerSec;
    e.cat = cat;
    e.name = name;
    e.args = std::move(args);
    events_.push_back(std::move(e));
}

void
TraceSink::counter(int pid, const std::string &name, double timeSec,
                   Args series)
{
    Event e;
    e.ph = 'C';
    e.pid = pid;
    e.tsUs = timeSec * kUsPerSec;
    e.name = name;
    e.args = std::move(series);
    events_.push_back(std::move(e));
}

std::string
TraceSink::toJson() const
{
    std::string out = "{\"traceEvents\": [\n";
    char buf[96];
    bool first = true;
    const auto emit = [&](const Event &e) {
        if (!first)
            out += ",\n";
        first = false;
        out += "{\"ph\": \"";
        out += e.ph;
        out += "\", \"pid\": " + num(static_cast<long long>(e.pid)) +
            ", \"tid\": " + num(static_cast<long long>(e.tid));
        if (e.ph != 'M') {
            std::snprintf(buf, sizeof(buf), ", \"ts\": %.3f", e.tsUs);
            out += buf;
        }
        if (e.ph == 'X') {
            std::snprintf(buf, sizeof(buf), ", \"dur\": %.3f", e.durUs);
            out += buf;
        }
        if (e.ph == 'i')
            out += ", \"s\": \"t\"";
        if (!e.cat.empty())
            out += ", \"cat\": " + str(e.cat);
        out += ", \"name\": " + str(e.name);
        if (!e.args.empty()) {
            out += ", \"args\": {";
            for (std::size_t i = 0; i < e.args.size(); ++i) {
                out += str(e.args[i].first) + ": " + e.args[i].second;
                if (i + 1 < e.args.size())
                    out += ", ";
            }
            out += '}';
        }
        out += '}';
    };
    for (const Event &e : meta_)
        emit(e);
    for (const Event &e : events_)
        emit(e);
    out += "\n], \"displayTimeUnit\": \"ms\"}\n";
    return out;
}

bool
TraceSink::writeFile(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        warn("could not write trace file " + path);
        return false;
    }
    const std::string doc = toJson();
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    return true;
}

} // namespace moentwine
