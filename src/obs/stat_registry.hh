/**
 * @file
 * StatRegistry: a registry of named counters, gauges, and
 * distributions the simulation layers publish into.
 *
 * Naming convention: hierarchical dotted lowercase paths, unit suffix
 * last — `engine.phase.attn_s`, `serve.queue.depth`,
 * `fault.devices_lost` (see src/obs/README.md). Names are resolved
 * once, at attach/registration time, into O(1) handles; the per-
 * iteration hot path is a bounds-unchecked vector index with no
 * hashing and no allocation.
 *
 * Kinds and merge semantics (merge() folds a per-worker registry into
 * an aggregate, matching slots by name):
 *  - counter: monotone int64 sum of add() deltas. Integer addition is
 *    associative, so merged counter totals are exact and identical
 *    for any merge order or worker count.
 *  - gauge: last set() wins; merge copies the other registry's value
 *    when it was ever set. Merge gauges in a deterministic order
 *    (e.g. grid order) when the aggregate must be reproducible.
 *  - distribution: streaming moments (count, sum, sum of squares,
 *    min, max) of observe() samples — allocation-free, unlike the
 *    sample-retaining common/stats.hh Summary. Sums of doubles are
 *    order-dependent in the last bit, so deterministic aggregates
 *    require a deterministic merge order; the sweep drivers keep one
 *    registry per cell and merge in grid order, which makes the
 *    merged output byte-identical across `--jobs 1` and `--jobs N`.
 *
 * A registry is NOT thread-safe: the concurrency pattern is one
 * registry per worker (or per cell), merged after the workers join —
 * pinned under TSan by tests/obs_test.cpp.
 */

#ifndef MOENTWINE_OBS_STAT_REGISTRY_HH
#define MOENTWINE_OBS_STAT_REGISTRY_HH

#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

namespace moentwine {

/** What a registered stat measures. */
enum class StatKind
{
    Counter,      ///< monotone int64 event count
    Gauge,        ///< last-written double level
    Distribution, ///< streaming moments of a sample stream
};

/** Human-readable kind name ("counter" / "gauge" / "distribution"). */
const char *statKindName(StatKind kind);

/**
 * Read-only view of a distribution's streaming moments. count == 0
 * means no samples: mean()/stddev() are defined as 0 so report code
 * needs no empties guard, and min/max read as 0.
 */
struct DistributionView
{
    std::int64_t count = 0;
    double sum = 0.0;
    double sumSquares = 0.0;
    double min = 0.0;
    double max = 0.0;

    double mean() const
    {
        return count > 0 ? sum / static_cast<double>(count) : 0.0;
    }

    /** Sample standard deviation (0 for fewer than two samples). */
    double stddev() const;
};

class StatRegistry
{
  public:
    /**
     * Pre-resolved O(1) reference to one registered stat. Obtained
     * from counter()/gauge()/distribution() and valid for the
     * lifetime of the registry that issued it (handles index the
     * slot table, which only grows). A default-constructed handle is
     * invalid; publishing through it panics.
     */
    class Handle
    {
      public:
        Handle() = default;

        bool valid() const { return idx_ != kInvalid; }

      private:
        friend class StatRegistry;
        static constexpr std::size_t kInvalid =
            std::numeric_limits<std::size_t>::max();

        explicit Handle(std::size_t idx) : idx_(idx) {}

        std::size_t idx_ = kInvalid;
    };

    /**
     * Resolve (registering on first use) the named stat of the given
     * kind. Re-resolving an existing name returns the same handle;
     * resolving it as a different kind panics — a name means one
     * thing everywhere.
     */
    Handle counter(const std::string &name);
    Handle gauge(const std::string &name);
    Handle distribution(const std::string &name);

    /** Add @p delta to a counter (hot path: one vector index). */
    void add(Handle h, std::int64_t delta = 1)
    {
        slot(h, StatKind::Counter).count += delta;
    }

    /** Set a gauge's level. */
    void set(Handle h, double value)
    {
        Slot &s = slot(h, StatKind::Gauge);
        s.sum = value;
        s.gaugeSet = true;
    }

    /** Record one distribution sample. */
    void observe(Handle h, double sample)
    {
        Slot &s = slot(h, StatKind::Distribution);
        if (s.count == 0) {
            s.min = sample;
            s.max = sample;
        } else {
            if (sample < s.min)
                s.min = sample;
            if (sample > s.max)
                s.max = sample;
        }
        ++s.count;
        s.sum += sample;
        s.sumSquares += sample * sample;
    }

    /** Number of registered stats. */
    std::size_t size() const { return slots_.size(); }

    /** True when the name is registered (any kind). */
    bool contains(const std::string &name) const
    {
        return index_.find(name) != index_.end();
    }

    /** Kind of a registered name; panics when absent. */
    StatKind kindOf(const std::string &name) const;

    /** Counter total; panics on a missing name or a non-counter. */
    std::int64_t counterValue(const std::string &name) const;

    /** Gauge level (0 when never set); panics as counterValue(). */
    double gaugeValue(const std::string &name) const;

    /** Distribution moments; panics as counterValue(). */
    DistributionView distributionView(const std::string &name) const;

    /**
     * Fold @p other into this registry: counters sum, gauges copy
     * when set in @p other, distributions combine moments. Names
     * absent here are registered; a name present under a different
     * kind panics.
     */
    void merge(const StatRegistry &other);

    /**
     * Merge a vector of per-worker/per-cell registries in vector
     * (e.g. grid) order — the deterministic-aggregate idiom for
     * sweeps, independent of which worker produced which registry.
     */
    static StatRegistry mergedInOrder(
        const std::vector<StatRegistry> &parts);

    /**
     * Deterministic JSON document: one object per stat, keyed by
     * name, emitted in lexicographic name order. Byte-identical for
     * identical registry contents.
     */
    std::string toJson() const;

  private:
    struct Slot
    {
        std::string name;
        StatKind kind = StatKind::Counter;
        std::int64_t count = 0; ///< counter total / sample count
        double sum = 0.0;       ///< distribution sum / gauge level
        double sumSquares = 0.0;
        double min = 0.0;
        double max = 0.0;
        bool gaugeSet = false;
    };

    Handle resolve(const std::string &name, StatKind kind);
    Slot &slot(Handle h, StatKind kind);
    const Slot &namedSlot(const std::string &name, StatKind kind) const;

    std::vector<Slot> slots_;
    std::unordered_map<std::string, std::size_t> index_;
};

} // namespace moentwine

#endif // MOENTWINE_OBS_STAT_REGISTRY_HH
