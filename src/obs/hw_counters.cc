#include "obs/hw_counters.hh"

#if defined(__linux__)
#include <cstring>
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace moentwine {

#if defined(__linux__)

namespace {

int
openEvent(std::uint32_t type, std::uint64_t config, int groupFd,
          bool disabled)
{
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.size = sizeof(attr);
    attr.type = type;
    attr.config = config;
    attr.disabled = disabled ? 1 : 0;
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    attr.inherit = 0;
    return static_cast<int>(syscall(SYS_perf_event_open, &attr, 0, -1,
                                    groupFd, 0));
}

} // namespace

HwCounters::HwCounters()
{
    // Leader: cycles. If this one fails (EPERM/EACCES in locked-down
    // containers, ENOENT on PMU-less VMs) the whole group is off.
    fds_[0] = openEvent(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES,
                        -1, /*disabled=*/true);
    if (fds_[0] < 0)
        return;
    // Members schedule with the leader; a member that fails to open
    // (unsupported event) just reads zero.
    fds_[1] = openEvent(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS,
                        fds_[0], false);
    fds_[2] = openEvent(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES,
                        fds_[0], false);
    fds_[3] = openEvent(
        PERF_TYPE_HW_CACHE,
        PERF_COUNT_HW_CACHE_DTLB | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
            (PERF_COUNT_HW_CACHE_RESULT_MISS << 16),
        fds_[0], false);
}

HwCounters::~HwCounters()
{
    for (int i = kEvents - 1; i >= 0; --i) {
        if (fds_[i] >= 0)
            close(fds_[i]);
    }
}

void
HwCounters::start()
{
    if (!available())
        return;
    ioctl(fds_[0], PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
    ioctl(fds_[0], PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
}

HwCounterValues
HwCounters::stop()
{
    HwCounterValues v;
    if (!available())
        return v;
    ioctl(fds_[0], PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
    std::uint64_t *const out[kEvents] = {&v.cycles, &v.instructions,
                                         &v.cacheMisses, &v.dtlbMisses};
    for (int i = 0; i < kEvents; ++i) {
        std::uint64_t value = 0;
        if (fds_[i] >= 0 &&
            read(fds_[i], &value, sizeof(value)) == sizeof(value)) {
            *out[i] = value;
        }
    }
    v.available = true;
    return v;
}

#else // !__linux__

HwCounters::HwCounters() = default;
HwCounters::~HwCounters() = default;

void
HwCounters::start()
{
}

HwCounterValues
HwCounters::stop()
{
    return HwCounterValues{};
}

#endif

} // namespace moentwine
