/**
 * @file
 * Umbrella header and attach-point vocabulary of the observability
 * layer (src/obs/): stat registry, sim-time trace sink, hardware
 * counters, and the ObsHooks bundle simulation layers accept.
 */

#ifndef MOENTWINE_OBS_OBS_HH
#define MOENTWINE_OBS_OBS_HH

#include "obs/hw_counters.hh"
#include "obs/stat_registry.hh"
#include "obs/trace.hh"

namespace moentwine {

/**
 * Optional observability attachments handed to a simulation layer
 * (InferenceEngine::attachObs, ServeSimulator::attachObs). Null
 * members are the compiled-in no-op path: every publish site guards
 * with one pointer test, observation never changes a simulation
 * result, and a run with both members null is byte-identical to one
 * on a build without the obs layer.
 */
struct ObsHooks
{
    /** Stats destination; null disables stat publication. */
    StatRegistry *stats = nullptr;
    /** Trace destination; null disables trace emission. */
    TraceSink *trace = nullptr;
    /** Component track (pid) trace events are emitted under. */
    int tracePid = 0;
};

} // namespace moentwine

#endif // MOENTWINE_OBS_OBS_HH
