/**
 * @file
 * TraceSink: deterministic sim-time traces in the Chrome trace-event
 * JSON format (Perfetto-loadable: open ui.perfetto.dev and drop the
 * file, or chrome://tracing).
 *
 * Every timestamp is the simulation's virtual clock (seconds,
 * converted to the format's microseconds), never wall-clock, so a
 * trace is a pure function of the simulated scenario: identical runs
 * — any worker count, any machine — produce byte-identical trace
 * files. Events are buffered in emission order and serialised by
 * toJson()/writeFile() at the end of the run.
 *
 * Track model (pid/tid are free-form integers in this format):
 *  - pid  = one simulated component ("engine", "serve", "requests"),
 *    named via processName();
 *  - tid  = one timeline inside it (iteration phases, one request,
 *    fault events), named via threadName();
 *  - span()    = complete event 'X' (a phase with a duration);
 *  - instant() = instant event 'i' (a fault landing, a shed);
 *  - counter() = counter event 'C' (queue depth, KV occupancy).
 *
 * The sink is not thread-safe; emit from one thread (the simulator
 * loops are single-threaded per cell — give each traced run its own
 * sink). Tracing is purely observational: attaching a sink never
 * changes a simulation result, and a null sink is the compiled-in
 * no-op path every layer guards with one pointer test.
 */

#ifndef MOENTWINE_OBS_TRACE_HH
#define MOENTWINE_OBS_TRACE_HH

#include <string>
#include <utility>
#include <vector>

namespace moentwine {

class TraceSink
{
  public:
    /**
     * Extra "args" payload of one event: (key, rendered JSON value)
     * pairs. Build values with TraceSink::num()/str() so escaping and
     * number formatting stay uniform (and therefore deterministic).
     */
    using Args = std::vector<std::pair<std::string, std::string>>;

    /** Render a double as a JSON number (deterministic format). */
    static std::string num(double value);

    /** Render an integer as a JSON number. */
    static std::string num(long long value);

    /** Render (escape + quote) a JSON string value. */
    static std::string str(const std::string &value);

    /** Name the component track @p pid. */
    void processName(int pid, const std::string &name);

    /** Name timeline @p tid of component @p pid. */
    void threadName(int pid, int tid, const std::string &name);

    /**
     * A complete span on [@p startSec, @p endSec] of virtual time.
     * @p cat is the filterable category ("engine", "request", ...).
     */
    void span(int pid, int tid, const std::string &cat,
              const std::string &name, double startSec, double endSec,
              Args args = {});

    /** An instantaneous (thread-scoped) event at @p timeSec. */
    void instant(int pid, int tid, const std::string &cat,
                 const std::string &name, double timeSec,
                 Args args = {});

    /**
     * One sample of the counter track @p name: every (series, value)
     * pair of @p series becomes a stacked series in the viewer.
     */
    void counter(int pid, const std::string &name, double timeSec,
                 Args series);

    /** Events emitted so far (metadata names included). */
    std::size_t eventCount() const { return events_.size(); }

    /**
     * The Chrome trace-event JSON document: metadata first, then the
     * buffered events in emission order. Deterministic bytes.
     */
    std::string toJson() const;

    /** Write toJson() to @p path; warn() and false on failure. */
    bool writeFile(const std::string &path) const;

  private:
    struct Event
    {
        char ph = 'X';
        int pid = 0;
        int tid = 0;
        double tsUs = 0.0;
        double durUs = 0.0; ///< 'X' only
        std::string cat;
        std::string name;
        Args args;
    };

    std::vector<Event> meta_;   ///< 'M' process/thread names
    std::vector<Event> events_; ///< everything else, emission order
};

} // namespace moentwine

#endif // MOENTWINE_OBS_TRACE_HH
