/**
 * @file
 * HwCounters: a minimal perf_event_open wrapper for the benchmark
 * drivers — cycles, instructions, last-level cache misses, and dTLB
 * read misses around a timed region, so BENCH_* trajectories can say
 * *why* a change is faster (fewer misses vs fewer instructions), not
 * just that wall-clock moved.
 *
 * Graceful degradation is the contract: on non-Linux builds, in
 * containers/CI where perf_event_open is denied
 * (kernel.perf_event_paranoid, seccomp), or on PMU-less VMs,
 * available() is false and stop() returns all-zero values — callers
 * never branch on platform, and the JSON they emit simply carries
 * zeros with "hw_available": false. Individual counters that fail to
 * open (e.g. no dTLB event on an exotic PMU) read zero while the
 * rest stay live.
 *
 * The four events are opened as one group (cycles leads) so they are
 * scheduled together and the derived IPC is consistent. Counts cover
 * user-space only (exclude_kernel, exclude_hv) on the calling
 * thread.
 */

#ifndef MOENTWINE_OBS_HW_COUNTERS_HH
#define MOENTWINE_OBS_HW_COUNTERS_HH

#include <cstdint>

namespace moentwine {

/** One measured region's counter totals (zeros when unavailable). */
struct HwCounterValues
{
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t dtlbMisses = 0;
    /** False when the PMU could not be opened (values are zeros). */
    bool available = false;

    /** Instructions per cycle; 0 when cycles is 0. */
    double ipc() const
    {
        return cycles > 0
            ? static_cast<double>(instructions) /
                static_cast<double>(cycles)
            : 0.0;
    }
};

class HwCounters
{
  public:
    /** Open the counter group; available() reports the outcome. */
    HwCounters();
    ~HwCounters();

    HwCounters(const HwCounters &) = delete;
    HwCounters &operator=(const HwCounters &) = delete;

    /** True when the PMU group opened and counts will be real. */
    bool available() const { return fds_[0] >= 0; }

    /** Reset and enable the group (no-op when unavailable). */
    void start();

    /** Disable the group and read totals (zeros when unavailable). */
    HwCounterValues stop();

  private:
    static constexpr int kEvents = 4;
    int fds_[kEvents] = {-1, -1, -1, -1};
};

} // namespace moentwine

#endif // MOENTWINE_OBS_HW_COUNTERS_HH
