/**
 * @file
 * WorkerContext: per-worker state that persists across the sweep
 * cells one pool thread executes.
 *
 * The headline member is the engine pool: one reusable
 * InferenceEngine per platform (keyed on Mapping identity), handed
 * out by engine() after an InferenceEngine::reset() that makes it
 * bitwise indistinguishable from a freshly constructed engine. Cells
 * of the same (system, TP) slot that land on the same worker —
 * the common case, since workers own contiguous grid blocks and the
 * system axis is outer — re-seed the cached engine instead of paying
 * its construction (traffic matrices, routed-flow scratch, collective
 * buffers) again.
 *
 * A context never migrates between threads: the runner creates one
 * per worker, the worker alone touches it, and the runner reads the
 * counters back only after the pool joins. No member is synchronized.
 *
 * Cell functions that build their own state (the serving drivers
 * construct ServeSimulators) simply ignore the context; they still
 * get the scheduler-level benefits (stealing, prebuild items,
 * affinity).
 */

#ifndef MOENTWINE_SWEEP_WORKER_CONTEXT_HH
#define MOENTWINE_SWEEP_WORKER_CONTEXT_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "engine/engine.hh"

namespace moentwine {

class WorkerContext
{
  public:
    /**
     * @param id    Worker index in [0, jobs).
     * @param reuse Reuse cached engines (the production setting);
     *              false rebuilds per call — the rebuild baseline the
     *              perf_routing trajectory compares against.
     */
    explicit WorkerContext(int id = 0, bool reuse = true)
        : id_(id), reuse_(reuse)
    {
    }

    WorkerContext(const WorkerContext &) = delete;
    WorkerContext &operator=(const WorkerContext &) = delete;

    /**
     * An engine for @p mapping under @p cfg, in exactly the state
     * InferenceEngine(mapping, cfg) would construct. With reuse
     * enabled, a cached engine for the same mapping is reset() and
     * returned; otherwise (first sighting of the platform, or reuse
     * disabled) a new engine is built and cached. The reference stays
     * valid until the next engine() call on this context with reuse
     * disabled, or until the context dies — within one cell either
     * way.
     */
    InferenceEngine &engine(const Mapping &mapping,
                            const EngineConfig &cfg);

    /** Worker index in [0, jobs). */
    int id() const { return id_; }

    /** CPU this worker is pinned to; -1 when unpinned. */
    int pinnedCpu() const { return pinnedCpu_; }

    /** NUMA node whose System replicas this worker reads. */
    int numaNode() const { return numaNode_; }

    /** Engines handed out by resetting a cached one. */
    std::int64_t engineReuses() const { return engineReuses_; }

    /** Engines handed out by construction. */
    std::int64_t engineBuilds() const { return engineBuilds_; }

  private:
    friend class SweepRunner; // placement fields set at pool start

    struct PoolEntry
    {
        const Mapping *mapping = nullptr;
        std::unique_ptr<InferenceEngine> engine;
    };

    int id_ = 0;
    bool reuse_ = true;
    int pinnedCpu_ = -1;
    int numaNode_ = 0;
    std::vector<PoolEntry> pool_;
    std::int64_t engineReuses_ = 0;
    std::int64_t engineBuilds_ = 0;
};

} // namespace moentwine

#endif // MOENTWINE_SWEEP_WORKER_CONTEXT_HH
