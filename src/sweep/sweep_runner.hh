/**
 * @file
 * Parallel grid execution for the figure sweeps.
 *
 * SweepRunner executes every cell of a SweepGrid on a pool of
 * workers, each draining a per-worker work-stealing deque
 * (work_deque.hh): a worker owns a contiguous block of the grid and
 * pops it LIFO; a worker that runs dry steals FIFO from its victims
 * in the deterministic order (w+1, w+2, ...) mod workers. Because the
 * system axis is outer in the grid's row-major order, contiguous
 * blocks keep same-platform cells on one worker — which is what makes
 * the per-worker engine reuse (worker_context.hh) hit.
 *
 * Determinism contract (unchanged since PR 2, re-pinned by
 * tests/sweep_test.cpp and the CI byte-compares, now with stealing,
 * reuse, and affinity in play):
 *  - the result vector is indexed by grid order, so rows come back in
 *    the same order regardless of which worker finished first or who
 *    stole what;
 *  - each cell derives all randomness from SweepPoint::seed() and the
 *    worker context hands out engines bitwise identical to freshly
 *    constructed ones, so a cell's row is a pure function of its
 *    coordinates and `--jobs N` output is byte-identical to
 *    `--jobs 1` under every scheduling/affinity/reuse setting.
 *
 * Systems (topology + mapping) are built once per (system, TP) axis
 * pair and NUMA node — eagerly via stealable prebuild items seeded
 * across the deques (so a grid whose first cells share one platform
 * does not serialize its warm-up), with a per-slot once-guard
 * backstop for cells that outrun their prebuild — finalized (no lazy
 * caches), and handed to cells as shared_ptr<const System>. With
 * affinity enabled on a multi-socket box (or with
 * SweepOptions::numaNodesOverride forcing replication), each NUMA
 * node gets its own System replica, built by a thread pinned to that
 * node so first-touch places the hot read-only tables (route/next-hop
 * storage, dispatch memos, expert placements) node-locally. The
 * replica build is deterministic, so rows never depend on it.
 *
 * Job-count convention, used by every converted bench driver:
 *   --jobs N argument (last occurrence wins) > MOENTWINE_JOBS env >
 *   hardware_concurrency().
 * Affinity convention: --affinity flag > MOENTWINE_AFFINITY env
 * ("1"/"0") > off. Drivers apply both through bench/jobs.hh
 * (benchjobs::makeRunner) rather than spelling the chains themselves.
 */

#ifndef MOENTWINE_SWEEP_SWEEP_RUNNER_HH
#define MOENTWINE_SWEEP_SWEEP_RUNNER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "obs/hw_counters.hh"
#include "sweep/sweep_grid.hh"
#include "sweep/worker_context.hh"

namespace moentwine {

class StatRegistry;

/** One unit of work handed to a sweep cell function. */
struct SweepCell
{
    /** Grid coordinates and axis values of this cell. */
    SweepPoint point;
    /**
     * Prebuilt system for the cell's (system, TP) coordinates — the
     * executing worker's NUMA-node replica when replication is
     * active, the single shared instance otherwise; null when the
     * grid does not sweep systems (cells that need no platform, or
     * drivers managing their own shared systems).
     */
    std::shared_ptr<const System> system;
    /**
     * The executing worker's persistent context (never null): engine
     * pool for same-platform reuse, worker id, placement info. Cells
     * that build their own state may ignore it.
     */
    WorkerContext *worker = nullptr;
};

/** Execution knobs of a sweep run (scheduling/placement only — none
 *  of these may change a row; see the determinism contract above). */
struct SweepOptions
{
    /** Worker count; 0 resolves MOENTWINE_JOBS then hardware. */
    int jobs = 0;
    /** Work-stealing deques (false: the PR 2 atomic-cursor drain). */
    bool stealing = true;
    /** Per-worker engine reuse across same-platform cells (false:
     *  WorkerContext::engine rebuilds per cell — the baseline the
     *  perf trajectory compares against). */
    bool reuseWorkerState = true;
    /** Pin worker w to allowed CPU w mod |allowed| (graceful no-op
     *  where pinning is refused). */
    bool affinity = false;
    /**
     * Force the NUMA replication degree: 0 detects (replicating only
     * when affinity is on and the box has > 1 node; workers then map
     * to the node of their pinned CPU). A positive value forces that
     * many replicas with workers assigned round-robin — the
     * single-socket test/bench hook for the replication path.
     */
    int numaNodesOverride = 0;
    /** Sum per-worker hardware counters (obs/hw_counters.hh) over
     *  the drain loops into SweepRunStats::hw. */
    bool collectHw = false;
};

/**
 * What a sweep run did, scheduler-side: steal/reuse/prebuild counters
 * and per-worker busy time. Wall-clock and scheduling dependent —
 * report it in BENCH trajectories and diagnostics, never in golden
 * row outputs (steal counts legitimately differ run to run; rows may
 * not).
 */
struct SweepRunStats
{
    /** Workers the run actually used (min(jobs, cells)). */
    int workers = 0;
    /** NUMA replication degree in effect (1 = single copy). */
    int numaNodes = 1;
    /** Options echo: how the run was scheduled. */
    bool stealing = false;
    bool affinity = false;
    bool reuse = false;
    /** Cell items executed (== grid cells on success). */
    std::int64_t cells = 0;
    /** Prebuild items executed. */
    std::int64_t prebuilds = 0;
    /** Items executed by a worker that stole them. */
    std::int64_t steals = 0;
    /** The subset of steals that were prebuild items. */
    std::int64_t prebuildSteals = 0;
    /** Workers whose pin request was honoured. */
    int pinned = 0;
    /** Engine pool misses (constructions) across workers. */
    std::int64_t engineBuilds = 0;
    /** Engine pool hits (reset-and-reuse) across workers. */
    std::int64_t engineReuses = 0;
    /** Per-worker executed item counts (indexed by worker id). */
    std::vector<std::int64_t> workerItems;
    /** Per-worker stolen-item counts. */
    std::vector<std::int64_t> workerSteals;
    /** Per-worker busy seconds (sum of item execution times). */
    std::vector<double> workerBusySeconds;
    /** Summed per-worker hardware counters (collectHw runs only;
     *  available is false when any PMU group failed to open). */
    HwCounterValues hw{};

    /** Mean of workerBusySeconds (0 when empty). */
    double busyMeanSeconds() const;

    /**
     * Publish the counters under "sweep." into @p registry
     * (sweep.cells, sweep.steals, sweep.prebuilds,
     * sweep.prebuild_steals, sweep.engine.builds,
     * sweep.engine.reuses, sweep.workers / sweep.numa_nodes gauges,
     * sweep.worker.busy_s / sweep.worker.items distributions).
     */
    void publishTo(StatRegistry &registry) const;
};

/**
 * Work-stealing worker pool over sweep grids.
 */
class SweepRunner
{
  public:
    /** Computes one result row from one cell; must be thread-safe. */
    using CellFn = std::function<SweepResult(const SweepCell &)>;

    /**
     * @param jobs Worker count; 0 resolves MOENTWINE_JOBS, then
     *             hardware_concurrency() (see resolveJobs()).
     */
    explicit SweepRunner(int jobs = 0);

    /** Full-options constructor (opts.jobs resolved as above). */
    explicit SweepRunner(const SweepOptions &opts);

    /** The resolved worker count. */
    int jobs() const { return jobs_; }

    /** The options this runner executes with (jobs resolved). */
    const SweepOptions &options() const { return opts_; }

    /**
     * Execute every cell of @p grid through @p fn and return the rows
     * in grid order. With jobs() == 1 the cells run inline on the
     * calling thread in grid order — the serial reference the
     * parallel output is byte-identical to (the calling thread is
     * never pinned; affinity applies to pool workers only). A cell
     * that throws aborts the sweep: workers stop claiming items and
     * the first exception (in completion order) is rethrown on the
     * caller after the pool drains. When @p stats is non-null it is
     * overwritten with the run's scheduler counters.
     */
    std::vector<SweepResult> run(const SweepGrid &grid, const CellFn &fn,
                                 SweepRunStats *stats = nullptr) const;

    /**
     * Resolve a requested job count: @p requested when positive, else
     * the MOENTWINE_JOBS environment variable when set (anything but a
     * strict positive integer is fatal() — a half-parsed "4abc" must
     * not silently size the pool), else
     * std::thread::hardware_concurrency() (min 1).
     */
    static int resolveJobs(int requested);

    /**
     * Parse `--jobs N` / `--jobs=N` out of argv. Every occurrence is
     * validated (a malformed value is fatal() wherever it appears);
     * the LAST occurrence wins, the normal CLI override convention —
     * `bench --jobs 8 --jobs 1` runs serial. Returns 0 when absent,
     * so the result feeds straight into the constructor.
     */
    static int jobsFromArgs(int argc, char **argv);

    /**
     * Resolve the affinity knob: true when `--affinity` appears in
     * argv, else the MOENTWINE_AFFINITY environment variable ("1" on,
     * "0" off, anything else fatal()), else false.
     */
    static bool affinityFromArgs(int argc, char **argv);

  private:
    SweepOptions opts_;
    int jobs_;
};

} // namespace moentwine

#endif // MOENTWINE_SWEEP_SWEEP_RUNNER_HH
