/**
 * @file
 * Parallel grid execution for the figure sweeps.
 *
 * SweepRunner executes every cell of a SweepGrid on a fixed-size
 * thread pool (plain std::thread workers draining an atomic cell
 * counter). Determinism contract:
 *  - the result vector is indexed by grid order, so rows come back in
 *    the same order regardless of which worker finished first;
 *  - each cell builds its own engine/workload state and derives any
 *    randomness from SweepPoint::seed(), so a cell's row is a pure
 *    function of its coordinates and `--jobs N` output is
 *    byte-identical to `--jobs 1`.
 *
 * Systems (topology + mapping) are built once per (system, TP) axis
 * pair — lazily, under a per-slot once-guard, on whichever worker
 * first needs the platform — finalized (no lazy caches), and handed
 * to cells as shared_ptr<const System> — safe to share because a
 * finalized System is deeply immutable (see core/moentwine.hh).
 *
 * Job-count convention, used by every converted bench driver:
 *   --jobs N argument > MOENTWINE_JOBS env > hardware_concurrency().
 * Drivers apply it through the shared bench/jobs.hh helpers
 * (benchjobs::makeRunner / benchjobs::resolve) rather than spelling
 * the chain themselves.
 */

#ifndef MOENTWINE_SWEEP_SWEEP_RUNNER_HH
#define MOENTWINE_SWEEP_SWEEP_RUNNER_HH

#include <functional>
#include <memory>
#include <vector>

#include "sweep/sweep_grid.hh"

namespace moentwine {

/** One unit of work handed to a sweep cell function. */
struct SweepCell
{
    /** Grid coordinates and axis values of this cell. */
    SweepPoint point;
    /**
     * Prebuilt system for the cell's (system, TP) coordinates, shared
     * across all cells and worker threads; null when the grid does not
     * sweep systems (cells that need no platform, or drivers managing
     * their own shared systems).
     */
    std::shared_ptr<const System> system;
};

/**
 * Fixed-size thread pool over sweep grids.
 */
class SweepRunner
{
  public:
    /** Computes one result row from one cell; must be thread-safe. */
    using CellFn = std::function<SweepResult(const SweepCell &)>;

    /**
     * @param jobs Worker count; 0 resolves MOENTWINE_JOBS, then
     *             hardware_concurrency() (see resolveJobs()).
     */
    explicit SweepRunner(int jobs = 0);

    /** The resolved worker count. */
    int jobs() const { return jobs_; }

    /**
     * Execute every cell of @p grid through @p fn and return the rows
     * in grid order. With jobs() == 1 the cells run inline on the
     * calling thread — the serial reference the parallel output is
     * byte-identical to. A cell that throws aborts the sweep: the
     * first exception (in completion order) is rethrown on the caller
     * after the pool drains.
     */
    std::vector<SweepResult> run(const SweepGrid &grid,
                                 const CellFn &fn) const;

    /**
     * Resolve a requested job count: @p requested when positive, else
     * the MOENTWINE_JOBS environment variable when set (anything but a
     * strict positive integer is fatal() — a half-parsed "4abc" must
     * not silently size the pool), else
     * std::thread::hardware_concurrency() (min 1).
     */
    static int resolveJobs(int requested);

    /**
     * Parse a `--jobs N` / `--jobs=N` argument out of argv (first
     * occurrence wins). Returns 0 when absent, so the result feeds
     * straight into the constructor. Malformed values are fatal().
     */
    static int jobsFromArgs(int argc, char **argv);

  private:
    int jobs_;
};

} // namespace moentwine

#endif // MOENTWINE_SWEEP_SWEEP_RUNNER_HH
