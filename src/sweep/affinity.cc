#include "sweep/affinity.hh"

#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>

#include <cctype>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>
#endif

namespace moentwine {
namespace affinity {

#if defined(__linux__)

namespace {

/**
 * Parse a sysfs cpulist ("0-3,8,10-11") into CPU ids. Malformed
 * input yields an empty list — callers treat that as "unknown" and
 * fall back, never fail.
 */
std::vector<int>
parseCpuList(const std::string &text)
{
    std::vector<int> cpus;
    std::size_t i = 0;
    while (i < text.size()) {
        if (!std::isdigit(static_cast<unsigned char>(text[i]))) {
            ++i;
            continue;
        }
        std::size_t end = i;
        while (end < text.size() &&
               std::isdigit(static_cast<unsigned char>(text[end])))
            ++end;
        const int lo = std::stoi(text.substr(i, end - i));
        int hi = lo;
        if (end < text.size() && text[end] == '-') {
            std::size_t e2 = end + 1;
            while (e2 < text.size() &&
                   std::isdigit(static_cast<unsigned char>(text[e2])))
                ++e2;
            if (e2 > end + 1)
                hi = std::stoi(text.substr(end + 1, e2 - end - 1));
            end = e2;
        }
        for (int c = lo; c <= hi && hi - lo < 65536; ++c)
            cpus.push_back(c);
        i = end;
    }
    return cpus;
}

std::string
readSmallFile(const std::string &path)
{
    std::string out;
    if (std::FILE *f = std::fopen(path.c_str(), "r")) {
        char buf[4096];
        const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
        std::fclose(f);
        out.assign(buf, n);
    }
    return out;
}

/**
 * cpu → node map read once from sysfs. Index is the CPU id; value is
 * its node (0 when the sysfs layout is absent or masked).
 */
struct NodeMap
{
    int nodes = 1;
    std::vector<int> nodeOf; // indexed by cpu id

    NodeMap()
    {
        for (int node = 0;; ++node) {
            const std::string list = readSmallFile(
                "/sys/devices/system/node/node" + std::to_string(node) +
                "/cpulist");
            if (list.empty()) {
                // node0 missing entirely → no sysfs NUMA view; keep
                // the single-node default.
                if (node > 0)
                    nodes = node;
                break;
            }
            for (const int cpu : parseCpuList(list)) {
                if (cpu >= static_cast<int>(nodeOf.size()))
                    nodeOf.resize(static_cast<std::size_t>(cpu) + 1, 0);
                nodeOf[static_cast<std::size_t>(cpu)] = node;
            }
        }
        if (nodes < 1)
            nodes = 1;
    }
};

const NodeMap &
nodeMap()
{
    static const NodeMap map;
    return map;
}

} // namespace

int
cpuCount()
{
    cpu_set_t set;
    CPU_ZERO(&set);
    if (sched_getaffinity(0, sizeof(set), &set) == 0) {
        const int n = CPU_COUNT(&set);
        if (n > 0)
            return n;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

std::vector<int>
allowedCpus()
{
    std::vector<int> cpus;
    cpu_set_t set;
    CPU_ZERO(&set);
    if (sched_getaffinity(0, sizeof(set), &set) == 0) {
        for (int c = 0; c < CPU_SETSIZE; ++c)
            if (CPU_ISSET(static_cast<unsigned>(c), &set))
                cpus.push_back(c);
    }
    if (cpus.empty())
        for (int c = 0; c < cpuCount(); ++c)
            cpus.push_back(c);
    return cpus;
}

int
numaNodeCount()
{
    return nodeMap().nodes;
}

int
nodeOfCpu(int cpu)
{
    const NodeMap &map = nodeMap();
    if (cpu < 0 || cpu >= static_cast<int>(map.nodeOf.size()))
        return 0;
    return map.nodeOf[static_cast<std::size_t>(cpu)];
}

bool
pinSelfToCpu(int cpu)
{
    if (cpu < 0)
        return false;
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(static_cast<unsigned>(cpu), &set);
    return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
}

#else // !__linux__

int
cpuCount()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

std::vector<int>
allowedCpus()
{
    std::vector<int> cpus;
    for (int c = 0; c < cpuCount(); ++c)
        cpus.push_back(c);
    return cpus;
}

int
numaNodeCount()
{
    return 1;
}

int
nodeOfCpu(int)
{
    return 0;
}

bool
pinSelfToCpu(int)
{
    return false;
}

#endif

} // namespace affinity
} // namespace moentwine
