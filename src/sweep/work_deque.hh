/**
 * @file
 * Fixed-array work-stealing deque for the sweep scheduler.
 *
 * The sweep workload is special: every work item (system prebuilds
 * plus one item per grid cell) is known before the pool starts, so
 * each worker's deque is preloaded single-threaded and only ever
 * shrinks during the run — there is no concurrent push, no buffer
 * growth, and therefore no ABA hazard. What remains of the classic
 * Chase–Lev algorithm is the two-ended arbitration:
 *
 *  - the owner pops from the bottom (LIFO relative to preload order);
 *  - thieves steal from the top (FIFO — the oldest preloaded items),
 *    so the owner and its thieves collide only on the last item,
 *    which a compare-exchange on top arbitrates.
 *
 * All atomics use seq_cst rather than the fence-based formulation:
 * ThreadSanitizer does not model standalone atomic_thread_fence, and
 * the TSan CI job is part of this deque's correctness contract. At
 * sweep-cell granularity (milliseconds per item) the ordering cost is
 * unmeasurable.
 *
 * Scheduling freedom never reaches the output: rows are written at
 * their grid index and every cell is a pure function of its
 * SweepPoint, so who executed an item is unobservable outside the
 * steal counters (see SweepRunStats).
 */

#ifndef MOENTWINE_SWEEP_WORK_DEQUE_HH
#define MOENTWINE_SWEEP_WORK_DEQUE_HH

#include <atomic>
#include <cstddef>
#include <vector>

namespace moentwine {

/** One schedulable unit of a sweep run. */
struct SweepWorkItem
{
    enum class Kind
    {
        Prebuild, ///< finalize one (system, TP) platform slot
        Cell,     ///< execute one grid cell
    };

    Kind kind = Kind::Cell;
    /** Linear grid index: the cell to run (Cell), or a representative
     *  cell of the (system, TP) slot to finalize (Prebuild). */
    std::size_t index = 0;
};

/**
 * One worker's deque. Preload items with push() before any worker
 * thread starts; during the run the owner calls takeBottom() and
 * other workers call stealTop().
 */
class SweepWorkDeque
{
  public:
    /** Preload one item (single-threaded setup phase only). */
    void push(const SweepWorkItem &item)
    {
        items_.push_back(item);
        bottom_.store(static_cast<long>(items_.size()),
                      std::memory_order_seq_cst);
    }

    /** Preloaded item count (setup/reporting; not a liveness probe). */
    std::size_t size() const { return items_.size(); }

    /**
     * Owner-side pop of the most recently preloaded remaining item.
     * Returns false when the deque is empty (or the last item was
     * lost to a concurrent thief).
     */
    bool takeBottom(SweepWorkItem &out)
    {
        long b = bottom_.load(std::memory_order_seq_cst) - 1;
        bottom_.store(b, std::memory_order_seq_cst);
        long t = top_.load(std::memory_order_seq_cst);
        if (t > b) {
            // Empty: restore bottom for the benefit of size probes.
            bottom_.store(b + 1, std::memory_order_seq_cst);
            return false;
        }
        if (t == b) {
            // Last item: race the thieves for it via top.
            const bool won = top_.compare_exchange_strong(
                t, t + 1, std::memory_order_seq_cst);
            bottom_.store(b + 1, std::memory_order_seq_cst);
            if (!won)
                return false;
            out = items_[static_cast<std::size_t>(b)];
            return true;
        }
        out = items_[static_cast<std::size_t>(b)];
        return true;
    }

    /**
     * Thief-side steal of the oldest remaining item. Returns false
     * when the deque is empty or the steal lost a race (the caller's
     * victim loop simply moves on; a lost race means someone else
     * made progress).
     */
    bool stealTop(SweepWorkItem &out)
    {
        long t = top_.load(std::memory_order_seq_cst);
        const long b = bottom_.load(std::memory_order_seq_cst);
        if (t >= b)
            return false;
        const SweepWorkItem item = items_[static_cast<std::size_t>(t)];
        if (!top_.compare_exchange_strong(t, t + 1,
                                          std::memory_order_seq_cst))
            return false;
        out = item;
        return true;
    }

  private:
    std::vector<SweepWorkItem> items_;
    std::atomic<long> top_{0};
    std::atomic<long> bottom_{0};
};

} // namespace moentwine

#endif // MOENTWINE_SWEEP_WORK_DEQUE_HH
