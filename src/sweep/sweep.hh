/**
 * @file
 * Umbrella header of the parallel sweep subsystem: grid declaration
 * (sweep_grid.hh) plus thread-pooled execution (sweep_runner.hh).
 * Bench drivers include this and write:
 *
 * @code
 *   SweepGrid grid;
 *   grid.models = {qwen3(), deepseekV3()};
 *   grid.systems = {wscErCfg};
 *   grid.balancers = {BalancerKind::None, BalancerKind::NonInvasive};
 *
 *   const SweepRunner runner(SweepRunner::jobsFromArgs(argc, argv));
 *   const auto rows = runner.run(grid, [](const SweepCell &cell) {
 *       EngineConfig ec;
 *       ec.model = cell.point.modelConfig();
 *       ec.balancer = cell.point.balancerKind();
 *       InferenceEngine engine(cell.system->mapping(), ec);
 *       ...
 *       SweepResult row;
 *       row.label = cell.system->name();
 *       row.add("layer_us", layer.mean() * 1e6);
 *       return row;
 *   });
 * @endcode
 */

#ifndef MOENTWINE_SWEEP_SWEEP_HH
#define MOENTWINE_SWEEP_SWEEP_HH

#include "sweep/sweep_grid.hh"
#include "sweep/sweep_runner.hh"

#endif // MOENTWINE_SWEEP_SWEEP_HH
