/**
 * @file
 * Umbrella header of the parallel sweep subsystem: grid declaration
 * (sweep_grid.hh), work-stealing execution with per-worker state
 * (sweep_runner.hh, work_deque.hh, worker_context.hh), and CPU/NUMA
 * placement helpers (affinity.hh). Bench drivers include this and
 * write:
 *
 * @code
 *   SweepGrid grid;
 *   grid.models = {qwen3(), deepseekV3()};
 *   grid.systems = {wscErCfg};
 *   grid.balancers = {BalancerKind::None, BalancerKind::NonInvasive};
 *
 *   SweepOptions opts;
 *   opts.jobs = SweepRunner::jobsFromArgs(argc, argv);
 *   opts.affinity = SweepRunner::affinityFromArgs(argc, argv);
 *   const SweepRunner runner(opts);
 *   const auto rows = runner.run(grid, [](const SweepCell &cell) {
 *       EngineConfig ec;
 *       ec.model = cell.point.modelConfig();
 *       ec.balancer = cell.point.balancerKind();
 *       InferenceEngine &engine =
 *           cell.worker->engine(cell.system->mapping(), ec);
 *       ...
 *       SweepResult row;
 *       row.label = cell.system->name();
 *       row.add("layer_us", layer.mean() * 1e6);
 *       return row;
 *   });
 * @endcode
 */

#ifndef MOENTWINE_SWEEP_SWEEP_HH
#define MOENTWINE_SWEEP_SWEEP_HH

#include "sweep/affinity.hh"
#include "sweep/sweep_grid.hh"
#include "sweep/sweep_runner.hh"
#include "sweep/work_deque.hh"
#include "sweep/worker_context.hh"

#endif // MOENTWINE_SWEEP_SWEEP_HH
