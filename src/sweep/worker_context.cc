#include "sweep/worker_context.hh"

namespace moentwine {

InferenceEngine &
WorkerContext::engine(const Mapping &mapping, const EngineConfig &cfg)
{
    for (PoolEntry &entry : pool_) {
        if (entry.mapping != &mapping)
            continue;
        if (reuse_) {
            ++engineReuses_;
            entry.engine->reset(cfg);
        } else {
            // Rebuild baseline: same lifetime shape (the entry owns
            // the engine), none of the scratch reuse.
            ++engineBuilds_;
            entry.engine =
                std::make_unique<InferenceEngine>(mapping, cfg);
        }
        return *entry.engine;
    }
    ++engineBuilds_;
    pool_.push_back(PoolEntry{
        &mapping, std::make_unique<InferenceEngine>(mapping, cfg)});
    return *pool_.back().engine;
}

} // namespace moentwine
