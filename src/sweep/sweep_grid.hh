/**
 * @file
 * Sweep grids: the named-axis cartesian products behind every figure
 * of the paper (model × platform × TP × balancer × schedule × gating
 * × free parameter).
 *
 * A SweepGrid declares axis values; every axis left empty contributes
 * a single wildcard cell, so drivers only populate the axes their
 * figure actually sweeps. Cells are addressed by a row-major linear
 * index (models outermost, router policies innermost) — SweepPoint carries both
 * the linear index and the per-axis indices, and at() inverts the
 * mapping so drivers can render tables in any nesting order after a
 * run. Each point derives a stable 64-bit seed from its grid
 * coordinates (FNV-1a), so a cell's engine RNG stream depends only on
 * where the cell sits in the grid — never on which worker thread ran
 * it or in what order — which is what makes parallel and serial sweep
 * runs bit-identical.
 */

#ifndef MOENTWINE_SWEEP_SWEEP_GRID_HH
#define MOENTWINE_SWEEP_SWEEP_GRID_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "cluster/router.hh"
#include "core/moentwine.hh"
#include "fault/scenarios.hh"

namespace moentwine {

class SweepGrid;

/** Coordinates of one grid cell plus typed access to its axis values. */
struct SweepPoint
{
    /** Owning grid (outlives the point). */
    const SweepGrid *grid = nullptr;
    /** Row-major linear index in [0, grid->cells()). */
    std::size_t index = 0;

    // Per-axis indices; -1 marks an axis the grid does not sweep.
    int model = -1;
    int system = -1;
    int tp = -1;
    int balancer = -1;
    int schedule = -1;
    int gating = -1;
    int param = -1;
    int arrival = -1;
    int fault = -1;
    int replicas = -1;
    int router = -1;

    /** Model of this cell (grid must sweep models). */
    const MoEModelConfig &modelConfig() const;

    /**
     * System configuration of this cell, with the TP-axis override
     * applied (grid must sweep systems).
     */
    SystemConfig systemConfig() const;

    /** TP degree: the TP axis value, else the system config's tp. */
    int tpDegree() const;

    /** Balancer of this cell (BalancerKind::None when not swept). */
    BalancerKind balancerKind() const;

    /** Schedule of this cell (DecodeOnly when not swept). */
    SchedulingMode schedulingMode() const;

    /** Gating mode of this cell (Balanced when not swept). */
    GatingMode gatingMode() const;

    /** Free parameter of this cell (grid must sweep params). */
    double parameter() const;

    /** Arrival process of this cell (Poisson when not swept) — the
     *  serving-simulator axis (src/serve/). */
    ArrivalKind arrivalKind() const;

    /** Fault scenario of this cell (None when not swept) — the
     *  fault-injection axis (src/fault/). */
    FaultScenarioKind faultScenario() const;

    /** Fleet replica count of this cell (1 when not swept) — the
     *  cluster axis (src/cluster/). */
    int replicaCount() const;

    /** Router policy of this cell (RoundRobin when not swept) — the
     *  cluster axis (src/cluster/). */
    RouterPolicy routerPolicy() const;

    /**
     * Stable per-cell RNG seed: an FNV-1a hash of the grid coordinates
     * mixed with @p base. Equal coordinates give equal seeds on every
     * run, thread count, and platform, so seeding a cell's engine from
     * this makes parallel sweeps bit-identical to serial ones.
     */
    uint64_t seed(uint64_t base = 42) const;
};

/**
 * Named axes of one figure sweep. Populate the axes the figure varies;
 * empty axes behave as a single unswept wildcard.
 */
class SweepGrid
{
  public:
    /** Models under test. */
    std::vector<MoEModelConfig> models;
    /** Platforms to build (shared across cells by the runner). */
    std::vector<SystemConfig> systems;
    /** TP-degree overrides applied to each system config. */
    std::vector<int> tpDegrees;
    /** Balancing strategies. */
    std::vector<BalancerKind> balancers;
    /** Iteration compositions. */
    std::vector<SchedulingMode> schedules;
    /** Gating / workload regimes. */
    std::vector<GatingMode> gatings;
    /** Free numeric axis (EP degree, ablation step, ...). */
    std::vector<double> params;
    /** Arrival processes for serving sweeps (src/serve/). */
    std::vector<ArrivalKind> arrivals;
    /** Fault scenarios for degraded-operation sweeps (src/fault/). */
    std::vector<FaultScenarioKind> faultScenarios;
    /** Fleet replica counts for cluster sweeps (src/cluster/). */
    std::vector<int> replicaCounts;
    /** Router policies for cluster sweeps (src/cluster/); innermost. */
    std::vector<RouterPolicy> routers;

    /** Total cell count: product over axes of max(1, axis size). */
    std::size_t cells() const;

    /** The point at row-major linear index @p index. */
    SweepPoint pointAt(std::size_t index) const;

    /**
     * Linear index of the cell with the given per-axis indices; pass
     * -1 (or 0) for unswept axes. Lets drivers look rows up in any
     * rendering order after a run.
     */
    std::size_t at(int model = -1, int system = -1, int tp = -1,
                   int balancer = -1, int schedule = -1, int gating = -1,
                   int param = -1, int arrival = -1, int fault = -1,
                   int replicas = -1, int router = -1) const;
};

/** One row of sweep output: a label plus ordered (key, value) metrics. */
struct SweepResult
{
    /** Linear grid index of the producing cell (set by the runner). */
    std::size_t index = 0;
    /** Human-readable cell label for tables and emitted rows. */
    std::string label;
    /** Ordered metrics; keys are stable across cells of one sweep. */
    std::vector<std::pair<std::string, double>> metrics;

    /** Append one metric. */
    void add(const std::string &key, double value)
    {
        metrics.emplace_back(key, value);
    }

    /** Value of @p key; panics when the row does not carry it. */
    double metric(const std::string &key) const;
};

} // namespace moentwine

#endif // MOENTWINE_SWEEP_SWEEP_GRID_HH
