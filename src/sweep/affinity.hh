/**
 * @file
 * Core-affinity and NUMA placement helpers for the sweep worker pool.
 *
 * The playbook is the classic locality-first one: pin each worker
 * thread to one core so its working set stays in that core's private
 * caches, and — on multi-socket boxes — build per-NUMA-node copies of
 * the hot read-only tables (the System's route/next-hop storage and
 * expert placements) on a thread already pinned to that node, so
 * first-touch places every page node-locally.
 *
 * Graceful degradation is the contract, mirroring obs/hw_counters.hh:
 * on non-Linux builds, in containers that mask the sysfs node
 * directories, or when pthread_setaffinity_np is refused by the
 * runtime, the helpers report one node / failed pin and callers fall
 * back to the unpinned single-copy behaviour. Affinity and NUMA
 * replication are placement-only mechanisms: they may never change a
 * simulated result (the sweep determinism contract in
 * sweep_runner.hh), only where the bytes producing it live.
 */

#ifndef MOENTWINE_SWEEP_AFFINITY_HH
#define MOENTWINE_SWEEP_AFFINITY_HH

#include <vector>

namespace moentwine {
namespace affinity {

/**
 * Number of CPUs usable by this process (affinity-mask aware on
 * Linux, hardware_concurrency otherwise); always >= 1.
 */
int cpuCount();

/**
 * CPU ids this process may run on, ascending. Workers are pinned
 * round-robin over this list — never to a raw index that a container
 * cpuset might exclude. Falls back to {0, 1, ..., cpuCount()-1} when
 * the mask cannot be read.
 */
std::vector<int> allowedCpus();

/**
 * Number of online NUMA nodes, from /sys/devices/system/node; 1 on
 * single-socket boxes, non-Linux builds, and when sysfs is masked.
 */
int numaNodeCount();

/**
 * NUMA node of @p cpu, parsed from the node cpulist files; 0 when
 * unknown (single-node fallback). Stable across calls.
 */
int nodeOfCpu(int cpu);

/**
 * Pin the calling thread to @p cpu via pthread_setaffinity_np.
 * Returns false (and leaves the thread free-running) when the
 * platform lacks the call or the kernel refuses it — e.g. @p cpu is
 * outside the container's cpuset on a 1-core box.
 */
bool pinSelfToCpu(int cpu);

} // namespace affinity
} // namespace moentwine

#endif // MOENTWINE_SWEEP_AFFINITY_HH
