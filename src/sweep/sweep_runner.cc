#include "sweep/sweep_runner.hh"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <limits>
#include <mutex>
#include <string>
#include <thread>

#include "common/logging.hh"
#include "obs/stat_registry.hh"
#include "sweep/affinity.hh"
#include "sweep/work_deque.hh"

namespace moentwine {

namespace {

/**
 * Strict base-10 parse of a positive int: the whole string must be
 * consumed (no "4abc"), and the value must fit. Returns -1 on any
 * violation so callers reject loudly instead of running a sweep with
 * an atoi-truncated job count.
 */
int
parsePositiveInt(const char *text)
{
    if (text == nullptr || *text == '\0')
        return -1;
    char *end = nullptr;
    errno = 0;
    const long value = std::strtol(text, &end, 10);
    if (errno == ERANGE || end == text || *end != '\0')
        return -1;
    if (value <= 0 ||
        value > static_cast<long>(std::numeric_limits<int>::max()))
        return -1;
    return static_cast<int>(value);
}

double
secondsSince(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

double
SweepRunStats::busyMeanSeconds() const
{
    if (workerBusySeconds.empty())
        return 0.0;
    double sum = 0.0;
    for (double s : workerBusySeconds)
        sum += s;
    return sum / static_cast<double>(workerBusySeconds.size());
}

void
SweepRunStats::publishTo(StatRegistry &registry) const
{
    registry.add(registry.counter("sweep.cells"), cells);
    registry.add(registry.counter("sweep.prebuilds"), prebuilds);
    registry.add(registry.counter("sweep.steals"), steals);
    registry.add(registry.counter("sweep.prebuild_steals"),
                 prebuildSteals);
    registry.add(registry.counter("sweep.engine.builds"), engineBuilds);
    registry.add(registry.counter("sweep.engine.reuses"), engineReuses);
    registry.set(registry.gauge("sweep.workers"),
                 static_cast<double>(workers));
    registry.set(registry.gauge("sweep.numa_nodes"),
                 static_cast<double>(numaNodes));
    registry.set(registry.gauge("sweep.workers_pinned"),
                 static_cast<double>(pinned));
    const StatRegistry::Handle busy =
        registry.distribution("sweep.worker.busy_s");
    for (double s : workerBusySeconds)
        registry.observe(busy, s);
    const StatRegistry::Handle items =
        registry.distribution("sweep.worker.items");
    for (std::int64_t n : workerItems)
        registry.observe(items, static_cast<double>(n));
}

SweepRunner::SweepRunner(int jobs)
    : jobs_(resolveJobs(jobs))
{
    opts_.jobs = jobs_;
}

SweepRunner::SweepRunner(const SweepOptions &opts)
    : opts_(opts), jobs_(resolveJobs(opts.jobs))
{
    opts_.jobs = jobs_;
}

int
SweepRunner::resolveJobs(int requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("MOENTWINE_JOBS")) {
        const int fromEnv = parsePositiveInt(env);
        if (fromEnv <= 0)
            fatal("MOENTWINE_JOBS expects a positive integer (got '" +
                  std::string(env) + "')");
        return fromEnv;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

int
SweepRunner::jobsFromArgs(int argc, char **argv)
{
    int jobs = 0;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const char *value = nullptr;
        if (std::strcmp(arg, "--jobs") == 0) {
            if (i + 1 >= argc)
                fatal("--jobs requires a value");
            value = argv[++i];
        } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
            value = arg + 7;
        } else {
            continue;
        }
        // Every occurrence is validated; the last one wins, so
        // `bench --jobs 8 --jobs 1` runs serial while
        // `bench --jobs 8 --jobs bogus` still dies loudly.
        const int parsed = parsePositiveInt(value);
        if (parsed <= 0)
            fatal("--jobs expects a positive integer (got '" +
                  std::string(value) + "')");
        jobs = parsed;
    }
    return jobs;
}

bool
SweepRunner::affinityFromArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--affinity") == 0)
            return true;
    }
    if (const char *env = std::getenv("MOENTWINE_AFFINITY")) {
        if (std::strcmp(env, "1") == 0)
            return true;
        if (std::strcmp(env, "0") == 0)
            return false;
        fatal("MOENTWINE_AFFINITY expects '1' or '0' (got '" +
              std::string(env) + "')");
    }
    return false;
}

std::vector<SweepResult>
SweepRunner::run(const SweepGrid &grid, const CellFn &fn,
                 SweepRunStats *stats) const
{
    const std::size_t cells = grid.cells();
    std::vector<SweepResult> rows(cells);
    if (stats)
        *stats = SweepRunStats{};
    if (cells == 0)
        return rows;

    const std::size_t workers = std::min<std::size_t>(
        static_cast<std::size_t>(jobs_), cells);

    // NUMA replication degree: detection only matters when workers
    // are actually pinned (an unpinned worker has no home node); the
    // override forces the replication path on single-socket boxes.
    int nodes = 1;
    if (opts_.numaNodesOverride > 0)
        nodes = opts_.numaNodesOverride;
    else if (opts_.affinity)
        nodes = std::max(1, affinity::numaNodeCount());

    // One System per (system, TP) axis pair and NUMA node, shared by
    // every cell with those coordinates on that node. Slots build
    // under a call_once — normally satisfied by a stealable prebuild
    // item before any cell needs it, with the once-guard as backstop
    // for cells that outrun their prebuild (and as the only mechanism
    // on the serial and non-stealing paths). The config always comes
    // from SweepPoint::systemConfig(), the single source of truth for
    // the TP-override rule; replicas of a slot are built from the
    // same config and are therefore identical — which replica a cell
    // reads is unobservable in its row.
    struct SystemSlot
    {
        std::once_flag once;
        std::shared_ptr<const System> system;
    };
    const std::size_t nTp =
        grid.tpDegrees.empty() ? 1 : grid.tpDegrees.size();
    const std::size_t nSlots = grid.systems.size() * nTp;
    std::vector<SystemSlot> slots(nSlots *
                                  static_cast<std::size_t>(nodes));
    const auto systemFor = [&](const SweepPoint &p,
                               int node) -> std::shared_ptr<const System> {
        if (p.system < 0)
            return nullptr;
        const std::size_t t =
            p.tp < 0 ? 0 : static_cast<std::size_t>(p.tp);
        SystemSlot &slot =
            slots[(static_cast<std::size_t>(p.system) * nTp + t) *
                      static_cast<std::size_t>(nodes) +
                  static_cast<std::size_t>(node)];
        std::call_once(slot.once, [&] {
            slot.system =
                std::make_shared<System>(System::make(p.systemConfig()));
        });
        return slot.system;
    };

    std::atomic<bool> failed{false};
    std::exception_ptr firstError;
    std::mutex errorMutex;
    const auto recordError = [&] {
        std::lock_guard<std::mutex> lock(errorMutex);
        if (!firstError)
            firstError = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
    };

    // Rows are written at their grid index, making the output order
    // independent of completion order, stealing, and placement.
    const auto runCell = [&](std::size_t i, WorkerContext &ctx) {
        const SweepPoint point = grid.pointAt(i);
        SweepCell cell{point, systemFor(point, ctx.numaNode()), &ctx};
        rows[i] = fn(cell);
        rows[i].index = i;
    };

    std::vector<std::unique_ptr<WorkerContext>> contexts;
    contexts.reserve(std::max<std::size_t>(workers, 1));
    for (std::size_t w = 0; w < std::max<std::size_t>(workers, 1); ++w)
        contexts.push_back(std::make_unique<WorkerContext>(
            static_cast<int>(w), opts_.reuseWorkerState));

    // Per-worker scheduler tallies; each worker writes only its own
    // slot, the main thread reads after join.
    std::vector<std::int64_t> cellCount(contexts.size(), 0);
    std::vector<std::int64_t> prebuildCount(contexts.size(), 0);
    std::vector<std::int64_t> stealCount(contexts.size(), 0);
    std::vector<std::int64_t> prebuildStealCount(contexts.size(), 0);
    std::vector<double> busySeconds(contexts.size(), 0.0);
    std::vector<HwCounterValues> hwParts(contexts.size());

    const auto fillStats = [&] {
        if (!stats)
            return;
        stats->workers = static_cast<int>(contexts.size());
        stats->numaNodes = nodes;
        stats->stealing = opts_.stealing && workers > 1;
        stats->affinity = opts_.affinity;
        stats->reuse = opts_.reuseWorkerState;
        stats->workerItems.assign(contexts.size(), 0);
        stats->workerSteals.assign(contexts.size(), 0);
        stats->workerBusySeconds = busySeconds;
        for (std::size_t w = 0; w < contexts.size(); ++w) {
            stats->cells += cellCount[w];
            stats->prebuilds += prebuildCount[w];
            stats->steals += stealCount[w];
            stats->prebuildSteals += prebuildStealCount[w];
            stats->workerItems[w] = cellCount[w] + prebuildCount[w];
            stats->workerSteals[w] = stealCount[w];
            if (contexts[w]->pinnedCpu() >= 0)
                ++stats->pinned;
            stats->engineBuilds += contexts[w]->engineBuilds();
            stats->engineReuses += contexts[w]->engineReuses();
            stats->hw.cycles += hwParts[w].cycles;
            stats->hw.instructions += hwParts[w].instructions;
            stats->hw.cacheMisses += hwParts[w].cacheMisses;
            stats->hw.dtlbMisses += hwParts[w].dtlbMisses;
            stats->hw.available =
                stats->hw.available || hwParts[w].available;
        }
    };

    if (workers <= 1) {
        // Serial reference path: inline on the calling thread in grid
        // order. The calling thread is never pinned — affinity is a
        // pool-worker concern, and leaking a mask change past run()
        // would constrain the caller's whole process.
        WorkerContext &ctx = *contexts[0];
        HwCounters hw;
        if (opts_.collectHw)
            hw.start();
        const auto t0 = std::chrono::steady_clock::now();
        try {
            for (std::size_t i = 0; i < cells; ++i) {
                runCell(i, ctx);
                ++cellCount[0];
            }
        } catch (...) {
            recordError();
        }
        busySeconds[0] = secondsSince(t0);
        if (opts_.collectHw)
            hwParts[0] = hw.stop();
        fillStats();
        if (firstError)
            std::rethrow_exception(firstError);
        return rows;
    }

    // Worker placement, decided before the pool starts so a worker's
    // NUMA node is known to the preloader and never changes. A worker
    // is pinned round-robin over the CPUs the process is actually
    // allowed to run on (container cpusets shrink that set below
    // 0..N-1); its node is the pinned CPU's node, or round-robin when
    // the override forces replication without real pinning.
    std::vector<int> pinCpu(workers, -1);
    if (opts_.affinity) {
        const std::vector<int> cpus = affinity::allowedCpus();
        if (!cpus.empty()) {
            for (std::size_t w = 0; w < workers; ++w)
                pinCpu[w] = cpus[w % cpus.size()];
        }
    }
    for (std::size_t w = 0; w < workers; ++w) {
        int node = 0;
        if (opts_.numaNodesOverride > 0) {
            node = static_cast<int>(w % static_cast<std::size_t>(nodes));
        } else if (nodes > 1 && pinCpu[w] >= 0) {
            node = affinity::nodeOfCpu(pinCpu[w]);
            if (node < 0 || node >= nodes)
                node = 0;
        }
        contexts[w]->numaNode_ = node;
    }

    // Preload the deques. Worker w owns the contiguous cell block
    // [w*cells/W, (w+1)*cells/W); the system axis is outermost in the
    // grid's row-major order, so blocks keep same-platform cells
    // together and the worker's engine pool hits. Cells are pushed in
    // reverse so the owner (LIFO bottom) walks its block in ascending
    // grid order while thieves (FIFO top) eat the block's tail.
    // Prebuild items — one per (system, TP) slot, dealt round-robin —
    // are pushed last so every owner finalizes its platforms before
    // touching cells; an idle worker can steal a prebuild just like a
    // cell, which is what keeps same-platform warm-up from
    // serializing on the first worker to need it.
    std::vector<SweepWorkDeque> deques(opts_.stealing ? workers : 0);
    if (opts_.stealing) {
        for (std::size_t w = 0; w < workers; ++w) {
            const std::size_t begin = w * cells / workers;
            const std::size_t end = (w + 1) * cells / workers;
            for (std::size_t i = end; i > begin; --i)
                deques[w].push(SweepWorkItem{SweepWorkItem::Kind::Cell,
                                             i - 1});
        }
        for (std::size_t k = nSlots; k > 0; --k) {
            const std::size_t slot = k - 1;
            const std::size_t sys = slot / nTp;
            const std::size_t tp = slot % nTp;
            // Representative cell of the slot: index 0 on every other
            // axis (at() accepts 0 for unswept axes too).
            const std::size_t rep =
                grid.at(0, static_cast<int>(sys), static_cast<int>(tp),
                        0, 0, 0, 0, 0, 0, 0, 0);
            deques[slot % workers].push(
                SweepWorkItem{SweepWorkItem::Kind::Prebuild, rep});
        }
    }

    // Legacy drain (stealing disabled): a shared atomic cursor over
    // the cell range — dynamic balancing without locality.
    std::atomic<std::size_t> next{0};

    const auto workerLoop = [&](std::size_t w) {
        WorkerContext &ctx = *contexts[w];
        if (pinCpu[w] >= 0) {
            if (affinity::pinSelfToCpu(pinCpu[w]))
                ctx.pinnedCpu_ = pinCpu[w];
            else
                warn("sweep: could not pin worker " + std::to_string(w) +
                     " to cpu " + std::to_string(pinCpu[w]) +
                     "; running unpinned");
        }
        HwCounters hw;
        if (opts_.collectHw)
            hw.start();
        SweepWorkItem item;
        bool ownLive = opts_.stealing;
        for (;;) {
            if (failed.load(std::memory_order_relaxed))
                break;
            bool got = false;
            bool stolen = false;
            if (opts_.stealing) {
                if (ownLive) {
                    got = deques[w].takeBottom(item);
                    if (!got)
                        ownLive = false; // drained for good: no pushes
                }
                if (!got) {
                    // Deterministic victim order w+1, w+2, ... A full
                    // empty sweep means done: items only disappear,
                    // and a lost steal race means someone else
                    // claimed that item and will execute it.
                    for (std::size_t v = 1; v < workers && !got; ++v) {
                        if (deques[(w + v) % workers].stealTop(item)) {
                            got = true;
                            stolen = true;
                        }
                    }
                }
            } else {
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i < cells) {
                    item = SweepWorkItem{SweepWorkItem::Kind::Cell, i};
                    got = true;
                }
            }
            if (!got)
                break;
            const auto t0 = std::chrono::steady_clock::now();
            try {
                if (item.kind == SweepWorkItem::Kind::Prebuild) {
                    systemFor(grid.pointAt(item.index), ctx.numaNode());
                    ++prebuildCount[w];
                    if (stolen)
                        ++prebuildStealCount[w];
                } else {
                    runCell(item.index, ctx);
                    ++cellCount[w];
                }
                if (stolen)
                    ++stealCount[w];
            } catch (...) {
                recordError();
                break;
            }
            busySeconds[w] += secondsSince(t0);
        }
        if (opts_.collectHw)
            hwParts[w] = hw.stop();
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w)
        pool.emplace_back(workerLoop, w);
    for (std::thread &t : pool)
        t.join();
    fillStats();
    if (firstError)
        std::rethrow_exception(firstError);
    return rows;
}

} // namespace moentwine
