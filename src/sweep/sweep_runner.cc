#include "sweep/sweep_runner.hh"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <limits>
#include <mutex>
#include <string>
#include <thread>

#include "common/logging.hh"

namespace moentwine {

namespace {

/**
 * Strict base-10 parse of a positive int: the whole string must be
 * consumed (no "4abc"), and the value must fit. Returns -1 on any
 * violation so callers reject loudly instead of running a sweep with
 * an atoi-truncated job count.
 */
int
parsePositiveInt(const char *text)
{
    if (text == nullptr || *text == '\0')
        return -1;
    char *end = nullptr;
    errno = 0;
    const long value = std::strtol(text, &end, 10);
    if (errno == ERANGE || end == text || *end != '\0')
        return -1;
    if (value <= 0 ||
        value > static_cast<long>(std::numeric_limits<int>::max()))
        return -1;
    return static_cast<int>(value);
}

} // namespace

SweepRunner::SweepRunner(int jobs)
    : jobs_(resolveJobs(jobs))
{
}

int
SweepRunner::resolveJobs(int requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("MOENTWINE_JOBS")) {
        const int fromEnv = parsePositiveInt(env);
        if (fromEnv <= 0)
            fatal("MOENTWINE_JOBS expects a positive integer (got '" +
                  std::string(env) + "')");
        return fromEnv;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

int
SweepRunner::jobsFromArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const char *value = nullptr;
        if (std::strcmp(arg, "--jobs") == 0) {
            if (i + 1 >= argc)
                fatal("--jobs requires a value");
            value = argv[i + 1];
        } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
            value = arg + 7;
        } else {
            continue;
        }
        const int jobs = parsePositiveInt(value);
        if (jobs <= 0)
            fatal("--jobs expects a positive integer (got '" +
                  std::string(value) + "')");
        return jobs;
    }
    return 0;
}

std::vector<SweepResult>
SweepRunner::run(const SweepGrid &grid, const CellFn &fn) const
{
    const std::size_t cells = grid.cells();
    std::vector<SweepResult> rows(cells);
    if (cells == 0)
        return rows;

    // One System per (system, TP) axis pair, shared by every cell with
    // those coordinates. Slots build lazily under a call_once so the
    // expensive platform finalization (all-pairs routes, dispatch
    // memos) runs on whichever worker needs it first — in parallel
    // across distinct platforms — instead of serially before the pool
    // starts. The config always comes from SweepPoint::systemConfig(),
    // the single source of truth for the TP-override rule.
    struct SystemSlot
    {
        std::once_flag once;
        std::shared_ptr<const System> system;
    };
    const std::size_t nTp =
        grid.tpDegrees.empty() ? 1 : grid.tpDegrees.size();
    std::vector<SystemSlot> slots(grid.systems.size() * nTp);
    const auto systemFor =
        [&](const SweepPoint &p) -> std::shared_ptr<const System> {
        if (p.system < 0)
            return nullptr;
        const std::size_t t = p.tp < 0 ? 0 : static_cast<std::size_t>(p.tp);
        SystemSlot &slot =
            slots[static_cast<std::size_t>(p.system) * nTp + t];
        std::call_once(slot.once, [&] {
            slot.system =
                std::make_shared<System>(System::make(p.systemConfig()));
        });
        return slot.system;
    };

    // Work queue: an atomic cursor over the linear cell range. Rows are
    // written at their grid index, making the output order independent
    // of completion order.
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr firstError;
    std::mutex errorMutex;

    const auto work = [&] {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= cells || failed.load(std::memory_order_relaxed))
                return;
            try {
                const SweepPoint point = grid.pointAt(i);
                SweepCell cell{point, systemFor(point)};
                rows[i] = fn(cell);
                rows[i].index = i;
            } catch (...) {
                std::lock_guard<std::mutex> lock(errorMutex);
                if (!firstError)
                    firstError = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
                return;
            }
        }
    };

    const std::size_t workers = std::min<std::size_t>(
        static_cast<std::size_t>(jobs_), cells);
    if (workers <= 1) {
        // Serial reference path: inline on the calling thread.
        work();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (std::size_t w = 0; w < workers; ++w)
            pool.emplace_back(work);
        for (std::thread &t : pool)
            t.join();
    }
    if (firstError)
        std::rethrow_exception(firstError);
    return rows;
}

} // namespace moentwine
