#include "sweep/sweep_grid.hh"

#include "common/logging.hh"

namespace moentwine {

namespace {

/** Effective length of an axis: empty axes are one wildcard cell. */
std::size_t
axisLen(std::size_t size)
{
    return size == 0 ? 1 : size;
}

/** Axis index for a cell: -1 marks an unswept axis. */
int
axisIndex(std::size_t size, std::size_t i)
{
    return size == 0 ? -1 : static_cast<int>(i);
}

} // namespace

std::size_t
SweepGrid::cells() const
{
    return axisLen(models.size()) * axisLen(systems.size()) *
        axisLen(tpDegrees.size()) * axisLen(balancers.size()) *
        axisLen(schedules.size()) * axisLen(gatings.size()) *
        axisLen(params.size()) * axisLen(arrivals.size()) *
        axisLen(faultScenarios.size()) * axisLen(replicaCounts.size()) *
        axisLen(routers.size());
}

SweepPoint
SweepGrid::pointAt(std::size_t index) const
{
    MOE_ASSERT(index < cells(), "sweep point index out of range");
    SweepPoint p;
    p.grid = this;
    p.index = index;

    // Row-major: models outermost, router policies innermost.
    std::size_t rest = index;
    const std::size_t nRouter = axisLen(routers.size());
    const std::size_t nReplicas = axisLen(replicaCounts.size());
    const std::size_t nFault = axisLen(faultScenarios.size());
    const std::size_t nArrival = axisLen(arrivals.size());
    const std::size_t nParam = axisLen(params.size());
    const std::size_t nGating = axisLen(gatings.size());
    const std::size_t nSchedule = axisLen(schedules.size());
    const std::size_t nBalancer = axisLen(balancers.size());
    const std::size_t nTp = axisLen(tpDegrees.size());
    const std::size_t nSystem = axisLen(systems.size());

    p.router = axisIndex(routers.size(), rest % nRouter);
    rest /= nRouter;
    p.replicas = axisIndex(replicaCounts.size(), rest % nReplicas);
    rest /= nReplicas;
    p.fault = axisIndex(faultScenarios.size(), rest % nFault);
    rest /= nFault;
    p.arrival = axisIndex(arrivals.size(), rest % nArrival);
    rest /= nArrival;
    p.param = axisIndex(params.size(), rest % nParam);
    rest /= nParam;
    p.gating = axisIndex(gatings.size(), rest % nGating);
    rest /= nGating;
    p.schedule = axisIndex(schedules.size(), rest % nSchedule);
    rest /= nSchedule;
    p.balancer = axisIndex(balancers.size(), rest % nBalancer);
    rest /= nBalancer;
    p.tp = axisIndex(tpDegrees.size(), rest % nTp);
    rest /= nTp;
    p.system = axisIndex(systems.size(), rest % nSystem);
    rest /= nSystem;
    p.model = axisIndex(models.size(), rest);
    return p;
}

std::size_t
SweepGrid::at(int model, int system, int tp, int balancer, int schedule,
              int gating, int param, int arrival, int fault, int replicas,
              int router) const
{
    const auto clamp = [](std::size_t size, int i) -> std::size_t {
        if (size == 0) {
            MOE_ASSERT(i <= 0, "axis index into an unswept axis");
            return 0;
        }
        MOE_ASSERT(i >= 0 && static_cast<std::size_t>(i) < size,
                   "axis index out of range");
        return static_cast<std::size_t>(i);
    };
    std::size_t index = clamp(models.size(), model);
    index = index * axisLen(systems.size()) + clamp(systems.size(), system);
    index = index * axisLen(tpDegrees.size()) +
        clamp(tpDegrees.size(), tp);
    index = index * axisLen(balancers.size()) +
        clamp(balancers.size(), balancer);
    index = index * axisLen(schedules.size()) +
        clamp(schedules.size(), schedule);
    index = index * axisLen(gatings.size()) + clamp(gatings.size(), gating);
    index = index * axisLen(params.size()) + clamp(params.size(), param);
    index = index * axisLen(arrivals.size()) +
        clamp(arrivals.size(), arrival);
    index = index * axisLen(faultScenarios.size()) +
        clamp(faultScenarios.size(), fault);
    index = index * axisLen(replicaCounts.size()) +
        clamp(replicaCounts.size(), replicas);
    index = index * axisLen(routers.size()) + clamp(routers.size(), router);
    return index;
}

const MoEModelConfig &
SweepPoint::modelConfig() const
{
    MOE_ASSERT(model >= 0, "grid does not sweep models");
    return grid->models[static_cast<std::size_t>(model)];
}

SystemConfig
SweepPoint::systemConfig() const
{
    MOE_ASSERT(system >= 0, "grid does not sweep systems");
    SystemConfig sc = grid->systems[static_cast<std::size_t>(system)];
    if (tp >= 0)
        sc.tp = grid->tpDegrees[static_cast<std::size_t>(tp)];
    return sc;
}

int
SweepPoint::tpDegree() const
{
    if (tp >= 0)
        return grid->tpDegrees[static_cast<std::size_t>(tp)];
    MOE_ASSERT(system >= 0, "grid sweeps neither TP nor systems");
    return grid->systems[static_cast<std::size_t>(system)].tp;
}

BalancerKind
SweepPoint::balancerKind() const
{
    return balancer >= 0
        ? grid->balancers[static_cast<std::size_t>(balancer)]
        : BalancerKind::None;
}

SchedulingMode
SweepPoint::schedulingMode() const
{
    return schedule >= 0
        ? grid->schedules[static_cast<std::size_t>(schedule)]
        : SchedulingMode::DecodeOnly;
}

GatingMode
SweepPoint::gatingMode() const
{
    return gating >= 0 ? grid->gatings[static_cast<std::size_t>(gating)]
                       : GatingMode::Balanced;
}

double
SweepPoint::parameter() const
{
    MOE_ASSERT(param >= 0, "grid does not sweep params");
    return grid->params[static_cast<std::size_t>(param)];
}

ArrivalKind
SweepPoint::arrivalKind() const
{
    return arrival >= 0
        ? grid->arrivals[static_cast<std::size_t>(arrival)]
        : ArrivalKind::Poisson;
}

FaultScenarioKind
SweepPoint::faultScenario() const
{
    return fault >= 0
        ? grid->faultScenarios[static_cast<std::size_t>(fault)]
        : FaultScenarioKind::None;
}

int
SweepPoint::replicaCount() const
{
    return replicas >= 0
        ? grid->replicaCounts[static_cast<std::size_t>(replicas)]
        : 1;
}

RouterPolicy
SweepPoint::routerPolicy() const
{
    return router >= 0 ? grid->routers[static_cast<std::size_t>(router)]
                       : RouterPolicy::RoundRobin;
}

uint64_t
SweepPoint::seed(uint64_t base) const
{
    // FNV-1a over the axis coordinates: stable across runs, platforms,
    // and thread schedules. The linear index is deliberately excluded
    // so a cell keeps its seed when an unrelated axis grows.
    uint64_t h = 0xCBF29CE484222325ULL ^ base;
    const auto mix = [&h](uint64_t v) {
        h ^= v + 1; // +1 so index 0 and "unswept" (-1 → 0) differ
        h *= 0x100000001B3ULL;
    };
    mix(static_cast<uint64_t>(static_cast<int64_t>(model)));
    mix(static_cast<uint64_t>(static_cast<int64_t>(system)));
    mix(static_cast<uint64_t>(static_cast<int64_t>(tp)));
    mix(static_cast<uint64_t>(static_cast<int64_t>(balancer)));
    mix(static_cast<uint64_t>(static_cast<int64_t>(schedule)));
    mix(static_cast<uint64_t>(static_cast<int64_t>(gating)));
    mix(static_cast<uint64_t>(static_cast<int64_t>(param)));
    mix(static_cast<uint64_t>(static_cast<int64_t>(arrival)));
    // The fault, replica, and router axes joined the grid after seeds
    // were baked into goldens: mix each only when actually swept so
    // every pre-existing grid keeps its exact seed stream.
    if (fault >= 0)
        mix(static_cast<uint64_t>(static_cast<int64_t>(fault)));
    if (replicas >= 0)
        mix(static_cast<uint64_t>(static_cast<int64_t>(replicas)));
    if (router >= 0)
        mix(static_cast<uint64_t>(static_cast<int64_t>(router)));
    return h;
}

double
SweepResult::metric(const std::string &key) const
{
    for (const auto &[k, v] : metrics)
        if (k == key)
            return v;
    panic("sweep row '" + label + "' has no metric '" + key + "'");
}

} // namespace moentwine
