/**
 * @file
 * Continuous-batching scheduler: admits online requests into a bounded
 * KV-cache budget and packs every iteration from a prefill chunk plus
 * the in-flight decode batch (the vLLM/Orca iteration shape).
 *
 * Admission is strict FIFO with head-of-line blocking: a request is
 * admitted when the queue head fits the remaining KV budget and the
 * running-batch bound; nothing overtakes it. The KV budget is reserved
 * up front (prompt + output tokens) so the cache can never overflow
 * mid-decode. Prefill is chunked: each iteration spends at most
 * prefillChunkTokens on the oldest unfinished prefills, while every
 * fully prefilled request contributes one decode token.
 *
 * All token quantities are per TP group (see serve/request.hh).
 */

#ifndef MOENTWINE_SERVE_SCHEDULER_HH
#define MOENTWINE_SERVE_SCHEDULER_HH

#include <deque>
#include <vector>

#include "engine/engine.hh"
#include "serve/request.hh"

namespace moentwine {

/** Continuous-batching scheduler configuration. */
struct ServeSchedulerConfig
{
    /** KV-cache budget (tokens) of one TP group's devices. */
    int kvBudgetTokens = 1 << 16;
    /** Maximum concurrently running (admitted) requests. */
    int maxRunningRequests = 64;
    /** Prefill tokens an iteration may spend (chunked prefill). */
    int prefillChunkTokens = 512;
};

/**
 * Online request scheduler over a fixed request stream.
 */
class ContinuousBatchScheduler
{
  public:
    /**
     * @param cfg      Scheduler configuration.
     * @param requests Arrival-ordered request stream; copied. Every
     *                 request must individually fit the KV budget.
     */
    ContinuousBatchScheduler(const ServeSchedulerConfig &cfg,
                             std::vector<ServeRequest> requests);

    /** True when every request of the stream has finished. */
    bool done() const;

    /** Arrival time of the next not-yet-arrived request; infinity when
     *  the stream is exhausted. */
    double nextArrival() const;

    /**
     * Move requests with arrivalTime ≤ @p now into the wait queue and
     * admit from the queue head while the KV budget and running bound
     * allow (FIFO, head-of-line blocking). Records admitTime = @p now
     * for every admitted request.
     */
    void admit(double now);

    /**
     * Plan one iteration over the running batch: a prefill chunk (the
     * oldest unfinished prefills, up to prefillChunkTokens) plus one
     * decode token per fully prefilled request. Returns a demand with
     * zero tokens when the running batch is empty. The planned demand
     * stays pending until complete() is called.
     */
    IterationDemand plan();

    /**
     * Commit the pending planned iteration as finished at time @p end:
     * advances prefill progress, emits first/decode tokens, finishes
     * requests and releases their KV reservation.
     */
    void complete(double end);

    /** Requests waiting for admission. */
    int queueDepth() const { return static_cast<int>(queue_.size()); }

    /** Requests admitted and not yet finished. */
    int runningCount() const { return static_cast<int>(running_.size()); }

    /** KV tokens currently reserved by the running batch. */
    int kvReserved() const { return kvReserved_; }

    /** Completed requests so far. */
    int finishedCount() const { return finished_; }

    /**
     * Planned tokens per scenario of the last plan() call (prefill
     * chunk plus decode tokens) — the live mix that drives the engine's
     * gating mixture under drift coupling. Indexed like allScenarios().
     */
    const std::vector<double> &scenarioTokens() const
    {
        return scenarioTokens_;
    }

    /**
     * Completion records, one per request id. Only entries of finished
     * requests are fully populated; ServeSimulator reads them after
     * done().
     */
    const std::vector<RequestMetrics> &metrics() const { return metrics_; }

    /** Admission order (request ids), for FIFO auditing in tests. */
    const std::vector<int> &admissionOrder() const
    {
        return admissionOrder_;
    }

    /** The configuration in use. */
    const ServeSchedulerConfig &config() const { return cfg_; }

  private:
    /** In-flight state of one admitted request. */
    struct Running
    {
        int request;        ///< index into requests_
        int prefillDone;    ///< prompt tokens already prefilled
        int prefillPlanned; ///< prefill tokens in the pending plan
        int decoded;        ///< output tokens emitted so far
        bool decodePlanned; ///< pending plan holds one decode token
    };

    ServeSchedulerConfig cfg_;
    std::vector<ServeRequest> requests_;
    std::vector<RequestMetrics> metrics_;
    std::size_t nextArrival_ = 0; ///< first not-yet-arrived request
    std::deque<int> queue_;       ///< arrived, waiting for admission
    std::vector<Running> running_; ///< admission-ordered running batch
    std::vector<int> admissionOrder_;
    std::vector<double> scenarioTokens_;
    int kvReserved_ = 0;
    int finished_ = 0;
    bool planPending_ = false;
};

} // namespace moentwine

#endif // MOENTWINE_SERVE_SCHEDULER_HH
