/**
 * @file
 * Continuous-batching scheduler: admits online requests into a bounded
 * KV-cache budget and packs every iteration from a prefill chunk plus
 * the in-flight decode batch (the vLLM/Orca iteration shape).
 *
 * Admission is strict FIFO with head-of-line blocking: a request is
 * admitted when the queue head fits the remaining KV budget and the
 * running-batch bound; nothing overtakes it. The KV budget is reserved
 * up front (prompt + output tokens) so the cache can never overflow
 * mid-decode. Prefill is chunked: each iteration spends at most
 * prefillChunkTokens on the oldest unfinished prefills, while every
 * fully prefilled request contributes one decode token.
 *
 * The fault layer drives three extra transitions: shedHead() drops the
 * queue head under admission control, evictToRetry() bounces a running
 * request back to the queue front after a backoff (its progress is
 * lost — KV state died with the device), and failRunning() terminates
 * one that exhausted its retry budget. setKvBudgetLimit() lowers the
 * effective admission budget while capacity is degraded; reservations
 * already made are never revoked by the limit alone.
 *
 * All token quantities are per TP group (see serve/request.hh).
 */

#ifndef MOENTWINE_SERVE_SCHEDULER_HH
#define MOENTWINE_SERVE_SCHEDULER_HH

#include <deque>
#include <vector>

#include "engine/engine.hh"
#include "serve/request.hh"

namespace moentwine {

/** Continuous-batching scheduler configuration. */
struct ServeSchedulerConfig
{
    /** KV-cache budget (tokens) of one TP group's devices. */
    int kvBudgetTokens = 1 << 16;
    /** Maximum concurrently running (admitted) requests. */
    int maxRunningRequests = 64;
    /** Prefill tokens an iteration may spend (chunked prefill). */
    int prefillChunkTokens = 512;
};

/**
 * Online request scheduler over a fixed request stream.
 */
class ContinuousBatchScheduler
{
  public:
    /**
     * An initially empty stream: requests are handed over one at a
     * time through push() as an upstream router dispatches them (the
     * fleet front-end of src/cluster/). Pushing every request before
     * the first admit() is exactly the vector constructor.
     * @param cfg Scheduler configuration.
     */
    explicit ContinuousBatchScheduler(const ServeSchedulerConfig &cfg);

    /**
     * @param cfg      Scheduler configuration.
     * @param requests Arrival-ordered request stream; copied. Every
     *                 request must individually fit the KV budget.
     */
    ContinuousBatchScheduler(const ServeSchedulerConfig &cfg,
                             std::vector<ServeRequest> requests);

    /**
     * Append the next request of the stream (arrival-ordered: its
     * arrivalTime must not precede the last pushed request's). The
     * request must individually fit the full KV budget. Admission
     * only ever considers pushed requests, so a request pushed before
     * the admit() boundary covering its arrival time behaves exactly
     * as if it had been present from construction — the property the
     * fleet dispatch path relies on.
     */
    void push(const ServeRequest &r);

    /** Requests handed to the scheduler so far (pushed or given at
     *  construction). */
    int streamSize() const { return static_cast<int>(requests_.size()); }

    /** True when every request of the stream has finished. */
    bool done() const;

    /** Arrival time of the next not-yet-arrived request; infinity when
     *  the stream is exhausted. */
    double nextArrival() const;

    /**
     * Move requests with arrivalTime ≤ @p now into the wait queue and
     * admit from the queue head while the KV budget and running bound
     * allow (FIFO, head-of-line blocking). Records admitTime = @p now
     * for every admitted request.
     */
    void admit(double now);

    /**
     * Plan one iteration over the running batch: a prefill chunk (the
     * oldest unfinished prefills, up to prefillChunkTokens) plus one
     * decode token per fully prefilled request. Returns a demand with
     * zero tokens when the running batch is empty. The planned demand
     * stays pending until complete() is called.
     */
    IterationDemand plan();

    /**
     * Commit the pending planned iteration as finished at time @p end:
     * advances prefill progress, emits first/decode tokens, finishes
     * requests and releases their KV reservation.
     */
    void complete(double end);

    /** Requests waiting for admission. */
    int queueDepth() const { return static_cast<int>(queue_.size()); }

    /** Completed iterations (complete() calls) so far. */
    int iterationIndex() const { return iteration_; }

    /** Fault-evicted requests still waiting out their backoff. */
    int retryPending() const
    {
        return static_cast<int>(retryQueue_.size());
    }

    /**
     * Advance the iteration counter across an idle (no-plan) iteration
     * so retry backoffs — measured in iterations — still elapse while
     * the platform waits for its only requests to become re-admissible.
     */
    void tickIdle()
    {
        ++iteration_;
        if (stats_ != nullptr)
            stats_->add(statIdle_);
    }

    /**
     * Attach a stat registry (src/obs/): transition counters publish
     * under "serve.sched.". Must be called before the first admit();
     * null detaches. Publication never changes scheduling decisions.
     */
    void attachStats(StatRegistry *stats);

    /**
     * Lower (or restore) the effective KV admission budget. Admission
     * stops while kvReserved() exceeds the limit; running requests keep
     * their reservations. Clamped to [1, cfg.kvBudgetTokens].
     */
    void setKvBudgetLimit(int tokens);

    /** Effective KV admission budget (cfg budget unless lowered). */
    int kvBudgetLimit() const { return kvLimit_; }

    /** Request index at the head of the wait queue; -1 when empty. */
    int queueHead() const
    {
        return queue_.empty() ? -1 : queue_.front();
    }

    /** The request with the given stream index. */
    const ServeRequest &request(int idx) const;

    /** Stream indices of the running batch, admission-ordered. */
    std::vector<int> runningRequests() const;

    /**
     * Drop the queue head (admission control under overload): its
     * outcome becomes Shed with finishTime = @p now, and it counts as
     * finished. Panics on an empty queue.
     */
    void shedHead(double now);

    /**
     * Evict a running request after a fault: its KV reservation is
     * released, all prefill/decode progress is discarded (the KV state
     * lived on the lost device), its retry count increments, and it
     * re-enters the wait queue *front* — ahead of never-admitted
     * arrivals — once iterationIndex() reaches @p readyIteration.
     * Panics when the request is not running or a plan is pending.
     */
    void evictToRetry(int requestIdx, int readyIteration);

    /**
     * Terminate a running request that exhausted its retry budget:
     * reservation released, outcome = Failed, finishTime = @p now.
     * Panics when the request is not running or a plan is pending.
     */
    void failRunning(int requestIdx, double now);

    // Pressure signals: the router-visible load of this replica (see
    // src/cluster/router.hh). queueDepth(), runningCount(), and
    // kvReservedFraction() are pure reads of the same counters the
    // serving loop publishes into its StatRegistry, so a policy
    // decision and the recorded stats can never disagree.

    /** Requests admitted and not yet finished. */
    int runningCount() const { return static_cast<int>(running_.size()); }

    /** KV tokens currently reserved by the running batch. */
    int kvReserved() const { return kvReserved_; }

    /** Reserved fraction of the full configured KV budget, in [0, 1]. */
    double kvReservedFraction() const
    {
        return static_cast<double>(kvReserved_) /
            static_cast<double>(cfg_.kvBudgetTokens);
    }

    /** Completed requests so far. */
    int finishedCount() const { return finished_; }

    /**
     * Planned tokens per scenario of the last plan() call (prefill
     * chunk plus decode tokens) — the live mix that drives the engine's
     * gating mixture under drift coupling. Indexed like allScenarios().
     */
    const std::vector<double> &scenarioTokens() const
    {
        return scenarioTokens_;
    }

    /**
     * Completion records, one per request id. Only entries of finished
     * requests are fully populated; ServeSimulator reads them after
     * done().
     */
    const std::vector<RequestMetrics> &metrics() const { return metrics_; }

    /** Admission order (request ids), for FIFO auditing in tests. */
    const std::vector<int> &admissionOrder() const
    {
        return admissionOrder_;
    }

    /** The configuration in use. */
    const ServeSchedulerConfig &config() const { return cfg_; }

  private:
    /** In-flight state of one admitted request. */
    struct Running
    {
        int request;        ///< index into requests_
        int prefillDone;    ///< prompt tokens already prefilled
        int prefillPlanned; ///< prefill tokens in the pending plan
        int decoded;        ///< output tokens emitted so far
        bool decodePlanned; ///< pending plan holds one decode token
    };

    /** A fault-evicted request waiting out its retry backoff. */
    struct Retry
    {
        int request;        ///< index into requests_
        int readyIteration; ///< first iterationIndex() it may re-queue
    };

    /** Drop requests_[requestIdx] from running_ and release its KV. */
    void removeRunning(int requestIdx);

    ServeSchedulerConfig cfg_;
    std::vector<ServeRequest> requests_;
    std::vector<RequestMetrics> metrics_;
    std::size_t nextArrival_ = 0; ///< first not-yet-arrived request
    std::deque<int> queue_;       ///< arrived, waiting for admission
    std::vector<Running> running_; ///< admission-ordered running batch
    std::vector<Retry> retryQueue_; ///< eviction-ordered, backoff-gated
    std::vector<int> admissionOrder_;
    std::vector<double> scenarioTokens_;
    int kvReserved_ = 0;
    int kvLimit_ = 0; ///< effective admission budget (set in ctor)
    int finished_ = 0;
    int iteration_ = 0; ///< complete() calls so far
    bool planPending_ = false;

    // Observability (null = no-op path): handles pre-resolved at
    // attach so transitions publish without name lookups.
    StatRegistry *stats_ = nullptr;
    StatRegistry::Handle statAdmitted_;
    StatRegistry::Handle statCompleted_;
    StatRegistry::Handle statShed_;
    StatRegistry::Handle statFailed_;
    StatRegistry::Handle statEvictions_;
    StatRegistry::Handle statIdle_;
};

} // namespace moentwine

#endif // MOENTWINE_SERVE_SCHEDULER_HH
