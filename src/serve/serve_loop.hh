/**
 * @file
 * ServeLoop: the steppable per-replica serving state machine.
 *
 * This is ServeSimulator::run()'s iteration body factored into an
 * explicit begin/finish interface so an outer coordinator — the fleet
 * front-end of src/cluster/ — can interleave many replicas on one
 * shared virtual clock. ServeSimulator::run() itself is now a thin
 * driver over one ServeLoop (push the whole stream up front, then
 * begin/finish until drained), so a single-replica fleet run and a
 * bare ServeSimulator run execute the *same* code path and are
 * bitwise identical by construction (pinned by tests/cluster_test.cpp,
 * mirroring the empty-fault-plan identity of src/fault/).
 *
 * Lifecycle of one iteration:
 *  - beginIteration(): processes the boundary at now() — fault events,
 *    retry re-admission, FIFO admission, SLO-aware shedding — plans
 *    the next batch and, when the plan is non-empty, steps the engine
 *    eagerly (the iteration's duration is a pure function of its
 *    plan, so nothing that happens elsewhere in a fleet before
 *    iterationEnd() can change it). Returns false when the replica
 *    has nothing runnable (idle).
 *  - finishIteration(): commits the in-flight plan at iterationEnd(),
 *    records the trace point, and advances now().
 *  - advanceIdle(t): moves an idle replica's boundary clock forward
 *    (to the next arrival in a bare run; to the wake-up time of a
 *    dispatched request in a fleet run).
 *
 * Requests enter through push() in arrival order — all up front for a
 * bare run, one at a time as a router dispatches them in a fleet run.
 * Admission only ever considers requests with arrivalTime <= now(),
 * so the two feeding disciplines are indistinguishable as long as
 * every request is pushed no later than the boundary covering its
 * arrival time (the fleet event loop's dispatch-before-completion
 * ordering guarantees exactly that).
 */

#ifndef MOENTWINE_SERVE_SERVE_LOOP_HH
#define MOENTWINE_SERVE_SERVE_LOOP_HH

#include <memory>
#include <vector>

#include "serve/serve_sim.hh"

namespace moentwine {

class FaultInjector;

/**
 * Steppable serving loop of one replica.
 */
class ServeLoop
{
  public:
    /**
     * @param mapping  Mapping (and topology) to serve on; must outlive
     *                 the loop.
     * @param cfg      Serving configuration. numRequests is ignored —
     *                 the stream is whatever push() delivers.
     * @param stats    Stat registry the run publishes into (may be
     *                 null: no stats). Must outlive the loop.
     * @param trace    Trace sink (may be null: no tracing). Spans land
     *                 on pid @p tracePidBase (iteration phases, fault
     *                 instants, queue/KV counters) and
     *                 @p tracePidBase + 1 (per-request timelines).
     * @param traceLabel Process name of the phase pid ("serve" for the
     *                 bare simulator, "replicaN" in a fleet).
     * @param requestsLabel Process name of the request-timeline pid.
     */
    ServeLoop(const Mapping &mapping, const ServeConfig &cfg,
              StatRegistry *stats, TraceSink *trace,
              int tracePidBase = 0,
              const std::string &traceLabel = "serve",
              const std::string &requestsLabel = "requests");

    ~ServeLoop();

    /** Hand the next request of the stream over (arrival-ordered). */
    void push(const ServeRequest &r);

    /** Requests pushed so far. */
    int pushedRequests() const { return sched_.streamSize(); }

    /** True when every pushed request has finished. */
    bool allFinished() const
    {
        return sched_.finishedCount() == sched_.streamSize();
    }

    /** Boundary clock: start of the next iteration (or idle time). */
    double now() const { return now_; }

    /** True while an iteration is in flight (begun, not finished). */
    bool inFlight() const { return inFlight_; }

    /** End time of the in-flight iteration; panics when idle. */
    double iterationEnd() const;

    /**
     * Process the boundary at now() and try to start an iteration.
     * Burns idle retry-backoff iterations internally (the tickIdle
     * path). Returns true when an iteration is now in flight; false
     * when the replica is idle (nothing admissible and no retries
     * pending) and the caller must advance the clock.
     */
    bool beginIteration();

    /** Complete the in-flight iteration at iterationEnd(). */
    void finishIteration();

    /**
     * Advance the idle boundary clock to @p t (>= now()). Panics with
     * an iteration in flight.
     */
    void advanceIdle(double t);

    /** Arrival time of the next not-yet-arrived pushed request;
     *  infinity when none. */
    double nextArrival() const { return sched_.nextArrival(); }

    /** The scheduler — the router-visible pressure signals
     *  (queueDepth(), runningCount(), kvReservedFraction()). */
    const ContinuousBatchScheduler &scheduler() const { return sched_; }

    /** Iterations completed so far. */
    int iterations() const { return report_.iterations; }

    /** The configuration in use (after normalisation). */
    const ServeConfig &config() const { return cfg_; }

    /**
     * Build the final report: percentiles, SLO goodput, per-request
     * trace timelines, fault-event attribution windows. Zero requests
     * or zero completions (an all-shed or never-dispatched replica)
     * yield all-zero percentile fields, never a panic. Call once,
     * after the stream is drained.
     */
    ServeReport finalize();

  private:
    class ResidencyTracker;

    /** Fault boundary of the current iteration (no-op when fault-free). */
    void faultBoundary();

    const Mapping &mapping_;
    ServeConfig cfg_;
    ContinuousBatchScheduler sched_;
    InferenceEngine engine_;
    StatRegistry *stats_;
    TraceSink *trace_;
    int pidBase_;

    // Fault state: null on an empty plan, which keeps the loop on the
    // exact fault-free code path (bitwise-identical output).
    std::unique_ptr<FaultInjector> injector_;
    std::unique_ptr<ResidencyTracker> residency_;
    std::vector<double> eventTimes_; ///< virtual time each event applied
    std::size_t lostSeen_ = 0;

    double now_ = 0.0;
    bool inFlight_ = false;
    double iterStart_ = 0.0;
    double iterEnd_ = 0.0;
    IterationStats pendingStats_;
    IterationDemand pendingDemand_;
    bool finalized_ = false;

    ServeReport report_; ///< accumulates trace points and fault minima
    StatRegistry::Handle queueStat_;
    StatRegistry::Handle kvStat_;
    double layers_;
    int stages_;
};

} // namespace moentwine

#endif // MOENTWINE_SERVE_SERVE_LOOP_HH
