/**
 * @file
 * Request-level serving primitives: one online inference request and
 * the per-request latency record the serving simulator produces.
 *
 * The serving layer models the request stream of one DP replica: token
 * demands it derives are *per TP group*, mirrored across the DP groups
 * by the engine (groups are homogeneous), which keeps the coupling to
 * the per-group iteration model of the engine exact.
 */

#ifndef MOENTWINE_SERVE_REQUEST_HH
#define MOENTWINE_SERVE_REQUEST_HH

#include <cstdint>

#include "workload/scenario.hh"

namespace moentwine {

/** One online inference request. */
struct ServeRequest
{
    /** Dense id in arrival order (0-based). */
    int id = 0;
    /** Workload scenario the request belongs to. */
    ScenarioKind scenario = ScenarioKind::Chat;
    /** Prompt length (tokens to prefill). */
    int promptTokens = 0;
    /** Output length (tokens to decode; the first comes from prefill). */
    int outputTokens = 0;
    /** Arrival time on the virtual clock (seconds). */
    double arrivalTime = 0.0;

    /** KV-cache footprint the request eventually reaches (tokens). */
    int kvTokens() const { return promptTokens + outputTokens; }
};

/**
 * How a request left the system. Under a fault-free run every request
 * completes; the fault layer (src/fault/ + ServeSimulator's
 * FaultPolicy) adds load shedding and hard failures.
 */
enum class RequestOutcome
{
    Completed, ///< served to the last output token
    Shed,      ///< dropped from the wait queue (admission control)
    Failed,    ///< lost to a fault after exhausting its retry budget
};

/** Completion record of one request (times on the virtual clock). */
struct RequestMetrics
{
    int id = 0;
    ScenarioKind scenario = ScenarioKind::Chat;
    int promptTokens = 0;
    int outputTokens = 0;
    double arrivalTime = 0.0;
    /** Admission into the running batch. */
    double admitTime = 0.0;
    /** Completion of the iteration that finished the prefill (the
     *  prefill emits the first output token). */
    double firstTokenTime = 0.0;
    /** Completion of the last decode iteration. */
    double finishTime = 0.0;
    /** Terminal state (Completed unless the fault layer intervened). */
    RequestOutcome outcome = RequestOutcome::Completed;
    /** Fault-triggered evictions this request survived (restart count). */
    int retries = 0;

    /** Time to first token, queueing included. */
    double ttft() const { return firstTokenTime - arrivalTime; }

    /** Time per output token after the first. */
    double tpot() const
    {
        return outputTokens > 1
            ? (finishTime - firstTokenTime) / (outputTokens - 1)
            : 0.0;
    }

    /** End-to-end request latency. */
    double latency() const { return finishTime - arrivalTime; }
};

} // namespace moentwine

#endif // MOENTWINE_SERVE_REQUEST_HH
