#include "serve/scheduler.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"

namespace moentwine {

ContinuousBatchScheduler::ContinuousBatchScheduler(
    const ServeSchedulerConfig &cfg)
    : cfg_(cfg)
{
    MOE_ASSERT(cfg.kvBudgetTokens > 0, "KV budget must be positive");
    MOE_ASSERT(cfg.maxRunningRequests > 0,
               "running-request bound must be positive");
    MOE_ASSERT(cfg.prefillChunkTokens > 0,
               "prefill chunk must be positive");
    scenarioTokens_.assign(allScenarios().size(), 0.0);
    kvLimit_ = cfg_.kvBudgetTokens;
}

ContinuousBatchScheduler::ContinuousBatchScheduler(
    const ServeSchedulerConfig &cfg, std::vector<ServeRequest> requests)
    : ContinuousBatchScheduler(cfg)
{
    for (const ServeRequest &r : requests)
        push(r);
}

void
ContinuousBatchScheduler::push(const ServeRequest &r)
{
    MOE_ASSERT(r.promptTokens > 0 && r.outputTokens > 0,
               "request with empty prompt or output");
    MOE_ASSERT(r.kvTokens() <= cfg_.kvBudgetTokens,
               "request exceeds the whole KV budget");
    MOE_ASSERT(requests_.empty() ||
                   requests_.back().arrivalTime <= r.arrivalTime,
               "requests must be arrival-sorted");
    requests_.push_back(r);
    RequestMetrics m;
    m.id = r.id;
    m.scenario = r.scenario;
    m.promptTokens = r.promptTokens;
    m.outputTokens = r.outputTokens;
    m.arrivalTime = r.arrivalTime;
    metrics_.push_back(m);
}

void
ContinuousBatchScheduler::attachStats(StatRegistry *stats)
{
    MOE_ASSERT(iteration_ == 0 && admissionOrder_.empty(),
               "attachStats after scheduling started");
    stats_ = stats;
    if (stats_ == nullptr)
        return;
    statAdmitted_ = stats_->counter("serve.sched.admitted");
    statCompleted_ = stats_->counter("serve.sched.completed");
    statShed_ = stats_->counter("serve.sched.shed");
    statFailed_ = stats_->counter("serve.sched.failed");
    statEvictions_ = stats_->counter("serve.sched.evictions");
    statIdle_ = stats_->counter("serve.sched.idle_iterations");
}

bool
ContinuousBatchScheduler::done() const
{
    return finished_ == static_cast<int>(requests_.size());
}

double
ContinuousBatchScheduler::nextArrival() const
{
    return nextArrival_ < requests_.size()
        ? requests_[nextArrival_].arrivalTime
        : std::numeric_limits<double>::infinity();
}

void
ContinuousBatchScheduler::admit(double now)
{
    MOE_ASSERT(!planPending_, "admit() with a plan pending");
    while (nextArrival_ < requests_.size() &&
           requests_[nextArrival_].arrivalTime <= now) {
        queue_.push_back(static_cast<int>(nextArrival_));
        ++nextArrival_;
    }
    // Retries whose backoff elapsed re-enter at the queue *front*, in
    // eviction order, so fault victims do not also lose their place.
    if (!retryQueue_.empty()) {
        std::size_t w = 0;
        std::size_t inserted = 0;
        for (std::size_t i = 0; i < retryQueue_.size(); ++i) {
            const Retry entry = retryQueue_[i];
            if (entry.readyIteration <= iteration_) {
                queue_.insert(queue_.begin() +
                                  static_cast<std::ptrdiff_t>(inserted++),
                              entry.request);
            } else {
                retryQueue_[w++] = entry;
            }
        }
        retryQueue_.resize(w);
    }
    // FIFO with head-of-line blocking: stop at the first request that
    // does not fit, so admission order equals arrival order.
    while (!queue_.empty() &&
           static_cast<int>(running_.size()) < cfg_.maxRunningRequests) {
        const int idx = queue_.front();
        const ServeRequest &r =
            requests_[static_cast<std::size_t>(idx)];
        if (kvReserved_ + r.kvTokens() > kvLimit_)
            break;
        queue_.pop_front();
        kvReserved_ += r.kvTokens();
        running_.push_back(Running{idx, 0, 0, 0, false});
        admissionOrder_.push_back(r.id);
        metrics_[static_cast<std::size_t>(idx)].admitTime = now;
        if (stats_ != nullptr)
            stats_->add(statAdmitted_);
    }
}

void
ContinuousBatchScheduler::setKvBudgetLimit(int tokens)
{
    kvLimit_ = std::min(std::max(tokens, 1), cfg_.kvBudgetTokens);
}

const ServeRequest &
ContinuousBatchScheduler::request(int idx) const
{
    MOE_ASSERT(idx >= 0 &&
                   idx < static_cast<int>(requests_.size()),
               "request(): bad stream index");
    return requests_[static_cast<std::size_t>(idx)];
}

std::vector<int>
ContinuousBatchScheduler::runningRequests() const
{
    std::vector<int> indices;
    indices.reserve(running_.size());
    for (const Running &run : running_)
        indices.push_back(run.request);
    return indices;
}

void
ContinuousBatchScheduler::shedHead(double now)
{
    MOE_ASSERT(!planPending_, "shedHead() with a plan pending");
    MOE_ASSERT(!queue_.empty(), "shedHead() on an empty queue");
    const int idx = queue_.front();
    queue_.pop_front();
    RequestMetrics &m = metrics_[static_cast<std::size_t>(idx)];
    m.outcome = RequestOutcome::Shed;
    m.finishTime = now;
    ++finished_;
    if (stats_ != nullptr)
        stats_->add(statShed_);
}

void
ContinuousBatchScheduler::removeRunning(int requestIdx)
{
    const auto it = std::find_if(
        running_.begin(), running_.end(),
        [requestIdx](const Running &run) {
            return run.request == requestIdx;
        });
    MOE_ASSERT(it != running_.end(), "request is not running");
    kvReserved_ -=
        requests_[static_cast<std::size_t>(requestIdx)].kvTokens();
    running_.erase(it);
}

void
ContinuousBatchScheduler::evictToRetry(int requestIdx,
                                       int readyIteration)
{
    MOE_ASSERT(!planPending_, "evictToRetry() with a plan pending");
    removeRunning(requestIdx);
    RequestMetrics &m = metrics_[static_cast<std::size_t>(requestIdx)];
    // The restart recomputes everything: the first token the retry
    // emits is the one that counts for TTFT.
    m.firstTokenTime = 0.0;
    ++m.retries;
    retryQueue_.push_back(Retry{requestIdx, readyIteration});
    if (stats_ != nullptr)
        stats_->add(statEvictions_);
}

void
ContinuousBatchScheduler::failRunning(int requestIdx, double now)
{
    MOE_ASSERT(!planPending_, "failRunning() with a plan pending");
    removeRunning(requestIdx);
    RequestMetrics &m = metrics_[static_cast<std::size_t>(requestIdx)];
    m.outcome = RequestOutcome::Failed;
    m.finishTime = now;
    ++finished_;
    if (stats_ != nullptr)
        stats_->add(statFailed_);
}

IterationDemand
ContinuousBatchScheduler::plan()
{
    MOE_ASSERT(!planPending_, "plan() with a plan pending");
    IterationDemand demand;
    std::fill(scenarioTokens_.begin(), scenarioTokens_.end(), 0.0);

    int prefillLeft = cfg_.prefillChunkTokens;
    double contextSum = 0.0;
    int decodeCount = 0;
    for (Running &run : running_) {
        const ServeRequest &r =
            requests_[static_cast<std::size_t>(run.request)];
        const auto scenario = static_cast<std::size_t>(r.scenario);
        if (run.prefillDone < r.promptTokens) {
            // Oldest-first chunked prefill until the budget is spent.
            const int chunk = std::min(
                prefillLeft, r.promptTokens - run.prefillDone);
            run.prefillPlanned = chunk;
            prefillLeft -= chunk;
            demand.prefillTokensPerGroup += chunk;
            scenarioTokens_[scenario] += chunk;
        } else if (run.decoded < r.outputTokens) {
            run.decodePlanned = true;
            demand.decodeTokensPerGroup += 1;
            scenarioTokens_[scenario] += 1.0;
            contextSum += r.promptTokens + run.decoded;
            ++decodeCount;
        }
    }
    if (decodeCount > 0)
        demand.contextLen = contextSum / decodeCount;
    planPending_ = demand.tokensPerGroup() > 0;
    return demand;
}

void
ContinuousBatchScheduler::complete(double end)
{
    MOE_ASSERT(planPending_, "complete() without a pending plan");
    planPending_ = false;
    ++iteration_;
    std::size_t w = 0;
    for (std::size_t i = 0; i < running_.size(); ++i) {
        Running run = running_[i];
        const ServeRequest &r =
            requests_[static_cast<std::size_t>(run.request)];
        RequestMetrics &m =
            metrics_[static_cast<std::size_t>(run.request)];
        if (run.prefillPlanned > 0) {
            run.prefillDone += run.prefillPlanned;
            run.prefillPlanned = 0;
            if (run.prefillDone == r.promptTokens) {
                // The prefill emits the first output token.
                m.firstTokenTime = end;
                run.decoded = 1;
            }
        } else if (run.decodePlanned) {
            run.decodePlanned = false;
            ++run.decoded;
        }
        if (run.prefillDone == r.promptTokens &&
            run.decoded >= r.outputTokens) {
            m.finishTime = end;
            kvReserved_ -= r.kvTokens();
            ++finished_;
            if (stats_ != nullptr)
                stats_->add(statCompleted_);
            continue; // drop from the running batch
        }
        running_[w++] = run;
    }
    running_.resize(w);
}

} // namespace moentwine
