/**
 * @file
 * Umbrella header of the request-level serving subsystem: arrival
 * processes, the continuous-batching scheduler, and the SLO-reporting
 * serving simulator layered on the InferenceEngine.
 */

#ifndef MOENTWINE_SERVE_SERVE_HH
#define MOENTWINE_SERVE_SERVE_HH

#include "serve/arrival.hh"
#include "serve/request.hh"
#include "serve/scheduler.hh"
#include "serve/serve_loop.hh"
#include "serve/serve_sim.hh"

#endif // MOENTWINE_SERVE_SERVE_HH
