/**
 * @file
 * Request-level serving simulator: an online arrival/batching layer on
 * top of the per-iteration InferenceEngine.
 *
 * ServeSimulator generates a deterministic request stream (ArrivalKind
 * processes), admits it through the continuous-batching scheduler, and
 * feeds the resulting dynamic per-iteration token demand into
 * InferenceEngine::step(IterationDemand). A virtual clock advances by
 * IterationStats::layerTime() × the model's sparse layer count per
 * iteration, turning every steady-state engine figure into a
 * latency/SLO curve: per-request TTFT and TPOT, percentile latency,
 * goodput under an SLO, and queue-depth traces.
 *
 * Drift coupling: when enabled, the scenario mix of the tokens the
 * scheduler actually planned each iteration drives the engine's gating
 * mixture (WorkloadGenerator::setScenarioMix()), so balancers are
 * evaluated against the stream they serve instead of the synthetic
 * cyclic drift.
 */

#ifndef MOENTWINE_SERVE_SERVE_SIM_HH
#define MOENTWINE_SERVE_SERVE_SIM_HH

#include <string>
#include <vector>

#include "engine/engine.hh"
#include "fault/fault_plan.hh"
#include "serve/arrival.hh"
#include "serve/request.hh"
#include "serve/scheduler.hh"

namespace moentwine {

/** Latency service-level objective. */
struct SloConfig
{
    /** Time-to-first-token bound (s). */
    double ttft = 0.5;
    /** Time-per-output-token bound (s). */
    double tpot = 0.05;

    /** True when a completed request met both bounds. */
    bool met(const RequestMetrics &m) const
    {
        return m.ttft() <= ttft && m.tpot() <= tpot;
    }
};

/**
 * How the serving layer responds to faults. Active only while a
 * non-empty FaultPlan is configured — a run with an empty plan takes
 * the exact fault-free code path (bitwise identical output).
 */
struct FaultPolicy
{
    /**
     * Shed the queue head once it has waited longer than
     * shedTtftFactor × SloConfig::ttft (SLO-aware admission control:
     * a request that already blew its TTFT bound only wastes degraded
     * capacity). Requests too large for the degraded KV budget are
     * always shed — they can never be admitted.
     */
    bool shedOnOverload = true;
    /** Waiting-time multiple of the TTFT bound that triggers a shed. */
    double shedTtftFactor = 2.0;
    /**
     * Iterations an evicted request waits before re-queueing (its KV
     * state died with the device; the restart is not free).
     */
    int retryBackoffIterations = 4;
    /** Evictions a request survives before it is Failed outright. */
    int maxRetries = 2;
    /**
     * Scale the effective KV admission budget by the live-device
     * fraction (lost devices take their cache capacity with them).
     */
    bool scaleKvBudget = true;
};

/** Serving-simulation configuration. */
struct ServeConfig
{
    /**
     * Engine configuration. The scheduling mode and fixed token
     * budgets are ignored (demand is dynamic); the workload gating
     * mode is forced to MixedScenario so the scenario-affinity
     * machinery is active.
     */
    EngineConfig engine;
    /** Arrival process of the request stream. */
    ArrivalConfig arrival;
    /** Continuous-batching scheduler parameters. */
    ServeSchedulerConfig scheduler;
    /** Latency SLO for goodput accounting. */
    SloConfig slo;
    /** Requests to generate and serve. */
    int numRequests = 200;
    /** Couple the engine's gating mixture to the live batch mix. */
    bool coupleDrift = true;
    /** Fault plan injected at iteration boundaries (empty = no faults,
     *  and the run is bitwise identical to a build without faults). */
    FaultPlan faults;
    /** Degraded-operation response (ignored while faults is empty). */
    FaultPolicy faultPolicy;
};

/** One per-iteration sample of the serving state. */
struct ServeTracePoint
{
    /** Virtual time at iteration end (s). */
    double time = 0.0;
    /** Wait-queue depth after admission. */
    int queueDepth = 0;
    /** Running batch size. */
    int running = 0;
    /** KV tokens reserved. */
    int kvReserved = 0;
    /** Decode tokens this iteration (per TP group). */
    int decodeTokens = 0;
    /** Prefill tokens this iteration (per TP group). */
    int prefillTokens = 0;
};

/**
 * Attribution window of one fault event: serving quality between the
 * event's application and the next event (or the end of the run). The
 * window with eventIndex -1 is the pre-fault baseline.
 */
struct FaultEventWindow
{
    /** Index into the fault plan; -1 for the pre-fault baseline. */
    int eventIndex = -1;
    /** Human-readable event (faults::describe), "baseline" for -1. */
    std::string event;
    /** Window bounds on the virtual clock (s). */
    double startTime = 0.0, endTime = 0.0;
    /** Requests completed / shed / failed inside the window. */
    int completed = 0, shed = 0, failed = 0;
    /** SLO-satisfying completions per second of window time. */
    double goodputRequestsPerSec = 0.0;
    /** P99 end-to-end latency of completions in the window (s). */
    double latencyP99 = 0.0;
};

/** Aggregate serving metrics of one run. */
struct ServeReport
{
    /** Completion records in request-id order (all finished). */
    std::vector<RequestMetrics> requests;
    /** Per-iteration serving-state trace. */
    std::vector<ServeTracePoint> trace;

    /** Engine iterations executed. */
    int iterations = 0;
    /** Virtual time at which the last request finished (s). */
    double makespan = 0.0;

    // Latency percentiles (s).
    double ttftP50 = 0.0, ttftP95 = 0.0, ttftP99 = 0.0;
    double tpotP50 = 0.0, tpotP95 = 0.0, tpotP99 = 0.0;
    double latencyP50 = 0.0, latencyP99 = 0.0;

    /** Output tokens per second of makespan. */
    double throughputTokensPerSec = 0.0;
    /** SLO-satisfying completions per second of makespan. */
    double goodputRequestsPerSec = 0.0;
    /** Fraction of requests meeting the SLO. */
    double sloAttainment = 0.0;

    // Queue-depth and KV-occupancy aggregates live in the simulator's
    // StatRegistry ("serve.queue.depth", "serve.kv.reserved_tokens")
    // instead of bespoke report fields — read ServeSimulator::stats().

    // Fault accounting (all zero / empty on a fault-free run).
    /** Requests shed by admission control. */
    int shedRequests = 0;
    /** Requests failed after exhausting their retry budget. */
    int failedRequests = 0;
    /** Fault-triggered evictions across all requests. */
    int retriesTotal = 0;
    /** Fault-plan events applied during the run. */
    int faultEventsApplied = 0;
    /** Lowest live-device fraction seen during the run. */
    double liveDeviceFractionMin = 1.0;
    /** Per-event serving-quality attribution (baseline first). */
    std::vector<FaultEventWindow> faultWindows;
};

/**
 * Online serving simulation over one mapped platform.
 */
class ServeSimulator
{
  public:
    /**
     * @param mapping Mapping (and topology) to serve on; must outlive
     *                the simulator.
     * @param cfg     Serving configuration.
     */
    ServeSimulator(const Mapping &mapping, const ServeConfig &cfg);

    /** Run the stream to completion and report. Call once. */
    ServeReport run();

    /** The configuration in use (after normalisation). */
    const ServeConfig &config() const { return cfg_; }

    /**
     * Stats the run published (src/obs/): "serve.queue.depth" and
     * "serve.kv.reserved_tokens" distributions over the per-iteration
     * trace, the scheduler's "serve.sched.*" transition counters, the
     * engine's "engine.*" stats, and "fault.*" when a plan is active.
     * Empty before run().
     */
    const StatRegistry &stats() const { return stats_; }

    /**
     * Attach a trace sink the run emits into (null = no tracing):
     * pid 0 "serve" carries the iteration phase spans (engine phases
     * scaled to the serve clock), the per-iteration queue/KV counter
     * tracks, and fault-event instants; pid 1 "requests" carries one
     * timeline per request (queued → prefill → decode spans). Must be
     * set before run(); the sink must outlive it.
     */
    void setTrace(TraceSink *trace) { trace_ = trace; }

  private:
    const Mapping &mapping_;
    ServeConfig cfg_;
    StatRegistry stats_;
    TraceSink *trace_ = nullptr;
};

} // namespace moentwine

#endif // MOENTWINE_SERVE_SERVE_SIM_HH
