#include "serve/arrival.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace moentwine {

std::string
arrivalKindName(ArrivalKind kind)
{
    switch (kind) {
      case ArrivalKind::Poisson:
        return "Poisson";
      case ArrivalKind::Bursty:
        return "Bursty";
      case ArrivalKind::Diurnal:
        return "Diurnal";
      case ArrivalKind::Trace:
        return "Trace";
    }
    panic("unknown arrival kind");
}

double
ArrivalProcess::promptScale(ScenarioKind kind)
{
    switch (kind) {
      case ScenarioKind::Chat:
        return 0.5;
      case ScenarioKind::Coding:
        return 2.0;
      case ScenarioKind::Math:
        return 1.0;
      case ScenarioKind::Privacy:
        return 0.75;
    }
    panic("unknown scenario");
}

double
ArrivalProcess::outputScale(ScenarioKind kind)
{
    switch (kind) {
      case ScenarioKind::Chat:
        return 1.0;
      case ScenarioKind::Coding:
        return 1.5;
      case ScenarioKind::Math:
        return 2.0;
      case ScenarioKind::Privacy:
        return 0.5;
    }
    panic("unknown scenario");
}

ArrivalProcess::ArrivalProcess(const ArrivalConfig &cfg)
    : cfg_(cfg)
{
    if (cfg.kind == ArrivalKind::Trace) {
        if (cfg.trace.empty())
            fatal("trace-replay arrival process with an empty trace");
        // Reject malformed trace entries here, at construction, not
        // deep inside generate() when the bad entry is reached.
        for (std::size_t i = 0; i < cfg.trace.size(); ++i) {
            const TraceRequest &t = cfg.trace[i];
            if (t.time < 0.0 || !std::isfinite(t.time))
                fatal("trace entry " + std::to_string(i) +
                      " has a negative or non-finite arrival time");
            if (t.promptTokens <= 0 || t.outputTokens <= 0)
                fatal("trace entry " + std::to_string(i) +
                      " has an empty prompt or output");
        }
    } else {
        if (!std::isfinite(cfg.ratePerSec) || cfg.ratePerSec <= 0.0)
            fatal("arrival rate must be positive and finite (got " +
                  std::to_string(cfg.ratePerSec) + ")");
        // Log-normal length sampling takes log(mean·scale): a
        // non-positive mean is NaN lengths, not an empty stream.
        if (cfg.promptMeanTokens <= 0.0)
            fatal("prompt mean tokens must be positive (got " +
                  std::to_string(cfg.promptMeanTokens) + ")");
        if (cfg.outputMeanTokens <= 0.0)
            fatal("output mean tokens must be positive (got " +
                  std::to_string(cfg.outputMeanTokens) + ")");
        if (cfg.promptSigma < 0.0 || cfg.outputSigma < 0.0)
            fatal("log-normal length sigma must be non-negative");
    }
    MOE_ASSERT(cfg.burstRateFactor > 0.0 && cfg.quietRateFactor > 0.0,
               "MMPP rate factors must be positive");
    MOE_ASSERT(cfg.meanBurstSec > 0.0 && cfg.meanQuietSec > 0.0,
               "MMPP dwell times must be positive");
    MOE_ASSERT(cfg.diurnalPeriodSec > 0.0,
               "diurnal period must be positive");
    MOE_ASSERT(cfg.diurnalAmplitude >= 0.0 && cfg.diurnalAmplitude < 1.0,
               "diurnal amplitude must be in [0, 1)");
    MOE_ASSERT(cfg.scenarioWeights.empty() ||
                   cfg.scenarioWeights.size() == allScenarios().size(),
               "scenario weights must cover every scenario");
    MOE_ASSERT(cfg.promptMinTokens > 0 &&
                   cfg.promptMaxTokens >= cfg.promptMinTokens,
               "bad prompt length bounds");
    MOE_ASSERT(cfg.outputMinTokens > 0 &&
                   cfg.outputMaxTokens >= cfg.outputMinTokens,
               "bad output length bounds");
    for (std::size_t i = 1; i < cfg.trace.size(); ++i) {
        MOE_ASSERT(cfg.trace[i].time >= cfg.trace[i - 1].time,
                   "trace must be time-sorted");
    }
}

std::vector<double>
ArrivalProcess::scenarioMixAt(double t) const
{
    const std::vector<double> *base =
        cfg_.scenarioWeights.empty() ? nullptr : &cfg_.scenarioWeights;
    if (cfg_.mixDriftPeriodSec > 0.0) {
        // The shared raised-cosine rotation (workload.cc uses the same
        // shape with an iteration-index phase).
        return rotatingScenarioMix(
            2.0 * M_PI * t / cfg_.mixDriftPeriodSec, base);
    }
    // Static mixture: phase 0 with the cosine term cancelled is just
    // the normalised base weights.
    const std::size_t n = allScenarios().size();
    std::vector<double> mix(n, 1.0);
    if (base)
        mix = *base;
    double total = 0.0;
    for (const double m : mix)
        total += m;
    MOE_ASSERT(total > 0.0, "degenerate scenario mixture");
    for (double &m : mix)
        m /= total;
    return mix;
}

namespace {

/** Log-normal length draw around mean·scale, clamped into [lo, hi]. */
int
sampleLength(Rng &rng, double mean, double sigma, double scale, int lo,
             int hi)
{
    // exp(normal(mu, sigma)) has mean exp(mu + sigma²/2); solve mu so
    // the draw's mean is the configured one.
    const double mu = std::log(mean * scale) - 0.5 * sigma * sigma;
    const double len = std::exp(rng.normal(mu, sigma));
    const double clamped =
        std::min(static_cast<double>(hi),
                 std::max(static_cast<double>(lo), std::round(len)));
    return static_cast<int>(clamped);
}

} // namespace

std::vector<ServeRequest>
ArrivalProcess::generate(int count) const
{
    MOE_ASSERT(count >= 0, "negative request count");
    std::vector<ServeRequest> out;
    out.reserve(static_cast<std::size_t>(count));

    if (cfg_.kind == ArrivalKind::Trace) {
        const int n = std::min<int>(
            count, static_cast<int>(cfg_.trace.size()));
        for (int i = 0; i < n; ++i) {
            const TraceRequest &t =
                cfg_.trace[static_cast<std::size_t>(i)];
            MOE_ASSERT(t.promptTokens > 0 && t.outputTokens > 0,
                       "trace request with empty prompt or output");
            ServeRequest r;
            r.id = i;
            r.scenario = t.scenario;
            r.promptTokens = t.promptTokens;
            r.outputTokens = t.outputTokens;
            r.arrivalTime = t.time;
            out.push_back(r);
        }
        return out;
    }

    Rng rng(cfg_.seed);
    double now = 0.0;
    // MMPP state: start in the quiet phase with a full dwell ahead.
    bool burst = false;
    double stateLeft = rng.exponential(1.0 / cfg_.meanQuietSec);

    const auto &scenarios = allScenarios();
    for (int i = 0; i < count; ++i) {
        switch (cfg_.kind) {
          case ArrivalKind::Poisson:
            now += rng.exponential(cfg_.ratePerSec);
            break;
          case ArrivalKind::Bursty: {
            // Sequential MMPP: draw against the current state's rate;
            // an inter-arrival crossing the state boundary advances to
            // the boundary, flips the state, and redraws (memoryless).
            for (;;) {
                const double rate = cfg_.ratePerSec *
                    (burst ? cfg_.burstRateFactor
                           : cfg_.quietRateFactor);
                const double gap = rng.exponential(rate);
                if (gap <= stateLeft) {
                    now += gap;
                    stateLeft -= gap;
                    break;
                }
                now += stateLeft;
                burst = !burst;
                stateLeft = rng.exponential(
                    1.0 / (burst ? cfg_.meanBurstSec
                                 : cfg_.meanQuietSec));
            }
            break;
          }
          case ArrivalKind::Diurnal: {
            // Thinning against the peak rate.
            const double peak =
                cfg_.ratePerSec * (1.0 + cfg_.diurnalAmplitude);
            for (;;) {
                now += rng.exponential(peak);
                const double rate = cfg_.ratePerSec *
                    (1.0 + cfg_.diurnalAmplitude *
                               std::sin(2.0 * M_PI * now /
                                        cfg_.diurnalPeriodSec));
                if (rng.uniform() * peak <= rate)
                    break;
            }
            break;
          }
          case ArrivalKind::Trace:
            panic("unreachable");
        }

        const auto mix = scenarioMixAt(now);
        const ScenarioKind kind = scenarios[rng.weightedIndex(mix)];
        ServeRequest r;
        r.id = i;
        r.scenario = kind;
        r.arrivalTime = now;
        r.promptTokens = sampleLength(
            rng, cfg_.promptMeanTokens, cfg_.promptSigma,
            promptScale(kind), cfg_.promptMinTokens,
            cfg_.promptMaxTokens);
        r.outputTokens = sampleLength(
            rng, cfg_.outputMeanTokens, cfg_.outputSigma,
            outputScale(kind), cfg_.outputMinTokens,
            cfg_.outputMaxTokens);
        out.push_back(r);
    }
    return out;
}

} // namespace moentwine
