/**
 * @file
 * Online arrival processes for the request-level serving simulator.
 *
 * Four stream shapes cover the serving transients the balancers are
 * evaluated against:
 *  - Poisson: memoryless arrivals at a constant offered rate;
 *  - Bursty: a two-state MMPP (Markov-modulated Poisson process) that
 *    alternates exponentially-dwelling burst and quiet phases;
 *  - Diurnal: a non-homogeneous Poisson process whose rate follows a
 *    raised sinusoid (the compressed day/night curve of production
 *    traffic), sampled by thinning;
 *  - Trace: deterministic replay of a recorded request list.
 *
 * Every generated request is tagged with a ScenarioKind drawn from a
 * (optionally slowly rotating) scenario mixture, plus prompt and output
 * lengths from seeded log-normal distributions with per-scenario scale
 * factors (Coding prompts run long, Chat prompts short, Math outputs
 * long — the shape the paper's Fig. 12 scenario study relies on).
 * Equal configurations generate byte-identical request streams.
 */

#ifndef MOENTWINE_SERVE_ARRIVAL_HH
#define MOENTWINE_SERVE_ARRIVAL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "serve/request.hh"

namespace moentwine {

/** Shape of the request arrival stream. */
enum class ArrivalKind
{
    Poisson, ///< constant-rate memoryless arrivals
    Bursty,  ///< two-state MMPP on/off bursts
    Diurnal, ///< sinusoidally modulated rate curve
    Trace,   ///< deterministic trace replay
};

/** Human-readable arrival-kind name. */
std::string arrivalKindName(ArrivalKind kind);

/** One recorded request of a replayable trace (time-sorted). */
struct TraceRequest
{
    double time = 0.0;
    ScenarioKind scenario = ScenarioKind::Chat;
    int promptTokens = 0;
    int outputTokens = 0;
};

/** Arrival-process configuration. */
struct ArrivalConfig
{
    ArrivalKind kind = ArrivalKind::Poisson;
    /** Mean offered rate (requests/s); the MMPP and diurnal curves
     *  modulate around this value. */
    double ratePerSec = 100.0;

    // Bursty (MMPP): rate multipliers and mean dwell times of the two
    // states. The defaults give 4x bursts roughly a quarter of the time.
    double burstRateFactor = 4.0;
    double quietRateFactor = 0.25;
    double meanBurstSec = 0.05;
    double meanQuietSec = 0.15;

    // Diurnal: rate(t) = ratePerSec * (1 + amplitude * sin(2πt/period)).
    double diurnalPeriodSec = 2.0;
    double diurnalAmplitude = 0.8;

    /** Unnormalised base weights over allScenarios(); empty = uniform. */
    std::vector<double> scenarioWeights;
    /**
     * When positive, the scenario mixture rotates once per this many
     * seconds (raised-cosine weights, the Fig. 12 drift); zero keeps
     * the base mixture fixed.
     */
    double mixDriftPeriodSec = 0.0;

    // Log-normal length distributions, clamped into [min, max]. The
    // means are scaled per scenario (see promptScale/outputScale).
    int promptMeanTokens = 256;
    double promptSigma = 0.6;
    int promptMinTokens = 16;
    int promptMaxTokens = 8192;
    int outputMeanTokens = 64;
    double outputSigma = 0.5;
    int outputMinTokens = 4;
    int outputMaxTokens = 2048;

    /** Recorded requests for ArrivalKind::Trace (must be time-sorted). */
    std::vector<TraceRequest> trace;

    /** Base seed; equal configs generate equal streams. */
    uint64_t seed = 42;
};

/**
 * Deterministic request-stream generator.
 */
class ArrivalProcess
{
  public:
    explicit ArrivalProcess(const ArrivalConfig &cfg);

    /**
     * Generate the first @p count requests of the stream, in arrival
     * order with dense ids. Trace replay returns at most the recorded
     * request count.
     */
    std::vector<ServeRequest> generate(int count) const;

    /** Scenario mixture weights (normalised) at time @p t. */
    std::vector<double> scenarioMixAt(double t) const;

    /** The configuration in use. */
    const ArrivalConfig &config() const { return cfg_; }

    /** Prompt-length scale factor of a scenario. */
    static double promptScale(ScenarioKind kind);

    /** Output-length scale factor of a scenario. */
    static double outputScale(ScenarioKind kind);

  private:
    ArrivalConfig cfg_;
};

} // namespace moentwine

#endif // MOENTWINE_SERVE_ARRIVAL_HH
