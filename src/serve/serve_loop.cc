#include "serve/serve_loop.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/stats.hh"
#include "fault/fault_injector.hh"

namespace moentwine {

/**
 * Resident-device bookkeeping for fault response: every admitted
 * request lives on one device (where its KV cache sits), assigned
 * deterministically to the live device with the fewest residents
 * (ties to the lowest id). When that device dies, the request dies
 * with it and the scheduler retries or fails it. The home table grows
 * with the pushed stream — a fleet replica does not know its final
 * request count up front.
 */
class ServeLoop::ResidencyTracker
{
  public:
    explicit ResidencyTracker(int numDevices)
        : residents_(static_cast<std::size_t>(numDevices), 0)
    {
    }

    /** Assign homes to newly admitted (home-less) running requests. */
    void place(const std::vector<int> &running,
               const FaultInjector &injector)
    {
        for (const int idx : running) {
            if (static_cast<std::size_t>(idx) >= home_.size())
                home_.resize(static_cast<std::size_t>(idx) + 1, -1);
            if (home_[static_cast<std::size_t>(idx)] >= 0)
                continue;
            int target = -1;
            for (std::size_t d = 0; d < residents_.size(); ++d) {
                if (injector.deviceLost(static_cast<DeviceId>(d)))
                    continue;
                if (target < 0 ||
                    residents_[d] <
                        residents_[static_cast<std::size_t>(target)]) {
                    target = static_cast<int>(d);
                }
            }
            MOE_ASSERT(target >= 0, "no live device to home a request");
            home_[static_cast<std::size_t>(idx)] = target;
            ++residents_[static_cast<std::size_t>(target)];
        }
    }

    /** Release a request's residency (eviction, failure, finish). */
    void release(int idx)
    {
        if (static_cast<std::size_t>(idx) >= home_.size())
            return;
        int &h = home_[static_cast<std::size_t>(idx)];
        if (h >= 0) {
            --residents_[static_cast<std::size_t>(h)];
            h = -1;
        }
    }

    /** Resident device of a request; -1 when none. */
    int homeOf(int idx) const
    {
        return static_cast<std::size_t>(idx) < home_.size()
            ? home_[static_cast<std::size_t>(idx)]
            : -1;
    }

  private:
    std::vector<int> home_;
    std::vector<int> residents_;
};

namespace {

ServeConfig
normalizedConfig(ServeConfig cfg)
{
    // The serving layer owns the iteration composition; the engine's
    // fixed budgets are bypassed by the demand overload. Scenario
    // affinities must be active for per-request scenario tags (and the
    // drift coupling) to matter.
    cfg.engine.workload.mode = GatingMode::MixedScenario;
    return cfg;
}

} // namespace

ServeLoop::ServeLoop(const Mapping &mapping, const ServeConfig &cfg,
                     StatRegistry *stats, TraceSink *trace,
                     int tracePidBase, const std::string &traceLabel,
                     const std::string &requestsLabel)
    : mapping_(mapping),
      cfg_(normalizedConfig(cfg)),
      sched_(cfg_.scheduler),
      engine_(mapping, cfg_.engine),
      stats_(stats),
      trace_(trace),
      pidBase_(tracePidBase),
      layers_(static_cast<double>(cfg_.engine.model.sparseLayers)),
      stages_(cfg_.engine.pipelineStages)
{
    // Observability: publication never perturbs the simulation. The
    // engine gets stats only — when the serving layer drives it, all
    // trace emission happens here, on the serve clock.
    sched_.attachStats(stats_);
    ObsHooks engineObs;
    engineObs.stats = stats_;
    engine_.attachObs(engineObs);
    if (stats_ != nullptr) {
        queueStat_ = stats_->distribution("serve.queue.depth");
        kvStat_ = stats_->distribution("serve.kv.reserved_tokens");
    }
    if (trace_ != nullptr) {
        trace_->processName(pidBase_, traceLabel);
        trace_->threadName(pidBase_, 0, "iterations");
        trace_->threadName(pidBase_, 1, "faults");
        trace_->processName(pidBase_ + 1, requestsLabel);
    }

    if (!cfg_.faults.empty()) {
        injector_ = std::make_unique<FaultInjector>(mapping_.topology(),
                                                    cfg_.faults);
        injector_->attachStats(stats_);
        engine_.attachFaults(injector_.get());
        residency_ = std::make_unique<ResidencyTracker>(
            mapping_.topology().numDevices());
    }
}

ServeLoop::~ServeLoop() = default;

void
ServeLoop::push(const ServeRequest &r)
{
    MOE_ASSERT(!finalized_, "push() after finalize()");
    sched_.push(r);
}

double
ServeLoop::iterationEnd() const
{
    MOE_ASSERT(inFlight_, "iterationEnd() with no iteration in flight");
    return iterEnd_;
}

void
ServeLoop::faultBoundary()
{
    if (!injector_)
        return;
    // Fault boundary, ahead of admission so this iteration's admits
    // already see the degraded system. The engine reacts to the
    // injector state this advance produces (its own advanceTo is a
    // no-op at an equal-or-older iteration).
    injector_->advanceTo(sched_.iterationIndex());
    while (eventTimes_.size() <
           static_cast<std::size_t>(injector_->appliedEvents())) {
        if (trace_ != nullptr) {
            trace_->instant(
                pidBase_, 1, "fault",
                describe(cfg_.faults.events[eventTimes_.size()]),
                now_);
        }
        eventTimes_.push_back(now_);
    }
    report_.liveDeviceFractionMin = std::min(
        report_.liveDeviceFractionMin, injector_->liveFraction());

    // Requests resident on newly lost devices lose their KV state:
    // bounded retry, then hard failure.
    const FaultPolicy &policy = cfg_.faultPolicy;
    const auto &lost = injector_->lostDevices();
    while (lostSeen_ < lost.size()) {
        const DeviceId dead = lost[lostSeen_++];
        for (const int idx : sched_.runningRequests()) {
            if (residency_->homeOf(idx) != dead)
                continue;
            residency_->release(idx);
            const RequestMetrics &m =
                sched_.metrics()[static_cast<std::size_t>(idx)];
            if (m.retries < policy.maxRetries) {
                sched_.evictToRetry(
                    idx, sched_.iterationIndex() +
                        policy.retryBackoffIterations);
            } else {
                sched_.failRunning(idx, now_);
            }
        }
    }
    if (policy.scaleKvBudget) {
        sched_.setKvBudgetLimit(static_cast<int>(
            cfg_.scheduler.kvBudgetTokens * injector_->liveFraction()));
    }
}

bool
ServeLoop::beginIteration()
{
    MOE_ASSERT(!inFlight_, "beginIteration() with one in flight");
    MOE_ASSERT(!finalized_, "beginIteration() after finalize()");
    for (;;) {
        faultBoundary();
        sched_.admit(now_);
        if (injector_) {
            // SLO-aware shedding: a queue head that can never fit the
            // degraded KV budget, or that already blew its TTFT bound
            // by the policy factor, is dropped — re-admitting after
            // each shed since the head-of-line block may clear.
            const FaultPolicy &policy = cfg_.faultPolicy;
            for (;;) {
                const int head = sched_.queueHead();
                if (head < 0)
                    break;
                const ServeRequest &r = sched_.request(head);
                const bool hopeless =
                    r.kvTokens() > sched_.kvBudgetLimit();
                const bool late = policy.shedOnOverload &&
                    now_ - r.arrivalTime >
                        policy.shedTtftFactor * cfg_.slo.ttft;
                if (!hopeless && !late)
                    break;
                sched_.shedHead(now_);
                sched_.admit(now_);
            }
            residency_->place(sched_.runningRequests(), *injector_);
        }
        const IterationDemand demand = sched_.plan();
        if (demand.tokensPerGroup() == 0) {
            if (injector_ && sched_.retryPending() > 0) {
                // Nothing runnable but evicted requests are waiting
                // out an iteration-counted backoff: burn an idle
                // iteration so they become re-admissible.
                sched_.tickIdle();
                continue;
            }
            return false; // idle: the caller advances the clock
        }
        if (cfg_.coupleDrift)
            engine_.workload().setScenarioMix(sched_.scenarioTokens());
        // Step the engine eagerly: the iteration's duration is a pure
        // function of its plan, so the end time is known at begin and
        // a fleet can order completions against other replicas.
        pendingStats_ = engine_.step(demand);
        pendingDemand_ = demand;
        iterStart_ = now_;
        iterEnd_ = now_ + pendingStats_.layerTime(stages_) * layers_;
        inFlight_ = true;
        return true;
    }
}

void
ServeLoop::finishIteration()
{
    MOE_ASSERT(inFlight_, "finishIteration() with none in flight");
    inFlight_ = false;
    const IterationStats &stats = pendingStats_;
    const double iterStart = iterStart_;
    now_ = iterEnd_;
    sched_.complete(now_);
    ++report_.iterations;
    if (trace_ != nullptr) {
        // Engine phases stretched to the serve clock: one stepped
        // iteration stands for sparseLayers real layers.
        double cursor = iterStart;
        const double attn = stats.attnPhase(stages_) * layers_;
        const double moe = stats.moePhase(stages_) * layers_;
        trace_->span(pidBase_, 0, "serve", "attn", cursor,
                     cursor + attn);
        cursor += attn;
        trace_->span(pidBase_, 0, "serve", "moe", cursor, cursor + moe,
                     {{"imbalance", TraceSink::num(stats.imbalance)}});
        cursor += moe;
        if (stats.migrationOverhead > 0.0) {
            const double mig = stats.migrationOverhead * layers_;
            trace_->span(pidBase_, 0, "serve", "migration", cursor,
                         cursor + mig);
            cursor += mig;
        }
        if (stats.faultRecoveryTime > 0.0) {
            const double rec = stats.faultRecoveryTime * layers_;
            trace_->span(pidBase_, 0, "serve", "fault_recovery", cursor,
                         cursor + rec);
        }
    }
    if (injector_) {
        // Finished requests free their resident slot.
        const std::size_t stream = sched_.metrics().size();
        std::vector<char> stillRunning(stream, 0);
        for (const int idx : sched_.runningRequests())
            stillRunning[static_cast<std::size_t>(idx)] = 1;
        for (std::size_t idx = 0; idx < stream; ++idx) {
            if (!stillRunning[idx] &&
                residency_->homeOf(static_cast<int>(idx)) >= 0) {
                residency_->release(static_cast<int>(idx));
            }
        }
    }

    ServeTracePoint point;
    point.time = now_;
    point.queueDepth = sched_.queueDepth();
    point.running = sched_.runningCount();
    point.kvReserved = sched_.kvReserved();
    point.decodeTokens = pendingDemand_.decodeTokensPerGroup;
    point.prefillTokens = pendingDemand_.prefillTokensPerGroup;
    report_.trace.push_back(point);
    // Same per-iteration sample order the old Summary-based report
    // fields used, so derived means/maxes are bitwise identical.
    if (stats_ != nullptr) {
        stats_->observe(queueStat_, point.queueDepth);
        stats_->observe(kvStat_, point.kvReserved);
    }
    if (trace_ != nullptr) {
        trace_->counter(
            pidBase_, "queue_depth", now_,
            {{"requests",
              TraceSink::num(
                  static_cast<long long>(point.queueDepth))}});
        trace_->counter(
            pidBase_, "running", now_,
            {{"requests",
              TraceSink::num(static_cast<long long>(point.running))}});
        trace_->counter(
            pidBase_, "kv_reserved_tokens", now_,
            {{"tokens",
              TraceSink::num(
                  static_cast<long long>(point.kvReserved))}});
    }
}

void
ServeLoop::advanceIdle(double t)
{
    MOE_ASSERT(!inFlight_, "advanceIdle() with an iteration in flight");
    MOE_ASSERT(t >= now_, "advanceIdle() must not move time backwards");
    now_ = t;
}

ServeReport
ServeLoop::finalize()
{
    MOE_ASSERT(!inFlight_, "finalize() with an iteration in flight");
    MOE_ASSERT(!finalized_, "finalize() called twice");
    MOE_ASSERT(allFinished(), "finalize() with unfinished requests");
    finalized_ = true;

    ServeReport report = std::move(report_);
    report.requests = sched_.metrics();
    report.makespan = now_;

    Summary ttft;
    Summary tpot;
    Summary latency;
    double outputTokens = 0.0;
    int good = 0;
    for (const RequestMetrics &m : report.requests) {
        switch (m.outcome) {
        case RequestOutcome::Completed:
            ttft.add(m.ttft());
            tpot.add(m.tpot());
            latency.add(m.latency());
            outputTokens += m.outputTokens;
            good += cfg_.slo.met(m);
            break;
        case RequestOutcome::Shed:
            ++report.shedRequests;
            break;
        case RequestOutcome::Failed:
            ++report.failedRequests;
            break;
        }
        report.retriesTotal += m.retries;
    }
    // Zero completions (all shed, or a replica the router never chose)
    // leave the percentile fields at their zero defaults instead of
    // indexing an empty sample vector.
    if (ttft.count() > 0) {
        report.ttftP50 = ttft.percentile(50.0);
        report.ttftP95 = ttft.percentile(95.0);
        report.ttftP99 = ttft.percentile(99.0);
        report.tpotP50 = tpot.percentile(50.0);
        report.tpotP95 = tpot.percentile(95.0);
        report.tpotP99 = tpot.percentile(99.0);
        report.latencyP50 = latency.percentile(50.0);
        report.latencyP99 = latency.percentile(99.0);
    }
    if (report.makespan > 0.0) {
        report.throughputTokensPerSec = outputTokens / report.makespan;
        report.goodputRequestsPerSec = good / report.makespan;
    }
    report.sloAttainment = report.requests.empty()
        ? 0.0
        : static_cast<double>(good) /
            static_cast<double>(report.requests.size());

    if (trace_ != nullptr) {
        // One timeline per request: queued → prefill → decode spans,
        // with shed/failed terminations as instants.
        for (const RequestMetrics &m : report.requests) {
            TraceSink::Args args{
                {"scenario", TraceSink::str(scenarioName(m.scenario))},
                {"prompt_tokens",
                 TraceSink::num(
                     static_cast<long long>(m.promptTokens))},
                {"output_tokens",
                 TraceSink::num(
                     static_cast<long long>(m.outputTokens))},
                {"retries",
                 TraceSink::num(static_cast<long long>(m.retries))}};
            switch (m.outcome) {
            case RequestOutcome::Completed:
                trace_->span(pidBase_ + 1, m.id, "request", "queued",
                             m.arrivalTime, m.admitTime, args);
                trace_->span(pidBase_ + 1, m.id, "request", "prefill",
                             m.admitTime, m.firstTokenTime);
                trace_->span(pidBase_ + 1, m.id, "request", "decode",
                             m.firstTokenTime, m.finishTime);
                break;
            case RequestOutcome::Shed:
                trace_->span(pidBase_ + 1, m.id, "request", "queued",
                             m.arrivalTime, m.finishTime, args);
                trace_->instant(pidBase_ + 1, m.id, "request", "shed",
                                m.finishTime);
                break;
            case RequestOutcome::Failed:
                trace_->span(pidBase_ + 1, m.id, "request", "queued",
                             m.arrivalTime, m.admitTime, args);
                trace_->span(pidBase_ + 1, m.id, "request", "running",
                             m.admitTime, m.finishTime);
                trace_->instant(pidBase_ + 1, m.id, "request",
                                "failed", m.finishTime);
                break;
            }
        }
    }

    if (injector_) {
        report.faultEventsApplied = injector_->appliedEvents();
        // Per-event attribution: serving quality between consecutive
        // event applications (the -1 window is the pre-fault baseline).
        for (int w = -1; w < report.faultEventsApplied; ++w) {
            FaultEventWindow window;
            window.eventIndex = w;
            window.event = w < 0
                ? "baseline"
                : describe(injector_->plan()
                               .events[static_cast<std::size_t>(w)]);
            window.startTime =
                w < 0 ? 0.0 : eventTimes_[static_cast<std::size_t>(w)];
            window.endTime = w + 1 < report.faultEventsApplied
                ? eventTimes_[static_cast<std::size_t>(w + 1)]
                : report.makespan;
            Summary windowLatency;
            for (const RequestMetrics &m : report.requests) {
                if (m.finishTime < window.startTime ||
                    m.finishTime >= window.endTime) {
                    // Half-open [start, end); the final window keeps
                    // the run-ending completions.
                    if (!(w + 1 == report.faultEventsApplied &&
                          m.finishTime == window.endTime))
                        continue;
                }
                switch (m.outcome) {
                case RequestOutcome::Completed:
                    ++window.completed;
                    windowLatency.add(m.latency());
                    if (cfg_.slo.met(m))
                        window.goodputRequestsPerSec += 1.0;
                    break;
                case RequestOutcome::Shed:
                    ++window.shed;
                    break;
                case RequestOutcome::Failed:
                    ++window.failed;
                    break;
                }
            }
            const double span = window.endTime - window.startTime;
            window.goodputRequestsPerSec =
                span > 0.0 ? window.goodputRequestsPerSec / span : 0.0;
            if (windowLatency.count() > 0)
                window.latencyP99 = windowLatency.percentile(99.0);
            report.faultWindows.push_back(window);
        }
    }
    return report;
}

} // namespace moentwine
