#include "serve/serve_sim.hh"

#include <limits>

#include "common/logging.hh"
#include "serve/serve_loop.hh"

namespace moentwine {

ServeSimulator::ServeSimulator(const Mapping &mapping,
                               const ServeConfig &cfg)
    : mapping_(mapping), cfg_(cfg)
{
    MOE_ASSERT(cfg.numRequests > 0, "serve run needs requests");
    // The serving layer owns the iteration composition; the engine's
    // fixed budgets are bypassed by the demand overload. Scenario
    // affinities must be active for per-request scenario tags (and the
    // drift coupling) to matter.
    cfg_.engine.workload.mode = GatingMode::MixedScenario;
}

ServeReport
ServeSimulator::run()
{
    // The iteration machinery lives in ServeLoop (shared with the
    // fleet front-end of src/cluster/); a bare run pushes the whole
    // generated stream up front and drives the loop to completion.
    const ArrivalProcess arrivals(cfg_.arrival);
    ServeLoop loop(mapping_, cfg_, &stats_, trace_);
    for (const ServeRequest &r : arrivals.generate(cfg_.numRequests))
        loop.push(r);

    while (!loop.allFinished()) {
        if (loop.beginIteration()) {
            loop.finishIteration();
            continue;
        }
        // Nothing runnable: the platform idles until the next arrival.
        // The scheduler guarantees a queued request is admissible once
        // the batch drains (each fits the budget alone), so arrivals
        // must remain — otherwise the stream would already be done.
        const double next = loop.nextArrival();
        MOE_ASSERT(next > loop.now() &&
                       next < std::numeric_limits<double>::infinity(),
                   "idle serving loop with no future arrival");
        loop.advanceIdle(next);
    }
    return loop.finalize();
}

} // namespace moentwine
