#include "serve/serve_sim.hh"

#include <algorithm>
#include <limits>
#include <memory>

#include "common/logging.hh"
#include "common/stats.hh"
#include "fault/fault_injector.hh"

namespace moentwine {

namespace {

/**
 * Resident-device bookkeeping for fault response: every admitted
 * request lives on one device (where its KV cache sits), assigned
 * deterministically to the live device with the fewest residents
 * (ties to the lowest id). When that device dies, the request dies
 * with it and the scheduler retries or fails it.
 */
class ResidencyTracker
{
  public:
    ResidencyTracker(int numRequests, int numDevices)
        : home_(static_cast<std::size_t>(numRequests), -1),
          residents_(static_cast<std::size_t>(numDevices), 0)
    {
    }

    /** Assign homes to newly admitted (home-less) running requests. */
    void place(const std::vector<int> &running,
               const FaultInjector &injector)
    {
        for (const int idx : running) {
            if (home_[static_cast<std::size_t>(idx)] >= 0)
                continue;
            int target = -1;
            for (std::size_t d = 0; d < residents_.size(); ++d) {
                if (injector.deviceLost(static_cast<DeviceId>(d)))
                    continue;
                if (target < 0 ||
                    residents_[d] <
                        residents_[static_cast<std::size_t>(target)]) {
                    target = static_cast<int>(d);
                }
            }
            MOE_ASSERT(target >= 0, "no live device to home a request");
            home_[static_cast<std::size_t>(idx)] = target;
            ++residents_[static_cast<std::size_t>(target)];
        }
    }

    /** Release a request's residency (eviction, failure, finish). */
    void release(int idx)
    {
        int &h = home_[static_cast<std::size_t>(idx)];
        if (h >= 0) {
            --residents_[static_cast<std::size_t>(h)];
            h = -1;
        }
    }

    /** Resident device of a request; -1 when none. */
    int homeOf(int idx) const
    {
        return home_[static_cast<std::size_t>(idx)];
    }

  private:
    std::vector<int> home_;
    std::vector<int> residents_;
};

} // namespace

ServeSimulator::ServeSimulator(const Mapping &mapping,
                               const ServeConfig &cfg)
    : mapping_(mapping), cfg_(cfg)
{
    MOE_ASSERT(cfg.numRequests > 0, "serve run needs requests");
    // The serving layer owns the iteration composition; the engine's
    // fixed budgets are bypassed by the demand overload. Scenario
    // affinities must be active for per-request scenario tags (and the
    // drift coupling) to matter.
    cfg_.engine.workload.mode = GatingMode::MixedScenario;
}

ServeReport
ServeSimulator::run()
{
    const ArrivalProcess arrivals(cfg_.arrival);
    ContinuousBatchScheduler sched(cfg_.scheduler,
                                   arrivals.generate(cfg_.numRequests));
    InferenceEngine engine(mapping_, cfg_.engine);

    // Observability: the simulator always publishes into its own
    // registry (reading it is free; publication never perturbs the
    // simulation). The engine gets stats only — when the serving layer
    // drives it, all trace emission happens here, on the serve clock.
    sched.attachStats(&stats_);
    ObsHooks engineObs;
    engineObs.stats = &stats_;
    engine.attachObs(engineObs);
    const StatRegistry::Handle queueStat =
        stats_.distribution("serve.queue.depth");
    const StatRegistry::Handle kvStat =
        stats_.distribution("serve.kv.reserved_tokens");
    if (trace_ != nullptr) {
        trace_->processName(0, "serve");
        trace_->threadName(0, 0, "iterations");
        trace_->threadName(0, 1, "faults");
        trace_->processName(1, "requests");
    }

    // Fault state: null on an empty plan, which keeps the loop below
    // on the exact fault-free path (bitwise-identical output).
    std::unique_ptr<FaultInjector> injector;
    std::unique_ptr<ResidencyTracker> residency;
    std::vector<double> eventTimes; // virtual time each event applied
    std::size_t lostSeen = 0;
    ServeReport report;
    if (!cfg_.faults.empty()) {
        injector = std::make_unique<FaultInjector>(mapping_.topology(),
                                                   cfg_.faults);
        injector->attachStats(&stats_);
        engine.attachFaults(injector.get());
        residency = std::make_unique<ResidencyTracker>(
            cfg_.numRequests, mapping_.topology().numDevices());
    }

    const double layers =
        static_cast<double>(cfg_.engine.model.sparseLayers);
    const int stages = cfg_.engine.pipelineStages;
    const FaultPolicy &policy = cfg_.faultPolicy;

    double now = 0.0;
    while (!sched.done()) {
        if (injector) {
            // Fault boundary, ahead of admission so this iteration's
            // admits already see the degraded system. The engine reacts
            // to the injector state this advance produces (its own
            // advanceTo is a no-op at an equal-or-older iteration).
            injector->advanceTo(sched.iterationIndex());
            while (eventTimes.size() <
                   static_cast<std::size_t>(injector->appliedEvents())) {
                if (trace_ != nullptr) {
                    trace_->instant(
                        0, 1, "fault",
                        describe(cfg_.faults.events[eventTimes.size()]),
                        now);
                }
                eventTimes.push_back(now);
            }
            report.liveDeviceFractionMin = std::min(
                report.liveDeviceFractionMin, injector->liveFraction());

            // Requests resident on newly lost devices lose their KV
            // state: bounded retry, then hard failure.
            const auto &lost = injector->lostDevices();
            while (lostSeen < lost.size()) {
                const DeviceId dead = lost[lostSeen++];
                for (const int idx : sched.runningRequests()) {
                    if (residency->homeOf(idx) != dead)
                        continue;
                    residency->release(idx);
                    const RequestMetrics &m = sched.metrics()
                        [static_cast<std::size_t>(idx)];
                    if (m.retries < policy.maxRetries) {
                        sched.evictToRetry(
                            idx, sched.iterationIndex() +
                                policy.retryBackoffIterations);
                    } else {
                        sched.failRunning(idx, now);
                    }
                }
            }
            if (policy.scaleKvBudget) {
                sched.setKvBudgetLimit(static_cast<int>(
                    cfg_.scheduler.kvBudgetTokens *
                    injector->liveFraction()));
            }
        }
        sched.admit(now);
        if (injector) {
            // SLO-aware shedding: a queue head that can never fit the
            // degraded KV budget, or that already blew its TTFT bound
            // by the policy factor, is dropped — re-admitting after
            // each shed since the head-of-line block may clear.
            for (;;) {
                const int head = sched.queueHead();
                if (head < 0)
                    break;
                const ServeRequest &r = sched.request(head);
                const bool hopeless =
                    r.kvTokens() > sched.kvBudgetLimit();
                const bool late = policy.shedOnOverload &&
                    now - r.arrivalTime >
                        policy.shedTtftFactor * cfg_.slo.ttft;
                if (!hopeless && !late)
                    break;
                sched.shedHead(now);
                sched.admit(now);
            }
            residency->place(sched.runningRequests(), *injector);
        }
        const IterationDemand demand = sched.plan();
        if (demand.tokensPerGroup() == 0) {
            if (injector && sched.retryPending() > 0) {
                // Nothing runnable but evicted requests are waiting
                // out an iteration-counted backoff: burn an idle
                // iteration so they become re-admissible.
                sched.tickIdle();
                continue;
            }
            // Nothing runnable: the platform idles until the next
            // arrival. The scheduler guarantees a queued request is
            // admissible once the batch drains (each fits the budget
            // alone), so arrivals must remain — otherwise the stream
            // would already be done.
            const double next = sched.nextArrival();
            MOE_ASSERT(next > now && next <
                           std::numeric_limits<double>::infinity(),
                       "idle serving loop with no future arrival");
            now = next;
            continue;
        }
        if (cfg_.coupleDrift)
            engine.workload().setScenarioMix(sched.scenarioTokens());
        const IterationStats stats = engine.step(demand);
        const double iterStart = now;
        now += stats.layerTime(stages) * layers;
        sched.complete(now);
        ++report.iterations;
        if (trace_ != nullptr) {
            // Engine phases stretched to the serve clock: one stepped
            // iteration stands for sparseLayers real layers.
            double cursor = iterStart;
            const double attn = stats.attnPhase(stages) * layers;
            const double moe = stats.moePhase(stages) * layers;
            trace_->span(0, 0, "serve", "attn", cursor, cursor + attn);
            cursor += attn;
            trace_->span(0, 0, "serve", "moe", cursor, cursor + moe,
                         {{"imbalance",
                           TraceSink::num(stats.imbalance)}});
            cursor += moe;
            if (stats.migrationOverhead > 0.0) {
                const double mig = stats.migrationOverhead * layers;
                trace_->span(0, 0, "serve", "migration", cursor,
                             cursor + mig);
                cursor += mig;
            }
            if (stats.faultRecoveryTime > 0.0) {
                const double rec = stats.faultRecoveryTime * layers;
                trace_->span(0, 0, "serve", "fault_recovery", cursor,
                             cursor + rec);
            }
        }
        if (injector) {
            // Finished requests free their resident slot.
            std::vector<char> stillRunning(
                static_cast<std::size_t>(cfg_.numRequests), 0);
            for (const int idx : sched.runningRequests())
                stillRunning[static_cast<std::size_t>(idx)] = 1;
            for (int idx = 0; idx < cfg_.numRequests; ++idx) {
                if (!stillRunning[static_cast<std::size_t>(idx)] &&
                    residency->homeOf(idx) >= 0) {
                    residency->release(idx);
                }
            }
        }

        ServeTracePoint point;
        point.time = now;
        point.queueDepth = sched.queueDepth();
        point.running = sched.runningCount();
        point.kvReserved = sched.kvReserved();
        point.decodeTokens = demand.decodeTokensPerGroup;
        point.prefillTokens = demand.prefillTokensPerGroup;
        report.trace.push_back(point);
        // Same per-iteration sample order the old Summary-based report
        // fields used, so derived means/maxes are bitwise identical.
        stats_.observe(queueStat, point.queueDepth);
        stats_.observe(kvStat, point.kvReserved);
        if (trace_ != nullptr) {
            trace_->counter(
                0, "queue_depth", now,
                {{"requests",
                  TraceSink::num(
                      static_cast<long long>(point.queueDepth))}});
            trace_->counter(
                0, "running", now,
                {{"requests",
                  TraceSink::num(
                      static_cast<long long>(point.running))}});
            trace_->counter(
                0, "kv_reserved_tokens", now,
                {{"tokens",
                  TraceSink::num(
                      static_cast<long long>(point.kvReserved))}});
        }
    }

    report.requests = sched.metrics();
    report.makespan = now;

    Summary ttft;
    Summary tpot;
    Summary latency;
    double outputTokens = 0.0;
    int good = 0;
    for (const RequestMetrics &m : report.requests) {
        switch (m.outcome) {
        case RequestOutcome::Completed:
            ttft.add(m.ttft());
            tpot.add(m.tpot());
            latency.add(m.latency());
            outputTokens += m.outputTokens;
            good += cfg_.slo.met(m);
            break;
        case RequestOutcome::Shed:
            ++report.shedRequests;
            break;
        case RequestOutcome::Failed:
            ++report.failedRequests;
            break;
        }
        report.retriesTotal += m.retries;
    }
    report.ttftP50 = ttft.percentile(50.0);
    report.ttftP95 = ttft.percentile(95.0);
    report.ttftP99 = ttft.percentile(99.0);
    report.tpotP50 = tpot.percentile(50.0);
    report.tpotP95 = tpot.percentile(95.0);
    report.tpotP99 = tpot.percentile(99.0);
    report.latencyP50 = latency.percentile(50.0);
    report.latencyP99 = latency.percentile(99.0);
    if (report.makespan > 0.0) {
        report.throughputTokensPerSec = outputTokens / report.makespan;
        report.goodputRequestsPerSec = good / report.makespan;
    }
    report.sloAttainment =
        static_cast<double>(good) /
        static_cast<double>(report.requests.size());

    if (trace_ != nullptr) {
        // One timeline per request: queued → prefill → decode spans,
        // with shed/failed terminations as instants.
        for (const RequestMetrics &m : report.requests) {
            TraceSink::Args args{
                {"scenario", TraceSink::str(scenarioName(m.scenario))},
                {"prompt_tokens",
                 TraceSink::num(static_cast<long long>(m.promptTokens))},
                {"output_tokens",
                 TraceSink::num(static_cast<long long>(m.outputTokens))},
                {"retries",
                 TraceSink::num(static_cast<long long>(m.retries))}};
            switch (m.outcome) {
            case RequestOutcome::Completed:
                trace_->span(1, m.id, "request", "queued",
                             m.arrivalTime, m.admitTime, args);
                trace_->span(1, m.id, "request", "prefill",
                             m.admitTime, m.firstTokenTime);
                trace_->span(1, m.id, "request", "decode",
                             m.firstTokenTime, m.finishTime);
                break;
            case RequestOutcome::Shed:
                trace_->span(1, m.id, "request", "queued",
                             m.arrivalTime, m.finishTime, args);
                trace_->instant(1, m.id, "request", "shed",
                                m.finishTime);
                break;
            case RequestOutcome::Failed:
                trace_->span(1, m.id, "request", "queued",
                             m.arrivalTime, m.admitTime, args);
                trace_->span(1, m.id, "request", "running",
                             m.admitTime, m.finishTime);
                trace_->instant(1, m.id, "request", "failed",
                                m.finishTime);
                break;
            }
        }
    }

    if (injector) {
        report.faultEventsApplied = injector->appliedEvents();
        // Per-event attribution: serving quality between consecutive
        // event applications (the -1 window is the pre-fault baseline).
        for (int w = -1; w < report.faultEventsApplied; ++w) {
            FaultEventWindow window;
            window.eventIndex = w;
            window.event = w < 0
                ? "baseline"
                : describe(injector->plan()
                               .events[static_cast<std::size_t>(w)]);
            window.startTime =
                w < 0 ? 0.0 : eventTimes[static_cast<std::size_t>(w)];
            window.endTime = w + 1 < report.faultEventsApplied
                ? eventTimes[static_cast<std::size_t>(w + 1)]
                : report.makespan;
            Summary windowLatency;
            for (const RequestMetrics &m : report.requests) {
                if (m.finishTime < window.startTime ||
                    m.finishTime >= window.endTime) {
                    // Half-open [start, end); the final window keeps
                    // the run-ending completions.
                    if (!(w + 1 == report.faultEventsApplied &&
                          m.finishTime == window.endTime))
                        continue;
                }
                switch (m.outcome) {
                case RequestOutcome::Completed:
                    ++window.completed;
                    windowLatency.add(m.latency());
                    if (cfg_.slo.met(m))
                        window.goodputRequestsPerSec += 1.0;
                    break;
                case RequestOutcome::Shed:
                    ++window.shed;
                    break;
                case RequestOutcome::Failed:
                    ++window.failed;
                    break;
                }
            }
            const double span = window.endTime - window.startTime;
            window.goodputRequestsPerSec =
                span > 0.0 ? window.goodputRequestsPerSec / span : 0.0;
            if (windowLatency.count() > 0)
                window.latencyP99 = windowLatency.percentile(99.0);
            report.faultWindows.push_back(window);
        }
    }
    return report;
}

} // namespace moentwine
