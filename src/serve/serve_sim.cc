#include "serve/serve_sim.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"
#include "common/stats.hh"

namespace moentwine {

ServeSimulator::ServeSimulator(const Mapping &mapping,
                               const ServeConfig &cfg)
    : mapping_(mapping), cfg_(cfg)
{
    MOE_ASSERT(cfg.numRequests > 0, "serve run needs requests");
    // The serving layer owns the iteration composition; the engine's
    // fixed budgets are bypassed by the demand overload. Scenario
    // affinities must be active for per-request scenario tags (and the
    // drift coupling) to matter.
    cfg_.engine.workload.mode = GatingMode::MixedScenario;
}

ServeReport
ServeSimulator::run()
{
    const ArrivalProcess arrivals(cfg_.arrival);
    ContinuousBatchScheduler sched(cfg_.scheduler,
                                   arrivals.generate(cfg_.numRequests));
    InferenceEngine engine(mapping_, cfg_.engine);

    const double layers =
        static_cast<double>(cfg_.engine.model.sparseLayers);
    const int stages = cfg_.engine.pipelineStages;

    ServeReport report;
    double now = 0.0;
    while (!sched.done()) {
        sched.admit(now);
        const IterationDemand demand = sched.plan();
        if (demand.tokensPerGroup() == 0) {
            // Nothing runnable: the platform idles until the next
            // arrival. The scheduler guarantees a queued request is
            // admissible once the batch drains (each fits the budget
            // alone), so arrivals must remain — otherwise the stream
            // would already be done.
            const double next = sched.nextArrival();
            MOE_ASSERT(next > now && next <
                           std::numeric_limits<double>::infinity(),
                       "idle serving loop with no future arrival");
            now = next;
            continue;
        }
        if (cfg_.coupleDrift)
            engine.workload().setScenarioMix(sched.scenarioTokens());
        const IterationStats stats = engine.step(demand);
        now += stats.layerTime(stages) * layers;
        sched.complete(now);
        ++report.iterations;

        ServeTracePoint point;
        point.time = now;
        point.queueDepth = sched.queueDepth();
        point.running = sched.runningCount();
        point.kvReserved = sched.kvReserved();
        point.decodeTokens = demand.decodeTokensPerGroup;
        point.prefillTokens = demand.prefillTokensPerGroup;
        report.trace.push_back(point);
    }

    report.requests = sched.metrics();
    report.makespan = now;

    Summary ttft;
    Summary tpot;
    Summary latency;
    double outputTokens = 0.0;
    int good = 0;
    for (const RequestMetrics &m : report.requests) {
        ttft.add(m.ttft());
        tpot.add(m.tpot());
        latency.add(m.latency());
        outputTokens += m.outputTokens;
        good += cfg_.slo.met(m);
    }
    report.ttftP50 = ttft.percentile(50.0);
    report.ttftP95 = ttft.percentile(95.0);
    report.ttftP99 = ttft.percentile(99.0);
    report.tpotP50 = tpot.percentile(50.0);
    report.tpotP95 = tpot.percentile(95.0);
    report.tpotP99 = tpot.percentile(99.0);
    report.latencyP50 = latency.percentile(50.0);
    report.latencyP99 = latency.percentile(99.0);
    if (report.makespan > 0.0) {
        report.throughputTokensPerSec = outputTokens / report.makespan;
        report.goodputRequestsPerSec = good / report.makespan;
    }
    report.sloAttainment =
        static_cast<double>(good) /
        static_cast<double>(report.requests.size());

    Summary queue;
    double kvPeak = 0.0;
    for (const ServeTracePoint &p : report.trace) {
        queue.add(p.queueDepth);
        kvPeak = std::max(kvPeak, static_cast<double>(p.kvReserved));
    }
    if (queue.count() > 0) {
        report.queueDepthMean = queue.mean();
        report.queueDepthMax = queue.max();
    }
    report.kvPeakFraction =
        kvPeak / static_cast<double>(cfg_.scheduler.kvBudgetTokens);
    return report;
}

} // namespace moentwine
