/**
 * @file
 * Communication-only evaluation used by the mapping studies
 * (Figs. 6, 13, 14): given a mapping and a model, compute the attention
 * all-reduce time and the MoE dispatch/combine all-to-all times under
 * load-balanced gating (every expert equally likely), exactly as
 * Section VI-B isolates mapping effects from load imbalance.
 */

#ifndef MOENTWINE_ENGINE_COMM_EVAL_HH
#define MOENTWINE_ENGINE_COMM_EVAL_HH

#include "balancer/placement.hh"
#include "mapping/mapping.hh"
#include "model/moe_config.hh"
#include "network/traffic.hh"

namespace moentwine {

/** Communication latencies of one sparse layer. */
struct CommEvalResult
{
    /** Attention all-reduce completion time (s). */
    double allReduce;
    /** MoE dispatch all-to-all time (s). */
    double dispatch;
    /** MoE combine all-to-all time (s). */
    double combine;
    /** Aggregated all-reduce traffic (heatmaps, NI budgets). */
    PhaseTraffic arTraffic;
    /** Aggregated dispatch+combine traffic. */
    PhaseTraffic a2aTraffic;

    /** Total MoE all-to-all time. */
    double allToAll() const { return dispatch + combine; }

    /** Total communication time of the layer. */
    double total() const { return allReduce + allToAll(); }
};

/**
 * Evaluate one layer's communication under balanced gating.
 *
 * @param mapping         Parallelism mapping.
 * @param model           MoE model.
 * @param tokensPerGroup  Tokens per TP group.
 * @param retainAllGather Retain the all-gather half of all-reduce.
 * @param placement       Expert placement; round-robin without shadow
 *                        slots when null.
 */
CommEvalResult evaluateCommunication(const Mapping &mapping,
                                     const MoEModelConfig &model,
                                     int tokensPerGroup,
                                     bool retainAllGather,
                                     const ExpertPlacement *placement =
                                         nullptr);

} // namespace moentwine

#endif // MOENTWINE_ENGINE_COMM_EVAL_HH
