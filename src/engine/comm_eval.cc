#include "engine/comm_eval.hh"

#include "common/logging.hh"
#include "engine/token_router.hh"
#include "network/collectives.hh"

namespace moentwine {

CommEvalResult
evaluateCommunication(const Mapping &mapping, const MoEModelConfig &model,
                      int tokensPerGroup, bool retainAllGather,
                      const ExpertPlacement *placement)
{
    MOE_ASSERT(tokensPerGroup > 0, "tokensPerGroup must be positive");

    // Attention all-reduce: the group's activation tensor.
    const double arBytes = tokensPerGroup * model.tokenBytes();
    CollectiveTiming ar = mapping.allReduce(arBytes, retainAllGather);

    // Balanced gating: expected token count per (group, expert).
    ExpertPlacement fallback(model.expertsTotal, mapping.numDevices(), 0);
    const ExpertPlacement &place = placement ? *placement : fallback;
    const double perExpert = static_cast<double>(tokensPerGroup) *
        model.expertsActivated / model.expertsTotal;
    std::vector<std::vector<int>> counts(
        static_cast<std::size_t>(mapping.dp()),
        std::vector<int>(static_cast<std::size_t>(model.expertsTotal),
                         std::max(1, static_cast<int>(perExpert + 0.5))));
    // Scale token bytes so that integer counts preserve exact volume.
    const double scale = perExpert /
        std::max(1, static_cast<int>(perExpert + 0.5));
    const RoutedTraffic routed = routeTokens(
        mapping, place, counts, model.tokenBytes() * scale,
        retainAllGather, model.expertsActivated);

    CollectiveTiming disp = allToAll(mapping.topology(), routed.dispatch);
    CollectiveTiming comb = allToAll(mapping.topology(), routed.combine);

    CommEvalResult result{ar.time, disp.time, comb.time,
                          std::move(ar.traffic), std::move(disp.traffic)};
    result.a2aTraffic.merge(comb.traffic);
    return result;
}

} // namespace moentwine
