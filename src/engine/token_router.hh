/**
 * @file
 * Token routing: translates a gating outcome (per-group expert counts)
 * into the dispatch/combine flow sets of the MoE all-to-all, plus the
 * per-device routed-token loads that drive expert computation time.
 *
 * Tokens of a DP group are spread uniformly over the group's TP shard
 * ranks; tokens selecting an expert are split evenly across its
 * replicas (the shadow-expert sharing rule of Fig. 7(a)). Each
 * (group, rank, replica) triple contributes dispatch volume from the
 * mapping's dispatch source to the replica device, and combine volume
 * back. Dispatch carries the FP16 hidden activation of every routed
 * token; combine carries the expert output of the same width.
 *
 * Because the congestion model only depends on per-(src, dst) volumes,
 * the router aggregates the O(dp · experts · replicas · tp) logical
 * transfers into a TrafficAccumulator — a dense devices×devices byte
 * matrix below TrafficAccumulator::kSparseAutoThreshold devices, a
 * sparse hash of touched pairs at/above (selected by the mapping's
 * TrafficStorageKind; see network/traffic_accum.hh) — and materialises
 * the non-zero pairs as dispatch flows in cache-blocked tile-major
 * order (combine is the transpose). Both storages yield bitwise
 * identical flow lists. The unaggregated per-triple flow list is kept
 * behind an `aggregate` toggle for equivalence tests and the no-cache
 * perf baseline.
 */

#ifndef MOENTWINE_ENGINE_TOKEN_ROUTER_HH
#define MOENTWINE_ENGINE_TOKEN_ROUTER_HH

#include <vector>

#include "balancer/placement.hh"
#include "mapping/mapping.hh"
#include "network/traffic.hh"
#include "network/traffic_accum.hh"

namespace moentwine {

/** Flows and device loads produced by routing one layer's tokens. */
struct RoutedTraffic
{
    /** Dispatch flows (token activations toward expert devices). */
    std::vector<Flow> dispatch;
    /** Combine flows (expert outputs back to the token owners). */
    std::vector<Flow> combine;
    /** Routed tokens (with expert multiplicity) per device. */
    std::vector<double> tokensPerDevice;
    /** Hosted experts receiving at least one token, per device. */
    std::vector<int> activeExpertsPerDevice;
    /**
     * Aggregated dispatch bytes per (src, dst) pair (combine is the
     * transpose), behind the dense/sparse TrafficStorageKind policy.
     * Populated only on the aggregated path.
     */
    TrafficAccumulator pairBytes;
    /** Per-expert total token counts summed over DP groups. */
    std::vector<double> expertLoads;
};

/**
 * Route one layer's gated tokens into @p out, reusing its buffers
 * (the engine's per-iteration hot path: no allocation once the
 * buffers reached steady-state capacity).
 *
 * @param mapping    Parallelism mapping (dispatch-source rule, TP/DP).
 * @param placement  Current expert placement.
 * @param counts     counts[group][expert] token assignments.
 * @param tokenBytes Bytes of one token's activation (FP16 hidden).
 * @param retainAllGather Whether attention retained the all-gather
 *        (nearest-source dispatch) or not (owner-only dispatch).
 * @param topk       Experts activated per token (hierarchical-A2A
 *        dedup on switch clusters; ignored by mesh mappings).
 * @param out        Result; cleared and refilled.
 * @param aggregate  Collapse flows into the per-(src, dst) matrix
 *        (default). When false, emit one flow per
 *        (group, rank, replica) triple — the pre-aggregation
 *        behaviour, kept for equivalence tests and baselines.
 */
void routeTokens(const Mapping &mapping, const ExpertPlacement &placement,
                 const std::vector<std::vector<int>> &counts,
                 double tokenBytes, bool retainAllGather, int topk,
                 RoutedTraffic &out, bool aggregate = true);

/** Convenience wrapper returning a fresh RoutedTraffic. */
RoutedTraffic routeTokens(const Mapping &mapping,
                          const ExpertPlacement &placement,
                          const std::vector<std::vector<int>> &counts,
                          double tokenBytes, bool retainAllGather,
                          int topk = 1);

} // namespace moentwine

#endif // MOENTWINE_ENGINE_TOKEN_ROUTER_HH
