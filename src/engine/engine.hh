/**
 * @file
 * The MoEntwine inference engine: a per-iteration timeline model of MoE
 * serving on a mapped platform.
 *
 * Each iteration simulates one representative sparse layer (attention +
 * all-reduce, gating, dispatch, expert execution, combine). Following
 * PipeMoE, inputs are micro-batched so each phase's computation and
 * communication overlap: phase time = max(comp, comm) + min/stages.
 * Migration runs on a third stream:
 *  - invasive balancers (Greedy, Topology-aware) stop iteration and pay
 *    the Eq.(1) transfer cost of their migration flows on the critical
 *    path;
 *  - the Non-invasive balancer drains its pending transfers through the
 *    idle-link budgets of both phases, scaled by the number of sparse
 *    layers a real iteration provides (every layer opens one attention
 *    and one MoE window).
 *
 * Expert loads are tracked with an EMA; the Eq.(2) trigger decides when
 * to re-plan placement.
 */

#ifndef MOENTWINE_ENGINE_ENGINE_HH
#define MOENTWINE_ENGINE_ENGINE_HH

#include <memory>
#include <vector>

#include "balancer/balancer.hh"
#include "balancer/ni_balancer.hh"
#include "balancer/placement.hh"
#include "engine/token_router.hh"
#include "mapping/mapping.hh"
#include "model/cost_model.hh"
#include "model/moe_config.hh"
#include "network/collectives.hh"
#include "network/traffic.hh"
#include "obs/obs.hh"
#include "workload/workload.hh"

namespace moentwine {

class FaultInjector;
struct ExpertRehoming;

/** Which balancing strategy the engine runs. */
enum class BalancerKind
{
    None,          ///< static native placement
    Greedy,        ///< EPLB-style invasive balancing
    TopologyAware, ///< Algorithm 1, invasive
    NonInvasive,   ///< NI-Balancer (hidden migration)
};

/** Iteration composition (Section VI-C evaluates all three). */
enum class SchedulingMode
{
    PrefillOnly, ///< long-input prefill iterations
    DecodeOnly,  ///< single-token decode steps
    Hybrid,      ///< decode batch plus a prefill chunk per iteration
};

/** Engine configuration. */
struct EngineConfig
{
    /** Model under test. */
    MoEModelConfig model;
    /** Device specification. */
    DeviceSpec device{};
    /** Achievable fraction of peak GEMM throughput. */
    double gemmEfficiency = 0.6;
    /** Iteration composition. */
    SchedulingMode schedule = SchedulingMode::DecodeOnly;
    /** Decode tokens per TP group per iteration. */
    int decodeTokensPerGroup = 256;
    /** Prefill tokens per TP group per iteration. */
    int prefillTokensPerGroup = 2048;
    /** Average context length (KV entries). */
    double contextLen = 4096.0;
    /** Retain the all-gather half of the attention all-reduce. */
    bool retainAllGather = true;
    /** Micro-batch pipeline stages (PipeMoE-style overlap). */
    int pipelineStages = 4;
    /** Expert-sharding parallelism instead of pure EP (Fig. 14(a)). */
    bool esp = false;
    /** Shadow slots per device. */
    int shadowSlots = 1;
    /** Balancing strategy. */
    BalancerKind balancer = BalancerKind::None;
    /**
     * Hide invasive migration behind dedicated NVMe channels (GPU
     * platforms have local disks; WSCs do not — Section III-C). Only
     * meaningful with an invasive balancer.
     */
    bool migrationViaDisk = false;
    /** Eq.(2) cumulative imbalance threshold. */
    double alpha = 1.0;
    /** Eq.(2) minimum iterations between invasive migrations. */
    int beta = 10;
    /** EMA factor for expert-load prediction. */
    double emaAlpha = 0.3;
    /**
     * Aggregate dispatch/combine flows into the per-(src, dst) byte
     * matrix before the all-to-all (the fast path). Disable only to
     * measure the pre-aggregation baseline in bench/perf_routing.
     */
    bool aggregateFlows = true;
    /**
     * Host-reload bandwidth (B/s) used when re-homing an expert after
     * device loss finds no reachable surviving replica: the weights
     * restream cold from host DRAM over the service fabric instead of
     * peer-to-peer over the mesh (fault recovery worst case).
     */
    double faultHostReloadBandwidth = 64e9;
    /** Gating / workload regime (expert count and top-k are taken from
     *  the model, not from this sub-config). */
    WorkloadConfig workload{};
};

/**
 * Dynamic per-iteration token demand, supplied by an online batching
 * layer (src/serve/) instead of the fixed EngineConfig budget. Either
 * component may be zero (e.g. a prefill-only admission burst or a pure
 * decode iteration); at least one must be positive to step the engine.
 */
struct IterationDemand
{
    /** Decode tokens per TP group this iteration. */
    int decodeTokensPerGroup = 0;
    /** Prefill-chunk tokens per TP group this iteration. */
    int prefillTokensPerGroup = 0;
    /**
     * Average context length (KV entries) of the decode batch; a
     * negative value falls back to EngineConfig::contextLen.
     */
    double contextLen = -1.0;

    /** Total tokens a TP group processes this iteration. */
    int tokensPerGroup() const
    {
        return decodeTokensPerGroup + prefillTokensPerGroup;
    }
};

/** Timeline breakdown of one simulated iteration (one sparse layer). */
struct IterationStats
{
    /** Per-device attention computation time. */
    double attnCompute = 0.0;
    /** Attention all-reduce time. */
    double allReduce = 0.0;
    /** MoE dispatch all-to-all time. */
    double dispatch = 0.0;
    /** MoE combine all-to-all time. */
    double combine = 0.0;
    /** Worst per-device expert execution time (compute + streaming). */
    double moeTime = 0.0;
    /** Compute component of the worst device. */
    double moeComputeOnly = 0.0;
    /** Weight-streaming component of the worst device. */
    double moeMemoryOnly = 0.0;
    /** ESP-mode all-reduce of expert partial sums (Fig. 14(a)). */
    double epAllReduce = 0.0;
    /** Invasive migration time exposed on the critical path. */
    double migrationOverhead = 0.0;
    /** Max routed tokens over devices. */
    double loadMax = 0.0;
    /** Mean routed tokens over devices. */
    double loadAvg = 0.0;
    /** Device imbalance degree (max-mean)/mean. */
    double imbalance = 0.0;
    /** Migrations planned this iteration. */
    int migrationsPlanned = 0;
    /** Hidden migrations completed this iteration (NI only). */
    int migrationsCompleted = 0;
    /** Hidden migrations still pending (NI only). */
    int migrationsPending = 0;
    /** Fault events this step() applied at its boundary (0 when an
     *  outer layer advanced the shared injector first). */
    int faultEventsApplied = 0;
    /** Critical-path expert re-homing time after device loss. */
    double faultRecoveryTime = 0.0;

    /** MoE all-to-all total. */
    double allToAll() const { return dispatch + combine; }

    /** Attention phase with compute/communication overlap. */
    double attnPhase(int stages) const;

    /** MoE phase with compute/communication overlap. */
    double moePhase(int stages) const;

    /** Iteration latency of the representative layer. */
    double layerTime(int stages) const
    {
        return attnPhase(stages) + moePhase(stages) + migrationOverhead +
            faultRecoveryTime;
    }
};

/**
 * Multi-iteration MoE serving simulator.
 */
class InferenceEngine
{
  public:
    /**
     * @param mapping Mapping (and topology) to simulate on; must
     *                outlive the engine.
     * @param cfg     Engine configuration.
     */
    InferenceEngine(const Mapping &mapping, const EngineConfig &cfg);

    /**
     * Re-arm this engine for a fresh simulation under @p cfg on the
     * same mapping, as if it had just been constructed — same RNG
     * stream, same placement, same balancer state, detached faults
     * and observability. The point of resetting instead of
     * reconstructing is scratch reuse: the per-iteration buffers
     * (traffic accumulators, routed-flow scratch, counts matrices,
     * collective buffers) keep their steady-state capacity, so a
     * sweep worker running many same-platform cells pays the big
     * allocations once instead of per cell. The determinism contract
     * is strict and test-pinned: a reset engine's timeline is bitwise
     * identical to a newly constructed engine's for any prior history
     * (tests/engine_test.cpp, tests/sweep_test.cpp).
     */
    void reset(const EngineConfig &cfg);

    /**
     * Simulate one iteration with the fixed per-schedule token budget
     * of the configuration and advance balancing state.
     */
    IterationStats step();

    /**
     * Simulate one iteration with an externally supplied token demand
     * (the serving layer's continuous-batching path). The fixed-budget
     * step() is a thin wrapper over this.
     */
    IterationStats step(const IterationDemand &demand);

    /** Simulate @p iterations and return all per-iteration stats. */
    std::vector<IterationStats> run(int iterations);

    /** Current expert placement. */
    const ExpertPlacement &placement() const { return placement_; }

    /**
     * The engine's workload generator. Mutable access so an online
     * serving layer can couple the gating mixture to the scenario mix
     * of the requests it actually admitted
     * (WorkloadGenerator::setScenarioMix()).
     */
    WorkloadGenerator &workload() { return workload_; }

    /** The configuration in use. */
    const EngineConfig &config() const { return cfg_; }

    /** Tokens per group for the configured scheduling mode. */
    int tokensPerGroup() const;

    /**
     * Attach a fault injector (src/fault/) whose events this engine
     * consumes at iteration boundaries: traffic retargets onto the
     * degraded topology, stragglers scale per-device compute, and lost
     * devices get their experts re-homed (recovery charged to the
     * iteration). Must be called before the first step(); the injector
     * must shadow this engine's topology and outlive it. A null or
     * empty-plan injector detaches — the engine then runs the exact
     * fault-free code path, bitwise identical to an unattached run.
     * Unsupported under ESP.
     */
    void attachFaults(FaultInjector *injector);

    /** Degraded overlay when faults are attached, else the mapping's. */
    const Topology &activeTopology() const;

    /**
     * Attach observability hooks (src/obs/). Must be called before the
     * first step(); the referenced registry/sink must outlive the
     * engine. Publication is purely additive — a run with hooks
     * attached computes bitwise the same IterationStats as one
     * without, and ObsHooks{} (all-null) detaches. Stat names live
     * under "engine."; trace spans are emitted on the engine's own
     * virtual clock (cumulative layerTime of the stepped iterations)
     * under the hooks' tracePid.
     */
    void attachObs(const ObsHooks &obs);

  private:
    /** (Re)create the balancer objects for cfg_.balancer. */
    void makeBalancer();

    /** Apply the fault boundary of the current iteration. */
    void syncFaults(IterationStats &stats);

    /** Publish stats/trace for the iteration just computed. */
    void publishObs(const IterationStats &stats);

    /** Critical-path cost of re-homing experts off a lost device. */
    double recoveryTime(const std::vector<ExpertRehoming> &rehomed) const;
    /** Attention compute time for the given token demand. */
    double attentionCompute(const IterationDemand &demand) const;

    /** The fixed-budget demand of the configured scheduling mode. */
    IterationDemand configuredDemand() const;

    const Mapping &mapping_;
    EngineConfig cfg_;
    CostModel cost_;
    WorkloadGenerator workload_;
    ExpertPlacement placement_;
    std::vector<double> emaLoads_;
    RebalanceTrigger trigger_;
    std::unique_ptr<Balancer> invasive_;
    std::unique_ptr<NiBalancer> nonInvasive_;
    int iteration_ = 0;

    // Fault state: null (the guaranteed-identical fast path) unless a
    // non-empty injector is attached. The engine reacts to injector
    // *state* — the topology epoch and the lost-device list — so a
    // serving layer sharing the injector may advance it first.
    FaultInjector *faults_ = nullptr;
    int faultTopoEpochSeen_ = 0;
    std::size_t faultLostSeen_ = 0;

    // Observability: null hooks are the guaranteed-identical fast path
    // (one pointer test per step). Handles are resolved at attach time
    // so the per-iteration publish is allocation- and lookup-free.
    ObsHooks obs_{};
    double traceNow_ = 0.0;
    std::uint64_t obsCompactionsSeen_ = 0;
    struct ObsHandles
    {
        StatRegistry::Handle iterations;
        StatRegistry::Handle attnCompute;
        StatRegistry::Handle allReduce;
        StatRegistry::Handle dispatch;
        StatRegistry::Handle combine;
        StatRegistry::Handle moe;
        StatRegistry::Handle layer;
        StatRegistry::Handle imbalance;
        StatRegistry::Handle migPlanned;
        StatRegistry::Handle migCompleted;
        StatRegistry::Handle migPending;
        StatRegistry::Handle faultEvents;
        StatRegistry::Handle faultRecovery;
        StatRegistry::Handle compactions;
    } obsHandles_{};

    // Per-iteration scratch, reused across step() calls so the hot
    // path performs no steady-state allocation. All mutable state of a
    // simulation lives here (or in the members above): the mapping and
    // topology are only ever read, which is what lets sweep workers
    // share one const System across threads.
    std::vector<std::vector<int>> countsScratch_;
    std::vector<double> expertLoadsScratch_;
    std::vector<double> espTokensScratch_;
    RoutedTraffic routedScratch_;
    PhaseTraffic a2aTraffic_;
    PhaseTraffic dispTraffic_;
    PhaseTraffic combTraffic_;
    // Collective buffers: attention all-reduce and ESP expert
    // all-reduce (the FTD ring orders themselves are memoised by the
    // mapping; see Mapping::ftdRings()).
    CollectiveScratch arScratch_;
    CollectiveScratch espScratch_;
};

} // namespace moentwine

#endif // MOENTWINE_ENGINE_ENGINE_HH
