#include "engine/engine.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "engine/token_router.hh"
#include "fault/fault_injector.hh"
#include "network/collectives.hh"

namespace moentwine {

namespace {

/** PipeMoE-style micro-batch overlap of a compute and a comm stream. */
double
overlap(double comp, double comm, int stages)
{
    MOE_ASSERT(stages >= 1, "pipeline stages must be >= 1");
    return std::max(comp, comm) + std::min(comp, comm) / stages;
}

} // namespace

double
IterationStats::attnPhase(int stages) const
{
    return overlap(attnCompute, allReduce, stages);
}

double
IterationStats::moePhase(int stages) const
{
    return overlap(moeTime, allToAll() + epAllReduce, stages);
}

InferenceEngine::InferenceEngine(const Mapping &mapping,
                                 const EngineConfig &cfg)
    : mapping_(mapping),
      cfg_(cfg),
      cost_(cfg.device, cfg.gemmEfficiency),
      workload_([&] {
          WorkloadConfig w = cfg.workload;
          w.numExperts = cfg.model.expertsTotal;
          w.topK = cfg.model.expertsActivated;
          return w;
      }()),
      placement_(cfg.model.expertsTotal, mapping.numDevices(),
                 cfg.shadowSlots),
      emaLoads_(static_cast<std::size_t>(cfg.model.expertsTotal), 0.0),
      trigger_(cfg.alpha,
               cfg.balancer == BalancerKind::NonInvasive ? 0 : cfg.beta),
      a2aTraffic_(mapping.topology()),
      dispTraffic_(mapping.topology()),
      combTraffic_(mapping.topology()),
      arScratch_(mapping.topology()),
      espScratch_(mapping.topology())
{
    makeBalancer();
}

void
InferenceEngine::makeBalancer()
{
    invasive_.reset();
    nonInvasive_.reset();
    switch (cfg_.balancer) {
      case BalancerKind::None:
        break;
      case BalancerKind::Greedy:
        invasive_ = std::make_unique<GreedyBalancer>();
        break;
      case BalancerKind::TopologyAware:
        invasive_ =
            std::make_unique<TopologyAwareBalancer>(mapping_.topology());
        break;
      case BalancerKind::NonInvasive:
        nonInvasive_ =
            std::make_unique<NiBalancer>(mapping_, cfg_.model.expertBytes);
        break;
    }
}

void
InferenceEngine::reset(const EngineConfig &cfg)
{
    // Mirror of the constructor's member initialization, in place: the
    // simulation state (config, cost model, workload stream, placement,
    // EMA loads, trigger, balancers, iteration counter) is rebuilt from
    // scratch; the per-iteration scratch members below them in the
    // class are deliberately NOT touched — every step() overwrites
    // their contents before reading them, so only their capacity
    // survives, which is the reuse win and is unobservable in results.
    cfg_ = cfg;
    cost_ = CostModel(cfg.device, cfg.gemmEfficiency);
    {
        WorkloadConfig w = cfg.workload;
        w.numExperts = cfg.model.expertsTotal;
        w.topK = cfg.model.expertsActivated;
        workload_ = WorkloadGenerator(w);
    }
    placement_ = ExpertPlacement(cfg.model.expertsTotal,
                                 mapping_.numDevices(), cfg.shadowSlots);
    emaLoads_.assign(static_cast<std::size_t>(cfg.model.expertsTotal),
                     0.0);
    trigger_ = RebalanceTrigger(
        cfg.alpha,
        cfg.balancer == BalancerKind::NonInvasive ? 0 : cfg.beta);
    makeBalancer();
    iteration_ = 0;
    faults_ = nullptr;
    faultTopoEpochSeen_ = 0;
    faultLostSeen_ = 0;
    obs_ = ObsHooks{};
    traceNow_ = 0.0;
    // The accumulator's compaction count is cumulative across resets
    // (an obs counter); re-baseline so a later attachObs() publishes
    // only this simulation's compactions, exactly as a fresh engine
    // would.
    obsCompactionsSeen_ = routedScratch_.pairBytes.compactions();
    obsHandles_ = ObsHandles{};
}

void
InferenceEngine::attachFaults(FaultInjector *injector)
{
    MOE_ASSERT(iteration_ == 0, "attachFaults after the first step");
    if (injector == nullptr || injector->empty()) {
        faults_ = nullptr;
        return;
    }
    MOE_ASSERT(!cfg_.esp, "fault injection is unsupported under ESP");
    MOE_ASSERT(&injector->baseTopology() == &mapping_.topology(),
               "fault injector must shadow the engine's topology");
    faults_ = injector;
}

const Topology &
InferenceEngine::activeTopology() const
{
    return faults_ != nullptr ? faults_->topology() : mapping_.topology();
}

void
InferenceEngine::attachObs(const ObsHooks &obs)
{
    MOE_ASSERT(iteration_ == 0, "attachObs after the first step");
    obs_ = obs;
    traceNow_ = 0.0;
    // Baseline, not zero: on a reset (reused) engine the accumulator's
    // cumulative compaction count is already positive, and only the
    // compactions of THIS simulation may be published. Identical to 0
    // on a freshly constructed engine.
    obsCompactionsSeen_ = routedScratch_.pairBytes.compactions();
    if (obs_.stats != nullptr) {
        StatRegistry &s = *obs_.stats;
        obsHandles_.iterations = s.counter("engine.iterations");
        obsHandles_.attnCompute =
            s.distribution("engine.phase.attn_compute_s");
        obsHandles_.allReduce = s.distribution("engine.phase.all_reduce_s");
        obsHandles_.dispatch = s.distribution("engine.phase.dispatch_s");
        obsHandles_.combine = s.distribution("engine.phase.combine_s");
        obsHandles_.moe = s.distribution("engine.phase.moe_s");
        obsHandles_.layer = s.distribution("engine.iter.layer_s");
        obsHandles_.imbalance = s.distribution("engine.iter.imbalance");
        obsHandles_.migPlanned = s.counter("engine.migrations.planned");
        obsHandles_.migCompleted =
            s.counter("engine.migrations.completed");
        obsHandles_.migPending = s.gauge("engine.migrations.pending");
        obsHandles_.faultEvents = s.counter("engine.fault.events");
        obsHandles_.faultRecovery =
            s.distribution("engine.fault.recovery_s");
        obsHandles_.compactions =
            s.counter("engine.traffic.compactions");
    }
    if (obs_.trace != nullptr) {
        obs_.trace->processName(obs_.tracePid, "engine");
        obs_.trace->threadName(obs_.tracePid, 0, "iterations");
    }
}

void
InferenceEngine::publishObs(const IterationStats &stats)
{
    const int stages = cfg_.pipelineStages;
    if (obs_.stats != nullptr) {
        StatRegistry &s = *obs_.stats;
        s.add(obsHandles_.iterations);
        s.observe(obsHandles_.attnCompute, stats.attnCompute);
        s.observe(obsHandles_.allReduce, stats.allReduce);
        s.observe(obsHandles_.dispatch, stats.dispatch);
        s.observe(obsHandles_.combine, stats.combine);
        s.observe(obsHandles_.moe, stats.moeTime);
        s.observe(obsHandles_.layer, stats.layerTime(stages));
        s.observe(obsHandles_.imbalance, stats.imbalance);
        if (stats.migrationsPlanned > 0)
            s.add(obsHandles_.migPlanned, stats.migrationsPlanned);
        if (stats.migrationsCompleted > 0)
            s.add(obsHandles_.migCompleted, stats.migrationsCompleted);
        s.set(obsHandles_.migPending, stats.migrationsPending);
        if (stats.faultEventsApplied > 0)
            s.add(obsHandles_.faultEvents, stats.faultEventsApplied);
        if (stats.faultRecoveryTime > 0.0)
            s.observe(obsHandles_.faultRecovery, stats.faultRecoveryTime);
        const std::uint64_t compactions =
            routedScratch_.pairBytes.compactions();
        if (compactions > obsCompactionsSeen_) {
            s.add(obsHandles_.compactions,
                  static_cast<std::int64_t>(compactions -
                                            obsCompactionsSeen_));
            obsCompactionsSeen_ = compactions;
        }
    }
    if (obs_.trace != nullptr) {
        TraceSink &t = *obs_.trace;
        const int pid = obs_.tracePid;
        double cursor = traceNow_;
        const double attn = stats.attnPhase(stages);
        const double moe = stats.moePhase(stages);
        t.span(pid, 0, "engine", "attn", cursor, cursor + attn,
               {{"iteration", TraceSink::num(
                                  static_cast<long long>(iteration_))}});
        cursor += attn;
        t.span(pid, 0, "engine", "moe", cursor, cursor + moe,
               {{"imbalance", TraceSink::num(stats.imbalance)}});
        cursor += moe;
        if (stats.migrationOverhead > 0.0) {
            t.span(pid, 0, "engine", "migration", cursor,
                   cursor + stats.migrationOverhead,
                   {{"planned", TraceSink::num(static_cast<long long>(
                                    stats.migrationsPlanned))}});
            cursor += stats.migrationOverhead;
        }
        if (stats.faultRecoveryTime > 0.0) {
            t.span(pid, 0, "engine", "fault_recovery", cursor,
                   cursor + stats.faultRecoveryTime);
            cursor += stats.faultRecoveryTime;
        }
        if (stats.faultEventsApplied > 0) {
            t.instant(pid, 0, "fault", "fault_events", traceNow_,
                      {{"applied", TraceSink::num(static_cast<long long>(
                                       stats.faultEventsApplied))}});
        }
        traceNow_ = cursor;
    }
}

void
InferenceEngine::syncFaults(IterationStats &stats)
{
    stats.faultEventsApplied = faults_->advanceTo(iteration_);
    if (faults_->topologyEpoch() != faultTopoEpochSeen_) {
        // Link state changed: re-point every traffic accumulator at
        // the overlay (same link ids, so buffers survive). Safe at the
        // boundary — all are refilled from scratch each iteration.
        faultTopoEpochSeen_ = faults_->topologyEpoch();
        const Topology &topo = faults_->topology();
        a2aTraffic_.retarget(topo);
        dispTraffic_.retarget(topo);
        combTraffic_.retarget(topo);
        arScratch_.retarget(topo);
        espScratch_.retarget(topo);
    }
    const auto &lost = faults_->lostDevices();
    while (faultLostSeen_ < lost.size()) {
        const auto rehomed =
            placement_.markDeviceLost(lost[faultLostSeen_++]);
        stats.faultRecoveryTime += recoveryTime(rehomed);
    }
}

double
InferenceEngine::recoveryTime(
    const std::vector<ExpertRehoming> &rehomed) const
{
    if (rehomed.empty())
        return 0.0;
    const Topology &topo = activeTopology();
    // Rare event: a fresh PhaseTraffic here is fine. Transfers run
    // concurrently like invasive migration — Eq.(1) per flow plus
    // shared-link serialisation.
    PhaseTraffic recovery(topo);
    double slowest = 0.0;
    for (const ExpertRehoming &r : rehomed) {
        // Nearest reachable surviving replica supplies the weights;
        // lowest device id breaks hop-count ties.
        DeviceId src = -1;
        int bestHops = 0;
        for (const DeviceId c : placement_.replicasOf(r.expert)) {
            if (c == r.to || placement_.deviceLost(c) ||
                !faults_->reachable(c, r.to)) {
                continue;
            }
            const int h = topo.hops(c, r.to);
            if (src < 0 || h < bestHops ||
                (h == bestHops && c < src)) {
                src = c;
                bestHops = h;
            }
        }
        if (src >= 0) {
            recovery.addFlow(src, r.to, cfg_.model.expertBytes);
            slowest = std::max(slowest,
                               flowTime(topo, src, r.to,
                                        cfg_.model.expertBytes));
        } else {
            // No reachable replica: cold host reload.
            slowest = std::max(slowest,
                               cfg_.model.expertBytes /
                                   cfg_.faultHostReloadBandwidth);
        }
    }
    return std::max(slowest, recovery.phaseTime());
}

IterationDemand
InferenceEngine::configuredDemand() const
{
    IterationDemand demand;
    switch (cfg_.schedule) {
      case SchedulingMode::PrefillOnly:
        demand.prefillTokensPerGroup = cfg_.prefillTokensPerGroup;
        return demand;
      case SchedulingMode::DecodeOnly:
        demand.decodeTokensPerGroup = cfg_.decodeTokensPerGroup;
        return demand;
      case SchedulingMode::Hybrid:
        demand.decodeTokensPerGroup = cfg_.decodeTokensPerGroup;
        demand.prefillTokensPerGroup = cfg_.prefillTokensPerGroup / 4;
        return demand;
    }
    panic("unknown scheduling mode");
}

int
InferenceEngine::tokensPerGroup() const
{
    return configuredDemand().tokensPerGroup();
}

double
InferenceEngine::attentionCompute(const IterationDemand &demand) const
{
    const double ctx =
        demand.contextLen < 0.0 ? cfg_.contextLen : demand.contextLen;
    double t = 0.0;
    if (demand.decodeTokensPerGroup > 0) {
        t += cost_.attentionTime(cfg_.model,
                                 demand.decodeTokensPerGroup,
                                 mapping_.tp(), ctx, Stage::Decode);
    }
    if (demand.prefillTokensPerGroup > 0) {
        t += cost_.attentionTime(cfg_.model,
                                 demand.prefillTokensPerGroup,
                                 mapping_.tp(), ctx, Stage::Prefill);
    }
    return t;
}

IterationStats
InferenceEngine::step()
{
    return step(configuredDemand());
}

IterationStats
InferenceEngine::step(const IterationDemand &demand)
{
    MOE_ASSERT(demand.decodeTokensPerGroup >= 0 &&
                   demand.prefillTokensPerGroup >= 0,
               "negative iteration demand");
    MOE_ASSERT(demand.tokensPerGroup() > 0,
               "iteration demand must carry at least one token");
    IterationStats stats;
    const int tokens = demand.tokensPerGroup();
    const double tokenBytes = cfg_.model.tokenBytes();

    // --- Fault boundary ----------------------------------------------------
    // Null faults_ is the guaranteed fast path: everything below then
    // follows the pre-fault code exactly (factors of 1.0, the
    // mapping's own topology), bitwise identical to an unattached run.
    if (faults_ != nullptr)
        syncFaults(stats);

    // --- Attention phase -------------------------------------------------
    // TP shards run in lockstep, so one straggler in the group holds
    // every attention shard back by its factor.
    stats.attnCompute = attentionCompute(demand) *
        (faults_ != nullptr ? faults_->maxLiveComputeFactor() : 1.0);
    stats.allReduce = mapping_.allReduceInto(
        activeTopology(), tokens * tokenBytes, cfg_.retainAllGather,
        arScratch_);

    // --- Gating -----------------------------------------------------------
    workload_.sampleCountsInto(iteration_, 0, tokens, mapping_.dp(),
                               countsScratch_);

    // --- MoE phase ---------------------------------------------------------
    a2aTraffic_.clear();
    const std::vector<double> *expertLoads = nullptr;
    const std::vector<double> *deviceTokens = nullptr;
    if (cfg_.esp) {
        // Expert-sharding: tokens stay in their FTD; experts are sliced
        // across the FTD's devices; partial sums are all-reduced inside
        // each domain.
        WorkloadGenerator::expertLoadsInto(
            countsScratch_, cfg_.model.expertsTotal, expertLoadsScratch_);
        expertLoads = &expertLoadsScratch_;
        const double numFtds =
            static_cast<double>(mapping_.ftds().size());
        const double ftdSize =
            static_cast<double>(mapping_.ftds().front().size());
        const double perFtdTokens =
            static_cast<double>(mapping_.dp()) * tokens / numFtds;
        stats.epAllReduce = ringCollectiveInto(
            mapping_.topology(), mapping_.ftdRings(),
            perFtdTokens * tokenBytes, RingOp::AllReduce,
            mapping_.staggeredRings(), espScratch_);
        a2aTraffic_.merge(espScratch_.traffic);

        const double perDeviceTokens =
            perFtdTokens * cfg_.model.expertsActivated / ftdSize;
        const double perDeviceExperts =
            cfg_.model.expertsTotal / numFtds / ftdSize;
        const MoeDeviceCost c = cost_.moeDevice(
            cfg_.model, perDeviceTokens, perDeviceExperts);
        stats.moeTime = c.total();
        stats.moeComputeOnly = c.computeTime;
        stats.moeMemoryOnly = c.memoryTime;
        espTokensScratch_.assign(
            static_cast<std::size_t>(mapping_.numDevices()),
            perDeviceTokens);
        deviceTokens = &espTokensScratch_;
    } else {
        routeTokens(mapping_, placement_, countsScratch_, tokenBytes,
                    cfg_.retainAllGather, cfg_.model.expertsActivated,
                    routedScratch_, cfg_.aggregateFlows);
        expertLoads = &routedScratch_.expertLoads;
        stats.dispatch =
            allToAllInto(routedScratch_.dispatch, dispTraffic_);
        stats.combine =
            allToAllInto(routedScratch_.combine, combTraffic_);
        a2aTraffic_.merge(dispTraffic_);
        a2aTraffic_.merge(combTraffic_);

        for (DeviceId d = 0; d < mapping_.numDevices(); ++d) {
            const MoeDeviceCost c = cost_.moeDevice(
                cfg_.model,
                routedScratch_
                    .tokensPerDevice[static_cast<std::size_t>(d)],
                routedScratch_.activeExpertsPerDevice[
                    static_cast<std::size_t>(d)],
                faults_ != nullptr ? faults_->computeFactor(d) : 1.0);
            if (c.total() > stats.moeTime) {
                stats.moeTime = c.total();
                stats.moeComputeOnly = c.computeTime;
                stats.moeMemoryOnly = c.memoryTime;
            }
        }
        deviceTokens = &routedScratch_.tokensPerDevice;
    }

    // --- Load statistics ---------------------------------------------------
    // Under faults the fleet shrank: lost devices route zero tokens
    // and would drag the mean down, so imbalance is over live devices.
    double sum = 0.0;
    std::size_t liveCount = 0;
    for (std::size_t d = 0; d < deviceTokens->size(); ++d) {
        if (faults_ != nullptr &&
            faults_->deviceLost(static_cast<DeviceId>(d))) {
            continue;
        }
        const double t = (*deviceTokens)[d];
        stats.loadMax = std::max(stats.loadMax, t);
        sum += t;
        ++liveCount;
    }
    stats.loadAvg = sum / static_cast<double>(liveCount);
    stats.imbalance = stats.loadAvg > 0.0
        ? (stats.loadMax - stats.loadAvg) / stats.loadAvg
        : 0.0;

    // --- Expert-load prediction (EMA) ---------------------------------------
    for (std::size_t e = 0; e < emaLoads_.size(); ++e) {
        emaLoads_[e] = cfg_.emaAlpha * (*expertLoads)[e] +
            (1.0 - cfg_.emaAlpha) * emaLoads_[e];
    }

    // --- Balancing ----------------------------------------------------------
    if (cfg_.balancer != BalancerKind::None &&
        trigger_.poll(stats.imbalance)) {
        if (invasive_) {
            const auto steps =
                invasive_->rebalance(emaLoads_, placement_);
            stats.migrationsPlanned = static_cast<int>(steps.size());
            // Invasive migration interrupts inference: transfers run
            // concurrently, each paying the Eq.(1) store-and-forward
            // cost of its route; shared links add serialisation.
            PhaseTraffic mig(activeTopology());
            double slowest = 0.0;
            for (const MigrationStep &s : steps) {
                mig.addFlow(s.srcDevice, s.dstDevice,
                            cfg_.model.expertBytes);
                slowest = std::max(
                    slowest, flowTime(activeTopology(), s.srcDevice,
                                      s.dstDevice,
                                      cfg_.model.expertBytes));
            }
            stats.migrationOverhead = cfg_.migrationViaDisk
                ? 0.0
                : std::max(slowest, mig.phaseTime());
        } else if (nonInvasive_) {
            stats.migrationsPlanned =
                nonInvasive_->plan(emaLoads_, placement_);
        }
    }

    // --- Hidden migration stream (NI) ---------------------------------------
    if (nonInvasive_) {
        // One simulated iteration stands for sparseLayers real layers,
        // each opening one attention and one MoE idle window.
        const double layers = cfg_.model.sparseLayers;
        const double attnWindow =
            stats.attnPhase(cfg_.pipelineStages) * layers;
        const double moeWindow =
            stats.moePhase(cfg_.pipelineStages) * layers;
        stats.migrationsCompleted =
            nonInvasive_->advanceAttention(arScratch_.traffic, attnWindow,
                                           placement_) +
            nonInvasive_->advanceMoe(a2aTraffic_, moeWindow, placement_);
        stats.migrationsPending =
            static_cast<int>(nonInvasive_->pendingCount());
    }

    // --- Observability -------------------------------------------------------
    // Purely additive: null hooks skip both branches; attached hooks
    // read the finished stats and never feed back into them.
    if (obs_.stats != nullptr || obs_.trace != nullptr)
        publishObs(stats);

    ++iteration_;
    return stats;
}

std::vector<IterationStats>
InferenceEngine::run(int iterations)
{
    MOE_ASSERT(iterations > 0, "run requires at least one iteration");
    std::vector<IterationStats> out;
    out.reserve(static_cast<std::size_t>(iterations));
    for (int i = 0; i < iterations; ++i)
        out.push_back(step());
    return out;
}

} // namespace moentwine
