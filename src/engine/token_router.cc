#include "engine/token_router.hh"

#include "common/logging.hh"

namespace moentwine {

namespace {

/**
 * Emit dispatch/combine flows for one routed token batch. The
 * aggregated path accumulates per-(src, dst) bytes into out.pairBytes;
 * the legacy path appends one flow per (group, rank, replica) triple.
 */
void
accumulateFlows(const Mapping &mapping, const ExpertPlacement &placement,
                const std::vector<std::vector<int>> &counts,
                double tokenBytes, bool retainAllGather, int topk,
                RoutedTraffic &out, bool aggregate)
{
    const int tp = mapping.tp();
    // When the source choice ignores the shard rank, the tp identical
    // per-shard contributions collapse into one per-replica volume.
    const bool collapseRanks = aggregate &&
        mapping.dispatchSourceRankInvariant(retainAllGather);
    for (int g = 0; g < mapping.dp(); ++g) {
        const auto &row = counts[static_cast<std::size_t>(g)];
        MOE_ASSERT(row.size() ==
                       static_cast<std::size_t>(placement.numExperts()),
                   "counts row width must equal expert count");
        for (int e = 0; e < placement.numExperts(); ++e) {
            const int count = row[static_cast<std::size_t>(e)];
            if (count == 0)
                continue;
            const auto &replicas = placement.replicasOf(e);
            const double perReplica =
                static_cast<double>(count) /
                static_cast<double>(replicas.size());
            const double perShard = perReplica / tp;
            for (const DeviceId dev : replicas) {
                out.tokensPerDevice[static_cast<std::size_t>(dev)] +=
                    perReplica;
                const int ranks = collapseRanks ? 1 : tp;
                const double perRank = collapseRanks ? perReplica
                                                    : perShard;
                for (int r = 0; r < ranks; ++r) {
                    const DeviceId src = mapping.dispatchSourceCached(
                        g, r, dev, retainAllGather);
                    const double bytes = perRank * tokenBytes *
                        mapping.dispatchDedupFactor(src, dev, topk);
                    if (src == dev || bytes <= 0.0)
                        continue;
                    if (aggregate) {
                        out.pairBytes.add(src, dev, bytes);
                    } else {
                        out.dispatch.push_back(Flow{src, dev, bytes});
                        out.combine.push_back(Flow{dev, src, bytes});
                    }
                }
            }
        }
    }
}

} // namespace

void
routeTokens(const Mapping &mapping, const ExpertPlacement &placement,
            const std::vector<std::vector<int>> &counts, double tokenBytes,
            bool retainAllGather, int topk, RoutedTraffic &out,
            bool aggregate)
{
    const int devices = mapping.numDevices();
    MOE_ASSERT(counts.size() == static_cast<std::size_t>(mapping.dp()),
               "counts must have one row per DP group");
    MOE_ASSERT(placement.numDevices() == devices,
               "placement/mapping device count mismatch");

    out.dispatch.clear();
    out.combine.clear();
    out.tokensPerDevice.assign(static_cast<std::size_t>(devices), 0.0);
    out.activeExpertsPerDevice.assign(static_cast<std::size_t>(devices),
                                      0);
    if (aggregate) {
        out.pairBytes.reset(devices, mapping.trafficStorage());
    } else {
        out.pairBytes.reset(0, TrafficStorageKind::Dense);
    }

    // Per-expert total loads, computed once (the active-expert scan
    // below and the engine's EMA both read them).
    out.expertLoads.assign(
        static_cast<std::size_t>(placement.numExperts()), 0.0);
    for (const auto &row : counts) {
        MOE_ASSERT(row.size() == out.expertLoads.size(),
                   "counts row width must equal expert count");
        for (std::size_t e = 0; e < row.size(); ++e)
            out.expertLoads[e] += row[e];
    }

    accumulateFlows(mapping, placement, counts, tokenBytes,
                    retainAllGather, topk, out, aggregate);

    if (aggregate) {
        // Materialise the non-zero pairs as flows in tile-major order
        // (cache-blocked so the downstream addFlow reduction walks
        // routes with hot next-hop rows); combine mirrors dispatch
        // (same bytes, reversed direction).
        out.pairBytes.forEachTiled(
            [&out](DeviceId s, DeviceId d, double bytes) {
                out.dispatch.push_back(Flow{s, d, bytes});
                out.combine.push_back(Flow{d, s, bytes});
            });
    }

    // Active experts per device (for weight-streaming time), answered
    // from the precomputed per-expert loads instead of rescanning the
    // counts matrix per hosted expert.
    for (DeviceId d = 0; d < devices; ++d) {
        int active = 0;
        for (const int e : placement.expertsOn(d)) {
            if (out.expertLoads[static_cast<std::size_t>(e)] > 0.0)
                ++active;
        }
        out.activeExpertsPerDevice[static_cast<std::size_t>(d)] = active;
    }
}

RoutedTraffic
routeTokens(const Mapping &mapping, const ExpertPlacement &placement,
            const std::vector<std::vector<int>> &counts, double tokenBytes,
            bool retainAllGather, int topk)
{
    RoutedTraffic out;
    routeTokens(mapping, placement, counts, tokenBytes, retainAllGather,
                topk, out);
    return out;
}

} // namespace moentwine
