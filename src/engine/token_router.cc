#include "engine/token_router.hh"

#include "common/logging.hh"

namespace moentwine {

RoutedTraffic
routeTokens(const Mapping &mapping, const ExpertPlacement &placement,
            const std::vector<std::vector<int>> &counts, double tokenBytes,
            bool retainAllGather, int topk)
{
    const int devices = mapping.numDevices();
    const int tp = mapping.tp();
    MOE_ASSERT(counts.size() == static_cast<std::size_t>(mapping.dp()),
               "counts must have one row per DP group");
    MOE_ASSERT(placement.numDevices() == devices,
               "placement/mapping device count mismatch");

    RoutedTraffic out;
    out.tokensPerDevice.assign(static_cast<std::size_t>(devices), 0.0);
    out.activeExpertsPerDevice.assign(static_cast<std::size_t>(devices),
                                      0);

    for (int g = 0; g < mapping.dp(); ++g) {
        const auto &row = counts[static_cast<std::size_t>(g)];
        MOE_ASSERT(row.size() ==
                       static_cast<std::size_t>(placement.numExperts()),
                   "counts row width must equal expert count");
        for (int e = 0; e < placement.numExperts(); ++e) {
            const int count = row[static_cast<std::size_t>(e)];
            if (count == 0)
                continue;
            const auto &replicas = placement.replicasOf(e);
            const double perReplica =
                static_cast<double>(count) /
                static_cast<double>(replicas.size());
            const double perShard = perReplica / tp;
            for (const DeviceId dev : replicas) {
                out.tokensPerDevice[static_cast<std::size_t>(dev)] +=
                    perReplica;
                for (int r = 0; r < tp; ++r) {
                    const DeviceId src = mapping.dispatchSource(
                        g, r, dev, retainAllGather);
                    const double bytes = perShard * tokenBytes *
                        mapping.dispatchDedupFactor(src, dev, topk);
                    if (src != dev && bytes > 0.0) {
                        out.dispatch.push_back(Flow{src, dev, bytes});
                        out.combine.push_back(Flow{dev, src, bytes});
                    }
                }
            }
        }
    }

    // Active experts per device (for weight-streaming time).
    for (DeviceId d = 0; d < devices; ++d) {
        int active = 0;
        for (const int e : placement.expertsOn(d)) {
            double load = 0.0;
            for (const auto &row : counts)
                load += row[static_cast<std::size_t>(e)];
            if (load > 0.0)
                ++active;
        }
        out.activeExpertsPerDevice[static_cast<std::size_t>(d)] = active;
    }
    return out;
}

} // namespace moentwine
