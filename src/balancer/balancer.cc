#include "balancer/balancer.hh"

#include <algorithm>
#include <limits>
#include <set>
#include <utility>

#include "common/logging.hh"

namespace moentwine {

RebalanceTrigger::RebalanceTrigger(double alpha, int beta)
    : alpha_(alpha), beta_(beta), sinceLast_(beta)
{
    MOE_ASSERT(alpha > 0.0, "alpha must be positive");
    MOE_ASSERT(beta >= 0, "beta must be non-negative");
}

bool
RebalanceTrigger::poll(double imbalance)
{
    MOE_ASSERT(imbalance >= 0.0, "imbalance must be non-negative");
    accumulated_ += imbalance;
    if (accumulated_ > alpha_ && sinceLast_ >= beta_) {
        accumulated_ = 0.0;
        sinceLast_ = 0;
        return true;
    }
    ++sinceLast_;
    return false;
}

namespace {

/** Destination/source policy for the shared replication loop. */
struct ReplicationPolicy
{
    /** Pick the destination among cold candidate devices. */
    DeviceId (*chooseDst)(const Topology *topo,
                          const ExpertPlacement &placement,
                          const std::vector<double> &heats,
                          const std::vector<DeviceId> &candidates,
                          int expert);
    /** Pick the replica the weights are copied from. */
    DeviceId (*chooseSrc)(const Topology *topo,
                          const std::vector<DeviceId> &replicas,
                          DeviceId dst);
};

/**
 * Algorithm 1's core loop: repeatedly replicate the most loaded expert
 * of the hottest device onto a colder device until no improvement is
 * possible. Returns the (expert, dst) additions in order.
 */
std::vector<std::pair<int, DeviceId>>
replicationLoop(const std::vector<double> &loads,
                ExpertPlacement &placement, const Topology *topo,
                const ReplicationPolicy &policy)
{
    std::vector<std::pair<int, DeviceId>> added;
    const int maxAdds = placement.numDevices() * placement.shadowSlots();

    // Track loads so each round reads the incrementally maintained
    // heat vector and every addReplica() updates it in O(replicas) —
    // instead of the O(devices × experts) recompute per round.
    placement.setExpertLoads(loads);
    for (int round = 0; round < maxAdds; ++round) {
        const std::vector<double> &heats = placement.heats();
        const auto hottest = static_cast<DeviceId>(
            std::max_element(heats.begin(), heats.end()) - heats.begin());

        // Most loaded per-replica share on the hottest device.
        int srcExpert = -1;
        double share = 0.0;
        for (const int e : placement.expertsOn(hottest)) {
            const double s = loads[static_cast<std::size_t>(e)] /
                placement.numReplicas(e);
            if (s > share) {
                share = s;
                srcExpert = e;
            }
        }
        if (srcExpert < 0 || share <= 0.0)
            break; // nothing worth replicating

        // Cold set (paper line 5): devices whose heat would stay below
        // the current peak after hosting one more replica share, with a
        // free slot and no existing replica. Adding the new share to
        // the candidate keeps the global peak strictly decreasing.
        const double newShare = loads[static_cast<std::size_t>(
                                    srcExpert)] /
            (placement.numReplicas(srcExpert) + 1);
        std::vector<DeviceId> cold;
        for (DeviceId d = 0; d < placement.numDevices(); ++d) {
            if (d == hottest || placement.freeSlots(d) <= 0 ||
                placement.hosts(d, srcExpert)) {
                continue;
            }
            if (heats[static_cast<std::size_t>(d)] + newShare <
                heats[static_cast<std::size_t>(hottest)]) {
                cold.push_back(d);
            }
        }
        if (cold.empty())
            break; // line 6: no capable destination remains

        const DeviceId dst =
            policy.chooseDst(topo, placement, heats, cold, srcExpert);
        placement.addReplica(srcExpert, dst);
        added.emplace_back(srcExpert, dst);
    }
    placement.clearExpertLoads();
    return added;
}

DeviceId
coldestDst(const Topology *, const ExpertPlacement &,
           const std::vector<double> &heats,
           const std::vector<DeviceId> &candidates, int)
{
    DeviceId best = candidates.front();
    for (const DeviceId d : candidates) {
        if (heats[static_cast<std::size_t>(d)] <
            heats[static_cast<std::size_t>(best)]) {
            best = d;
        }
    }
    return best;
}

DeviceId
nearestDst(const Topology *topo, const ExpertPlacement &placement,
           const std::vector<double> &heats,
           const std::vector<DeviceId> &candidates, int expert)
{
    DeviceId best = candidates.front();
    int bestHops = std::numeric_limits<int>::max();
    for (const DeviceId d : candidates) {
        int h = std::numeric_limits<int>::max();
        for (const DeviceId r : placement.replicasOf(expert))
            h = std::min(h, topo->hops(r, d));
        if (h < bestHops ||
            (h == bestHops && heats[static_cast<std::size_t>(d)] <
                                  heats[static_cast<std::size_t>(best)])) {
            bestHops = h;
            best = d;
        }
    }
    return best;
}

DeviceId
firstReplicaSrc(const Topology *, const std::vector<DeviceId> &replicas,
                DeviceId)
{
    return replicas.front();
}

DeviceId
nearestReplicaSrc(const Topology *topo,
                  const std::vector<DeviceId> &replicas, DeviceId dst)
{
    DeviceId best = replicas.front();
    int bestHops = std::numeric_limits<int>::max();
    for (const DeviceId r : replicas) {
        const int h = topo->hops(r, dst);
        if (h < bestHops) {
            bestHops = h;
            best = r;
        }
    }
    return best;
}

/**
 * Shared rebalance driver: rebuild the target from native, run the
 * loop, and diff against the previous replica set to derive the weight
 * copies actually required.
 */
std::vector<MigrationStep>
rebalanceWith(const std::vector<double> &loads, ExpertPlacement &placement,
              const Topology *topo, const ReplicationPolicy &policy)
{
    // Snapshot the replicas present before re-planning: copies to a
    // device that already held the expert are free.
    std::set<std::pair<int, DeviceId>> before;
    for (int e = 0; e < placement.numExperts(); ++e)
        for (const DeviceId d : placement.replicasOf(e))
            before.emplace(e, d);

    placement.resetToNative();
    const auto added = replicationLoop(loads, placement, topo, policy);

    std::vector<MigrationStep> steps;
    for (const auto &[expert, dst] : added) {
        if (before.count({expert, dst}))
            continue;
        // Copy sources must hold the weights *now*: pick among the
        // replicas present before the re-plan.
        std::vector<DeviceId> holders;
        for (const auto &[e, d] : before)
            if (e == expert)
                holders.push_back(d);
        MOE_ASSERT(!holders.empty(), "expert with no prior replica");
        const DeviceId src = policy.chooseSrc(topo, holders, dst);
        steps.push_back(MigrationStep{expert, src, dst});
    }
    return steps;
}

} // namespace

std::vector<MigrationStep>
GreedyBalancer::rebalance(const std::vector<double> &expertLoads,
                          ExpertPlacement &placement)
{
    const ReplicationPolicy policy{coldestDst, firstReplicaSrc};
    return rebalanceWith(expertLoads, placement, nullptr, policy);
}

TopologyAwareBalancer::TopologyAwareBalancer(const Topology &topo)
    : topo_(topo)
{
}

std::vector<MigrationStep>
TopologyAwareBalancer::rebalance(const std::vector<double> &expertLoads,
                                 ExpertPlacement &placement)
{
    const ReplicationPolicy policy{nearestDst, nearestReplicaSrc};
    return rebalanceWith(expertLoads, placement, &topo_, policy);
}

} // namespace moentwine
