/**
 * @file
 * Expert load balancers: the Eq.(2) rebalance trigger, the EPLB-style
 * greedy balancer, and the topology-aware balancer of Algorithm 1.
 *
 * Both balancers plan a *target* placement from the predicted expert
 * loads: starting from the native placement, they repeatedly replicate
 * the most loaded expert of the hottest device onto a colder device
 * until peak heat can no longer be reduced. They differ in destination
 * choice:
 *  - Greedy (EPLB): the globally coldest device with a free slot,
 *    copied from the expert's first (native) replica — oblivious to
 *    distance, hence long invasive migrations;
 *  - Topology-aware (Algorithm 1): among the devices whose heat would
 *    stay below the current peak, the one nearest to an existing
 *    replica — same balance quality, far shorter transfers.
 *
 * The migration steps returned are the replica copies that must move
 * weights over the network; dropping stale shadow replicas is free.
 */

#ifndef MOENTWINE_BALANCER_BALANCER_HH
#define MOENTWINE_BALANCER_BALANCER_HH

#include <string>
#include <vector>

#include "balancer/placement.hh"
#include "topology/topology.hh"

namespace moentwine {

/** One expert-weight copy over the network. */
struct MigrationStep
{
    /** Expert whose weights are copied. */
    int expert;
    /** Replica device the weights are read from. */
    DeviceId srcDevice;
    /** Shadow slot the weights are written to. */
    DeviceId dstDevice;
};

/**
 * Eq.(2) rebalance trigger: fires when the cumulative imbalance degree
 * exceeds alpha and at least beta iterations have passed since the last
 * migration (beta = 0 for non-invasive balancing).
 */
class RebalanceTrigger
{
  public:
    /**
     * @param alpha Cumulative imbalance threshold (> 0).
     * @param beta  Minimum iterations between migrations (≥ 0).
     */
    RebalanceTrigger(double alpha, int beta);

    /**
     * Record one iteration's imbalance degree; returns true when the
     * trigger fires (and resets the accumulator).
     */
    bool poll(double imbalance);

    /** Accumulated imbalance since the last firing. */
    double accumulated() const { return accumulated_; }

  private:
    double alpha_;
    int beta_;
    double accumulated_ = 0.0;
    int sinceLast_;
};

/**
 * Base class of placement balancers.
 */
class Balancer
{
  public:
    virtual ~Balancer() = default;

    /** Balancer name for bench output. */
    virtual std::string name() const = 0;

    /**
     * Recompute the shadow-replica assignment for the predicted loads.
     *
     * The placement is reset to native and rebuilt; the returned steps
     * are the weight copies required to realise the new assignment
     * relative to @p previous (replicas already present cost nothing).
     *
     * @param expertLoads Predicted per-expert loads.
     * @param placement   Placement to mutate into the new target.
     * @return Required weight-copy migrations.
     */
    virtual std::vector<MigrationStep> rebalance(
        const std::vector<double> &expertLoads,
        ExpertPlacement &placement) = 0;
};

/**
 * EPLB-style greedy balancer (topology-oblivious).
 */
class GreedyBalancer : public Balancer
{
  public:
    std::string name() const override { return "Greedy"; }

    std::vector<MigrationStep> rebalance(
        const std::vector<double> &expertLoads,
        ExpertPlacement &placement) override;
};

/**
 * Topology-aware balancer (Algorithm 1 of the paper).
 */
class TopologyAwareBalancer : public Balancer
{
  public:
    /** @param topo Topology used for nearest-destination selection. */
    explicit TopologyAwareBalancer(const Topology &topo);

    std::string name() const override { return "Topology-aware"; }

    std::vector<MigrationStep> rebalance(
        const std::vector<double> &expertLoads,
        ExpertPlacement &placement) override;

  private:
    const Topology &topo_;
};

} // namespace moentwine

#endif // MOENTWINE_BALANCER_BALANCER_HH
