#include "balancer/ni_balancer.hh"

#include <algorithm>

#include "common/logging.hh"

namespace moentwine {

NiBalancer::NiBalancer(const Mapping &mapping, double expertBytes)
    : mapping_(mapping), expertBytes_(expertBytes)
{
    MOE_ASSERT(expertBytes > 0.0, "expert size must be positive");
}

int
NiBalancer::plan(const std::vector<double> &expertLoads,
                 ExpertPlacement &placement)
{
    // Plan the target with Algorithm 1 on a scratch copy.
    ExpertPlacement target = placement;
    TopologyAwareBalancer planner(mapping_.topology());
    const auto steps = planner.rebalance(expertLoads, target);

    // Adopt the target immediately, then retract the replicas whose
    // weights still have to travel — they activate on completion.
    placement = target;
    int enqueued = 0;
    for (const MigrationStep &step : steps) {
        const bool alreadyPending = std::any_of(
            pending_.begin(), pending_.end(), [&](const Pending &p) {
                return p.step.expert == step.expert &&
                       p.step.dstDevice == step.dstDevice;
            });
        if (alreadyPending) {
            // Keep the slot reserved; transfer already in flight.
            placement.removeReplica(step.expert, step.dstDevice);
            continue;
        }
        placement.removeReplica(step.expert, step.dstDevice);
        Pending p;
        p.step = step;
        p.segments = decompose(step.srcDevice, step.dstDevice);
        MOE_ASSERT(!p.segments.empty(),
                   "migration between co-located replicas");
        p.delivered.assign(p.segments.size(), 0.0);
        pending_.push_back(std::move(p));
        ++enqueued;
    }
    return enqueued;
}

std::vector<NiBalancer::Segment>
NiBalancer::decompose(DeviceId src, DeviceId dst) const
{
    MOE_ASSERT(mapping_.topology().hops(src, dst) > 0,
               "empty migration route");
    std::vector<Segment> segments;
    const auto &links = mapping_.topology().links();
    const int devices = mapping_.numDevices();
    // Links touching internal switch nodes (no FTD of their own)
    // inherit the flow-level classification.
    const bool flowLocal = mapping_.ftdOf(src) == mapping_.ftdOf(dst);
    for (const LinkId l : mapping_.topology().walk(src, dst)) {
        const Link &link = links[static_cast<std::size_t>(l)];
        bool local = flowLocal;
        if (link.src < devices && link.dst < devices)
            local = mapping_.ftdOf(link.src) == mapping_.ftdOf(link.dst);
        if (segments.empty() || segments.back().local != local)
            segments.push_back(Segment{{}, local});
        segments.back().links.push_back(l);
    }
    return segments;
}

int
NiBalancer::advanceAttention(const PhaseTraffic &traffic, double window,
                             ExpertPlacement &placement)
{
    return advance(traffic, window, true, placement);
}

int
NiBalancer::advanceMoe(const PhaseTraffic &traffic, double window,
                       ExpertPlacement &placement)
{
    return advance(traffic, window, false, placement);
}

int
NiBalancer::advance(const PhaseTraffic &traffic, double window, bool local,
                    ExpertPlacement &placement)
{
    if (pending_.empty() || window <= 0.0)
        return 0;

    // Idle byte budget per link for this window, shared FCFS.
    std::vector<double> budget(mapping_.topology().links().size(), -1.0);
    auto budgetOf = [&](LinkId l) -> double & {
        auto &b = budget[static_cast<std::size_t>(l)];
        if (b < 0.0)
            b = traffic.idleBytes(l, window);
        return b;
    };

    for (Pending &p : pending_) {
        for (std::size_t i = 0; i < p.segments.size(); ++i) {
            const Segment &seg = p.segments[i];
            if (seg.local != local)
                continue;
            const double upstream =
                (i == 0 ? expertBytes_ : p.delivered[i - 1]) -
                p.delivered[i];
            if (upstream <= 0.0)
                continue;
            double capacity = upstream;
            for (const LinkId l : seg.links)
                capacity = std::min(capacity, budgetOf(l));
            if (capacity <= 0.0)
                continue;
            for (const LinkId l : seg.links)
                budgetOf(l) -= capacity;
            p.delivered[i] += capacity;
            hiddenBytes_ += capacity;
        }
    }

    // Activate completed migrations.
    int completed = 0;
    const double done = expertBytes_ * (1.0 - 1e-9);
    for (auto it = pending_.begin(); it != pending_.end();) {
        if (it->delivered.back() >= done) {
            const MigrationStep &s = it->step;
            if (!placement.hosts(s.dstDevice, s.expert) &&
                placement.freeSlots(s.dstDevice) > 0) {
                placement.addReplica(s.expert, s.dstDevice);
            }
            it = pending_.erase(it);
            ++completed;
        } else {
            ++it;
        }
    }
    return completed;
}

} // namespace moentwine
