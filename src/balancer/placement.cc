#include "balancer/placement.hh"

#include <algorithm>

#include "common/logging.hh"

namespace moentwine {

ExpertPlacement::ExpertPlacement(int numExperts, int numDevices,
                                 int shadowSlots)
    : numExperts_(numExperts),
      numDevices_(numDevices),
      shadowSlots_(shadowSlots)
{
    MOE_ASSERT(numExperts > 0, "placement needs at least one expert");
    MOE_ASSERT(numDevices > 0, "placement needs at least one device");
    MOE_ASSERT(shadowSlots >= 0, "negative shadow slot count");

    byDevice_.resize(static_cast<std::size_t>(numDevices));
    byExpert_.resize(static_cast<std::size_t>(numExperts));
    capacity_.resize(static_cast<std::size_t>(numDevices), 0);

    if (numExperts >= numDevices) {
        for (int e = 0; e < numExperts; ++e) {
            const DeviceId d = e % numDevices;
            byDevice_[static_cast<std::size_t>(d)].push_back(e);
            byExpert_[static_cast<std::size_t>(e)].push_back(d);
        }
    } else {
        for (DeviceId d = 0; d < numDevices; ++d) {
            const int e = d % numExperts;
            byDevice_[static_cast<std::size_t>(d)].push_back(e);
            byExpert_[static_cast<std::size_t>(e)].push_back(d);
        }
    }
    nativeByDevice_ = byDevice_;
    for (DeviceId d = 0; d < numDevices; ++d) {
        capacity_[static_cast<std::size_t>(d)] =
            static_cast<int>(byDevice_[static_cast<std::size_t>(d)]
                                 .size()) + shadowSlots;
    }
}

const std::vector<int> &
ExpertPlacement::expertsOn(DeviceId d) const
{
    MOE_ASSERT(d >= 0 && d < numDevices_, "expertsOn: bad device");
    return byDevice_[static_cast<std::size_t>(d)];
}

const std::vector<DeviceId> &
ExpertPlacement::replicasOf(int expert) const
{
    MOE_ASSERT(expert >= 0 && expert < numExperts_,
               "replicasOf: bad expert");
    return byExpert_[static_cast<std::size_t>(expert)];
}

int
ExpertPlacement::numReplicas(int expert) const
{
    return static_cast<int>(replicasOf(expert).size());
}

bool
ExpertPlacement::hosts(DeviceId d, int expert) const
{
    const auto &experts = expertsOn(d);
    return std::find(experts.begin(), experts.end(), expert) !=
           experts.end();
}

int
ExpertPlacement::freeSlots(DeviceId d) const
{
    MOE_ASSERT(d >= 0 && d < numDevices_, "freeSlots: bad device");
    return capacity_[static_cast<std::size_t>(d)] -
           static_cast<int>(byDevice_[static_cast<std::size_t>(d)].size());
}

void
ExpertPlacement::addReplica(int expert, DeviceId d)
{
    MOE_ASSERT(expert >= 0 && expert < numExperts_,
               "addReplica: bad expert");
    MOE_ASSERT(d >= 0 && d < numDevices_, "addReplica: bad device");
    MOE_ASSERT(!hosts(d, expert), "device already hosts this expert");
    MOE_ASSERT(freeSlots(d) > 0, "no free shadow slot on device");
    if (tracksLoads()) {
        // The expert's per-replica share shrinks from L/n to L/(n+1):
        // existing replicas cool by the difference, the new host gains
        // the new share.
        const double load =
            trackedLoads_[static_cast<std::size_t>(expert)];
        const auto n = static_cast<double>(numReplicas(expert));
        const double newShare = load / (n + 1.0);
        for (const DeviceId r :
             byExpert_[static_cast<std::size_t>(expert)]) {
            heats_[static_cast<std::size_t>(r)] -=
                load / n - newShare;
        }
        heats_[static_cast<std::size_t>(d)] += newShare;
    }
    byDevice_[static_cast<std::size_t>(d)].push_back(expert);
    byExpert_[static_cast<std::size_t>(expert)].push_back(d);
}

void
ExpertPlacement::removeReplica(int expert, DeviceId d)
{
    MOE_ASSERT(hosts(d, expert), "removeReplica: replica not present");
    MOE_ASSERT(numReplicas(expert) > 1,
               "cannot remove the last replica of an expert");
    MOE_ASSERT(!isNative(d, expert), "cannot remove a native replica");
    if (tracksLoads()) {
        // Inverse of addReplica: survivors warm from L/n to L/(n-1).
        const double load =
            trackedLoads_[static_cast<std::size_t>(expert)];
        const auto n = static_cast<double>(numReplicas(expert));
        const double oldShare = load / n;
        for (const DeviceId r :
             byExpert_[static_cast<std::size_t>(expert)]) {
            if (r != d) {
                heats_[static_cast<std::size_t>(r)] +=
                    load / (n - 1.0) - oldShare;
            }
        }
        heats_[static_cast<std::size_t>(d)] -= oldShare;
    }
    auto &experts = byDevice_[static_cast<std::size_t>(d)];
    experts.erase(std::find(experts.begin(), experts.end(), expert));
    auto &devices = byExpert_[static_cast<std::size_t>(expert)];
    devices.erase(std::find(devices.begin(), devices.end(), d));
}

void
ExpertPlacement::resetToNative()
{
    byDevice_ = nativeByDevice_;
    for (auto &devices : byExpert_)
        devices.clear();
    for (DeviceId d = 0; d < numDevices_; ++d)
        for (const int e : byDevice_[static_cast<std::size_t>(d)])
            byExpert_[static_cast<std::size_t>(e)].push_back(d);
    if (tracksLoads())
        rebuildHeats();
}

bool
ExpertPlacement::deviceLost(DeviceId d) const
{
    MOE_ASSERT(d >= 0 && d < numDevices_, "deviceLost: bad device");
    return !lost_.empty() && lost_[static_cast<std::size_t>(d)] != 0;
}

std::vector<ExpertRehoming>
ExpertPlacement::markDeviceLost(DeviceId d)
{
    MOE_ASSERT(d >= 0 && d < numDevices_, "markDeviceLost: bad device");
    if (deviceLost(d))
        return {};
    if (lost_.empty())
        lost_.assign(static_cast<std::size_t>(numDevices_), 0);
    lost_[static_cast<std::size_t>(d)] = 1;

    // Drop every replica the dead device held; natives re-home below.
    for (const int e : byDevice_[static_cast<std::size_t>(d)]) {
        auto &devices = byExpert_[static_cast<std::size_t>(e)];
        devices.erase(std::find(devices.begin(), devices.end(), d));
    }
    byDevice_[static_cast<std::size_t>(d)].clear();
    capacity_[static_cast<std::size_t>(d)] = 0;

    std::vector<ExpertRehoming> rehomed;
    auto &natives = nativeByDevice_[static_cast<std::size_t>(d)];
    for (const int e : natives) {
        // Deterministic new native host: fewest hosted experts among
        // live non-holders, ties to the lowest device id.
        DeviceId target = -1;
        for (DeviceId c = 0; c < numDevices_; ++c) {
            if (lost_[static_cast<std::size_t>(c)] || hosts(c, e))
                continue;
            if (target < 0 ||
                byDevice_[static_cast<std::size_t>(c)].size() <
                    byDevice_[static_cast<std::size_t>(target)].size()) {
                target = c;
            }
        }
        if (target >= 0) {
            byDevice_[static_cast<std::size_t>(target)].push_back(e);
            byExpert_[static_cast<std::size_t>(e)].push_back(target);
        } else {
            // Every live device already replicates e: promote the
            // lowest-id live holder to native instead of duplicating.
            const auto &holders = byExpert_[static_cast<std::size_t>(e)];
            MOE_ASSERT(!holders.empty(),
                       "expert lost its last replica with the device");
            target = *std::min_element(holders.begin(), holders.end());
        }
        // Native assignments sit outside the shadow budget: grow the
        // target's capacity so its freeSlots() is unchanged (and
        // resetToNative() keeps balancer headroom intact).
        nativeByDevice_[static_cast<std::size_t>(target)].push_back(e);
        capacity_[static_cast<std::size_t>(target)] += 1;
        rehomed.push_back(ExpertRehoming{e, d, target});
    }
    natives.clear();
    if (tracksLoads())
        rebuildHeats();
    return rehomed;
}

bool
ExpertPlacement::isNative(DeviceId d, int expert) const
{
    MOE_ASSERT(d >= 0 && d < numDevices_, "isNative: bad device");
    const auto &natives = nativeByDevice_[static_cast<std::size_t>(d)];
    return std::find(natives.begin(), natives.end(), expert) !=
           natives.end();
}

void
ExpertPlacement::setExpertLoads(const std::vector<double> &expertLoads)
{
    MOE_ASSERT(expertLoads.size() ==
                   static_cast<std::size_t>(numExperts_),
               "expert load vector width mismatch");
    trackedLoads_ = expertLoads;
    rebuildHeats();
}

void
ExpertPlacement::clearExpertLoads()
{
    trackedLoads_.clear();
    heats_.clear();
}

void
ExpertPlacement::updateExpertLoad(int expert, double load)
{
    MOE_ASSERT(tracksLoads(), "updateExpertLoad without attached loads");
    MOE_ASSERT(expert >= 0 && expert < numExperts_,
               "updateExpertLoad: bad expert");
    double &tracked = trackedLoads_[static_cast<std::size_t>(expert)];
    const double perReplicaDelta =
        (load - tracked) / static_cast<double>(numReplicas(expert));
    for (const DeviceId r : byExpert_[static_cast<std::size_t>(expert)])
        heats_[static_cast<std::size_t>(r)] += perReplicaDelta;
    tracked = load;
}

const std::vector<double> &
ExpertPlacement::heats() const
{
    MOE_ASSERT(tracksLoads(), "heats() without attached loads");
    return heats_;
}

void
ExpertPlacement::rebuildHeats()
{
    heats_ = deviceHeats(trackedLoads_);
}

std::vector<double>
ExpertPlacement::deviceHeats(const std::vector<double> &expertLoads) const
{
    MOE_ASSERT(expertLoads.size() ==
                   static_cast<std::size_t>(numExperts_),
               "expert load vector width mismatch");
    std::vector<double> heats(static_cast<std::size_t>(numDevices_), 0.0);
    for (DeviceId d = 0; d < numDevices_; ++d) {
        double heat = 0.0;
        for (const int e : byDevice_[static_cast<std::size_t>(d)]) {
            heat += expertLoads[static_cast<std::size_t>(e)] /
                static_cast<double>(numReplicas(e));
        }
        heats[static_cast<std::size_t>(d)] = heat;
    }
    return heats;
}

} // namespace moentwine
