/**
 * @file
 * Expert placement: which devices host which expert replicas.
 *
 * Every device owns its *native* experts (assigned round-robin at load
 * time) plus a fixed number of *shadow slots* that balancers fill with
 * replicas of popular experts (Fig. 7(a) of the paper). Tokens routed
 * to an expert are split evenly across its replicas, so a device's
 * heat is Σ Load_e / Num_e over the experts it hosts (Algorithm 1).
 */

#ifndef MOENTWINE_BALANCER_PLACEMENT_HH
#define MOENTWINE_BALANCER_PLACEMENT_HH

#include <vector>

#include "topology/topology.hh"

namespace moentwine {

/** One native re-assignment produced by ExpertPlacement::markDeviceLost. */
struct ExpertRehoming
{
    int expert;
    /** The lost device that natively hosted the expert. */
    DeviceId from;
    /** The live device now natively hosting it. */
    DeviceId to;
};

/**
 * Mutable expert→device replica assignment with shadow-slot capacity.
 */
class ExpertPlacement
{
  public:
    /**
     * Round-robin native placement.
     *
     * When experts ≥ devices, expert e lives natively on device
     * e mod D (multiple experts per device — the E/D > 1 regime).
     * When devices > experts, device d natively hosts expert d mod E,
     * so popular experts start with several replicas (E/D < 1).
     *
     * @param numExperts  Routed experts per layer.
     * @param numDevices  Devices participating in EP.
     * @param shadowSlots Extra replica slots per device.
     */
    ExpertPlacement(int numExperts, int numDevices, int shadowSlots);

    /** Number of routed experts. */
    int numExperts() const { return numExperts_; }

    /** Number of devices. */
    int numDevices() const { return numDevices_; }

    /** Shadow slots per device. */
    int shadowSlots() const { return shadowSlots_; }

    /** Expert ids hosted by a device (native + shadow). */
    const std::vector<int> &expertsOn(DeviceId d) const;

    /** Devices holding a replica of an expert. */
    const std::vector<DeviceId> &replicasOf(int expert) const;

    /** Replica count of an expert (Num_e in Algorithm 1). */
    int numReplicas(int expert) const;

    /** True when the device currently hosts the expert. */
    bool hosts(DeviceId d, int expert) const;

    /** Remaining shadow-slot capacity of a device. */
    int freeSlots(DeviceId d) const;

    /** Add a replica; panics when the device lacks a free slot. */
    void addReplica(int expert, DeviceId d);

    /**
     * Remove a shadow replica. Panics when removing the last replica
     * of an expert or a replica that does not exist.
     */
    void removeReplica(int expert, DeviceId d);

    /** Drop all shadow replicas, returning to the native placement. */
    void resetToNative();

    /** True when (d, expert) is a native (non-evictable) assignment. */
    bool isNative(DeviceId d, int expert) const;

    /**
     * Take a device out of service permanently (fault layer). Every
     * replica on it is dropped, its shadow capacity goes to zero (so
     * freeSlots() keeps balancers away), and each of its native
     * experts is re-homed deterministically: the new native host is
     * the live device hosting the fewest experts (ties to the lowest
     * id) that does not already hold a replica — or, when every live
     * device holds one, the lowest-id live replica is promoted to
     * native. The adjusted assignment IS the native placement from now
     * on: resetToNative() never resurrects a lost device. Idempotent.
     *
     * @return The native re-assignments, in expert order (empty on a
     *         repeat call). The engine charges recovery traffic for
     *         these.
     */
    std::vector<ExpertRehoming> markDeviceLost(DeviceId d);

    /** True once markDeviceLost(d) has run. */
    bool deviceLost(DeviceId d) const;

    /**
     * Device heats given per-expert loads: Heat_d = Σ Load_e / Num_e
     * over experts hosted by d. Recomputed from scratch in
     * O(devices × experts); hot callers should attach loads with
     * setExpertLoads() and read the incrementally maintained heats().
     */
    std::vector<double> deviceHeats(
        const std::vector<double> &expertLoads) const;

    /**
     * Attach per-expert loads and (re)build the tracked heat vector.
     * While loads are attached, every placement mutation (addReplica,
     * removeReplica, resetToNative) and every updateExpertLoad() call
     * maintains heats() incrementally in O(replicas of the changed
     * expert) — the Eq.(2) trigger / Algorithm 1 inner loop no longer
     * pays the O(devices × experts) recompute per poll.
     */
    void setExpertLoads(const std::vector<double> &expertLoads);

    /** Stop tracking loads (heats() becomes unavailable). */
    void clearExpertLoads();

    /** True while setExpertLoads() is in effect. */
    bool tracksLoads() const { return !trackedLoads_.empty(); }

    /**
     * Update one expert's tracked load in O(replicas of that expert).
     */
    void updateExpertLoad(int expert, double load);

    /** Incrementally maintained heats for the attached loads. */
    const std::vector<double> &heats() const;

    /**
     * Per-device routed token counts for the given per-expert loads
     * (loads split evenly across replicas — identical to heats, kept
     * as an alias for intent-revealing call sites).
     */
    std::vector<double> deviceLoads(
        const std::vector<double> &expertLoads) const
    {
        return deviceHeats(expertLoads);
    }

  private:
    int numExperts_;
    int numDevices_;
    int shadowSlots_;
    /** Rebuild heats_ from the tracked loads (O(devices × experts)). */
    void rebuildHeats();

    std::vector<std::vector<int>> byDevice_;
    std::vector<std::vector<DeviceId>> byExpert_;
    std::vector<int> capacity_;
    std::vector<std::vector<int>> nativeByDevice_;
    // Devices retired by markDeviceLost(); empty until faults strike.
    std::vector<char> lost_;
    // Attached per-expert loads and the incrementally maintained
    // per-device heats; both empty while no loads are attached.
    std::vector<double> trackedLoads_;
    std::vector<double> heats_;
};

} // namespace moentwine

#endif // MOENTWINE_BALANCER_PLACEMENT_HH
