/**
 * @file
 * Non-invasive Balancer (NI-Balancer, Section V of the paper).
 *
 * NI-Balancer plans migrations with the topology-aware Algorithm 1 but
 * never executes them on the critical path. Each planned weight copy is
 * decomposed along its mesh route into alternating segments:
 *  - *local* segments (links whose endpoints share an FTD) drain during
 *    the attention phase, when all-reduce traffic leaves intra-FTD
 *    links cold;
 *  - *global* segments (links crossing FTDs) drain during the MoE
 *    phase, when all-to-all traffic is confined within FTDs and the
 *    inter-FTD links idle (Fig. 11).
 *
 * Every phase the engine reports the phase's traffic heatmap and time
 * window; pending migrations consume only each link's *idle* byte
 * budget (bandwidth × window − phase volume), shared first-come
 * first-served. Bytes progress store-and-forward through the segment
 * chain, and a migration activates its replica only once the final
 * segment has delivered all bytes — so balancing is slightly delayed
 * but costs zero iteration latency.
 */

#ifndef MOENTWINE_BALANCER_NI_BALANCER_HH
#define MOENTWINE_BALANCER_NI_BALANCER_HH

#include <deque>
#include <string>
#include <vector>

#include "balancer/balancer.hh"
#include "balancer/placement.hh"
#include "mapping/mapping.hh"
#include "network/traffic.hh"

namespace moentwine {

/**
 * Hidden multi-step expert migration scheduler.
 */
class NiBalancer
{
  public:
    /**
     * @param mapping     Mapping providing FTD structure and topology.
     * @param expertBytes Weight bytes of one expert.
     */
    NiBalancer(const Mapping &mapping, double expertBytes);

    /** Balancer name for bench output. */
    std::string name() const { return "Non-invasive"; }

    /**
     * Re-plan the target placement (Algorithm 1) and enqueue the weight
     * copies as pending hidden migrations. The placement is updated
     * immediately for dropped stale replicas and for copies that need
     * no transfer; replicas requiring weight movement activate later,
     * as their transfers complete.
     *
     * @return Number of new migrations enqueued.
     */
    int plan(const std::vector<double> &expertLoads,
             ExpertPlacement &placement);

    /**
     * Drain local segments during an attention phase.
     *
     * @param traffic   All-reduce traffic of the phase.
     * @param window    Phase duration (seconds).
     * @param placement Placement to activate completed replicas in.
     * @return Migrations completed during this phase.
     */
    int advanceAttention(const PhaseTraffic &traffic, double window,
                         ExpertPlacement &placement);

    /** Drain global segments during a MoE phase. @sa advanceAttention */
    int advanceMoe(const PhaseTraffic &traffic, double window,
                   ExpertPlacement &placement);

    /** Migrations still in flight. */
    std::size_t pendingCount() const { return pending_.size(); }

    /** Total bytes moved invisibly so far. */
    double hiddenBytesMoved() const { return hiddenBytes_; }

  private:
    /** One contiguous run of same-class links along a migration route. */
    struct Segment
    {
        std::vector<LinkId> links;
        bool local; ///< true: intra-FTD (attention window)
    };

    /** A migration in flight. */
    struct Pending
    {
        MigrationStep step;
        std::vector<Segment> segments;
        /** Bytes delivered through the *end* of each segment. */
        std::vector<double> delivered;
    };

    /** Decompose a route into alternating local/global segments. */
    std::vector<Segment> decompose(DeviceId src, DeviceId dst) const;

    /** Shared draining logic for the two phase kinds. */
    int advance(const PhaseTraffic &traffic, double window, bool local,
                ExpertPlacement &placement);

    const Mapping &mapping_;
    double expertBytes_;
    std::deque<Pending> pending_;
    double hiddenBytes_ = 0.0;
};

} // namespace moentwine

#endif // MOENTWINE_BALANCER_NI_BALANCER_HH
