/**
 * @file
 * Geometric analysis of Full Token Domains (Section IV-A): average
 * intra-domain hop count, bounding-box area, and intersection counting.
 * These are the three quantities the paper uses to explain why compact,
 * disjoint FTDs minimise all-to-all cost.
 */

#ifndef MOENTWINE_MAPPING_FTD_HH
#define MOENTWINE_MAPPING_FTD_HH

#include <vector>

#include "topology/mesh.hh"

namespace moentwine {

/** Inclusive bounding box of a device set on the mesh. */
struct BoundingBox
{
    int rowLo;
    int colLo;
    int rowHi;
    int colHi;

    /** Covered area in devices. */
    int area() const { return (rowHi - rowLo + 1) * (colHi - colLo + 1); }

    /** True when the two boxes share at least one mesh cell. */
    bool overlaps(const BoundingBox &o) const
    {
        return rowLo <= o.rowHi && o.rowLo <= rowHi && colLo <= o.colHi &&
               o.colLo <= colHi;
    }
};

/** Bounding box of a device set. */
BoundingBox ftdBoundingBox(const MeshTopology &mesh,
                           const std::vector<DeviceId> &ftd);

/**
 * Average hop count inside an FTD: a device fetches tokens from each of
 * the other members with uniform probability, so the expected distance
 * is the mean Manhattan distance over ordered pairs. (2.7 for the
 * baseline 3×3-area FTD of the 4×4 example; 1.3 under ER-Mapping.)
 */
double ftdAverageHops(const MeshTopology &mesh,
                      const std::vector<DeviceId> &ftd);

/** Number of FTD pairs whose bounding boxes overlap. */
int countFtdIntersections(const MeshTopology &mesh,
                          const std::vector<std::vector<DeviceId>> &ftds);

} // namespace moentwine

#endif // MOENTWINE_MAPPING_FTD_HH
