/**
 * @file
 * Baseline mapping: TP groups are contiguous tpX×tpY blocks tiled over
 * the mesh (Fig. 8(b) of the paper).
 *
 * Each FTD pairs the devices at the same within-block offset across all
 * blocks; the resulting domains span nearly the whole mesh and all
 * intersect in the centre, which is exactly the congestion pathology
 * ER-Mapping removes.
 */

#ifndef MOENTWINE_MAPPING_BASELINE_MAPPING_HH
#define MOENTWINE_MAPPING_BASELINE_MAPPING_HH

#include <string>

#include "mapping/mapping.hh"
#include "mapping/parallelism.hh"
#include "topology/mesh.hh"

namespace moentwine {

/**
 * Contiguous-block TP placement on a mesh.
 */
class BaselineMapping : public Mapping
{
  public:
    /**
     * @param mesh Mesh to map onto (rows divisible by tpX, cols by tpY).
     * @param par  TP shape.
     */
    BaselineMapping(const MeshTopology &mesh, ParallelismConfig par);

    std::string name() const override { return "Baseline"; }

    /** Baseline rings are quadrant-local and need no staggering. */
    bool staggeredRings() const override { return false; }

    /** The TP shape used. */
    const ParallelismConfig &parallelism() const { return par_; }

    /** The mesh this mapping is placed on. */
    const MeshTopology &mesh() const { return mesh_; }

  private:
    const MeshTopology &mesh_;
    ParallelismConfig par_;
};

} // namespace moentwine

#endif // MOENTWINE_MAPPING_BASELINE_MAPPING_HH
