/**
 * @file
 * Parallelism configuration: tensor-parallel (TP) group shape over the
 * mesh, data-parallel (DP) degree, and expert-parallel (EP) degree.
 *
 * Following the paper, EP always equals the total device count (every
 * device hosts at least one expert slot) and DP × TP = device count.
 * The TP degree is decomposed into a 2-D shape (tpX, tpY) — the number
 * of TP-group members along mesh rows and columns respectively — which
 * drives both the baseline block placement and the ER-Mapping strides.
 */

#ifndef MOENTWINE_MAPPING_PARALLELISM_HH
#define MOENTWINE_MAPPING_PARALLELISM_HH

#include <string>

namespace moentwine {

/** 2-D decomposition of the tensor-parallel degree over the mesh. */
struct ParallelismConfig
{
    /** TP members along the row dimension (divides mesh rows). */
    int tpX = 1;
    /** TP members along the column dimension (divides mesh cols). */
    int tpY = 1;

    /** Tensor-parallel degree. */
    int tp() const { return tpX * tpY; }

    /** Data-parallel degree for the given device count. */
    int dp(int devices) const { return devices / tp(); }

    /** "TPxXxY" label for bench output. */
    std::string label() const;
};

/**
 * Choose a near-square (tpX, tpY) decomposition of @p tp that divides a
 * rows×cols mesh. Prefers the most balanced factor pair; fatal when no
 * valid pair exists.
 */
ParallelismConfig decomposeTp(int tp, int rows, int cols);

} // namespace moentwine

#endif // MOENTWINE_MAPPING_PARALLELISM_HH
