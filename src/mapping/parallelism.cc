#include "mapping/parallelism.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace moentwine {

std::string
ParallelismConfig::label() const
{
    return "TP" + std::to_string(tp()) + "(" + std::to_string(tpX) + "x" +
           std::to_string(tpY) + ")";
}

ParallelismConfig
decomposeTp(int tp, int rows, int cols)
{
    MOE_ASSERT(tp >= 1, "TP degree must be at least 1");
    int bestX = -1;
    int bestY = -1;
    int bestImbalance = 1 << 30;
    for (int x = 1; x <= tp; ++x) {
        if (tp % x != 0)
            continue;
        const int y = tp / x;
        if (rows % x != 0 || cols % y != 0)
            continue;
        const int imbalance = std::abs(x - y);
        if (imbalance < bestImbalance) {
            bestImbalance = imbalance;
            bestX = x;
            bestY = y;
        }
    }
    if (bestX < 0) {
        fatal("TP=" + std::to_string(tp) + " has no (tpX, tpY) " +
              "decomposition dividing a " + std::to_string(rows) + "x" +
              std::to_string(cols) + " mesh");
    }
    ParallelismConfig cfg;
    cfg.tpX = bestX;
    cfg.tpY = bestY;
    return cfg;
}

} // namespace moentwine
