/**
 * @file
 * Hierarchical ER-Mapping for multi-wafer systems (Fig. 10(c)).
 *
 * Each wafer is ER-mapped independently, so TP groups never span a
 * wafer boundary. The attention all-reduce splits into two stages:
 *  1. intra-wafer reduce-scatter over the per-wafer entwined rings;
 *  2. inter-wafer all-gather over rings of mirror devices (the devices
 *     at the same within-wafer coordinate on every wafer).
 * After both stages every wafer holds a distributed copy of all tokens,
 * so the MoE all-to-all is confined within individual wafers: the
 * dispatch source of a token for an expert on wafer w is the mirror of
 * the token's shard owner on wafer w.
 */

#ifndef MOENTWINE_MAPPING_HER_MAPPING_HH
#define MOENTWINE_MAPPING_HER_MAPPING_HH

#include <string>
#include <vector>

#include "mapping/mapping.hh"
#include "mapping/parallelism.hh"
#include "topology/mesh.hh"

namespace moentwine {

/**
 * Per-wafer ER placement with hierarchical all-reduce.
 */
class HierarchicalErMapping : public Mapping
{
  public:
    /**
     * @param mesh Multi-wafer mesh (per-wafer dims divisible by TP shape).
     * @param par  TP shape (within one wafer).
     */
    HierarchicalErMapping(const MeshTopology &mesh, ParallelismConfig par);

    std::string name() const override { return "HER-Mapping"; }

    bool staggeredRings() const override { return true; }

    using Mapping::allReduceInto;
    double allReduceInto(const Topology &onTopo, double bytesPerGroup,
                         bool withAllGather,
                         CollectiveScratch &scratch) const override;

    DeviceId dispatchSource(int group, int rank, DeviceId expertDevice,
                            bool allGatherRetained) const override;

    /** Sources are per-wafer mirrors of the rank owner: rank matters. */
    bool dispatchSourceRankInvariant(bool) const override
    {
        return false;
    }

    /** Mirror of device @p d on wafer @p wafer (same local coordinate). */
    DeviceId mirrorOn(DeviceId d, int wafer) const;

    /** The inter-wafer all-gather rings (one per within-wafer position). */
    const std::vector<std::vector<DeviceId>> &interWaferRings() const
    {
        return interRings_;
    }

    /** The TP shape used. */
    const ParallelismConfig &parallelism() const { return par_; }

    /** The mesh this mapping is placed on. */
    const MeshTopology &mesh() const { return mesh_; }

  private:
    const MeshTopology &mesh_;
    ParallelismConfig par_;
    std::vector<std::vector<DeviceId>> interRings_;
};

} // namespace moentwine

#endif // MOENTWINE_MAPPING_HER_MAPPING_HH
