#include "mapping/baseline_mapping.hh"

#include "common/logging.hh"
#include "mapping/ring_order.hh"

namespace moentwine {

BaselineMapping::BaselineMapping(const MeshTopology &mesh,
                                 ParallelismConfig par)
    : Mapping(mesh), mesh_(mesh), par_(par)
{
    const int rows = mesh.rows();
    const int cols = mesh.cols();
    if (rows % par.tpX != 0 || cols % par.tpY != 0) {
        fatal("baseline mapping: TP shape " + par.label() +
              " does not divide the " + std::to_string(rows) + "x" +
              std::to_string(cols) + " mesh");
    }
    const int blocksX = rows / par.tpX; // blocks along rows
    const int blocksY = cols / par.tpY; // blocks along cols

    // TP groups: one per contiguous block, members in ring order.
    const auto cycle = gridCycle(par.tpX, par.tpY);
    for (int bx = 0; bx < blocksX; ++bx) {
        for (int by = 0; by < blocksY; ++by) {
            std::vector<DeviceId> group;
            group.reserve(cycle.size());
            for (const auto &[i, j] : cycle) {
                group.push_back(mesh.deviceAt(bx * par.tpX + i,
                                              by * par.tpY + j));
            }
            tpGroups_.push_back(std::move(group));
        }
    }

    // FTDs: the devices at the same within-block offset in every block.
    for (int i = 0; i < par.tpX; ++i) {
        for (int j = 0; j < par.tpY; ++j) {
            std::vector<DeviceId> ftd;
            ftd.reserve(static_cast<std::size_t>(blocksX * blocksY));
            for (int bx = 0; bx < blocksX; ++bx)
                for (int by = 0; by < blocksY; ++by)
                    ftd.push_back(mesh.deviceAt(bx * par.tpX + i,
                                                by * par.tpY + j));
            ftds_.push_back(std::move(ftd));
        }
    }

    finalize();
}

} // namespace moentwine
