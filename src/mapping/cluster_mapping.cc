#include "mapping/cluster_mapping.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace moentwine {

ClusterMapping::ClusterMapping(const SwitchClusterTopology &cluster, int tp)
    : Mapping(cluster), cluster_(cluster)
{
    const int devices = cluster.numDevices();
    if (tp < 1 || devices % tp != 0) {
        fatal("cluster mapping: TP=" + std::to_string(tp) +
              " does not divide " + std::to_string(devices) + " devices");
    }
    if (tp > cluster.spec().devicesPerNode &&
        tp % cluster.spec().devicesPerNode != 0) {
        fatal("cluster mapping: TP=" + std::to_string(tp) +
              " straddles node boundaries unevenly");
    }

    for (int g = 0; g < devices / tp; ++g) {
        std::vector<DeviceId> group;
        group.reserve(static_cast<std::size_t>(tp));
        for (int r = 0; r < tp; ++r)
            group.push_back(g * tp + r);
        tpGroups_.push_back(std::move(group));
    }

    // One cluster-wide FTD: the switched fabric has no locality domains.
    std::vector<DeviceId> all;
    all.reserve(static_cast<std::size_t>(devices));
    for (DeviceId d = 0; d < devices; ++d)
        all.push_back(d);
    ftds_.push_back(std::move(all));

    finalize();
}

double
ClusterMapping::dispatchDedupFactor(DeviceId src, DeviceId dst,
                                    int topk) const
{
    MOE_ASSERT(topk >= 1, "topk must be positive");
    if (cluster_.sameNode(src, dst))
        return 1.0;
    // DeepSpeed-MoE hierarchical all-to-all: a token's k expert copies
    // heading to the same remote node cross the inter-node fabric once.
    // Expected distinct nodes touched per token is N·(1−(1−1/N)^k);
    // naive volume is k copies, so the cross-node volume shrinks by
    // the ratio of the two. The factor depends only on topk, which is
    // constant within a serving run, so the pow() is memoised — the
    // token router queries this once per (group, rank, replica) on its
    // per-iteration hot path.
    const double n = cluster_.spec().numNodes;
    if (n <= 1.0)
        return 1.0;
    if (topk <= kMaxMemoTopk) {
        const double memo =
            crossMemo_[static_cast<std::size_t>(topk)].load(
                std::memory_order_relaxed);
        if (memo != 0.0)
            return memo;
    }
    const double distinct = n * (1.0 - std::pow(1.0 - 1.0 / n, topk));
    const double cross =
        std::min(1.0, distinct / static_cast<double>(topk));
    if (topk <= kMaxMemoTopk) {
        crossMemo_[static_cast<std::size_t>(topk)].store(
            cross, std::memory_order_relaxed);
    }
    return cross;
}

} // namespace moentwine
