/**
 * @file
 * Hamiltonian ring orderings over small 2-D grids of TP-group members.
 *
 * A TP group's members form an m×n logical grid (contiguous for the
 * baseline mapping, strided for ER-Mapping). Ring all-reduce needs a
 * cyclic order with short consecutive steps:
 *  - when m·n is even a unit-step Hamiltonian cycle exists and is used;
 *  - 1×n lines use the zigzag cycle (0,2,4,…,5,3,1) with step ≤ 2;
 *  - odd×odd grids (no unit cycle exists) fall back to a serpentine
 *    path whose closing edge spans the grid — callers pay that cost
 *    honestly.
 */

#ifndef MOENTWINE_MAPPING_RING_ORDER_HH
#define MOENTWINE_MAPPING_RING_ORDER_HH

#include <utility>
#include <vector>

#include "topology/topology.hh"

namespace moentwine {

/** One (rowStep, colStep) position in a logical member grid. */
using GridPos = std::pair<int, int>;

/**
 * Cyclic visiting order of all cells of an m×n grid minimising the
 * maximum step between consecutive cells (including the closing edge).
 *
 * @param m Grid rows (≥ 1).
 * @param n Grid cols (≥ 1).
 * @return All m·n cells in ring order.
 */
std::vector<GridPos> gridCycle(int m, int n);

/**
 * Largest Chebyshev-free step of a cycle: the maximum Manhattan
 * distance between consecutive cells, including the wrap-around edge.
 */
int maxCycleStep(const std::vector<GridPos> &cycle);

/**
 * Order a device set as a short-step ring. On meshes this is a
 * serpentine sweep (row-major with alternate rows reversed) that keeps
 * consecutive members adjacent; other topologies keep the stored
 * order. Mappings memoise the result per FTD (Mapping::ftdRings()) so
 * per-iteration collective paths never re-derive ring structures.
 */
std::vector<DeviceId> serpentineRing(const Topology &topo,
                                     std::vector<DeviceId> devices);

} // namespace moentwine

#endif // MOENTWINE_MAPPING_RING_ORDER_HH
