#include "mapping/er_mapping.hh"

#include "common/logging.hh"
#include "mapping/ring_order.hh"

namespace moentwine {

ErMapping::ErMapping(const MeshTopology &mesh, ParallelismConfig par)
    : Mapping(mesh), mesh_(mesh), par_(par)
{
    const int rows = mesh.rows();
    const int cols = mesh.cols();
    if (rows % par.tpX != 0 || cols % par.tpY != 0) {
        fatal("ER-Mapping: TP shape " + par.label() +
              " does not divide the " + std::to_string(rows) + "x" +
              std::to_string(cols) + " mesh");
    }
    strideRows_ = rows / par.tpX; // a in the paper's algorithm
    strideCols_ = cols / par.tpY; // b

    // TP groups: residue classes (i, j) mod (a, b); members at
    // (i + s·a, j + t·b) visited in entwined-ring order.
    const auto cycle = gridCycle(par.tpX, par.tpY);
    for (int i = 0; i < strideRows_; ++i) {
        for (int j = 0; j < strideCols_; ++j) {
            std::vector<DeviceId> group;
            group.reserve(cycle.size());
            for (const auto &[s, t] : cycle) {
                group.push_back(mesh.deviceAt(i + s * strideRows_,
                                              j + t * strideCols_));
            }
            tpGroups_.push_back(std::move(group));
        }
    }

    // FTDs: contiguous a×b blocks; block (p, q) holds exactly one
    // member of every TP group (one device per residue class).
    for (int p = 0; p < par.tpX; ++p) {
        for (int q = 0; q < par.tpY; ++q) {
            std::vector<DeviceId> ftd;
            ftd.reserve(
                static_cast<std::size_t>(strideRows_ * strideCols_));
            for (int i = 0; i < strideRows_; ++i)
                for (int j = 0; j < strideCols_; ++j)
                    ftd.push_back(mesh.deviceAt(p * strideRows_ + i,
                                                q * strideCols_ + j));
            ftds_.push_back(std::move(ftd));
        }
    }

    finalize();
}

} // namespace moentwine
