#include "mapping/ring_order.hh"

#include <algorithm>
#include <cstdlib>

#include "common/logging.hh"
#include "topology/mesh.hh"

namespace moentwine {

namespace {

/** Zigzag cycle over a 1×n line: 0,2,4,…, then odd indices descending. */
std::vector<GridPos>
lineCycle(int n)
{
    std::vector<GridPos> out;
    out.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; i += 2)
        out.emplace_back(0, i);
    const int lastOdd = (n % 2 == 0) ? n - 1 : n - 2;
    for (int i = lastOdd; i >= 1; i -= 2)
        out.emplace_back(0, i);
    return out;
}

/**
 * Unit-step Hamiltonian cycle for m even: right along row 0, serpentine
 * through rows 1..m-1 over columns 1..n-1, return up column 0.
 */
std::vector<GridPos>
evenRowsCycle(int m, int n)
{
    std::vector<GridPos> out;
    out.reserve(static_cast<std::size_t>(m * n));
    for (int c = 0; c < n; ++c)
        out.emplace_back(0, c);
    for (int r = 1; r < m; ++r) {
        if (r % 2 == 1) {
            for (int c = n - 1; c >= 1; --c)
                out.emplace_back(r, c);
        } else {
            for (int c = 1; c <= n - 1; ++c)
                out.emplace_back(r, c);
        }
    }
    for (int r = m - 1; r >= 1; --r)
        out.emplace_back(r, 0);
    return out;
}

/** Row-major serpentine path (used as odd×odd fallback). */
std::vector<GridPos>
serpentinePath(int m, int n)
{
    std::vector<GridPos> out;
    out.reserve(static_cast<std::size_t>(m * n));
    for (int r = 0; r < m; ++r) {
        if (r % 2 == 0) {
            for (int c = 0; c < n; ++c)
                out.emplace_back(r, c);
        } else {
            for (int c = n - 1; c >= 0; --c)
                out.emplace_back(r, c);
        }
    }
    return out;
}

std::vector<GridPos>
transpose(std::vector<GridPos> cycle)
{
    for (auto &p : cycle)
        std::swap(p.first, p.second);
    return cycle;
}

} // namespace

std::vector<GridPos>
gridCycle(int m, int n)
{
    MOE_ASSERT(m >= 1 && n >= 1, "gridCycle requires positive dimensions");
    if (m == 1 && n == 1)
        return {GridPos{0, 0}};
    if (m == 1)
        return lineCycle(n);
    if (n == 1)
        return transpose(lineCycle(m));
    if (m % 2 == 0)
        return evenRowsCycle(m, n);
    if (n % 2 == 0)
        return transpose(evenRowsCycle(n, m));
    // Odd×odd: no unit-step Hamiltonian cycle exists; the serpentine
    // path's closing edge is charged honestly by the caller.
    return serpentinePath(m, n);
}

std::vector<DeviceId>
serpentineRing(const Topology &topo, std::vector<DeviceId> devices)
{
    const auto *mesh = dynamic_cast<const MeshTopology *>(&topo);
    if (!mesh)
        return devices;
    std::sort(devices.begin(), devices.end(), [&](DeviceId a, DeviceId b) {
        const Coord ca = mesh->coordOf(a);
        const Coord cb = mesh->coordOf(b);
        if (ca.row != cb.row)
            return ca.row < cb.row;
        const bool reversed = ca.row % 2 == 1;
        return reversed ? ca.col > cb.col : ca.col < cb.col;
    });
    return devices;
}

int
maxCycleStep(const std::vector<GridPos> &cycle)
{
    MOE_ASSERT(!cycle.empty(), "maxCycleStep of empty cycle");
    if (cycle.size() == 1)
        return 0;
    int worst = 0;
    for (std::size_t i = 0; i < cycle.size(); ++i) {
        const GridPos &a = cycle[i];
        const GridPos &b = cycle[(i + 1) % cycle.size()];
        worst = std::max(worst, std::abs(a.first - b.first) +
                                    std::abs(a.second - b.second));
    }
    return worst;
}

} // namespace moentwine
