#include "mapping/mapping.hh"

#include <tuple>

#include "common/logging.hh"
#include "mapping/ring_order.hh"

namespace moentwine {

Mapping::Mapping(const Topology &topo)
    : topo_(topo)
{
}

void
Mapping::finalize()
{
    MOE_ASSERT(!tpGroups_.empty(), "mapping has no TP groups");
    MOE_ASSERT(!ftds_.empty(), "mapping has no FTDs");
    const auto n = static_cast<std::size_t>(numDevices());
    groupOf_.assign(n, -1);
    rankOf_.assign(n, -1);
    ftdIndexOf_.assign(n, -1);

    for (std::size_t g = 0; g < tpGroups_.size(); ++g) {
        for (std::size_t r = 0; r < tpGroups_[g].size(); ++r) {
            const DeviceId d = tpGroups_[g][r];
            MOE_ASSERT(d >= 0 && static_cast<std::size_t>(d) < n,
                       "TP group member out of range");
            MOE_ASSERT(groupOf_[static_cast<std::size_t>(d)] == -1,
                       "device appears in two TP groups");
            groupOf_[static_cast<std::size_t>(d)] = static_cast<int>(g);
            rankOf_[static_cast<std::size_t>(d)] = static_cast<int>(r);
        }
    }
    for (std::size_t f = 0; f < ftds_.size(); ++f) {
        for (const DeviceId d : ftds_[f]) {
            MOE_ASSERT(d >= 0 && static_cast<std::size_t>(d) < n,
                       "FTD member out of range");
            MOE_ASSERT(ftdIndexOf_[static_cast<std::size_t>(d)] == -1,
                       "device appears in two FTDs");
            ftdIndexOf_[static_cast<std::size_t>(d)] =
                static_cast<int>(f);
        }
    }
    for (std::size_t d = 0; d < n; ++d) {
        MOE_ASSERT(groupOf_[d] >= 0, "device missing from TP groups");
        MOE_ASSERT(ftdIndexOf_[d] >= 0, "device missing from FTDs");
    }

    // FTDs are fixed, so their collective ring orders are derived once
    // here instead of per call at the engine layer.
    ftdRings_.clear();
    ftdRings_.reserve(ftds_.size());
    for (const auto &ftd : ftds_)
        ftdRings_.push_back(serpentineRing(topo_, ftd));
}

int
Mapping::tpGroupOf(DeviceId d) const
{
    MOE_ASSERT(d >= 0 && d < numDevices(), "tpGroupOf: bad device");
    return groupOf_[static_cast<std::size_t>(d)];
}

int
Mapping::tpRankOf(DeviceId d) const
{
    MOE_ASSERT(d >= 0 && d < numDevices(), "tpRankOf: bad device");
    return rankOf_[static_cast<std::size_t>(d)];
}

int
Mapping::ftdOf(DeviceId d) const
{
    MOE_ASSERT(d >= 0 && d < numDevices(), "ftdOf: bad device");
    return ftdIndexOf_[static_cast<std::size_t>(d)];
}

CollectiveTiming
Mapping::allReduce(double bytesPerGroup, bool withAllGather) const
{
    CollectiveScratch scratch(topo_);
    const double time =
        allReduceInto(bytesPerGroup, withAllGather, scratch);
    return CollectiveTiming{time, std::move(scratch.traffic)};
}

double
Mapping::allReduceInto(double bytesPerGroup, bool withAllGather,
                       CollectiveScratch &scratch) const
{
    return allReduceInto(topo_, bytesPerGroup, withAllGather, scratch);
}

double
Mapping::allReduceInto(const Topology &onTopo, double bytesPerGroup,
                       bool withAllGather,
                       CollectiveScratch &scratch) const
{
    return ringCollectiveInto(onTopo, tpGroups_, bytesPerGroup,
                              withAllGather ? RingOp::AllReduce
                                            : RingOp::ReduceScatter,
                              staggeredRings(), scratch);
}

DeviceId
Mapping::dispatchSource(int group, int rank, DeviceId expertDevice,
                        bool allGatherRetained) const
{
    MOE_ASSERT(group >= 0 && group < dp(), "bad TP group index");
    const auto &members = tpGroups_[static_cast<std::size_t>(group)];
    MOE_ASSERT(rank >= 0 && static_cast<std::size_t>(rank) <
                   members.size(),
               "bad shard rank");
    if (!allGatherRetained) {
        // Only the reduce-scatter owner holds the shard.
        return members[static_cast<std::size_t>(rank)];
    }
    return nearestGroupMember(group, expertDevice);
}

void
Mapping::buildDispatchTable(bool allGatherRetained,
                            std::vector<DeviceId> &table) const
{
    const auto devices = static_cast<std::size_t>(numDevices());
    table.resize(static_cast<std::size_t>(dp()) *
                 static_cast<std::size_t>(tp()) * devices);
    std::size_t i = 0;
    for (int g = 0; g < dp(); ++g)
        for (int r = 0; r < tp(); ++r)
            for (DeviceId d = 0; d < numDevices(); ++d, ++i)
                table[i] = dispatchSource(g, r, d, allGatherRetained);
}

DeviceId
Mapping::dispatchSourceCached(int group, int rank, DeviceId expertDevice,
                              bool allGatherRetained) const
{
    // call_once publishes the finished table, so engines on different
    // threads sharing one const mapping cannot observe a partial build.
    auto &table = allGatherRetained ? dispatchSrcAg_ : dispatchSrcNoAg_;
    std::call_once(allGatherRetained ? dispatchOnceAg_ : dispatchOnceNoAg_,
                   [&] { buildDispatchTable(allGatherRetained, table); });
    const auto devices = static_cast<std::size_t>(numDevices());
    MOE_ASSERT(group >= 0 && group < dp(), "bad TP group index");
    MOE_ASSERT(rank >= 0 && rank < tp(), "bad shard rank");
    MOE_ASSERT(expertDevice >= 0 && expertDevice < numDevices(),
               "bad expert device");
    return table[(static_cast<std::size_t>(group) *
                      static_cast<std::size_t>(tp()) +
                  static_cast<std::size_t>(rank)) *
                     devices +
                 static_cast<std::size_t>(expertDevice)];
}

void
Mapping::prewarmCaches() const
{
    topo_.finalizeRoutes();
    // Force both dispatch memo tables through the once-guard.
    if (dp() > 0 && numDevices() > 0) {
        (void)dispatchSourceCached(0, 0, 0, true);
        (void)dispatchSourceCached(0, 0, 0, false);
    }
}

double
Mapping::dispatchDedupFactor(DeviceId, DeviceId, int) const
{
    return 1.0;
}

DeviceId
Mapping::nearestGroupMember(int group, DeviceId to) const
{
    MOE_ASSERT(group >= 0 && group < dp(), "bad TP group index");
    const auto &members = tpGroups_[static_cast<std::size_t>(group)];
    const int targetFtd = ftdOf(to);
    if (confineDispatchToFtd()) {
        for (const DeviceId m : members)
            if (ftdOf(m) == targetFtd)
                return m;
        // No group member in the destination's FTD (should not happen
        // for ER-style mappings); fall through to nearest.
    }
    // Rank members by hop count; ties prefer the member sharing the
    // target's FTD (keeping all-to-all traffic domain-confined, the
    // property ER-Mapping is built around), then the lower id.
    auto rank = [&](DeviceId m) {
        return std::tuple<int, int, DeviceId>(
            topo_.hops(m, to), ftdOf(m) == targetFtd ? 0 : 1, m);
    };
    DeviceId best = members.front();
    auto bestRank = rank(best);
    for (const DeviceId m : members) {
        const auto r = rank(m);
        if (r < bestRank) {
            best = m;
            bestRank = r;
        }
    }
    return best;
}

} // namespace moentwine
