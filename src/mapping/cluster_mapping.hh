/**
 * @file
 * Parallelism mapping for switch-based GPU clusters (DGX, NVL72).
 *
 * TP groups are consecutive device blocks, kept inside a node whenever
 * TP does not exceed the node size — the standard deployment on GPU
 * systems, where NVLink carries the all-reduce. FTD structure is not
 * meaningful on a switched fabric (every device is one switch domain
 * away from every other), so the whole cluster is reported as a single
 * FTD.
 */

#ifndef MOENTWINE_MAPPING_CLUSTER_MAPPING_HH
#define MOENTWINE_MAPPING_CLUSTER_MAPPING_HH

#include <array>
#include <atomic>
#include <string>

#include "mapping/mapping.hh"
#include "topology/switch_cluster.hh"

namespace moentwine {

/**
 * Block TP placement on a switch cluster.
 */
class ClusterMapping : public Mapping
{
  public:
    /**
     * @param cluster Cluster to map onto.
     * @param tp      Tensor-parallel degree (divides the device count).
     */
    ClusterMapping(const SwitchClusterTopology &cluster, int tp);

    std::string name() const override { return "Cluster"; }

    bool staggeredRings() const override { return false; }

    double dispatchDedupFactor(DeviceId src, DeviceId dst,
                               int topk) const override;

    /** The cluster this mapping is placed on. */
    const SwitchClusterTopology &cluster() const { return cluster_; }

  private:
    const SwitchClusterTopology &cluster_;
    /** Largest topk the cross-node dedup memo covers. */
    static constexpr int kMaxMemoTopk = 64;
    // Per-topk memo of the cross-node dedup factor. Entries are
    // idempotent functions of topk alone, stored as relaxed atomics
    // (0 = unset) so engines on different threads sharing one const
    // mapping may race on first use without UB: racing writers store
    // the identical value.
    mutable std::array<std::atomic<double>, kMaxMemoTopk + 1> crossMemo_{};
};

} // namespace moentwine

#endif // MOENTWINE_MAPPING_CLUSTER_MAPPING_HH
