#include "mapping/ftd.hh"

#include <algorithm>

#include "common/logging.hh"

namespace moentwine {

BoundingBox
ftdBoundingBox(const MeshTopology &mesh, const std::vector<DeviceId> &ftd)
{
    MOE_ASSERT(!ftd.empty(), "bounding box of empty FTD");
    BoundingBox box{1 << 30, 1 << 30, -1, -1};
    for (const DeviceId d : ftd) {
        const Coord c = mesh.coordOf(d);
        box.rowLo = std::min(box.rowLo, c.row);
        box.colLo = std::min(box.colLo, c.col);
        box.rowHi = std::max(box.rowHi, c.row);
        box.colHi = std::max(box.colHi, c.col);
    }
    return box;
}

double
ftdAverageHops(const MeshTopology &mesh, const std::vector<DeviceId> &ftd)
{
    MOE_ASSERT(!ftd.empty(), "average hops of empty FTD");
    if (ftd.size() == 1)
        return 0.0;
    double total = 0.0;
    int pairs = 0;
    for (const DeviceId a : ftd) {
        for (const DeviceId b : ftd) {
            if (a == b)
                continue;
            total += mesh.manhattan(a, b);
            ++pairs;
        }
    }
    return total / pairs;
}

int
countFtdIntersections(const MeshTopology &mesh,
                      const std::vector<std::vector<DeviceId>> &ftds)
{
    std::vector<BoundingBox> boxes;
    boxes.reserve(ftds.size());
    for (const auto &ftd : ftds)
        boxes.push_back(ftdBoundingBox(mesh, ftd));
    int count = 0;
    for (std::size_t i = 0; i < boxes.size(); ++i)
        for (std::size_t j = i + 1; j < boxes.size(); ++j)
            if (boxes[i].overlaps(boxes[j]))
                ++count;
    return count;
}

} // namespace moentwine
