/**
 * @file
 * Abstract parallelism mapping: how attention-layer TP groups and
 * MoE-layer experts are placed on the devices of a topology.
 *
 * A mapping owns three structures:
 *  - TP groups in ring order (the all-reduce rings of the attention
 *    layer). Group g's rank r device holds the r-th token shard of its
 *    group after a reduce-scatter;
 *  - FTDs (Full Token Domains): the minimal device sets that together
 *    hold tokens from every TP group. Their geometry governs all-to-all
 *    cost (Section IV-A of the paper);
 *  - the dispatch-source rule: which device supplies a token to an
 *    expert device, which depends on whether the all-gather half of the
 *    all-reduce was retained (Fig. 9).
 *
 * Concrete mappings: BaselineMapping (contiguous TP blocks),
 * ErMapping (entwined strided TP groups), HierarchicalErMapping
 * (per-wafer ER with hierarchical all-reduce), ClusterMapping (GPU
 * baselines on switch topologies).
 */

#ifndef MOENTWINE_MAPPING_MAPPING_HH
#define MOENTWINE_MAPPING_MAPPING_HH

#include <mutex>
#include <string>
#include <vector>

#include "network/collectives.hh"
#include "network/traffic_accum.hh"
#include "topology/topology.hh"

namespace moentwine {

/**
 * Base class of all parallelism mappings.
 */
class Mapping
{
  public:
    virtual ~Mapping() = default;

    /** The topology this mapping is placed on. */
    const Topology &topology() const { return topo_; }

    /** Number of compute devices. */
    int numDevices() const { return topo_.numDevices(); }

    /** Tensor-parallel degree (size of each TP group). */
    int tp() const { return static_cast<int>(tpGroups_.front().size()); }

    /** Data-parallel degree (number of TP groups). */
    int dp() const { return static_cast<int>(tpGroups_.size()); }

    /** TP groups, each in all-reduce ring order. */
    const std::vector<std::vector<DeviceId>> &tpGroups() const
    {
        return tpGroups_;
    }

    /** TP group (DP shard) index of a device. */
    int tpGroupOf(DeviceId d) const;

    /** Ring position of a device within its TP group. */
    int tpRankOf(DeviceId d) const;

    /** Full Token Domains (disjoint device sets covering all groups). */
    const std::vector<std::vector<DeviceId>> &ftds() const { return ftds_; }

    /** FTD index of a device. */
    int ftdOf(DeviceId d) const;

    /**
     * Every FTD ordered as a short-step collective ring (serpentine on
     * meshes, stored order elsewhere). Memoised eagerly at finalize()
     * — FTDs are fixed — so the engine's ESP expert all-reduce and any
     * other FTD-wide collective never re-derive ring orders per call.
     */
    const std::vector<std::vector<DeviceId>> &ftdRings() const
    {
        return ftdRings_;
    }

    /** Mapping name for bench output. */
    virtual std::string name() const = 0;

    /**
     * Whether concurrent all-reduce rings use the time-staggered
     * entwined schedule (true for ER-style mappings).
     */
    virtual bool staggeredRings() const = 0;

    /**
     * Attention-layer all-reduce over all TP groups concurrently.
     * @param bytesPerGroup Full activation tensor bytes of one group.
     * @param withAllGather Retain the all-gather half (Fig. 9); when
     *        false only the reduce-scatter runs.
     */
    CollectiveTiming allReduce(double bytesPerGroup,
                               bool withAllGather) const;

    /**
     * Allocation-free allReduce(): identical timing, with the per-link
     * traffic accumulated into @p scratch (engine-owned, reused across
     * iterations) instead of a freshly allocated PhaseTraffic.
     * Forwards to the topology-explicit overload below with the
     * construction topology.
     */
    double allReduceInto(double bytesPerGroup, bool withAllGather,
                         CollectiveScratch &scratch) const;

    /**
     * allReduceInto() with this mapping's ring schedule charged over
     * @p onTopo instead of the construction topology. The virtual
     * customisation point (HER-Mapping overrides it with the
     * hierarchical two-stage schedule). The fault layer passes the
     * degraded overlay here — identical link ids, mutated bandwidths
     * and routes — so all-reduce cost reacts to degraded links without
     * rebuilding the mapping.
     */
    virtual double allReduceInto(const Topology &onTopo,
                                 double bytesPerGroup, bool withAllGather,
                                 CollectiveScratch &scratch) const;

    /**
     * Device that supplies tokens of (TP group, shard rank) to an
     * expert device during dispatch (and receives the combined output).
     *
     * @param group    Owning TP group of the token shard.
     * @param rank     Shard rank within the group (reduce-scatter slot).
     * @param expertDevice Destination expert device.
     * @param allGatherRetained With all-gather, every group member holds
     *        the shard so the topologically nearest one serves; without
     *        it only the rank-owner can.
     */
    virtual DeviceId dispatchSource(int group, int rank,
                                    DeviceId expertDevice,
                                    bool allGatherRetained) const;

    /**
     * Memoised dispatchSource(): identical result, answered from a
     * lazily built (group, rank, destination) table so the token
     * router's per-iteration hot path performs no route walks and no
     * allocation. Mappings are immutable after construction, so the
     * table never invalidates; the lazy build is once-guarded so
     * engines on different threads may share one const mapping.
     */
    DeviceId dispatchSourceCached(int group, int rank,
                                  DeviceId expertDevice,
                                  bool allGatherRetained) const;

    /**
     * Eagerly build every lazy cache a const mapping query could
     * otherwise populate on first use: the topology's all-pairs route
     * table and both dispatch-source memo tables. System::make calls
     * this so a System handed to sweep worker threads as
     * shared_ptr<const> has no cold caches left to contend on.
     */
    void prewarmCaches() const;

    /**
     * True when dispatchSource() ignores the shard rank under the
     * given all-gather mode (with the all-gather retained, every group
     * member holds every shard, so the chosen source depends only on
     * the destination). The token router's aggregated path collapses
     * its TP-rank loop into one contribution per replica when this
     * holds. Mappings with rank-dependent sources (HER's per-wafer
     * mirrors) must override to return false.
     */
    virtual bool dispatchSourceRankInvariant(bool allGatherRetained) const
    {
        return allGatherRetained;
    }

    /**
     * Traffic-accumulator storage policy the token router applies to
     * this mapping's systems (see TrafficStorageKind). A configuration
     * hook, not runtime state: System::make sets it once before the
     * mapping is shared across threads — NOT thread-safe against
     * concurrent routeTokens calls.
     */
    void setTrafficStorage(TrafficStorageKind kind)
    {
        trafficStorage_ = kind;
    }

    /** The configured traffic-accumulator policy (may be Auto). */
    TrafficStorageKind trafficStorage() const { return trafficStorage_; }

    /** The storage the configured policy resolves to for this system. */
    TrafficStorageKind activeTrafficStorage() const
    {
        return TrafficAccumulator::resolve(trafficStorage_, numDevices());
    }

    /**
     * Whether dispatch sources are confined to the destination's FTD.
     * ER-style mappings return true: every FTD holds exactly one
     * member of every TP group, and serving from it keeps all-to-all
     * traffic strictly domain-local even when a neighbouring domain's
     * member is physically closer (Section IV-A: "confining
     * communication to this domain").
     */
    virtual bool confineDispatchToFtd() const { return false; }

    /**
     * Dispatch-source member of a TP group for a destination device:
     * the FTD-local member when the mapping confines dispatch,
     * otherwise the topologically nearest member (ties prefer the
     * destination's FTD, then the lower id).
     */
    DeviceId nearestGroupMember(int group, DeviceId to) const;

    /**
     * Volume reduction factor for a dispatch/combine flow, modelling
     * hierarchical all-to-all optimisations (DeepSpeed-MoE style): on
     * switch clusters, tokens heading to several experts on the same
     * remote node cross the inter-node fabric once, shrinking the
     * cross-node volume by N·(1−(1−1/N)^k)/k. Mesh mappings impose no
     * routing restriction and return 1.
     *
     * @param src  Flow source device.
     * @param dst  Flow destination device.
     * @param topk Experts activated per token.
     */
    virtual double dispatchDedupFactor(DeviceId src, DeviceId dst,
                                       int topk) const;

  protected:
    explicit Mapping(const Topology &topo);

    /**
     * Build the reverse indices; must be called by every concrete
     * constructor after populating tpGroups_ and ftds_.
     */
    void finalize();

    const Topology &topo_;
    std::vector<std::vector<DeviceId>> tpGroups_;
    std::vector<std::vector<DeviceId>> ftds_;

  private:
    /** Fill @p table with all (group, rank, destination) sources. */
    void buildDispatchTable(bool allGatherRetained,
                            std::vector<DeviceId> &table) const;

    TrafficStorageKind trafficStorage_ = TrafficStorageKind::Auto;
    std::vector<int> groupOf_;
    std::vector<int> rankOf_;
    std::vector<int> ftdIndexOf_;
    // FTD collective rings, derived once in finalize().
    std::vector<std::vector<DeviceId>> ftdRings_;
    // dispatchSource memo, one table per allGatherRetained value,
    // indexed [(group · tp + rank) · devices + destination]; built on
    // first dispatchSourceCached() call with that flag. once-guarded
    // so concurrent first use from sweep workers is safe.
    mutable std::once_flag dispatchOnceAg_;
    mutable std::once_flag dispatchOnceNoAg_;
    mutable std::vector<DeviceId> dispatchSrcAg_;
    mutable std::vector<DeviceId> dispatchSrcNoAg_;
};

} // namespace moentwine

#endif // MOENTWINE_MAPPING_MAPPING_HH
