#include "mapping/her_mapping.hh"

#include "common/logging.hh"
#include "mapping/er_mapping.hh"
#include "mapping/ring_order.hh"

namespace moentwine {

HierarchicalErMapping::HierarchicalErMapping(const MeshTopology &mesh,
                                             ParallelismConfig par)
    : Mapping(mesh), mesh_(mesh), par_(par)
{
    const int wr = mesh.waferRows();
    const int wc = mesh.waferCols();
    if (wr % par.tpX != 0 || wc % par.tpY != 0) {
        fatal("HER-Mapping: TP shape " + par.label() +
              " does not divide the " + std::to_string(wr) + "x" +
              std::to_string(wc) + " wafer");
    }
    const int strideRows = wr / par.tpX;
    const int strideCols = wc / par.tpY;

    // Per-wafer ER placement: strided TP groups and block FTDs, offset
    // into each wafer tile of the global mesh.
    const auto cycle = gridCycle(par.tpX, par.tpY);
    for (int w = 0; w < mesh.numWafers(); ++w) {
        const auto devs = mesh.waferDevices(w);
        const Coord origin = mesh.coordOf(devs.front());
        for (int i = 0; i < strideRows; ++i) {
            for (int j = 0; j < strideCols; ++j) {
                std::vector<DeviceId> group;
                group.reserve(cycle.size());
                for (const auto &[s, t] : cycle) {
                    group.push_back(mesh.deviceAt(
                        origin.row + i + s * strideRows,
                        origin.col + j + t * strideCols));
                }
                tpGroups_.push_back(std::move(group));
            }
        }
        for (int p = 0; p < par.tpX; ++p) {
            for (int q = 0; q < par.tpY; ++q) {
                std::vector<DeviceId> ftd;
                ftd.reserve(
                    static_cast<std::size_t>(strideRows * strideCols));
                for (int i = 0; i < strideRows; ++i)
                    for (int j = 0; j < strideCols; ++j)
                        ftd.push_back(mesh.deviceAt(
                            origin.row + p * strideRows + i,
                            origin.col + q * strideCols + j));
                ftds_.push_back(std::move(ftd));
            }
        }
    }

    // Inter-wafer all-gather rings: mirrors of each within-wafer
    // position across all wafers, in wafer order. Wafer device lists
    // are materialised once, not once per (position, wafer).
    const int perWafer = mesh.devicesPerWafer();
    std::vector<std::vector<DeviceId>> waferDevs;
    waferDevs.reserve(static_cast<std::size_t>(mesh.numWafers()));
    for (int w = 0; w < mesh.numWafers(); ++w)
        waferDevs.push_back(mesh.waferDevices(w));
    for (int local = 0; local < perWafer; ++local) {
        std::vector<DeviceId> ring;
        ring.reserve(static_cast<std::size_t>(mesh.numWafers()));
        for (int w = 0; w < mesh.numWafers(); ++w)
            ring.push_back(
                waferDevs[static_cast<std::size_t>(w)]
                         [static_cast<std::size_t>(local)]);
        interRings_.push_back(std::move(ring));
    }

    finalize();
}

double
HierarchicalErMapping::allReduceInto(const Topology &onTopo,
                                     double bytesPerGroup,
                                     bool withAllGather,
                                     CollectiveScratch &scratch) const
{
    if (!withAllGather || mesh_.numWafers() == 1) {
        // Single wafer degenerates to plain entwined-ring all-reduce.
        return Mapping::allReduceInto(onTopo, bytesPerGroup,
                                      withAllGather, scratch);
    }
    return hierarchicalAllReduceInto(onTopo, tpGroups_, interRings_,
                                     bytesPerGroup, scratch);
}

DeviceId
HierarchicalErMapping::dispatchSource(int group, int rank,
                                      DeviceId expertDevice,
                                      bool allGatherRetained) const
{
    const auto &members = tpGroups_[static_cast<std::size_t>(group)];
    const DeviceId owner = members[static_cast<std::size_t>(rank)];
    if (!allGatherRetained) {
        return owner;
    }
    // After the inter-wafer all-gather, the shard is replicated on the
    // owner's mirror of every wafer; serve from the expert's wafer.
    return mirrorOn(owner, mesh_.waferOf(expertDevice));
}

DeviceId
HierarchicalErMapping::mirrorOn(DeviceId d, int wafer) const
{
    // The mirror shares the device's within-wafer coordinate, so it is
    // pure coordinate arithmetic — no per-call wafer-device lists. The
    // dispatch-source memo build issues O(dp · tp · devices) calls
    // (268M at 16k devices), which made the old list-building linear
    // scan the scale bottleneck.
    const Coord c = mesh_.coordOf(d);
    const int localRow = c.row % mesh_.waferRows();
    const int localCol = c.col % mesh_.waferCols();
    const int wgCols = mesh_.spec().waferGridCols;
    return mesh_.deviceAt(
        (wafer / wgCols) * mesh_.waferRows() + localRow,
        (wafer % wgCols) * mesh_.waferCols() + localCol);
}

} // namespace moentwine
