/**
 * @file
 * Entwined Ring Mapping (ER-Mapping, Fig. 10(a) of the paper).
 *
 * TP groups are *strided* over the mesh: group (i, j) contains the
 * devices at coordinates {(i + s·a, j + t·b)} with a = rows/tpX and
 * b = cols/tpY. Every contiguous a×b block then holds exactly one
 * member of every TP group and forms a compact, non-overlapping FTD —
 * all-to-all traffic stays inside these blocks, eliminating the central
 * congestion of the baseline mapping. The price is that all-reduce
 * rings become "entwined": consecutive ring members sit a (or b) mesh
 * hops apart, and intersecting rings are time-staggered (Fig. 8(d)).
 */

#ifndef MOENTWINE_MAPPING_ER_MAPPING_HH
#define MOENTWINE_MAPPING_ER_MAPPING_HH

#include <string>

#include "mapping/mapping.hh"
#include "mapping/parallelism.hh"
#include "topology/mesh.hh"

namespace moentwine {

/**
 * Strided (entwined) TP placement on a mesh.
 */
class ErMapping : public Mapping
{
  public:
    /**
     * @param mesh Mesh to map onto (rows divisible by tpX, cols by tpY).
     * @param par  TP shape.
     */
    ErMapping(const MeshTopology &mesh, ParallelismConfig par);

    std::string name() const override { return "ER-Mapping"; }

    /** Entwined rings rely on the time-staggered schedule. */
    bool staggeredRings() const override { return true; }

    /** Each FTD block holds one member of every group: serve locally. */
    bool confineDispatchToFtd() const override { return true; }

    /** Row stride between TP-group members (a = rows / tpX). */
    int strideRows() const { return strideRows_; }

    /** Column stride between TP-group members (b = cols / tpY). */
    int strideCols() const { return strideCols_; }

    /** The TP shape used. */
    const ParallelismConfig &parallelism() const { return par_; }

    /** The mesh this mapping is placed on. */
    const MeshTopology &mesh() const { return mesh_; }

  private:
    const MeshTopology &mesh_;
    ParallelismConfig par_;
    int strideRows_;
    int strideCols_;
};

} // namespace moentwine

#endif // MOENTWINE_MAPPING_ER_MAPPING_HH
