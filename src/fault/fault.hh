/**
 * @file
 * Umbrella header for the fault-injection & degraded-operation layer.
 * See fault_plan.hh for the event vocabulary and the determinism
 * contract shared by everything under src/fault/.
 */

#ifndef MOENTWINE_FAULT_FAULT_HH
#define MOENTWINE_FAULT_FAULT_HH

#include "fault/fault_injector.hh"
#include "fault/fault_plan.hh"
#include "fault/fault_topology.hh"
#include "fault/scenarios.hh"

#endif // MOENTWINE_FAULT_FAULT_HH
