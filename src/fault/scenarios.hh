/**
 * @file
 * Named fault scenarios: deterministic FaultPlan generators keyed by a
 * sweepable enum, so fault injection can be a grid axis next to
 * balancers and arrival processes.
 *
 * Every generator derives its targets from the topology alone (the
 * central device and its lowest-id outgoing link, both directions), so
 * a (kind, topology, spec) triple always yields the same plan — no RNG,
 * no wall clock, per the src/fault/ determinism contract.
 */

#ifndef MOENTWINE_FAULT_SCENARIOS_HH
#define MOENTWINE_FAULT_SCENARIOS_HH

#include <string>

#include "fault/fault_plan.hh"

namespace moentwine {

class Topology;

/** Sweepable fault scenarios, mildest first. */
enum class FaultScenarioKind
{
    /** Empty plan: the bitwise-identical fault-free path. */
    None,
    /** Central link pair degraded, later restored. */
    DegradedLinks,
    /** Central link pair failed (reroute), later restored. */
    LinkCut,
    /** Central device slowed, later back to nominal. */
    Straggler,
    /** Central device fails permanently. */
    NodeLoss,
    /** Degrade → link cut + straggler → node loss → link restore. */
    Cascade,
};

/** Short lowercase scenario name for bench output ("linkcut", ...). */
std::string faultScenarioName(FaultScenarioKind kind);

/** Shape parameters shared by the scenario generators. */
struct FaultScenarioSpec
{
    /** Iteration of the first event. */
    int startIteration = 20;
    /** Iterations between staged events of one scenario. */
    int spacing = 30;
    /** LinkDegrade bandwidth factor. */
    double degradeFactor = 0.3;
    /** SlowNode compute factor. */
    double slowFactor = 2.5;
};

/** Build the deterministic plan of @p kind for @p topo. */
FaultPlan makeFaultScenario(FaultScenarioKind kind, const Topology &topo,
                            const FaultScenarioSpec &spec = {});

} // namespace moentwine

#endif // MOENTWINE_FAULT_SCENARIOS_HH
