/**
 * @file
 * Timestamped fault plans: the event vocabulary of the degraded-
 * operation layer.
 *
 * A FaultPlan is an ordered list of events stamped with the engine
 * iteration at which they take effect. The vocabulary is exactly five
 * events:
 *
 *  - LinkDegrade{link, bwFactor}: the link runs at bwFactor × its
 *    nameplate bandwidth (0 < bwFactor <= 1). Degrades are absolute,
 *    not cumulative: a second degrade of the same link replaces the
 *    first.
 *  - LinkFail{link}: the link carries no traffic; routes are
 *    recomputed to avoid it. A (src, dst) pair left with no live path
 *    is reported as unreachable, never silently mis-routed.
 *  - LinkRestore{link}: the link returns to nameplate bandwidth,
 *    clearing both a degrade and a failure.
 *  - SlowNode{node, computeFactor}: the device's compute time scales
 *    by computeFactor (> 0; a factor of 1 clears the straggler).
 *  - NodeFail{node}: the device stops computing permanently. Its NoC
 *    router keeps forwarding (model a fully dead die by also failing
 *    its links). Device loss is monotone: a LinkRestore that reconnects
 *    an isolated device returns link capacity, but the drained device
 *    stays lost — re-homed experts do not move back.
 *
 * Determinism contract: fault application is a pure function of the
 * plan and the iteration counter. Events are consumed at iteration
 * boundaries in plan order (ties at the same iteration apply in list
 * order), reroutes are min-hop with ascending node/link-id tie-breaks,
 * and no wall-clock or RNG state is consulted anywhere in src/fault/.
 * Two runs of the same plan over the same system are bitwise
 * identical, across thread counts — and an empty plan is bitwise
 * identical to the fault-free engine and serving paths.
 */

#ifndef MOENTWINE_FAULT_FAULT_PLAN_HH
#define MOENTWINE_FAULT_FAULT_PLAN_HH

#include <string>
#include <vector>

#include "topology/graph.hh"

namespace moentwine {

class Topology;

/** The five fault-event kinds (see file comment for semantics). */
enum class FaultEventKind
{
    LinkDegrade,
    LinkFail,
    LinkRestore,
    SlowNode,
    NodeFail,
};

/** Human-readable kind name for reports and bench output. */
std::string faultEventKindName(FaultEventKind kind);

/** One timestamped fault event. Build via the named factories. */
struct FaultEvent
{
    /** Engine iteration at whose boundary the event applies. */
    int iteration = 0;
    FaultEventKind kind = FaultEventKind::LinkDegrade;
    /** LinkId for link events, DeviceId for node events. */
    int target = -1;
    /** bwFactor (LinkDegrade) or computeFactor (SlowNode); else 1. */
    double factor = 1.0;

    static FaultEvent linkDegrade(int iteration, LinkId link,
                                  double bwFactor);
    static FaultEvent linkFail(int iteration, LinkId link);
    static FaultEvent linkRestore(int iteration, LinkId link);
    static FaultEvent slowNode(int iteration, DeviceId node,
                               double computeFactor);
    static FaultEvent nodeFail(int iteration, DeviceId node);
};

/** Short "kind(target)@iteration" description for logs and reports. */
std::string describe(const FaultEvent &event);

/**
 * An ordered, timestamped list of fault events. An empty plan is the
 * fault-free fast path: every consumer bypasses its fault logic
 * entirely, preserving bitwise-identical outputs.
 */
struct FaultPlan
{
    std::vector<FaultEvent> events;

    bool empty() const { return events.empty(); }

    /**
     * Reject malformed plans loudly (fatal): out-of-range link/device
     * targets for @p topo, negative or non-monotone iterations, and
     * out-of-domain factors. FaultInjector validates at construction.
     */
    void validate(const Topology &topo) const;
};

} // namespace moentwine

#endif // MOENTWINE_FAULT_FAULT_PLAN_HH
