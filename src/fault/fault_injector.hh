/**
 * @file
 * FaultInjector: applies a validated FaultPlan to a base topology at
 * iteration boundaries and exposes the resulting degraded state.
 *
 * The injector owns the FaultTopology overlay (built lazily on the
 * first link event; topology() serves the base until then) and the
 * per-device straggler/lost state. advanceTo(iteration) applies every
 * not-yet-applied event stamped <= iteration, in plan order, and is
 * idempotent: the serving simulator advances before admission and the
 * engine advances again inside step() at the same iteration — the
 * second call is a no-op. Consumers therefore react to *state* (the
 * topologyEpoch() counter, the lostDevices() list), never to call-
 * specific deltas.
 *
 * Device loss (NodeFail, or isolation by link failures) is monotone:
 * restored links return capacity, but a drained device stays lost.
 */

#ifndef MOENTWINE_FAULT_FAULT_INJECTOR_HH
#define MOENTWINE_FAULT_FAULT_INJECTOR_HH

#include <memory>
#include <vector>

#include "fault/fault_plan.hh"
#include "fault/fault_topology.hh"
#include "obs/stat_registry.hh"

namespace moentwine {

class FaultInjector
{
  public:
    /**
     * Validate @p plan against @p base (fatal on malformed plans) and
     * start with no events applied. @p base must outlive the injector.
     */
    FaultInjector(const Topology &base, FaultPlan plan);

    /** True for the no-fault fast path (consumers bypass entirely). */
    bool empty() const { return plan_.empty(); }

    /** The plan this injector applies. */
    const FaultPlan &plan() const { return plan_; }

    /** The pristine topology the overlay shadows. */
    const Topology &baseTopology() const { return *base_; }

    /**
     * The topology consumers should route over: the degraded overlay
     * once any link event has applied, the base before that.
     */
    const Topology &topology() const
    {
        return overlay_ ? static_cast<const Topology &>(*overlay_)
                        : *base_;
    }

    /**
     * Apply all unapplied events stamped <= @p iteration (in plan
     * order; link reroutes rebuild once per boundary, after the
     * boundary's last link event). Idempotent per iteration.
     * @return Number of events applied by THIS call.
     */
    int advanceTo(int iteration);

    /** Total events applied so far. */
    int appliedEvents() const { return static_cast<int>(nextEvent_); }

    /**
     * Bumped every time link state (and hence routing or bandwidth)
     * changes. Consumers compare against their last-seen value to know
     * when to retarget traffic accumulators onto topology().
     */
    int topologyEpoch() const { return topologyEpoch_; }

    /** Straggler compute-time multiplier of a device (1 = nominal). */
    double computeFactor(DeviceId d) const
    {
        return computeFactor_[static_cast<std::size_t>(d)];
    }

    /** Max straggler factor over live devices (lockstep TP bound). */
    double maxLiveComputeFactor() const;

    /** True once the device failed or was isolated (monotone). */
    bool deviceLost(DeviceId d) const
    {
        return lost_[static_cast<std::size_t>(d)] != 0;
    }

    /** Lost devices in the order they were lost (stable, append-only). */
    const std::vector<DeviceId> &lostDevices() const { return lostList_; }

    /** Devices not lost. */
    int liveDeviceCount() const
    {
        return base_->numDevices() - static_cast<int>(lostList_.size());
    }

    /** Live fraction of the fleet, in (0, 1]. */
    double liveFraction() const
    {
        return static_cast<double>(liveDeviceCount()) /
            static_cast<double>(base_->numDevices());
    }

    /** Reachability on the current topology (true fault-free). */
    bool reachable(DeviceId src, DeviceId dst) const
    {
        return overlay_ ? overlay_->reachable(src, dst) : true;
    }

    /**
     * Attach a stat registry (src/obs/): "fault.events_applied",
     * "fault.link_reroutes" (topology-epoch bumps) and
     * "fault.devices_lost" publish as events apply. Must be attached
     * before the first advanceTo(); null detaches. Publication never
     * changes fault state.
     */
    void attachStats(StatRegistry *stats);

  private:
    FaultTopology &ensureOverlay();
    void markLost(DeviceId d);

    const Topology *base_;
    FaultPlan plan_;
    std::size_t nextEvent_ = 0;
    int topologyEpoch_ = 0;
    std::unique_ptr<FaultTopology> overlay_;
    std::vector<double> computeFactor_;
    std::vector<char> lost_;
    std::vector<DeviceId> lostList_;

    // Observability (null = no-op path).
    StatRegistry *stats_ = nullptr;
    StatRegistry::Handle statEvents_;
    StatRegistry::Handle statReroutes_;
    StatRegistry::Handle statLost_;
};

} // namespace moentwine

#endif // MOENTWINE_FAULT_FAULT_INJECTOR_HH
