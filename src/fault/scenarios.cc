#include "fault/scenarios.hh"

#include <vector>

#include "common/logging.hh"
#include "topology/topology.hh"

namespace moentwine {

std::string
faultScenarioName(FaultScenarioKind kind)
{
    switch (kind) {
      case FaultScenarioKind::None:
        return "none";
      case FaultScenarioKind::DegradedLinks:
        return "degrade";
      case FaultScenarioKind::LinkCut:
        return "linkcut";
      case FaultScenarioKind::Straggler:
        return "straggler";
      case FaultScenarioKind::NodeLoss:
        return "nodeloss";
      case FaultScenarioKind::Cascade:
        return "cascade";
    }
    panic("unknown fault scenario kind");
}

namespace {

/**
 * The scenario's victim connection: the central device's lowest-id
 * outgoing link plus its reverse direction when one exists.
 */
std::vector<LinkId>
centralLinkPair(const Topology &topo, DeviceId center)
{
    LinkId first = -1;
    for (std::size_t l = 0; l < topo.links().size(); ++l) {
        if (topo.links()[l].src == center) {
            first = static_cast<LinkId>(l);
            break;
        }
    }
    MOE_ASSERT(first >= 0, "central device has no outgoing link");
    std::vector<LinkId> pair{first};
    const Link &link = topo.links()[static_cast<std::size_t>(first)];
    const LinkId reverse = topo.linkBetween(link.dst, link.src);
    if (reverse >= 0)
        pair.push_back(reverse);
    return pair;
}

} // namespace

FaultPlan
makeFaultScenario(FaultScenarioKind kind, const Topology &topo,
                  const FaultScenarioSpec &spec)
{
    FaultPlan plan;
    if (kind == FaultScenarioKind::None)
        return plan;

    MOE_ASSERT(spec.startIteration >= 0 && spec.spacing > 0,
               "scenario start/spacing out of range");
    const int devices = topo.numDevices();
    const DeviceId center = devices / 2;
    const DeviceId other = (center + 1) % devices;
    const auto pair = centralLinkPair(topo, center);
    const int t0 = spec.startIteration;
    const int dt = spec.spacing;
    auto &ev = plan.events;

    switch (kind) {
      case FaultScenarioKind::None:
        break;
      case FaultScenarioKind::DegradedLinks:
        for (const LinkId l : pair)
            ev.push_back(FaultEvent::linkDegrade(t0, l,
                                                 spec.degradeFactor));
        for (const LinkId l : pair)
            ev.push_back(FaultEvent::linkRestore(t0 + 2 * dt, l));
        break;
      case FaultScenarioKind::LinkCut:
        for (const LinkId l : pair)
            ev.push_back(FaultEvent::linkFail(t0, l));
        for (const LinkId l : pair)
            ev.push_back(FaultEvent::linkRestore(t0 + 2 * dt, l));
        break;
      case FaultScenarioKind::Straggler:
        ev.push_back(FaultEvent::slowNode(t0, center, spec.slowFactor));
        ev.push_back(FaultEvent::slowNode(t0 + 2 * dt, center, 1.0));
        break;
      case FaultScenarioKind::NodeLoss:
        ev.push_back(FaultEvent::nodeFail(t0, center));
        break;
      case FaultScenarioKind::Cascade:
        for (const LinkId l : pair)
            ev.push_back(FaultEvent::linkDegrade(t0, l,
                                                 spec.degradeFactor));
        for (const LinkId l : pair)
            ev.push_back(FaultEvent::linkFail(t0 + dt, l));
        ev.push_back(FaultEvent::slowNode(t0 + dt, other,
                                          spec.slowFactor));
        ev.push_back(FaultEvent::nodeFail(t0 + 2 * dt, center));
        for (const LinkId l : pair)
            ev.push_back(FaultEvent::linkRestore(t0 + 3 * dt, l));
        break;
    }
    return plan;
}

} // namespace moentwine
