#include "fault/fault_topology.hh"

#include <algorithm>
#include <deque>

#include "common/logging.hh"

namespace moentwine {

FaultTopology::FaultTopology(const Topology &base)
    : base_(&base), devices_(base.numDevices()), nodes_(base.numNodes())
{
    const auto &links = base.links();
    nameplate_.reserve(links.size());
    for (const Link &l : links) {
        addLink(l.src, l.dst, l.bandwidth, l.latency);
        nameplate_.push_back(l.bandwidth);
    }
    degradeFactor_.assign(links.size(), 1.0);
    failed_.assign(links.size(), 0);
    setRouteStorage(base.routeStorage());
}

std::string
FaultTopology::name() const
{
    return base_->name() + "+faults";
}

void
FaultTopology::applyBandwidth(LinkId link)
{
    const auto i = static_cast<std::size_t>(link);
    links_[i].bandwidth = failed_[i]
        ? kFailedLinkBandwidth
        : nameplate_[i] * degradeFactor_[i];
}

void
FaultTopology::degradeLink(LinkId link, double bwFactor)
{
    MOE_ASSERT(bwFactor > 0.0 && bwFactor <= 1.0,
               "degrade factor out of (0, 1]");
    degradeFactor_[static_cast<std::size_t>(link)] = bwFactor;
    applyBandwidth(link);
}

void
FaultTopology::failLink(LinkId link)
{
    const auto i = static_cast<std::size_t>(link);
    if (!failed_[i]) {
        failed_[i] = 1;
        ++failedLinkCount_;
    }
    applyBandwidth(link);
}

void
FaultTopology::restoreLink(LinkId link)
{
    const auto i = static_cast<std::size_t>(link);
    if (failed_[i]) {
        failed_[i] = 0;
        --failedLinkCount_;
    }
    degradeFactor_[i] = 1.0;
    applyBandwidth(link);
}

std::vector<LinkId>
FaultTopology::computeRoute(DeviceId src, DeviceId dst) const
{
    // Fault-free and degrade-only overlays keep the base paths; only
    // failures force the reroute trees.
    if (failedLinkCount_ == 0)
        return base_->computeRoute(src, dst);
    MOE_ASSERT(!towardDst_.empty(),
               "computeRoute before rebuildAfterFaults");
    std::vector<LinkId> out;
    if (src == dst)
        return out;
    NodeId n = src;
    while (n != dst) {
        const LinkId l = towardDst_[static_cast<std::size_t>(n) *
                                        static_cast<std::size_t>(devices_) +
                                    static_cast<std::size_t>(dst)];
        if (l < 0)
            return {}; // unreachable: reported, never mis-routed
        out.push_back(l);
        n = links_[static_cast<std::size_t>(l)].dst;
    }
    return out;
}

void
FaultTopology::rebuildAfterFaults()
{
    invalidateRouteStorage();
    if (failedLinkCount_ == 0) {
        towardDst_.clear();
        isolated_.clear();
        return;
    }
    buildRerouteTrees();
}

bool
FaultTopology::reachable(DeviceId src, DeviceId dst) const
{
    if (failedLinkCount_ == 0 || src == dst)
        return true;
    return towardDst_[static_cast<std::size_t>(src) *
                          static_cast<std::size_t>(devices_) +
                      static_cast<std::size_t>(dst)] >= 0;
}

void
FaultTopology::buildRerouteTrees()
{
    const auto nodes = static_cast<std::size_t>(nodes_);
    const auto devices = static_cast<std::size_t>(devices_);

    // Forward and reverse adjacency over live links. Links are pushed
    // in ascending id order, which is what makes the first matching
    // out-link below the lowest-id (deterministic) tie-break.
    std::vector<std::vector<LinkId>> out(nodes);
    std::vector<std::vector<LinkId>> in(nodes);
    for (std::size_t l = 0; l < links_.size(); ++l) {
        if (failed_[l])
            continue;
        out[static_cast<std::size_t>(links_[l].src)].push_back(
            static_cast<LinkId>(l));
        in[static_cast<std::size_t>(links_[l].dst)].push_back(
            static_cast<LinkId>(l));
    }

    constexpr int kUnreached = -1;
    towardDst_.assign(nodes * devices, -1);
    std::vector<int> dist(nodes);
    std::deque<NodeId> queue;
    // reach[src × devices + dst]: a live path src → dst exists.
    std::vector<char> reach(devices * devices, 0);

    for (DeviceId dst = 0; dst < devices_; ++dst) {
        // Reverse BFS from dst: dist[n] = live hops n → dst.
        std::fill(dist.begin(), dist.end(), kUnreached);
        dist[static_cast<std::size_t>(dst)] = 0;
        queue.clear();
        queue.push_back(dst);
        while (!queue.empty()) {
            const NodeId v = queue.front();
            queue.pop_front();
            for (const LinkId l : in[static_cast<std::size_t>(v)]) {
                const NodeId u = links_[static_cast<std::size_t>(l)].src;
                if (dist[static_cast<std::size_t>(u)] == kUnreached) {
                    dist[static_cast<std::size_t>(u)] =
                        dist[static_cast<std::size_t>(v)] + 1;
                    queue.push_back(u);
                }
            }
        }
        for (NodeId n = 0; n < nodes_; ++n) {
            const int d = dist[static_cast<std::size_t>(n)];
            if (d == kUnreached || n == dst)
                continue;
            if (n < devices_)
                reach[static_cast<std::size_t>(n) * devices +
                      static_cast<std::size_t>(dst)] = 1;
            // Lowest-id live out-link one hop closer to dst.
            for (const LinkId l : out[static_cast<std::size_t>(n)]) {
                const NodeId head =
                    links_[static_cast<std::size_t>(l)].dst;
                if (dist[static_cast<std::size_t>(head)] == d - 1) {
                    towardDst_[static_cast<std::size_t>(n) * devices +
                               static_cast<std::size_t>(dst)] = l;
                    break;
                }
            }
        }
        reach[static_cast<std::size_t>(dst) * devices +
              static_cast<std::size_t>(dst)] = 1;
    }

    // Partition devices into mutual-reachability components: rep(d) =
    // smallest q mutually reachable with d. Keep the largest component
    // (ties: smallest representative) as the live fleet; everyone else
    // is isolated.
    std::vector<DeviceId> rep(devices);
    std::vector<int> compSize(devices, 0);
    for (DeviceId d = 0; d < devices_; ++d) {
        DeviceId r = d;
        for (DeviceId q = 0; q < d; ++q) {
            if (reach[static_cast<std::size_t>(d) * devices +
                      static_cast<std::size_t>(q)] &&
                reach[static_cast<std::size_t>(q) * devices +
                      static_cast<std::size_t>(d)]) {
                r = q;
                break;
            }
        }
        rep[static_cast<std::size_t>(d)] = r;
        ++compSize[static_cast<std::size_t>(r)];
    }
    DeviceId liveRep = 0;
    for (DeviceId d = 1; d < devices_; ++d) {
        if (compSize[static_cast<std::size_t>(d)] >
            compSize[static_cast<std::size_t>(liveRep)]) {
            liveRep = d;
        }
    }
    isolated_.clear();
    for (DeviceId d = 0; d < devices_; ++d) {
        if (rep[static_cast<std::size_t>(d)] != liveRep)
            isolated_.push_back(d);
    }
}

} // namespace moentwine
