#include "fault/fault_plan.hh"

#include <sstream>

#include "common/logging.hh"
#include "topology/topology.hh"

namespace moentwine {

std::string
faultEventKindName(FaultEventKind kind)
{
    switch (kind) {
      case FaultEventKind::LinkDegrade:
        return "LinkDegrade";
      case FaultEventKind::LinkFail:
        return "LinkFail";
      case FaultEventKind::LinkRestore:
        return "LinkRestore";
      case FaultEventKind::SlowNode:
        return "SlowNode";
      case FaultEventKind::NodeFail:
        return "NodeFail";
    }
    panic("unknown fault event kind");
}

FaultEvent
FaultEvent::linkDegrade(int iteration, LinkId link, double bwFactor)
{
    return FaultEvent{iteration, FaultEventKind::LinkDegrade, link,
                      bwFactor};
}

FaultEvent
FaultEvent::linkFail(int iteration, LinkId link)
{
    return FaultEvent{iteration, FaultEventKind::LinkFail, link, 1.0};
}

FaultEvent
FaultEvent::linkRestore(int iteration, LinkId link)
{
    return FaultEvent{iteration, FaultEventKind::LinkRestore, link, 1.0};
}

FaultEvent
FaultEvent::slowNode(int iteration, DeviceId node, double computeFactor)
{
    return FaultEvent{iteration, FaultEventKind::SlowNode, node,
                      computeFactor};
}

FaultEvent
FaultEvent::nodeFail(int iteration, DeviceId node)
{
    return FaultEvent{iteration, FaultEventKind::NodeFail, node, 1.0};
}

std::string
describe(const FaultEvent &event)
{
    std::ostringstream os;
    os << faultEventKindName(event.kind) << "(" << event.target;
    if (event.kind == FaultEventKind::LinkDegrade ||
        event.kind == FaultEventKind::SlowNode) {
        os << ", " << event.factor;
    }
    os << ")@" << event.iteration;
    return os.str();
}

namespace {

[[noreturn]] void
rejectEvent(std::size_t index, const FaultEvent &event,
            const std::string &why)
{
    std::ostringstream os;
    os << "fault plan event " << index << " (" << describe(event)
       << "): " << why;
    fatal(os.str());
}

} // namespace

void
FaultPlan::validate(const Topology &topo) const
{
    const auto numLinks = static_cast<int>(topo.links().size());
    const int numDevices = topo.numDevices();
    int prevIteration = 0;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const FaultEvent &e = events[i];
        if (e.iteration < 0)
            rejectEvent(i, e, "negative iteration");
        if (e.iteration < prevIteration) {
            rejectEvent(i, e,
                        "iterations must be non-decreasing (previous "
                        "event at " +
                            std::to_string(prevIteration) + ")");
        }
        prevIteration = e.iteration;
        switch (e.kind) {
          case FaultEventKind::LinkDegrade:
            if (e.factor <= 0.0 || e.factor > 1.0)
                rejectEvent(i, e, "bwFactor must be in (0, 1]");
            [[fallthrough]];
          case FaultEventKind::LinkFail:
          case FaultEventKind::LinkRestore:
            if (e.target < 0 || e.target >= numLinks) {
                rejectEvent(i, e,
                            "link id out of range [0, " +
                                std::to_string(numLinks) + ")");
            }
            break;
          case FaultEventKind::SlowNode:
            if (e.factor <= 0.0)
                rejectEvent(i, e, "computeFactor must be positive");
            [[fallthrough]];
          case FaultEventKind::NodeFail:
            if (e.target < 0 || e.target >= numDevices) {
                rejectEvent(i, e,
                            "device id out of range [0, " +
                                std::to_string(numDevices) + ")");
            }
            break;
        }
    }
}

} // namespace moentwine
