#include "fault/fault_injector.hh"

#include <algorithm>

#include "common/logging.hh"

namespace moentwine {

FaultInjector::FaultInjector(const Topology &base, FaultPlan plan)
    : base_(&base), plan_(std::move(plan))
{
    plan_.validate(base);
    const auto devices = static_cast<std::size_t>(base.numDevices());
    computeFactor_.assign(devices, 1.0);
    lost_.assign(devices, 0);
}

void
FaultInjector::attachStats(StatRegistry *stats)
{
    MOE_ASSERT(nextEvent_ == 0, "attachStats after events applied");
    stats_ = stats;
    if (stats_ == nullptr)
        return;
    statEvents_ = stats_->counter("fault.events_applied");
    statReroutes_ = stats_->counter("fault.link_reroutes");
    statLost_ = stats_->counter("fault.devices_lost");
}

FaultTopology &
FaultInjector::ensureOverlay()
{
    if (!overlay_)
        overlay_ = std::make_unique<FaultTopology>(*base_);
    return *overlay_;
}

void
FaultInjector::markLost(DeviceId d)
{
    if (lost_[static_cast<std::size_t>(d)])
        return;
    lost_[static_cast<std::size_t>(d)] = 1;
    lostList_.push_back(d);
    if (stats_ != nullptr)
        stats_->add(statLost_);
}

int
FaultInjector::advanceTo(int iteration)
{
    int applied = 0;
    bool linkEvents = false;
    while (nextEvent_ < plan_.events.size() &&
           plan_.events[nextEvent_].iteration <= iteration) {
        const FaultEvent &e = plan_.events[nextEvent_];
        switch (e.kind) {
          case FaultEventKind::LinkDegrade:
            ensureOverlay().degradeLink(e.target, e.factor);
            linkEvents = true;
            break;
          case FaultEventKind::LinkFail:
            ensureOverlay().failLink(e.target);
            linkEvents = true;
            break;
          case FaultEventKind::LinkRestore:
            ensureOverlay().restoreLink(e.target);
            linkEvents = true;
            break;
          case FaultEventKind::SlowNode:
            computeFactor_[static_cast<std::size_t>(e.target)] =
                e.factor;
            break;
          case FaultEventKind::NodeFail:
            markLost(e.target);
            break;
        }
        ++nextEvent_;
        ++applied;
    }
    if (linkEvents) {
        // One reroute per boundary, after the boundary's last link
        // event; devices cut off by the failures join the lost set.
        overlay_->rebuildAfterFaults();
        for (const DeviceId d : overlay_->isolatedDevices())
            markLost(d);
        ++topologyEpoch_;
        if (stats_ != nullptr)
            stats_->add(statReroutes_);
    }
    if (applied > 0 && stats_ != nullptr)
        stats_->add(statEvents_, applied);
    return applied;
}

double
FaultInjector::maxLiveComputeFactor() const
{
    double factor = 1.0;
    for (std::size_t d = 0; d < computeFactor_.size(); ++d) {
        if (!lost_[d])
            factor = std::max(factor, computeFactor_[d]);
    }
    return factor;
}

} // namespace moentwine
