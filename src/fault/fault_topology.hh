/**
 * @file
 * Degraded topology overlay: the base topology with fault-plan link
 * state applied and routes recomputed around failed links.
 *
 * The overlay copies the base link set (same link ids, so per-link
 * traffic buffers sized off links().size() stay valid) and mutates
 * bandwidths in place: a degraded link runs at bwFactor × nameplate, a
 * failed link at a vanishingly small epsilon so any accidental use
 * explodes a timing instead of passing silently. Routing:
 *
 *  - With no failed links, computeRoute() delegates to the base
 *    topology, so a degrade-only overlay reproduces the base paths
 *    exactly (the rebuilt scalar tables differ only where bandwidth
 *    changed).
 *  - With failed links, per-destination min-hop trees are built over
 *    the live links (reverse BFS from each destination; ties broken by
 *    ascending link id), which makes the rerouted function node-
 *    locally deterministic — the property NextHopTable::build()
 *    verifies — so the overlay reuses the RouteStorageKind machinery
 *    unchanged. A pair with no live path gets an empty route and is
 *    reported via reachable()/isolatedDevices(); walking it trips the
 *    PathWalker's loud no-next-hop assertion rather than mis-routing.
 *
 * Devices cut off from the largest mutually-reachable component
 * (smallest lowest-member tie-break) are reported as isolated; the
 * FaultInjector treats them as lost.
 */

#ifndef MOENTWINE_FAULT_FAULT_TOPOLOGY_HH
#define MOENTWINE_FAULT_FAULT_TOPOLOGY_HH

#include <string>
#include <vector>

#include "topology/topology.hh"

namespace moentwine {

class FaultTopology : public Topology
{
  public:
    /**
     * Effective bandwidth of a failed link. Small enough that any
     * timing accidentally charged over it is absurd (and any idle-link
     * budget is zero), non-zero so 1/bandwidth stays finite.
     */
    static constexpr double kFailedLinkBandwidth = 1e-30;

    /**
     * Build an overlay of @p base. The base must outlive the overlay;
     * its links are copied in id order so LinkIds coincide, and the
     * base's route-storage policy is inherited.
     */
    explicit FaultTopology(const Topology &base);

    int numDevices() const override { return devices_; }
    int numNodes() const override { return nodes_; }
    std::string name() const override;

    std::vector<LinkId> computeRoute(DeviceId src,
                                     DeviceId dst) const override;

    /** Run the link at factor × nameplate (replaces prior degrade). */
    void degradeLink(LinkId link, double bwFactor);

    /** Take the link out of service; routes will avoid it. */
    void failLink(LinkId link);

    /** Clear both a degrade and a failure; back to nameplate. */
    void restoreLink(LinkId link);

    /** True while the link is failed. */
    bool linkFailed(LinkId link) const
    {
        return failed_[static_cast<std::size_t>(link)] != 0;
    }

    /** Number of currently failed links. */
    int failedLinkCount() const { return failedLinkCount_; }

    /**
     * Recompute routes after a batch of link mutations: drops the
     * built route storage and, when failures are present, rebuilds the
     * per-destination reroute trees and the isolation report. Call
     * once per fault boundary, after all of that boundary's link
     * events (FaultInjector does).
     */
    void rebuildAfterFaults();

    /** True when a live path src → dst exists (always, fault-free). */
    bool reachable(DeviceId src, DeviceId dst) const;

    /**
     * Devices outside the largest mutually-reachable component
     * (ascending id). Empty while no link is failed.
     */
    const std::vector<DeviceId> &isolatedDevices() const
    {
        return isolated_;
    }

  private:
    void applyBandwidth(LinkId link);
    void buildRerouteTrees();

    const Topology *base_;
    int devices_;
    int nodes_;
    std::vector<double> nameplate_;
    std::vector<double> degradeFactor_;
    std::vector<char> failed_;
    int failedLinkCount_ = 0;

    // Reroute state, valid only while failedLinkCount_ > 0: for each
    // (node, dst device), the first link of the min-hop live path, or
    // -1 when none exists.
    std::vector<LinkId> towardDst_;
    std::vector<DeviceId> isolated_;
};

} // namespace moentwine

#endif // MOENTWINE_FAULT_FAULT_TOPOLOGY_HH
