/**
 * @file
 * Serving simulation: a production-style scenario mix (Chat / Coding /
 * Math / Privacy drifting over time) served on an 8×8 wafer with
 * DeepSeek-V3, comparing a static placement against the NI-Balancer
 * over 300 iterations. Prints a live trace every 25 iterations plus a
 * final summary — the Fig. 15/16 experiment as a runnable example.
 *
 * A second part serves an *online* bursty request stream through the
 * request-level simulator (src/serve/): continuous batching into a KV
 * budget, per-request TTFT/TPOT, and goodput under an SLO.
 *
 * Usage: serving_simulation [iterations]   (default 300)
 */

#include <cstdio>
#include <cstdlib>

#include "core/moentwine.hh"

using namespace moentwine;

namespace {

struct RunSummary
{
    double meanLayerUs;
    double meanLoadRatio;
    double exposedMigrationUs;
    int migrations;
};

RunSummary
serve(const System &sys, BalancerKind kind, int iters, bool verbose)
{
    EngineConfig ec;
    ec.model = deepseekV3();
    ec.schedule = SchedulingMode::Hybrid;
    ec.decodeTokensPerGroup = 128;
    ec.workload.mode = GatingMode::MixedScenario;
    ec.workload.mixPeriod = 120;
    ec.balancer = kind;
    ec.alpha = 0.5;
    ec.beta = 5;
    InferenceEngine engine(sys.mapping(), ec);

    Summary layer;
    Summary ratio;
    double exposed = 0.0;
    int migrations = 0;
    for (int it = 0; it < iters; ++it) {
        const auto s = engine.step();
        layer.add(s.layerTime(ec.pipelineStages));
        ratio.add(s.loadMax / s.loadAvg);
        exposed += s.migrationOverhead;
        migrations += s.migrationsPlanned;
        if (verbose && it % 25 == 0) {
            std::printf("  iter %3d: layer %7.1f us, load max/avg "
                        "%.2f, pending migrations %d\n",
                        it, s.layerTime(ec.pipelineStages) * 1e6,
                        s.loadMax / s.loadAvg, s.migrationsPending);
        }
    }
    return RunSummary{layer.mean() * 1e6, ratio.mean(), exposed * 1e6,
                      migrations};
}

} // namespace

int
main(int argc, char **argv)
{
    const int iters = argc > 1 ? std::atoi(argv[1]) : 300;

    SystemConfig sc;
    sc.platform = PlatformKind::WscEr;
    sc.meshN = 8;
    sc.tp = 8;
    const System sys = System::make(sc);
    std::printf("serving DeepSeek-V3 on %s, mixed scenario, %d "
                "iterations\n\n",
                sys.name().c_str(), iters);

    std::printf("[static placement]\n");
    const auto none = serve(sys, BalancerKind::None, iters, true);
    std::printf("\n[NI-Balancer]\n");
    const auto ni = serve(sys, BalancerKind::NonInvasive, iters, true);

    std::printf("\nsummary:\n");
    Table t({"strategy", "mean layer (us)", "mean load max/avg",
             "exposed migration (us)", "migrations"});
    t.addRow({"static", Table::num(none.meanLayerUs, 1),
              Table::num(none.meanLoadRatio, 2),
              Table::num(none.exposedMigrationUs, 1),
              std::to_string(none.migrations)});
    t.addRow({"NI-Balancer", Table::num(ni.meanLayerUs, 1),
              Table::num(ni.meanLoadRatio, 2),
              Table::num(ni.exposedMigrationUs, 1),
              std::to_string(ni.migrations)});
    std::printf("%s", t.render().c_str());
    std::printf("\nNI-Balancer speedup: %+.1f%% with zero exposed "
                "migration time\n",
                (none.meanLayerUs / ni.meanLayerUs - 1.0) * 100.0);

    // --- Online request-level serving (src/serve/) --------------------
    std::printf("\n[request-level serving: bursty online stream]\n");
    Table st({"strategy", "TTFT p99 (ms)", "TPOT p99 (ms)",
              "goodput (req/s)", "SLO attainment"});
    for (const BalancerKind kind :
         {BalancerKind::None, BalancerKind::NonInvasive}) {
        ServeConfig scfg;
        scfg.engine.model = deepseekV3();
        scfg.engine.balancer = kind;
        scfg.engine.alpha = 0.5;
        scfg.engine.beta = 5;
        scfg.arrival.kind = ArrivalKind::Bursty;
        scfg.arrival.ratePerSec = 30.0;
        scfg.arrival.mixDriftPeriodSec = 4.0;
        scfg.numRequests = 80;
        scfg.slo.ttft = 0.5;
        scfg.slo.tpot = 0.05;
        ServeSimulator sim(sys.mapping(), scfg);
        const ServeReport r = sim.run();
        st.addRow({kind == BalancerKind::None ? "static"
                                              : "NI-Balancer",
                   Table::num(r.ttftP99 * 1e3, 1),
                   Table::num(r.tpotP99 * 1e3, 2),
                   Table::num(r.goodputRequestsPerSec, 1),
                   Table::num(r.sloAttainment * 100.0, 1) + "%"});
    }
    std::printf("%s", st.render().c_str());
    return 0;
}
