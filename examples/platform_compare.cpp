/**
 * @file
 * Platform comparison: one sparse layer's communication latency for
 * Qwen3 across a 4-node DGX, a 6×6 wafer under baseline mapping, and
 * the same wafer under ER-Mapping — the paper's headline Section VI-B
 * comparison in miniature.
 */

#include <cstdio>

#include "core/moentwine.hh"

using namespace moentwine;

namespace {

void
report(const char *label, const CommEvalResult &r)
{
    std::printf("%-28s AR %8.1f us   A2A %8.1f us   total %8.1f us\n",
                label, r.allReduce * 1e6, r.allToAll() * 1e6,
                r.total() * 1e6);
}

} // namespace

int
main()
{
    const MoEModelConfig model = qwen3();
    const int tokens = 256;

    // 4-node DGX (32 GPUs), TP=4.
    SystemConfig dgxCfg;
    dgxCfg.platform = PlatformKind::DgxCluster;
    dgxCfg.dgxNodes = 4;
    dgxCfg.tp = 4;
    System dgx = System::make(dgxCfg);
    const auto rDgx =
        evaluateCommunication(dgx.mapping(), model, tokens, true);
    report(dgx.name().c_str(), rDgx);

    // 6×6 WSC, baseline mapping, TP=4.
    SystemConfig wscCfg;
    wscCfg.platform = PlatformKind::WscBaseline;
    wscCfg.meshN = 6;
    wscCfg.tp = 4;
    System wscBase = System::make(wscCfg);
    const auto rBase =
        evaluateCommunication(wscBase.mapping(), model, tokens, true);
    report(wscBase.name().c_str(), rBase);

    // Same wafer, ER-Mapping.
    wscCfg.platform = PlatformKind::WscEr;
    System wscEr = System::make(wscCfg);
    const auto rEr =
        evaluateCommunication(wscEr.mapping(), model, tokens, true);
    report(wscEr.name().c_str(), rEr);

    std::printf("\nWSC vs DGX total comm: %+.1f%%\n",
                (1.0 - rBase.total() / rDgx.total()) * 100.0);
    std::printf("ER-Mapping vs baseline A2A: %+.1f%%\n",
                (1.0 - rEr.allToAll() / rBase.allToAll()) * 100.0);
    std::printf("ER-Mapping vs baseline total: %+.1f%%\n",
                (1.0 - rEr.total() / rBase.total()) * 100.0);
    return 0;
}
