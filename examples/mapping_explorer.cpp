/**
 * @file
 * Mapping explorer: visualise how the baseline and ER mappings place
 * TP groups and FTDs on a wafer, print the FTD geometry statistics
 * (average hops, bounding-box area, intersections), and render the
 * traffic heatmaps of the attention all-reduce and the MoE all-to-all
 * — the complementary hot/cold link pattern NI-Balancer exploits
 * (Fig. 11 of the paper).
 *
 * Usage: mapping_explorer [meshN] [tp]   (defaults: 4 4)
 */

#include <cstdio>
#include <cstdlib>

#include "core/moentwine.hh"

using namespace moentwine;

namespace {

void
printLayout(const MeshTopology &mesh, const Mapping &mapping)
{
    std::printf("TP-group layout (G<group>): \n");
    for (int r = 0; r < mesh.rows(); ++r) {
        for (int c = 0; c < mesh.cols(); ++c)
            std::printf("G%-3d", mapping.tpGroupOf(mesh.deviceAt(r, c)));
        std::printf("\n");
    }
    std::printf("FTD layout (F<ftd>):\n");
    for (int r = 0; r < mesh.rows(); ++r) {
        for (int c = 0; c < mesh.cols(); ++c)
            std::printf("F%-3d", mapping.ftdOf(mesh.deviceAt(r, c)));
        std::printf("\n");
    }
}

void
explore(const MeshTopology &mesh, const Mapping &mapping)
{
    std::printf("==== %s ====\n", mapping.name().c_str());
    printLayout(mesh, mapping);

    Summary hops;
    Summary area;
    for (const auto &ftd : mapping.ftds()) {
        hops.add(ftdAverageHops(mesh, ftd));
        area.add(ftdBoundingBox(mesh, ftd).area());
    }
    std::printf("FTDs: %zu, avg intra-FTD hops %.2f, avg bounding area "
                "%.1f, intersecting pairs %d\n",
                mapping.ftds().size(), hops.mean(), area.mean(),
                countFtdIntersections(mesh, mapping.ftds()));

    const auto comm =
        evaluateCommunication(mapping, deepseekV3(), 256, true);
    std::printf("all-reduce %.1f us, all-to-all %.1f us\n\n",
                comm.allReduce * 1e6, comm.allToAll() * 1e6);

    std::printf("all-reduce traffic heatmap (0-9 per link):\n%s\n",
                comm.arTraffic.heatmapAscii(mesh).c_str());
    std::printf("all-to-all traffic heatmap:\n%s\n",
                comm.a2aTraffic.heatmapAscii(mesh).c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    const int meshN = argc > 1 ? std::atoi(argv[1]) : 4;
    const int tp = argc > 2 ? std::atoi(argv[2]) : 4;

    const MeshTopology mesh = MeshTopology::singleWafer(meshN);
    const auto par = decomposeTp(tp, mesh.rows(), mesh.cols());
    std::printf("mesh %dx%d, %s\n\n", meshN, meshN,
                par.label().c_str());

    const BaselineMapping baseline(mesh, par);
    explore(mesh, baseline);
    const ErMapping er(mesh, par);
    explore(mesh, er);
    return 0;
}
