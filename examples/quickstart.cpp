/**
 * @file
 * Quickstart: build a 4×4 wafer-scale system, map DeepSeek-V3 onto it
 * with ER-Mapping, and simulate a handful of decode iterations.
 *
 * Demonstrates the three core objects of the public API:
 *   System (topology + mapping), EngineConfig, and InferenceEngine.
 */

#include <cstdio>

#include "core/moentwine.hh"

using namespace moentwine;

int
main()
{
    // 1. Build the platform: one 4x4 wafer, ER-Mapping with TP=4.
    SystemConfig sc;
    sc.platform = PlatformKind::WscEr;
    sc.meshN = 4;
    sc.tp = 4;
    System sys = System::make(sc);
    std::printf("platform: %s (%d devices, TP=%d, DP=%d)\n",
                sys.name().c_str(), sys.mapping().numDevices(),
                sys.mapping().tp(), sys.mapping().dp());

    // 2. Inspect the mapping: FTD geometry drives all-to-all cost.
    const auto *mesh = sys.mesh();
    for (std::size_t f = 0; f < sys.mapping().ftds().size(); ++f) {
        const auto &ftd = sys.mapping().ftds()[f];
        std::printf("FTD %zu: %zu devices, avg hops %.2f\n", f,
                    ftd.size(), ftdAverageHops(*mesh, ftd));
    }

    // 3. Configure the engine: DeepSeek-V3, decode, NI-Balancer.
    EngineConfig ec;
    ec.model = deepseekV3();
    ec.schedule = SchedulingMode::DecodeOnly;
    ec.decodeTokensPerGroup = 256;
    ec.balancer = BalancerKind::NonInvasive;
    ec.workload.mode = GatingMode::MixedScenario;

    InferenceEngine engine(sys.mapping(), ec);

    // 4. Run and report a per-iteration latency breakdown.
    std::printf("\n%-5s %-10s %-10s %-10s %-10s %-10s %-8s\n", "iter",
                "attn(us)", "AR(us)", "A2A(us)", "MoE(us)", "layer(us)",
                "pending");
    const auto trace = engine.run(10);
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const auto &s = trace[i];
        std::printf("%-5zu %-10.1f %-10.1f %-10.1f %-10.1f %-10.1f %-8d\n",
                    i, s.attnCompute * 1e6, s.allReduce * 1e6,
                    s.allToAll() * 1e6, s.moeTime * 1e6,
                    s.layerTime(ec.pipelineStages) * 1e6,
                    s.migrationsPending);
    }
    return 0;
}
