/**
 * @file
 * Fig. 13(c): ER-Mapping improvement over the baseline mapping across
 * WSC scales and TP degrees (Qwen3, 256 tokens per group).
 *
 * Expected shape: ER-Mapping always improves on the baseline; gains
 * vary with FTD geometry and peak at a sweet-spot TP per scale.
 */

#include <cstdio>

#include "core/moentwine.hh"

using namespace moentwine;

namespace {

void
sweep(int meshN, const std::vector<int> &tps)
{
    const MoEModelConfig model = qwen3();
    Table t({"TP", "base AR", "base A2A", "ER AR", "ER A2A",
             "total improvement"});
    for (const int tp : tps) {
        SystemConfig bc;
        bc.platform = PlatformKind::WscBaseline;
        bc.meshN = meshN;
        bc.tp = tp;
        const System base = System::make(bc);
        bc.platform = PlatformKind::WscEr;
        const System er = System::make(bc);
        const auto rb =
            evaluateCommunication(base.mapping(), model, 256, true);
        const auto re =
            evaluateCommunication(er.mapping(), model, 256, true);
        t.addRow({std::to_string(tp),
                  Table::num(rb.allReduce * 1e6, 1),
                  Table::num(rb.allToAll() * 1e6, 1),
                  Table::num(re.allReduce * 1e6, 1),
                  Table::num(re.allToAll() * 1e6, 1),
                  Table::pct(1.0 - re.total() / rb.total())});
    }
    std::printf("-- %dx%d WSC --\n%s\n", meshN, meshN,
                t.render().c_str());
}

} // namespace

int
main()
{
    std::printf("== Fig. 13(c): scales and parallelism configurations "
                "(Qwen3) ==\n\n");
    sweep(4, {2, 4, 8});
    sweep(6, {2, 4, 6, 18});
    sweep(8, {2, 4, 8, 16});
    return 0;
}
