/**
 * @file
 * Fig. 13(c): ER-Mapping improvement over the baseline mapping across
 * WSC scales and TP degrees (Qwen3, 256 tokens per group).
 *
 * Expected shape: ER-Mapping always improves on the baseline; gains
 * vary with FTD geometry and peak at a sweet-spot TP per scale.
 *
 * Runs on the SweepRunner system grid (`--jobs N`): one system per
 * (scale, TP, mapping) case, built in parallel across workers.
 */

#include <cstdio>
#include <vector>

#include "core/moentwine.hh"
#include "sweep/sweep.hh"
#include "jobs.hh"
#include "sweep_output.hh"

using namespace moentwine;

namespace {

struct ScaleCase
{
    int meshN;
    std::vector<int> tps;
};

const std::vector<ScaleCase> &
scaleCases()
{
    static const std::vector<ScaleCase> kCases = {
        {4, {2, 4, 8}},
        {6, {2, 4, 6, 18}},
        {8, {2, 4, 8, 16}},
    };
    return kCases;
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("== Fig. 13(c): scales and parallelism configurations "
                "(Qwen3) ==\n\n");

    // Systems axis: baseline/ER pairs, scale-major then TP.
    SweepGrid grid;
    for (const ScaleCase &c : scaleCases()) {
        for (const int tp : c.tps) {
            SystemConfig sc;
            sc.meshN = c.meshN;
            sc.tp = tp;
            sc.platform = PlatformKind::WscBaseline;
            grid.systems.push_back(sc);
            sc.platform = PlatformKind::WscEr;
            grid.systems.push_back(sc);
        }
    }

    const SweepRunner runner = benchjobs::makeRunner(argc, argv);
    const auto rows = runner.run(grid, [](const SweepCell &cell) {
        const auto r = evaluateCommunication(cell.system->mapping(),
                                             qwen3(), 256, true);
        SweepResult row;
        row.label = cell.system->name() + " TP=" +
            std::to_string(cell.system->config().tp);
        row.add("ar_us", r.allReduce * 1e6);
        row.add("a2a_us", r.allToAll() * 1e6);
        row.add("total_us", r.total() * 1e6);
        return row;
    });

    std::size_t s = 0;
    for (const ScaleCase &c : scaleCases()) {
        Table t({"TP", "base AR", "base A2A", "ER AR", "ER A2A",
                 "total improvement"});
        for (const int tp : c.tps) {
            const SweepResult &rb =
                rows[grid.at(-1, static_cast<int>(s++))];
            const SweepResult &re =
                rows[grid.at(-1, static_cast<int>(s++))];
            t.addRow({std::to_string(tp),
                      Table::num(rb.metric("ar_us"), 1),
                      Table::num(rb.metric("a2a_us"), 1),
                      Table::num(re.metric("ar_us"), 1),
                      Table::num(re.metric("a2a_us"), 1),
                      Table::pct(1.0 - re.metric("total_us") /
                                     rb.metric("total_us"))});
        }
        std::printf("-- %dx%d WSC --\n%s\n", c.meshN, c.meshN,
                    t.render().c_str());
    }
    benchout::writeSweepFiles("fig13c_scales", rows);
    return 0;
}
