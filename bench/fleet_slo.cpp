/**
 * @file
 * Fleet/SLO bench: the multi-replica cluster front-end swept over
 * arrival process × replica count × router policy, each replica a 4×4
 * ER-mapped WSC serving Qwen3 behind one shared arrival stream.
 *
 * Every cell of one (arrival) column dispatches the identical seeded
 * request stream — the replica and router axes never perturb the
 * stream seed — so goodput and tail-latency deltas are attributable to
 * fleet capacity and dispatch policy, never to different traffic. A
 * trailing autoscaler section holds the platform fixed (4 replicas, 3
 * parked, diurnal arrivals) and toggles the reactive scaler, charging
 * the cold-start spin-up delay. Rows land in SWEEP_fleet_slo.{json,csv}
 * and the summary in BENCH_fleet.json; all byte-identical between
 * `--jobs 1` and `--jobs N`.
 *
 * Observability:
 *   --trace <path>  Chrome trace-event JSON of the representative cell
 *                   (4 replicas × power_of_two × Bursty): per-replica
 *                   iteration/request spans plus fleet dispatch and
 *                   scale instants, loadable in Perfetto.
 *   --stats <path>  merged StatRegistry JSON over all cells (per-cell
 *                   fleet registries merged in grid order — byte-
 *                   identical across `--jobs 1` and `--jobs N`).
 *
 * Usage: fleet_slo [requests] [--jobs N] [--trace P] [--stats P]
 *        (default 96 requests)
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cluster/cluster.hh"
#include "common/logging.hh"
#include "core/moentwine.hh"
#include "obs/obs.hh"
#include "sweep/sweep.hh"
#include "flags.hh"
#include "jobs.hh"
#include "sweep_output.hh"

using namespace moentwine;

namespace {

/**
 * Stream seed of a cell: a function of the arrival axis only, so every
 * (replicas, router) pair of one arrival column dispatches the exact
 * same request stream.
 */
uint64_t
streamSeed(const SweepPoint &p)
{
    return 0xF1EE751AEEDULL ^ (static_cast<uint64_t>(p.arrival + 1) << 32);
}

/** Per-replica serving configuration shared by every cell. */
ServeConfig
replicaServeConfig(uint64_t seed)
{
    ServeConfig sc;
    sc.engine.model = qwen3();
    sc.engine.workload.seed = seed;
    sc.engine.alpha = 0.5;
    sc.engine.beta = 5;
    sc.scheduler.kvBudgetTokens = 16384;
    sc.scheduler.maxRunningRequests = 32;
    sc.scheduler.prefillChunkTokens = 512;
    sc.slo.ttft = 0.05;
    sc.slo.tpot = 0.005;
    return sc;
}

/** Fleet configuration of one grid cell (homogeneous WSC replicas). */
FleetConfig
cellConfig(const SweepPoint &p, int requests)
{
    SystemConfig wsc;
    wsc.platform = PlatformKind::WscEr;
    wsc.meshN = 4;
    wsc.tp = 4;

    FleetConfig fc;
    ReplicaConfig rc;
    rc.system = wsc;
    rc.serve = replicaServeConfig(streamSeed(p));
    fc.replicas.assign(static_cast<std::size_t>(p.replicaCount()), rc);
    fc.arrival.kind = p.arrivalKind();
    fc.arrival.ratePerSec = 150.0;
    fc.arrival.mixDriftPeriodSec = 4.0;
    fc.arrival.promptMeanTokens = 256;
    fc.arrival.promptMaxTokens = 2048;
    fc.arrival.outputMeanTokens = 48;
    fc.arrival.outputMaxTokens = 256;
    fc.arrival.seed = streamSeed(p);
    fc.numRequests = requests;
    fc.router = p.routerPolicy();
    fc.routerSeed = p.seed(0xF1EE7);
    fc.slo.ttft = 0.05;
    fc.slo.tpot = 0.005;
    return fc;
}

/** One output row from a finished fleet run (keys shared by every
 *  section so the CSV stays rectangular). */
SweepResult
fleetRow(const std::string &label, const FleetReport &r)
{
    SweepResult row;
    row.label = label;
    row.add("goodput_rps", r.goodputRequestsPerSec);
    row.add("throughput_tps", r.throughputTokensPerSec);
    row.add("ttft_p99_ms", r.ttftP99 * 1e3);
    row.add("tpot_p99_ms", r.tpotP99 * 1e3);
    row.add("latency_p99_ms", r.latencyP99 * 1e3);
    row.add("slo_attainment", r.sloAttainment);
    row.add("front_door_shed", r.frontDoorShed);
    row.add("shed", r.shedRequests);
    row.add("failed", r.failedRequests);
    row.add("retries", r.retriesTotal);
    row.add("scale_events", static_cast<double>(r.scaleEvents.size()));
    row.add("iterations", r.iterationsTotal);
    row.add("makespan_s", r.makespan);
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    int requests = 96;
    const auto positionals = benchflags::positionals(argc, argv);
    if (positionals.size() > 1)
        fatal("fleet_slo takes at most one positional (requests)");
    if (!positionals.empty()) {
        requests = benchflags::positiveInt(positionals.front(),
                                           "fleet_slo request count");
    }
    const std::string tracePath =
        benchflags::stringFlag(argc, argv, "--trace");
    const std::string statsPath =
        benchflags::stringFlag(argc, argv, "--stats");

    std::printf("== Fleet/SLO: arrival × replicas × router "
                "(Qwen3, 4x4 WSC+ER per replica, %d requests) ==\n\n",
                requests);

    SweepGrid grid;
    grid.arrivals = {ArrivalKind::Poisson, ArrivalKind::Bursty,
                     ArrivalKind::Diurnal};
    grid.replicaCounts = {1, 2, 4};
    grid.routers = allRouterPolicies();

    // Per-cell fleet registries, written by grid index (each worker
    // touches only its own slots) and merged in grid order afterwards,
    // so --stats output is byte-identical across worker counts. The
    // trace sink attaches to exactly one cell — the representative
    // fleet (4 replicas × power_of_two × Bursty) — so at most one
    // worker emits into it.
    std::vector<StatRegistry> cellStats(grid.cells());
    TraceSink trace;
    const auto isTracedCell = [&](const SweepPoint &p) {
        return !tracePath.empty() && p.replicaCount() == 4 &&
            p.routerPolicy() == RouterPolicy::PowerOfTwo &&
            p.arrivalKind() == ArrivalKind::Bursty;
    };

    const SweepRunner runner = benchjobs::makeRunner(argc, argv);
    auto rows = runner.run(grid, [&](const SweepCell &cell) {
        FleetSimulator fleet(cellConfig(cell.point, requests));
        if (isTracedCell(cell.point))
            fleet.setTrace(&trace);
        const FleetReport r = fleet.run();
        cellStats[cell.point.index] = fleet.stats();
        return fleetRow(
            arrivalKindName(cell.point.arrivalKind()) + " | x" +
                std::to_string(cell.point.replicaCount()) + " | " +
                routerPolicyName(cell.point.routerPolicy()),
            r);
    });

    for (std::size_t a = 0; a < grid.arrivals.size(); ++a) {
        std::printf("-- %s arrivals --\n",
                    arrivalKindName(grid.arrivals[a]).c_str());
        Table t({"replicas", "router", "goodput (req/s)",
                 "p99 TTFT (ms)", "p99 latency (ms)", "SLO att.",
                 "front-door shed", "makespan (s)"});
        for (std::size_t n = 0; n < grid.replicaCounts.size(); ++n) {
            for (std::size_t p = 0; p < grid.routers.size(); ++p) {
                const SweepResult &r = rows[grid.at(
                    -1, -1, -1, -1, -1, -1, -1, static_cast<int>(a),
                    -1, static_cast<int>(n), static_cast<int>(p))];
                t.addRow({"x" + std::to_string(grid.replicaCounts[n]),
                          routerPolicyName(grid.routers[p]),
                          Table::num(r.metric("goodput_rps"), 1),
                          Table::num(r.metric("ttft_p99_ms"), 1),
                          Table::num(r.metric("latency_p99_ms"), 1),
                          Table::num(r.metric("slo_attainment") * 100.0,
                                     1) +
                              "%",
                          Table::num(r.metric("front_door_shed"), 0),
                          Table::num(r.metric("makespan_s"), 3)});
            }
        }
        std::printf("%s\n", t.render().c_str());
    }

    // Autoscaler section: 4 identical replicas (3 start parked) under
    // diurnal traffic, scaler off vs on. Runs inline on the caller —
    // two cells are not worth the pool, and serial execution keeps the
    // appended rows byte-identical across worker counts.
    std::printf("-- Autoscaler (Diurnal, 4 replicas, 3 parked) --\n");
    Table scaler({"autoscaler", "goodput (req/s)", "p99 TTFT (ms)",
                  "SLO att.", "scale events", "makespan (s)"});
    const SweepPoint diurnalPoint =
        grid.pointAt(grid.at(-1, -1, -1, -1, -1, -1, -1, 2, -1, 2, 0));
    for (const bool enabled : {false, true}) {
        FleetConfig fc = cellConfig(diurnalPoint, requests);
        for (std::size_t i = 1; i < fc.replicas.size(); ++i)
            fc.replicas[i].startParked = true;
        fc.autoscaler.enabled = enabled;
        fc.autoscaler.evalPeriodSec = 0.05;
        fc.autoscaler.spinUpDelaySec = 0.2;
        fc.autoscaler.scaleUpThreshold = 6.0;
        fc.autoscaler.scaleDownThreshold = 1.0;
        FleetSimulator fleet(fc);
        const FleetReport r = fleet.run();
        SweepResult row = fleetRow(
            std::string("autoscaler ") + (enabled ? "on" : "off") +
                " | Diurnal | x4 (3 parked)",
            r);
        row.index = rows.size();
        scaler.addRow({enabled ? "on" : "off",
                       Table::num(r.goodputRequestsPerSec, 1),
                       Table::num(r.ttftP99 * 1e3, 1),
                       Table::num(r.sloAttainment * 100.0, 1) + "%",
                       Table::num(static_cast<double>(
                                      r.scaleEvents.size()),
                                  0),
                       Table::num(r.makespan, 3)});
        rows.push_back(std::move(row));
    }
    std::printf("%s\n", scaler.render().c_str());

    if (!tracePath.empty() && trace.writeFile(tracePath))
        std::printf("wrote %s\n", tracePath.c_str());
    if (!statsPath.empty()) {
        const StatRegistry merged =
            StatRegistry::mergedInOrder(cellStats);
        if (std::FILE *f = std::fopen(statsPath.c_str(), "w")) {
            const std::string json = merged.toJson();
            std::fwrite(json.data(), 1, json.size(), f);
            std::fclose(f);
            std::printf("wrote %s\n", statsPath.c_str());
        } else {
            warn("could not write " + statsPath);
        }
    }

    benchout::writeSweepFiles("fleet_slo", rows);
    const std::string doc = benchout::sweepJson("fleet_slo", rows);
    if (std::FILE *f = std::fopen("BENCH_fleet.json", "w")) {
        std::fputs(doc.c_str(), f);
        std::fclose(f);
        std::printf("wrote BENCH_fleet.json\n");
    } else {
        warn("could not write BENCH_fleet.json");
    }
    return 0;
}
