#include "sweep_output.hh"

#include <cstdio>

#include "common/logging.hh"

namespace moentwine {
namespace benchout {

namespace {

/** Minimal JSON string escaping (labels are plain ASCII in practice). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            out += c;
        }
    }
    return out;
}

/**
 * Fixed-format float with enough digits to round-trip the table-level
 * comparisons the smoke tests do; %.10g keeps the files compact and,
 * crucially, deterministic.
 */
std::string
num(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    return buf;
}

} // namespace

std::string
sweepJson(const std::string &bench, const std::vector<SweepResult> &rows)
{
    std::string out = "{\n  \"schema\": \"moentwine.sweep.v1\",\n"
                      "  \"bench\": \"" +
        jsonEscape(bench) + "\",\n  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const SweepResult &r = rows[i];
        out += "    {\"index\": " + std::to_string(r.index) +
            ", \"label\": \"" + jsonEscape(r.label) + "\"";
        for (const auto &[key, value] : r.metrics)
            out += ", \"" + jsonEscape(key) + "\": " + num(value);
        out += i + 1 < rows.size() ? "},\n" : "}\n";
    }
    out += "  ]\n}\n";
    return out;
}

std::string
sweepCsv(const std::vector<SweepResult> &rows)
{
    if (rows.empty())
        return "index,label\n";
    std::string out = "index,label";
    for (const auto &[key, value] : rows.front().metrics) {
        (void)value;
        out += "," + key;
    }
    out += "\n";
    for (const SweepResult &r : rows) {
        MOE_ASSERT(r.metrics.size() == rows.front().metrics.size(),
                   "sweep rows carry differing metric sets");
        for (std::size_t m = 0; m < r.metrics.size(); ++m) {
            MOE_ASSERT(r.metrics[m].first ==
                           rows.front().metrics[m].first,
                       "sweep row metric keys diverge from the header");
        }
        std::string label = r.label;
        for (char &c : label)
            if (c == ',')
                c = ';';
        out += std::to_string(r.index) + "," + label;
        for (const auto &[key, value] : r.metrics) {
            (void)key;
            out += "," + num(value);
        }
        out += "\n";
    }
    return out;
}

bool
writeSweepFiles(const std::string &bench,
                const std::vector<SweepResult> &rows)
{
    const std::string base = "SWEEP_" + bench;
    const std::string json = sweepJson(bench, rows);
    const std::string csv = sweepCsv(rows);
    for (const auto &[path, content] :
         {std::pair<std::string, const std::string &>{base + ".json",
                                                      json},
          std::pair<std::string, const std::string &>{base + ".csv",
                                                      csv}}) {
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f) {
            warn("could not write " + path);
            return false;
        }
        std::fputs(content.c_str(), f);
        std::fclose(f);
    }
    std::printf("wrote %s.json / %s.csv\n", base.c_str(), base.c_str());
    return true;
}

} // namespace benchout
} // namespace moentwine
