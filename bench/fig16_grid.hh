/**
 * @file
 * The Fig. 16 balancing grid (model × strategy × schedule × workload
 * on a 4×4 WSC under ER-Mapping), shared between the fig16_balancing
 * driver and perf_routing's serial-vs-parallel sweep benchmark so the
 * recorded trajectory always times exactly the grid the figure runs.
 */

#ifndef MOENTWINE_BENCH_FIG16_GRID_HH
#define MOENTWINE_BENCH_FIG16_GRID_HH

#include "sweep/sweep.hh"

namespace moentwine {
namespace benchgrid {

/** The Fig. 16 sweep grid (48 cells). */
SweepGrid fig16BalancingGrid();

/**
 * Engine configuration of one Fig. 16 cell, including the per-cell
 * workload seed derived from the cell's grid coordinates (the
 * parallel-determinism convention).
 */
EngineConfig fig16EngineConfig(const SweepPoint &point);

/** Iterations each Fig. 16 cell simulates (warm-up included). */
constexpr int kFig16Iterations = 80;

/** Leading iterations excluded from the figure's statistics. */
constexpr int kFig16Warmup = 20;

/** Iterations contributing to the figure's statistics. */
constexpr int kFig16Measured = kFig16Iterations - kFig16Warmup;

} // namespace benchgrid
} // namespace moentwine

#endif // MOENTWINE_BENCH_FIG16_GRID_HH
