/**
 * @file
 * Serving SLO bench: the request-level serving simulator (src/serve/)
 * swept over arrival process × balancer × offered rate on a 4×4
 * ER-mapped WSC serving Qwen3.
 *
 * Every cell serves the same seeded request stream for its (arrival,
 * rate) pair — balancers are compared against identical traffic — and
 * reports TTFT/TPOT percentiles, p99 latency, goodput under the SLO,
 * and queue/KV pressure. Rows land in SWEEP_serve_slo.{json,csv} and
 * the serving summary in BENCH_serving.json; both are byte-identical
 * between `--jobs 1` and `--jobs N` (cells derive all randomness from
 * their grid coordinates).
 *
 * Observability:
 *   --trace <path>  Chrome trace-event JSON of the representative
 *                   saturated cell (Bursty × 80 req/s × Non-invasive).
 *   --stats <path>  merged StatRegistry JSON over all cells (grid-order
 *                   merge; byte-identical across worker counts).
 *
 * Usage: serve_slo [requests] [--jobs N] [--trace P] [--stats P]
 *        (default 120 requests)
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "core/moentwine.hh"
#include "obs/obs.hh"
#include "sweep/sweep.hh"
#include "flags.hh"
#include "jobs.hh"
#include "sweep_output.hh"

using namespace moentwine;

namespace {

const char *
balancerName(BalancerKind kind)
{
    switch (kind) {
      case BalancerKind::None:
        return "None";
      case BalancerKind::Greedy:
        return "Greedy";
      case BalancerKind::TopologyAware:
        return "Topo-aware";
      case BalancerKind::NonInvasive:
        return "Non-invasive";
    }
    return "?";
}

/**
 * Stream seed of a cell: shared by every balancer serving the same
 * (arrival, rate) pair so latency differences are attributable to the
 * balancing strategy, never to a different request stream.
 */
uint64_t
streamSeed(const SweepPoint &p)
{
    return 0x5E27E5EEDULL ^ (static_cast<uint64_t>(p.arrival + 1) << 32) ^
        static_cast<uint64_t>(p.param + 1);
}

/** Arrival configuration of one cell. */
ArrivalConfig
cellArrival(const SweepPoint &p, int requests)
{
    ArrivalConfig ac;
    ac.kind = p.arrivalKind();
    ac.ratePerSec = p.parameter();
    ac.mixDriftPeriodSec = 4.0; // production mixes drift slowly
    ac.promptMeanTokens = 256;
    ac.promptMaxTokens = 2048;
    ac.outputMeanTokens = 48;
    ac.outputMaxTokens = 256;
    ac.seed = streamSeed(p);
    if (ac.kind == ArrivalKind::Trace) {
        // Deterministic replay: "record" a Poisson stream with a
        // distinct seed and play it back through the trace path.
        ArrivalConfig rec = ac;
        rec.kind = ArrivalKind::Poisson;
        rec.seed = ac.seed ^ 0x77ACEULL;
        for (const ServeRequest &r :
             ArrivalProcess(rec).generate(requests)) {
            ac.trace.push_back(TraceRequest{r.arrivalTime, r.scenario,
                                            r.promptTokens,
                                            r.outputTokens});
        }
    }
    return ac;
}

/** Serving configuration of one cell. */
ServeConfig
cellConfig(const SweepPoint &p, int requests)
{
    ServeConfig sc;
    sc.engine.model = qwen3();
    sc.engine.workload.seed = streamSeed(p);
    sc.engine.balancer = p.balancerKind();
    sc.engine.alpha = 0.5;
    sc.engine.beta = 5;
    sc.arrival = cellArrival(p, requests);
    sc.scheduler.kvBudgetTokens = 16384;
    sc.scheduler.maxRunningRequests = 32;
    sc.scheduler.prefillChunkTokens = 512;
    sc.slo.ttft = 0.05;
    sc.slo.tpot = 0.005;
    sc.numRequests = requests;
    return sc;
}

} // namespace

int
main(int argc, char **argv)
{
    int requests = 120;
    const auto positionals = benchflags::positionals(argc, argv);
    if (positionals.size() > 1)
        fatal("serve_slo takes at most one positional (requests)");
    if (!positionals.empty()) {
        requests = benchflags::positiveInt(positionals.front(),
                                           "serve_slo request count");
    }
    const std::string tracePath =
        benchflags::stringFlag(argc, argv, "--trace");
    const std::string statsPath =
        benchflags::stringFlag(argc, argv, "--stats");

    std::printf("== Serving SLO: arrival × balancer × rate "
                "(Qwen3, 4x4 WSC+ER, %d requests) ==\n\n",
                requests);

    SweepGrid grid;
    SystemConfig wsc;
    wsc.platform = PlatformKind::WscEr;
    wsc.meshN = 4;
    wsc.tp = 4;
    grid.systems = {wsc};
    grid.balancers = {BalancerKind::None, BalancerKind::NonInvasive};
    grid.params = {40, 80}; // offered load (requests/s)
    grid.arrivals = {ArrivalKind::Poisson, ArrivalKind::Bursty,
                     ArrivalKind::Diurnal, ArrivalKind::Trace};

    // Per-cell registries merged in grid order (see fault_slo); the
    // trace sink attaches only to the saturated representative cell.
    std::vector<StatRegistry> cellStats(grid.cells());
    TraceSink trace;
    const auto isTracedCell = [&](const SweepPoint &p) {
        return !tracePath.empty() &&
            p.arrivalKind() == ArrivalKind::Bursty &&
            p.parameter() == 80.0 &&
            p.balancerKind() == BalancerKind::NonInvasive;
    };

    const SweepRunner runner = benchjobs::makeRunner(argc, argv);
    const auto rows = runner.run(grid, [&](const SweepCell &cell) {
        const ServeConfig sc = cellConfig(cell.point, requests);
        ServeSimulator sim(cell.system->mapping(), sc);
        if (isTracedCell(cell.point))
            sim.setTrace(&trace);
        const ServeReport r = sim.run();
        cellStats[cell.point.index] = sim.stats();

        // Queue/KV pressure now lives in the stat registry; derive the
        // row metrics from the distributions (same per-iteration
        // samples the deleted report fields folded, so the row bytes
        // are unchanged).
        const DistributionView queue =
            sim.stats().distributionView("serve.queue.depth");
        const DistributionView kv =
            sim.stats().distributionView("serve.kv.reserved_tokens");

        SweepResult row;
        row.label = arrivalKindName(cell.point.arrivalKind()) + " r=" +
            std::to_string(
                static_cast<int>(cell.point.parameter())) +
            " | " + balancerName(cell.point.balancerKind());
        row.add("rate_rps", cell.point.parameter());
        row.add("ttft_p50_ms", r.ttftP50 * 1e3);
        row.add("ttft_p99_ms", r.ttftP99 * 1e3);
        row.add("tpot_p50_ms", r.tpotP50 * 1e3);
        row.add("tpot_p99_ms", r.tpotP99 * 1e3);
        row.add("latency_p99_ms", r.latencyP99 * 1e3);
        row.add("throughput_tps", r.throughputTokensPerSec);
        row.add("goodput_rps", r.goodputRequestsPerSec);
        row.add("slo_attainment", r.sloAttainment);
        row.add("queue_mean", queue.mean());
        row.add("queue_max", queue.max);
        row.add("kv_peak_frac",
                kv.max / static_cast<double>(sc.scheduler.kvBudgetTokens));
        row.add("iterations", r.iterations);
        row.add("makespan_s", r.makespan);
        return row;
    });

    for (std::size_t a = 0; a < grid.arrivals.size(); ++a) {
        for (std::size_t p = 0; p < grid.params.size(); ++p) {
            std::printf("-- %s arrivals, %d req/s --\n",
                        arrivalKindName(grid.arrivals[a]).c_str(),
                        static_cast<int>(grid.params[p]));
            Table t({"balancer", "TTFT p50/p99 (ms)",
                     "TPOT p50/p99 (ms)", "p99 latency (ms)",
                     "goodput (req/s)", "SLO att.", "queue mean/max"});
            for (std::size_t b = 0; b < grid.balancers.size(); ++b) {
                const SweepResult &r = rows[grid.at(
                    -1, 0, -1, static_cast<int>(b), -1, -1,
                    static_cast<int>(p), static_cast<int>(a))];
                t.addRow({balancerName(grid.balancers[b]),
                          Table::num(r.metric("ttft_p50_ms"), 1) + " / " +
                              Table::num(r.metric("ttft_p99_ms"), 1),
                          Table::num(r.metric("tpot_p50_ms"), 2) + " / " +
                              Table::num(r.metric("tpot_p99_ms"), 2),
                          Table::num(r.metric("latency_p99_ms"), 1),
                          Table::num(r.metric("goodput_rps"), 1),
                          Table::num(r.metric("slo_attainment") * 100.0,
                                     1) +
                              "%",
                          Table::num(r.metric("queue_mean"), 1) + " / " +
                              Table::num(r.metric("queue_max"), 0)});
            }
            std::printf("%s\n", t.render().c_str());
        }
    }

    if (!tracePath.empty() && trace.writeFile(tracePath))
        std::printf("wrote %s\n", tracePath.c_str());
    if (!statsPath.empty()) {
        const StatRegistry merged =
            StatRegistry::mergedInOrder(cellStats);
        if (std::FILE *f = std::fopen(statsPath.c_str(), "w")) {
            const std::string json = merged.toJson();
            std::fwrite(json.data(), 1, json.size(), f);
            std::fclose(f);
            std::printf("wrote %s\n", statsPath.c_str());
        } else {
            warn("could not write " + statsPath);
        }
    }

    benchout::writeSweepFiles("serve_slo", rows);
    const std::string doc = benchout::sweepJson("serving", rows);
    if (std::FILE *f = std::fopen("BENCH_serving.json", "w")) {
        std::fputs(doc.c_str(), f);
        std::fclose(f);
        std::printf("wrote BENCH_serving.json\n");
    } else {
        warn("could not write BENCH_serving.json");
    }
    return 0;
}
