/**
 * @file
 * Fig. 14(a): ESP (Expert Sharding Parallelism) for the large-expert
 * models DBRX and Mixtral — 32 GPUs vs a 6×6 WSC (baseline and
 * ER-Mapping). Under ESP the token all-to-all disappears; latency is
 * dominated by the EP-group all-reduce of expert partial sums.
 *
 * Expected shape: WSC beats the GPU cluster by ~50%; ER-Mapping still
 * helps, but only modestly (~9%), because the EP all-reduce dominates.
 */

#include <cstdio>

#include "core/moentwine.hh"

using namespace moentwine;

namespace {

struct EspResult
{
    double attnAr;
    double epAr;
    double moe;

    double total() const { return attnAr + epAr; }
};

EspResult
runEsp(const System &sys, const MoEModelConfig &model)
{
    EngineConfig ec;
    ec.model = model;
    ec.esp = true;
    ec.decodeTokensPerGroup = 256;
    ec.workload.mode = GatingMode::Balanced;
    InferenceEngine engine(sys.mapping(), ec);
    const auto s = engine.step();
    return EspResult{s.allReduce, s.epAllReduce, s.moeTime};
}

} // namespace

int
main()
{
    std::printf("== Fig. 14(a): ESP parallelism (DBRX, Mixtral) "
                "==\n\n");
    SystemConfig gpuCfg;
    gpuCfg.platform = PlatformKind::DgxCluster;
    gpuCfg.dgxNodes = 4;
    gpuCfg.tp = 4;
    const System gpu = System::make(gpuCfg);

    SystemConfig wscCfg;
    wscCfg.platform = PlatformKind::WscBaseline;
    wscCfg.meshN = 6;
    wscCfg.tp = 4;
    const System wsc = System::make(wscCfg);

    SystemConfig erCfg = wscCfg;
    erCfg.platform = PlatformKind::WscEr;
    const System er = System::make(erCfg);

    Table t({"model", "GPU attn-AR", "GPU EP-AR", "WSC attn-AR",
             "WSC EP-AR", "ER attn-AR", "ER EP-AR", "MoE comp",
             "WSC vs GPU", "ER vs WSC"});
    for (const auto &model : {dbrx(), mixtral8x22b()}) {
        const auto g = runEsp(gpu, model);
        const auto w = runEsp(wsc, model);
        const auto e = runEsp(er, model);
        t.addRow({model.name, Table::num(g.attnAr * 1e6, 1),
                  Table::num(g.epAr * 1e6, 1),
                  Table::num(w.attnAr * 1e6, 1),
                  Table::num(w.epAr * 1e6, 1),
                  Table::num(e.attnAr * 1e6, 1),
                  Table::num(e.epAr * 1e6, 1),
                  Table::num(e.moe * 1e6, 1),
                  Table::pct(1.0 - w.total() / g.total()),
                  Table::pct(1.0 - e.total() / w.total())});
    }
    std::printf("%s\n(latencies in us per sparse layer)\n",
                t.render().c_str());
    return 0;
}
