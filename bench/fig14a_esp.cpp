/**
 * @file
 * Fig. 14(a): ESP (Expert Sharding Parallelism) for the large-expert
 * models DBRX and Mixtral — 32 GPUs vs a 6×6 WSC (baseline and
 * ER-Mapping). Under ESP the token all-to-all disappears; latency is
 * dominated by the EP-group all-reduce of expert partial sums.
 *
 * Expected shape: WSC beats the GPU cluster by ~50%; ER-Mapping still
 * helps, but only modestly (~9%), because the EP all-reduce dominates.
 *
 * Runs on the SweepRunner model × system grid (`--jobs N`).
 */

#include <cstdio>

#include "core/moentwine.hh"
#include "sweep/sweep.hh"
#include "jobs.hh"
#include "sweep_output.hh"

using namespace moentwine;

namespace {

enum Platform
{
    kGpu,
    kWsc,
    kEr,
};

} // namespace

int
main(int argc, char **argv)
{
    std::printf("== Fig. 14(a): ESP parallelism (DBRX, Mixtral) "
                "==\n\n");

    SweepGrid grid;
    grid.models = {dbrx(), mixtral8x22b()};
    {
        SystemConfig sc;
        sc.platform = PlatformKind::DgxCluster;
        sc.dgxNodes = 4;
        sc.tp = 4;
        grid.systems.push_back(sc); // kGpu
        sc.platform = PlatformKind::WscBaseline;
        sc.meshN = 6;
        grid.systems.push_back(sc); // kWsc
        sc.platform = PlatformKind::WscEr;
        grid.systems.push_back(sc); // kEr
    }

    const SweepRunner runner = benchjobs::makeRunner(argc, argv);
    const auto rows = runner.run(grid, [](const SweepCell &cell) {
        EngineConfig ec;
        ec.model = cell.point.modelConfig();
        ec.esp = true;
        ec.decodeTokensPerGroup = 256;
        ec.workload.mode = GatingMode::Balanced;
        InferenceEngine engine(cell.system->mapping(), ec);
        const auto s = engine.step();

        SweepResult row;
        row.label = ec.model.name + " | " + cell.system->name();
        row.add("attn_ar_us", s.allReduce * 1e6);
        row.add("ep_ar_us", s.epAllReduce * 1e6);
        row.add("moe_us", s.moeTime * 1e6);
        return row;
    });

    Table t({"model", "GPU attn-AR", "GPU EP-AR", "WSC attn-AR",
             "WSC EP-AR", "ER attn-AR", "ER EP-AR", "MoE comp",
             "WSC vs GPU", "ER vs WSC"});
    for (std::size_t m = 0; m < grid.models.size(); ++m) {
        const auto rowOf = [&](int system) -> const SweepResult & {
            return rows[grid.at(static_cast<int>(m), system)];
        };
        const auto totalOf = [&](int system) {
            return rowOf(system).metric("attn_ar_us") +
                rowOf(system).metric("ep_ar_us");
        };
        t.addRow({grid.models[m].name,
                  Table::num(rowOf(kGpu).metric("attn_ar_us"), 1),
                  Table::num(rowOf(kGpu).metric("ep_ar_us"), 1),
                  Table::num(rowOf(kWsc).metric("attn_ar_us"), 1),
                  Table::num(rowOf(kWsc).metric("ep_ar_us"), 1),
                  Table::num(rowOf(kEr).metric("attn_ar_us"), 1),
                  Table::num(rowOf(kEr).metric("ep_ar_us"), 1),
                  Table::num(rowOf(kEr).metric("moe_us"), 1),
                  Table::pct(1.0 - totalOf(kWsc) / totalOf(kGpu)),
                  Table::pct(1.0 - totalOf(kEr) / totalOf(kWsc))});
    }
    std::printf("%s\n(latencies in us per sparse layer)\n",
                t.render().c_str());
    benchout::writeSweepFiles("fig14a_esp", rows);
    return 0;
}
