/**
 * @file
 * Fig. 14(b): justifying the retention of the all-gather half of the
 * attention all-reduce. Retaining AG doubles the (small) all-reduce
 * but shortens token-fetch distances in the subsequent all-to-all.
 *
 * Expected shape: "with AG" wins on total communication for every
 * many-expert model (paper: ~17% average).
 *
 * Runs on the SweepRunner model × retain-AG grid (`--jobs N`).
 */

#include <cstdio>

#include "core/moentwine.hh"
#include "sweep/sweep.hh"
#include "jobs.hh"
#include "sweep_output.hh"

using namespace moentwine;

int
main(int argc, char **argv)
{
    std::printf("== Fig. 14(b): retaining the all-gather ==\n\n");

    SweepGrid grid;
    grid.models = allModels();
    {
        SystemConfig sc;
        sc.platform = PlatformKind::WscEr;
        sc.meshN = 6;
        sc.tp = 4;
        grid.systems = {sc};
    }
    grid.params = {0, 1}; // retain all-gather?

    const SweepRunner runner = benchjobs::makeRunner(argc, argv);
    const auto rows = runner.run(grid, [](const SweepCell &cell) {
        const bool withAg = cell.point.parameter() != 0;
        const auto r = evaluateCommunication(
            cell.system->mapping(), cell.point.modelConfig(), 256,
            withAg);
        SweepResult row;
        row.label = cell.point.modelConfig().name +
            (withAg ? " with AG" : " w/o AG");
        row.add("ar_us", r.allReduce * 1e6);
        row.add("a2a_us", r.allToAll() * 1e6);
        row.add("total_us", r.total() * 1e6);
        return row;
    });

    Table t({"model", "AR w/o AG", "AR with AG", "A2A w/o AG",
             "A2A with AG", "total w/o", "total with", "AG benefit"});
    for (std::size_t m = 0; m < grid.models.size(); ++m) {
        const SweepResult &without =
            rows[grid.at(static_cast<int>(m), 0, -1, -1, -1, -1, 0)];
        const SweepResult &with =
            rows[grid.at(static_cast<int>(m), 0, -1, -1, -1, -1, 1)];
        t.addRow({grid.models[m].name,
                  Table::num(without.metric("ar_us"), 1),
                  Table::num(with.metric("ar_us"), 1),
                  Table::num(without.metric("a2a_us"), 1),
                  Table::num(with.metric("a2a_us"), 1),
                  Table::num(without.metric("total_us"), 1),
                  Table::num(with.metric("total_us"), 1),
                  Table::pct(1.0 - with.metric("total_us") /
                                 without.metric("total_us"))});
    }
    std::printf("%s\n(latencies in us per sparse layer, 6x6 WSC + "
                "ER-Mapping)\n",
                t.render().c_str());
    benchout::writeSweepFiles("fig14b_allgather", rows);
    return 0;
}
