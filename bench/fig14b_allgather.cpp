/**
 * @file
 * Fig. 14(b): justifying the retention of the all-gather half of the
 * attention all-reduce. Retaining AG doubles the (small) all-reduce
 * but shortens token-fetch distances in the subsequent all-to-all.
 *
 * Expected shape: "with AG" wins on total communication for every
 * many-expert model (paper: ~17% average).
 */

#include <cstdio>

#include "core/moentwine.hh"

using namespace moentwine;

int
main()
{
    std::printf("== Fig. 14(b): retaining the all-gather ==\n\n");
    SystemConfig sc;
    sc.platform = PlatformKind::WscEr;
    sc.meshN = 6;
    sc.tp = 4;
    const System sys = System::make(sc);

    Table t({"model", "AR w/o AG", "AR with AG", "A2A w/o AG",
             "A2A with AG", "total w/o", "total with", "AG benefit"});
    for (const auto &model : allModels()) {
        const auto without =
            evaluateCommunication(sys.mapping(), model, 256, false);
        const auto with =
            evaluateCommunication(sys.mapping(), model, 256, true);
        t.addRow({model.name, Table::num(without.allReduce * 1e6, 1),
                  Table::num(with.allReduce * 1e6, 1),
                  Table::num(without.allToAll() * 1e6, 1),
                  Table::num(with.allToAll() * 1e6, 1),
                  Table::num(without.total() * 1e6, 1),
                  Table::num(with.total() * 1e6, 1),
                  Table::pct(1.0 - with.total() / without.total())});
    }
    std::printf("%s\n(latencies in us per sparse layer, 6x6 WSC + "
                "ER-Mapping)\n",
                t.render().c_str());
    return 0;
}
