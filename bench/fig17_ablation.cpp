/**
 * @file
 * Fig. 17: ablation ladder comparing a multi-WSC system (4×(8×8),
 * 256 devices) against the NVL72 supernode for DeepSeek-V3 and Qwen3:
 *
 *   NVL72 → NVL72+Balance → WSC → +ER-Mapping → +HER-Mapping
 *   → +HER+Greedy → +HER+Topology-aware → +HER+Non-invasive.
 *
 * Expected shape: the raw WSC is throttled by mesh all-to-all; ER and
 * HER remove the communication bottleneck; invasive balancing adds
 * exposed migration that the topology-aware variant shrinks and the
 * NI-Balancer eliminates; the final configuration beats NVL72 on
 * per-device MoE latency (paper: ~39% average).
 */

#include <algorithm>
#include <cstdio>

#include "core/moentwine.hh"

using namespace moentwine;

namespace {

struct Row
{
    std::string name;
    double a2a;
    double moe;
    double migration;

    double total() const { return std::max(a2a, moe) + migration; }
};

Row
run(const std::string &name, const System &sys,
    const MoEModelConfig &model, BalancerKind balancer,
    bool migrationViaDisk = false)
{
    EngineConfig ec;
    ec.model = model;
    ec.migrationViaDisk = migrationViaDisk;
    // Equal per-device routed-token load across platforms: with
    // tokens/group proportional to TP, every device sees
    // 32 x topk routed tokens regardless of the device count.
    ec.decodeTokensPerGroup = 32 * sys.mapping().tp();
    ec.workload.mode = GatingMode::MixedScenario;
    ec.workload.mixPeriod = 60;
    ec.balancer = balancer;
    ec.alpha = 0.5;
    ec.beta = 5;
    InferenceEngine engine(sys.mapping(), ec);

    Summary a2a;
    Summary moe;
    double migration = 0.0;
    const auto trace = engine.run(40);
    for (std::size_t i = 10; i < trace.size(); ++i) {
        a2a.add(trace[i].allToAll());
        moe.add(trace[i].moeTime);
        migration += trace[i].migrationOverhead;
    }
    return Row{name, a2a.mean(), moe.mean(),
               migration / static_cast<double>(trace.size() - 10)};
}

void
ladder(const MoEModelConfig &model)
{
    std::printf("-- %s --\n", model.name.c_str());
    std::vector<Row> rows;

    SystemConfig nvl;
    nvl.platform = PlatformKind::Nvl72;
    nvl.tp = 4;
    const System nvlSys = System::make(nvl);
    rows.push_back(run("NVL72", nvlSys, model, BalancerKind::None));
    // NVL72 hides migration behind dedicated NVMe channels.
    rows.push_back(run("NVL72 + Balance", nvlSys, model,
                       BalancerKind::Greedy, true));

    SystemConfig wsc;
    wsc.meshN = 8;
    wsc.wafers = 4;
    wsc.tp = 16;
    wsc.platform = PlatformKind::WscBaseline;
    const System base = System::make(wsc);
    rows.push_back(run("WSC", base, model, BalancerKind::None));

    wsc.platform = PlatformKind::WscEr;
    const System er = System::make(wsc);
    rows.push_back(
        run("WSC + ER-Mapping", er, model, BalancerKind::None));

    wsc.platform = PlatformKind::WscHer;
    const System her = System::make(wsc);
    rows.push_back(
        run("WSC + HER-Mapping", her, model, BalancerKind::None));
    rows.push_back(run("WSC + HER + Greedy", her, model,
                       BalancerKind::Greedy));
    rows.push_back(run("WSC + HER + Topology", her, model,
                       BalancerKind::TopologyAware));
    rows.push_back(run("WSC + HER + Non-invasive", her, model,
                       BalancerKind::NonInvasive));

    const double reference = rows.front().total();
    Table t({"configuration", "A2A (us)", "MoE comp (us)",
             "migration (us)", "total (us)", "vs NVL72"});
    for (const Row &r : rows) {
        t.addRow({r.name, Table::num(r.a2a * 1e6, 1),
                  Table::num(r.moe * 1e6, 1),
                  Table::num(r.migration * 1e6, 2),
                  Table::num(r.total() * 1e6, 1),
                  Table::pct(reference / r.total() - 1.0)});
    }
    std::printf("%s\n", t.render().c_str());
}

} // namespace

int
main()
{
    std::printf("== Fig. 17: multi-WSC system vs NVL72 supernode "
                "==\n\n");
    ladder(deepseekV3());
    ladder(qwen3());
    return 0;
}
