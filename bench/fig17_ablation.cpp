/**
 * @file
 * Fig. 17: ablation ladder comparing a multi-WSC system (4×(8×8),
 * 256 devices) against the NVL72 supernode for DeepSeek-V3 and Qwen3:
 *
 *   NVL72 → NVL72+Balance → WSC → +ER-Mapping → +HER-Mapping
 *   → +HER+Greedy → +HER+Topology-aware → +HER+Non-invasive.
 *
 * Expected shape: the raw WSC is throttled by mesh all-to-all; ER and
 * HER remove the communication bottleneck; invasive balancing adds
 * exposed migration that the topology-aware variant shrinks and the
 * NI-Balancer eliminates; the final configuration beats NVL72 on
 * per-device MoE latency (paper: ~39% average).
 *
 * The model × ladder-step grid runs on the SweepRunner pool
 * (`--jobs N`); the ladder is not a platform cartesian product, so the
 * driver prebuilds its five systems itself and shares each one
 * read-only across all workers and both models.
 */

#include <algorithm>
#include <cstdio>
#include <memory>

#include "core/moentwine.hh"
#include "sweep/sweep.hh"
#include "jobs.hh"
#include "sweep_output.hh"

using namespace moentwine;

namespace {

/** One rung of the ablation ladder. */
struct LadderStep
{
    const char *name;
    std::shared_ptr<const System> system;
    BalancerKind balancer;
    bool migrationViaDisk;
};

double
totalOf(const SweepResult &r)
{
    return std::max(r.metric("a2a_us"), r.metric("moe_us")) +
        r.metric("migration_us");
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("== Fig. 17: multi-WSC system vs NVL72 supernode "
                "==\n\n");

    SystemConfig nvl;
    nvl.platform = PlatformKind::Nvl72;
    nvl.tp = 4;
    const auto nvlSys =
        std::make_shared<const System>(System::make(nvl));

    SystemConfig wsc;
    wsc.meshN = 8;
    wsc.wafers = 4;
    wsc.tp = 16;
    wsc.platform = PlatformKind::WscBaseline;
    const auto base = std::make_shared<const System>(System::make(wsc));
    wsc.platform = PlatformKind::WscEr;
    const auto er = std::make_shared<const System>(System::make(wsc));
    wsc.platform = PlatformKind::WscHer;
    const auto her = std::make_shared<const System>(System::make(wsc));

    // NVL72 hides migration behind dedicated NVMe channels; the WSC
    // rungs expose whatever their balancer migrates.
    const std::vector<LadderStep> ladder = {
        {"NVL72", nvlSys, BalancerKind::None, false},
        {"NVL72 + Balance", nvlSys, BalancerKind::Greedy, true},
        {"WSC", base, BalancerKind::None, false},
        {"WSC + ER-Mapping", er, BalancerKind::None, false},
        {"WSC + HER-Mapping", her, BalancerKind::None, false},
        {"WSC + HER + Greedy", her, BalancerKind::Greedy, false},
        {"WSC + HER + Topology", her, BalancerKind::TopologyAware, false},
        {"WSC + HER + Non-invasive", her, BalancerKind::NonInvasive,
         false},
    };

    SweepGrid grid;
    grid.models = {deepseekV3(), qwen3()};
    grid.params.resize(ladder.size());
    for (std::size_t s = 0; s < ladder.size(); ++s)
        grid.params[s] = static_cast<double>(s);

    const SweepRunner runner = benchjobs::makeRunner(argc, argv);
    const auto rows = runner.run(grid, [&](const SweepCell &cell) {
        const LadderStep &step = ladder[static_cast<std::size_t>(
            cell.point.parameter())];
        const MoEModelConfig &model = cell.point.modelConfig();

        EngineConfig ec;
        ec.model = model;
        ec.migrationViaDisk = step.migrationViaDisk;
        // Equal per-device routed-token load across platforms: with
        // tokens/group proportional to TP, every device sees
        // 32 x topk routed tokens regardless of the device count.
        ec.decodeTokensPerGroup = 32 * step.system->mapping().tp();
        ec.workload.mode = GatingMode::MixedScenario;
        ec.workload.mixPeriod = 60;
        ec.balancer = step.balancer;
        ec.alpha = 0.5;
        ec.beta = 5;
        InferenceEngine engine(step.system->mapping(), ec);

        Summary a2a;
        Summary moe;
        double migration = 0.0;
        const auto trace = engine.run(40);
        for (std::size_t i = 10; i < trace.size(); ++i) {
            a2a.add(trace[i].allToAll());
            moe.add(trace[i].moeTime);
            migration += trace[i].migrationOverhead;
        }

        SweepResult row;
        row.label = model.name + std::string(" | ") + step.name;
        row.add("a2a_us", a2a.mean() * 1e6);
        row.add("moe_us", moe.mean() * 1e6);
        row.add("migration_us",
                migration * 1e6 /
                    static_cast<double>(trace.size() - 10));
        return row;
    });

    for (std::size_t m = 0; m < grid.models.size(); ++m) {
        std::printf("-- %s --\n", grid.models[m].name.c_str());
        const double reference =
            totalOf(rows[grid.at(static_cast<int>(m), -1, -1, -1, -1,
                                 -1, 0)]);
        Table t({"configuration", "A2A (us)", "MoE comp (us)",
                 "migration (us)", "total (us)", "vs NVL72"});
        for (std::size_t s = 0; s < ladder.size(); ++s) {
            const SweepResult &r = rows[grid.at(
                static_cast<int>(m), -1, -1, -1, -1, -1,
                static_cast<int>(s))];
            t.addRow({ladder[s].name, Table::num(r.metric("a2a_us"), 1),
                      Table::num(r.metric("moe_us"), 1),
                      Table::num(r.metric("migration_us"), 2),
                      Table::num(totalOf(r), 1),
                      Table::pct(reference / totalOf(r) - 1.0)});
        }
        std::printf("%s\n", t.render().c_str());
    }
    benchout::writeSweepFiles("fig17_ablation", rows);
    return 0;
}
