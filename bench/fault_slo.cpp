/**
 * @file
 * Fault/SLO bench: the serving simulator under injected faults, swept
 * over fault scenario × balancer × arrival burstiness on a 4×4
 * ER-mapped WSC serving Qwen3.
 *
 * Every cell of one (arrival) column serves the identical seeded
 * request stream — the fault axis never perturbs the stream seed — so
 * goodput and tail-latency deltas are attributable to the injected
 * fault and the degraded-operation response (reroute, retry, shedding),
 * never to different traffic. Rows land in SWEEP_fault_slo.{json,csv}
 * and the fault summary in BENCH_fault.json; all byte-identical
 * between `--jobs 1` and `--jobs N`.
 *
 * Observability:
 *   --trace <path>  Chrome trace-event JSON of the representative
 *                   worst-case cell (Cascade × Bursty × Non-invasive):
 *                   request lifecycle spans interleaved with fault
 *                   instants, loadable in Perfetto.
 *   --stats <path>  merged StatRegistry JSON over all cells (per-cell
 *                   registries merged in grid order — byte-identical
 *                   across `--jobs 1` and `--jobs N`).
 *
 * Usage: fault_slo [requests] [--jobs N] [--trace P] [--stats P]
 *        (default 96 requests)
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "core/moentwine.hh"
#include "fault/fault.hh"
#include "obs/obs.hh"
#include "sweep/sweep.hh"
#include "flags.hh"
#include "jobs.hh"
#include "sweep_output.hh"

using namespace moentwine;

namespace {

const char *
balancerName(BalancerKind kind)
{
    switch (kind) {
      case BalancerKind::None:
        return "None";
      case BalancerKind::NonInvasive:
        return "Non-invasive";
      case BalancerKind::Greedy:
        return "Greedy";
      case BalancerKind::TopologyAware:
        return "Topo-aware";
    }
    return "?";
}

/**
 * Stream seed of a cell: a function of the arrival axis only, so every
 * (balancer, fault) pair of one arrival column serves the exact same
 * request stream.
 */
uint64_t
streamSeed(const SweepPoint &p)
{
    return 0xFA017514EEDULL ^ (static_cast<uint64_t>(p.arrival + 1) << 32);
}

/** Serving configuration of one cell (the fault plan is added later —
 *  it needs the cell's topology). */
ServeConfig
cellConfig(const SweepPoint &p, int requests)
{
    ServeConfig sc;
    sc.engine.model = qwen3();
    sc.engine.workload.seed = streamSeed(p);
    sc.engine.balancer = p.balancerKind();
    sc.engine.alpha = 0.5;
    sc.engine.beta = 5;
    sc.arrival.kind = p.arrivalKind();
    sc.arrival.ratePerSec = 150.0;
    sc.arrival.mixDriftPeriodSec = 4.0;
    sc.arrival.promptMeanTokens = 256;
    sc.arrival.promptMaxTokens = 2048;
    sc.arrival.outputMeanTokens = 48;
    sc.arrival.outputMaxTokens = 256;
    sc.arrival.seed = streamSeed(p);
    sc.scheduler.kvBudgetTokens = 16384;
    sc.scheduler.maxRunningRequests = 32;
    sc.scheduler.prefillChunkTokens = 512;
    sc.slo.ttft = 0.05;
    sc.slo.tpot = 0.005;
    sc.numRequests = requests;
    return sc;
}

} // namespace

int
main(int argc, char **argv)
{
    int requests = 96;
    const auto positionals = benchflags::positionals(argc, argv);
    if (positionals.size() > 1)
        fatal("fault_slo takes at most one positional (requests)");
    if (!positionals.empty()) {
        requests = benchflags::positiveInt(positionals.front(),
                                           "fault_slo request count");
    }
    const std::string tracePath =
        benchflags::stringFlag(argc, argv, "--trace");
    const std::string statsPath =
        benchflags::stringFlag(argc, argv, "--stats");

    std::printf("== Fault/SLO: scenario × balancer × arrival "
                "(Qwen3, 4x4 WSC+ER, %d requests) ==\n\n",
                requests);

    SweepGrid grid;
    SystemConfig wsc;
    wsc.platform = PlatformKind::WscEr;
    wsc.meshN = 4;
    wsc.tp = 4;
    grid.systems = {wsc};
    grid.balancers = {BalancerKind::None, BalancerKind::NonInvasive};
    grid.arrivals = {ArrivalKind::Poisson, ArrivalKind::Bursty};
    grid.faultScenarios = {
        FaultScenarioKind::None,      FaultScenarioKind::DegradedLinks,
        FaultScenarioKind::LinkCut,   FaultScenarioKind::Straggler,
        FaultScenarioKind::NodeLoss,  FaultScenarioKind::Cascade};

    // Faults land once the batch is saturated, so lost devices carry
    // resident requests (retries) and the queue feels the capacity cut
    // (shedding) even on short smoke runs.
    FaultScenarioSpec spec;
    spec.startIteration = 40;
    spec.spacing = 25;

    // Per-cell stat registries, written by grid index (each worker
    // touches only its own slots) and merged in grid order afterwards,
    // so --stats output is byte-identical across worker counts. The
    // trace sink attaches to exactly one cell — the representative
    // worst case (Cascade × Bursty × Non-invasive) — so at most one
    // worker emits into it.
    std::vector<StatRegistry> cellStats(grid.cells());
    TraceSink trace;
    const auto isTracedCell = [&](const SweepPoint &p) {
        return !tracePath.empty() &&
            p.faultScenario() == FaultScenarioKind::Cascade &&
            p.arrivalKind() == ArrivalKind::Bursty &&
            p.balancerKind() == BalancerKind::NonInvasive;
    };

    const SweepRunner runner = benchjobs::makeRunner(argc, argv);
    const auto rows = runner.run(grid, [&](const SweepCell &cell) {
        ServeConfig sc = cellConfig(cell.point, requests);
        sc.faults = makeFaultScenario(cell.point.faultScenario(),
                                      cell.system->mapping().topology(),
                                      spec);
        ServeSimulator sim(cell.system->mapping(), sc);
        if (isTracedCell(cell.point))
            sim.setTrace(&trace);
        const ServeReport r = sim.run();
        cellStats[cell.point.index] = sim.stats();

        SweepResult row;
        row.label = faultScenarioName(cell.point.faultScenario()) +
            " | " + arrivalKindName(cell.point.arrivalKind()) + " | " +
            balancerName(cell.point.balancerKind());
        row.add("goodput_rps", r.goodputRequestsPerSec);
        row.add("throughput_tps", r.throughputTokensPerSec);
        row.add("ttft_p99_ms", r.ttftP99 * 1e3);
        row.add("tpot_p99_ms", r.tpotP99 * 1e3);
        row.add("latency_p99_ms", r.latencyP99 * 1e3);
        row.add("slo_attainment", r.sloAttainment);
        row.add("shed", r.shedRequests);
        row.add("failed", r.failedRequests);
        row.add("retries", r.retriesTotal);
        row.add("fault_events", r.faultEventsApplied);
        row.add("live_frac_min", r.liveDeviceFractionMin);
        row.add("iterations", r.iterations);
        row.add("makespan_s", r.makespan);
        return row;
    });

    for (std::size_t a = 0; a < grid.arrivals.size(); ++a) {
        for (std::size_t b = 0; b < grid.balancers.size(); ++b) {
            std::printf("-- %s arrivals | %s balancer --\n",
                        arrivalKindName(grid.arrivals[a]).c_str(),
                        balancerName(grid.balancers[b]));
            Table t({"scenario", "goodput (req/s)", "p99 TTFT (ms)",
                     "p99 latency (ms)", "SLO att.", "shed/failed",
                     "retries", "live min"});
            for (std::size_t f = 0; f < grid.faultScenarios.size();
                 ++f) {
                const SweepResult &r = rows[grid.at(
                    -1, 0, -1, static_cast<int>(b), -1, -1, -1,
                    static_cast<int>(a), static_cast<int>(f))];
                t.addRow({faultScenarioName(grid.faultScenarios[f]),
                          Table::num(r.metric("goodput_rps"), 1),
                          Table::num(r.metric("ttft_p99_ms"), 1),
                          Table::num(r.metric("latency_p99_ms"), 1),
                          Table::num(r.metric("slo_attainment") * 100.0,
                                     1) +
                              "%",
                          Table::num(r.metric("shed"), 0) + " / " +
                              Table::num(r.metric("failed"), 0),
                          Table::num(r.metric("retries"), 0),
                          Table::num(r.metric("live_frac_min"), 2)});
            }
            std::printf("%s\n", t.render().c_str());
        }
    }

    if (!tracePath.empty() && trace.writeFile(tracePath))
        std::printf("wrote %s\n", tracePath.c_str());
    if (!statsPath.empty()) {
        const StatRegistry merged =
            StatRegistry::mergedInOrder(cellStats);
        if (std::FILE *f = std::fopen(statsPath.c_str(), "w")) {
            const std::string json = merged.toJson();
            std::fwrite(json.data(), 1, json.size(), f);
            std::fclose(f);
            std::printf("wrote %s\n", statsPath.c_str());
        } else {
            warn("could not write " + statsPath);
        }
    }

    benchout::writeSweepFiles("fault_slo", rows);
    const std::string doc = benchout::sweepJson("fault_slo", rows);
    if (std::FILE *f = std::fopen("BENCH_fault.json", "w")) {
        std::fputs(doc.c_str(), f);
        std::fclose(f);
        std::printf("wrote BENCH_fault.json\n");
    } else {
        warn("could not write BENCH_fault.json");
    }
    return 0;
}
