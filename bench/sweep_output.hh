/**
 * @file
 * Shared machine-readable row emitter for the sweep-based fig drivers.
 *
 * Every converted driver renders its human tables to stdout and then
 * writes the underlying SweepResult rows as
 *   SWEEP_<bench>.json  — {"schema", "bench", "rows": [...]}
 *   SWEEP_<bench>.csv   — index,label,<metric keys...>
 * next to the binary. The emitted bytes are a pure function of the
 * rows (no job count, no wall-clock), so files from a parallel run are
 * byte-identical to a `--jobs 1` run — the property the sweep tests
 * and CI smoke pin down.
 */

#ifndef MOENTWINE_BENCH_SWEEP_OUTPUT_HH
#define MOENTWINE_BENCH_SWEEP_OUTPUT_HH

#include <string>
#include <vector>

#include "sweep/sweep.hh"

namespace moentwine {
namespace benchout {

/** JSON document for one sweep's rows (deterministic bytes). */
std::string sweepJson(const std::string &bench,
                      const std::vector<SweepResult> &rows);

/**
 * CSV for one sweep's rows: header from the first row's metric keys;
 * every row must carry the same keys in the same order.
 */
std::string sweepCsv(const std::vector<SweepResult> &rows);

/**
 * Write SWEEP_<bench>.json and SWEEP_<bench>.csv into the working
 * directory and report the paths on stdout. Returns false (after a
 * warning) when a file cannot be written.
 */
bool writeSweepFiles(const std::string &bench,
                     const std::vector<SweepResult> &rows);

} // namespace benchout
} // namespace moentwine

#endif // MOENTWINE_BENCH_SWEEP_OUTPUT_HH
