/**
 * @file
 * Shared command-line helpers for the bench drivers, next to jobs.hh.
 *
 * Every driver honours the same flag vocabulary:
 *   --jobs N         worker count (resolved by benchjobs, not here)
 *   --affinity       pin sweep workers to CPUs (resolved by benchjobs)
 *   --trace <path>   write a Chrome trace-event JSON (src/obs/trace.hh)
 *   --stats <path>   write the merged StatRegistry JSON
 *   --devices N      device-count override (scale_smoke)
 * All value flags accept both `--flag value` and `--flag=value`; when
 * a flag repeats, the last occurrence wins (the normal CLI override
 * convention — `bench --jobs 8 --jobs 1` runs serial), but every
 * occurrence is still validated. Numeric parsing is strtol-validated —
 * trailing garbage, overflow, and non-positive values are fatal(),
 * never silently atoi()'d to zero.
 */

#ifndef MOENTWINE_BENCH_FLAGS_HH
#define MOENTWINE_BENCH_FLAGS_HH

#include <climits>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/logging.hh"

namespace moentwine {
namespace benchflags {

/**
 * Value of a `--name value` / `--name=value` flag; empty string when
 * the flag is absent. The last occurrence wins; a flag present
 * without a value is fatal() wherever it appears.
 */
inline std::string
stringFlag(int argc, char **argv, const std::string &name)
{
    const std::string prefix = name + "=";
    std::string value;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == name) {
            if (i + 1 >= argc)
                fatal(name + " expects a value");
            value = argv[++i];
        } else if (arg.rfind(prefix, 0) == 0) {
            value = arg.substr(prefix.size());
        }
    }
    return value;
}

/** strtol-validated positive int; fatal() on garbage or overflow. */
inline int
positiveInt(const std::string &text, const std::string &what)
{
    char *end = nullptr;
    const long v = std::strtol(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || v <= 0 || v > INT_MAX)
        fatal(what + " expects a positive integer, got '" + text + "'");
    return static_cast<int>(v);
}

/**
 * Positional (non-flag) arguments, with the values of the known
 * value-taking flags skipped. Unknown `--` flags are fatal() so a typo
 * never silently becomes a positional.
 */
inline std::vector<std::string>
positionals(int argc, char **argv)
{
    static const char *const kValueFlags[] = {"--jobs", "--trace",
                                              "--stats", "--devices"};
    static const char *const kBoolFlags[] = {"--affinity"};
    std::vector<std::string> out;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--", 0) == 0) {
            bool known = false;
            for (const char *flag : kBoolFlags) {
                if (arg == flag) {
                    known = true;
                    break;
                }
            }
            if (known)
                continue;
            for (const char *flag : kValueFlags) {
                if (arg == flag) {
                    ++i; // skip the flag's value
                    known = true;
                    break;
                }
                if (arg.rfind(std::string(flag) + "=", 0) == 0) {
                    known = true;
                    break;
                }
            }
            if (!known)
                fatal("unknown flag '" + arg + "'");
            continue;
        }
        out.push_back(arg);
    }
    return out;
}

} // namespace benchflags
} // namespace moentwine

#endif // MOENTWINE_BENCH_FLAGS_HH
