/**
 * @file
 * Table I: parameters of the evaluation MoE models.
 */

#include <cstdio>

#include "core/moentwine.hh"

using namespace moentwine;

int
main()
{
    std::printf("== Table I: Parameters of Evaluation MoE Models ==\n\n");
    Table t({"Model", "Size", "Layers (sparse/total)",
             "Single Expert Size", "Experts (act/total)", "Hidden",
             "E/D at EP=256"});
    for (const auto &m : allModels()) {
        t.addRow({m.name, Table::num(m.totalParams / 1e9, 0) + "B",
                  std::to_string(m.sparseLayers) + " / " +
                      std::to_string(m.totalLayers),
                  Table::num(m.expertBytes / units::MB, 0) + "MB",
                  std::to_string(m.expertsActivated) + " / " +
                      std::to_string(m.expertsTotal),
                  std::to_string(m.hiddenSize),
                  Table::num(m.edRatio(256), 2)});
    }
    std::printf("%s\n", t.render().c_str());
    return 0;
}
