/**
 * @file
 * Table I: parameters of the evaluation MoE models.
 *
 * Trivially parallel, but running on the SweepRunner model grid keeps
 * every fig/table driver on the same `--jobs N` + SWEEP_<bench> row
 * convention (and gives the model table a machine-readable form).
 */

#include <cstdio>

#include "core/moentwine.hh"
#include "sweep/sweep.hh"
#include "jobs.hh"
#include "sweep_output.hh"

using namespace moentwine;

int
main(int argc, char **argv)
{
    std::printf("== Table I: Parameters of Evaluation MoE Models ==\n\n");

    SweepGrid grid;
    grid.models = allModels();

    const SweepRunner runner = benchjobs::makeRunner(argc, argv);
    const auto rows = runner.run(grid, [](const SweepCell &cell) {
        const MoEModelConfig &m = cell.point.modelConfig();
        SweepResult row;
        row.label = m.name;
        row.add("params_b", m.totalParams / 1e9);
        row.add("sparse_layers", m.sparseLayers);
        row.add("total_layers", m.totalLayers);
        row.add("expert_mb", m.expertBytes / units::MB);
        row.add("experts_activated", m.expertsActivated);
        row.add("experts_total", m.expertsTotal);
        row.add("hidden", m.hiddenSize);
        row.add("ed_ratio_ep256", m.edRatio(256));
        return row;
    });

    Table t({"Model", "Size", "Layers (sparse/total)",
             "Single Expert Size", "Experts (act/total)", "Hidden",
             "E/D at EP=256"});
    for (const SweepResult &r : rows) {
        t.addRow({r.label, Table::num(r.metric("params_b"), 0) + "B",
                  std::to_string(
                      static_cast<int>(r.metric("sparse_layers"))) +
                      " / " +
                      std::to_string(
                          static_cast<int>(r.metric("total_layers"))),
                  Table::num(r.metric("expert_mb"), 0) + "MB",
                  std::to_string(static_cast<int>(
                      r.metric("experts_activated"))) +
                      " / " +
                      std::to_string(static_cast<int>(
                          r.metric("experts_total"))),
                  std::to_string(static_cast<int>(r.metric("hidden"))),
                  Table::num(r.metric("ed_ratio_ep256"), 2)});
    }
    std::printf("%s\n", t.render().c_str());
    benchout::writeSweepFiles("table1_models", rows);
    return 0;
}
