/**
 * @file
 * Fig. 4: the EP degree each cluster can reach and the corresponding
 * per-device MoE performance, split into computation and memory-access
 * time. Each device serves its own decode batch (per-device routed
 * tokens constant), so growing EP shrinks only the weight-streaming
 * term — the E/D effect.
 *
 * Expected shape: the memory-access share falls monotonically with EP;
 * per-device performance improves from DGX (EP 8-32) through NVL72
 * (EP 72) to the WSC (EP 256).
 *
 * Runs on the SweepRunner model × EP grid (`--jobs N`).
 */

#include <cstdio>

#include "core/moentwine.hh"
#include "sweep/sweep.hh"
#include "jobs.hh"
#include "sweep_output.hh"

using namespace moentwine;

int
main(int argc, char **argv)
{
    std::printf("== Fig. 4: EP scaling and per-device MoE "
                "performance ==\n\n");

    SweepGrid grid;
    grid.models = {deepseekV3(), qwen3()};
    grid.params = {8, 16, 32, 72, 256}; // EP degrees

    const SweepRunner runner = benchjobs::makeRunner(argc, argv);
    const auto rows = runner.run(grid, [](const SweepCell &cell) {
        const MoEModelConfig &model = cell.point.modelConfig();
        const int ep = static_cast<int>(cell.point.parameter());
        const CostModel cost;
        const double tokensPerDevice = 256.0 * model.expertsActivated;
        const double expertsPerDevice =
            static_cast<double>(model.expertsTotal) / ep;
        const auto c =
            cost.moeDevice(model, tokensPerDevice, expertsPerDevice);

        SweepResult row;
        row.label = model.name + " EP=" + std::to_string(ep);
        row.add("ep", ep);
        row.add("compute_us", c.computeTime * 1e6);
        row.add("memory_us", c.memoryTime * 1e6);
        return row;
    });

    for (std::size_t m = 0; m < grid.models.size(); ++m) {
        std::printf("-- %s --\n", grid.models[m].name.c_str());
        Table t({"EP", "platform", "compute (us)", "memory (us)",
                 "memory share", "perf vs EP=8"});
        const auto totalOf = [](const SweepResult &r) {
            return r.metric("compute_us") + r.metric("memory_us");
        };
        const double baseline = totalOf(rows[grid.at(
            static_cast<int>(m), -1, -1, -1, -1, -1, 0)]);
        for (std::size_t p = 0; p < grid.params.size(); ++p) {
            const SweepResult &r = rows[grid.at(
                static_cast<int>(m), -1, -1, -1, -1, -1,
                static_cast<int>(p))];
            const int ep = static_cast<int>(r.metric("ep"));
            const char *platform = ep <= 32 ? "DGX"
                : ep <= 72                  ? "NVL72"
                                            : "WSC";
            t.addRow({std::to_string(ep), platform,
                      Table::num(r.metric("compute_us"), 1),
                      Table::num(r.metric("memory_us"), 1),
                      Table::num(r.metric("memory_us") / totalOf(r) *
                                     100.0,
                                 1) +
                          "%",
                      Table::pct(baseline / totalOf(r) - 1.0)});
        }
        std::printf("%s\n", t.render().c_str());
    }
    benchout::writeSweepFiles("fig04_ep_scaling", rows);
    return 0;
}
