/**
 * @file
 * Fig. 4: the EP degree each cluster can reach and the corresponding
 * per-device MoE performance, split into computation and memory-access
 * time. Each device serves its own decode batch (per-device routed
 * tokens constant), so growing EP shrinks only the weight-streaming
 * term — the E/D effect.
 *
 * Expected shape: the memory-access share falls monotonically with EP;
 * per-device performance improves from DGX (EP 8-32) through NVL72
 * (EP 72) to the WSC (EP 256).
 */

#include <cstdio>

#include "core/moentwine.hh"

using namespace moentwine;

namespace {

void
sweep(const MoEModelConfig &model)
{
    std::printf("-- %s --\n", model.name.c_str());
    const CostModel cost;
    const double tokensPerDevice = 256.0 * model.expertsActivated;
    const int eps[] = {8, 16, 32, 72, 256};

    double baseline = 0.0;
    Table t({"EP", "platform", "compute (us)", "memory (us)",
             "memory share", "perf vs EP=8"});
    for (const int ep : eps) {
        const double expertsPerDevice =
            static_cast<double>(model.expertsTotal) / ep;
        const auto c =
            cost.moeDevice(model, tokensPerDevice, expertsPerDevice);
        if (baseline == 0.0)
            baseline = c.total();
        const char *platform = ep <= 32 ? "DGX"
            : ep <= 72                  ? "NVL72"
                                        : "WSC";
        t.addRow({std::to_string(ep), platform,
                  Table::num(c.computeTime * 1e6, 1),
                  Table::num(c.memoryTime * 1e6, 1),
                  Table::num(c.memoryTime / c.total() * 100.0, 1) + "%",
                  Table::pct(baseline / c.total() - 1.0)});
    }
    std::printf("%s\n", t.render().c_str());
}

} // namespace

int
main()
{
    std::printf("== Fig. 4: EP scaling and per-device MoE "
                "performance ==\n\n");
    sweep(deepseekV3());
    sweep(qwen3());
    return 0;
}
