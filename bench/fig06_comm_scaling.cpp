/**
 * @file
 * Fig. 6: all-to-all vs all-reduce latency as the WSC scales from one
 * 4×4 wafer to 4×(8×8) multi-wafer systems, for prefill and decode
 * token counts, under the baseline mapping.
 *
 * Expected shape: all-reduce stays nearly flat while all-to-all surges
 * with scale; the link-latency portion only matters for small decode
 * batches.
 *
 * Runs on the SweepRunner scale × token-count grid (`--jobs N`).
 */

#include <cstdio>

#include "core/moentwine.hh"
#include "sweep/sweep.hh"
#include "jobs.hh"
#include "sweep_output.hh"

using namespace moentwine;

int
main(int argc, char **argv)
{
    std::printf("== Fig. 6: all-to-all vs all-reduce across WSC "
                "scales ==\n\n");

    SweepGrid grid;
    const int scales[][2] = {{4, 1}, {6, 1}, {8, 1}, {6, 4}, {8, 4}};
    for (const auto &s : scales) {
        SystemConfig sc;
        sc.platform = PlatformKind::WscBaseline;
        sc.meshN = s[0];
        sc.wafers = s[1];
        sc.tp = 4;
        grid.systems.push_back(sc);
    }
    grid.params = {2048, 64}; // prefill / decode tokens per group

    const SweepRunner runner = benchjobs::makeRunner(argc, argv);
    const auto rows = runner.run(grid, [](const SweepCell &cell) {
        const int tokens = static_cast<int>(cell.point.parameter());
        const auto r = evaluateCommunication(
            cell.system->mapping(), deepseekV3(), tokens, true);

        SweepResult row;
        row.label = cell.system->topology().name() + " tokens=" +
            std::to_string(tokens);
        row.add("tokens", tokens);
        row.add("ar_us", r.allReduce * 1e6);
        row.add("a2a_us", r.allToAll() * 1e6);
        row.add("link_latency_us", r.a2aTraffic.maxPathLatency() * 1e6);
        return row;
    });

    for (std::size_t p = 0; p < grid.params.size(); ++p) {
        std::printf("-- %s (tokens/group = %d) --\n",
                    p == 0 ? "Prefill" : "Decode",
                    static_cast<int>(grid.params[p]));
        Table t({"scale", "all-reduce (us)", "all-to-all (us)",
                 "A2A/AR ratio", "link-latency part (us)"});
        for (std::size_t s = 0; s < grid.systems.size(); ++s) {
            const SweepResult &r = rows[grid.at(
                -1, static_cast<int>(s), -1, -1, -1, -1,
                static_cast<int>(p))];
            const std::string scale =
                r.label.substr(0, r.label.find(" tokens="));
            t.addRow({scale, Table::num(r.metric("ar_us"), 1),
                      Table::num(r.metric("a2a_us"), 1),
                      Table::num(r.metric("a2a_us") / r.metric("ar_us"),
                                 2),
                      Table::num(r.metric("link_latency_us"), 2)});
        }
        std::printf("%s\n", t.render().c_str());
    }
    benchout::writeSweepFiles("fig06_comm_scaling", rows);
    return 0;
}
