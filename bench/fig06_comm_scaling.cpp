/**
 * @file
 * Fig. 6: all-to-all vs all-reduce latency as the WSC scales from one
 * 4×4 wafer to 4×(8×8) multi-wafer systems, for prefill and decode
 * token counts, under the baseline mapping.
 *
 * Expected shape: all-reduce stays nearly flat while all-to-all surges
 * with scale; the link-latency portion only matters for small decode
 * batches.
 */

#include <cstdio>

#include "core/moentwine.hh"

using namespace moentwine;

namespace {

void
sweep(const char *stage, int tokensPerGroup)
{
    std::printf("-- %s (tokens/group = %d) --\n", stage,
                tokensPerGroup);
    const MoEModelConfig model = deepseekV3();
    struct Cfg
    {
        int meshN;
        int wafers;
    };
    const Cfg cfgs[] = {{4, 1}, {6, 1}, {8, 1}, {6, 4}, {8, 4}};

    Table t({"scale", "all-reduce (us)", "all-to-all (us)",
             "A2A/AR ratio", "link-latency part (us)"});
    for (const auto &cfg : cfgs) {
        SystemConfig sc;
        sc.platform = PlatformKind::WscBaseline;
        sc.meshN = cfg.meshN;
        sc.wafers = cfg.wafers;
        sc.tp = 4;
        const System sys = System::make(sc);
        const auto r = evaluateCommunication(sys.mapping(), model,
                                             tokensPerGroup, true);
        t.addRow({sys.topology().name(),
                  Table::num(r.allReduce * 1e6, 1),
                  Table::num(r.allToAll() * 1e6, 1),
                  Table::num(r.allToAll() / r.allReduce, 2),
                  Table::num(r.a2aTraffic.maxPathLatency() * 1e6, 2)});
    }
    std::printf("%s\n", t.render().c_str());
}

} // namespace

int
main()
{
    std::printf("== Fig. 6: all-to-all vs all-reduce across WSC "
                "scales ==\n\n");
    sweep("Prefill", 2048);
    sweep("Decode", 64);
    return 0;
}
