/**
 * @file
 * Fig. 16: impact of the balancing strategies across scheduling modes
 * (Prefill-only, Decode-only, Hybrid) and workloads (Math-only vs
 * Mixed) for Qwen3 and DeepSeek-V3.
 *
 * Expected shape: fixed scenarios stabilise quickly and need few
 * migrations; mixed scenarios migrate continuously. Invasive
 * migration overhead is far costlier for short decode iterations.
 * Topology-aware balancing shrinks the overhead; NI removes it and
 * achieves the best MoE computation and all-to-all latency.
 *
 * The full model × schedule × workload × strategy product runs on the
 * SweepRunner work-stealing pool (`--jobs N`, MOENTWINE_JOBS;
 * `--affinity` / MOENTWINE_AFFINITY pins workers); one WSC system is
 * built once and shared read-only by every worker, and each worker
 * re-seeds its cached engine across cells instead of reconstructing
 * it (cell.worker->engine()) — rows stay byte-identical to `--jobs 1`
 * either way.
 *
 * With `--trace <path>` the finished sweep re-emits as a Chrome trace:
 * one span per cell, laid end-to-end in grid order on a synthetic
 * timeline (span length = mean layer time × measured iterations), with
 * the cell's metrics attached as span args — a quick visual ranking of
 * the strategies in Perfetto.
 */

#include <cstdio>
#include <string>

#include "core/moentwine.hh"
#include "obs/obs.hh"
#include "fig16_grid.hh"
#include "sweep/sweep.hh"
#include "flags.hh"
#include "jobs.hh"
#include "sweep_output.hh"

using namespace moentwine;

namespace {

const char *
kindName(BalancerKind kind)
{
    switch (kind) {
      case BalancerKind::None:
        return "None";
      case BalancerKind::Greedy:
        return "Greedy";
      case BalancerKind::TopologyAware:
        return "Topo-aware";
      case BalancerKind::NonInvasive:
        return "Non-invasive";
    }
    return "?";
}

const char *
scheduleName(SchedulingMode mode)
{
    switch (mode) {
      case SchedulingMode::PrefillOnly:
        return "Prefill-only";
      case SchedulingMode::DecodeOnly:
        return "Decode-only";
      case SchedulingMode::Hybrid:
        return "Hybrid";
    }
    return "?";
}

const char *
gatingName(GatingMode mode)
{
    return mode == GatingMode::SingleScenario ? "Math-only" : "Mixed";
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("== Fig. 16: balancing strategies across schedules and "
                "workloads ==\n\n");

    const SweepGrid grid = benchgrid::fig16BalancingGrid();

    const SweepRunner runner = benchjobs::makeRunner(argc, argv);
    const auto rows = runner.run(grid, [](const SweepCell &cell) {
        const EngineConfig ec = benchgrid::fig16EngineConfig(cell.point);
        InferenceEngine &engine =
            cell.worker->engine(cell.system->mapping(), ec);

        Summary a2a;
        Summary moe;
        Summary ratio;
        Summary layer;
        double migration = 0.0;
        const auto trace = engine.run(benchgrid::kFig16Iterations);
        for (std::size_t i = benchgrid::kFig16Warmup; i < trace.size();
             ++i) {
            const auto &s = trace[i];
            a2a.add(s.allToAll());
            moe.add(s.moeTime);
            ratio.add(s.loadMax / s.loadAvg);
            layer.add(s.layerTime(ec.pipelineStages));
            migration += s.migrationOverhead;
        }

        SweepResult row;
        row.label = ec.model.name + std::string(" | ") +
            scheduleName(ec.schedule) + " | " +
            gatingName(ec.workload.mode) + " | " +
            kindName(ec.balancer);
        row.add("a2a_us", a2a.mean() * 1e6);
        row.add("moe_us", moe.mean() * 1e6);
        row.add("migration_us",
                migration * 1e6 / benchgrid::kFig16Measured);
        row.add("load_ratio", ratio.mean());
        row.add("layer_us", layer.mean() * 1e6);
        return row;
    });

    for (std::size_t m = 0; m < grid.models.size(); ++m) {
        for (std::size_t s = 0; s < grid.schedules.size(); ++s) {
            for (std::size_t g = 0; g < grid.gatings.size(); ++g) {
                std::printf("-- %s | %s | %s --\n",
                            grid.models[m].name.c_str(),
                            scheduleName(grid.schedules[s]),
                            gatingName(grid.gatings[g]));
                Table t({"strategy", "A2A (us)", "MoE comp (us)",
                         "migration (us)", "load max/avg",
                         "layer time (us)"});
                for (std::size_t b = 0; b < grid.balancers.size(); ++b) {
                    const SweepResult &r = rows[grid.at(
                        static_cast<int>(m), 0, -1, static_cast<int>(b),
                        static_cast<int>(s), static_cast<int>(g))];
                    t.addRow({kindName(grid.balancers[b]),
                              Table::num(r.metric("a2a_us"), 1),
                              Table::num(r.metric("moe_us"), 1),
                              Table::num(r.metric("migration_us"), 2),
                              Table::num(r.metric("load_ratio"), 2),
                              Table::num(r.metric("layer_us"), 1)});
                }
                std::printf("%s\n", t.render().c_str());
            }
        }
    }
    const std::string tracePath =
        benchflags::stringFlag(argc, argv, "--trace");
    if (!tracePath.empty()) {
        // Post-sweep emission from the row vector (grid order), so the
        // trace is identical regardless of worker count.
        TraceSink trace;
        trace.processName(0, "fig16_balancing");
        trace.threadName(0, 0, "cells");
        double cursor = 0.0;
        for (const SweepResult &r : rows) {
            const double span = r.metric("layer_us") * 1e-6 *
                benchgrid::kFig16Measured;
            trace.span(0, 0, "cell", r.label, cursor, cursor + span,
                       {{"a2a_us", TraceSink::num(r.metric("a2a_us"))},
                        {"moe_us", TraceSink::num(r.metric("moe_us"))},
                        {"migration_us",
                         TraceSink::num(r.metric("migration_us"))},
                        {"load_ratio",
                         TraceSink::num(r.metric("load_ratio"))}});
            cursor += span;
        }
        if (trace.writeFile(tracePath))
            std::printf("wrote %s\n", tracePath.c_str());
    }

    benchout::writeSweepFiles("fig16_balancing", rows);
    return 0;
}
