/**
 * @file
 * Fig. 16: impact of the balancing strategies across scheduling modes
 * (Prefill-only, Decode-only, Hybrid) and workloads (Math-only vs
 * Mixed) for Qwen3 and DeepSeek-V3.
 *
 * Expected shape: fixed scenarios stabilise quickly and need few
 * migrations; mixed scenarios migrate continuously. Invasive
 * migration overhead is far costlier for short decode iterations.
 * Topology-aware balancing shrinks the overhead; NI removes it and
 * achieves the best MoE computation and all-to-all latency.
 */

#include <cstdio>

#include "core/moentwine.hh"

using namespace moentwine;

namespace {

const char *
kindName(BalancerKind kind)
{
    switch (kind) {
      case BalancerKind::None:
        return "None";
      case BalancerKind::Greedy:
        return "Greedy";
      case BalancerKind::TopologyAware:
        return "Topo-aware";
      case BalancerKind::NonInvasive:
        return "Non-invasive";
    }
    return "?";
}

void
sweep(const MoEModelConfig &model, SchedulingMode schedule,
      const char *scheduleName, GatingMode gating,
      const char *gatingName, const System &sys)
{
    std::printf("-- %s | %s | %s --\n", model.name.c_str(),
                scheduleName, gatingName);
    Table t({"strategy", "A2A (us)", "MoE comp (us)",
             "migration (us)", "load max/avg", "layer time (us)"});
    for (const BalancerKind kind :
         {BalancerKind::None, BalancerKind::Greedy,
          BalancerKind::TopologyAware, BalancerKind::NonInvasive}) {
        EngineConfig ec;
        ec.model = model;
        ec.schedule = schedule;
        ec.decodeTokensPerGroup = 128;
        ec.prefillTokensPerGroup = 1024;
        ec.workload.mode = gating;
        ec.workload.scenario = ScenarioKind::Math;
        ec.workload.mixPeriod = 60;
        ec.balancer = kind;
        ec.alpha = 0.5;
        ec.beta = 5;
        InferenceEngine engine(sys.mapping(), ec);

        Summary a2a;
        Summary moe;
        Summary ratio;
        Summary layer;
        double migration = 0.0;
        const auto trace = engine.run(80);
        for (std::size_t i = 20; i < trace.size(); ++i) {
            const auto &s = trace[i];
            a2a.add(s.allToAll());
            moe.add(s.moeTime);
            ratio.add(s.loadMax / s.loadAvg);
            layer.add(s.layerTime(ec.pipelineStages));
            migration += s.migrationOverhead;
        }
        t.addRow({kindName(kind), Table::num(a2a.mean() * 1e6, 1),
                  Table::num(moe.mean() * 1e6, 1),
                  Table::num(migration * 1e6 / 60.0, 2),
                  Table::num(ratio.mean(), 2),
                  Table::num(layer.mean() * 1e6, 1)});
    }
    std::printf("%s\n", t.render().c_str());
}

} // namespace

int
main()
{
    std::printf("== Fig. 16: balancing strategies across schedules and "
                "workloads ==\n\n");
    SystemConfig sc;
    sc.platform = PlatformKind::WscEr;
    sc.meshN = 4;
    sc.tp = 4;
    const System sys = System::make(sc);

    for (const auto &model : {qwen3(), deepseekV3()}) {
        sweep(model, SchedulingMode::PrefillOnly, "Prefill-only",
              GatingMode::SingleScenario, "Math-only", sys);
        sweep(model, SchedulingMode::PrefillOnly, "Prefill-only",
              GatingMode::MixedScenario, "Mixed", sys);
        sweep(model, SchedulingMode::DecodeOnly, "Decode-only",
              GatingMode::SingleScenario, "Math-only", sys);
        sweep(model, SchedulingMode::DecodeOnly, "Decode-only",
              GatingMode::MixedScenario, "Mixed", sys);
        sweep(model, SchedulingMode::Hybrid, "Hybrid",
              GatingMode::SingleScenario, "Math-only", sys);
        sweep(model, SchedulingMode::Hybrid, "Hybrid",
              GatingMode::MixedScenario, "Mixed", sys);
    }
    return 0;
}
