/**
 * @file
 * Fig. 13(a): communication improvement of the WSC (with and without
 * ER-Mapping) over DGX clusters as the per-group token count grows
 * from 16 to 32k.
 *
 * Expected shape: the advantage rises with token count and saturates
 * beyond ~256 tokens per group, with ER-Mapping extending it further.
 */

#include <cstdio>

#include "core/moentwine.hh"

using namespace moentwine;

namespace {

double
commTotal(PlatformKind platform, int meshN, int dgxNodes, int tokens)
{
    SystemConfig sc;
    sc.platform = platform;
    sc.meshN = meshN;
    sc.dgxNodes = dgxNodes;
    sc.tp = 4;
    const System sys = System::make(sc);
    return evaluateCommunication(sys.mapping(), qwen3(), tokens, true)
        .total();
}

} // namespace

int
main()
{
    std::printf("== Fig. 13(a): impact of token count (Qwen3) ==\n\n");
    Table t({"tokens/group", "6x6 vs 32 GPUs", "6x6+ER vs 32 GPUs",
             "8x8 vs 64 GPUs", "8x8+ER vs 64 GPUs"});
    for (const int tokens : {16, 32, 64, 128, 256, 512, 1024, 2048,
                             4096, 8192, 16384, 32768}) {
        const double dgx4 =
            commTotal(PlatformKind::DgxCluster, 0, 4, tokens);
        const double dgx8 =
            commTotal(PlatformKind::DgxCluster, 0, 8, tokens);
        const double wsc6 =
            commTotal(PlatformKind::WscBaseline, 6, 0, tokens);
        const double er6 = commTotal(PlatformKind::WscEr, 6, 0, tokens);
        const double wsc8 =
            commTotal(PlatformKind::WscBaseline, 8, 0, tokens);
        const double er8 = commTotal(PlatformKind::WscEr, 8, 0, tokens);
        t.addRow({std::to_string(tokens),
                  Table::pct(1.0 - wsc6 / dgx4),
                  Table::pct(1.0 - er6 / dgx4),
                  Table::pct(1.0 - wsc8 / dgx8),
                  Table::pct(1.0 - er8 / dgx8)});
    }
    std::printf("%s\n", t.render().c_str());
    return 0;
}
