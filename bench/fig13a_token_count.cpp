/**
 * @file
 * Fig. 13(a): communication improvement of the WSC (with and without
 * ER-Mapping) over DGX clusters as the per-group token count grows
 * from 16 to 32k.
 *
 * Expected shape: the advantage rises with token count and saturates
 * beyond ~256 tokens per group, with ER-Mapping extending it further.
 *
 * Runs on the SweepRunner system × token-count grid (`--jobs N`);
 * the six platforms are built once and shared across workers.
 */

#include <cstdio>

#include "core/moentwine.hh"
#include "sweep/sweep.hh"
#include "jobs.hh"
#include "sweep_output.hh"

using namespace moentwine;

namespace {

/** Platform order in the systems axis. */
enum Platform
{
    kDgx4,
    kDgx8,
    kWsc6,
    kEr6,
    kWsc8,
    kEr8,
};

} // namespace

int
main(int argc, char **argv)
{
    std::printf("== Fig. 13(a): impact of token count (Qwen3) ==\n\n");

    SweepGrid grid;
    {
        SystemConfig sc;
        sc.platform = PlatformKind::DgxCluster;
        sc.tp = 4;
        sc.dgxNodes = 4;
        grid.systems.push_back(sc); // kDgx4
        sc.dgxNodes = 8;
        grid.systems.push_back(sc); // kDgx8
        sc.platform = PlatformKind::WscBaseline;
        sc.meshN = 6;
        grid.systems.push_back(sc); // kWsc6
        sc.platform = PlatformKind::WscEr;
        grid.systems.push_back(sc); // kEr6
        sc.platform = PlatformKind::WscBaseline;
        sc.meshN = 8;
        grid.systems.push_back(sc); // kWsc8
        sc.platform = PlatformKind::WscEr;
        grid.systems.push_back(sc); // kEr8
    }
    grid.params = {16,   32,   64,   128,  256,  512,
                   1024, 2048, 4096, 8192, 16384, 32768};

    const SweepRunner runner = benchjobs::makeRunner(argc, argv);
    const auto rows = runner.run(grid, [](const SweepCell &cell) {
        const int tokens = static_cast<int>(cell.point.parameter());
        SweepResult row;
        row.label = cell.system->name() + " tokens=" +
            std::to_string(tokens);
        row.add("tokens", tokens);
        row.add("comm_total_us",
                evaluateCommunication(cell.system->mapping(), qwen3(),
                                      tokens, true)
                        .total() *
                    1e6);
        return row;
    });

    Table t({"tokens/group", "6x6 vs 32 GPUs", "6x6+ER vs 32 GPUs",
             "8x8 vs 64 GPUs", "8x8+ER vs 64 GPUs"});
    for (std::size_t p = 0; p < grid.params.size(); ++p) {
        const auto total = [&](int system) {
            return rows[grid.at(-1, system, -1, -1, -1, -1,
                                static_cast<int>(p))]
                .metric("comm_total_us");
        };
        t.addRow({std::to_string(static_cast<int>(grid.params[p])),
                  Table::pct(1.0 - total(kWsc6) / total(kDgx4)),
                  Table::pct(1.0 - total(kEr6) / total(kDgx4)),
                  Table::pct(1.0 - total(kWsc8) / total(kDgx8)),
                  Table::pct(1.0 - total(kEr8) / total(kDgx8))});
    }
    std::printf("%s\n", t.render().c_str());
    benchout::writeSweepFiles("fig13a_token_count", rows);
    return 0;
}
