/**
 * @file
 * Simulator-performance benchmark of the route/traffic hot path: times
 * full engine iterations on a multi-wafer mesh and on a switch cluster,
 * with the route cache + flow aggregation enabled (the production
 * configuration) and disabled (the pre-optimisation baseline, kept
 * behind Topology::disableRouteCache() and EngineConfig::aggregateFlows).
 *
 * Emits a stable JSON trajectory to stdout and to BENCH_routing.json so
 * future PRs have a perf baseline to beat:
 *   {"bench": ..., "iters_per_sec": ..., "ns_per_route": ...,
 *    "route_storage": {"csr_bytes": ..., "next_hop_bytes": ...}}
 * plus a serial-vs-parallel wall clock of a fig16-style grid on the
 * SweepRunner thread pool:
 *   "sweep": {"cells": ..., "jobs": ..., "speedup": ...}
 * and, since the compressed next-hop storage landed, a 1024-device
 * scale point comparing the two route representations (build time,
 * storage bytes, per-walk overhead):
 *   "scale": {"devices": 1024, "bytes_ratio": ..., ...}
 * and, since the sparse traffic accumulator landed (schema v4), a
 * 1024-device dense-vs-sparse engine/reduction comparison plus a
 * 16384-device fine-grained-expert point where only the sparse
 * accumulator is feasible:
 *   "traffic": {"dense_iters_per_sec": ..., "sparse_iters_per_sec":
 *    ..., "dense_reduction_s": ..., "sparse_reduction_s": ...,
 *    "sparse_accum_bytes": ...}
 *   "traffic_scale": {"devices": 16384, "occupied_pairs": ...,
 *    "bytes_ratio": ..., ...}
 *
 * Since the observability layer (schema v5), each timed engine section
 * also reports hardware counters (cycles, instructions, IPC, cache and
 * dTLB misses) from perf_event_open — zeros with "available": false
 * where the PMU is unreachable (containers, locked-down CI) — and the
 * driver accepts:
 *   --trace <path>  sim-time trace of a short observed engine run
 *   --stats <path>  StatRegistry JSON of the same run
 *
 * Since the work-stealing sweep execution (schema v6), the "sweep"
 * section carries the scheduler counters (steals, prebuilds, engine
 * reuses) and a "sweep_exec" section measures per-worker engine reuse
 * on a 1024-device fine-grained-experts grid: the same grid run
 * serially (row reference), with per-cell engine rebuilds, with
 * per-worker reuse, and with reuse plus CPU pinning (`--affinity`),
 * each with per-run hw{} counters and per-cell construction cost —
 * the "construction_saving_per_cell_ms" the worker-state reuse buys.
 * Rows are bitwise-compared across all four runs.
 *
 * Usage: perf_routing [iterations] [--jobs N] [--affinity]
 *        [--trace P] [--stats P]
 *        (default 300 cached / 60 baseline; jobs default to
 *        MOENTWINE_JOBS, then hardware_concurrency)
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/moentwine.hh"
#include "obs/obs.hh"
#include "fig16_grid.hh"
#include "flags.hh"
#include "jobs.hh"
#include "sweep/sweep.hh"

using namespace moentwine;

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/**
 * Iterations/second of a fresh engine on the given platform. When
 * @p hw is non-null the timed region also runs under the hardware
 * counter group (zeros when the PMU is unavailable).
 */
double
engineThroughput(const Mapping &mapping, const EngineConfig &cfg,
                 int iterations, HwCounterValues *hw = nullptr)
{
    InferenceEngine engine(mapping, cfg);
    // Warm up: builds the route table, dispatch-source memo, and
    // steady-state scratch capacities outside the timed region.
    engine.step();
    engine.step();
    HwCounters counters;
    if (hw != nullptr)
        counters.start();
    const auto start = Clock::now();
    double checksum = 0.0;
    for (int i = 0; i < iterations; ++i)
        checksum += engine.step().layerTime(cfg.pipelineStages);
    const double elapsed = secondsSince(start);
    if (hw != nullptr)
        *hw = counters.stop();
    if (checksum < 0.0)
        std::printf("impossible\n"); // keep the loop observable
    return static_cast<double>(iterations) / elapsed;
}

/** Average wall-clock nanoseconds of one route(src, dst) lookup. */
double
nsPerRouteLookup(const Topology &topo, int samples)
{
    const int devices = topo.numDevices();
    long hopsSum = 0;
    DeviceId a = 0;
    const auto start = Clock::now();
    for (int i = 0; i < samples; ++i) {
        const DeviceId b = (a * 31 + 17) % devices;
        hopsSum += static_cast<long>(topo.route(a, b).size());
        a = (a + 1) % devices;
    }
    const double elapsed = secondsSince(start);
    if (hopsSum < 0)
        std::printf("impossible\n");
    return elapsed * 1e9 / static_cast<double>(samples);
}

struct BenchResult
{
    std::string bench;
    double itersPerSec = 0.0;
    double nsPerRoute = 0.0;
    double baselineItersPerSec = 0.0;
    double baselineNsPerRoute = 0.0;
    std::size_t csrBytes = 0;
    std::size_t nextHopBytes = 0;
    /** Hardware counters of the cached (production) timed region. */
    HwCounterValues hw{};

    double speedup() const
    {
        return baselineItersPerSec > 0.0
            ? itersPerSec / baselineItersPerSec
            : 0.0;
    }

    double bytesRatio() const
    {
        return nextHopBytes > 0
            ? static_cast<double>(csrBytes) /
                static_cast<double>(nextHopBytes)
            : 0.0;
    }
};

/**
 * Peak route-storage footprint of both representations on @p topo:
 * builds each in turn and reads its heap bytes, then restores the
 * Auto policy (the topology rebuilds lazily on next use).
 */
void
measureRouteStorage(Topology &topo, std::size_t &csrBytes,
                    std::size_t &nextHopBytes)
{
    topo.setRouteStorage(RouteStorageKind::CsrArena);
    csrBytes = topo.routeStorageBytes();
    topo.setRouteStorage(RouteStorageKind::NextHop);
    nextHopBytes = topo.routeStorageBytes();
    topo.setRouteStorage(RouteStorageKind::Auto);
}

/**
 * Run one platform in both modes. The topology is taken non-const so
 * the no-cache test hook can be toggled around the baseline run.
 */
BenchResult
runPlatform(const std::string &label, Topology &topo,
            const Mapping &mapping, EngineConfig cfg, int iters)
{
    BenchResult r;
    r.bench = label;

    // Cached + aggregated (production) configuration, with the
    // hardware-counter group around the timed region.
    topo.enableRouteCache();
    cfg.aggregateFlows = true;
    r.itersPerSec = engineThroughput(mapping, cfg, iters, &r.hw);
    r.nsPerRoute = nsPerRouteLookup(topo, 200000);

    // Route-storage footprint under both representations.
    measureRouteStorage(topo, r.csrBytes, r.nextHopBytes);

    // Baseline: per-query route derivation, per-triple flow lists.
    topo.disableRouteCache();
    cfg.aggregateFlows = false;
    const int baseIters = std::max(10, iters / 5);
    r.baselineItersPerSec = engineThroughput(mapping, cfg, baseIters);
    r.baselineNsPerRoute = nsPerRouteLookup(topo, 20000);
    topo.enableRouteCache();

    std::printf("%-24s cached %8.1f it/s | baseline %8.1f it/s | "
                "speedup %5.2fx | route %6.1f ns vs %8.1f ns | "
                "storage csr %zu B vs nexthop %zu B (%.1fx)\n",
                r.bench.c_str(), r.itersPerSec, r.baselineItersPerSec,
                r.speedup(), r.nsPerRoute, r.baselineNsPerRoute,
                r.csrBytes, r.nextHopBytes, r.bytesRatio());
    return r;
}

/**
 * The kilodevice scale point the compressed storage exists for: a
 * 4x(16x16) multi-wafer mesh (1024 devices). Records build time,
 * storage bytes, and per-walk overhead of each representation; the
 * CSR arena at this size is ~6x the next-hop matrix and grows with
 * average hop count, which is what capped earlier systems.
 */
struct ScaleResult
{
    std::string bench;
    int devices = 0;
    std::size_t csrBytes = 0;
    std::size_t nextHopBytes = 0;
    double csrBuildSeconds = 0.0;
    double nextHopBuildSeconds = 0.0;
    double nsPerWalkCsr = 0.0;
    double nsPerWalkNextHop = 0.0;

    double bytesRatio() const
    {
        return nextHopBytes > 0
            ? static_cast<double>(csrBytes) /
                static_cast<double>(nextHopBytes)
            : 0.0;
    }
};

/** Average wall-clock nanoseconds of one full walk() link iteration. */
double
nsPerWalk(const Topology &topo, int samples)
{
    const int devices = topo.numDevices();
    long hopsSum = 0;
    DeviceId a = 0;
    const auto start = Clock::now();
    for (int i = 0; i < samples; ++i) {
        const DeviceId b = (a * 31 + 17) % devices;
        for (const LinkId l : topo.walk(a, b))
            hopsSum += l >= 0 ? 1 : 0;
        a = (a + 1) % devices;
    }
    const double elapsed = secondsSince(start);
    if (hopsSum < 0)
        std::printf("impossible\n");
    return elapsed * 1e9 / static_cast<double>(samples);
}

ScaleResult
runScaleBench()
{
    ScaleResult r;
    r.bench = "wsc_4x(16x16)_1024dev";

    MeshTopology mesh = MeshTopology::waferRow(4, 16);
    r.devices = mesh.numDevices();

    // Compressed next-hop matrix (what Auto selects at this size).
    mesh.setRouteStorage(RouteStorageKind::NextHop);
    auto start = Clock::now();
    mesh.finalizeRoutes();
    r.nextHopBuildSeconds = secondsSince(start);
    r.nextHopBytes = mesh.routeStorageBytes();
    r.nsPerWalkNextHop = nsPerWalk(mesh, 200000);

    // CSR arena on the same topology for the memory-curve comparison.
    mesh.setRouteStorage(RouteStorageKind::CsrArena);
    start = Clock::now();
    mesh.finalizeRoutes();
    r.csrBuildSeconds = secondsSince(start);
    r.csrBytes = mesh.routeStorageBytes();
    r.nsPerWalkCsr = nsPerWalk(mesh, 200000);

    std::printf("%-24s %d devices | storage csr %.1f MB vs nexthop "
                "%.1f MB (%.1fx) | walk %5.1f ns vs %5.1f ns | "
                "build %.2f s vs %.2f s\n",
                r.bench.c_str(), r.devices, r.csrBytes / 1e6,
                r.nextHopBytes / 1e6, r.bytesRatio(), r.nsPerWalkCsr,
                r.nsPerWalkNextHop, r.csrBuildSeconds,
                r.nextHopBuildSeconds);
    return r;
}

/** Wall-clock of one SweepRunner pass over a fig16-style grid. */
struct SweepBenchResult
{
    std::string bench;
    std::size_t cells = 0;
    int jobs = 1;
    double serialSeconds = 0.0;
    double parallelSeconds = 0.0;
    bool rowsIdentical = false;
    /** Scheduler counters of the parallel run. */
    SweepRunStats stats;

    double speedup() const
    {
        return parallelSeconds > 0.0 ? serialSeconds / parallelSeconds
                                     : 0.0;
    }
};

/** Exact row equality (labels, keys, bitwise metric values). */
bool
rowsEqual(const std::vector<SweepResult> &a,
          const std::vector<SweepResult> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].index != b[i].index || a[i].label != b[i].label ||
            a[i].metrics != b[i].metrics)
            return false;
    }
    return true;
}

/**
 * Time the fig16-style balancing grid serially and on the thread
 * pool. The grid is embarrassingly parallel (one engine per cell), so
 * on a multi-core runner the pool's wall-clock approaches
 * serial/jobs; rows must come back byte-identical either way.
 */
SweepBenchResult
runSweepBench(int jobs)
{
    // Time exactly the grid fig16_balancing runs (bench/fig16_grid.cc
    // is shared with the driver, so this trajectory cannot drift from
    // the figure it claims to measure).
    const SweepGrid grid = benchgrid::fig16BalancingGrid();

    const SweepRunner::CellFn cell = [](const SweepCell &c) {
        const EngineConfig ec = benchgrid::fig16EngineConfig(c.point);
        InferenceEngine &engine =
            c.worker->engine(c.system->mapping(), ec);
        double layer = 0.0;
        for (const auto &s : engine.run(benchgrid::kFig16Iterations))
            layer += s.layerTime(ec.pipelineStages);
        SweepResult row;
        row.label = "cell" + std::to_string(c.point.index);
        row.add("layer_sum_s", layer);
        return row;
    };

    SweepBenchResult r;
    r.bench = "sweep_fig16_wsc_er_16dev";
    r.cells = grid.cells();
    r.jobs = jobs;

    const SweepRunner serial(1);
    auto start = Clock::now();
    const auto serialRows = serial.run(grid, cell);
    r.serialSeconds = secondsSince(start);

    SweepOptions popts;
    popts.jobs = jobs;
    const SweepRunner parallel(popts);
    start = Clock::now();
    const auto parallelRows = parallel.run(grid, cell, &r.stats);
    r.parallelSeconds = secondsSince(start);

    r.rowsIdentical = rowsEqual(serialRows, parallelRows);

    std::printf("%-24s serial %6.2f s | parallel(%d) %6.2f s | "
                "speedup %5.2fx | steals %lld | reuses %lld | rows %s\n",
                r.bench.c_str(), r.serialSeconds, r.jobs,
                r.parallelSeconds, r.speedup(),
                static_cast<long long>(r.stats.steals),
                static_cast<long long>(r.stats.engineReuses),
                r.rowsIdentical ? "identical" : "DIVERGED");
    return r;
}

/**
 * The worker-state-reuse trajectory: a 1024-device fine-grained-
 * experts grid where each cell's engine owns tens of MB of traffic
 * scratch, so per-cell construction is a real fraction of cell time.
 * One grid, four schedules — serial reference, per-cell rebuild,
 * per-worker reuse, reuse + pinning — rows bitwise-compared across
 * all of them, per-cell construction cost measured inside the cell
 * function, hw counters around each parallel drain.
 */
constexpr int kExecIterations = 2;

SweepGrid
execGrid()
{
    SweepGrid grid;
    SystemConfig sc;
    sc.platform = PlatformKind::WscHer;
    sc.meshN = 16;
    sc.wafers = 4;
    sc.tp = 4;
    grid.systems = {sc};
    // Free axis: decode token-group size. 16 cells is enough for
    // every worker to see many same-platform cells in its block —
    // the reuse regime — while keeping the whole section in seconds.
    for (int g = 1; g <= 16; ++g)
        grid.params.push_back(static_cast<double>(8 * g));
    return grid;
}

EngineConfig
execEngineConfig(const SweepPoint &point, int devices)
{
    EngineConfig ec;
    ec.model = qwen3();
    // Fine-grained expert regime (one expert per device): the regime
    // where engine state (placements, EMA loads, traffic scratch)
    // scales with the device count and construction is expensive.
    ec.model.expertsTotal = devices;
    ec.balancer = BalancerKind::None;
    ec.schedule = SchedulingMode::DecodeOnly;
    ec.decodeTokensPerGroup = static_cast<int>(point.parameter());
    ec.workload.mode = GatingMode::MixedScenario;
    ec.workload.mixPeriod = 60;
    ec.workload.seed = point.seed();
    return ec;
}

/** One scheduled pass over the exec grid. */
struct ExecRun
{
    std::string name;
    double seconds = 0.0;
    /** Mean seconds of engine acquisition (construction or reset)
     *  plus the first iteration — where a fresh engine pays its lazy
     *  scratch allocations — measured inside the cell function. */
    double warmSecondsPerCell = 0.0;
    SweepRunStats stats;
    std::vector<SweepResult> rows;
};

ExecRun
runExecOnce(const std::string &name, const SweepGrid &grid,
            const SweepOptions &opts)
{
    const int devices = grid.systems[0].meshN * grid.systems[0].meshN *
        grid.systems[0].wafers;
    std::atomic<long long> warmNs{0};
    const SweepRunner::CellFn cell = [&warmNs,
                                      devices](const SweepCell &c) {
        const EngineConfig ec = execEngineConfig(c.point, devices);
        // Warm cost = engine acquisition plus the first iteration:
        // the engine allocates its traffic/routing scratch lazily on
        // first use, so a fresh engine pays its multi-MB allocations
        // (and their page faults) inside step 0 — exactly the cost a
        // reused engine's retained capacity avoids.
        const auto t0 = Clock::now();
        InferenceEngine &engine =
            c.worker->engine(c.system->mapping(), ec);
        double layer =
            engine.step().layerTime(ec.pipelineStages);
        warmNs.fetch_add(
            static_cast<long long>(secondsSince(t0) * 1e9),
            std::memory_order_relaxed);
        for (int i = 1; i < kExecIterations; ++i)
            layer += engine.step().layerTime(ec.pipelineStages);
        SweepResult row;
        row.label = "cell" + std::to_string(c.point.index);
        row.add("layer_sum_s", layer);
        return row;
    };

    ExecRun r;
    r.name = name;
    const SweepRunner runner(opts);
    const auto start = Clock::now();
    r.rows = runner.run(grid, cell, &r.stats);
    r.seconds = secondsSince(start);
    r.warmSecondsPerCell = static_cast<double>(warmNs.load()) * 1e-9 /
        static_cast<double>(grid.cells());
    return r;
}

struct ExecBenchResult
{
    std::string bench;
    int devices = 0;
    std::size_t cells = 0;
    int jobs = 1;
    double serialSeconds = 0.0;
    std::vector<ExecRun> runs; ///< rebuild, reuse, pinned
    bool rowsIdentical = false;

    /** What per-worker reuse saves per cell vs rebuilding. */
    double constructionSavingPerCellMs = 0.0;
};

ExecBenchResult
runExecBench(int jobs)
{
    const SweepGrid grid = execGrid();

    ExecBenchResult r;
    r.bench = "sweep_exec_wsc_4x(16x16)_her_1024dev";
    r.devices = 1024;
    r.cells = grid.cells();
    r.jobs = jobs;

    SweepOptions serial;
    serial.jobs = 1;
    // Serial reference also reuses: reuse may never change a row, so
    // the reference must not special-case it away.
    const ExecRun ref = runExecOnce("serial", grid, serial);
    r.serialSeconds = ref.seconds;

    SweepOptions rebuild;
    rebuild.jobs = jobs;
    rebuild.reuseWorkerState = false;
    rebuild.collectHw = true;
    r.runs.push_back(runExecOnce("rebuild", grid, rebuild));

    SweepOptions reuse = rebuild;
    reuse.reuseWorkerState = true;
    r.runs.push_back(runExecOnce("reuse", grid, reuse));

    // The pinned pass runs whether or not the driver got --affinity:
    // the trajectory wants the pinned-vs-unpinned hw delta every time.
    SweepOptions pinned = reuse;
    pinned.affinity = true;
    r.runs.push_back(runExecOnce("pinned", grid, pinned));

    r.rowsIdentical = true;
    for (const ExecRun &run : r.runs)
        r.rowsIdentical = r.rowsIdentical && rowsEqual(ref.rows, run.rows);
    r.constructionSavingPerCellMs =
        (r.runs[0].warmSecondsPerCell - r.runs[1].warmSecondsPerCell) *
        1e3;

    for (const ExecRun &run : r.runs) {
        std::printf("%-24s %-8s %6.2f s | warm %6.2f ms/cell | "
                    "steals %lld | builds %lld | reuses %lld | "
                    "pinned %d/%d\n",
                    r.bench.c_str(), run.name.c_str(), run.seconds,
                    run.warmSecondsPerCell * 1e3,
                    static_cast<long long>(run.stats.steals),
                    static_cast<long long>(run.stats.engineBuilds),
                    static_cast<long long>(run.stats.engineReuses),
                    run.stats.pinned, run.stats.workers);
    }
    std::printf("%-24s reuse saves %.2f ms/cell | rows %s\n",
                r.bench.c_str(), r.constructionSavingPerCellMs,
                r.rowsIdentical ? "identical" : "DIVERGED");
    return r;
}

/**
 * Dense-vs-sparse traffic accumulation at 1024 devices: full engine
 * throughput and the isolated routeTokens→allToAll reduction under
 * each forced storage, plus the accumulator footprints. The two
 * storages are bitwise equivalent (pinned by
 * tests/traffic_accum_test.cpp), so any gap here is pure overhead.
 */
struct TrafficResult
{
    std::string bench;
    int devices = 0;
    double denseItersPerSec = 0.0;
    double sparseItersPerSec = 0.0;
    double denseReductionSeconds = 0.0;
    double sparseReductionSeconds = 0.0;
    std::size_t denseBytes = 0;
    std::size_t sparseBytes = 0;

    double sparseVsDense() const
    {
        return denseItersPerSec > 0.0
            ? sparseItersPerSec / denseItersPerSec
            : 0.0;
    }
};

/**
 * Average seconds of one aggregated routeTokens + dispatch/combine
 * link-load reduction pass (the tiled matrix→addFlow path this PR
 * blocks for cache locality).
 */
double
reductionSeconds(const Mapping &mapping, const ExpertPlacement &placement,
                 const std::vector<std::vector<int>> &counts,
                 const EngineConfig &cfg, int passes)
{
    RoutedTraffic routed;
    PhaseTraffic disp(mapping.topology());
    PhaseTraffic comb(mapping.topology());
    // Warm pass: reaches steady-state scratch capacity.
    routeTokens(mapping, placement, counts, cfg.model.tokenBytes(),
                cfg.retainAllGather, cfg.model.expertsActivated, routed,
                true);
    double checksum = 0.0;
    const auto start = Clock::now();
    for (int i = 0; i < passes; ++i) {
        routeTokens(mapping, placement, counts, cfg.model.tokenBytes(),
                    cfg.retainAllGather, cfg.model.expertsActivated,
                    routed, true);
        checksum += allToAllInto(routed.dispatch, disp);
        checksum += allToAllInto(routed.combine, comb);
    }
    const double elapsed = secondsSince(start);
    if (checksum < 0.0)
        std::printf("impossible\n");
    return elapsed / static_cast<double>(passes);
}

TrafficResult
runTrafficBench(const EngineConfig &baseCfg, int iters)
{
    TrafficResult r;
    r.bench = "wsc_4x(16x16)_her_1024dev";

    MeshTopology mesh = MeshTopology::waferRow(4, 16);
    HierarchicalErMapping her(
        mesh, decomposeTp(4, mesh.waferRows(), mesh.waferCols()));
    r.devices = mesh.numDevices();

    EngineConfig cfg = baseCfg;
    // Fine-grained expert regime (one expert per device, single
    // replica, decode-sized token groups, no balancer fan-out) — the
    // regime the sparse storage exists for, and the same one the
    // 16384-device section measures, so the two traffic sections
    // compare like with like across scale. Balancer interaction is
    // pinned separately by the bitwise engine-equivalence tests.
    cfg.balancer = BalancerKind::None;
    cfg.model.expertsTotal = r.devices;
    cfg.decodeTokensPerGroup = 16;

    WorkloadConfig wc = cfg.workload;
    wc.numExperts = cfg.model.expertsTotal;
    wc.topK = cfg.model.expertsActivated;
    WorkloadGenerator gen(wc);
    const ExpertPlacement placement(cfg.model.expertsTotal, r.devices,
                                    cfg.shadowSlots);
    const auto counts =
        gen.sampleCounts(0, 0, cfg.decodeTokensPerGroup, her.dp());

    const int engineIters = std::max(10, iters / 5);
    const int passes = std::max(5, iters / 10);

    her.setTrafficStorage(TrafficStorageKind::Dense);
    r.denseItersPerSec = engineThroughput(her, cfg, engineIters);
    r.denseReductionSeconds =
        reductionSeconds(her, placement, counts, cfg, passes);
    {
        RoutedTraffic routed;
        routeTokens(her, placement, counts, cfg.model.tokenBytes(),
                    cfg.retainAllGather, cfg.model.expertsActivated,
                    routed, true);
        r.denseBytes = routed.pairBytes.storageBytes();
    }

    her.setTrafficStorage(TrafficStorageKind::Sparse);
    r.sparseItersPerSec = engineThroughput(her, cfg, engineIters);
    r.sparseReductionSeconds =
        reductionSeconds(her, placement, counts, cfg, passes);
    {
        RoutedTraffic routed;
        routeTokens(her, placement, counts, cfg.model.tokenBytes(),
                    cfg.retainAllGather, cfg.model.expertsActivated,
                    routed, true);
        r.sparseBytes = routed.pairBytes.storageBytes();
    }

    std::printf("%-24s dense %8.1f it/s vs sparse %8.1f it/s "
                "(%.3fx) | reduction %.3f ms vs %.3f ms | accum "
                "%.1f MB vs %.1f MB\n",
                r.bench.c_str(), r.denseItersPerSec, r.sparseItersPerSec,
                r.sparseVsDense(), r.denseReductionSeconds * 1e3,
                r.sparseReductionSeconds * 1e3, r.denseBytes / 1e6,
                r.sparseBytes / 1e6);
    return r;
}

/**
 * The 16384-device point only the sparse accumulator makes feasible:
 * fine-grained experts (one per device) on a 4×(64×64) mesh with
 * on-the-fly routes. The dense matrix is analytic — allocating 2.1 GB
 * is what the sparse path exists to avoid.
 */
struct TrafficScaleResult
{
    std::string bench;
    int devices = 0;
    std::size_t occupiedPairs = 0;
    std::size_t sparseBytes = 0;
    std::size_t denseBytes = 0;
    double sparseReductionSeconds = 0.0;

    double bytesRatio() const
    {
        return sparseBytes > 0
            ? static_cast<double>(denseBytes) /
                static_cast<double>(sparseBytes)
            : 0.0;
    }
};

TrafficScaleResult
runTrafficScaleBench()
{
    TrafficScaleResult r;
    r.bench = "wsc_4x(64x64)_her_16384dev";

    MeshTopology mesh = MeshTopology::waferRow(4, 64);
    mesh.disableRouteCache();
    const HierarchicalErMapping her(
        mesh, decomposeTp(4, mesh.waferRows(), mesh.waferCols()));
    r.devices = mesh.numDevices();
    r.denseBytes = TrafficAccumulator::denseBytes(r.devices);

    EngineConfig cfg;
    cfg.model = qwen3();
    cfg.model.expertsTotal = r.devices;
    cfg.decodeTokensPerGroup = 16;
    cfg.workload.mode = GatingMode::MixedScenario;

    WorkloadConfig wc = cfg.workload;
    wc.numExperts = cfg.model.expertsTotal;
    wc.topK = cfg.model.expertsActivated;
    WorkloadGenerator gen(wc);
    const ExpertPlacement placement(cfg.model.expertsTotal, r.devices,
                                    cfg.shadowSlots);
    const auto counts =
        gen.sampleCounts(0, 0, cfg.decodeTokensPerGroup, her.dp());

    r.sparseReductionSeconds =
        reductionSeconds(her, placement, counts, cfg, 2);
    RoutedTraffic routed;
    routeTokens(her, placement, counts, cfg.model.tokenBytes(),
                cfg.retainAllGather, cfg.model.expertsActivated, routed,
                true);
    r.occupiedPairs = routed.pairBytes.occupancy();
    r.sparseBytes = routed.pairBytes.storageBytes();

    std::printf("%-24s %d devices | %zu pairs | sparse %.1f MB vs "
                "dense %.1f MB (%.1fx) | reduction %.3f s\n",
                r.bench.c_str(), r.devices, r.occupiedPairs,
                r.sparseBytes / 1e6, r.denseBytes / 1e6, r.bytesRatio(),
                r.sparseReductionSeconds);
    return r;
}

/** Inline JSON object of one hw counter set. */
std::string
hwJson(const HwCounterValues &hw)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"available\": %s, \"cycles\": %llu, "
                  "\"instructions\": %llu, \"ipc\": %.2f, "
                  "\"cache_misses\": %llu, \"dtlb_misses\": %llu}",
                  hw.available ? "true" : "false",
                  static_cast<unsigned long long>(hw.cycles),
                  static_cast<unsigned long long>(hw.instructions),
                  hw.ipc(),
                  static_cast<unsigned long long>(hw.cacheMisses),
                  static_cast<unsigned long long>(hw.dtlbMisses));
    return buf;
}

std::string
toJson(const std::vector<BenchResult> &results, const ScaleResult &scale,
       const SweepBenchResult &sweep, const ExecBenchResult &exec,
       const TrafficResult &traffic,
       const TrafficScaleResult &trafficScale)
{
    std::string out = "{\n  \"schema\": \"moentwine.bench.routing.v6\",\n"
                      "  \"results\": [\n";
    char buf[1024];
    for (std::size_t i = 0; i < results.size(); ++i) {
        const BenchResult &r = results[i];
        std::snprintf(
            buf, sizeof(buf),
            "    {\"bench\": \"%s\", \"iters_per_sec\": %.1f, "
            "\"ns_per_route\": %.1f, \"baseline_iters_per_sec\": %.1f, "
            "\"baseline_ns_per_route\": %.1f, \"speedup\": %.2f, "
            "\"route_storage\": {\"csr_bytes\": %zu, "
            "\"next_hop_bytes\": %zu, \"bytes_ratio\": %.2f}, "
            "\"hw\": {\"available\": %s, \"cycles\": %llu, "
            "\"instructions\": %llu, \"ipc\": %.2f, "
            "\"cache_misses\": %llu, \"dtlb_misses\": %llu}}%s\n",
            r.bench.c_str(), r.itersPerSec, r.nsPerRoute,
            r.baselineItersPerSec, r.baselineNsPerRoute, r.speedup(),
            r.csrBytes, r.nextHopBytes, r.bytesRatio(),
            r.hw.available ? "true" : "false",
            static_cast<unsigned long long>(r.hw.cycles),
            static_cast<unsigned long long>(r.hw.instructions),
            r.hw.ipc(),
            static_cast<unsigned long long>(r.hw.cacheMisses),
            static_cast<unsigned long long>(r.hw.dtlbMisses),
            i + 1 < results.size() ? "," : "");
        out += buf;
    }
    out += "  ],\n";
    std::snprintf(
        buf, sizeof(buf),
        "  \"scale\": {\"bench\": \"%s\", \"devices\": %d, "
        "\"csr_bytes\": %zu, \"next_hop_bytes\": %zu, "
        "\"bytes_ratio\": %.2f, \"csr_build_s\": %.3f, "
        "\"next_hop_build_s\": %.3f, \"ns_per_walk_csr\": %.1f, "
        "\"ns_per_walk_next_hop\": %.1f},\n",
        scale.bench.c_str(), scale.devices, scale.csrBytes,
        scale.nextHopBytes, scale.bytesRatio(), scale.csrBuildSeconds,
        scale.nextHopBuildSeconds, scale.nsPerWalkCsr,
        scale.nsPerWalkNextHop);
    out += buf;
    std::snprintf(
        buf, sizeof(buf),
        "  \"traffic\": {\"bench\": \"%s\", \"devices\": %d, "
        "\"dense_iters_per_sec\": %.1f, \"sparse_iters_per_sec\": %.1f, "
        "\"sparse_vs_dense\": %.3f, \"dense_reduction_s\": %.6f, "
        "\"sparse_reduction_s\": %.6f, \"dense_accum_bytes\": %zu, "
        "\"sparse_accum_bytes\": %zu},\n",
        traffic.bench.c_str(), traffic.devices, traffic.denseItersPerSec,
        traffic.sparseItersPerSec, traffic.sparseVsDense(),
        traffic.denseReductionSeconds, traffic.sparseReductionSeconds,
        traffic.denseBytes, traffic.sparseBytes);
    out += buf;
    std::snprintf(
        buf, sizeof(buf),
        "  \"traffic_scale\": {\"bench\": \"%s\", \"devices\": %d, "
        "\"occupied_pairs\": %zu, \"sparse_accum_bytes\": %zu, "
        "\"dense_accum_bytes\": %zu, \"bytes_ratio\": %.2f, "
        "\"sparse_reduction_s\": %.3f},\n",
        trafficScale.bench.c_str(), trafficScale.devices,
        trafficScale.occupiedPairs, trafficScale.sparseBytes,
        trafficScale.denseBytes, trafficScale.bytesRatio(),
        trafficScale.sparseReductionSeconds);
    out += buf;
    std::snprintf(
        buf, sizeof(buf),
        "  \"sweep\": {\"bench\": \"%s\", \"cells\": %zu, "
        "\"jobs\": %d, \"serial_seconds\": %.3f, "
        "\"parallel_seconds\": %.3f, \"speedup\": %.2f, "
        "\"steals\": %lld, \"prebuilds\": %lld, "
        "\"engine_builds\": %lld, \"engine_reuses\": %lld, "
        "\"rows_identical\": %s},\n",
        sweep.bench.c_str(), sweep.cells, sweep.jobs,
        sweep.serialSeconds, sweep.parallelSeconds, sweep.speedup(),
        static_cast<long long>(sweep.stats.steals),
        static_cast<long long>(sweep.stats.prebuilds),
        static_cast<long long>(sweep.stats.engineBuilds),
        static_cast<long long>(sweep.stats.engineReuses),
        sweep.rowsIdentical ? "true" : "false");
    out += buf;
    std::snprintf(
        buf, sizeof(buf),
        "  \"sweep_exec\": {\"bench\": \"%s\", \"devices\": %d, "
        "\"cells\": %zu, \"jobs\": %d, \"numa_nodes\": %d, "
        "\"serial_seconds\": %.3f, "
        "\"construction_saving_per_cell_ms\": %.3f, "
        "\"rows_identical\": %s,\n    \"runs\": [\n",
        exec.bench.c_str(), exec.devices, exec.cells, exec.jobs,
        exec.runs.empty() ? 1 : exec.runs.back().stats.numaNodes,
        exec.serialSeconds, exec.constructionSavingPerCellMs,
        exec.rowsIdentical ? "true" : "false");
    out += buf;
    for (std::size_t i = 0; i < exec.runs.size(); ++i) {
        const ExecRun &run = exec.runs[i];
        std::string busy = "[";
        for (std::size_t w = 0; w < run.stats.workerBusySeconds.size();
             ++w) {
            std::snprintf(buf, sizeof(buf), "%s%.3f", w > 0 ? ", " : "",
                          run.stats.workerBusySeconds[w]);
            busy += buf;
        }
        busy += "]";
        std::snprintf(
            buf, sizeof(buf),
            "      {\"name\": \"%s\", \"seconds\": %.3f, "
            "\"warm_ms_per_cell\": %.3f, \"workers\": %d, "
            "\"pinned_workers\": %d, \"steals\": %lld, "
            "\"prebuilds\": %lld, \"prebuild_steals\": %lld, "
            "\"engine_builds\": %lld, \"engine_reuses\": %lld, "
            "\"worker_busy_s\": %s, \"hw\": %s}%s\n",
            run.name.c_str(), run.seconds,
            run.warmSecondsPerCell * 1e3, run.stats.workers,
            run.stats.pinned, static_cast<long long>(run.stats.steals),
            static_cast<long long>(run.stats.prebuilds),
            static_cast<long long>(run.stats.prebuildSteals),
            static_cast<long long>(run.stats.engineBuilds),
            static_cast<long long>(run.stats.engineReuses),
            busy.c_str(), hwJson(run.stats.hw).c_str(),
            i + 1 < exec.runs.size() ? "," : "");
        out += buf;
    }
    out += "    ]}\n";
    out += "}\n";
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    int iters = 300;
    const auto positionals = benchflags::positionals(argc, argv);
    if (positionals.size() > 1)
        fatal("perf_routing takes at most one positional (iterations)");
    if (!positionals.empty()) {
        iters = benchflags::positiveInt(positionals.front(),
                                        "perf_routing iteration count");
    }
    const std::string tracePath =
        benchflags::stringFlag(argc, argv, "--trace");
    const std::string statsPath =
        benchflags::stringFlag(argc, argv, "--stats");
    const int jobs = benchjobs::resolve(argc, argv);

    // Fig. 16-style serving workload: decode iterations over a drifting
    // scenario mixture, which keeps gating (and therefore the flow set)
    // changing every iteration.
    EngineConfig cfg;
    cfg.model = qwen3();
    cfg.schedule = SchedulingMode::DecodeOnly;
    cfg.decodeTokensPerGroup = 128;
    cfg.workload.mode = GatingMode::MixedScenario;
    cfg.workload.mixPeriod = 60;
    cfg.balancer = BalancerKind::TopologyAware;
    cfg.alpha = 0.5;
    cfg.beta = 5;

    std::vector<BenchResult> results;

    {
        // Multi-wafer mesh (fig13d-style): two 8x8 wafers, HER-Mapping.
        MeshTopology mesh = MeshTopology::waferRow(2, 8);
        const HierarchicalErMapping her(mesh, ParallelismConfig{2, 4});
        results.push_back(
            runPlatform("wsc_2x(8x8)_her", mesh, her, cfg, iters));
    }
    {
        // Switch cluster (fig16 GPU baseline): 4-node DGX, TP=4.
        SwitchClusterTopology dgx = SwitchClusterTopology::dgx(4);
        const ClusterMapping cm(dgx, 4);
        results.push_back(
            runPlatform("dgx_4node_tp4", dgx, cm, cfg, iters));
    }

    // Kilodevice scale point: the compressed next-hop storage vs the
    // CSR arena on a 1024-device multi-wafer mesh.
    const ScaleResult scale = runScaleBench();

    // Traffic-accumulator trajectory: dense vs sparse at 1024 devices
    // (throughput parity) and the sparse-only 16384-device point
    // (memory win).
    const TrafficResult traffic = runTrafficBench(cfg, iters);
    const TrafficScaleResult trafficScale = runTrafficScaleBench();

    // Parallel-sweep trajectory: serial vs thread-pooled wall-clock of
    // a fig16-style grid (the workload every converted fig driver now
    // runs through SweepRunner), plus the worker-state-reuse section
    // on the 1024-device grid.
    const SweepBenchResult sweep = runSweepBench(jobs);
    const ExecBenchResult exec = runExecBench(jobs);

    if (!tracePath.empty() || !statsPath.empty()) {
        // Short observed engine run on the multi-wafer mesh, outside
        // every timed region so observation cost never lands in the
        // reported numbers.
        MeshTopology mesh = MeshTopology::waferRow(2, 8);
        const HierarchicalErMapping her(mesh, ParallelismConfig{2, 4});
        InferenceEngine engine(her, cfg);
        StatRegistry stats;
        TraceSink trace;
        ObsHooks hooks;
        hooks.stats = &stats;
        if (!tracePath.empty())
            hooks.trace = &trace;
        engine.attachObs(hooks);
        engine.run(50);
        if (!tracePath.empty() && trace.writeFile(tracePath))
            std::printf("wrote %s\n", tracePath.c_str());
        if (!statsPath.empty()) {
            if (std::FILE *f = std::fopen(statsPath.c_str(), "w")) {
                const std::string statsJson = stats.toJson();
                std::fwrite(statsJson.data(), 1, statsJson.size(), f);
                std::fclose(f);
                std::printf("wrote %s\n", statsPath.c_str());
            } else {
                warn("could not write " + statsPath);
            }
        }
    }

    const std::string json =
        toJson(results, scale, sweep, exec, traffic, trafficScale);
    std::printf("\n%s", json.c_str());

    if (std::FILE *f = std::fopen("BENCH_routing.json", "w")) {
        std::fputs(json.c_str(), f);
        std::fclose(f);
        std::printf("wrote BENCH_routing.json\n");
    } else {
        std::fprintf(stderr, "could not write BENCH_routing.json\n");
        return 1;
    }
    return 0;
}
