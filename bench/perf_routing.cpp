/**
 * @file
 * Simulator-performance benchmark of the route/traffic hot path: times
 * full engine iterations on a multi-wafer mesh and on a switch cluster,
 * with the route cache + flow aggregation enabled (the production
 * configuration) and disabled (the pre-optimisation baseline, kept
 * behind Topology::disableRouteCache() and EngineConfig::aggregateFlows).
 *
 * Emits a stable JSON trajectory to stdout and to BENCH_routing.json so
 * future PRs have a perf baseline to beat:
 *   {"bench": ..., "iters_per_sec": ..., "ns_per_route": ...}
 *
 * Usage: perf_routing [iterations]   (default 300 cached / 60 baseline)
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/moentwine.hh"

using namespace moentwine;

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** Iterations/second of a fresh engine on the given platform. */
double
engineThroughput(const Mapping &mapping, const EngineConfig &cfg,
                 int iterations)
{
    InferenceEngine engine(mapping, cfg);
    // Warm up: builds the route table, dispatch-source memo, and
    // steady-state scratch capacities outside the timed region.
    engine.step();
    engine.step();
    const auto start = Clock::now();
    double checksum = 0.0;
    for (int i = 0; i < iterations; ++i)
        checksum += engine.step().layerTime(cfg.pipelineStages);
    const double elapsed = secondsSince(start);
    if (checksum < 0.0)
        std::printf("impossible\n"); // keep the loop observable
    return static_cast<double>(iterations) / elapsed;
}

/** Average wall-clock nanoseconds of one route(src, dst) lookup. */
double
nsPerRouteLookup(const Topology &topo, int samples)
{
    const int devices = topo.numDevices();
    long hopsSum = 0;
    DeviceId a = 0;
    const auto start = Clock::now();
    for (int i = 0; i < samples; ++i) {
        const DeviceId b = (a * 31 + 17) % devices;
        hopsSum += static_cast<long>(topo.route(a, b).size());
        a = (a + 1) % devices;
    }
    const double elapsed = secondsSince(start);
    if (hopsSum < 0)
        std::printf("impossible\n");
    return elapsed * 1e9 / static_cast<double>(samples);
}

struct BenchResult
{
    std::string bench;
    double itersPerSec = 0.0;
    double nsPerRoute = 0.0;
    double baselineItersPerSec = 0.0;
    double baselineNsPerRoute = 0.0;

    double speedup() const
    {
        return baselineItersPerSec > 0.0
            ? itersPerSec / baselineItersPerSec
            : 0.0;
    }
};

/**
 * Run one platform in both modes. The topology is taken non-const so
 * the no-cache test hook can be toggled around the baseline run.
 */
BenchResult
runPlatform(const std::string &label, Topology &topo,
            const Mapping &mapping, EngineConfig cfg, int iters)
{
    BenchResult r;
    r.bench = label;

    // Cached + aggregated (production) configuration.
    topo.enableRouteCache();
    cfg.aggregateFlows = true;
    r.itersPerSec = engineThroughput(mapping, cfg, iters);
    r.nsPerRoute = nsPerRouteLookup(topo, 200000);

    // Baseline: per-query route derivation, per-triple flow lists.
    topo.disableRouteCache();
    cfg.aggregateFlows = false;
    const int baseIters = std::max(10, iters / 5);
    r.baselineItersPerSec = engineThroughput(mapping, cfg, baseIters);
    r.baselineNsPerRoute = nsPerRouteLookup(topo, 20000);
    topo.enableRouteCache();

    std::printf("%-24s cached %8.1f it/s | baseline %8.1f it/s | "
                "speedup %5.2fx | route %6.1f ns vs %8.1f ns\n",
                r.bench.c_str(), r.itersPerSec, r.baselineItersPerSec,
                r.speedup(), r.nsPerRoute, r.baselineNsPerRoute);
    return r;
}

std::string
toJson(const std::vector<BenchResult> &results)
{
    std::string out = "{\n  \"schema\": \"moentwine.bench.routing.v1\",\n"
                      "  \"results\": [\n";
    char buf[512];
    for (std::size_t i = 0; i < results.size(); ++i) {
        const BenchResult &r = results[i];
        std::snprintf(
            buf, sizeof(buf),
            "    {\"bench\": \"%s\", \"iters_per_sec\": %.1f, "
            "\"ns_per_route\": %.1f, \"baseline_iters_per_sec\": %.1f, "
            "\"baseline_ns_per_route\": %.1f, \"speedup\": %.2f}%s\n",
            r.bench.c_str(), r.itersPerSec, r.nsPerRoute,
            r.baselineItersPerSec, r.baselineNsPerRoute, r.speedup(),
            i + 1 < results.size() ? "," : "");
        out += buf;
    }
    out += "  ]\n}\n";
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    int iters = 300;
    if (argc > 1) {
        iters = std::atoi(argv[1]);
        if (iters <= 0) {
            std::fprintf(stderr,
                         "usage: perf_routing [iterations>0] (got '%s')\n",
                         argv[1]);
            return 2;
        }
    }

    // Fig. 16-style serving workload: decode iterations over a drifting
    // scenario mixture, which keeps gating (and therefore the flow set)
    // changing every iteration.
    EngineConfig cfg;
    cfg.model = qwen3();
    cfg.schedule = SchedulingMode::DecodeOnly;
    cfg.decodeTokensPerGroup = 128;
    cfg.workload.mode = GatingMode::MixedScenario;
    cfg.workload.mixPeriod = 60;
    cfg.balancer = BalancerKind::TopologyAware;
    cfg.alpha = 0.5;
    cfg.beta = 5;

    std::vector<BenchResult> results;

    {
        // Multi-wafer mesh (fig13d-style): two 8x8 wafers, HER-Mapping.
        MeshTopology mesh = MeshTopology::waferRow(2, 8);
        const HierarchicalErMapping her(mesh, ParallelismConfig{2, 4});
        results.push_back(
            runPlatform("wsc_2x(8x8)_her", mesh, her, cfg, iters));
    }
    {
        // Switch cluster (fig16 GPU baseline): 4-node DGX, TP=4.
        SwitchClusterTopology dgx = SwitchClusterTopology::dgx(4);
        const ClusterMapping cm(dgx, 4);
        results.push_back(
            runPlatform("dgx_4node_tp4", dgx, cm, cfg, iters));
    }

    const std::string json = toJson(results);
    std::printf("\n%s", json.c_str());

    if (std::FILE *f = std::fopen("BENCH_routing.json", "w")) {
        std::fputs(json.c_str(), f);
        std::fclose(f);
        std::printf("wrote BENCH_routing.json\n");
    } else {
        std::fprintf(stderr, "could not write BENCH_routing.json\n");
        return 1;
    }
    return 0;
}
