/**
 * @file
 * Simulator-performance benchmark of the route/traffic hot path: times
 * full engine iterations on a multi-wafer mesh and on a switch cluster,
 * with the route cache + flow aggregation enabled (the production
 * configuration) and disabled (the pre-optimisation baseline, kept
 * behind Topology::disableRouteCache() and EngineConfig::aggregateFlows).
 *
 * Emits a stable JSON trajectory to stdout and to BENCH_routing.json so
 * future PRs have a perf baseline to beat:
 *   {"bench": ..., "iters_per_sec": ..., "ns_per_route": ...}
 * plus, since the sweep subsystem landed, a serial-vs-parallel wall
 * clock of a fig16-style grid on the SweepRunner thread pool:
 *   "sweep": {"cells": ..., "jobs": ..., "speedup": ...}
 *
 * Usage: perf_routing [iterations] [--jobs N]
 *        (default 300 cached / 60 baseline; jobs default to
 *        MOENTWINE_JOBS, then hardware_concurrency)
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/moentwine.hh"
#include "fig16_grid.hh"
#include "sweep/sweep.hh"

using namespace moentwine;

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** Iterations/second of a fresh engine on the given platform. */
double
engineThroughput(const Mapping &mapping, const EngineConfig &cfg,
                 int iterations)
{
    InferenceEngine engine(mapping, cfg);
    // Warm up: builds the route table, dispatch-source memo, and
    // steady-state scratch capacities outside the timed region.
    engine.step();
    engine.step();
    const auto start = Clock::now();
    double checksum = 0.0;
    for (int i = 0; i < iterations; ++i)
        checksum += engine.step().layerTime(cfg.pipelineStages);
    const double elapsed = secondsSince(start);
    if (checksum < 0.0)
        std::printf("impossible\n"); // keep the loop observable
    return static_cast<double>(iterations) / elapsed;
}

/** Average wall-clock nanoseconds of one route(src, dst) lookup. */
double
nsPerRouteLookup(const Topology &topo, int samples)
{
    const int devices = topo.numDevices();
    long hopsSum = 0;
    DeviceId a = 0;
    const auto start = Clock::now();
    for (int i = 0; i < samples; ++i) {
        const DeviceId b = (a * 31 + 17) % devices;
        hopsSum += static_cast<long>(topo.route(a, b).size());
        a = (a + 1) % devices;
    }
    const double elapsed = secondsSince(start);
    if (hopsSum < 0)
        std::printf("impossible\n");
    return elapsed * 1e9 / static_cast<double>(samples);
}

struct BenchResult
{
    std::string bench;
    double itersPerSec = 0.0;
    double nsPerRoute = 0.0;
    double baselineItersPerSec = 0.0;
    double baselineNsPerRoute = 0.0;

    double speedup() const
    {
        return baselineItersPerSec > 0.0
            ? itersPerSec / baselineItersPerSec
            : 0.0;
    }
};

/**
 * Run one platform in both modes. The topology is taken non-const so
 * the no-cache test hook can be toggled around the baseline run.
 */
BenchResult
runPlatform(const std::string &label, Topology &topo,
            const Mapping &mapping, EngineConfig cfg, int iters)
{
    BenchResult r;
    r.bench = label;

    // Cached + aggregated (production) configuration.
    topo.enableRouteCache();
    cfg.aggregateFlows = true;
    r.itersPerSec = engineThroughput(mapping, cfg, iters);
    r.nsPerRoute = nsPerRouteLookup(topo, 200000);

    // Baseline: per-query route derivation, per-triple flow lists.
    topo.disableRouteCache();
    cfg.aggregateFlows = false;
    const int baseIters = std::max(10, iters / 5);
    r.baselineItersPerSec = engineThroughput(mapping, cfg, baseIters);
    r.baselineNsPerRoute = nsPerRouteLookup(topo, 20000);
    topo.enableRouteCache();

    std::printf("%-24s cached %8.1f it/s | baseline %8.1f it/s | "
                "speedup %5.2fx | route %6.1f ns vs %8.1f ns\n",
                r.bench.c_str(), r.itersPerSec, r.baselineItersPerSec,
                r.speedup(), r.nsPerRoute, r.baselineNsPerRoute);
    return r;
}

/** Wall-clock of one SweepRunner pass over a fig16-style grid. */
struct SweepBenchResult
{
    std::string bench;
    std::size_t cells = 0;
    int jobs = 1;
    double serialSeconds = 0.0;
    double parallelSeconds = 0.0;
    bool rowsIdentical = false;

    double speedup() const
    {
        return parallelSeconds > 0.0 ? serialSeconds / parallelSeconds
                                     : 0.0;
    }
};

/** Exact row equality (labels, keys, bitwise metric values). */
bool
rowsEqual(const std::vector<SweepResult> &a,
          const std::vector<SweepResult> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].index != b[i].index || a[i].label != b[i].label ||
            a[i].metrics != b[i].metrics)
            return false;
    }
    return true;
}

/**
 * Time the fig16-style balancing grid serially and on the thread
 * pool. The grid is embarrassingly parallel (one engine per cell), so
 * on a multi-core runner the pool's wall-clock approaches
 * serial/jobs; rows must come back byte-identical either way.
 */
SweepBenchResult
runSweepBench(int jobs)
{
    // Time exactly the grid fig16_balancing runs (bench/fig16_grid.cc
    // is shared with the driver, so this trajectory cannot drift from
    // the figure it claims to measure).
    const SweepGrid grid = benchgrid::fig16BalancingGrid();

    const SweepRunner::CellFn cell = [](const SweepCell &c) {
        const EngineConfig ec = benchgrid::fig16EngineConfig(c.point);
        InferenceEngine engine(c.system->mapping(), ec);
        double layer = 0.0;
        for (const auto &s : engine.run(benchgrid::kFig16Iterations))
            layer += s.layerTime(ec.pipelineStages);
        SweepResult row;
        row.label = "cell" + std::to_string(c.point.index);
        row.add("layer_sum_s", layer);
        return row;
    };

    SweepBenchResult r;
    r.bench = "sweep_fig16_wsc_er_16dev";
    r.cells = grid.cells();
    r.jobs = jobs;

    const SweepRunner serial(1);
    auto start = Clock::now();
    const auto serialRows = serial.run(grid, cell);
    r.serialSeconds = secondsSince(start);

    const SweepRunner parallel(jobs);
    start = Clock::now();
    const auto parallelRows = parallel.run(grid, cell);
    r.parallelSeconds = secondsSince(start);

    r.rowsIdentical = rowsEqual(serialRows, parallelRows);

    std::printf("%-24s serial %6.2f s | parallel(%d) %6.2f s | "
                "speedup %5.2fx | rows %s\n",
                r.bench.c_str(), r.serialSeconds, r.jobs,
                r.parallelSeconds, r.speedup(),
                r.rowsIdentical ? "identical" : "DIVERGED");
    return r;
}

std::string
toJson(const std::vector<BenchResult> &results,
       const SweepBenchResult &sweep)
{
    std::string out = "{\n  \"schema\": \"moentwine.bench.routing.v2\",\n"
                      "  \"results\": [\n";
    char buf[512];
    for (std::size_t i = 0; i < results.size(); ++i) {
        const BenchResult &r = results[i];
        std::snprintf(
            buf, sizeof(buf),
            "    {\"bench\": \"%s\", \"iters_per_sec\": %.1f, "
            "\"ns_per_route\": %.1f, \"baseline_iters_per_sec\": %.1f, "
            "\"baseline_ns_per_route\": %.1f, \"speedup\": %.2f}%s\n",
            r.bench.c_str(), r.itersPerSec, r.nsPerRoute,
            r.baselineItersPerSec, r.baselineNsPerRoute, r.speedup(),
            i + 1 < results.size() ? "," : "");
        out += buf;
    }
    out += "  ],\n";
    std::snprintf(
        buf, sizeof(buf),
        "  \"sweep\": {\"bench\": \"%s\", \"cells\": %zu, "
        "\"jobs\": %d, \"serial_seconds\": %.3f, "
        "\"parallel_seconds\": %.3f, \"speedup\": %.2f, "
        "\"rows_identical\": %s}\n",
        sweep.bench.c_str(), sweep.cells, sweep.jobs,
        sweep.serialSeconds, sweep.parallelSeconds, sweep.speedup(),
        sweep.rowsIdentical ? "true" : "false");
    out += buf;
    out += "}\n";
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    int iters = 300;
    for (int i = 1; i < argc; ++i) {
        // Flags (--jobs and any future spelling) belong to
        // SweepRunner::jobsFromArgs below; only bare values are the
        // iteration count.
        if (std::strncmp(argv[i], "--", 2) == 0) {
            if (std::strcmp(argv[i], "--jobs") == 0)
                ++i; // skip the flag's value too
            continue;
        }
        iters = std::atoi(argv[i]);
        if (iters <= 0) {
            std::fprintf(stderr,
                         "usage: perf_routing [iterations>0] [--jobs N] "
                         "(got '%s')\n",
                         argv[i]);
            return 2;
        }
    }
    const int jobs = SweepRunner::resolveJobs(
        SweepRunner::jobsFromArgs(argc, argv));

    // Fig. 16-style serving workload: decode iterations over a drifting
    // scenario mixture, which keeps gating (and therefore the flow set)
    // changing every iteration.
    EngineConfig cfg;
    cfg.model = qwen3();
    cfg.schedule = SchedulingMode::DecodeOnly;
    cfg.decodeTokensPerGroup = 128;
    cfg.workload.mode = GatingMode::MixedScenario;
    cfg.workload.mixPeriod = 60;
    cfg.balancer = BalancerKind::TopologyAware;
    cfg.alpha = 0.5;
    cfg.beta = 5;

    std::vector<BenchResult> results;

    {
        // Multi-wafer mesh (fig13d-style): two 8x8 wafers, HER-Mapping.
        MeshTopology mesh = MeshTopology::waferRow(2, 8);
        const HierarchicalErMapping her(mesh, ParallelismConfig{2, 4});
        results.push_back(
            runPlatform("wsc_2x(8x8)_her", mesh, her, cfg, iters));
    }
    {
        // Switch cluster (fig16 GPU baseline): 4-node DGX, TP=4.
        SwitchClusterTopology dgx = SwitchClusterTopology::dgx(4);
        const ClusterMapping cm(dgx, 4);
        results.push_back(
            runPlatform("dgx_4node_tp4", dgx, cm, cfg, iters));
    }

    // Parallel-sweep trajectory: serial vs thread-pooled wall-clock of
    // a fig16-style grid (the workload every converted fig driver now
    // runs through SweepRunner).
    const SweepBenchResult sweep = runSweepBench(jobs);

    const std::string json = toJson(results, sweep);
    std::printf("\n%s", json.c_str());

    if (std::FILE *f = std::fopen("BENCH_routing.json", "w")) {
        std::fputs(json.c_str(), f);
        std::fclose(f);
        std::printf("wrote BENCH_routing.json\n");
    } else {
        std::fprintf(stderr, "could not write BENCH_routing.json\n");
        return 1;
    }
    return 0;
}
