/**
 * @file
 * Fig. 13(b): per-model communication latency of a 4-node DGX, a 6×6
 * WSC under the baseline mapping, and the same wafer under ER-Mapping
 * (256 tokens per group, balanced gating).
 *
 * Expected shape: WSC beats DGX on every model (~50%+); ER-Mapping
 * adds a further win that grows with the number of activated experts,
 * and may lose on Mixtral (2 activated experts, all-reduce-heavy).
 */

#include <cstdio>

#include "core/moentwine.hh"

using namespace moentwine;

int
main()
{
    std::printf("== Fig. 13(b): communication latency across models "
                "==\n\n");
    const int tokens = 256;

    SystemConfig dgxCfg;
    dgxCfg.platform = PlatformKind::DgxCluster;
    dgxCfg.dgxNodes = 4;
    dgxCfg.tp = 4;
    const System dgx = System::make(dgxCfg);

    SystemConfig wscCfg;
    wscCfg.platform = PlatformKind::WscBaseline;
    wscCfg.meshN = 6;
    wscCfg.tp = 4;
    const System wsc = System::make(wscCfg);

    SystemConfig erCfg = wscCfg;
    erCfg.platform = PlatformKind::WscEr;
    const System er = System::make(erCfg);

    Table t({"model", "GPU AR", "GPU A2A", "WSC AR", "WSC A2A",
             "ER AR", "ER A2A", "WSC vs GPU", "ER vs WSC"});
    for (const auto &model : allModels()) {
        const auto g =
            evaluateCommunication(dgx.mapping(), model, tokens, true);
        const auto w =
            evaluateCommunication(wsc.mapping(), model, tokens, true);
        const auto e =
            evaluateCommunication(er.mapping(), model, tokens, true);
        t.addRow({model.name, Table::num(g.allReduce * 1e6, 1),
                  Table::num(g.allToAll() * 1e6, 1),
                  Table::num(w.allReduce * 1e6, 1),
                  Table::num(w.allToAll() * 1e6, 1),
                  Table::num(e.allReduce * 1e6, 1),
                  Table::num(e.allToAll() * 1e6, 1),
                  Table::pct(1.0 - w.total() / g.total()),
                  Table::pct(1.0 - e.total() / w.total())});
    }
    std::printf("%s", t.render().c_str());
    std::printf("\n(latencies in us per sparse layer)\n");
    return 0;
}
