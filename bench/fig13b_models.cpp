/**
 * @file
 * Fig. 13(b): per-model communication latency of a 4-node DGX, a 6×6
 * WSC under the baseline mapping, and the same wafer under ER-Mapping
 * (256 tokens per group, balanced gating).
 *
 * Expected shape: WSC beats DGX on every model (~50%+); ER-Mapping
 * adds a further win that grows with the number of activated experts,
 * and may lose on Mixtral (2 activated experts, all-reduce-heavy).
 *
 * Runs on the SweepRunner model × platform grid (`--jobs N`); the
 * three systems are built once and shared read-only across workers.
 */

#include <cstdio>

#include "core/moentwine.hh"
#include "sweep/sweep.hh"
#include "jobs.hh"
#include "sweep_output.hh"

using namespace moentwine;

int
main(int argc, char **argv)
{
    std::printf("== Fig. 13(b): communication latency across models "
                "==\n\n");
    const int tokens = 256;

    SweepGrid grid;
    grid.models = allModels();
    {
        SystemConfig sc;
        sc.platform = PlatformKind::DgxCluster;
        sc.dgxNodes = 4;
        sc.tp = 4;
        grid.systems.push_back(sc); // 0: GPU baseline
        sc.platform = PlatformKind::WscBaseline;
        sc.meshN = 6;
        grid.systems.push_back(sc); // 1: WSC baseline mapping
        sc.platform = PlatformKind::WscEr;
        grid.systems.push_back(sc); // 2: WSC ER-Mapping
    }

    const SweepRunner runner = benchjobs::makeRunner(argc, argv);
    const auto rows = runner.run(grid, [&](const SweepCell &cell) {
        const MoEModelConfig &model = cell.point.modelConfig();
        const auto comm = evaluateCommunication(
            cell.system->mapping(), model, tokens, true);

        SweepResult row;
        row.label = model.name + " | " + cell.system->name();
        row.add("ar_us", comm.allReduce * 1e6);
        row.add("dispatch_us", comm.dispatch * 1e6);
        row.add("combine_us", comm.combine * 1e6);
        row.add("total_us", comm.total() * 1e6);
        return row;
    });

    Table t({"model", "GPU AR", "GPU A2A", "WSC AR", "WSC A2A",
             "ER AR", "ER A2A", "WSC vs GPU", "ER vs WSC"});
    for (std::size_t m = 0; m < grid.models.size(); ++m) {
        const SweepResult &g = rows[grid.at(static_cast<int>(m), 0)];
        const SweepResult &w = rows[grid.at(static_cast<int>(m), 1)];
        const SweepResult &e = rows[grid.at(static_cast<int>(m), 2)];
        const auto a2aOf = [](const SweepResult &r) {
            return r.metric("dispatch_us") + r.metric("combine_us");
        };
        t.addRow({grid.models[m].name, Table::num(g.metric("ar_us"), 1),
                  Table::num(a2aOf(g), 1),
                  Table::num(w.metric("ar_us"), 1),
                  Table::num(a2aOf(w), 1),
                  Table::num(e.metric("ar_us"), 1),
                  Table::num(a2aOf(e), 1),
                  Table::pct(1.0 -
                             w.metric("total_us") / g.metric("total_us")),
                  Table::pct(1.0 - e.metric("total_us") /
                                 w.metric("total_us"))});
    }
    std::printf("%s", t.render().c_str());
    std::printf("\n(latencies in us per sparse layer)\n");
    benchout::writeSweepFiles("fig13b_models", rows);
    return 0;
}
