/**
 * @file
 * Fig. 12: expert (device) load-ratio traces of Qwen3 with EP=8
 * across the Chat, Coding, Math, and Privacy scenarios over 2000
 * iterations.
 *
 * Expected shape: per-device load ratios fluctuate during a short
 * warm-up, then stabilise within each fixed scenario; the stable
 * ratios differ between scenarios, and peak device load runs well
 * above the average (the paper reports up to 2.9×).
 */

#include <cstdio>

#include "core/moentwine.hh"

using namespace moentwine;

namespace {

void
trace(ScenarioKind scenario)
{
    constexpr int devices = 8;
    constexpr int iters = 2000;
    constexpr int window = 200;

    WorkloadConfig wc;
    wc.numExperts = qwen3().expertsTotal;
    wc.topK = qwen3().expertsActivated;
    wc.mode = GatingMode::SingleScenario;
    wc.scenario = scenario;
    WorkloadGenerator gen(wc);
    const ExpertPlacement placement(wc.numExperts, devices, 0);

    // EMA device-load ratios sampled over the run.
    std::vector<double> ema(devices, 0.0);
    Summary earlyDrift; // mean |Δratio| in the first window
    Summary lateDrift;  // ... and in the last window
    Summary peakRatio;
    for (int it = 0; it < iters; ++it) {
        const auto counts = gen.sampleCounts(it, 0, 256, 1);
        const auto loads =
            WorkloadGenerator::expertLoads(counts, wc.numExperts);
        const auto heats = placement.deviceHeats(loads);
        const double mean = meanOf(heats);
        double drift = 0.0;
        for (int d = 0; d < devices; ++d) {
            const double ratio = heats[std::size_t(d)] / mean;
            drift += std::abs(ratio - ema[std::size_t(d)]);
            ema[std::size_t(d)] =
                0.1 * ratio + 0.9 * ema[std::size_t(d)];
        }
        if (it > 10 && it < window)
            earlyDrift.add(drift / devices);
        if (it >= iters - window)
            lateDrift.add(drift / devices);
        peakRatio.add(maxOf(heats) / mean);
    }

    std::printf("-- %s --\n", scenarioName(scenario).c_str());
    std::printf("  stable device load ratios (device0..7): ");
    for (int d = 0; d < devices; ++d)
        std::printf("%.2f ", ema[std::size_t(d)]);
    std::printf("\n  peak/avg load: mean %.2fx, max %.2fx\n",
                peakRatio.mean(), peakRatio.max());
    std::printf("  ratio drift per iter: warm-up %.4f -> stable %.4f"
                " (%s)\n\n",
                earlyDrift.mean(), lateDrift.mean(),
                lateDrift.mean() < earlyDrift.mean() ? "stabilised"
                                                     : "UNSTABLE");
}

} // namespace

int
main()
{
    std::printf("== Fig. 12: expert load traces, Qwen3 EP=8 ==\n\n");
    for (const ScenarioKind s : allScenarios())
        trace(s);
    return 0;
}
