/**
 * @file
 * Fig. 12: expert (device) load-ratio traces of Qwen3 with EP=8
 * across the Chat, Coding, Math, and Privacy scenarios over 2000
 * iterations.
 *
 * Expected shape: per-device load ratios fluctuate during a short
 * warm-up, then stabilise within each fixed scenario; the stable
 * ratios differ between scenarios, and peak device load runs well
 * above the average (the paper reports up to 2.9×).
 *
 * Runs one scenario per SweepRunner cell (`--jobs N`).
 */

#include <cstdio>

#include "core/moentwine.hh"
#include "sweep/sweep.hh"
#include "jobs.hh"
#include "sweep_output.hh"

using namespace moentwine;

namespace {

constexpr int kDevices = 8;
constexpr int kIters = 2000;
constexpr int kWindow = 200;

SweepResult
trace(ScenarioKind scenario)
{
    WorkloadConfig wc;
    wc.numExperts = qwen3().expertsTotal;
    wc.topK = qwen3().expertsActivated;
    wc.mode = GatingMode::SingleScenario;
    wc.scenario = scenario;
    WorkloadGenerator gen(wc);
    const ExpertPlacement placement(wc.numExperts, kDevices, 0);

    // EMA device-load ratios sampled over the run.
    std::vector<double> ema(kDevices, 0.0);
    Summary earlyDrift; // mean |Δratio| in the first window
    Summary lateDrift;  // ... and in the last window
    Summary peakRatio;
    for (int it = 0; it < kIters; ++it) {
        const auto counts = gen.sampleCounts(it, 0, 256, 1);
        const auto loads =
            WorkloadGenerator::expertLoads(counts, wc.numExperts);
        const auto heats = placement.deviceHeats(loads);
        const double mean = meanOf(heats);
        double drift = 0.0;
        for (int d = 0; d < kDevices; ++d) {
            const double ratio = heats[std::size_t(d)] / mean;
            drift += std::abs(ratio - ema[std::size_t(d)]);
            ema[std::size_t(d)] =
                0.1 * ratio + 0.9 * ema[std::size_t(d)];
        }
        if (it > 10 && it < kWindow)
            earlyDrift.add(drift / kDevices);
        if (it >= kIters - kWindow)
            lateDrift.add(drift / kDevices);
        peakRatio.add(maxOf(heats) / mean);
    }

    SweepResult row;
    row.label = scenarioName(scenario);
    for (int d = 0; d < kDevices; ++d)
        row.add("ratio_d" + std::to_string(d), ema[std::size_t(d)]);
    row.add("peak_mean", peakRatio.mean());
    row.add("peak_max", peakRatio.max());
    row.add("warmup_drift", earlyDrift.mean());
    row.add("stable_drift", lateDrift.mean());
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("== Fig. 12: expert load traces, Qwen3 EP=8 ==\n\n");

    SweepGrid grid;
    for (std::size_t s = 0; s < allScenarios().size(); ++s)
        grid.params.push_back(static_cast<double>(s));

    const SweepRunner runner = benchjobs::makeRunner(argc, argv);
    const auto rows = runner.run(grid, [](const SweepCell &cell) {
        return trace(allScenarios()[static_cast<std::size_t>(
            cell.point.parameter())]);
    });

    for (const SweepResult &r : rows) {
        std::printf("-- %s --\n", r.label.c_str());
        std::printf("  stable device load ratios (device0..7): ");
        for (int d = 0; d < kDevices; ++d)
            std::printf("%.2f ",
                        r.metric("ratio_d" + std::to_string(d)));
        std::printf("\n  peak/avg load: mean %.2fx, max %.2fx\n",
                    r.metric("peak_mean"), r.metric("peak_max"));
        std::printf("  ratio drift per iter: warm-up %.4f -> stable "
                    "%.4f (%s)\n\n",
                    r.metric("warmup_drift"), r.metric("stable_drift"),
                    r.metric("stable_drift") < r.metric("warmup_drift")
                        ? "stabilised"
                        : "UNSTABLE");
    }
    benchout::writeSweepFiles("fig12_load_traces", rows);
    return 0;
}
