/**
 * @file
 * Fig. 13(d): Hierarchical ER-Mapping on multi-WSC systems — the
 * baseline mapping, flat ER-Mapping, and HER-Mapping compared across
 * 4×(4×4), 4×(6×6), and 4×(8×8) systems and TP degrees (Qwen3).
 *
 * Expected shape: flat ER gains vary (entwined rings spanning wafers
 * get expensive), while HER improves consistently in every case, up to
 * ~60%+.
 */

#include <cstdio>

#include "core/moentwine.hh"

using namespace moentwine;

namespace {

void
sweep(int meshN, const std::vector<int> &tps)
{
    const MoEModelConfig model = qwen3();
    Table t({"TP", "baseline total", "ER total", "HER total",
             "HER AR", "HER A2A", "ER vs base", "HER vs base"});
    for (const int tp : tps) {
        SystemConfig sc;
        sc.meshN = meshN;
        sc.wafers = 4;
        sc.tp = tp;
        sc.platform = PlatformKind::WscBaseline;
        const System base = System::make(sc);
        sc.platform = PlatformKind::WscEr;
        const System er = System::make(sc);
        sc.platform = PlatformKind::WscHer;
        const System her = System::make(sc);
        const auto rb =
            evaluateCommunication(base.mapping(), model, 256, true);
        const auto re =
            evaluateCommunication(er.mapping(), model, 256, true);
        const auto rh =
            evaluateCommunication(her.mapping(), model, 256, true);
        t.addRow({std::to_string(tp),
                  Table::num(rb.total() * 1e6, 1),
                  Table::num(re.total() * 1e6, 1),
                  Table::num(rh.total() * 1e6, 1),
                  Table::num(rh.allReduce * 1e6, 1),
                  Table::num(rh.allToAll() * 1e6, 1),
                  Table::pct(1.0 - re.total() / rb.total()),
                  Table::pct(1.0 - rh.total() / rb.total())});
    }
    std::printf("-- 4x(%dx%d) WSC --\n%s\n", meshN, meshN,
                t.render().c_str());
}

} // namespace

int
main()
{
    std::printf("== Fig. 13(d): multi-wafer systems and HER-Mapping "
                "(Qwen3) ==\n\n");
    sweep(4, {4, 8, 16});
    sweep(6, {4, 6, 36});
    sweep(8, {4, 8, 16, 32});
    return 0;
}
