/**
 * @file
 * Fig. 13(d): Hierarchical ER-Mapping on multi-WSC systems — the
 * baseline mapping, flat ER-Mapping, and HER-Mapping compared across
 * 4×(4×4), 4×(6×6), and 4×(8×8) systems and TP degrees (Qwen3).
 *
 * Expected shape: flat ER gains vary (entwined rings spanning wafers
 * get expensive), while HER improves consistently in every case, up to
 * ~60%+.
 *
 * Runs on the SweepRunner system grid (`--jobs N`): one system per
 * (scale, TP, mapping) case, built in parallel across workers.
 */

#include <cstdio>
#include <vector>

#include "core/moentwine.hh"
#include "sweep/sweep.hh"
#include "jobs.hh"
#include "sweep_output.hh"

using namespace moentwine;

namespace {

struct ScaleCase
{
    int meshN;
    std::vector<int> tps;
};

const std::vector<ScaleCase> &
scaleCases()
{
    static const std::vector<ScaleCase> kCases = {
        {4, {4, 8, 16}},
        {6, {4, 6, 36}},
        {8, {4, 8, 16, 32}},
    };
    return kCases;
}

constexpr PlatformKind kMappings[] = {PlatformKind::WscBaseline,
                                      PlatformKind::WscEr,
                                      PlatformKind::WscHer};

} // namespace

int
main(int argc, char **argv)
{
    std::printf("== Fig. 13(d): multi-wafer systems and HER-Mapping "
                "(Qwen3) ==\n\n");

    // Systems axis: (baseline, ER, HER) triples, scale-major then TP.
    SweepGrid grid;
    for (const ScaleCase &c : scaleCases()) {
        for (const int tp : c.tps) {
            for (const PlatformKind mapping : kMappings) {
                SystemConfig sc;
                sc.meshN = c.meshN;
                sc.wafers = 4;
                sc.tp = tp;
                sc.platform = mapping;
                grid.systems.push_back(sc);
            }
        }
    }

    const SweepRunner runner = benchjobs::makeRunner(argc, argv);
    const auto rows = runner.run(grid, [](const SweepCell &cell) {
        const auto r = evaluateCommunication(cell.system->mapping(),
                                             qwen3(), 256, true);
        SweepResult row;
        row.label = cell.system->name() + " TP=" +
            std::to_string(cell.system->config().tp);
        row.add("ar_us", r.allReduce * 1e6);
        row.add("a2a_us", r.allToAll() * 1e6);
        row.add("total_us", r.total() * 1e6);
        return row;
    });

    std::size_t s = 0;
    for (const ScaleCase &c : scaleCases()) {
        Table t({"TP", "baseline total", "ER total", "HER total",
                 "HER AR", "HER A2A", "ER vs base", "HER vs base"});
        for (const int tp : c.tps) {
            const SweepResult &rb =
                rows[grid.at(-1, static_cast<int>(s++))];
            const SweepResult &re =
                rows[grid.at(-1, static_cast<int>(s++))];
            const SweepResult &rh =
                rows[grid.at(-1, static_cast<int>(s++))];
            t.addRow({std::to_string(tp),
                      Table::num(rb.metric("total_us"), 1),
                      Table::num(re.metric("total_us"), 1),
                      Table::num(rh.metric("total_us"), 1),
                      Table::num(rh.metric("ar_us"), 1),
                      Table::num(rh.metric("a2a_us"), 1),
                      Table::pct(1.0 - re.metric("total_us") /
                                     rb.metric("total_us")),
                      Table::pct(1.0 - rh.metric("total_us") /
                                     rb.metric("total_us"))});
        }
        std::printf("-- 4x(%dx%d) WSC --\n%s\n", c.meshN, c.meshN,
                    t.render().c_str());
    }
    benchout::writeSweepFiles("fig13d_multiwafer", rows);
    return 0;
}
