/**
 * @file
 * Fig. 11: traffic heatmaps of the attention all-reduce and the MoE
 * all-to-all under ER-Mapping, demonstrating the complementary
 * distribution of hot and cold links that NI-Balancer schedules hidden
 * migrations into:
 *   - during all-reduce, intra-FTD links are cold (hot links confined
 *     to ring-intersection / FTD-connection areas);
 *   - during all-to-all, traffic is confined within FTDs and every
 *     inter-FTD link is cold.
 *
 * Cases match Fig. 11(c): a 4×4 wafer with DP=8/TP=2 and a 6×6 wafer
 * with DP=9/TP=4, plus the canonical 4×4 DP=4/TP=4.
 *
 * The complementarity metrics run on the SweepRunner case grid
 * (`--jobs N`); the ASCII heatmaps render serially afterwards.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/moentwine.hh"
#include "sweep/sweep.hh"
#include "jobs.hh"
#include "sweep_output.hh"

using namespace moentwine;

namespace {

struct Case
{
    int meshN;
    int tp;
};

constexpr Case kCases[] = {
    {4, 4}, // canonical Fig. 11(a)/(b) case
    {4, 2}, // Fig. 11(c), 4x4 DP=8 TP=2
    {6, 4}, // Fig. 11(c), 6x6 DP=9 TP=4
};

/** Rendered AR/A2A heatmaps of one case (filled by the cell worker). */
struct Heatmaps
{
    std::string ar;
    std::string a2a;
};

/** Inter-FTD volume share (%) of each phase of one case; renders the
 *  case's heatmaps into @p maps as a side effect. */
SweepResult
complementarity(const Case &c, Heatmaps &maps)
{
    const MeshTopology mesh = MeshTopology::singleWafer(c.meshN);
    const auto par = decomposeTp(c.tp, c.meshN, c.meshN);
    const ErMapping er(mesh, par);
    const auto comm = evaluateCommunication(er, deepseekV3(), 256, true);
    maps.ar = comm.arTraffic.heatmapAscii(mesh);
    maps.a2a = comm.a2aTraffic.heatmapAscii(mesh);

    double arIntra = 0.0;
    double arInter = 0.0;
    double a2aIntra = 0.0;
    double a2aInter = 0.0;
    for (std::size_t l = 0; l < mesh.links().size(); ++l) {
        const Link &link = mesh.links()[l];
        const bool inter = er.ftdOf(link.src) != er.ftdOf(link.dst);
        const auto id = static_cast<LinkId>(l);
        (inter ? arInter : arIntra) += comm.arTraffic.linkVolume(id);
        (inter ? a2aInter : a2aIntra) += comm.a2aTraffic.linkVolume(id);
    }

    SweepResult row;
    row.label = std::to_string(c.meshN) + "x" +
        std::to_string(c.meshN) + " " + par.label() + " DP=" +
        std::to_string(er.dp());
    row.add("mesh_n", c.meshN);
    row.add("tp", c.tp);
    row.add("ar_inter_pct", 100.0 * arInter / (arInter + arIntra));
    row.add("a2a_inter_pct",
            100.0 * a2aInter / (a2aInter + a2aIntra + 1e-30));
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("== Fig. 11: complementary hot/cold link distribution "
                "under ER-Mapping ==\n\n");

    SweepGrid grid;
    grid.params = {0, 1, 2}; // case index

    // Each cell renders its heatmaps into its own slot; the serial
    // print loop below reads them without recomputing anything.
    std::vector<Heatmaps> maps(grid.cells());
    const SweepRunner runner = benchjobs::makeRunner(argc, argv);
    const auto rows = runner.run(grid, [&maps](const SweepCell &cell) {
        return complementarity(
            kCases[static_cast<int>(cell.point.parameter())],
            maps[cell.point.index]);
    });

    for (std::size_t i = 0; i < rows.size(); ++i) {
        std::printf("-- %s --\n", rows[i].label.c_str());
        std::printf("all-reduce traffic (hot = FTD connections):\n%s\n",
                    maps[i].ar.c_str());
        std::printf("all-to-all traffic (confined within FTDs):\n%s\n",
                    maps[i].a2a.c_str());
        std::printf("all-reduce volume:  %5.1f%% on inter-FTD links\n",
                    rows[i].metric("ar_inter_pct"));
        std::printf("all-to-all volume:  %5.1f%% on inter-FTD links "
                    "(complementary)\n\n",
                    rows[i].metric("a2a_inter_pct"));
    }
    benchout::writeSweepFiles("fig11_heatmaps", rows);
    return 0;
}
