/**
 * @file
 * Fig. 11: traffic heatmaps of the attention all-reduce and the MoE
 * all-to-all under ER-Mapping, demonstrating the complementary
 * distribution of hot and cold links that NI-Balancer schedules hidden
 * migrations into:
 *   - during all-reduce, intra-FTD links are cold (hot links confined
 *     to ring-intersection / FTD-connection areas);
 *   - during all-to-all, traffic is confined within FTDs and every
 *     inter-FTD link is cold.
 *
 * Cases match Fig. 11(c): a 4×4 wafer with DP=8/TP=2 and a 6×6 wafer
 * with DP=9/TP=4, plus the canonical 4×4 DP=4/TP=4.
 */

#include <cstdio>

#include "core/moentwine.hh"

using namespace moentwine;

namespace {

void
heatmaps(int meshN, int tp)
{
    const MeshTopology mesh = MeshTopology::singleWafer(meshN);
    const auto par = decomposeTp(tp, meshN, meshN);
    const ErMapping er(mesh, par);
    std::printf("-- %dx%d WSC, %s (DP=%d) --\n", meshN, meshN,
                par.label().c_str(), er.dp());

    const auto comm = evaluateCommunication(er, deepseekV3(), 256, true);

    std::printf("all-reduce traffic (hot = FTD connections):\n%s\n",
                comm.arTraffic.heatmapAscii(mesh).c_str());
    std::printf("all-to-all traffic (confined within FTDs):\n%s\n",
                comm.a2aTraffic.heatmapAscii(mesh).c_str());

    // Quantify complementarity: volume share of inter-FTD links in
    // each phase.
    double arIntra = 0.0;
    double arInter = 0.0;
    double a2aIntra = 0.0;
    double a2aInter = 0.0;
    for (std::size_t l = 0; l < mesh.links().size(); ++l) {
        const Link &link = mesh.links()[l];
        const bool inter = er.ftdOf(link.src) != er.ftdOf(link.dst);
        const auto id = static_cast<LinkId>(l);
        (inter ? arInter : arIntra) += comm.arTraffic.linkVolume(id);
        (inter ? a2aInter : a2aIntra) += comm.a2aTraffic.linkVolume(id);
    }
    std::printf("all-reduce volume:  %5.1f%% on inter-FTD links\n",
                100.0 * arInter / (arInter + arIntra));
    std::printf("all-to-all volume:  %5.1f%% on inter-FTD links "
                "(complementary)\n\n",
                100.0 * a2aInter / (a2aInter + a2aIntra + 1e-30));
}

} // namespace

int
main()
{
    std::printf("== Fig. 11: complementary hot/cold link distribution "
                "under ER-Mapping ==\n\n");
    heatmaps(4, 4); // canonical Fig. 11(a)/(b) case
    heatmaps(4, 2); // Fig. 11(c), 4x4 DP=8 TP=2
    heatmaps(6, 4); // Fig. 11(c), 6x6 DP=9 TP=4
    return 0;
}
