/**
 * @file
 * Shared worker-count resolution for the bench drivers.
 *
 * Every driver honours the same convention:
 *   `--jobs N` argument (last occurrence wins) > `MOENTWINE_JOBS` env
 *   > hardware_concurrency()
 * and the same affinity chain:
 *   `--affinity` flag > `MOENTWINE_AFFINITY` env ("1"/"0") > off
 * These helpers are the one place those conventions are spelled, so a
 * driver's main() reduces to `benchjobs::makeRunner(argc, argv)` (or
 * `benchjobs::resolve(argc, argv)` when it needs the bare count).
 */

#ifndef MOENTWINE_BENCH_JOBS_HH
#define MOENTWINE_BENCH_JOBS_HH

#include "sweep/sweep_runner.hh"

namespace moentwine {
namespace benchjobs {

/** Resolved worker count for a driver's command line. */
inline int
resolve(int argc, char **argv)
{
    return SweepRunner::resolveJobs(
        SweepRunner::jobsFromArgs(argc, argv));
}

/** The SweepOptions a driver's command line asks for: jobs and
 *  affinity resolved, everything else at production defaults
 *  (stealing + per-worker engine reuse on). */
inline SweepOptions
optionsFromArgs(int argc, char **argv)
{
    SweepOptions opts;
    opts.jobs = SweepRunner::jobsFromArgs(argc, argv);
    opts.affinity = SweepRunner::affinityFromArgs(argc, argv);
    return opts;
}

/** A SweepRunner configured by optionsFromArgs() for a driver's
 *  command line. */
inline SweepRunner
makeRunner(int argc, char **argv)
{
    return SweepRunner(optionsFromArgs(argc, argv));
}

} // namespace benchjobs
} // namespace moentwine

#endif // MOENTWINE_BENCH_JOBS_HH
