/**
 * @file
 * Shared worker-count resolution for the bench drivers.
 *
 * Every driver honours the same convention:
 *   `--jobs N` argument > `MOENTWINE_JOBS` env > hardware_concurrency()
 * These helpers are the one place that convention is spelled, so a
 * driver's main() reduces to `benchjobs::makeRunner(argc, argv)` (or
 * `benchjobs::resolve(argc, argv)` when it needs the bare count).
 */

#ifndef MOENTWINE_BENCH_JOBS_HH
#define MOENTWINE_BENCH_JOBS_HH

#include "sweep/sweep_runner.hh"

namespace moentwine {
namespace benchjobs {

/** Resolved worker count for a driver's command line. */
inline int
resolve(int argc, char **argv)
{
    return SweepRunner::resolveJobs(
        SweepRunner::jobsFromArgs(argc, argv));
}

/** A SweepRunner sized by resolve() for a driver's command line. */
inline SweepRunner
makeRunner(int argc, char **argv)
{
    return SweepRunner(SweepRunner::jobsFromArgs(argc, argv));
}

} // namespace benchjobs
} // namespace moentwine

#endif // MOENTWINE_BENCH_JOBS_HH
