/**
 * @file
 * Large-topology smoke: a 1024-device multi-wafer mesh (4×(16×16),
 * HER-Mapping) built under the compressed next-hop route storage,
 * driven through a short engine sweep. Exists so the kilodevice scale
 * path cannot silently regress: CI runs it in the regular matrix and
 * under ThreadSanitizer (the sweep cells share one finalized next-hop
 * System across workers).
 *
 * Checks (any failure exits non-zero):
 *  - Auto storage policy resolves to the next-hop matrix at this size;
 *  - sampled next-hop walks reconstruct fresh XY routes link by link;
 *  - a short engine run completes with positive, finite layer times,
 *    serially and on the thread pool with byte-identical results;
 *  - (unless --no-csr, which the slower TSan job passes) the
 *    compressed storage is ≥ 4× smaller than the CSR arena — the
 *    memory win the representation exists for.
 *
 * Usage: scale_smoke [--jobs N] [--no-csr]
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/moentwine.hh"
#include "jobs.hh"
#include "sweep/sweep.hh"

using namespace moentwine;

namespace {

/** Sampled walk-vs-computeRoute equivalence; returns mismatch count. */
int
checkSampledWalks(const Topology &topo)
{
    int mismatches = 0;
    const int devices = topo.numDevices();
    for (DeviceId s = 0; s < devices; s += 61) {
        for (DeviceId d = 0; d < devices; d += 67) {
            const auto fresh = topo.computeRoute(s, d);
            std::size_t i = 0;
            for (const LinkId l : topo.walk(s, d)) {
                if (i >= fresh.size() || l != fresh[i])
                    ++mismatches;
                ++i;
            }
            if (i != fresh.size())
                ++mismatches;
        }
    }
    return mismatches;
}

} // namespace

int
main(int argc, char **argv)
{
    bool skipCsr = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--no-csr") == 0)
            skipCsr = true;
    }

    std::printf("== scale smoke: 1024-device multi-wafer mesh, "
                "next-hop route storage ==\n");

    SystemConfig sc;
    sc.platform = PlatformKind::WscHer;
    sc.meshN = 16;
    sc.wafers = 4;
    sc.tp = 4;
    const auto sys = std::make_shared<const System>(System::make(sc));

    const Topology &topo = sys->topology();
    std::printf("system: %s, %d devices, %zu links\n",
                sys->name().c_str(), topo.numDevices(),
                topo.links().size());
    if (topo.numDevices() < 1024) {
        std::fprintf(stderr, "FAIL: expected >= 1024 devices\n");
        return 1;
    }
    if (!topo.usingNextHopRoutes()) {
        std::fprintf(stderr,
                     "FAIL: Auto policy did not select the next-hop "
                     "storage at %d devices\n",
                     topo.numDevices());
        return 1;
    }

    const int mismatches = checkSampledWalks(topo);
    if (mismatches != 0) {
        std::fprintf(stderr,
                     "FAIL: %d sampled walk mismatches vs XY routes\n",
                     mismatches);
        return 1;
    }
    std::printf("sampled walks: OK\n");

    // Short engine run over a two-cell balancer sweep: exercises the
    // full dispatch/combine/collective path at scale, with the shared
    // const System read concurrently by the pool workers (the TSan
    // target of this smoke).
    SweepGrid grid;
    grid.balancers = {BalancerKind::None, BalancerKind::TopologyAware};
    const SweepRunner::CellFn cell = [&sys](const SweepCell &c) {
        EngineConfig ec;
        ec.model = qwen3();
        ec.schedule = SchedulingMode::DecodeOnly;
        ec.decodeTokensPerGroup = 64;
        ec.workload.mode = GatingMode::MixedScenario;
        ec.balancer = c.point.balancerKind();
        ec.beta = 2;
        InferenceEngine engine(sys->mapping(), ec);
        double layerSum = 0.0;
        for (const auto &s : engine.run(3))
            layerSum += s.layerTime(ec.pipelineStages);
        SweepResult row;
        row.label = "balancer" + std::to_string(c.point.index);
        row.add("layer_sum_s", layerSum);
        return row;
    };

    const SweepRunner serial(1);
    const auto serialRows = serial.run(grid, cell);
    const SweepRunner pool = benchjobs::makeRunner(argc, argv);
    const auto poolRows = pool.run(grid, cell);
    for (std::size_t i = 0; i < serialRows.size(); ++i) {
        const double layer = serialRows[i].metric("layer_sum_s");
        std::printf("cell %zu: layer_sum %.6e s\n", i, layer);
        if (!(layer > 0.0) || !std::isfinite(layer)) {
            std::fprintf(stderr, "FAIL: non-finite layer time\n");
            return 1;
        }
        if (layer != poolRows[i].metric("layer_sum_s")) {
            std::fprintf(stderr,
                         "FAIL: parallel row diverged from serial\n");
            return 1;
        }
    }
    std::printf("engine smoke (jobs=%d): OK\n", pool.jobs());

    if (!skipCsr) {
        // The memory win itself: the CSR arena on an identical mesh
        // must be at least 4x the compressed matrix at this scale.
        MeshTopology csrMesh = MeshTopology::waferRow(4, 16);
        csrMesh.setRouteStorage(RouteStorageKind::CsrArena);
        const double csrBytes =
            static_cast<double>(csrMesh.routeStorageBytes());
        const double nhBytes =
            static_cast<double>(topo.routeStorageBytes());
        const double ratio = csrBytes / nhBytes;
        std::printf("route storage: csr %.1f MB vs next-hop %.1f MB "
                    "(%.1fx)\n",
                    csrBytes / 1e6, nhBytes / 1e6, ratio);
        if (ratio < 4.0) {
            std::fprintf(stderr,
                         "FAIL: compression ratio %.2f < 4.0\n", ratio);
            return 1;
        }
    }

    std::printf("scale smoke: PASS\n");
    return 0;
}
