/**
 * @file
 * Large-topology smoke at a configurable device count (default 1024;
 * CI also runs 16384). One binary covers both regimes so the scale
 * path cannot silently regress:
 *
 *  - 1024 devices (4×(16×16), HER-Mapping): built through
 *    System::make under the compressed next-hop route storage and
 *    driven through a short engine sweep — serially and on the thread
 *    pool with byte-identical results (the TSan target), plus the
 *    ≥ 4× CSR-vs-next-hop compression check (skipped with --no-csr).
 *
 *  - 16384 devices (4×(64×64), HER-Mapping, fine-grained experts —
 *    one per device): the sparse-traffic scale point. Route caching is
 *    disabled (an all-pairs table would itself be gigabytes at this
 *    size), the Auto traffic policy must resolve to the sparse
 *    accumulator, a short engine run must complete with finite
 *    positive layer times, the sparse accumulator must undercut the
 *    analytic dense matrix by ≥ 10×, and peak RSS must stay under a
 *    pinned ceiling that the dense matrix would provably blow through
 *    (checked via VmHWM; skipped under sanitizers and off Linux).
 *
 * Checks exit non-zero on any failure.
 *
 * With `--trace <path>` the smoke's short engine run re-emits as a
 * sim-time Chrome trace (src/obs/trace.hh) — at 16k devices that is
 * the only tracer of the sparse-traffic engine path.
 *
 * Usage: scale_smoke [--jobs N] [--no-csr] [--devices N] [--trace P]
 *        (N must be 4 × meshN² for integer meshN ≥ 16)
 */

#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "core/moentwine.hh"
#include "obs/obs.hh"
#include "flags.hh"
#include "jobs.hh"
#include "sweep/sweep.hh"

#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define MOE_UNDER_SANITIZER 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define MOE_UNDER_SANITIZER 1
#endif

using namespace moentwine;

namespace {

/**
 * Peak resident set (VmHWM) in bytes, or 0 when unavailable (non-Linux
 * or unreadable /proc).
 */
std::size_t
peakRssBytes()
{
#if defined(__linux__)
    std::FILE *f = std::fopen("/proc/self/status", "r");
    if (f == nullptr)
        return 0;
    char line[256];
    std::size_t kb = 0;
    while (std::fgets(line, sizeof(line), f) != nullptr) {
        if (std::sscanf(line, "VmHWM: %zu kB", &kb) == 1)
            break;
    }
    std::fclose(f);
    return kb * 1024;
#else
    return 0;
#endif
}

/** Sampled walk-vs-computeRoute equivalence; returns mismatch count. */
int
checkSampledWalks(const Topology &topo)
{
    int mismatches = 0;
    const int devices = topo.numDevices();
    for (DeviceId s = 0; s < devices; s += 61) {
        for (DeviceId d = 0; d < devices; d += 67) {
            const auto fresh = topo.computeRoute(s, d);
            std::size_t i = 0;
            for (const LinkId l : topo.walk(s, d)) {
                if (i >= fresh.size() || l != fresh[i])
                    ++mismatches;
                ++i;
            }
            if (i != fresh.size())
                ++mismatches;
        }
    }
    return mismatches;
}

/**
 * Parse and validate the --devices operand: a positive integer of the
 * form 4 × meshN² with meshN ≥ 16 (the four-wafer row this smoke
 * builds). Returns meshN; fatal() on anything else — same discipline
 * as the --jobs parsing in the sweep runner.
 */
int
meshNFromDevicesArg(const char *text)
{
    char *end = nullptr;
    errno = 0;
    const long value = std::strtol(text, &end, 10);
    if (errno == ERANGE || end == text || *end != '\0' || value <= 0 ||
        value > INT_MAX) {
        fatal("--devices expects a positive integer, got '" +
              std::string(text) + "'");
    }
    const int devices = static_cast<int>(value);
    const int meshN =
        static_cast<int>(std::lround(std::sqrt(devices / 4.0)));
    if (devices % 4 != 0 || meshN * meshN * 4 != devices || meshN < 16) {
        fatal("--devices must be 4 x meshN^2 with meshN >= 16 (e.g. "
              "1024 or 16384), got " +
              std::string(text));
    }
    return meshN;
}

/**
 * The 16k-class scale point: direct mesh + HER construction with route
 * caching disabled and fine-grained experts (one per device), pinning
 * the sparse accumulator's memory win and the RSS ceiling.
 */
/** Write @p trace to @p path (no-op on an empty path). */
void
writeTraceIfRequested(const TraceSink &trace, const std::string &path)
{
    if (!path.empty() && trace.writeFile(path))
        std::printf("wrote %s\n", path.c_str());
}

int
runSparseScalePoint(int devices, int meshN, const std::string &tracePath)
{
    std::printf("== scale smoke: %d-device multi-wafer mesh, sparse "
                "traffic accumulation ==\n",
                devices);

    // No System::make here: an all-pairs route table (next-hop or CSR)
    // is itself O(devices²) — gigabytes at 16k — so this point runs on
    // on-the-fly XY routes. walk() falls back to a per-topology
    // scratch, which is fine single-threaded.
    MeshTopology mesh = MeshTopology::waferRow(4, meshN);
    mesh.disableRouteCache();
    const HierarchicalErMapping her(
        mesh, decomposeTp(4, mesh.waferRows(), mesh.waferCols()));
    std::printf("system: %s / %s, %d devices, %zu links\n",
                mesh.name().c_str(), her.name().c_str(),
                mesh.numDevices(), mesh.links().size());

    if (her.activeTrafficStorage() != TrafficStorageKind::Sparse) {
        std::fprintf(stderr,
                     "FAIL: Auto traffic policy did not select the "
                     "sparse accumulator at %d devices\n",
                     devices);
        return 1;
    }

    const int mismatches = checkSampledWalks(mesh);
    if (mismatches != 0) {
        std::fprintf(stderr,
                     "FAIL: %d sampled walk mismatches vs XY routes\n",
                     mismatches);
        return 1;
    }
    std::printf("sampled walks: OK\n");

    // Fine-grained expert regime: expert parallelism spans the whole
    // system, one routed expert per device. This is the wafer-scale
    // serving shape the sparse accumulator exists for — dispatch
    // touches O(dp · activated · tp) pairs, a vanishing fraction of
    // devices².
    EngineConfig ec;
    ec.model = qwen3();
    ec.model.expertsTotal = devices;
    ec.schedule = SchedulingMode::DecodeOnly;
    ec.decodeTokensPerGroup = 16;
    ec.workload.mode = GatingMode::MixedScenario;
    ec.balancer = BalancerKind::None;

    InferenceEngine engine(her, ec);
    TraceSink trace;
    if (!tracePath.empty()) {
        ObsHooks hooks;
        hooks.trace = &trace;
        engine.attachObs(hooks);
    }
    for (const auto &s : engine.run(2)) {
        const double layer = s.layerTime(ec.pipelineStages);
        std::printf("iteration: layer %.6e s\n", layer);
        if (!(layer > 0.0) || !std::isfinite(layer)) {
            std::fprintf(stderr, "FAIL: non-finite layer time\n");
            return 1;
        }
    }
    writeTraceIfRequested(trace, tracePath);

    // The memory win itself, measured on a standalone routed batch:
    // the sparse accumulator's retained footprint vs the dense matrix
    // it replaces (analytic — allocating it is exactly what this point
    // exists to avoid).
    WorkloadConfig wc = ec.workload;
    wc.numExperts = ec.model.expertsTotal;
    wc.topK = ec.model.expertsActivated;
    WorkloadGenerator gen(wc);
    const ExpertPlacement placement(ec.model.expertsTotal, devices,
                                    ec.shadowSlots);
    RoutedTraffic routed;
    routeTokens(her, placement,
                gen.sampleCounts(0, 0, ec.decodeTokensPerGroup, her.dp()),
                ec.model.tokenBytes(), ec.retainAllGather,
                ec.model.expertsActivated, routed, true);

    const double sparseBytes =
        static_cast<double>(routed.pairBytes.storageBytes());
    const double denseBytes = static_cast<double>(
        TrafficAccumulator::denseBytes(devices));
    const double ratio = denseBytes / sparseBytes;
    std::printf("traffic accumulator: %zu pairs occupied, sparse "
                "%.1f MB vs dense %.1f MB (%.1fx)\n",
                routed.pairBytes.occupancy(), sparseBytes / 1e6,
                denseBytes / 1e6, ratio);
    if (ratio < 10.0) {
        std::fprintf(stderr,
                     "FAIL: sparse accumulator only %.2fx smaller than "
                     "dense (need >= 10x)\n",
                     ratio);
        return 1;
    }

#if defined(__linux__) && !defined(MOE_UNDER_SANITIZER)
    // Pinned memory ceiling: the whole run — mapping, dispatch memo,
    // engine scratch, sparse accumulator — must fit under 2.5 GB, and
    // swapping the sparse accumulator for the dense matrix would
    // provably not (peak + the dense-minus-sparse delta exceeds the
    // ceiling). Skipped under sanitizers (shadow memory inflates RSS).
    const std::size_t peak = peakRssBytes();
    constexpr double kRssCeiling = 2.5e9;
    if (peak > 0) {
        std::printf("peak RSS: %.2f GB (ceiling %.2f GB)\n", peak / 1e9,
                    kRssCeiling / 1e9);
        if (static_cast<double>(peak) > kRssCeiling) {
            std::fprintf(stderr,
                         "FAIL: peak RSS %.2f GB over the %.2f GB "
                         "ceiling\n",
                         peak / 1e9, kRssCeiling / 1e9);
            return 1;
        }
        if (static_cast<double>(peak) + denseBytes - sparseBytes <=
            kRssCeiling) {
            std::fprintf(stderr,
                         "FAIL: dense matrix would also fit under the "
                         "ceiling — the ceiling no longer "
                         "discriminates\n");
            return 1;
        }
    }
#endif

    std::printf("scale smoke: PASS\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool skipCsr = false;
    int meshN = 16;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--no-csr") == 0) {
            skipCsr = true;
        } else if (std::strcmp(argv[i], "--devices") == 0) {
            if (i + 1 >= argc)
                fatal("--devices expects a value");
            meshN = meshNFromDevicesArg(argv[++i]);
        }
    }
    const std::string tracePath =
        benchflags::stringFlag(argc, argv, "--trace");
    const int devices = 4 * meshN * meshN;

    if (TrafficAccumulator::resolve(TrafficStorageKind::Auto, devices) ==
        TrafficStorageKind::Sparse) {
        return runSparseScalePoint(devices, meshN, tracePath);
    }

    std::printf("== scale smoke: %d-device multi-wafer mesh, "
                "next-hop route storage ==\n",
                devices);

    SystemConfig sc;
    sc.platform = PlatformKind::WscHer;
    sc.meshN = meshN;
    sc.wafers = 4;
    sc.tp = 4;
    const auto sys = std::make_shared<const System>(System::make(sc));

    const Topology &topo = sys->topology();
    std::printf("system: %s, %d devices, %zu links\n",
                sys->name().c_str(), topo.numDevices(),
                topo.links().size());
    if (topo.numDevices() < 1024) {
        std::fprintf(stderr, "FAIL: expected >= 1024 devices\n");
        return 1;
    }
    if (!topo.usingNextHopRoutes()) {
        std::fprintf(stderr,
                     "FAIL: Auto policy did not select the next-hop "
                     "storage at %d devices\n",
                     topo.numDevices());
        return 1;
    }

    const int mismatches = checkSampledWalks(topo);
    if (mismatches != 0) {
        std::fprintf(stderr,
                     "FAIL: %d sampled walk mismatches vs XY routes\n",
                     mismatches);
        return 1;
    }
    std::printf("sampled walks: OK\n");

    // Short engine run over a two-cell balancer sweep: exercises the
    // full dispatch/combine/collective path at scale, with the shared
    // const System read concurrently by the pool workers (the TSan
    // target of this smoke).
    SweepGrid grid;
    grid.balancers = {BalancerKind::None, BalancerKind::TopologyAware};
    const SweepRunner::CellFn cell = [&sys](const SweepCell &c) {
        EngineConfig ec;
        ec.model = qwen3();
        ec.schedule = SchedulingMode::DecodeOnly;
        ec.decodeTokensPerGroup = 64;
        ec.workload.mode = GatingMode::MixedScenario;
        ec.balancer = c.point.balancerKind();
        ec.beta = 2;
        InferenceEngine engine(sys->mapping(), ec);
        double layerSum = 0.0;
        for (const auto &s : engine.run(3))
            layerSum += s.layerTime(ec.pipelineStages);
        SweepResult row;
        row.label = "balancer" + std::to_string(c.point.index);
        row.add("layer_sum_s", layerSum);
        return row;
    };

    const SweepRunner serial(1);
    const auto serialRows = serial.run(grid, cell);
    const SweepRunner pool = benchjobs::makeRunner(argc, argv);
    const auto poolRows = pool.run(grid, cell);
    for (std::size_t i = 0; i < serialRows.size(); ++i) {
        const double layer = serialRows[i].metric("layer_sum_s");
        std::printf("cell %zu: layer_sum %.6e s\n", i, layer);
        if (!(layer > 0.0) || !std::isfinite(layer)) {
            std::fprintf(stderr, "FAIL: non-finite layer time\n");
            return 1;
        }
        if (layer != poolRows[i].metric("layer_sum_s")) {
            std::fprintf(stderr,
                         "FAIL: parallel row diverged from serial\n");
            return 1;
        }
    }
    std::printf("engine smoke (jobs=%d): OK\n", pool.jobs());

    if (!tracePath.empty()) {
        // Traced re-run of one smoke cell (untimed; outside the
        // serial-vs-pool comparison above, so it cannot perturb it).
        EngineConfig ec;
        ec.model = qwen3();
        ec.schedule = SchedulingMode::DecodeOnly;
        ec.decodeTokensPerGroup = 64;
        ec.workload.mode = GatingMode::MixedScenario;
        ec.balancer = BalancerKind::TopologyAware;
        ec.beta = 2;
        InferenceEngine engine(sys->mapping(), ec);
        TraceSink trace;
        ObsHooks hooks;
        hooks.trace = &trace;
        engine.attachObs(hooks);
        engine.run(3);
        writeTraceIfRequested(trace, tracePath);
    }

    if (!skipCsr) {
        // The memory win itself: the CSR arena on an identical mesh
        // must be at least 4x the compressed matrix at this scale.
        MeshTopology csrMesh = MeshTopology::waferRow(4, meshN);
        csrMesh.setRouteStorage(RouteStorageKind::CsrArena);
        const double csrBytes =
            static_cast<double>(csrMesh.routeStorageBytes());
        const double nhBytes =
            static_cast<double>(topo.routeStorageBytes());
        const double ratio = csrBytes / nhBytes;
        std::printf("route storage: csr %.1f MB vs next-hop %.1f MB "
                    "(%.1fx)\n",
                    csrBytes / 1e6, nhBytes / 1e6, ratio);
        if (ratio < 4.0) {
            std::fprintf(stderr,
                         "FAIL: compression ratio %.2f < 4.0\n", ratio);
            return 1;
        }
    }

    std::printf("scale smoke: PASS\n");
    return 0;
}
