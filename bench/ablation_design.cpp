/**
 * @file
 * Ablation bench for the design choices DESIGN.md calls out beyond the
 * paper's own figures:
 *
 *  1. time-staggered entwined rings vs naive (un-staggered) sharing —
 *     the scheduling trick of Fig. 8(d);
 *  2. DeepSpeed-MoE-style cross-node dedup on the DGX baseline — how
 *     much of the GPU baseline's strength comes from hierarchical
 *     all-to-all;
 *  3. PipeMoE pipeline depth — the micro-batch overlap factor;
 *  4. shadow-slot budget — balance quality vs HBM cost per device.
 */

#include <cstdio>

#include "core/moentwine.hh"

using namespace moentwine;

namespace {

void
ablateStagger()
{
    std::printf("-- [1] entwined-ring staggering (Qwen3, 6x6, TP=4) "
                "--\n");
    const MeshTopology mesh = MeshTopology::singleWafer(6);
    const ErMapping er(mesh, decomposeTp(4, 6, 6));
    const double bytes = 256 * qwen3().tokenBytes();
    Table t({"schedule", "all-reduce (us)"});
    const auto staggered = ringCollective(
        mesh, er.tpGroups(), bytes, RingOp::AllReduce, true);
    const auto naive = ringCollective(
        mesh, er.tpGroups(), bytes, RingOp::AllReduce, false);
    t.addRow({"time-staggered (Fig. 8d)",
              Table::num(staggered.time * 1e6, 1)});
    t.addRow({"naive sharing", Table::num(naive.time * 1e6, 1)});
    // Worst-case sharing: several rings over identical edges — the
    // regime the staggered schedule is designed for.
    const std::vector<DeviceId> ring{
        mesh.deviceAt(1, 0), mesh.deviceAt(1, 2), mesh.deviceAt(1, 4),
        mesh.deviceAt(1, 5), mesh.deviceAt(1, 3), mesh.deviceAt(1, 1)};
    const auto stag3 = ringCollective(mesh, {ring, ring, ring}, bytes,
                                      RingOp::AllReduce, true);
    const auto naive3 = ringCollective(mesh, {ring, ring, ring}, bytes,
                                       RingOp::AllReduce, false);
    t.addRow({"3x co-located rings, staggered",
              Table::num(stag3.time * 1e6, 1)});
    t.addRow({"3x co-located rings, naive",
              Table::num(naive3.time * 1e6, 1)});
    std::printf("%s\n", t.render().c_str());
}

void
ablateDedup()
{
    std::printf("-- [2] hierarchical-A2A dedup on the DGX baseline "
                "(DeepSeek-V3, 4 nodes) --\n");
    const auto dgx = SwitchClusterTopology::dgx(4);
    const ClusterMapping cm(dgx, 4);
    const MoEModelConfig model = deepseekV3();
    const ExpertPlacement p(model.expertsTotal, dgx.numDevices(), 0);
    std::vector<std::vector<int>> counts(
        std::size_t(cm.dp()),
        std::vector<int>(std::size_t(model.expertsTotal), 8));
    Table t({"baseline", "dispatch+combine (us)"});
    for (const auto &[label, topk] :
         std::vector<std::pair<const char *, int>>{
             {"naive all-to-all", 1},
             {"with cross-node dedup (k=8)", 8}}) {
        const auto routed =
            routeTokens(cm, p, counts, model.tokenBytes(), true, topk);
        const double time = allToAll(dgx, routed.dispatch).time +
            allToAll(dgx, routed.combine).time;
        t.addRow({label, Table::num(time * 1e6, 1)});
    }
    std::printf("%s\n", t.render().c_str());
}

void
ablatePipeline()
{
    std::printf("-- [3] PipeMoE pipeline depth (DeepSeek-V3, 8x8+ER) "
                "--\n");
    SystemConfig sc;
    sc.platform = PlatformKind::WscEr;
    sc.meshN = 8;
    sc.tp = 8;
    const System sys = System::make(sc);
    Table t({"stages", "layer time (us)"});
    for (const int stages : {1, 2, 4, 8, 16}) {
        EngineConfig ec;
        ec.model = deepseekV3();
        ec.pipelineStages = stages;
        ec.workload.mode = GatingMode::Balanced;
        InferenceEngine engine(sys.mapping(), ec);
        const auto s = engine.step();
        t.addRow({std::to_string(stages),
                  Table::num(s.layerTime(stages) * 1e6, 1)});
    }
    std::printf("%s\n", t.render().c_str());
}

void
ablateShadowSlots()
{
    std::printf("-- [4] shadow-slot budget (Qwen3, 4x4+ER, "
                "NI-Balancer) --\n");
    SystemConfig sc;
    sc.platform = PlatformKind::WscEr;
    sc.meshN = 4;
    sc.tp = 4;
    const System sys = System::make(sc);
    Table t({"shadow slots/device", "tail load max/avg",
             "extra HBM (MB/device)"});
    for (const int slots : {0, 1, 2, 4}) {
        EngineConfig ec;
        ec.model = qwen3();
        ec.shadowSlots = slots;
        ec.balancer = slots == 0 ? BalancerKind::None
                                 : BalancerKind::NonInvasive;
        ec.workload.mode = GatingMode::MixedScenario;
        ec.alpha = 0.5;
        InferenceEngine engine(sys.mapping(), ec);
        Summary ratio;
        const auto trace = engine.run(60);
        for (std::size_t i = 30; i < trace.size(); ++i)
            ratio.add(trace[i].loadMax / trace[i].loadAvg);
        t.addRow({std::to_string(slots), Table::num(ratio.mean(), 2),
                  Table::num(slots * qwen3().expertBytes / 1e6, 0)});
    }
    std::printf("%s\n", t.render().c_str());
}

} // namespace

int
main()
{
    std::printf("== Design-choice ablations ==\n\n");
    ablateStagger();
    ablateDedup();
    ablatePipeline();
    ablateShadowSlots();
    return 0;
}
