/**
 * @file
 * google-benchmark microbenchmarks of the simulator itself: mesh
 * routing, collective timing, token routing, and full engine steps.
 * These guard the simulator's own performance (wall-clock, not
 * simulated time).
 */

#include <benchmark/benchmark.h>

#include "core/moentwine.hh"

using namespace moentwine;

namespace {

void
BM_MeshRouting(benchmark::State &state)
{
    const MeshTopology mesh =
        MeshTopology::singleWafer(static_cast<int>(state.range(0)));
    DeviceId a = 0;
    for (auto _ : state) {
        const DeviceId b =
            (a * 31 + 17) % mesh.numDevices();
        benchmark::DoNotOptimize(mesh.route(a, b));
        a = (a + 1) % mesh.numDevices();
    }
}
BENCHMARK(BM_MeshRouting)->Arg(4)->Arg(8)->Arg(16);

void
BM_RingAllReduce(benchmark::State &state)
{
    const MeshTopology mesh =
        MeshTopology::singleWafer(static_cast<int>(state.range(0)));
    const auto par = decomposeTp(4, mesh.rows(), mesh.cols());
    const ErMapping er(mesh, par);
    for (auto _ : state)
        benchmark::DoNotOptimize(er.allReduce(1e6, true));
}
BENCHMARK(BM_RingAllReduce)->Arg(4)->Arg(8);

void
BM_TokenRouting(benchmark::State &state)
{
    const MeshTopology mesh =
        MeshTopology::singleWafer(static_cast<int>(state.range(0)));
    const auto par = decomposeTp(4, mesh.rows(), mesh.cols());
    const ErMapping er(mesh, par);
    const MoEModelConfig model = qwen3();
    const ExpertPlacement p(model.expertsTotal, mesh.numDevices(), 0);
    const std::vector<std::vector<int>> counts(
        std::size_t(er.dp()),
        std::vector<int>(std::size_t(model.expertsTotal), 4));
    for (auto _ : state) {
        benchmark::DoNotOptimize(routeTokens(
            er, p, counts, model.tokenBytes(), true,
            model.expertsActivated));
    }
}
BENCHMARK(BM_TokenRouting)->Arg(4)->Arg(8);

void
BM_EngineStepWsc(benchmark::State &state)
{
    SystemConfig sc;
    sc.platform = PlatformKind::WscEr;
    sc.meshN = static_cast<int>(state.range(0));
    sc.tp = 4;
    const System sys = System::make(sc);
    EngineConfig ec;
    ec.model = qwen3();
    ec.decodeTokensPerGroup = 128;
    ec.balancer = BalancerKind::NonInvasive;
    ec.alpha = 0.5;
    InferenceEngine engine(sys.mapping(), ec);
    for (auto _ : state)
        benchmark::DoNotOptimize(engine.step());
}
BENCHMARK(BM_EngineStepWsc)->Arg(4)->Arg(8);

void
BM_EngineStepNvl72(benchmark::State &state)
{
    SystemConfig sc;
    sc.platform = PlatformKind::Nvl72;
    sc.tp = 4;
    const System sys = System::make(sc);
    EngineConfig ec;
    ec.model = deepseekV3();
    ec.decodeTokensPerGroup = 64;
    InferenceEngine engine(sys.mapping(), ec);
    for (auto _ : state)
        benchmark::DoNotOptimize(engine.step());
}
BENCHMARK(BM_EngineStepNvl72);

} // namespace
