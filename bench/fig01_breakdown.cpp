/**
 * @file
 * Fig. 1(a): per-device MoE latency breakdown of DeepSeek-V3 across
 * platforms, with EP equal to the device count. Total latency is the
 * maximum of computation and communication (they overlap).
 *
 * Expected shape: beyond 4 DGX nodes the all-to-all overhead exceeds
 * computation; NVL72 (EP=72) improves on the 4-node DGX; the WSC with
 * MoEntwine (EP=256) delivers the best per-device latency.
 *
 * Runs on the SweepRunner platform grid (`--jobs N`, MOENTWINE_JOBS).
 */

#include <algorithm>
#include <cstdio>

#include "core/moentwine.hh"
#include "sweep/sweep.hh"
#include "jobs.hh"
#include "sweep_output.hh"

using namespace moentwine;

namespace {

/** Balancing setup a platform uses in this figure. */
struct PlatformPolicy
{
    BalancerKind balancer;
    bool migrationViaDisk;
};

/**
 * GPU platforms hide invasive migration behind local NVMe channels;
 * WSCs have no on-wafer disk, and the MoEntwine configuration runs the
 * NI-Balancer instead (Section III-C).
 */
PlatformPolicy
policyFor(const SystemConfig &sc)
{
    switch (sc.platform) {
      case PlatformKind::DgxCluster:
      case PlatformKind::Nvl72:
        return PlatformPolicy{BalancerKind::Greedy, true};
      case PlatformKind::WscBaseline:
      case PlatformKind::WscEr:
        return PlatformPolicy{BalancerKind::Greedy, false};
      case PlatformKind::WscHer:
        return PlatformPolicy{BalancerKind::NonInvasive, false};
    }
    return PlatformPolicy{BalancerKind::None, false};
}

std::string
labelFor(const SystemConfig &sc)
{
    switch (sc.platform) {
      case PlatformKind::DgxCluster:
        return std::to_string(sc.dgxNodes) + "-node DGX (E/D=" +
            Table::num(256.0 / (sc.dgxNodes * 8), 1) + ")";
      case PlatformKind::Nvl72:
        return "NVL72 (E/D=3.6)";
      case PlatformKind::WscBaseline:
        return "WSC " + std::to_string(sc.wafers) + "x(" +
            std::to_string(sc.meshN) + "x" + std::to_string(sc.meshN) +
            ") (E/D=1)";
      case PlatformKind::WscHer:
        return "WSC " + std::to_string(sc.wafers) + "x(" +
            std::to_string(sc.meshN) + "x" + std::to_string(sc.meshN) +
            ") + MoEntwine";
      case PlatformKind::WscEr:
        return "WSC + ER";
    }
    return "?";
}

double
totalOf(const SweepResult &r)
{
    return std::max(r.metric("a2a_us"), r.metric("moe_us")) +
        r.metric("migration_us");
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("== Fig. 1(a): MoE latency breakdown per device "
                "(DeepSeek-V3) ==\n\n");

    SweepGrid grid;
    for (const int nodes : {1, 4, 9}) {
        SystemConfig sc;
        sc.platform = PlatformKind::DgxCluster;
        sc.dgxNodes = nodes;
        sc.tp = 4;
        grid.systems.push_back(sc);
    }
    {
        SystemConfig sc;
        sc.platform = PlatformKind::Nvl72;
        sc.tp = 4;
        grid.systems.push_back(sc);
    }
    {
        SystemConfig sc;
        sc.platform = PlatformKind::WscBaseline;
        sc.meshN = 8;
        sc.wafers = 4;
        sc.tp = 16;
        grid.systems.push_back(sc);
        sc.platform = PlatformKind::WscHer;
        grid.systems.push_back(sc);
    }

    const SweepRunner runner = benchjobs::makeRunner(argc, argv);
    const auto rows = runner.run(grid, [](const SweepCell &cell) {
        const SystemConfig sc = cell.point.systemConfig();
        const PlatformPolicy policy = policyFor(sc);

        EngineConfig ec;
        ec.model = deepseekV3();
        // Equal per-device routed-token load across platforms: with
        // tokens/group proportional to TP, every device sees
        // 32 x topk routed tokens regardless of the device count.
        ec.decodeTokensPerGroup = 32 * cell.system->mapping().tp();
        ec.workload.mode = GatingMode::MixedScenario;
        ec.balancer = policy.balancer;
        ec.migrationViaDisk = policy.migrationViaDisk;
        ec.alpha = 0.5;
        ec.beta = 5;
        InferenceEngine engine(cell.system->mapping(), ec);

        Summary a2a;
        Summary moe;
        double migration = 0.0;
        const auto trace = engine.run(40);
        for (std::size_t i = 10; i < trace.size(); ++i) {
            a2a.add(trace[i].allToAll());
            moe.add(trace[i].moeTime);
            migration += trace[i].migrationOverhead;
        }

        SweepResult row;
        row.label = labelFor(sc);
        row.add("a2a_us", a2a.mean() * 1e6);
        row.add("moe_us", moe.mean() * 1e6);
        row.add("migration_us",
                migration * 1e6 /
                    static_cast<double>(trace.size() - 10));
        return row;
    });

    const double reference = totalOf(rows[1]); // 4-node DGX
    Table t({"platform", "all-to-all (us)", "MoE comp (us)",
             "migration (us)", "total (us)", "vs 4-node DGX"});
    for (const SweepResult &r : rows) {
        t.addRow({r.label, Table::num(r.metric("a2a_us"), 1),
                  Table::num(r.metric("moe_us"), 1),
                  Table::num(r.metric("migration_us"), 2),
                  Table::num(totalOf(r), 1),
                  Table::pct(reference / totalOf(r) - 1.0)});
    }
    std::printf("%s\n(total = max(computation, communication) + "
                "exposed migration)\n",
                t.render().c_str());
    benchout::writeSweepFiles("fig01_breakdown", rows);
    return 0;
}
