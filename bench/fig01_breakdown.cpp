/**
 * @file
 * Fig. 1(a): per-device MoE latency breakdown of DeepSeek-V3 across
 * platforms, with EP equal to the device count. Total latency is the
 * maximum of computation and communication (they overlap).
 *
 * Expected shape: beyond 4 DGX nodes the all-to-all overhead exceeds
 * computation; NVL72 (EP=72) improves on the 4-node DGX; the WSC with
 * MoEntwine (EP=256) delivers the best per-device latency.
 */

#include <algorithm>
#include <cstdio>

#include "core/moentwine.hh"

using namespace moentwine;

namespace {

struct Row
{
    std::string name;
    double a2a;
    double moe;
    double migration;

    double total() const { return std::max(a2a, moe) + migration; }
};

Row
runPlatform(const std::string &name, const System &sys,
            BalancerKind balancer, bool migrationViaDisk)
{
    EngineConfig ec;
    ec.model = deepseekV3();
    // Equal per-device routed-token load across platforms: with
    // tokens/group proportional to TP, every device sees
    // 32 x topk routed tokens regardless of the device count.
    ec.decodeTokensPerGroup = 32 * sys.mapping().tp();
    ec.workload.mode = GatingMode::MixedScenario;
    ec.balancer = balancer;
    ec.migrationViaDisk = migrationViaDisk;
    ec.alpha = 0.5;
    ec.beta = 5;
    InferenceEngine engine(sys.mapping(), ec);

    Summary a2a;
    Summary moe;
    double migration = 0.0;
    const auto trace = engine.run(40);
    for (std::size_t i = 10; i < trace.size(); ++i) {
        a2a.add(trace[i].allToAll());
        moe.add(trace[i].moeTime);
        migration += trace[i].migrationOverhead;
    }
    return Row{name, a2a.mean(), moe.mean(),
               migration / static_cast<double>(trace.size() - 10)};
}

} // namespace

int
main()
{
    std::printf("== Fig. 1(a): MoE latency breakdown per device "
                "(DeepSeek-V3) ==\n\n");
    std::vector<Row> rows;

    for (const int nodes : {1, 4, 9}) {
        SystemConfig sc;
        sc.platform = PlatformKind::DgxCluster;
        sc.dgxNodes = nodes;
        sc.tp = 4;
        const System sys = System::make(sc);
        // GPU platforms hide migration behind local NVMe channels.
        rows.push_back(runPlatform(
            std::to_string(nodes) + "-node DGX (E/D=" +
                Table::num(256.0 / (nodes * 8), 1) + ")",
            sys, BalancerKind::Greedy, true));
    }
    {
        SystemConfig sc;
        sc.platform = PlatformKind::Nvl72;
        sc.tp = 4;
        const System sys = System::make(sc);
        rows.push_back(runPlatform("NVL72 (E/D=3.6)", sys,
                                   BalancerKind::Greedy, true));
    }
    {
        SystemConfig sc;
        sc.platform = PlatformKind::WscBaseline;
        sc.meshN = 8;
        sc.wafers = 4;
        sc.tp = 16;
        const System sys = System::make(sc);
        // No on-wafer disk: invasive migration is exposed.
        rows.push_back(runPlatform("WSC 4x(8x8) (E/D=1)", sys,
                                   BalancerKind::Greedy, false));
    }
    {
        SystemConfig sc;
        sc.platform = PlatformKind::WscHer;
        sc.meshN = 8;
        sc.wafers = 4;
        sc.tp = 16;
        const System sys = System::make(sc);
        rows.push_back(runPlatform("WSC 4x(8x8) + MoEntwine", sys,
                                   BalancerKind::NonInvasive, false));
    }

    const double reference = rows[1].total(); // 4-node DGX
    Table t({"platform", "all-to-all (us)", "MoE comp (us)",
             "migration (us)", "total (us)", "vs 4-node DGX"});
    for (const Row &r : rows) {
        t.addRow({r.name, Table::num(r.a2a * 1e6, 1),
                  Table::num(r.moe * 1e6, 1),
                  Table::num(r.migration * 1e6, 2),
                  Table::num(r.total() * 1e6, 1),
                  Table::pct(reference / r.total() - 1.0)});
    }
    std::printf("%s\n(total = max(computation, communication) + "
                "exposed migration)\n",
                t.render().c_str());
    return 0;
}
