/**
 * @file
 * Fig. 15: run-time traces of device loads under the four balancing
 * strategies — none, greedy (EPLB-style), topology-aware
 * (Algorithm 1), and non-invasive topology-aware (NI-Balancer) —
 * on a 4×4 ER-mapped wafer serving Qwen3 with a mixed workload.
 *
 * Expected shape: no balancing leaves peak load ~2× the average;
 * greedy balances but interrupts inference with long migrations;
 * topology-aware shortens migrations; NI eliminates interruption
 * entirely while staying continuously active.
 */

#include <cstdio>

#include "core/moentwine.hh"

using namespace moentwine;

namespace {

const char *
kindName(BalancerKind kind)
{
    switch (kind) {
      case BalancerKind::None:
        return "No balance";
      case BalancerKind::Greedy:
        return "Greedy (EPLB)";
      case BalancerKind::TopologyAware:
        return "Topology-aware";
      case BalancerKind::NonInvasive:
        return "Non-invasive";
    }
    return "?";
}

} // namespace

int
main()
{
    std::printf("== Fig. 15: run-time load traces, 150 iterations "
                "(Qwen3, 4x4 WSC) ==\n\n");
    SystemConfig sc;
    sc.platform = PlatformKind::WscEr;
    sc.meshN = 4;
    sc.tp = 4;
    const System sys = System::make(sc);

    Table t({"strategy", "peak/avg load (tail)", "migrations",
             "exposed migration (us)", "interrupted iters",
             "mean layer time (us)"});
    for (const BalancerKind kind :
         {BalancerKind::None, BalancerKind::Greedy,
          BalancerKind::TopologyAware, BalancerKind::NonInvasive}) {
        EngineConfig ec;
        ec.model = qwen3();
        ec.decodeTokensPerGroup = 256;
        ec.workload.mode = GatingMode::MixedScenario;
        ec.workload.mixPeriod = 100;
        ec.balancer = kind;
        ec.alpha = 0.5;
        ec.beta = 5;
        InferenceEngine engine(sys.mapping(), ec);

        Summary ratio;
        Summary layer;
        double exposed = 0.0;
        int migrations = 0;
        int interruptions = 0;
        const auto traceVec = engine.run(150);
        for (std::size_t i = 0; i < traceVec.size(); ++i) {
            const auto &s = traceVec[i];
            if (i >= 50)
                ratio.add(s.loadMax / s.loadAvg);
            layer.add(s.layerTime(ec.pipelineStages));
            exposed += s.migrationOverhead;
            migrations += s.migrationsPlanned;
            interruptions += s.migrationOverhead > 0.0;
        }
        t.addRow({kindName(kind), Table::num(ratio.mean(), 2) + "x",
                  std::to_string(migrations),
                  Table::num(exposed * 1e6, 1),
                  std::to_string(interruptions),
                  Table::num(layer.mean() * 1e6, 1)});
    }
    std::printf("%s\n", t.render().c_str());
    return 0;
}
