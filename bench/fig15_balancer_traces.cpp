/**
 * @file
 * Fig. 15: run-time traces of device loads under the four balancing
 * strategies — none, greedy (EPLB-style), topology-aware
 * (Algorithm 1), and non-invasive topology-aware (NI-Balancer) —
 * on a 4×4 ER-mapped wafer serving Qwen3 with a mixed workload.
 *
 * Expected shape: no balancing leaves peak load ~2× the average;
 * greedy balances but interrupts inference with long migrations;
 * topology-aware shortens migrations; NI eliminates interruption
 * entirely while staying continuously active.
 *
 * Runs one strategy per SweepRunner cell (`--jobs N`), every cell on
 * one shared WSC system.
 */

#include <cstdio>

#include "core/moentwine.hh"
#include "sweep/sweep.hh"
#include "jobs.hh"
#include "sweep_output.hh"

using namespace moentwine;

namespace {

const char *
kindName(BalancerKind kind)
{
    switch (kind) {
      case BalancerKind::None:
        return "No balance";
      case BalancerKind::Greedy:
        return "Greedy (EPLB)";
      case BalancerKind::TopologyAware:
        return "Topology-aware";
      case BalancerKind::NonInvasive:
        return "Non-invasive";
    }
    return "?";
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("== Fig. 15: run-time load traces, 150 iterations "
                "(Qwen3, 4x4 WSC) ==\n\n");

    SweepGrid grid;
    {
        SystemConfig sc;
        sc.platform = PlatformKind::WscEr;
        sc.meshN = 4;
        sc.tp = 4;
        grid.systems = {sc};
    }
    grid.balancers = {BalancerKind::None, BalancerKind::Greedy,
                      BalancerKind::TopologyAware,
                      BalancerKind::NonInvasive};

    const SweepRunner runner = benchjobs::makeRunner(argc, argv);
    const auto rows = runner.run(grid, [](const SweepCell &cell) {
        EngineConfig ec;
        ec.model = qwen3();
        ec.decodeTokensPerGroup = 256;
        ec.workload.mode = GatingMode::MixedScenario;
        ec.workload.mixPeriod = 100;
        ec.balancer = cell.point.balancerKind();
        ec.alpha = 0.5;
        ec.beta = 5;
        InferenceEngine engine(cell.system->mapping(), ec);

        Summary ratio;
        Summary layer;
        double exposed = 0.0;
        int migrations = 0;
        int interruptions = 0;
        const auto traceVec = engine.run(150);
        for (std::size_t i = 0; i < traceVec.size(); ++i) {
            const auto &s = traceVec[i];
            if (i >= 50)
                ratio.add(s.loadMax / s.loadAvg);
            layer.add(s.layerTime(ec.pipelineStages));
            exposed += s.migrationOverhead;
            migrations += s.migrationsPlanned;
            interruptions += s.migrationOverhead > 0.0;
        }

        SweepResult row;
        row.label = kindName(ec.balancer);
        row.add("load_ratio_tail", ratio.mean());
        row.add("migrations", migrations);
        row.add("exposed_us", exposed * 1e6);
        row.add("interrupted_iters", interruptions);
        row.add("layer_us", layer.mean() * 1e6);
        return row;
    });

    Table t({"strategy", "peak/avg load (tail)", "migrations",
             "exposed migration (us)", "interrupted iters",
             "mean layer time (us)"});
    for (const SweepResult &r : rows) {
        t.addRow({r.label,
                  Table::num(r.metric("load_ratio_tail"), 2) + "x",
                  std::to_string(
                      static_cast<int>(r.metric("migrations"))),
                  Table::num(r.metric("exposed_us"), 1),
                  std::to_string(static_cast<int>(
                      r.metric("interrupted_iters"))),
                  Table::num(r.metric("layer_us"), 1)});
    }
    std::printf("%s\n", t.render().c_str());
    benchout::writeSweepFiles("fig15_balancer_traces", rows);
    return 0;
}
