#include "fig16_grid.hh"

namespace moentwine {
namespace benchgrid {

SweepGrid
fig16BalancingGrid()
{
    SweepGrid grid;
    grid.models = {qwen3(), deepseekV3()};
    SystemConfig sc;
    sc.platform = PlatformKind::WscEr;
    sc.meshN = 4;
    sc.tp = 4;
    grid.systems = {sc};
    grid.balancers = {BalancerKind::None, BalancerKind::Greedy,
                      BalancerKind::TopologyAware,
                      BalancerKind::NonInvasive};
    grid.schedules = {SchedulingMode::PrefillOnly,
                      SchedulingMode::DecodeOnly, SchedulingMode::Hybrid};
    grid.gatings = {GatingMode::SingleScenario, GatingMode::MixedScenario};
    return grid;
}

EngineConfig
fig16EngineConfig(const SweepPoint &point)
{
    EngineConfig ec;
    ec.model = point.modelConfig();
    ec.schedule = point.schedulingMode();
    ec.decodeTokensPerGroup = 128;
    ec.prefillTokensPerGroup = 1024;
    ec.workload.mode = point.gatingMode();
    ec.workload.scenario = ScenarioKind::Math;
    ec.workload.mixPeriod = 60;
    ec.workload.seed = point.seed();
    ec.balancer = point.balancerKind();
    ec.alpha = 0.5;
    ec.beta = 5;
    return ec;
}

} // namespace benchgrid
} // namespace moentwine
