/**
 * @file
 * Tests for the observability layer (src/obs/):
 *  - StatRegistry basics: handle resolution (same name → same handle),
 *    counter/gauge/distribution semantics, kind-mismatch panics;
 *  - merge semantics and the deterministic mergedInOrder() idiom,
 *    including the one-registry-per-worker concurrency pattern (the
 *    TSan target: concurrent writers never share a registry);
 *  - TraceSink: structural JSON validity and byte-determinism of
 *    identical emission sequences;
 *  - the observation-is-free contract: attaching stats + trace to a
 *    ServeSimulator leaves the report bitwise identical to an
 *    unobserved run, and two observed runs produce byte-identical
 *    trace files;
 *  - published counter sanity: scheduler/engine/fault stats visible
 *    through ServeSimulator::stats() agree with the report;
 *  - HwCounters: zeros-when-unavailable fallback, consistent values
 *    when the PMU opens.
 */

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/moentwine.hh"
#include "fault/fault.hh"
#include "obs/obs.hh"
#include "serve/serve_sim.hh"

using namespace moentwine;

namespace {

/** Small WSC platform shared by the serving-level tests. */
System
testSystem()
{
    SystemConfig wsc;
    wsc.platform = PlatformKind::WscEr;
    wsc.meshN = 4;
    wsc.tp = 4;
    return System::make(wsc);
}

/** Short saturating serve config (deterministic stream). */
ServeConfig
testServeConfig(int requests)
{
    ServeConfig sc;
    sc.engine.model = qwen3();
    sc.engine.workload.seed = 77;
    sc.arrival.kind = ArrivalKind::Bursty;
    sc.arrival.ratePerSec = 150.0;
    sc.arrival.promptMeanTokens = 256;
    sc.arrival.promptMaxTokens = 2048;
    sc.arrival.outputMeanTokens = 48;
    sc.arrival.outputMaxTokens = 256;
    sc.arrival.seed = 4711;
    sc.scheduler.kvBudgetTokens = 16384;
    sc.scheduler.maxRunningRequests = 32;
    sc.numRequests = requests;
    return sc;
}

/** Very light structural JSON sanity: balanced braces/brackets outside
 *  strings, and a leading '{'. (Full validation runs in CI through
 *  `python3 -m json.tool`.) */
void
expectBalancedJson(const std::string &doc)
{
    ASSERT_FALSE(doc.empty());
    EXPECT_EQ(doc.front(), '{');
    int brace = 0, bracket = 0;
    bool inString = false, escaped = false;
    for (const char c : doc) {
        if (escaped) {
            escaped = false;
            continue;
        }
        if (c == '\\') {
            escaped = true;
            continue;
        }
        if (c == '"') {
            inString = !inString;
            continue;
        }
        if (inString)
            continue;
        brace += (c == '{') - (c == '}');
        bracket += (c == '[') - (c == ']');
        EXPECT_GE(brace, 0);
        EXPECT_GE(bracket, 0);
    }
    EXPECT_FALSE(inString);
    EXPECT_EQ(brace, 0);
    EXPECT_EQ(bracket, 0);
}

} // namespace

// ------------------------------------------------- stat registry ----

TEST(StatRegistry, CountersGaugesDistributions)
{
    StatRegistry reg;
    const auto c = reg.counter("engine.iterations");
    const auto g = reg.gauge("engine.migrations.pending");
    const auto d = reg.distribution("serve.queue.depth");
    EXPECT_TRUE(c.valid() && g.valid() && d.valid());
    EXPECT_FALSE(StatRegistry::Handle().valid());
    EXPECT_EQ(reg.size(), 3u);

    reg.add(c);
    reg.add(c, 4);
    EXPECT_EQ(reg.counterValue("engine.iterations"), 5);

    reg.set(g, 2.0);
    reg.set(g, 7.5); // last write wins
    EXPECT_EQ(reg.gaugeValue("engine.migrations.pending"), 7.5);

    reg.observe(d, 3.0);
    reg.observe(d, 1.0);
    reg.observe(d, 5.0);
    const DistributionView v = reg.distributionView("serve.queue.depth");
    EXPECT_EQ(v.count, 3);
    EXPECT_EQ(v.min, 1.0);
    EXPECT_EQ(v.max, 5.0);
    EXPECT_DOUBLE_EQ(v.mean(), 3.0);
    EXPECT_GT(v.stddev(), 0.0);

    EXPECT_TRUE(reg.contains("engine.iterations"));
    EXPECT_FALSE(reg.contains("engine.unknown"));
    EXPECT_EQ(reg.kindOf("serve.queue.depth"), StatKind::Distribution);
}

TEST(StatRegistry, EmptyDistributionReadsZero)
{
    StatRegistry reg;
    reg.distribution("serve.kv.reserved_tokens");
    const DistributionView v =
        reg.distributionView("serve.kv.reserved_tokens");
    EXPECT_EQ(v.count, 0);
    EXPECT_EQ(v.mean(), 0.0);
    EXPECT_EQ(v.stddev(), 0.0);
    EXPECT_EQ(v.min, 0.0);
    EXPECT_EQ(v.max, 0.0);
}

TEST(StatRegistry, SameNameResolvesToSameHandle)
{
    StatRegistry reg;
    const auto a = reg.counter("fault.events_applied");
    const auto b = reg.counter("fault.events_applied");
    reg.add(a);
    reg.add(b);
    EXPECT_EQ(reg.counterValue("fault.events_applied"), 2);
    EXPECT_EQ(reg.size(), 1u);
}

TEST(StatRegistryDeathTest, KindMismatchPanics)
{
    StatRegistry reg;
    reg.counter("engine.iterations");
    EXPECT_DEATH(reg.gauge("engine.iterations"), "kind");
}

TEST(StatRegistry, MergeFoldsByName)
{
    StatRegistry a, b;
    a.add(a.counter("n"), 3);
    b.add(b.counter("n"), 4);
    b.add(b.counter("only_b"), 1);
    a.observe(a.distribution("d"), 1.0);
    b.observe(b.distribution("d"), 9.0);
    b.set(b.gauge("g"), 2.5);

    a.merge(b);
    EXPECT_EQ(a.counterValue("n"), 7);
    EXPECT_EQ(a.counterValue("only_b"), 1);
    const DistributionView d = a.distributionView("d");
    EXPECT_EQ(d.count, 2);
    EXPECT_EQ(d.min, 1.0);
    EXPECT_EQ(d.max, 9.0);
    EXPECT_EQ(a.gaugeValue("g"), 2.5);
}

TEST(StatRegistry, MergedInOrderIsWorkerCountIndependent)
{
    // The sweep idiom: one registry per cell, written concurrently by
    // however many workers, merged in grid order afterwards. The
    // merged JSON must not depend on which thread produced which
    // registry — only on the vector order.
    constexpr int kCells = 8;
    const auto fill = [](StatRegistry &reg, int cell) {
        const auto c = reg.counter("cell.visits");
        const auto d = reg.distribution("cell.value");
        for (int i = 0; i <= cell; ++i) {
            reg.add(c);
            reg.observe(d, 0.1 * (cell + 1) + i);
        }
    };

    // Serial reference.
    std::vector<StatRegistry> serial(kCells);
    for (int i = 0; i < kCells; ++i)
        fill(serial[i], i);

    // Concurrent: each thread owns a disjoint slot (the TSan target).
    std::vector<StatRegistry> parallel(kCells);
    std::vector<std::thread> threads;
    threads.reserve(kCells);
    for (int i = 0; i < kCells; ++i)
        threads.emplace_back([&parallel, &fill, i] {
            fill(parallel[i], i);
        });
    for (std::thread &t : threads)
        t.join();

    const std::string a = StatRegistry::mergedInOrder(serial).toJson();
    const std::string b = StatRegistry::mergedInOrder(parallel).toJson();
    EXPECT_EQ(a, b);
    expectBalancedJson(a);
}

TEST(StatRegistry, JsonIsDeterministicAndOrdered)
{
    StatRegistry reg;
    reg.add(reg.counter("z.last"), 2);
    reg.observe(reg.distribution("a.first"), 1.5);
    reg.set(reg.gauge("m.middle"), 3.0);

    const std::string doc = reg.toJson();
    expectBalancedJson(doc);
    // Lexicographic emission: a.first < m.middle < z.last.
    const std::size_t pa = doc.find("a.first");
    const std::size_t pm = doc.find("m.middle");
    const std::size_t pz = doc.find("z.last");
    ASSERT_NE(pa, std::string::npos);
    ASSERT_NE(pm, std::string::npos);
    ASSERT_NE(pz, std::string::npos);
    EXPECT_LT(pa, pm);
    EXPECT_LT(pm, pz);
    EXPECT_EQ(doc, reg.toJson());
}

// ------------------------------------------------------ trace sink ----

TEST(TraceSink, JsonIsStructurallyValidAndDeterministic)
{
    const auto emit = [](TraceSink &t) {
        t.processName(0, "engine");
        t.threadName(0, 0, "iterations");
        t.span(0, 0, "engine", "attn", 0.0, 1e-4,
               {{"layer", TraceSink::num(1.5)},
                {"note", TraceSink::str("quoted \"x\"\n")}});
        t.instant(0, 0, "fault", "fault_events", 5e-5);
        t.counter(0, "queue", 1e-4,
                  {{"depth", TraceSink::num(static_cast<long long>(3))}});
    };
    TraceSink a, b;
    emit(a);
    emit(b);
    EXPECT_EQ(a.eventCount(), b.eventCount());
    EXPECT_GE(a.eventCount(), 3u);
    EXPECT_EQ(a.toJson(), b.toJson());
    expectBalancedJson(a.toJson());
    // Required trace-event fields are present.
    EXPECT_NE(a.toJson().find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(a.toJson().find("\"ph\""), std::string::npos);
}

TEST(TraceSink, EmptySinkStillSerialises)
{
    const TraceSink t;
    EXPECT_EQ(t.eventCount(), 0u);
    expectBalancedJson(t.toJson());
}

// ----------------------------------------- observation is free ----

TEST(ObsServe, AttachingObserversKeepsReportBitwiseIdentical)
{
    const System sys = testSystem();
    const ServeConfig sc = testServeConfig(24);

    ServeSimulator plain(sys.mapping(), sc);
    const ServeReport a = plain.run();

    TraceSink trace;
    ServeSimulator observed(sys.mapping(), sc);
    observed.setTrace(&trace);
    const ServeReport b = observed.run();

    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.ttftP50, b.ttftP50);
    EXPECT_EQ(a.ttftP99, b.ttftP99);
    EXPECT_EQ(a.tpotP99, b.tpotP99);
    EXPECT_EQ(a.latencyP99, b.latencyP99);
    EXPECT_EQ(a.throughputTokensPerSec, b.throughputTokensPerSec);
    EXPECT_EQ(a.goodputRequestsPerSec, b.goodputRequestsPerSec);
    ASSERT_EQ(a.requests.size(), b.requests.size());
    for (std::size_t i = 0; i < a.requests.size(); ++i) {
        EXPECT_EQ(a.requests[i].finishTime, b.requests[i].finishTime);
        EXPECT_EQ(a.requests[i].firstTokenTime,
                  b.requests[i].firstTokenTime);
    }
    EXPECT_GT(trace.eventCount(), 0u);
}

TEST(ObsServe, TraceIsByteDeterministicAcrossRuns)
{
    const System sys = testSystem();
    ServeConfig sc = testServeConfig(24);
    FaultScenarioSpec spec;
    spec.startIteration = 30;
    sc.faults = makeFaultScenario(FaultScenarioKind::NodeLoss,
                                  sys.mapping().topology(), spec);

    const auto traced = [&]() {
        TraceSink t;
        ServeSimulator sim(sys.mapping(), sc);
        sim.setTrace(&t);
        sim.run();
        return t.toJson();
    };
    const std::string a = traced();
    const std::string b = traced();
    EXPECT_EQ(a, b);
    expectBalancedJson(a);
    // Request lifecycle spans and the fault instant both made it in.
    EXPECT_NE(a.find("\"decode\""), std::string::npos);
    EXPECT_NE(a.find("\"request\""), std::string::npos);
    EXPECT_NE(a.find("\"fault\""), std::string::npos);
}

TEST(ObsServe, PublishedStatsAgreeWithReport)
{
    const System sys = testSystem();
    ServeConfig sc = testServeConfig(32);
    FaultScenarioSpec spec;
    spec.startIteration = 30;
    sc.faults = makeFaultScenario(FaultScenarioKind::NodeLoss,
                                  sys.mapping().topology(), spec);

    ServeSimulator sim(sys.mapping(), sc);
    const ServeReport r = sim.run();
    const StatRegistry &stats = sim.stats();

    EXPECT_EQ(stats.counterValue("engine.iterations"), r.iterations);
    const std::int64_t completed =
        static_cast<std::int64_t>(r.requests.size()) - r.shedRequests -
        r.failedRequests;
    EXPECT_EQ(stats.counterValue("serve.sched.completed"), completed);
    // Admission counts events, not requests: an evicted request is
    // re-admitted after its retry backoff.
    EXPECT_GE(stats.counterValue("serve.sched.admitted"),
              completed + r.failedRequests);
    EXPECT_LE(stats.counterValue("serve.sched.admitted"),
              static_cast<std::int64_t>(r.requests.size()) +
                  r.retriesTotal);
    EXPECT_EQ(stats.counterValue("serve.sched.evictions"),
              r.retriesTotal);
    EXPECT_EQ(stats.counterValue("serve.sched.shed"), r.shedRequests);
    EXPECT_EQ(stats.counterValue("serve.sched.failed"),
              r.failedRequests);
    EXPECT_EQ(stats.counterValue("fault.events_applied"),
              r.faultEventsApplied);
    const DistributionView q =
        stats.distributionView("serve.queue.depth");
    EXPECT_EQ(q.count, static_cast<std::int64_t>(r.trace.size()));
    expectBalancedJson(stats.toJson());
}

TEST(ObsEngine, DirectAttachPublishesPhases)
{
    const System sys = testSystem();
    EngineConfig ec;
    ec.model = qwen3();
    ec.workload.mode = GatingMode::MixedScenario;
    ec.workload.seed = 5;
    ec.balancer = BalancerKind::NonInvasive;

    StatRegistry stats;
    TraceSink trace;
    InferenceEngine engine(sys.mapping(), ec);
    ObsHooks hooks;
    hooks.stats = &stats;
    hooks.trace = &trace;
    engine.attachObs(hooks);
    engine.run(6);

    EXPECT_EQ(stats.counterValue("engine.iterations"), 6);
    const DistributionView attn =
        stats.distributionView("engine.phase.attn_compute_s");
    EXPECT_EQ(attn.count, 6);
    EXPECT_GT(attn.min, 0.0);
    EXPECT_EQ(stats.distributionView("engine.iter.layer_s").count, 6);
    EXPECT_GT(trace.eventCount(), 0u);
}

// ---------------------------------------------------- hw counters ----

TEST(HwCounters, UnavailableFallsBackToZeros)
{
    HwCounters counters;
    counters.start();
    // A little work so an available PMU has something to count.
    volatile double sink = 0.0;
    for (int i = 0; i < 10000; ++i)
        sink = sink + static_cast<double>(i) * 1.000001;
    const HwCounterValues v = counters.stop();
    if (!counters.available()) {
        EXPECT_FALSE(v.available);
        EXPECT_EQ(v.cycles, 0u);
        EXPECT_EQ(v.instructions, 0u);
        EXPECT_EQ(v.cacheMisses, 0u);
        EXPECT_EQ(v.dtlbMisses, 0u);
        EXPECT_EQ(v.ipc(), 0.0);
    } else {
        EXPECT_TRUE(v.available);
        EXPECT_GT(v.cycles, 0u);
        EXPECT_GT(v.instructions, 0u);
        EXPECT_GT(v.ipc(), 0.0);
    }
}

TEST(HwCounters, StopWithoutStartIsSafe)
{
    HwCounters counters;
    const HwCounterValues v = counters.stop();
    if (!counters.available())
        EXPECT_EQ(v.cycles, 0u);
    EXPECT_GE(v.ipc(), 0.0);
}
