/**
 * @file
 * Tests for the fleet-scale serving front-end (src/cluster/):
 *  - the 1-replica identity: a RoundRobin fleet of one always-active
 *    replica reproduces a bare ServeSimulator run bitwise — report and
 *    published stats — both fault-free and under a Cascade fault plan;
 *  - router policies: eligibility gating, per-policy choices and
 *    tie-breaks, round-robin cursor fairness, seeded power-of-two
 *    determinism, scenario-affinity homing with linear probing;
 *  - fleet determinism: equal configs give bitwise-equal reports and
 *    byte-equal stat registries, and fleet sweep cells under
 *    SweepRunner --jobs 2 match --jobs 1 bitwise;
 *  - heterogeneous fleets (WSC next to DGX) conserve every request;
 *  - autoscaler life-cycle: cold starts charge the spin-up delay,
 *    drained replicas park empty, scale events are time-ordered;
 *  - the sweep grid's replica/router axes: innermost ordering, at()
 *    inversion, and seed retro-compatibility with pre-cluster grids.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "cluster/cluster.hh"
#include "core/moentwine.hh"
#include "sweep/sweep.hh"

using namespace moentwine;

namespace {

/** Small, fast 4×4 ER-mapped WSC shared by the cluster tests. */
SystemConfig
testSystemConfig()
{
    SystemConfig sc;
    sc.platform = PlatformKind::WscEr;
    sc.meshN = 4;
    sc.tp = 4;
    return sc;
}

/** Compact per-replica serving config sized for unit tests. */
ServeConfig
testServeConfig(ArrivalKind kind, uint64_t seed)
{
    ServeConfig sc;
    sc.engine.model = qwen3();
    sc.engine.workload.seed = seed;
    sc.engine.balancer = BalancerKind::NonInvasive;
    sc.engine.alpha = 0.5;
    sc.engine.beta = 5;
    sc.arrival.kind = kind;
    sc.arrival.ratePerSec = 60.0;
    sc.arrival.promptMeanTokens = 128;
    sc.arrival.promptMaxTokens = 1024;
    sc.arrival.outputMeanTokens = 24;
    sc.arrival.outputMaxTokens = 128;
    sc.arrival.mixDriftPeriodSec = 1.0;
    sc.arrival.seed = seed;
    sc.scheduler.kvBudgetTokens = 8192;
    sc.scheduler.maxRunningRequests = 16;
    sc.scheduler.prefillChunkTokens = 256;
    sc.numRequests = 24;
    return sc;
}

/** A 1-replica fleet serving exactly the bare simulator's stream. */
FleetConfig
mirrorFleetConfig(const ServeConfig &sc)
{
    FleetConfig fc;
    ReplicaConfig rc;
    rc.system = testSystemConfig();
    rc.serve = sc;
    fc.replicas = {rc};
    fc.arrival = sc.arrival;
    fc.numRequests = sc.numRequests;
    fc.router = RouterPolicy::RoundRobin;
    fc.slo = sc.slo;
    return fc;
}

/** Bitwise ServeReport comparison (EXPECT, so mismatches enumerate). */
void
expectReportsBitwiseEqual(const ServeReport &a, const ServeReport &b)
{
    ASSERT_EQ(a.requests.size(), b.requests.size());
    for (std::size_t i = 0; i < a.requests.size(); ++i) {
        EXPECT_EQ(a.requests[i].arrivalTime, b.requests[i].arrivalTime);
        EXPECT_EQ(a.requests[i].admitTime, b.requests[i].admitTime);
        EXPECT_EQ(a.requests[i].firstTokenTime,
                  b.requests[i].firstTokenTime);
        EXPECT_EQ(a.requests[i].finishTime, b.requests[i].finishTime);
        EXPECT_EQ(a.requests[i].outcome, b.requests[i].outcome);
        EXPECT_EQ(a.requests[i].retries, b.requests[i].retries);
    }
    ASSERT_EQ(a.trace.size(), b.trace.size());
    for (std::size_t i = 0; i < a.trace.size(); ++i) {
        EXPECT_EQ(a.trace[i].time, b.trace[i].time);
        EXPECT_EQ(a.trace[i].queueDepth, b.trace[i].queueDepth);
        EXPECT_EQ(a.trace[i].running, b.trace[i].running);
        EXPECT_EQ(a.trace[i].kvReserved, b.trace[i].kvReserved);
    }
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.ttftP50, b.ttftP50);
    EXPECT_EQ(a.ttftP95, b.ttftP95);
    EXPECT_EQ(a.ttftP99, b.ttftP99);
    EXPECT_EQ(a.tpotP50, b.tpotP50);
    EXPECT_EQ(a.tpotP95, b.tpotP95);
    EXPECT_EQ(a.tpotP99, b.tpotP99);
    EXPECT_EQ(a.latencyP50, b.latencyP50);
    EXPECT_EQ(a.latencyP99, b.latencyP99);
    EXPECT_EQ(a.throughputTokensPerSec, b.throughputTokensPerSec);
    EXPECT_EQ(a.goodputRequestsPerSec, b.goodputRequestsPerSec);
    EXPECT_EQ(a.sloAttainment, b.sloAttainment);
    EXPECT_EQ(a.shedRequests, b.shedRequests);
    EXPECT_EQ(a.failedRequests, b.failedRequests);
    EXPECT_EQ(a.retriesTotal, b.retriesTotal);
    EXPECT_EQ(a.faultEventsApplied, b.faultEventsApplied);
    EXPECT_EQ(a.liveDeviceFractionMin, b.liveDeviceFractionMin);
    ASSERT_EQ(a.faultWindows.size(), b.faultWindows.size());
    for (std::size_t i = 0; i < a.faultWindows.size(); ++i) {
        EXPECT_EQ(a.faultWindows[i].eventIndex,
                  b.faultWindows[i].eventIndex);
        EXPECT_EQ(a.faultWindows[i].startTime,
                  b.faultWindows[i].startTime);
        EXPECT_EQ(a.faultWindows[i].endTime, b.faultWindows[i].endTime);
        EXPECT_EQ(a.faultWindows[i].completed,
                  b.faultWindows[i].completed);
        EXPECT_EQ(a.faultWindows[i].goodputRequestsPerSec,
                  b.faultWindows[i].goodputRequestsPerSec);
        EXPECT_EQ(a.faultWindows[i].latencyP99,
                  b.faultWindows[i].latencyP99);
    }
}

/** The serve-layer stats the bare simulator and a 1-replica fleet
 *  must publish identically (the fleet registry adds fleet.* on top). */
void
expectServeStatsEqual(const StatRegistry &bare, const StatRegistry &fleet)
{
    for (const char *counter :
         {"serve.sched.admitted", "serve.sched.completed",
          "serve.sched.shed", "serve.sched.failed",
          "serve.sched.evictions", "serve.sched.idle_iterations"}) {
        EXPECT_EQ(bare.counterValue(counter), fleet.counterValue(counter))
            << counter;
    }
    for (const char *dist :
         {"serve.queue.depth", "serve.kv.reserved_tokens"}) {
        const DistributionView a = bare.distributionView(dist);
        const DistributionView b = fleet.distributionView(dist);
        EXPECT_EQ(a.count, b.count) << dist;
        EXPECT_EQ(a.sum, b.sum) << dist;
        EXPECT_EQ(a.min, b.min) << dist;
        EXPECT_EQ(a.max, b.max) << dist;
    }
}

/** Pressure snapshot helper for the router unit tests. */
ReplicaPressure
pressure(int replica, int queue, int running, double kvFraction,
         bool routable = true, int kvBudget = 8192)
{
    ReplicaPressure p;
    p.replica = replica;
    p.queueDepth = queue;
    p.runningCount = running;
    p.kvFraction = kvFraction;
    p.kvBudgetTokens = kvBudget;
    p.routable = routable;
    return p;
}

/** A minimal request for routing decisions. */
ServeRequest
routeRequest(ScenarioKind scenario = ScenarioKind::Chat,
             int promptTokens = 64, int outputTokens = 8)
{
    ServeRequest r;
    r.id = 0;
    r.scenario = scenario;
    r.arrivalTime = 0.0;
    r.promptTokens = promptTokens;
    r.outputTokens = outputTokens;
    return r;
}

} // namespace

// ------------------------------------------------ 1-replica identity ----

TEST(FleetIdentity, SingleReplicaMatchesBareSimulatorBitwise)
{
    const ServeConfig sc = testServeConfig(ArrivalKind::Bursty, 7);
    const System sys = System::make(testSystemConfig());
    ServeSimulator bare(sys.mapping(), sc);
    const ServeReport bareReport = bare.run();

    FleetSimulator fleet(mirrorFleetConfig(sc));
    const FleetReport fleetReport = fleet.run();

    ASSERT_EQ(fleetReport.replicas.size(), 1u);
    EXPECT_EQ(fleetReport.frontDoorShed, 0);
    EXPECT_EQ(fleetReport.dispatched[0], sc.numRequests);
    expectReportsBitwiseEqual(bareReport, fleetReport.replicas[0]);
    expectServeStatsEqual(bare.stats(), fleet.stats());

    // The fleet aggregates collapse to the single replica's figures.
    EXPECT_EQ(fleetReport.makespan, bareReport.makespan);
    EXPECT_EQ(fleetReport.ttftP99, bareReport.ttftP99);
    EXPECT_EQ(fleetReport.throughputTokensPerSec,
              bareReport.throughputTokensPerSec);
    EXPECT_TRUE(fleetReport.scaleEvents.empty());
}

TEST(FleetIdentity, SingleReplicaMatchesBareUnderCascadeFaults)
{
    ServeConfig sc = testServeConfig(ArrivalKind::Poisson, 11);
    sc.numRequests = 40;
    const System sys = System::make(testSystemConfig());
    FaultScenarioSpec spec;
    spec.startIteration = 10;
    spec.spacing = 15;
    sc.faults = makeFaultScenario(FaultScenarioKind::Cascade,
                                  sys.mapping().topology(), spec);

    ServeSimulator bare(sys.mapping(), sc);
    const ServeReport bareReport = bare.run();
    EXPECT_GT(bareReport.faultEventsApplied, 0);

    FleetSimulator fleet(mirrorFleetConfig(sc));
    const FleetReport fleetReport = fleet.run();

    ASSERT_EQ(fleetReport.replicas.size(), 1u);
    expectReportsBitwiseEqual(bareReport, fleetReport.replicas[0]);
    expectServeStatsEqual(bare.stats(), fleet.stats());
    EXPECT_EQ(fleetReport.retriesTotal, bareReport.retriesTotal);
    EXPECT_EQ(fleetReport.failedRequests, bareReport.failedRequests);
}

// ----------------------------------------------------------- router ----

TEST(RequestRouter, EligibilityGatesRoutingAndShedsWhenNoneFit)
{
    RequestRouter router(RouterPolicy::LeastQueueDepth);
    const ServeRequest r = routeRequest();

    // Unroutable and too-small replicas never receive dispatches.
    std::vector<ReplicaPressure> pressures = {
        pressure(0, 0, 0, 0.0, /*routable=*/false),
        pressure(1, 5, 3, 0.5),
        pressure(2, 0, 0, 0.0, true, /*kvBudget=*/16), // request > budget
    };
    EXPECT_EQ(router.route(r, pressures), 1);

    pressures[1].routable = false;
    EXPECT_EQ(router.route(r, pressures), -1); // front-door shed
}

TEST(RequestRouter, RoundRobinCyclesPastIneligibleReplicas)
{
    RequestRouter router(RouterPolicy::RoundRobin);
    const ServeRequest r = routeRequest();
    std::vector<ReplicaPressure> pressures = {
        pressure(0, 0, 0, 0.0), pressure(1, 0, 0, 0.0),
        pressure(2, 0, 0, 0.0)};

    EXPECT_EQ(router.route(r, pressures), 0);
    EXPECT_EQ(router.route(r, pressures), 1);
    EXPECT_EQ(router.route(r, pressures), 2);
    EXPECT_EQ(router.route(r, pressures), 0); // wraps

    pressures[1].routable = false; // drained mid-cycle
    EXPECT_EQ(router.route(r, pressures), 2);
    EXPECT_EQ(router.route(r, pressures), 0);
}

TEST(RequestRouter, LeastPressurePoliciesBreakTiesDeterministically)
{
    const ServeRequest r = routeRequest();
    const std::vector<ReplicaPressure> pressures = {
        pressure(0, 4, 2, 0.50), pressure(1, 2, 2, 0.50),
        pressure(2, 2, 2, 0.25), pressure(3, 6, 1, 0.25)};

    // least_kv: 2 and 3 tie on KV fraction; 2 has the shorter queue.
    EXPECT_EQ(RequestRouter(RouterPolicy::LeastKvPressure)
                  .route(r, pressures),
              2);
    // least_queue: 1 and 2 tie on queue depth; 2 has the lower KV.
    EXPECT_EQ(RequestRouter(RouterPolicy::LeastQueueDepth)
                  .route(r, pressures),
              2);
}

TEST(RequestRouter, PowerOfTwoIsSeedDeterministicAndPicksLessLoaded)
{
    const ServeRequest r = routeRequest();
    const std::vector<ReplicaPressure> pressures = {
        pressure(0, 8, 8, 0.9), pressure(1, 0, 1, 0.1),
        pressure(2, 4, 4, 0.5), pressure(3, 2, 2, 0.3)};

    // Equal seeds give the identical decision sequence.
    RequestRouter a(RouterPolicy::PowerOfTwo, 99);
    RequestRouter b(RouterPolicy::PowerOfTwo, 99);
    for (int i = 0; i < 64; ++i) {
        const int pick = a.route(r, pressures);
        EXPECT_EQ(pick, b.route(r, pressures));
        ASSERT_GE(pick, 0);
        ASSERT_LT(pick, 4);
    }

    // With two candidates the draw is forced: the less loaded wins.
    const std::vector<ReplicaPressure> two = {pressure(0, 8, 8, 0.9),
                                              pressure(1, 0, 1, 0.1)};
    RequestRouter forced(RouterPolicy::PowerOfTwo, 7);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(forced.route(r, two), 1);

    // A single candidate needs no draw at all.
    const std::vector<ReplicaPressure> one = {pressure(5, 3, 3, 0.4)};
    EXPECT_EQ(RequestRouter(RouterPolicy::PowerOfTwo).route(r, one), 5);
}

TEST(RequestRouter, ScenarioAffinityHomesAndProbesLinearly)
{
    RequestRouter router(RouterPolicy::ScenarioAffinity);
    std::vector<ReplicaPressure> pressures = {
        pressure(0, 0, 0, 0.0), pressure(1, 0, 0, 0.0),
        pressure(2, 0, 0, 0.0)};

    const auto home = [&](ScenarioKind s) {
        return static_cast<int>(static_cast<std::size_t>(s) %
                                pressures.size());
    };
    for (const ScenarioKind s : allScenarios()) {
        EXPECT_EQ(router.route(routeRequest(s), pressures), home(s));
    }

    // A drained home degrades to its upward neighbour (mod N).
    const ScenarioKind s = allScenarios().front();
    pressures[static_cast<std::size_t>(home(s))].routable = false;
    EXPECT_EQ(router.route(routeRequest(s), pressures),
              (home(s) + 1) % 3);
}

TEST(RequestRouter, PolicyNamesAreStable)
{
    EXPECT_EQ(routerPolicyName(RouterPolicy::RoundRobin), "round_robin");
    EXPECT_EQ(routerPolicyName(RouterPolicy::LeastKvPressure),
              "least_kv");
    EXPECT_EQ(routerPolicyName(RouterPolicy::LeastQueueDepth),
              "least_queue");
    EXPECT_EQ(routerPolicyName(RouterPolicy::PowerOfTwo), "power_of_two");
    EXPECT_EQ(routerPolicyName(RouterPolicy::ScenarioAffinity),
              "scenario_affinity");
    EXPECT_EQ(allRouterPolicies().size(), 5u);
}

// ------------------------------------------------ fleet determinism ----

TEST(FleetSimulator, EqualConfigsAreBitwiseDeterministic)
{
    FleetConfig fc;
    ReplicaConfig rc;
    rc.system = testSystemConfig();
    rc.serve = testServeConfig(ArrivalKind::Bursty, 3);
    fc.replicas = {rc, rc, rc};
    fc.arrival = rc.serve.arrival;
    fc.arrival.ratePerSec = 200.0;
    fc.numRequests = 36;
    fc.router = RouterPolicy::PowerOfTwo;
    fc.routerSeed = 17;

    FleetSimulator simA(fc);
    const FleetReport a = simA.run();
    FleetSimulator simB(fc);
    const FleetReport b = simB.run();

    ASSERT_EQ(a.replicas.size(), b.replicas.size());
    EXPECT_EQ(a.dispatched, b.dispatched);
    for (std::size_t i = 0; i < a.replicas.size(); ++i)
        expectReportsBitwiseEqual(a.replicas[i], b.replicas[i]);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.ttftP99, b.ttftP99);
    EXPECT_EQ(a.goodputRequestsPerSec, b.goodputRequestsPerSec);
    // The merged registries agree byte-for-byte, not just numerically.
    EXPECT_EQ(simA.stats().toJson(), simB.stats().toJson());
}

TEST(FleetSimulator, RoundRobinSpreadsDispatchesEvenly)
{
    FleetConfig fc;
    ReplicaConfig rc;
    rc.system = testSystemConfig();
    rc.serve = testServeConfig(ArrivalKind::Poisson, 5);
    fc.replicas = {rc, rc, rc, rc};
    fc.arrival = rc.serve.arrival;
    fc.numRequests = 34; // not a multiple of 4 on purpose
    fc.router = RouterPolicy::RoundRobin;

    FleetSimulator fleet(fc);
    const FleetReport r = fleet.run();

    EXPECT_EQ(r.frontDoorShed, 0);
    int sum = 0;
    int lo = fc.numRequests, hi = 0;
    for (const int d : r.dispatched) {
        sum += d;
        lo = std::min(lo, d);
        hi = std::max(hi, d);
    }
    EXPECT_EQ(sum, fc.numRequests);
    // Every replica stays eligible at these loads, so the cursor hands
    // out perfectly balanced shares (±1 for the remainder).
    EXPECT_LE(hi - lo, 1);
}

TEST(FleetSimulator, HeterogeneousFleetConservesEveryRequest)
{
    ReplicaConfig wsc;
    wsc.system = testSystemConfig();
    wsc.serve = testServeConfig(ArrivalKind::Diurnal, 9);

    ReplicaConfig dgx;
    dgx.system.platform = PlatformKind::DgxCluster;
    dgx.system.dgxNodes = 4;
    dgx.system.tp = 4;
    dgx.serve = testServeConfig(ArrivalKind::Diurnal, 9);

    FleetConfig fc;
    fc.replicas = {wsc, dgx};
    fc.arrival = wsc.serve.arrival;
    fc.arrival.ratePerSec = 150.0;
    fc.numRequests = 30;
    fc.router = RouterPolicy::LeastQueueDepth;

    FleetSimulator fleet(fc);
    ASSERT_EQ(fleet.systems().size(), 2u);
    EXPECT_NE(fleet.systems()[0]->name(), fleet.systems()[1]->name());

    const FleetReport r = fleet.run();
    EXPECT_EQ(r.totalRequests, fc.numRequests);
    EXPECT_EQ(r.completedRequests + r.shedRequests + r.failedRequests +
                  r.frontDoorShed,
              r.totalRequests);
    // Both platforms actually served traffic.
    EXPECT_GT(r.dispatched[0], 0);
    EXPECT_GT(r.dispatched[1], 0);
    EXPECT_GT(r.makespan, 0.0);
    EXPECT_GT(r.throughputTokensPerSec, 0.0);
}

// --------------------------------------------------------- autoscaler ----

TEST(Autoscaler, EvaluatesOnCadenceAndRespectsFloors)
{
    AutoscalerConfig ac;
    ac.enabled = true;
    ac.evalPeriodSec = 0.25;
    ac.scaleUpThreshold = 8.0;
    ac.scaleDownThreshold = 2.0;
    ac.minReplicas = 2;
    Autoscaler scaler(ac);

    EXPECT_TRUE(scaler.enabled());
    EXPECT_EQ(scaler.nextEval(), 0.25);
    // Overloaded with a parked spare: scale up.
    EXPECT_EQ(scaler.evaluate(10.0, 2, 1, 0), ScaleDecision::Up);
    EXPECT_EQ(scaler.nextEval(), 0.5);
    // Still overloaded but a start is pending: hold.
    EXPECT_EQ(scaler.evaluate(10.0, 2, 1, 1), ScaleDecision::Hold);
    // Idle but at the floor: hold.
    EXPECT_EQ(scaler.evaluate(0.0, 2, 0, 0), ScaleDecision::Hold);
    // Idle above the floor: scale down.
    EXPECT_EQ(scaler.evaluate(0.0, 3, 0, 0), ScaleDecision::Down);
    EXPECT_EQ(scaler.nextEval(), 1.25);

    AutoscalerConfig off;
    EXPECT_FALSE(Autoscaler(off).enabled());
    EXPECT_TRUE(std::isinf(Autoscaler(off).nextEval()));
}

TEST(FleetSimulator, AutoscalerColdStartsAndParksReplicas)
{
    FleetConfig fc;
    ReplicaConfig rc;
    rc.system = testSystemConfig();
    rc.serve = testServeConfig(ArrivalKind::Bursty, 13);
    fc.replicas = {rc, rc};
    fc.replicas[1].startParked = true;
    fc.arrival = rc.serve.arrival;
    fc.arrival.ratePerSec = 400.0; // saturate the lone active replica
    fc.numRequests = 48;
    fc.autoscaler.enabled = true;
    fc.autoscaler.evalPeriodSec = 0.02;
    fc.autoscaler.spinUpDelaySec = 0.05;
    fc.autoscaler.scaleUpThreshold = 4.0;
    fc.autoscaler.scaleDownThreshold = 0.5;

    FleetSimulator fleet(fc);
    const FleetReport r = fleet.run();

    // The overload woke the spare: a Start followed by an Activate
    // exactly one spin-up delay later, and the spare then served.
    const ScaleEvent *start = nullptr;
    const ScaleEvent *activate = nullptr;
    double lastTime = 0.0;
    for (const ScaleEvent &e : r.scaleEvents) {
        EXPECT_GE(e.time, lastTime) << "scale events out of order";
        lastTime = e.time;
        if (e.kind == ScaleEventKind::Start && start == nullptr)
            start = &e;
        if (e.kind == ScaleEventKind::Activate && activate == nullptr)
            activate = &e;
    }
    ASSERT_NE(start, nullptr);
    ASSERT_NE(activate, nullptr);
    EXPECT_EQ(start->replica, 1);
    EXPECT_EQ(activate->replica, 1);
    EXPECT_EQ(activate->time, start->time + fc.autoscaler.spinUpDelaySec);
    EXPECT_GT(r.dispatched[1], 0);

    // A drained replica always finishes its work before parking.
    for (std::size_t i = 0; i + 1 < r.scaleEvents.size(); ++i) {
        if (r.scaleEvents[i].kind != ScaleEventKind::Drain)
            continue;
        bool parked = false;
        for (std::size_t j = i + 1; j < r.scaleEvents.size(); ++j) {
            if (r.scaleEvents[j].kind == ScaleEventKind::Park &&
                r.scaleEvents[j].replica == r.scaleEvents[i].replica) {
                EXPECT_GE(r.scaleEvents[j].time, r.scaleEvents[i].time);
                parked = true;
                break;
            }
        }
        (void)parked; // a drain at stream end may outlive the run
    }
    EXPECT_EQ(r.completedRequests + r.shedRequests + r.failedRequests +
                  r.frontDoorShed,
              r.totalRequests);
    EXPECT_EQ(scaleEventKindName(ScaleEventKind::Start),
              std::string("start"));
}

// -------------------------------------------------- fleet sweep cells ----

TEST(FleetSweep, ParallelFleetCellsByteIdenticalToSerial)
{
    SweepGrid grid;
    grid.arrivals = {ArrivalKind::Poisson, ArrivalKind::Bursty};
    grid.replicaCounts = {1, 2};
    grid.routers = {RouterPolicy::RoundRobin,
                    RouterPolicy::LeastKvPressure};

    const auto cellFn = [](const SweepCell &cell) {
        FleetConfig fc;
        ReplicaConfig rc;
        rc.system = testSystemConfig();
        rc.serve = testServeConfig(cell.point.arrivalKind(),
                                   cell.point.seed());
        fc.replicas.assign(
            static_cast<std::size_t>(cell.point.replicaCount()), rc);
        fc.arrival = rc.serve.arrival;
        fc.numRequests = 12;
        fc.router = cell.point.routerPolicy();
        fc.routerSeed = cell.point.seed(7);
        FleetSimulator fleet(fc);
        const FleetReport r = fleet.run();
        SweepResult row;
        row.label = routerPolicyName(cell.point.routerPolicy()) + " x" +
            std::to_string(cell.point.replicaCount());
        row.add("goodput", r.goodputRequestsPerSec);
        row.add("ttft_p99", r.ttftP99);
        row.add("makespan", r.makespan);
        row.add("front_door_shed", r.frontDoorShed);
        return row;
    };

    const auto serial = SweepRunner(1).run(grid, cellFn);
    const auto parallel = SweepRunner(2).run(grid, cellFn);
    ASSERT_EQ(serial.size(), grid.cells());
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].label, parallel[i].label);
        ASSERT_EQ(serial[i].metrics.size(), parallel[i].metrics.size());
        for (std::size_t m = 0; m < serial[i].metrics.size(); ++m) {
            // Bitwise: thread count must not perturb a single ULP.
            EXPECT_EQ(serial[i].metrics[m].second,
                      parallel[i].metrics[m].second)
                << "row " << i;
        }
    }
}

// -------------------------------------------------- sweep grid axes ----

TEST(SweepGridTest, ClusterAxesAreInnermostAndPreserveSeeds)
{
    SweepGrid grid;
    grid.models = {qwen3()};
    grid.arrivals = {ArrivalKind::Poisson, ArrivalKind::Bursty};

    // Seeds of the pre-cluster grid, before the axes exist.
    const uint64_t seed0 = grid.pointAt(0).seed();
    const uint64_t seed1 = grid.pointAt(1).seed();

    grid.replicaCounts = {1, 4};
    grid.routers = {RouterPolicy::RoundRobin, RouterPolicy::PowerOfTwo,
                    RouterPolicy::ScenarioAffinity};
    EXPECT_EQ(grid.cells(), 12u);

    const SweepPoint p0 = grid.pointAt(0);
    const SweepPoint p1 = grid.pointAt(1);
    const SweepPoint p3 = grid.pointAt(3);
    const SweepPoint p6 = grid.pointAt(6);
    EXPECT_EQ(p0.router, 0);
    EXPECT_EQ(p1.router, 1); // router advances first (innermost)
    EXPECT_EQ(p0.replicas, 0);
    EXPECT_EQ(p3.replicas, 1); // then the replica axis
    EXPECT_EQ(p6.arrival, 1);
    EXPECT_EQ(p0.replicaCount(), 1);
    EXPECT_EQ(p3.replicaCount(), 4);
    EXPECT_EQ(p1.routerPolicy(), RouterPolicy::PowerOfTwo);
    EXPECT_EQ(grid.at(0, -1, -1, -1, -1, -1, -1, 1, -1, 1, 2), 11u);

    // Round-trip: at() inverts pointAt() on the new axes.
    for (std::size_t i = 0; i < grid.cells(); ++i) {
        const SweepPoint p = grid.pointAt(i);
        EXPECT_EQ(grid.at(p.model, p.system, p.tp, p.balancer,
                          p.schedule, p.gating, p.param, p.arrival,
                          p.fault, p.replicas, p.router),
                  i);
    }

    // Retro-compat: the cluster axes only join the seed hash when the
    // cell actually sweeps them, so pre-cluster grids keep their
    // streams.
    SweepGrid preCluster;
    preCluster.models = {qwen3()};
    preCluster.arrivals = {ArrivalKind::Poisson, ArrivalKind::Bursty};
    EXPECT_EQ(preCluster.pointAt(0).seed(), seed0);
    EXPECT_EQ(preCluster.pointAt(1).seed(), seed1);
    // And swept cluster cells get distinct streams per coordinate.
    EXPECT_NE(grid.pointAt(0).seed(), grid.pointAt(1).seed());
    EXPECT_NE(grid.pointAt(0).seed(), grid.pointAt(3).seed());

    // An unswept point reports the defaults.
    SweepGrid bare;
    bare.params = {1.0};
    EXPECT_EQ(bare.pointAt(0).replicaCount(), 1);
    EXPECT_EQ(bare.pointAt(0).routerPolicy(), RouterPolicy::RoundRobin);
}
