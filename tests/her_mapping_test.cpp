/**
 * @file
 * Tests for Hierarchical ER-Mapping on multi-wafer systems.
 */

#include <gtest/gtest.h>

#include <set>

#include "mapping/er_mapping.hh"
#include "mapping/her_mapping.hh"
#include "mapping/parallelism.hh"
#include "topology/mesh.hh"

using namespace moentwine;

namespace {

MeshTopology
fourWafers4x4()
{
    return MeshTopology::waferRow(4, 4);
}

} // namespace

TEST(HerMapping, GroupsStayWithinWafer)
{
    const MeshTopology mesh = fourWafers4x4();
    const HierarchicalErMapping her(mesh, ParallelismConfig{2, 2});
    for (const auto &group : her.tpGroups()) {
        std::set<int> wafers;
        for (const DeviceId d : group)
            wafers.insert(mesh.waferOf(d));
        EXPECT_EQ(wafers.size(), 1u);
    }
}

TEST(HerMapping, GroupCountScalesWithWafers)
{
    const MeshTopology mesh = fourWafers4x4();
    const HierarchicalErMapping her(mesh, ParallelismConfig{2, 2});
    EXPECT_EQ(her.tp(), 4);
    EXPECT_EQ(her.dp(), 16); // 4 groups per wafer × 4 wafers
}

TEST(HerMapping, FtdsStayWithinWafer)
{
    const MeshTopology mesh = fourWafers4x4();
    const HierarchicalErMapping her(mesh, ParallelismConfig{2, 2});
    for (const auto &ftd : her.ftds()) {
        std::set<int> wafers;
        for (const DeviceId d : ftd)
            wafers.insert(mesh.waferOf(d));
        EXPECT_EQ(wafers.size(), 1u);
    }
}

TEST(HerMapping, InterWaferRingsCoverAllWafers)
{
    const MeshTopology mesh = fourWafers4x4();
    const HierarchicalErMapping her(mesh, ParallelismConfig{2, 2});
    EXPECT_EQ(her.interWaferRings().size(),
              std::size_t(mesh.devicesPerWafer()));
    for (const auto &ring : her.interWaferRings()) {
        EXPECT_EQ(ring.size(), std::size_t(mesh.numWafers()));
        std::set<int> wafers;
        for (const DeviceId d : ring)
            wafers.insert(mesh.waferOf(d));
        EXPECT_EQ(wafers.size(), std::size_t(mesh.numWafers()));
    }
}

TEST(HerMapping, MirrorOnPreservesLocalCoordinate)
{
    const MeshTopology mesh = fourWafers4x4();
    const HierarchicalErMapping her(mesh, ParallelismConfig{2, 2});
    const DeviceId d = mesh.deviceAt(1, 2); // wafer 0, local (1,2)
    const DeviceId m = her.mirrorOn(d, 2);
    EXPECT_EQ(mesh.waferOf(m), 2);
    EXPECT_EQ(mesh.coordOf(m).row, 1);
    EXPECT_EQ(mesh.coordOf(m).col, 2 + 2 * 4);
}

TEST(HerMapping, MirrorOnOwnWaferIsIdentity)
{
    const MeshTopology mesh = fourWafers4x4();
    const HierarchicalErMapping her(mesh, ParallelismConfig{2, 2});
    EXPECT_EQ(her.mirrorOn(5, mesh.waferOf(5)), 5);
}

TEST(HerMapping, DispatchSourceIsOnExpertWafer)
{
    // The HER property: after the hierarchical all-reduce, every
    // dispatch is served from the expert's own wafer (Fig. 10(c)).
    const MeshTopology mesh = fourWafers4x4();
    const HierarchicalErMapping her(mesh, ParallelismConfig{2, 2});
    for (int g = 0; g < her.dp(); g += 3) {
        for (int r = 0; r < her.tp(); ++r) {
            for (DeviceId e = 0; e < mesh.numDevices(); e += 7) {
                const DeviceId src = her.dispatchSource(g, r, e, true);
                EXPECT_EQ(mesh.waferOf(src), mesh.waferOf(e));
            }
        }
    }
}

TEST(HerMapping, DispatchWithoutAllGatherUsesOwner)
{
    const MeshTopology mesh = fourWafers4x4();
    const HierarchicalErMapping her(mesh, ParallelismConfig{2, 2});
    const DeviceId owner = her.tpGroups()[0][1];
    // An expert on a remote wafer still fetches from the owner.
    const DeviceId remote = mesh.waferDevices(3).front();
    EXPECT_EQ(her.dispatchSource(0, 1, remote, false), owner);
}

TEST(HerMapping, HierarchicalAllReduceBeatsFlatEr)
{
    // Fig. 13(d): on multi-wafer systems HER's two-stage all-reduce is
    // cheaper than one flat entwined ring spanning wafers.
    const MeshTopology mesh = fourWafers4x4();
    const HierarchicalErMapping her(mesh, ParallelismConfig{2, 2});
    const auto flatPar = decomposeTp(4, mesh.rows(), mesh.cols());
    const ErMapping flat(mesh, flatPar);
    const double bytes = 256 * 2.0 * 4096;
    EXPECT_LT(her.allReduce(bytes, true).time,
              flat.allReduce(bytes, true).time);
}

TEST(HerMapping, SingleWaferDegeneratesToEr)
{
    const MeshTopology mesh = MeshTopology::singleWafer(4);
    const HierarchicalErMapping her(mesh, ParallelismConfig{2, 2});
    const ErMapping er(mesh, ParallelismConfig{2, 2});
    const double bytes = 1e6;
    EXPECT_NEAR(her.allReduce(bytes, true).time,
                er.allReduce(bytes, true).time, 1e-12);
}

TEST(HerMapping, StaggeredRings)
{
    const MeshTopology mesh = fourWafers4x4();
    const HierarchicalErMapping her(mesh, ParallelismConfig{2, 2});
    EXPECT_TRUE(her.staggeredRings());
    EXPECT_EQ(her.name(), "HER-Mapping");
}
