/**
 * @file
 * Equivalence tests for the all-pairs route cache: cached PathView
 * routes and per-pair scalars must match freshly computed XY / switch
 * routes for every device pair, on mesh and switch-cluster topologies,
 * with the cache enabled and with the no-cache test hook engaged.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <new>
#include <vector>

#include "network/traffic.hh"
#include "topology/mesh.hh"
#include "topology/switch_cluster.hh"

// Counting global allocator: lets the AddFlowIsAllocationFree test
// assert the cached hot path performs zero heap allocation.
namespace {
std::size_t g_allocCount = 0;
} // namespace

void *
operator new(std::size_t size)
{
    ++g_allocCount;
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

using namespace moentwine;

namespace {

/** Assert cached route()/scalars equal fresh computeRoute() walks. */
void
expectCacheMatchesFresh(const Topology &topo)
{
    const int devices = topo.numDevices();
    for (DeviceId s = 0; s < devices; ++s) {
        for (DeviceId d = 0; d < devices; ++d) {
            const auto fresh = topo.computeRoute(s, d);
            const PathView cached = topo.route(s, d);
            ASSERT_EQ(cached.size(), fresh.size())
                << "pair " << s << "->" << d;
            EXPECT_TRUE(std::equal(cached.begin(), cached.end(),
                                   fresh.begin()))
                << "pair " << s << "->" << d;

            EXPECT_EQ(topo.hops(s, d), static_cast<int>(fresh.size()));
            double lat = 0.0;
            double invBw = 0.0;
            double minBw = 0.0;
            for (const LinkId l : fresh) {
                const Link &link = topo.links()[std::size_t(l)];
                lat += link.latency;
                invBw += 1.0 / link.bandwidth;
                minBw = minBw == 0.0 ? link.bandwidth
                                     : std::min(minBw, link.bandwidth);
            }
            EXPECT_DOUBLE_EQ(topo.pathLatency(s, d), lat);
            EXPECT_DOUBLE_EQ(topo.pathInvBandwidthSum(s, d), invBw);
            if (!fresh.empty()) {
                EXPECT_DOUBLE_EQ(topo.pathBandwidth(s, d), minBw);
            }
        }
    }
}

} // namespace

TEST(RouteCache, MeshAllPairsMatchFreshXyRoutes)
{
    const MeshTopology mesh = MeshTopology::singleWafer(5);
    expectCacheMatchesFresh(mesh);
}

TEST(RouteCache, MultiWaferMeshAllPairsMatch)
{
    const MeshTopology mesh = MeshTopology::waferRow(2, 4);
    expectCacheMatchesFresh(mesh);
}

TEST(RouteCache, SwitchClusterAllPairsMatch)
{
    const SwitchClusterTopology dgx = SwitchClusterTopology::dgx(3);
    expectCacheMatchesFresh(dgx);
}

TEST(RouteCache, DisabledCacheStillAnswersCorrectly)
{
    MeshTopology mesh = MeshTopology::waferRow(2, 3);
    // Prime the cache, then disable it: queries must fall back to
    // fresh derivation and stay correct.
    (void)mesh.route(0, mesh.numDevices() - 1);
    mesh.disableRouteCache();
    for (DeviceId s = 0; s < mesh.numDevices(); ++s) {
        for (DeviceId d = 0; d < mesh.numDevices(); ++d) {
            const auto fresh = mesh.computeRoute(s, d);
            const PathView uncached = mesh.route(s, d);
            ASSERT_EQ(uncached.size(), fresh.size());
            EXPECT_TRUE(std::equal(uncached.begin(), uncached.end(),
                                   fresh.begin()));
            EXPECT_EQ(mesh.hops(s, d), static_cast<int>(fresh.size()));
        }
    }
    mesh.enableRouteCache();
    expectCacheMatchesFresh(mesh);
}

TEST(RouteCache, FlowTimeMatchesManualEquationOne)
{
    const MeshTopology mesh = MeshTopology::singleWafer(4);
    const double bytes = 3e6;
    for (DeviceId s = 0; s < mesh.numDevices(); ++s) {
        for (DeviceId d = 0; d < mesh.numDevices(); ++d) {
            double manual = 0.0;
            for (const LinkId l : mesh.computeRoute(s, d)) {
                const Link &link = mesh.links()[std::size_t(l)];
                manual += bytes / link.bandwidth + link.latency;
            }
            EXPECT_NEAR(flowTime(mesh, s, d, bytes), manual,
                        1e-12 + 1e-9 * manual);
        }
    }
}

TEST(RouteCache, LinkBetweenMatchesLinearScan)
{
    const SwitchClusterTopology dgx = SwitchClusterTopology::dgx(2);
    const auto &links = dgx.links();
    for (NodeId a = 0; a < dgx.numNodes(); ++a) {
        for (NodeId b = 0; b < dgx.numNodes(); ++b) {
            LinkId expect = -1;
            for (std::size_t l = 0; l < links.size(); ++l) {
                if (links[l].src == a && links[l].dst == b) {
                    expect = static_cast<LinkId>(l);
                    break;
                }
            }
            EXPECT_EQ(dgx.linkBetween(a, b), expect)
                << "pair " << a << "->" << b;
        }
    }
}

TEST(RouteCache, AddFlowIsAllocationFreeOnCachedPath)
{
    const MeshTopology mesh = MeshTopology::waferRow(2, 4);
    PhaseTraffic traffic(mesh);
    // Warm up: the first query builds the all-pairs route table.
    traffic.addFlow(0, mesh.numDevices() - 1, 64.0);

    const std::size_t before = g_allocCount;
    for (DeviceId s = 0; s < mesh.numDevices(); ++s)
        for (DeviceId d = 0; d < mesh.numDevices(); ++d)
            traffic.addFlow(s, d, 128.0);
    EXPECT_EQ(g_allocCount, before)
        << "cached addFlow must not allocate";
}

TEST(RouteCache, PathViewIsStableAcrossQueries)
{
    const MeshTopology mesh = MeshTopology::singleWafer(4);
    // Arena-backed views must stay valid while other pairs are queried.
    const PathView first = mesh.route(0, 15);
    const auto firstCopy =
        std::vector<LinkId>(first.begin(), first.end());
    for (DeviceId s = 0; s < mesh.numDevices(); ++s)
        for (DeviceId d = 0; d < mesh.numDevices(); ++d)
            (void)mesh.route(s, d);
    EXPECT_TRUE(std::equal(first.begin(), first.end(),
                           firstCopy.begin()));
}
