/**
 * @file
 * Tests for the rebalance trigger (Eq. 2) and the greedy /
 * topology-aware balancers (Algorithm 1).
 */

#include <gtest/gtest.h>

#include "balancer/balancer.hh"
#include "common/stats.hh"
#include "topology/mesh.hh"

using namespace moentwine;

// ------------------------------------------------------- trigger ----

TEST(Trigger, FiresWhenThresholdExceeded)
{
    RebalanceTrigger t(1.0, 0);
    EXPECT_FALSE(t.poll(0.5));
    EXPECT_TRUE(t.poll(0.6)); // cumulative 1.1 > 1.0
}

TEST(Trigger, ResetsAfterFiring)
{
    RebalanceTrigger t(1.0, 0);
    t.poll(0.8);
    EXPECT_TRUE(t.poll(0.5));
    EXPECT_DOUBLE_EQ(t.accumulated(), 0.0);
    EXPECT_FALSE(t.poll(0.5));
}

TEST(Trigger, BetaEnforcesCooldown)
{
    RebalanceTrigger t(0.1, 5);
    EXPECT_TRUE(t.poll(1.0)); // first firing allowed immediately
    // Large imbalance, but within beta iterations — suppressed.
    for (int i = 0; i < 5; ++i)
        EXPECT_FALSE(t.poll(1.0)) << "iteration " << i;
    EXPECT_TRUE(t.poll(1.0));
}

TEST(Trigger, BetaZeroAllowsBackToBack)
{
    RebalanceTrigger t(0.1, 0);
    EXPECT_TRUE(t.poll(1.0));
    EXPECT_TRUE(t.poll(1.0));
}

TEST(Trigger, ZeroImbalanceNeverFires)
{
    RebalanceTrigger t(0.5, 0);
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(t.poll(0.0));
}

// ------------------------------------------------------- helpers ----

namespace {

/** Skewed loads: expert e gets weight 1/(e+1). */
std::vector<double>
skewedLoads(int experts, double scale = 1000.0)
{
    std::vector<double> loads(static_cast<std::size_t>(experts));
    for (int e = 0; e < experts; ++e)
        loads[std::size_t(e)] = scale / (e + 1);
    return loads;
}

double
peakHeat(const ExpertPlacement &p, const std::vector<double> &loads)
{
    return maxOf(p.deviceHeats(loads));
}

} // namespace

// -------------------------------------------------------- greedy ----

TEST(GreedyBalancer, ReducesPeakHeat)
{
    ExpertPlacement p(16, 16, 1);
    const auto loads = skewedLoads(16);
    const double before = peakHeat(p, loads);
    GreedyBalancer gb;
    gb.rebalance(loads, p);
    EXPECT_LT(peakHeat(p, loads), before);
}

TEST(GreedyBalancer, ReturnsMigrationSteps)
{
    ExpertPlacement p(16, 16, 1);
    GreedyBalancer gb;
    const auto steps = gb.rebalance(skewedLoads(16), p);
    EXPECT_FALSE(steps.empty());
    for (const auto &s : steps) {
        EXPECT_NE(s.srcDevice, s.dstDevice);
        EXPECT_TRUE(p.hosts(s.dstDevice, s.expert));
    }
}

TEST(GreedyBalancer, IdempotentOnSameLoads)
{
    ExpertPlacement p(16, 16, 1);
    const auto loads = skewedLoads(16);
    GreedyBalancer gb;
    gb.rebalance(loads, p);
    // Re-planning with identical loads keeps the same target: no new
    // weight copies needed.
    const auto steps = gb.rebalance(loads, p);
    EXPECT_TRUE(steps.empty());
}

TEST(GreedyBalancer, UniformLoadsNeedNoSteps)
{
    ExpertPlacement p(16, 16, 1);
    const std::vector<double> loads(16, 10.0);
    GreedyBalancer gb;
    EXPECT_TRUE(gb.rebalance(loads, p).empty());
}

TEST(GreedyBalancer, RespectsSlotCapacity)
{
    ExpertPlacement p(16, 16, 1);
    GreedyBalancer gb;
    gb.rebalance(skewedLoads(16), p);
    for (DeviceId d = 0; d < 16; ++d)
        EXPECT_GE(p.freeSlots(d), 0);
}

TEST(GreedyBalancer, ZeroShadowSlotsNoSteps)
{
    ExpertPlacement p(16, 16, 0);
    GreedyBalancer gb;
    EXPECT_TRUE(gb.rebalance(skewedLoads(16), p).empty());
}

// ------------------------------------------------ topology-aware ----

TEST(TopoBalancer, ReducesPeakHeat)
{
    const MeshTopology mesh = MeshTopology::singleWafer(4);
    ExpertPlacement p(16, 16, 1);
    const auto loads = skewedLoads(16);
    const double before = peakHeat(p, loads);
    TopologyAwareBalancer tb(mesh);
    tb.rebalance(loads, p);
    EXPECT_LT(peakHeat(p, loads), before);
}

TEST(TopoBalancer, BalanceQualityMatchesGreedy)
{
    // Algorithm 1 claims equal balance at lower migration cost; allow
    // a small tolerance on the peak heat.
    const MeshTopology mesh = MeshTopology::singleWafer(4);
    const auto loads = skewedLoads(16);
    ExpertPlacement pg(16, 16, 1);
    ExpertPlacement pt(16, 16, 1);
    GreedyBalancer gb;
    TopologyAwareBalancer tb(mesh);
    gb.rebalance(loads, pg);
    tb.rebalance(loads, pt);
    EXPECT_LE(peakHeat(pt, loads), peakHeat(pg, loads) * 1.10);
}

TEST(TopoBalancer, ShorterMigrationsThanGreedy)
{
    const MeshTopology mesh = MeshTopology::singleWafer(4);
    const auto loads = skewedLoads(16);
    ExpertPlacement pg(16, 16, 1);
    ExpertPlacement pt(16, 16, 1);
    GreedyBalancer gb;
    TopologyAwareBalancer tb(mesh);
    const auto gs = gb.rebalance(loads, pg);
    const auto ts = tb.rebalance(loads, pt);
    ASSERT_FALSE(gs.empty());
    ASSERT_FALSE(ts.empty());
    auto avgHops = [&](const std::vector<MigrationStep> &steps) {
        double total = 0.0;
        for (const auto &s : steps)
            total += mesh.hops(s.srcDevice, s.dstDevice);
        return total / steps.size();
    };
    EXPECT_LE(avgHops(ts), avgHops(gs));
}

TEST(TopoBalancer, SourceIsAnExistingReplica)
{
    const MeshTopology mesh = MeshTopology::singleWafer(4);
    ExpertPlacement p(16, 16, 1);
    TopologyAwareBalancer tb(mesh);
    const auto steps = tb.rebalance(skewedLoads(16), p);
    for (const auto &s : steps) {
        // Source must be the expert's native device here (only replica
        // before the re-plan).
        EXPECT_EQ(s.srcDevice, s.expert % 16);
    }
}

TEST(TopoBalancer, PeakNeverIncreases)
{
    const MeshTopology mesh = MeshTopology::singleWafer(4);
    TopologyAwareBalancer tb(mesh);
    // Sweep several load shapes; Algorithm 1 must never worsen peak.
    for (const double zipfScale : {10.0, 100.0, 5000.0}) {
        ExpertPlacement p(16, 16, 2);
        const auto loads = skewedLoads(16, zipfScale);
        const double before = peakHeat(p, loads);
        tb.rebalance(loads, p);
        EXPECT_LE(peakHeat(p, loads), before + 1e-9);
    }
}

TEST(TopoBalancer, WorksWithFewExpertsManyDevices)
{
    // Mixtral-style E/D < 1 regime.
    const MeshTopology mesh = MeshTopology::singleWafer(4);
    ExpertPlacement p(8, 16, 1);
    TopologyAwareBalancer tb(mesh);
    const auto loads = skewedLoads(8);
    const double before = peakHeat(p, loads);
    tb.rebalance(loads, p);
    EXPECT_LE(peakHeat(p, loads), before + 1e-9);
}

TEST(TopoBalancer, Names)
{
    const MeshTopology mesh = MeshTopology::singleWafer(2);
    EXPECT_EQ(GreedyBalancer{}.name(), "Greedy");
    EXPECT_EQ(TopologyAwareBalancer{mesh}.name(), "Topology-aware");
}
