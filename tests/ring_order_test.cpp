/**
 * @file
 * Property tests for the grid ring orderings used by TP-group rings.
 */

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "mapping/ring_order.hh"

using namespace moentwine;

TEST(GridCycle, SingleCell)
{
    const auto c = gridCycle(1, 1);
    ASSERT_EQ(c.size(), 1u);
    EXPECT_EQ(maxCycleStep(c), 0);
}

TEST(GridCycle, LineOfTwo)
{
    const auto c = gridCycle(1, 2);
    ASSERT_EQ(c.size(), 2u);
    EXPECT_EQ(maxCycleStep(c), 1);
}

TEST(GridCycle, ZigzagLineStepAtMostTwo)
{
    for (const int n : {3, 4, 5, 6, 7, 8, 9, 16}) {
        const auto c = gridCycle(1, n);
        EXPECT_EQ(c.size(), std::size_t(n));
        EXPECT_LE(maxCycleStep(c), 2) << "n=" << n;
    }
}

TEST(GridCycle, VerticalLineTransposed)
{
    const auto c = gridCycle(5, 1);
    EXPECT_EQ(c.size(), 5u);
    EXPECT_LE(maxCycleStep(c), 2);
    for (const auto &[r, col] : c)
        EXPECT_EQ(col, 0);
}

TEST(GridCycle, TwoByTwoIsUnitCycle)
{
    const auto c = gridCycle(2, 2);
    EXPECT_EQ(c.size(), 4u);
    EXPECT_EQ(maxCycleStep(c), 1);
}

TEST(GridCycle, PaperExampleFourByFourEntwined)
{
    // The 4×4 TP=4 example uses a 2×2 member grid; ER scales each unit
    // step by the stride 2 → "two-hop entwined rings".
    const auto c = gridCycle(2, 2);
    EXPECT_EQ(maxCycleStep(c), 1);
}

class GridCycleProperty
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(GridCycleProperty, VisitsEveryCellOnce)
{
    const auto [m, n] = GetParam();
    const auto c = gridCycle(m, n);
    EXPECT_EQ(c.size(), std::size_t(m * n));
    std::set<GridPos> seen(c.begin(), c.end());
    EXPECT_EQ(seen.size(), c.size());
    for (const auto &[r, col] : c) {
        EXPECT_GE(r, 0);
        EXPECT_LT(r, m);
        EXPECT_GE(col, 0);
        EXPECT_LT(col, n);
    }
}

TEST_P(GridCycleProperty, UnitStepsWhenAreaEven)
{
    const auto [m, n] = GetParam();
    if ((m * n) % 2 != 0 || m == 1 || n == 1)
        GTEST_SKIP() << "unit-step Hamiltonian cycle requires even "
                        "area and 2-D grid";
    const auto c = gridCycle(m, n);
    EXPECT_EQ(maxCycleStep(c), 1);
}

TEST_P(GridCycleProperty, ConsecutiveStepsBoundedExceptClosure)
{
    const auto [m, n] = GetParam();
    const auto c = gridCycle(m, n);
    if (c.size() < 2)
        GTEST_SKIP();
    // All steps except (possibly) the closing edge stay within 2.
    for (std::size_t i = 0; i + 1 < c.size(); ++i) {
        const int step = std::abs(c[i].first - c[i + 1].first) +
            std::abs(c[i].second - c[i + 1].second);
        EXPECT_LE(step, 2) << "at index " << i << " of " << m << "x"
                           << n;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GridCycleProperty,
    ::testing::Values(std::make_pair(1, 1), std::make_pair(1, 4),
                      std::make_pair(1, 9), std::make_pair(2, 2),
                      std::make_pair(2, 3), std::make_pair(2, 4),
                      std::make_pair(3, 2), std::make_pair(3, 4),
                      std::make_pair(4, 4), std::make_pair(4, 6),
                      std::make_pair(3, 3), std::make_pair(5, 5),
                      std::make_pair(6, 6), std::make_pair(8, 1)));
