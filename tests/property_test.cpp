/**
 * @file
 * Cross-cutting property sweeps: invariants that must hold for every
 * (platform, model, mapping) combination rather than for one worked
 * example. These catch regressions that config-specific unit tests
 * miss.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/moentwine.hh"

using namespace moentwine;

namespace {

/** Platform sweep: (kind, meshN, wafers, tp, dgxNodes). */
using PlatformParam = std::tuple<PlatformKind, int, int, int, int>;

System
makeSystem(const PlatformParam &p)
{
    SystemConfig sc;
    sc.platform = std::get<0>(p);
    sc.meshN = std::get<1>(p);
    sc.wafers = std::get<2>(p);
    sc.tp = std::get<3>(p);
    sc.dgxNodes = std::get<4>(p);
    return System::make(sc);
}

} // namespace

class PlatformProperty : public ::testing::TestWithParam<PlatformParam>
{
};

TEST_P(PlatformProperty, CommTimesFiniteAndPositive)
{
    const System sys = makeSystem(GetParam());
    for (const auto &model : allModels()) {
        const auto r =
            evaluateCommunication(sys.mapping(), model, 256, true);
        EXPECT_TRUE(std::isfinite(r.allReduce));
        EXPECT_TRUE(std::isfinite(r.allToAll()));
        EXPECT_GT(r.allReduce, 0.0) << model.name;
        EXPECT_GE(r.allToAll(), 0.0) << model.name;
    }
}

TEST_P(PlatformProperty, DispatchCombineNearSymmetry)
{
    // Combine is the exact reverse of dispatch (same volumes), but XY
    // routing is direction-dependent: reversed flows may congest
    // different links. The two phase times must stay close, not equal.
    const System sys = makeSystem(GetParam());
    const auto r =
        evaluateCommunication(sys.mapping(), deepseekV3(), 256, true);
    EXPECT_NEAR(r.dispatch, r.combine, 0.15 * r.dispatch);
}

TEST_P(PlatformProperty, MappingPartitionInvariants)
{
    const System sys = makeSystem(GetParam());
    const Mapping &m = sys.mapping();
    EXPECT_EQ(m.dp() * m.tp(), m.numDevices());
    for (DeviceId d = 0; d < m.numDevices(); ++d) {
        EXPECT_GE(m.tpGroupOf(d), 0);
        EXPECT_LT(m.tpGroupOf(d), m.dp());
        EXPECT_GE(m.ftdOf(d), 0);
    }
}

TEST_P(PlatformProperty, AllReduceMonotoneInVolume)
{
    const System sys = makeSystem(GetParam());
    const double small = sys.mapping().allReduce(1e5, true).time;
    const double large = sys.mapping().allReduce(1e7, true).time;
    EXPECT_GT(large, small);
}

TEST_P(PlatformProperty, EngineStepsAreFiniteAndConsistent)
{
    const System sys = makeSystem(GetParam());
    EngineConfig ec;
    ec.model = qwen3();
    ec.decodeTokensPerGroup = 64;
    ec.balancer = BalancerKind::NonInvasive;
    ec.alpha = 0.5;
    InferenceEngine engine(sys.mapping(), ec);
    for (const auto &s : engine.run(5)) {
        EXPECT_TRUE(std::isfinite(s.layerTime(4)));
        EXPECT_GE(s.loadMax, s.loadAvg);
        EXPECT_GE(s.moeTime, s.moeComputeOnly);
        EXPECT_GE(s.moeTime, s.moeMemoryOnly);
        EXPECT_DOUBLE_EQ(s.migrationOverhead, 0.0); // NI never exposes
    }
}

INSTANTIATE_TEST_SUITE_P(
    Platforms, PlatformProperty,
    ::testing::Values(
        PlatformParam{PlatformKind::WscBaseline, 4, 1, 4, 0},
        PlatformParam{PlatformKind::WscBaseline, 6, 1, 6, 0},
        PlatformParam{PlatformKind::WscEr, 4, 1, 4, 0},
        PlatformParam{PlatformKind::WscEr, 6, 1, 4, 0},
        PlatformParam{PlatformKind::WscEr, 8, 1, 16, 0},
        PlatformParam{PlatformKind::WscEr, 4, 4, 8, 0},
        PlatformParam{PlatformKind::WscHer, 4, 4, 4, 0},
        PlatformParam{PlatformKind::WscHer, 6, 2, 6, 0},
        PlatformParam{PlatformKind::DgxCluster, 0, 1, 4, 2},
        PlatformParam{PlatformKind::DgxCluster, 0, 1, 8, 4},
        PlatformParam{PlatformKind::Nvl72, 0, 1, 4, 0}));

// ------------------------------------------------ ER dominance ----

class ErDominance
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(ErDominance, ErNeverWorseOnAllToAll)
{
    // ER-Mapping's defining guarantee: compact disjoint FTDs never
    // increase all-to-all cost relative to the baseline mapping.
    const auto [meshN, tp] = GetParam();
    SystemConfig sc;
    sc.meshN = meshN;
    sc.tp = tp;
    sc.platform = PlatformKind::WscBaseline;
    const System base = System::make(sc);
    sc.platform = PlatformKind::WscEr;
    const System er = System::make(sc);
    for (const auto &model : {deepseekV3(), qwen3()}) {
        const auto rb =
            evaluateCommunication(base.mapping(), model, 256, true);
        const auto re =
            evaluateCommunication(er.mapping(), model, 256, true);
        EXPECT_LE(re.allToAll(), rb.allToAll() * 1.001)
            << model.name << " " << meshN << "x" << meshN << " TP" << tp;
    }
}

TEST_P(ErDominance, ErAllReduceWithinStrideFactor)
{
    // The entwined-ring penalty is bounded by the larger stride.
    const auto [meshN, tp] = GetParam();
    const MeshTopology mesh = MeshTopology::singleWafer(meshN);
    const auto par = decomposeTp(tp, meshN, meshN);
    const BaselineMapping base(mesh, par);
    const ErMapping er(mesh, par);
    const double tb = base.allReduce(1e6, true).time;
    const double te = er.allReduce(1e6, true).time;
    const int stride = std::max(er.strideRows(), er.strideCols());
    EXPECT_LE(te, tb * stride * 1.5);
    EXPECT_GE(te, tb);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ErDominance,
    ::testing::Values(std::make_tuple(4, 2), std::make_tuple(4, 4),
                      std::make_tuple(4, 8), std::make_tuple(6, 4),
                      std::make_tuple(6, 6), std::make_tuple(8, 4),
                      std::make_tuple(8, 16)));

// --------------------------------------------- balancer fuzzing ----

class BalancerFuzz : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(BalancerFuzz, PeakHeatNeverIncreasesOnRandomLoads)
{
    const MeshTopology mesh = MeshTopology::singleWafer(4);
    TopologyAwareBalancer tb(mesh);
    GreedyBalancer gb;
    Rng rng(GetParam());
    for (int round = 0; round < 20; ++round) {
        std::vector<double> loads(32);
        for (double &l : loads)
            l = rng.uniform(0.0, 100.0);
        for (Balancer *b : {static_cast<Balancer *>(&tb),
                            static_cast<Balancer *>(&gb)}) {
            ExpertPlacement p(32, 16, 2);
            const double before = maxOf(p.deviceHeats(loads));
            b->rebalance(loads, p);
            EXPECT_LE(maxOf(p.deviceHeats(loads)), before + 1e-9)
                << b->name() << " seed " << GetParam() << " round "
                << round;
        }
    }
}

TEST_P(BalancerFuzz, NiMigrationsAlwaysDrainOnIdleNetwork)
{
    const MeshTopology mesh = MeshTopology::singleWafer(4);
    const ErMapping er(mesh, ParallelismConfig{2, 2});
    Rng rng(GetParam());
    std::vector<double> loads(32);
    for (double &l : loads)
        l = rng.uniform(0.0, 100.0);
    NiBalancer ni(er, 20e6);
    ExpertPlacement p(32, 16, 1);
    ni.plan(loads, p);
    const PhaseTraffic idle(mesh);
    for (int phase = 0; phase < 100 && ni.pendingCount() > 0; ++phase) {
        ni.advanceAttention(idle, 1e-3, p);
        ni.advanceMoe(idle, 1e-3, p);
    }
    EXPECT_EQ(ni.pendingCount(), 0u) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, BalancerFuzz,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

// ------------------------------------------ workload stability ----

class WorkloadSeeds : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(WorkloadSeeds, CountsConserveTokensAcrossModes)
{
    for (const GatingMode mode :
         {GatingMode::Balanced, GatingMode::SingleScenario,
          GatingMode::MixedScenario}) {
        WorkloadConfig wc;
        wc.numExperts = 64;
        wc.topK = 4;
        wc.mode = mode;
        wc.seed = GetParam();
        WorkloadGenerator gen(wc);
        const auto counts = gen.sampleCounts(3, 0, 128, 4);
        for (const auto &row : counts) {
            int sum = 0;
            for (const int c : row)
                sum += c;
            EXPECT_EQ(sum, 128 * 4);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorkloadSeeds,
                         ::testing::Values(1u, 17u, 2026u));
