/**
 * @file
 * Tests for the parallel sweep subsystem:
 *  - grid indexing: linear↔axis round trips, wildcard axes, cell
 *    counts, and the stability of per-cell seeds;
 *  - determinism: a real engine grid run with 4 workers produces rows
 *    bitwise-identical (labels and metric doubles) to a serial run, in
 *    identical order — under work stealing, per-worker engine reuse,
 *    forced NUMA replication, and affinity pinning alike;
 *  - the work-stealing scheduler: a deliberately skewed grid (one
 *    slow cell) keeps every worker busy and records steals, without
 *    perturbing a single row;
 *  - shared-system thread safety: engines sharing one
 *    shared_ptr<const System> (and, separately, one lazily-built raw
 *    topology+mapping, exercising the once-guarded cold caches) across
 *    threads produce the same timelines as engines with private
 *    copies — the route-cache/dispatch-memo regression test.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "core/moentwine.hh"
#include "sweep/sweep.hh"

using namespace moentwine;

namespace {

/** Engine config of one grid cell (the fig16-style serving setup). */
EngineConfig
cellEngineConfig(const SweepPoint &p)
{
    EngineConfig ec;
    ec.model = p.modelConfig();
    ec.schedule = SchedulingMode::DecodeOnly;
    ec.decodeTokensPerGroup = 64;
    ec.workload.mode = GatingMode::MixedScenario;
    ec.workload.mixPeriod = 30;
    ec.workload.seed = p.seed();
    ec.balancer = p.balancerKind();
    ec.alpha = 0.5;
    ec.beta = 5;
    return ec;
}

/** Run a cell's engine and fold the full timeline into metrics. */
SweepResult
runCell(const SweepCell &cell)
{
    const EngineConfig ec = cellEngineConfig(cell.point);
    InferenceEngine engine(cell.system->mapping(), ec);
    double layer = 0.0;
    double a2a = 0.0;
    double migration = 0.0;
    for (const auto &s : engine.run(12)) {
        layer += s.layerTime(ec.pipelineStages);
        a2a += s.allToAll();
        migration += s.migrationOverhead;
    }
    SweepResult row;
    row.label = cell.system->name() + " #" +
        std::to_string(cell.point.index);
    row.add("layer_s", layer);
    row.add("a2a_s", a2a);
    row.add("migration_s", migration);
    return row;
}

/** As runCell, but through the worker's persistent engine pool. */
SweepResult
runCellReused(const SweepCell &cell)
{
    const EngineConfig ec = cellEngineConfig(cell.point);
    InferenceEngine &engine =
        cell.worker->engine(cell.system->mapping(), ec);
    double layer = 0.0;
    double a2a = 0.0;
    double migration = 0.0;
    for (const auto &s : engine.run(12)) {
        layer += s.layerTime(ec.pipelineStages);
        a2a += s.allToAll();
        migration += s.migrationOverhead;
    }
    SweepResult row;
    row.label = cell.system->name() + " #" +
        std::to_string(cell.point.index);
    row.add("layer_s", layer);
    row.add("a2a_s", a2a);
    row.add("migration_s", migration);
    return row;
}

/** The engine grid the determinism tests run. */
SweepGrid
engineGrid()
{
    SweepGrid grid;
    grid.models = {qwen3(), deepseekV3()};
    SystemConfig wsc;
    wsc.platform = PlatformKind::WscEr;
    wsc.meshN = 4;
    wsc.tp = 4;
    SystemConfig dgx;
    dgx.platform = PlatformKind::DgxCluster;
    dgx.dgxNodes = 2;
    dgx.tp = 4;
    grid.systems = {wsc, dgx};
    grid.balancers = {BalancerKind::None, BalancerKind::NonInvasive,
                      BalancerKind::TopologyAware};
    return grid;
}

/** Bitwise row equality: labels, metric keys, and metric doubles. */
void
expectRowsIdentical(const std::vector<SweepResult> &a,
                    const std::vector<SweepResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].index, b[i].index);
        EXPECT_EQ(a[i].label, b[i].label) << "row " << i;
        ASSERT_EQ(a[i].metrics.size(), b[i].metrics.size());
        for (std::size_t m = 0; m < a[i].metrics.size(); ++m) {
            EXPECT_EQ(a[i].metrics[m].first, b[i].metrics[m].first);
            // Bitwise, not approximate: parallel execution must not
            // perturb a single ULP of any cell's arithmetic.
            EXPECT_EQ(a[i].metrics[m].second, b[i].metrics[m].second)
                << "row " << i << " metric "
                << a[i].metrics[m].first;
        }
    }
}

} // namespace

// ------------------------------------------------------------- grid ----

TEST(SweepGridTest, CellCountIsAxisProductWithWildcards)
{
    SweepGrid grid;
    EXPECT_EQ(grid.cells(), 1u); // all axes wildcard
    grid.models = {qwen3(), deepseekV3()};
    grid.params = {1, 2, 3};
    EXPECT_EQ(grid.cells(), 6u);
    grid.balancers = {BalancerKind::None, BalancerKind::Greedy};
    EXPECT_EQ(grid.cells(), 12u);
}

TEST(SweepGridTest, PointAtInvertsAt)
{
    const SweepGrid grid = engineGrid();
    for (std::size_t i = 0; i < grid.cells(); ++i) {
        const SweepPoint p = grid.pointAt(i);
        EXPECT_EQ(p.index, i);
        EXPECT_EQ(grid.at(p.model, p.system, p.tp, p.balancer,
                          p.schedule, p.gating, p.param),
                  i);
        EXPECT_EQ(p.tp, -1);    // unswept axes report -1
        EXPECT_EQ(p.param, -1);
    }
}

TEST(SweepGridTest, RowMajorOrderParamsInnermost)
{
    SweepGrid grid;
    grid.models = {qwen3(), deepseekV3()};
    grid.params = {10, 20};
    const SweepPoint p0 = grid.pointAt(0);
    const SweepPoint p1 = grid.pointAt(1);
    const SweepPoint p2 = grid.pointAt(2);
    EXPECT_EQ(p0.model, 0);
    EXPECT_EQ(p0.param, 0);
    EXPECT_EQ(p1.model, 0);
    EXPECT_EQ(p1.param, 1); // params advance first
    EXPECT_EQ(p2.model, 1);
    EXPECT_EQ(p2.param, 0);
}

TEST(SweepGridTest, SeedsAreStableAndDistinct)
{
    const SweepGrid grid = engineGrid();
    std::set<uint64_t> seeds;
    for (std::size_t i = 0; i < grid.cells(); ++i) {
        const uint64_t s = grid.pointAt(i).seed();
        EXPECT_EQ(s, grid.pointAt(i).seed()) << "seed not stable";
        seeds.insert(s);
    }
    // FNV-1a over distinct coordinates: no collisions on a small grid.
    EXPECT_EQ(seeds.size(), grid.cells());
    // A different base seed shifts every cell's stream.
    EXPECT_NE(grid.pointAt(0).seed(1), grid.pointAt(0).seed(2));
}

TEST(SweepGridTest, TpAxisOverridesSystemConfig)
{
    SweepGrid grid;
    SystemConfig sc;
    sc.platform = PlatformKind::WscEr;
    sc.meshN = 4;
    sc.tp = 4;
    grid.systems = {sc};
    grid.tpDegrees = {2, 8};
    EXPECT_EQ(grid.pointAt(0).systemConfig().tp, 2);
    EXPECT_EQ(grid.pointAt(1).systemConfig().tp, 8);
    EXPECT_EQ(grid.pointAt(1).tpDegree(), 8);
}

// ----------------------------------------------------------- runner ----

TEST(SweepRunnerTest, JobsFromArgsParsesBothSpellings)
{
    const char *argv1[] = {"bench", "--jobs", "3"};
    EXPECT_EQ(SweepRunner::jobsFromArgs(3, const_cast<char **>(argv1)),
              3);
    const char *argv2[] = {"bench", "50", "--jobs=7"};
    EXPECT_EQ(SweepRunner::jobsFromArgs(3, const_cast<char **>(argv2)),
              7);
    const char *argv3[] = {"bench", "50"};
    EXPECT_EQ(SweepRunner::jobsFromArgs(2, const_cast<char **>(argv3)),
              0);
}

TEST(SweepRunnerTest, JobsFromArgsLastOccurrenceWins)
{
    // The normal CLI override convention: append `--jobs 1` to any
    // command line to force a serial run.
    const char *spaced[] = {"bench", "--jobs", "8", "--jobs", "1"};
    EXPECT_EQ(SweepRunner::jobsFromArgs(5, const_cast<char **>(spaced)),
              1);
    const char *inlined[] = {"bench", "--jobs=8", "--jobs=3"};
    EXPECT_EQ(SweepRunner::jobsFromArgs(3, const_cast<char **>(inlined)),
              3);
    const char *mixed[] = {"bench", "--jobs=2", "50", "--jobs", "6"};
    EXPECT_EQ(SweepRunner::jobsFromArgs(5, const_cast<char **>(mixed)),
              6);
}

TEST(SweepRunnerJobsDeathTest, EveryJobsOccurrenceIsValidated)
{
    // Last-wins must not become last-parsed: a malformed value dies
    // loudly wherever it appears in the command line.
    const char *badLast[] = {"bench", "--jobs", "8", "--jobs", "bogus"};
    EXPECT_EXIT(
        SweepRunner::jobsFromArgs(5, const_cast<char **>(badLast)),
        ::testing::ExitedWithCode(1), "positive integer");
    const char *badFirst[] = {"bench", "--jobs=0x4", "--jobs", "8"};
    EXPECT_EXIT(
        SweepRunner::jobsFromArgs(4, const_cast<char **>(badFirst)),
        ::testing::ExitedWithCode(1), "positive integer");
}

TEST(SweepRunnerTest, AffinityFromArgsFlagBeatsEnv)
{
    const char *flag[] = {"bench", "--affinity"};
    const char *plain[] = {"bench"};
    ASSERT_EQ(unsetenv("MOENTWINE_AFFINITY"), 0);
    EXPECT_TRUE(
        SweepRunner::affinityFromArgs(2, const_cast<char **>(flag)));
    EXPECT_FALSE(
        SweepRunner::affinityFromArgs(1, const_cast<char **>(plain)));
    ASSERT_EQ(setenv("MOENTWINE_AFFINITY", "1", 1), 0);
    EXPECT_TRUE(
        SweepRunner::affinityFromArgs(1, const_cast<char **>(plain)));
    ASSERT_EQ(setenv("MOENTWINE_AFFINITY", "0", 1), 0);
    EXPECT_FALSE(
        SweepRunner::affinityFromArgs(1, const_cast<char **>(plain)));
    // The flag wins over an env opt-out.
    EXPECT_TRUE(
        SweepRunner::affinityFromArgs(2, const_cast<char **>(flag)));
    ASSERT_EQ(unsetenv("MOENTWINE_AFFINITY"), 0);
}

TEST(SweepRunnerJobsDeathTest, MalformedAffinityEnvIsFatal)
{
    const char *plain[] = {"bench"};
    ASSERT_EQ(setenv("MOENTWINE_AFFINITY", "yes", 1), 0);
    EXPECT_EXIT(
        SweepRunner::affinityFromArgs(1, const_cast<char **>(plain)),
        ::testing::ExitedWithCode(1), "'1' or '0'");
    ASSERT_EQ(unsetenv("MOENTWINE_AFFINITY"), 0);
}

TEST(SweepRunnerTest, ResolvePositiveRequestWins)
{
    EXPECT_EQ(SweepRunner::resolveJobs(5), 5);
    EXPECT_GE(SweepRunner::resolveJobs(0), 1);
}

TEST(SweepRunnerTest, ParallelRowsIdenticalToSerial)
{
    const SweepGrid grid = engineGrid();
    const SweepRunner serial(1);
    const SweepRunner parallel(4);
    const auto serialRows = serial.run(grid, runCell);
    const auto parallelRows = parallel.run(grid, runCell);
    ASSERT_EQ(serialRows.size(), grid.cells());
    expectRowsIdentical(serialRows, parallelRows);
    // Rows arrive in grid order regardless of completion order.
    for (std::size_t i = 0; i < serialRows.size(); ++i)
        EXPECT_EQ(parallelRows[i].index, i);
}

TEST(SweepRunnerTest, StealingUnderSkewKeepsAllWorkersBusy)
{
    // One cell takes ~250 ms while the other 31 take ~1 ms: the slow
    // cell's owner parks on it, and the stealing workers must drain
    // the rest of its block. Rows stay bitwise-identical to serial —
    // scheduling freedom never reaches the output.
    SweepGrid grid;
    grid.params.resize(32);
    for (std::size_t i = 0; i < grid.params.size(); ++i)
        grid.params[i] = static_cast<double>(i);

    const auto cell = [](const SweepCell &c) {
        std::this_thread::sleep_for(std::chrono::milliseconds(
            c.point.parameter() == 0.0 ? 250 : 1));
        SweepResult row;
        row.label = "p" + std::to_string(c.point.param);
        row.add("twice", c.point.parameter() * 2.0);
        return row;
    };

    const SweepRunner serial(1);
    const auto serialRows = serial.run(grid, cell);

    SweepOptions opts;
    opts.jobs = 4;
    SweepRunStats stats;
    const auto rows = SweepRunner(opts).run(grid, cell, &stats);

    expectRowsIdentical(serialRows, rows);
    EXPECT_TRUE(stats.stealing);
    EXPECT_EQ(stats.workers, 4);
    EXPECT_EQ(stats.cells, 32);
    // The slow cell pins worker 0 for ~250 ms while its remaining 7
    // block cells sit in its deque; the other workers finish their
    // ~8 ms blocks and must steal them.
    EXPECT_GE(stats.steals, 1);
    ASSERT_EQ(stats.workerItems.size(), 4u);
    for (int w = 0; w < 4; ++w)
        EXPECT_GE(stats.workerItems[static_cast<std::size_t>(w)], 1)
            << "worker " << w << " executed nothing";
}

TEST(SweepRunnerTest, EngineReuseBitwiseAgainstRebuild)
{
    // The determinism lynchpin of per-worker engine reuse: the same
    // grid through the worker's engine pool (reset-and-reuse), through
    // per-cell rebuilds, and serially must produce bitwise-identical
    // rows — a reset engine is indistinguishable from a fresh one.
    const SweepGrid grid = engineGrid();

    const SweepRunner serial(1);
    const auto serialRows = serial.run(grid, runCellReused);

    SweepOptions reuse;
    reuse.jobs = 4;
    reuse.reuseWorkerState = true;
    SweepRunStats reuseStats;
    const auto reusedRows =
        SweepRunner(reuse).run(grid, runCellReused, &reuseStats);

    SweepOptions rebuild;
    rebuild.jobs = 4;
    rebuild.reuseWorkerState = false;
    SweepRunStats rebuildStats;
    const auto rebuiltRows =
        SweepRunner(rebuild).run(grid, runCellReused, &rebuildStats);

    expectRowsIdentical(serialRows, reusedRows);
    expectRowsIdentical(serialRows, rebuiltRows);
    // And against the per-cell-constructed baseline cell function.
    expectRowsIdentical(serialRows, serial.run(grid, runCell));

    // The reuse run actually reused: every cell beyond each worker's
    // first sighting of a platform resets instead of constructing.
    EXPECT_GT(reuseStats.engineReuses, 0);
    EXPECT_EQ(reuseStats.engineReuses + reuseStats.engineBuilds,
              static_cast<std::int64_t>(grid.cells()));
    // The rebuild baseline never reuses.
    EXPECT_EQ(rebuildStats.engineReuses, 0);
    EXPECT_EQ(rebuildStats.engineBuilds,
              static_cast<std::int64_t>(grid.cells()));
}

TEST(SweepRunnerTest, PrebuildItemsCoverEverySystemSlot)
{
    // engineGrid sweeps 2 systems × (no TP axis) = 2 slots; the
    // stealing scheduler must schedule exactly one prebuild per slot,
    // and cells count separately from prebuilds.
    const SweepGrid grid = engineGrid();
    SweepOptions opts;
    opts.jobs = 4;
    SweepRunStats stats;
    SweepRunner(opts).run(grid, runCellReused, &stats);
    EXPECT_EQ(stats.prebuilds, 2);
    EXPECT_EQ(stats.cells, static_cast<std::int64_t>(grid.cells()));
}

TEST(SweepRunnerTest, ForcedNumaReplicationIsBitwise)
{
    // numaNodesOverride=2 on a (possibly) single-socket box: workers
    // alternate between two independently built System replicas.
    // Replica builds are deterministic, so rows cannot depend on
    // which replica a cell read.
    const SweepGrid grid = engineGrid();
    const SweepRunner serial(1);
    const auto serialRows = serial.run(grid, runCellReused);

    SweepOptions opts;
    opts.jobs = 4;
    opts.numaNodesOverride = 2;
    SweepRunStats stats;
    const auto rows = SweepRunner(opts).run(grid, runCellReused, &stats);

    expectRowsIdentical(serialRows, rows);
    EXPECT_EQ(stats.numaNodes, 2);
}

TEST(SweepRunnerTest, AffinityOversubscriptionDegradesGracefully)
{
    // More workers than allowed CPUs (this box may have very few):
    // pinning wraps round-robin over the allowed set — or fails into
    // unpinned execution — and either way the sweep completes with
    // rows bitwise-identical to serial.
    const SweepGrid grid = engineGrid();
    const SweepRunner serial(1);
    const auto serialRows = serial.run(grid, runCellReused);

    SweepOptions opts;
    opts.jobs = 2 * SweepRunner::resolveJobs(0);
    opts.affinity = true;
    SweepRunStats stats;
    const auto rows = SweepRunner(opts).run(grid, runCellReused, &stats);

    expectRowsIdentical(serialRows, rows);
    EXPECT_TRUE(stats.affinity);
    EXPECT_LE(stats.pinned, stats.workers);
}

TEST(SweepRunnerTest, RepeatedParallelRunsAreIdentical)
{
    const SweepGrid grid = engineGrid();
    const SweepRunner parallel(3);
    const auto first = parallel.run(grid, runCell);
    const auto second = parallel.run(grid, runCell);
    expectRowsIdentical(first, second);
}

TEST(SweepRunnerTest, CellExceptionPropagates)
{
    SweepGrid grid;
    grid.params = {0, 1, 2, 3};
    const SweepRunner runner(2);
    EXPECT_THROW(runner.run(grid,
                            [](const SweepCell &cell) -> SweepResult {
                                if (cell.point.parameter() >= 2)
                                    throw std::runtime_error("boom");
                                return SweepResult{};
                            }),
                 std::runtime_error);
}

TEST(SweepRunnerTest, FailureStopsClaimingAndRethrowsAfterJoin)
{
    // A large grid whose very first cell throws instantly while every
    // other cell sleeps: once the failure flag is up, workers must
    // stop claiming new cells, so only a handful of the 256 cells can
    // ever start. The first exception (in completion order) is
    // rethrown on the caller after the pool joins.
    SweepGrid grid;
    grid.params.resize(256);
    for (std::size_t i = 0; i < grid.params.size(); ++i)
        grid.params[i] = static_cast<double>(i);

    std::atomic<int> started{0};
    const SweepRunner runner(4);
    try {
        runner.run(grid, [&](const SweepCell &cell) -> SweepResult {
            started.fetch_add(1);
            if (cell.point.parameter() == 0.0)
                throw std::runtime_error("first cell exploded");
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
            SweepResult row;
            row.label = "ok";
            return row;
        });
        FAIL() << "sweep with a throwing cell must rethrow";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "first cell exploded");
    }
    // 4 workers, failure on the first claimed cell: in-flight cells
    // finish but nothing new starts. Far below the 256-cell grid.
    EXPECT_LT(started.load(), 64);
}

TEST(SweepRunnerTest, ThrowingCellLeavesNoPartialRow)
{
    // A cell that adds metrics and then throws: its row must not leak
    // into any observable output — run() rethrows instead of
    // returning, and a later identical run with the failure patched
    // produces complete rows in every slot.
    SweepGrid grid;
    grid.params = {0, 1, 2};
    const SweepRunner runner(2);
    EXPECT_THROW(
        runner.run(grid,
                   [](const SweepCell &cell) -> SweepResult {
                       SweepResult row;
                       row.label = "half-written";
                       row.add("metric", 1.0);
                       if (cell.point.parameter() == 1.0)
                           throw std::runtime_error("mid-cell");
                       return row;
                   }),
        std::runtime_error);

    const auto rows =
        runner.run(grid, [](const SweepCell &cell) -> SweepResult {
            SweepResult row;
            row.label = "whole";
            row.add("metric", cell.point.parameter());
            return row;
        });
    ASSERT_EQ(rows.size(), 3u);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        EXPECT_EQ(rows[i].label, "whole");
        EXPECT_EQ(rows[i].index, i);
        EXPECT_EQ(rows[i].metric("metric"), static_cast<double>(i));
    }
}

TEST(SweepRunnerJobsDeathTest, HalfParsedJobsArgIsFatal)
{
    const char *trailing[] = {"bench", "--jobs", "4abc"};
    EXPECT_EXIT(
        SweepRunner::jobsFromArgs(3, const_cast<char **>(trailing)),
        ::testing::ExitedWithCode(1), "positive integer");
    const char *inlineSpelling[] = {"bench", "--jobs=2x"};
    EXPECT_EXIT(
        SweepRunner::jobsFromArgs(2,
                                  const_cast<char **>(inlineSpelling)),
        ::testing::ExitedWithCode(1), "positive integer");
    const char *negative[] = {"bench", "--jobs", "-3"};
    EXPECT_EXIT(
        SweepRunner::jobsFromArgs(3, const_cast<char **>(negative)),
        ::testing::ExitedWithCode(1), "positive integer");
    const char *empty[] = {"bench", "--jobs="};
    EXPECT_EXIT(SweepRunner::jobsFromArgs(2, const_cast<char **>(empty)),
                ::testing::ExitedWithCode(1), "positive integer");
    const char *overflow[] = {"bench", "--jobs", "99999999999999999999"};
    EXPECT_EXIT(
        SweepRunner::jobsFromArgs(3, const_cast<char **>(overflow)),
        ::testing::ExitedWithCode(1), "positive integer");
}

TEST(SweepRunnerJobsDeathTest, HalfParsedJobsEnvIsFatal)
{
    // The death-test child inherits the env var set here; resolve must
    // reject a half-parsable value loudly instead of atoi-truncating
    // it to 4 workers.
    ASSERT_EQ(setenv("MOENTWINE_JOBS", "4abc", 1), 0);
    EXPECT_EXIT(SweepRunner::resolveJobs(0),
                ::testing::ExitedWithCode(1), "positive integer");
    ASSERT_EQ(setenv("MOENTWINE_JOBS", "6", 1), 0);
    EXPECT_EQ(SweepRunner::resolveJobs(0), 6);
    // An explicit positive request bypasses the env entirely.
    ASSERT_EQ(setenv("MOENTWINE_JOBS", "garbage", 1), 0);
    EXPECT_EQ(SweepRunner::resolveJobs(3), 3);
    ASSERT_EQ(unsetenv("MOENTWINE_JOBS"), 0);
}

TEST(SweepGridTest, FaultAxisIsInnermostAndPreservesSeeds)
{
    SweepGrid grid;
    grid.models = {qwen3()};
    grid.arrivals = {ArrivalKind::Poisson, ArrivalKind::Bursty};

    // Seeds of the fault-free grid, before the axis exists.
    const uint64_t seed0 = grid.pointAt(0).seed();
    const uint64_t seed1 = grid.pointAt(1).seed();

    grid.faultScenarios = {FaultScenarioKind::None,
                           FaultScenarioKind::LinkCut,
                           FaultScenarioKind::Cascade};
    EXPECT_EQ(grid.cells(), 6u);

    const SweepPoint p0 = grid.pointAt(0);
    const SweepPoint p1 = grid.pointAt(1);
    const SweepPoint p3 = grid.pointAt(3);
    EXPECT_EQ(p0.fault, 0);
    EXPECT_EQ(p1.fault, 1); // fault advances first (innermost)
    EXPECT_EQ(p0.arrival, 0);
    EXPECT_EQ(p3.arrival, 1);
    EXPECT_EQ(p0.faultScenario(), FaultScenarioKind::None);
    EXPECT_EQ(p1.faultScenario(), FaultScenarioKind::LinkCut);
    EXPECT_EQ(grid.at(0, -1, -1, -1, -1, -1, -1, 1, 2), 5u);

    // Retro-compat: the fault axis only joins the seed hash when the
    // cell actually sweeps it, so pre-fault grids keep their streams.
    SweepGrid faultFree;
    faultFree.models = {qwen3()};
    faultFree.arrivals = {ArrivalKind::Poisson, ArrivalKind::Bursty};
    EXPECT_EQ(faultFree.pointAt(0).seed(), seed0);
    EXPECT_EQ(faultFree.pointAt(1).seed(), seed1);
    // And swept fault cells get distinct streams per scenario.
    EXPECT_NE(grid.pointAt(0).seed(), grid.pointAt(1).seed());
}

// ------------------------------------------- shared-system safety ----

TEST(SweepSharedSystemTest, SharedSystemMatchesPrivateCopies)
{
    SystemConfig sc;
    sc.platform = PlatformKind::WscHer;
    sc.meshN = 4;
    sc.wafers = 2;
    sc.tp = 4;
    const auto shared =
        std::make_shared<const System>(System::make(sc));

    EngineConfig ec;
    ec.model = qwen3();
    ec.decodeTokensPerGroup = 64;
    ec.workload.mode = GatingMode::MixedScenario;
    ec.workload.mixPeriod = 30;
    ec.balancer = BalancerKind::NonInvasive;
    ec.alpha = 0.5;
    ec.beta = 5;

    // Reference timelines from engines on private System copies.
    constexpr int kThreads = 4;
    constexpr int kIters = 10;
    std::vector<std::vector<IterationStats>> expected(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        EngineConfig mine = ec;
        mine.workload.seed = 1000 + static_cast<uint64_t>(t);
        const System priv = System::make(sc);
        expected[static_cast<std::size_t>(t)] =
            InferenceEngine(priv.mapping(), mine).run(kIters);
    }

    // Same engines, all sharing one const System across threads.
    std::vector<std::vector<IterationStats>> got(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            EngineConfig mine = ec;
            mine.workload.seed = 1000 + static_cast<uint64_t>(t);
            got[static_cast<std::size_t>(t)] =
                InferenceEngine(shared->mapping(), mine).run(kIters);
        });
    }
    for (auto &thread : threads)
        thread.join();

    for (int t = 0; t < kThreads; ++t) {
        const auto &e = expected[static_cast<std::size_t>(t)];
        const auto &g = got[static_cast<std::size_t>(t)];
        ASSERT_EQ(e.size(), g.size());
        for (std::size_t i = 0; i < e.size(); ++i) {
            EXPECT_EQ(e[i].allReduce, g[i].allReduce);
            EXPECT_EQ(e[i].dispatch, g[i].dispatch);
            EXPECT_EQ(e[i].combine, g[i].combine);
            EXPECT_EQ(e[i].moeTime, g[i].moeTime);
            EXPECT_EQ(e[i].migrationOverhead, g[i].migrationOverhead);
            EXPECT_EQ(e[i].loadMax, g[i].loadMax);
            EXPECT_EQ(e[i].migrationsCompleted,
                      g[i].migrationsCompleted);
        }
    }
}

TEST(SweepSharedSystemTest, ConcurrentFirstUseOfLazyCachesIsSafe)
{
    // Raw topology + mapping, deliberately NOT prewarmed: the first
    // route()/dispatchSourceCached() calls race from worker threads
    // and must all observe a consistent table (once-guard regression).
    const MeshTopology mesh = MeshTopology::waferRow(2, 4);
    const ErMapping er(mesh, ParallelismConfig{2, 2});

    EngineConfig ec;
    ec.model = qwen3();
    ec.decodeTokensPerGroup = 32;
    ec.workload.mode = GatingMode::MixedScenario;

    constexpr int kThreads = 4;
    std::vector<std::vector<IterationStats>> got(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            got[static_cast<std::size_t>(t)] =
                InferenceEngine(er, ec).run(6);
        });
    }
    for (auto &thread : threads)
        thread.join();

    // Identical configs on identical mappings: every thread must see
    // the exact same timeline.
    for (int t = 1; t < kThreads; ++t) {
        const auto &a = got[0];
        const auto &b = got[static_cast<std::size_t>(t)];
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].allReduce, b[i].allReduce);
            EXPECT_EQ(a[i].dispatch, b[i].dispatch);
            EXPECT_EQ(a[i].combine, b[i].combine);
            EXPECT_EQ(a[i].moeTime, b[i].moeTime);
        }
    }
}
