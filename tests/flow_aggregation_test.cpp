/**
 * @file
 * Property tests for token-router flow aggregation: collapsing the
 * per-(group, rank, replica) flow list into the per-(src, dst) byte
 * matrix must preserve every quantity the congestion model reads —
 * per-link volumes (totalByteHops, maxLinkVolume), injected bytes,
 * per-device token loads, and per-expert loads. Also checks that a
 * full engine run is invariant under the cache/aggregation toggles.
 */

#include <gtest/gtest.h>

#include "core/moentwine.hh"

using namespace moentwine;

namespace {

std::vector<std::vector<int>>
skewedCounts(WorkloadGenerator &gen, int groups, int tokens)
{
    return gen.sampleCounts(7, 0, tokens, groups);
}

void
expectAggregationPreservesTraffic(const Mapping &mapping,
                                  const ExpertPlacement &placement,
                                  const std::vector<std::vector<int>>
                                      &counts,
                                  int topk)
{
    RoutedTraffic agg;
    routeTokens(mapping, placement, counts, 1024.0, true, topk, agg,
                true);
    RoutedTraffic flat;
    routeTokens(mapping, placement, counts, 1024.0, true, topk, flat,
                false);

    // Aggregation can only shrink the flow list.
    EXPECT_LE(agg.dispatch.size(), flat.dispatch.size());

    // Per-device token loads and expert loads are identical.
    ASSERT_EQ(agg.tokensPerDevice.size(), flat.tokensPerDevice.size());
    for (std::size_t d = 0; d < agg.tokensPerDevice.size(); ++d)
        EXPECT_NEAR(agg.tokensPerDevice[d], flat.tokensPerDevice[d],
                    1e-9);
    ASSERT_EQ(agg.expertLoads.size(), flat.expertLoads.size());
    for (std::size_t e = 0; e < agg.expertLoads.size(); ++e)
        EXPECT_DOUBLE_EQ(agg.expertLoads[e], flat.expertLoads[e]);
    EXPECT_EQ(agg.activeExpertsPerDevice, flat.activeExpertsPerDevice);

    // The congestion model sees the same per-link volumes.
    PhaseTraffic aggTraffic(mapping.topology());
    aggTraffic.addFlows(agg.dispatch);
    aggTraffic.addFlows(agg.combine);
    PhaseTraffic flatTraffic(mapping.topology());
    flatTraffic.addFlows(flat.dispatch);
    flatTraffic.addFlows(flat.combine);

    const double scale = 1.0 + flatTraffic.totalByteHops();
    EXPECT_NEAR(aggTraffic.totalByteHops(), flatTraffic.totalByteHops(),
                1e-9 * scale);
    EXPECT_NEAR(aggTraffic.maxLinkVolume(), flatTraffic.maxLinkVolume(),
                1e-9 * scale);
    EXPECT_NEAR(aggTraffic.totalFlowBytes(),
                flatTraffic.totalFlowBytes(), 1e-9 * scale);
    EXPECT_NEAR(aggTraffic.maxPathLatency(),
                flatTraffic.maxPathLatency(), 1e-15);
    for (std::size_t l = 0; l < mapping.topology().links().size(); ++l)
        EXPECT_NEAR(aggTraffic.linkVolume(static_cast<LinkId>(l)),
                    flatTraffic.linkVolume(static_cast<LinkId>(l)),
                    1e-9 * scale);
}

} // namespace

TEST(FlowAggregation, MeshErMappingPreservesTraffic)
{
    const MeshTopology mesh = MeshTopology::singleWafer(4);
    const ErMapping er(mesh, ParallelismConfig{2, 2});
    ExpertPlacement p(32, 16, 1);
    p.addReplica(0, 5);
    WorkloadConfig wc;
    wc.numExperts = 32;
    wc.topK = 4;
    wc.mode = GatingMode::MixedScenario;
    WorkloadGenerator gen(wc);
    expectAggregationPreservesTraffic(
        er, p, skewedCounts(gen, er.dp(), 64), wc.topK);
}

TEST(FlowAggregation, MultiWaferHerMappingPreservesTraffic)
{
    const MeshTopology mesh = MeshTopology::waferRow(2, 4);
    const HierarchicalErMapping her(mesh, ParallelismConfig{2, 2});
    const ExpertPlacement p(64, 32, 0);
    WorkloadConfig wc;
    wc.numExperts = 64;
    wc.topK = 8;
    wc.mode = GatingMode::SingleScenario;
    WorkloadGenerator gen(wc);
    expectAggregationPreservesTraffic(
        her, p, skewedCounts(gen, her.dp(), 32), wc.topK);
}

TEST(FlowAggregation, SwitchClusterDedupPreservesTraffic)
{
    const SwitchClusterTopology dgx = SwitchClusterTopology::dgx(2);
    const ClusterMapping cm(dgx, 4);
    const ExpertPlacement p(32, 16, 0);
    WorkloadConfig wc;
    wc.numExperts = 32;
    wc.topK = 8;
    wc.mode = GatingMode::MixedScenario;
    WorkloadGenerator gen(wc);
    expectAggregationPreservesTraffic(
        cm, p, skewedCounts(gen, cm.dp(), 48), wc.topK);
}

TEST(FlowAggregation, PairBytesMatrixMatchesFlowList)
{
    const MeshTopology mesh = MeshTopology::singleWafer(4);
    const ErMapping er(mesh, ParallelismConfig{2, 2});
    const ExpertPlacement p(16, 16, 0);
    WorkloadConfig wc;
    wc.numExperts = 16;
    wc.topK = 2;
    WorkloadGenerator gen(wc);
    RoutedTraffic agg;
    routeTokens(er, p, skewedCounts(gen, er.dp(), 64), 512.0, true,
                wc.topK, agg, true);

    const int devices = mesh.numDevices();
    ASSERT_EQ(agg.pairBytes.devices(), devices);
    double matrixTotal = 0.0;
    agg.pairBytes.forEachTiled(
        [&matrixTotal](DeviceId, DeviceId, double b) { matrixTotal += b; });
    double flowTotal = 0.0;
    for (const Flow &f : agg.dispatch) {
        flowTotal += f.bytes;
        EXPECT_DOUBLE_EQ(agg.pairBytes.at(f.src, f.dst), f.bytes);
    }
    EXPECT_DOUBLE_EQ(matrixTotal, flowTotal);
    EXPECT_EQ(agg.pairBytes.occupancy(), agg.dispatch.size());
}

TEST(FlowAggregation, EngineInvariantUnderPerfToggles)
{
    // One engine on the fast path, one with the route cache disabled
    // and aggregation off: identical simulated timelines.
    auto makeConfig = [] {
        EngineConfig ec;
        ec.model = qwen3();
        ec.decodeTokensPerGroup = 32;
        ec.workload.mode = GatingMode::MixedScenario;
        ec.workload.mixPeriod = 20;
        ec.balancer = BalancerKind::TopologyAware;
        ec.alpha = 0.5;
        ec.beta = 2;
        return ec;
    };

    MeshTopology fastMesh = MeshTopology::singleWafer(4);
    const ErMapping fastEr(fastMesh, ParallelismConfig{2, 2});
    InferenceEngine fast(fastEr, makeConfig());

    MeshTopology slowMesh = MeshTopology::singleWafer(4);
    slowMesh.disableRouteCache();
    const ErMapping slowEr(slowMesh, ParallelismConfig{2, 2});
    EngineConfig slowCfg = makeConfig();
    slowCfg.aggregateFlows = false;
    InferenceEngine slow(slowEr, slowCfg);

    for (int i = 0; i < 20; ++i) {
        const IterationStats a = fast.step();
        const IterationStats b = slow.step();
        EXPECT_NEAR(a.layerTime(4), b.layerTime(4),
                    1e-9 * (1.0 + b.layerTime(4)))
            << "iteration " << i;
        EXPECT_NEAR(a.dispatch, b.dispatch, 1e-9 * (1.0 + b.dispatch));
        EXPECT_NEAR(a.combine, b.combine, 1e-9 * (1.0 + b.combine));
        EXPECT_NEAR(a.imbalance, b.imbalance, 1e-9);
        EXPECT_EQ(a.migrationsPlanned, b.migrationsPlanned);
    }
}
