/**
 * @file
 * Tests for the request-level serving subsystem (src/serve/):
 *  - arrival determinism: equal configs generate identical streams,
 *    distinct kinds/seeds diverge, traces replay verbatim;
 *  - scheduler invariants: the KV reservation never exceeds the
 *    budget, admission is FIFO (globally, hence within every scenario
 *    class), every request finishes with ordered timestamps;
 *  - serve determinism: a fixed seed yields bitwise-identical
 *    per-request metrics across runs, and serve sweep cells under
 *    SweepRunner --jobs 2 byte-compare against --jobs 1;
 *  - engine demand coupling: the fixed-budget step() is exactly the
 *    demand overload with the configured budget.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/moentwine.hh"
#include "sweep/sweep.hh"

using namespace moentwine;

namespace {

/** Small, fast 4×4 ER-mapped WSC shared by the serving tests. */
const System &
testSystem()
{
    static const System sys = [] {
        SystemConfig sc;
        sc.platform = PlatformKind::WscEr;
        sc.meshN = 4;
        sc.tp = 4;
        return System::make(sc);
    }();
    return sys;
}

/** Compact serving config sized for unit tests. */
ServeConfig
testServeConfig(ArrivalKind kind, BalancerKind balancer, uint64_t seed)
{
    ServeConfig sc;
    sc.engine.model = qwen3();
    sc.engine.workload.seed = seed;
    sc.engine.balancer = balancer;
    sc.engine.alpha = 0.5;
    sc.engine.beta = 5;
    sc.arrival.kind = kind;
    sc.arrival.ratePerSec = 60.0;
    sc.arrival.promptMeanTokens = 128;
    sc.arrival.promptMaxTokens = 1024;
    sc.arrival.outputMeanTokens = 24;
    sc.arrival.outputMaxTokens = 128;
    sc.arrival.mixDriftPeriodSec = 1.0;
    sc.arrival.seed = seed;
    sc.scheduler.kvBudgetTokens = 8192;
    sc.scheduler.maxRunningRequests = 16;
    sc.scheduler.prefillChunkTokens = 256;
    sc.numRequests = 30;
    return sc;
}

} // namespace

// ---------------------------------------------------------- arrival ----

TEST(ArrivalProcess, EqualConfigsGenerateIdenticalStreams)
{
    for (const ArrivalKind kind :
         {ArrivalKind::Poisson, ArrivalKind::Bursty,
          ArrivalKind::Diurnal}) {
        ArrivalConfig ac;
        ac.kind = kind;
        ac.ratePerSec = 100.0;
        ac.mixDriftPeriodSec = 2.0;
        const auto a = ArrivalProcess(ac).generate(50);
        const auto b = ArrivalProcess(ac).generate(50);
        ASSERT_EQ(a.size(), 50u);
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].id, b[i].id);
            EXPECT_EQ(a[i].scenario, b[i].scenario);
            EXPECT_EQ(a[i].promptTokens, b[i].promptTokens);
            EXPECT_EQ(a[i].outputTokens, b[i].outputTokens);
            // Bitwise: the stream is a pure function of the config.
            EXPECT_EQ(a[i].arrivalTime, b[i].arrivalTime);
        }
    }
}

TEST(ArrivalProcess, SeedsAndKindsDiverge)
{
    ArrivalConfig ac;
    ac.ratePerSec = 100.0;
    const auto base = ArrivalProcess(ac).generate(20);
    ac.seed = 43;
    const auto reseeded = ArrivalProcess(ac).generate(20);
    EXPECT_NE(base[5].arrivalTime, reseeded[5].arrivalTime);

    ac.seed = 42;
    ac.kind = ArrivalKind::Bursty;
    const auto bursty = ArrivalProcess(ac).generate(20);
    EXPECT_NE(base[5].arrivalTime, bursty[5].arrivalTime);
}

TEST(ArrivalProcess, ArrivalsAreTimeOrderedAndWellFormed)
{
    for (const ArrivalKind kind :
         {ArrivalKind::Poisson, ArrivalKind::Bursty,
          ArrivalKind::Diurnal}) {
        ArrivalConfig ac;
        ac.kind = kind;
        ac.ratePerSec = 200.0;
        const auto reqs = ArrivalProcess(ac).generate(100);
        double last = 0.0;
        for (const ServeRequest &r : reqs) {
            EXPECT_GE(r.arrivalTime, last);
            last = r.arrivalTime;
            EXPECT_GE(r.promptTokens, ac.promptMinTokens);
            EXPECT_LE(r.promptTokens, ac.promptMaxTokens);
            EXPECT_GE(r.outputTokens, ac.outputMinTokens);
            EXPECT_LE(r.outputTokens, ac.outputMaxTokens);
        }
    }
}

TEST(ArrivalProcess, TraceReplaysVerbatim)
{
    ArrivalConfig ac;
    ac.kind = ArrivalKind::Trace;
    ac.trace = {{0.1, ScenarioKind::Math, 64, 8},
                {0.2, ScenarioKind::Chat, 32, 4},
                {0.5, ScenarioKind::Coding, 128, 16}};
    const auto reqs = ArrivalProcess(ac).generate(10);
    ASSERT_EQ(reqs.size(), 3u); // bounded by the trace
    EXPECT_EQ(reqs[1].scenario, ScenarioKind::Chat);
    EXPECT_EQ(reqs[1].promptTokens, 32);
    EXPECT_EQ(reqs[2].arrivalTime, 0.5);
}

// -------------------------------------------------------- scheduler ----

TEST(Scheduler, KvBudgetNeverOverflowsAndFifoHolds)
{
    ArrivalConfig ac;
    ac.ratePerSec = 500.0; // heavy backlog so admission gates
    ac.promptMeanTokens = 256;
    ac.outputMeanTokens = 32;
    const auto reqs = ArrivalProcess(ac).generate(60);

    ServeSchedulerConfig cfg;
    cfg.kvBudgetTokens = 2048; // tight: forces queueing
    cfg.maxRunningRequests = 8;
    cfg.prefillChunkTokens = 128;
    ContinuousBatchScheduler sched(cfg, reqs);

    double now = 0.0;
    int guard = 0;
    while (!sched.done()) {
        ASSERT_LT(guard++, 100000) << "scheduler made no progress";
        sched.admit(now);
        ASSERT_LE(sched.kvReserved(), cfg.kvBudgetTokens);
        ASSERT_LE(sched.runningCount(), cfg.maxRunningRequests);
        const IterationDemand d = sched.plan();
        if (d.tokensPerGroup() == 0) {
            now = sched.nextArrival();
            continue;
        }
        EXPECT_LE(d.prefillTokensPerGroup, cfg.prefillChunkTokens);
        EXPECT_LE(d.decodeTokensPerGroup, cfg.maxRunningRequests);
        now += 0.001;
        sched.complete(now);
    }

    // Admission is globally FIFO (head-of-line blocking), therefore
    // FIFO within every scenario class as well.
    const auto &order = sched.admissionOrder();
    ASSERT_EQ(order.size(), reqs.size());
    std::map<ScenarioKind, int> lastOfClass;
    for (std::size_t i = 0; i < order.size(); ++i) {
        if (i > 0) {
            EXPECT_GT(order[i], order[i - 1]) << "global FIFO broken";
        }
        const ScenarioKind s =
            reqs[static_cast<std::size_t>(order[i])].scenario;
        auto it = lastOfClass.find(s);
        if (it != lastOfClass.end()) {
            EXPECT_GT(order[i], it->second) << "class FIFO broken";
        }
        lastOfClass[s] = order[i];
    }

    // Every request finished with ordered timestamps.
    for (const RequestMetrics &m : sched.metrics()) {
        EXPECT_GE(m.admitTime, m.arrivalTime);
        EXPECT_GE(m.firstTokenTime, m.admitTime);
        EXPECT_GE(m.finishTime, m.firstTokenTime);
        EXPECT_GE(m.ttft(), 0.0);
        EXPECT_GE(m.tpot(), 0.0);
    }
    EXPECT_EQ(sched.kvReserved(), 0);
}

TEST(Scheduler, PressureAccessorsMatchRegistryBitwise)
{
    ArrivalConfig ac;
    ac.ratePerSec = 300.0;
    ac.promptMeanTokens = 128;
    ac.outputMeanTokens = 16;
    const auto reqs = ArrivalProcess(ac).generate(40);

    ServeSchedulerConfig cfg;
    cfg.kvBudgetTokens = 4096;
    cfg.maxRunningRequests = 8;
    cfg.prefillChunkTokens = 128;
    StatRegistry stats;
    ContinuousBatchScheduler sched(cfg, reqs);
    sched.attachStats(&stats);

    double now = 0.0;
    while (!sched.done()) {
        sched.admit(now);
        // The router-visible pressure signals are pure re-reads of the
        // scheduler's own counters — bitwise, not approximately.
        int notArrived = 0;
        for (const ServeRequest &r : reqs)
            notArrived += r.arrivalTime > now ? 1 : 0;
        EXPECT_EQ(sched.queueDepth() + sched.runningCount() +
                      sched.finishedCount() + sched.retryPending() +
                      notArrived,
                  static_cast<int>(reqs.size()));
        EXPECT_EQ(sched.kvReservedFraction(),
                  static_cast<double>(sched.kvReserved()) /
                      static_cast<double>(cfg.kvBudgetTokens));
        if (sched.plan().tokensPerGroup() == 0) {
            now = sched.nextArrival();
            continue;
        }
        now += 0.001;
        sched.complete(now);
    }

    // The registry's transition counters re-derive the same story the
    // accessors told: every request admitted once and completed once
    // (fault-free), nothing shed, failed, or evicted.
    EXPECT_EQ(stats.counterValue("serve.sched.admitted"),
              static_cast<std::int64_t>(reqs.size()));
    EXPECT_EQ(stats.counterValue("serve.sched.completed"),
              static_cast<std::int64_t>(reqs.size()));
    EXPECT_EQ(stats.counterValue("serve.sched.shed"), 0);
    EXPECT_EQ(stats.counterValue("serve.sched.failed"), 0);
    EXPECT_EQ(stats.counterValue("serve.sched.evictions"), 0);
    EXPECT_EQ(sched.kvReservedFraction(), 0.0);
}

TEST(Scheduler, TickIdleElapsesBackoffAndReadmitsInEvictionOrder)
{
    ServeSchedulerConfig cfg;
    cfg.kvBudgetTokens = 4096;
    cfg.maxRunningRequests = 8;
    cfg.prefillChunkTokens = 128;
    ContinuousBatchScheduler sched(cfg);

    for (int id = 0; id < 3; ++id) {
        ServeRequest r;
        r.id = id;
        r.scenario = ScenarioKind::Chat;
        r.promptTokens = 64;
        r.outputTokens = 8;
        r.arrivalTime = 0.0;
        sched.push(r);
    }
    sched.admit(0.0);
    ASSERT_EQ(sched.runningCount(), 3);

    // A fault evicts all three; the eviction order (1, 0, 2) is the
    // order they must re-enter the queue front in.
    sched.evictToRetry(1, 2);
    sched.evictToRetry(0, 2);
    sched.evictToRetry(2, 2);
    EXPECT_EQ(sched.retryPending(), 3);
    EXPECT_EQ(sched.runningCount(), 0);
    EXPECT_EQ(sched.kvReserved(), 0);

    // Nothing is runnable while the backoff pends: plan() is empty and
    // only tickIdle() advances the iteration clock the backoff counts.
    sched.admit(0.0);
    EXPECT_EQ(sched.queueDepth(), 0);
    EXPECT_EQ(sched.plan().tokensPerGroup(), 0);
    sched.tickIdle();
    sched.admit(0.0);
    EXPECT_EQ(sched.queueDepth(), 0) << "re-admitted before backoff";
    sched.tickIdle();
    EXPECT_EQ(sched.iterationIndex(), 2);

    // Backoff elapsed: all three re-queue at the front in eviction
    // order and admit FIFO from there — deterministically 1, 0, 2.
    sched.admit(0.0);
    EXPECT_EQ(sched.retryPending(), 0);
    ASSERT_EQ(sched.runningCount(), 3);
    const std::vector<int> expected = {0, 1, 2, 1, 0, 2};
    EXPECT_EQ(sched.admissionOrder(), expected);

    double now = 0.0;
    while (!sched.done()) {
        sched.admit(now);
        if (sched.plan().tokensPerGroup() == 0)
            break;
        now += 0.001;
        sched.complete(now);
    }
    EXPECT_TRUE(sched.done());
    for (const RequestMetrics &m : sched.metrics()) {
        EXPECT_EQ(m.retries, 1);
        EXPECT_EQ(m.outcome, RequestOutcome::Completed);
    }
}

// ------------------------------------------------ serve simulation ----

TEST(ServeSimulator, FixedSeedIsBitwiseDeterministic)
{
    const ServeConfig sc = testServeConfig(
        ArrivalKind::Bursty, BalancerKind::NonInvasive, 7);
    const ServeReport a =
        ServeSimulator(testSystem().mapping(), sc).run();
    const ServeReport b =
        ServeSimulator(testSystem().mapping(), sc).run();

    ASSERT_EQ(a.requests.size(), b.requests.size());
    for (std::size_t i = 0; i < a.requests.size(); ++i) {
        // Bitwise, not approximate: the whole serving timeline is a
        // pure function of the seed.
        EXPECT_EQ(a.requests[i].arrivalTime, b.requests[i].arrivalTime);
        EXPECT_EQ(a.requests[i].admitTime, b.requests[i].admitTime);
        EXPECT_EQ(a.requests[i].firstTokenTime,
                  b.requests[i].firstTokenTime);
        EXPECT_EQ(a.requests[i].finishTime, b.requests[i].finishTime);
    }
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.ttftP99, b.ttftP99);
    EXPECT_EQ(a.goodputRequestsPerSec, b.goodputRequestsPerSec);
}

TEST(ServeSimulator, ServesEveryRequestAndRespectsKvBudget)
{
    const ServeConfig sc =
        testServeConfig(ArrivalKind::Poisson, BalancerKind::None, 11);
    ServeSimulator sim(testSystem().mapping(), sc);
    const ServeReport r = sim.run();

    ASSERT_EQ(r.requests.size(),
              static_cast<std::size_t>(sc.numRequests));
    EXPECT_GT(r.iterations, 0);
    EXPECT_GT(r.makespan, 0.0);
    EXPECT_GT(r.throughputTokensPerSec, 0.0);
    for (const RequestMetrics &m : r.requests) {
        EXPECT_GT(m.finishTime, 0.0);
        EXPECT_GE(m.ttft(), 0.0);
        EXPECT_GE(m.latency(), m.ttft());
    }
    for (const ServeTracePoint &p : r.trace)
        EXPECT_LE(p.kvReserved, sc.scheduler.kvBudgetTokens);
    // KV pressure now lives in the stat registry (src/obs/).
    const DistributionView kv =
        sim.stats().distributionView("serve.kv.reserved_tokens");
    EXPECT_LE(kv.max,
              static_cast<double>(sc.scheduler.kvBudgetTokens));
}

TEST(ServeSimulator, DriftCouplingChangesTheTimeline)
{
    ServeConfig sc = testServeConfig(ArrivalKind::Diurnal,
                                     BalancerKind::NonInvasive, 13);
    const ServeReport coupled =
        ServeSimulator(testSystem().mapping(), sc).run();
    sc.coupleDrift = false;
    const ServeReport uncoupled =
        ServeSimulator(testSystem().mapping(), sc).run();
    // The live admitted-mix gating must actually steer the engine.
    EXPECT_NE(coupled.makespan, uncoupled.makespan);
}

TEST(ServeLoop, EmptyStreamFinalizesToZerosWithoutPanicking)
{
    // A fleet replica that never receives a dispatch finalizes an
    // empty completed set: percentiles and rates degrade to zero
    // instead of tripping the Summary percentile panic.
    const ServeConfig sc =
        testServeConfig(ArrivalKind::Poisson, BalancerKind::None, 3);
    StatRegistry stats;
    ServeLoop loop(testSystem().mapping(), sc, &stats, nullptr);

    EXPECT_EQ(loop.pushedRequests(), 0);
    EXPECT_TRUE(loop.allFinished());
    EXPECT_FALSE(loop.beginIteration()); // nothing runnable
    const ServeReport r = loop.finalize();

    EXPECT_TRUE(r.requests.empty());
    EXPECT_EQ(r.iterations, 0);
    EXPECT_EQ(r.makespan, 0.0);
    EXPECT_EQ(r.ttftP50, 0.0);
    EXPECT_EQ(r.ttftP99, 0.0);
    EXPECT_EQ(r.tpotP99, 0.0);
    EXPECT_EQ(r.latencyP99, 0.0);
    EXPECT_EQ(r.throughputTokensPerSec, 0.0);
    EXPECT_EQ(r.goodputRequestsPerSec, 0.0);
    EXPECT_EQ(r.sloAttainment, 0.0);
}

TEST(ServeLoop, SingleRequestStreamDrivesLoopToCompletion)
{
    // The smallest populated stream: one pushed request driven through
    // the public begin/finish interface. Pins the singleton-percentile
    // convention (P50 == P99) right next to the empty-set guard above.
    ServeConfig sc =
        testServeConfig(ArrivalKind::Poisson, BalancerKind::None, 5);
    sc.scheduler.kvBudgetTokens = 4096;
    ServeLoop loop(testSystem().mapping(), sc, nullptr, nullptr);

    ServeRequest r;
    r.id = 0;
    r.scenario = ScenarioKind::Chat;
    r.promptTokens = 64;
    r.outputTokens = 8;
    r.arrivalTime = 0.0;
    loop.push(r);
    while (!loop.allFinished()) {
        if (loop.beginIteration()) {
            loop.finishIteration();
            continue;
        }
        loop.advanceIdle(loop.nextArrival());
    }
    const ServeReport report = loop.finalize();
    ASSERT_EQ(report.requests.size(), 1u);
    EXPECT_EQ(report.requests[0].outcome, RequestOutcome::Completed);
    EXPECT_GT(report.makespan, 0.0);
    EXPECT_EQ(report.ttftP50, report.ttftP99); // singleton percentile
    EXPECT_GT(report.sloAttainment, 0.0);
}

// ----------------------------------------------------- sweep cells ----

TEST(ServeSweep, ParallelServeCellsByteIdenticalToSerial)
{
    SweepGrid grid;
    SystemConfig wsc;
    wsc.platform = PlatformKind::WscEr;
    wsc.meshN = 4;
    wsc.tp = 4;
    grid.systems = {wsc};
    grid.balancers = {BalancerKind::None, BalancerKind::NonInvasive};
    grid.arrivals = {ArrivalKind::Poisson, ArrivalKind::Bursty};

    const auto cellFn = [](const SweepCell &cell) {
        ServeConfig sc = testServeConfig(cell.point.arrivalKind(),
                                         cell.point.balancerKind(),
                                         cell.point.seed());
        sc.numRequests = 15;
        const ServeReport r =
            ServeSimulator(cell.system->mapping(), sc).run();
        SweepResult row;
        row.label = arrivalKindName(cell.point.arrivalKind()) + " #" +
            std::to_string(cell.point.index);
        row.add("ttft_p99", r.ttftP99);
        row.add("tpot_p99", r.tpotP99);
        row.add("goodput", r.goodputRequestsPerSec);
        row.add("makespan", r.makespan);
        return row;
    };

    const auto serial = SweepRunner(1).run(grid, cellFn);
    const auto parallel = SweepRunner(2).run(grid, cellFn);
    ASSERT_EQ(serial.size(), grid.cells());
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].label, parallel[i].label);
        ASSERT_EQ(serial[i].metrics.size(), parallel[i].metrics.size());
        for (std::size_t m = 0; m < serial[i].metrics.size(); ++m) {
            EXPECT_EQ(serial[i].metrics[m].first,
                      parallel[i].metrics[m].first);
            // Bitwise: thread count must not perturb a single ULP.
            EXPECT_EQ(serial[i].metrics[m].second,
                      parallel[i].metrics[m].second)
                << "row " << i;
        }
    }
}

// -------------------------------------------------- engine demand ----

TEST(EngineDemand, FixedBudgetStepEqualsDemandOverload)
{
    EngineConfig ec;
    ec.model = qwen3();
    ec.schedule = SchedulingMode::Hybrid;
    ec.decodeTokensPerGroup = 64;
    ec.prefillTokensPerGroup = 512;
    ec.workload.mode = GatingMode::MixedScenario;
    ec.balancer = BalancerKind::NonInvasive;

    InferenceEngine fixed(testSystem().mapping(), ec);
    InferenceEngine demanded(testSystem().mapping(), ec);
    IterationDemand d;
    d.decodeTokensPerGroup = 64;
    d.prefillTokensPerGroup = 512 / 4; // the Hybrid composition
    for (int i = 0; i < 6; ++i) {
        const IterationStats a = fixed.step();
        const IterationStats b = demanded.step(d);
        EXPECT_EQ(a.attnCompute, b.attnCompute);
        EXPECT_EQ(a.allReduce, b.allReduce);
        EXPECT_EQ(a.dispatch, b.dispatch);
        EXPECT_EQ(a.combine, b.combine);
        EXPECT_EQ(a.moeTime, b.moeTime);
        EXPECT_EQ(a.migrationOverhead, b.migrationOverhead);
    }
}

TEST(EngineDemand, PrefillOnlyDemandSkipsDecodeAttention)
{
    EngineConfig ec;
    ec.model = qwen3();
    ec.workload.mode = GatingMode::Balanced;
    InferenceEngine engine(testSystem().mapping(), ec);

    IterationDemand prefill;
    prefill.prefillTokensPerGroup = 256;
    IterationDemand decode;
    decode.decodeTokensPerGroup = 256;
    const double prefillAttn = engine.step(prefill).attnCompute;
    const double decodeAttn = engine.step(decode).attnCompute;
    EXPECT_GT(prefillAttn, 0.0);
    EXPECT_GT(decodeAttn, 0.0);
    EXPECT_NE(prefillAttn, decodeAttn);
}

TEST(EngineDemand, ScenarioMixOverrideSteersGating)
{
    WorkloadConfig wc;
    wc.numExperts = 64;
    wc.topK = 4;
    wc.mode = GatingMode::MixedScenario;
    WorkloadGenerator gen(wc);

    std::vector<double> math(allScenarios().size(), 0.0);
    math[2] = 1.0; // ScenarioKind::Math
    gen.setScenarioMix(math);
    const auto overridden = gen.affinity(0, 0);

    WorkloadConfig single = wc;
    single.mode = GatingMode::SingleScenario;
    single.scenario = ScenarioKind::Math;
    const auto reference = WorkloadGenerator(single).affinity(0, 0);
    ASSERT_EQ(overridden.size(), reference.size());
    for (std::size_t e = 0; e < overridden.size(); ++e)
        EXPECT_DOUBLE_EQ(overridden[e], reference[e]);

    gen.clearScenarioMix();
    const auto internal = gen.affinity(0, 0);
    bool differs = false;
    for (std::size_t e = 0; e < internal.size(); ++e)
        differs |= internal[e] != overridden[e];
    EXPECT_TRUE(differs);
}

TEST(EngineDemand, MixChangeTakesEffectAtUnchangedIteration)
{
    // A large mix change must reach the gating sampler even when the
    // iteration index does not advance between calls (the alias table
    // was built at this very iteration).
    WorkloadConfig wc;
    wc.numExperts = 64;
    wc.topK = 4;
    wc.mode = GatingMode::MixedScenario;
    wc.zipf = 1.5;

    const auto countsWithMix =
        [&](const std::vector<double> *mix) {
            WorkloadGenerator gen(wc);
            auto warm = gen.sampleCounts(3, 0, 512, 1); // builds alias
            (void)warm;
            if (mix)
                gen.setScenarioMix(*mix);
            return gen.sampleCounts(3, 0, 512, 1); // same iteration
        };

    std::vector<double> math(allScenarios().size(), 0.0);
    math[2] = 1.0; // far from the iteration-3 rotating mixture
    const auto steered = countsWithMix(&math);
    const auto unsteered = countsWithMix(nullptr);
    ASSERT_EQ(steered.size(), unsteered.size());
    bool differs = false;
    for (std::size_t e = 0; e < steered[0].size(); ++e)
        differs |= steered[0][e] != unsteered[0][e];
    EXPECT_TRUE(differs) << "same-iteration mix change was ignored";
}
