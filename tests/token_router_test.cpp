/**
 * @file
 * Tests for token routing: flow construction, conservation, and the
 * dispatch-source / dedup rules.
 */

#include <gtest/gtest.h>

#include "balancer/placement.hh"
#include "engine/token_router.hh"
#include "mapping/cluster_mapping.hh"
#include "mapping/er_mapping.hh"
#include "topology/mesh.hh"
#include <cmath>

#include "topology/switch_cluster.hh"

using namespace moentwine;

namespace {

std::vector<std::vector<int>>
uniformCounts(int groups, int experts, int perExpert)
{
    return std::vector<std::vector<int>>(
        std::size_t(groups),
        std::vector<int>(std::size_t(experts), perExpert));
}

} // namespace

TEST(TokenRouter, TokensPerDeviceConserved)
{
    const MeshTopology mesh = MeshTopology::singleWafer(4);
    const ErMapping er(mesh, ParallelismConfig{2, 2});
    const ExpertPlacement p(16, 16, 0);
    const auto counts = uniformCounts(er.dp(), 16, 8);
    const auto routed = routeTokens(er, p, counts, 1024.0, true);

    double total = 0.0;
    for (const double t : routed.tokensPerDevice)
        total += t;
    // 4 groups × 16 experts × 8 tokens each.
    EXPECT_NEAR(total, 4.0 * 16.0 * 8.0, 1e-9);
}

TEST(TokenRouter, ActiveExpertsCounted)
{
    const MeshTopology mesh = MeshTopology::singleWafer(4);
    const ErMapping er(mesh, ParallelismConfig{2, 2});
    const ExpertPlacement p(16, 16, 0);
    auto counts = uniformCounts(er.dp(), 16, 0);
    counts[0][3] = 5; // only expert 3 active
    const auto routed = routeTokens(er, p, counts, 1024.0, true);
    for (DeviceId d = 0; d < 16; ++d) {
        const bool hostsActive = p.hosts(d, 3);
        EXPECT_EQ(routed.activeExpertsPerDevice[std::size_t(d)],
                  hostsActive ? 1 : 0);
    }
}

TEST(TokenRouter, CombineMirrorsDispatch)
{
    const MeshTopology mesh = MeshTopology::singleWafer(4);
    const ErMapping er(mesh, ParallelismConfig{2, 2});
    const ExpertPlacement p(16, 16, 0);
    const auto routed =
        routeTokens(er, p, uniformCounts(er.dp(), 16, 4), 512.0, true);
    ASSERT_EQ(routed.dispatch.size(), routed.combine.size());
    for (std::size_t i = 0; i < routed.dispatch.size(); ++i) {
        EXPECT_EQ(routed.dispatch[i].src, routed.combine[i].dst);
        EXPECT_EQ(routed.dispatch[i].dst, routed.combine[i].src);
        EXPECT_DOUBLE_EQ(routed.dispatch[i].bytes,
                         routed.combine[i].bytes);
    }
}

TEST(TokenRouter, EmptyCountsProduceNoFlows)
{
    const MeshTopology mesh = MeshTopology::singleWafer(4);
    const ErMapping er(mesh, ParallelismConfig{2, 2});
    const ExpertPlacement p(16, 16, 0);
    const auto routed =
        routeTokens(er, p, uniformCounts(er.dp(), 16, 0), 512.0, true);
    EXPECT_TRUE(routed.dispatch.empty());
    EXPECT_TRUE(routed.combine.empty());
}

TEST(TokenRouter, ReplicasSplitLoad)
{
    const MeshTopology mesh = MeshTopology::singleWafer(4);
    const ErMapping er(mesh, ParallelismConfig{2, 2});
    ExpertPlacement p(16, 16, 1);
    auto counts = uniformCounts(er.dp(), 16, 0);
    counts[0][0] = 8;
    const auto before = routeTokens(er, p, counts, 512.0, true);
    EXPECT_NEAR(before.tokensPerDevice[0], 8.0, 1e-9);
    p.addReplica(0, 15);
    const auto after = routeTokens(er, p, counts, 512.0, true);
    EXPECT_NEAR(after.tokensPerDevice[0], 4.0, 1e-9);
    EXPECT_NEAR(after.tokensPerDevice[15], 4.0, 1e-9);
}

TEST(TokenRouter, RetainAgShortensFlows)
{
    const MeshTopology mesh = MeshTopology::singleWafer(4);
    const ErMapping er(mesh, ParallelismConfig{2, 2});
    const ExpertPlacement p(16, 16, 0);
    const auto counts = uniformCounts(er.dp(), 16, 8);
    const auto withAg = routeTokens(er, p, counts, 1024.0, true);
    const auto withoutAg = routeTokens(er, p, counts, 1024.0, false);

    auto byteHops = [&](const std::vector<Flow> &flows) {
        double total = 0.0;
        for (const Flow &f : flows)
            total += f.bytes * mesh.hops(f.src, f.dst);
        return total;
    };
    // Fig. 9: the all-gather provides nearer sources.
    EXPECT_LT(byteHops(withAg.dispatch), byteHops(withoutAg.dispatch));
}

TEST(TokenRouter, ClusterDedupShrinksCrossNodeBytes)
{
    const auto dgx = SwitchClusterTopology::dgx(2);
    const ClusterMapping cm(dgx, 4);
    const ExpertPlacement p(16, 16, 0);
    const auto counts = uniformCounts(cm.dp(), 16, 8);
    const auto k1 = routeTokens(cm, p, counts, 1024.0, true, 1);
    const auto k8 = routeTokens(cm, p, counts, 1024.0, true, 8);

    auto totalBytes = [](const std::vector<Flow> &flows) {
        double total = 0.0;
        for (const Flow &f : flows)
            total += f.bytes;
        return total;
    };
    EXPECT_LT(totalBytes(k8.dispatch), totalBytes(k1.dispatch));
}

TEST(TokenRouter, ClusterDedupFactorFormula)
{
    const auto dgx = SwitchClusterTopology::dgx(4);
    const ClusterMapping cm(dgx, 4);
    // Same node: no dedup.
    EXPECT_DOUBLE_EQ(cm.dispatchDedupFactor(0, 1, 8), 1.0);
    // Cross node: N(1-(1-1/N)^k)/k with N=4, k=8.
    const double expect =
        4.0 * (1.0 - std::pow(0.75, 8)) / 8.0;
    EXPECT_NEAR(cm.dispatchDedupFactor(0, 8, 8), expect, 1e-12);
    // k=1 degenerates to 1.
    EXPECT_DOUBLE_EQ(cm.dispatchDedupFactor(0, 8, 1), 1.0);
}

TEST(TokenRouter, NoSelfFlows)
{
    const MeshTopology mesh = MeshTopology::singleWafer(4);
    const ErMapping er(mesh, ParallelismConfig{2, 2});
    const ExpertPlacement p(16, 16, 0);
    const auto routed =
        routeTokens(er, p, uniformCounts(er.dp(), 16, 8), 512.0, true);
    for (const Flow &f : routed.dispatch)
        EXPECT_NE(f.src, f.dst);
}
