/**
 * @file
 * Unit tests for the Eq.(1) flow-time model and the PhaseTraffic
 * congestion accounting.
 */

#include <gtest/gtest.h>

#include "network/traffic.hh"
#include "topology/mesh.hh"
#include "topology/switch_cluster.hh"

using namespace moentwine;

namespace {

MeshSpec
unitSpec(int n)
{
    MeshSpec spec;
    spec.meshRows = n;
    spec.meshCols = n;
    spec.linkBandwidth = 1e9; // 1 GB/s for easy hand numbers
    spec.linkLatency = 1e-6;  // 1 us per hop
    return spec;
}

} // namespace

TEST(FlowTime, SingleHopMatchesEq1)
{
    const MeshTopology mesh(unitSpec(2));
    // 1 MB over 1 GB/s + 1 us latency = 1 ms + 1 us.
    EXPECT_NEAR(flowTime(mesh, 0, 1, 1e6), 1e-3 + 1e-6, 1e-12);
}

TEST(FlowTime, MultiHopScalesWithHops)
{
    const MeshTopology mesh(unitSpec(4));
    const double oneHop = flowTime(mesh, 0, 1, 1e6);
    const double threeHops = flowTime(mesh, 0, 3, 1e6);
    EXPECT_NEAR(threeHops, 3.0 * oneHop, 1e-12);
}

TEST(FlowTime, ZeroForSelf)
{
    const MeshTopology mesh(unitSpec(3));
    EXPECT_DOUBLE_EQ(flowTime(mesh, 4, 4, 1e9), 0.0);
}

TEST(PhaseTraffic, EmptyPhaseIsFree)
{
    const MeshTopology mesh(unitSpec(3));
    const PhaseTraffic phase(mesh);
    EXPECT_DOUBLE_EQ(phase.phaseTime(), 0.0);
    EXPECT_DOUBLE_EQ(phase.maxLinkVolume(), 0.0);
    EXPECT_EQ(phase.busyLinkCount(), 0);
}

TEST(PhaseTraffic, SingleFlowVolumeOnEveryRouteLink)
{
    const MeshTopology mesh(unitSpec(4));
    PhaseTraffic phase(mesh);
    phase.addFlow(0, 3, 5e5);
    EXPECT_EQ(phase.busyLinkCount(), 3);
    EXPECT_DOUBLE_EQ(phase.maxLinkVolume(), 5e5);
    EXPECT_DOUBLE_EQ(phase.totalByteHops(), 1.5e6);
    EXPECT_DOUBLE_EQ(phase.totalFlowBytes(), 5e5);
}

TEST(PhaseTraffic, CongestionAccumulatesOnSharedLinks)
{
    const MeshTopology mesh(unitSpec(4));
    PhaseTraffic phase(mesh);
    // Both flows traverse link (0,2)→(0,3) with XY routing.
    phase.addFlow(mesh.deviceAt(0, 0), mesh.deviceAt(0, 3), 1e6);
    phase.addFlow(mesh.deviceAt(0, 2), mesh.deviceAt(0, 3), 1e6);
    const LinkId shared =
        mesh.linkBetween(mesh.deviceAt(0, 2), mesh.deviceAt(0, 3));
    EXPECT_DOUBLE_EQ(phase.linkVolume(shared), 2e6);
    // Serialisation time is set by the shared link: 2 MB / 1 GB/s.
    EXPECT_NEAR(phase.serializationTime(), 2e-3, 1e-12);
}

TEST(PhaseTraffic, PhaseTimeAddsWorstPathLatency)
{
    const MeshTopology mesh(unitSpec(4));
    PhaseTraffic phase(mesh);
    phase.addFlow(mesh.deviceAt(0, 0), mesh.deviceAt(3, 3), 1e6);
    // 6 hops × 1 us latency on top of serialisation.
    EXPECT_NEAR(phase.maxPathLatency(), 6e-6, 1e-12);
    EXPECT_NEAR(phase.phaseTime(), 1e-3 + 6e-6, 1e-12);
}

TEST(PhaseTraffic, ZeroByteFlowIgnored)
{
    const MeshTopology mesh(unitSpec(3));
    PhaseTraffic phase(mesh);
    phase.addFlow(0, 1, 0.0);
    EXPECT_EQ(phase.busyLinkCount(), 0);
}

TEST(PhaseTraffic, SelfFlowIgnored)
{
    const MeshTopology mesh(unitSpec(3));
    PhaseTraffic phase(mesh);
    phase.addFlow(4, 4, 1e6);
    EXPECT_EQ(phase.busyLinkCount(), 0);
}

TEST(PhaseTraffic, AddFlowsBatch)
{
    const MeshTopology mesh(unitSpec(3));
    PhaseTraffic phase(mesh);
    phase.addFlows({{0, 1, 1e3}, {1, 2, 2e3}});
    EXPECT_DOUBLE_EQ(phase.totalFlowBytes(), 3e3);
}

TEST(PhaseTraffic, MergeAddsVolumes)
{
    const MeshTopology mesh(unitSpec(3));
    PhaseTraffic a(mesh);
    PhaseTraffic b(mesh);
    a.addFlow(0, 1, 1e6);
    b.addFlow(0, 1, 2e6);
    a.merge(b);
    const LinkId l = mesh.linkBetween(0, 1);
    EXPECT_DOUBLE_EQ(a.linkVolume(l), 3e6);
    EXPECT_DOUBLE_EQ(a.totalFlowBytes(), 3e6);
}

TEST(PhaseTraffic, HotLinksThreshold)
{
    const MeshTopology mesh(unitSpec(4));
    PhaseTraffic phase(mesh);
    phase.addFlow(mesh.deviceAt(0, 0), mesh.deviceAt(0, 1), 10e6);
    phase.addFlow(mesh.deviceAt(1, 0), mesh.deviceAt(1, 1), 1e6);
    const auto hot = phase.hotLinks(0.5);
    EXPECT_TRUE(hot[std::size_t(
        mesh.linkBetween(mesh.deviceAt(0, 0), mesh.deviceAt(0, 1)))]);
    EXPECT_FALSE(hot[std::size_t(
        mesh.linkBetween(mesh.deviceAt(1, 0), mesh.deviceAt(1, 1)))]);
}

TEST(PhaseTraffic, HotLinksAllColdWhenEmpty)
{
    const MeshTopology mesh(unitSpec(3));
    const PhaseTraffic phase(mesh);
    for (const bool h : phase.hotLinks())
        EXPECT_FALSE(h);
}

TEST(PhaseTraffic, IdleBytesBudget)
{
    const MeshTopology mesh(unitSpec(3));
    PhaseTraffic phase(mesh);
    const LinkId l = mesh.linkBetween(0, 1);
    phase.addFlow(0, 1, 4e5);
    // Window 1 ms at 1 GB/s = 1e6 bytes capacity, 4e5 used → 6e5 idle.
    EXPECT_NEAR(phase.idleBytes(l, 1e-3), 6e5, 1.0);
}

TEST(PhaseTraffic, IdleBytesFloorsAtZero)
{
    const MeshTopology mesh(unitSpec(3));
    PhaseTraffic phase(mesh);
    const LinkId l = mesh.linkBetween(0, 1);
    phase.addFlow(0, 1, 5e6);
    EXPECT_DOUBLE_EQ(phase.idleBytes(l, 1e-3), 0.0);
}

TEST(PhaseTraffic, HeatmapAsciiShape)
{
    const MeshTopology mesh(unitSpec(3));
    PhaseTraffic phase(mesh);
    phase.addFlow(0, 1, 1e6);
    const std::string map = phase.heatmapAscii(mesh);
    // 3 device rows + 2 vertical-link rows.
    int lines = 0;
    for (const char c : map)
        lines += c == '\n';
    EXPECT_EQ(lines, 5);
    EXPECT_NE(map.find('o'), std::string::npos);
}

TEST(PhaseTraffic, WorksOnSwitchTopologies)
{
    const auto dgx = SwitchClusterTopology::dgx(2);
    PhaseTraffic phase(dgx);
    phase.addFlow(0, 8, 1e6);
    EXPECT_EQ(phase.busyLinkCount(), 4);
    EXPECT_GT(phase.phaseTime(), 0.0);
}
