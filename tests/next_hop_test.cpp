/**
 * @file
 * Equivalence tests for the compressed next-hop route storage:
 *  - property: PathWalker walks under the next-hop table reconstruct
 *    the CSR-arena routes link by link on mesh and switch-cluster
 *    topologies, and the per-pair scalars are bitwise identical;
 *  - regression: one fig-style cell (comm eval + engine run) produces
 *    bitwise identical numbers under both storages;
 *  - policy: Auto selects the arena below the device threshold and the
 *    compressed matrix at or above it;
 *  - footprint: the compressed storage is strictly smaller and the
 *    addFlow hot path stays allocation-free under it.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

#include "core/moentwine.hh"

// Counting global allocator: lets the walk/addFlow tests assert the
// compressed hot path performs zero heap allocation. Atomic because
// the concurrency test's worker threads allocate (computeRoute).
namespace {
std::atomic<std::size_t> g_allocCount{0};
} // namespace

void *
operator new(std::size_t size)
{
    ++g_allocCount;
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

using namespace moentwine;

namespace {

/**
 * Assert that @p nh (forced next-hop storage) reproduces @p csr
 * (forced CSR storage) exactly: link-by-link walks and bitwise-equal
 * per-pair scalars for every device pair.
 */
void
expectStoragesEquivalent(const Topology &csr, const Topology &nh)
{
    ASSERT_EQ(csr.numDevices(), nh.numDevices());
    nh.finalizeRoutes();
    ASSERT_TRUE(nh.usingNextHopRoutes());
    csr.finalizeRoutes();
    ASSERT_FALSE(csr.usingNextHopRoutes());
    const int devices = csr.numDevices();
    for (DeviceId s = 0; s < devices; ++s) {
        for (DeviceId d = 0; d < devices; ++d) {
            const PathView arena = csr.route(s, d);
            std::size_t i = 0;
            for (const LinkId l : nh.walk(s, d)) {
                ASSERT_LT(i, arena.size()) << "pair " << s << "->" << d;
                EXPECT_EQ(l, arena[i]) << "pair " << s << "->" << d
                                       << " hop " << i;
                ++i;
            }
            EXPECT_EQ(i, arena.size()) << "pair " << s << "->" << d;

            EXPECT_EQ(nh.hops(s, d), csr.hops(s, d));
            // Bitwise equality, not EXPECT_DOUBLE_EQ: both storages
            // accumulate the scalars in computeRoute() link order, so
            // the doubles must be identical, which is what makes the
            // representations interchangeable mid-figure.
            EXPECT_EQ(nh.pathLatency(s, d), csr.pathLatency(s, d));
            EXPECT_EQ(nh.pathInvBandwidthSum(s, d),
                      csr.pathInvBandwidthSum(s, d));
            if (s != d) {
                EXPECT_EQ(nh.pathBandwidth(s, d), csr.pathBandwidth(s, d));
            }
        }
    }
}

} // namespace

TEST(NextHop, MeshWalksReconstructCsrRoutes)
{
    MeshTopology csr = MeshTopology::waferRow(2, 4);
    csr.setRouteStorage(RouteStorageKind::CsrArena);
    MeshTopology nh = MeshTopology::waferRow(2, 4);
    nh.setRouteStorage(RouteStorageKind::NextHop);
    expectStoragesEquivalent(csr, nh);
}

TEST(NextHop, SingleWaferMeshWalksReconstructCsrRoutes)
{
    MeshTopology csr = MeshTopology::singleWafer(5);
    csr.setRouteStorage(RouteStorageKind::CsrArena);
    MeshTopology nh = MeshTopology::singleWafer(5);
    nh.setRouteStorage(RouteStorageKind::NextHop);
    expectStoragesEquivalent(csr, nh);
}

TEST(NextHop, SwitchClusterWalksReconstructCsrRoutes)
{
    SwitchClusterTopology csr = SwitchClusterTopology::dgx(3);
    csr.setRouteStorage(RouteStorageKind::CsrArena);
    SwitchClusterTopology nh = SwitchClusterTopology::dgx(3);
    nh.setRouteStorage(RouteStorageKind::NextHop);
    expectStoragesEquivalent(csr, nh);
}

TEST(NextHop, WalksMatchFreshComputeRoute)
{
    // The walker against first principles (not just against the CSR
    // arena): next-hop walks must equal freshly derived XY routes.
    MeshTopology mesh = MeshTopology::waferRow(2, 4);
    mesh.setRouteStorage(RouteStorageKind::NextHop);
    for (DeviceId s = 0; s < mesh.numDevices(); ++s) {
        for (DeviceId d = 0; d < mesh.numDevices(); ++d) {
            const auto fresh = mesh.computeRoute(s, d);
            std::size_t i = 0;
            for (const LinkId l : mesh.walk(s, d)) {
                ASSERT_LT(i, fresh.size());
                EXPECT_EQ(l, fresh[i]);
                ++i;
            }
            EXPECT_EQ(i, fresh.size());
        }
    }
}

TEST(NextHop, RouteMaterialisesIdenticalPaths)
{
    // route() stays PathView-compatible under the compressed storage
    // (scratch-backed, overwritten by the next call).
    MeshTopology mesh = MeshTopology::singleWafer(4);
    mesh.setRouteStorage(RouteStorageKind::NextHop);
    for (DeviceId s = 0; s < mesh.numDevices(); ++s) {
        for (DeviceId d = 0; d < mesh.numDevices(); ++d) {
            const auto fresh = mesh.computeRoute(s, d);
            const PathView view = mesh.route(s, d);
            ASSERT_EQ(view.size(), fresh.size());
            for (std::size_t i = 0; i < fresh.size(); ++i)
                EXPECT_EQ(view[i], fresh[i]);
        }
    }
}

TEST(NextHop, FigCellBitwiseEquivalentAcrossStorages)
{
    // One fig13d-style cell evaluated under both storages must produce
    // bitwise identical communication times.
    SystemConfig sc;
    sc.platform = PlatformKind::WscHer;
    sc.meshN = 4;
    sc.wafers = 2;
    sc.tp = 4;

    sc.routeStorage = RouteStorageKind::CsrArena;
    const System csrSys = System::make(sc);
    sc.routeStorage = RouteStorageKind::NextHop;
    const System nhSys = System::make(sc);
    EXPECT_FALSE(csrSys.topology().usingNextHopRoutes());
    EXPECT_TRUE(nhSys.topology().usingNextHopRoutes());

    const auto a = evaluateCommunication(csrSys.mapping(), qwen3(), 256,
                                         true);
    const auto b = evaluateCommunication(nhSys.mapping(), qwen3(), 256,
                                         true);
    EXPECT_EQ(a.allReduce, b.allReduce);
    EXPECT_EQ(a.dispatch, b.dispatch);
    EXPECT_EQ(a.combine, b.combine);
}

TEST(NextHop, EngineRunBitwiseEquivalentAcrossStorages)
{
    SystemConfig sc;
    sc.platform = PlatformKind::WscEr;
    sc.meshN = 4;
    sc.tp = 4;

    EngineConfig ec;
    ec.model = qwen3();
    ec.schedule = SchedulingMode::DecodeOnly;
    ec.decodeTokensPerGroup = 64;
    ec.workload.mode = GatingMode::MixedScenario;
    ec.balancer = BalancerKind::TopologyAware;
    ec.beta = 3;

    sc.routeStorage = RouteStorageKind::CsrArena;
    const System csrSys = System::make(sc);
    sc.routeStorage = RouteStorageKind::NextHop;
    const System nhSys = System::make(sc);

    InferenceEngine csrEngine(csrSys.mapping(), ec);
    InferenceEngine nhEngine(nhSys.mapping(), ec);
    const auto csrStats = csrEngine.run(12);
    const auto nhStats = nhEngine.run(12);
    ASSERT_EQ(csrStats.size(), nhStats.size());
    for (std::size_t i = 0; i < csrStats.size(); ++i) {
        EXPECT_EQ(csrStats[i].layerTime(ec.pipelineStages),
                  nhStats[i].layerTime(ec.pipelineStages))
            << "iteration " << i;
        EXPECT_EQ(csrStats[i].allReduce, nhStats[i].allReduce);
        EXPECT_EQ(csrStats[i].dispatch, nhStats[i].dispatch);
        EXPECT_EQ(csrStats[i].combine, nhStats[i].combine);
    }
}

TEST(NextHop, AutoPolicySelectsByDeviceCount)
{
    // Below the threshold Auto keeps the CSR arena.
    SwitchClusterTopology small = SwitchClusterTopology::dgx(4);
    EXPECT_EQ(small.activeRouteStorage(), RouteStorageKind::CsrArena);
    small.finalizeRoutes();
    EXPECT_FALSE(small.usingNextHopRoutes());

    // At/above the threshold (64 nodes × 8 = 512 devices) Auto builds
    // the compressed matrix; switch routes stay cheap to verify.
    SwitchClusterTopology big = SwitchClusterTopology::dgx(64);
    ASSERT_GE(big.numDevices(), Topology::kNextHopAutoThreshold);
    EXPECT_EQ(big.activeRouteStorage(), RouteStorageKind::NextHop);
    big.finalizeRoutes();
    EXPECT_TRUE(big.usingNextHopRoutes());
    // Spot-check walks on the auto-selected storage.
    for (DeviceId s = 0; s < big.numDevices(); s += 37) {
        for (DeviceId d = 0; d < big.numDevices(); d += 41) {
            const auto fresh = big.computeRoute(s, d);
            std::size_t i = 0;
            for (const LinkId l : big.walk(s, d)) {
                ASSERT_LT(i, fresh.size());
                EXPECT_EQ(l, fresh[i]);
                ++i;
            }
            EXPECT_EQ(i, fresh.size());
        }
    }
}

TEST(NextHop, CompressedStorageIsSmaller)
{
    MeshTopology mesh = MeshTopology::waferRow(2, 8);
    mesh.setRouteStorage(RouteStorageKind::CsrArena);
    const std::size_t csrBytes = mesh.routeStorageBytes();
    mesh.setRouteStorage(RouteStorageKind::NextHop);
    const std::size_t nhBytes = mesh.routeStorageBytes();
    EXPECT_LT(nhBytes, csrBytes);
}

TEST(NextHop, AddFlowIsAllocationFreeUnderNextHopStorage)
{
    MeshTopology mesh = MeshTopology::waferRow(2, 4);
    mesh.setRouteStorage(RouteStorageKind::NextHop);
    PhaseTraffic traffic(mesh);
    // Warm up: the first flow builds the next-hop matrix.
    traffic.addFlow(0, mesh.numDevices() - 1, 64.0);

    const std::size_t before = g_allocCount.load();
    for (DeviceId s = 0; s < mesh.numDevices(); ++s)
        for (DeviceId d = 0; d < mesh.numDevices(); ++d)
            traffic.addFlow(s, d, 128.0);
    EXPECT_EQ(g_allocCount.load(), before)
        << "next-hop addFlow must not allocate";
}

TEST(NextHop, ConcurrentWalksOnSharedTopologyAgree)
{
    // Worker threads share one finalized next-hop topology (the sweep
    // contract); concurrent walks must all reconstruct the XY routes.
    MeshTopology mesh = MeshTopology::waferRow(2, 4);
    mesh.setRouteStorage(RouteStorageKind::NextHop);
    mesh.finalizeRoutes();
    const Topology &shared = mesh;

    std::vector<std::thread> workers;
    std::vector<int> mismatches(4, 0);
    for (int w = 0; w < 4; ++w) {
        workers.emplace_back([&shared, &mismatches, w]() {
            for (DeviceId s = 0; s < shared.numDevices(); ++s) {
                for (DeviceId d = 0; d < shared.numDevices(); ++d) {
                    const auto fresh = shared.computeRoute(s, d);
                    std::size_t i = 0;
                    for (const LinkId l : shared.walk(s, d)) {
                        if (i >= fresh.size() || l != fresh[i])
                            ++mismatches[static_cast<std::size_t>(w)];
                        ++i;
                    }
                    if (i != fresh.size())
                        ++mismatches[static_cast<std::size_t>(w)];
                }
            }
        });
    }
    for (auto &t : workers)
        t.join();
    for (const int m : mismatches)
        EXPECT_EQ(m, 0);
}
