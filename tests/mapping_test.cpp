/**
 * @file
 * Tests for the parallelism mappings — the paper's core contribution.
 * Covers the Fig. 8/10 worked examples exactly, plus partition and
 * geometry invariants swept over mesh scales and TP shapes.
 */

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "mapping/baseline_mapping.hh"
#include "mapping/er_mapping.hh"
#include "mapping/ftd.hh"
#include "mapping/parallelism.hh"
#include "topology/mesh.hh"

using namespace moentwine;

// ------------------------------------------------------ decomposeTp ----

TEST(Parallelism, DecomposePrefersSquare)
{
    const auto p = decomposeTp(4, 4, 4);
    EXPECT_EQ(p.tpX, 2);
    EXPECT_EQ(p.tpY, 2);
    EXPECT_EQ(p.tp(), 4);
}

TEST(Parallelism, DecomposeRespectsDivisibility)
{
    // TP=8 on a 4×4 mesh: 2×4 is the only balanced valid pair.
    const auto p = decomposeTp(8, 4, 4);
    EXPECT_EQ(p.tpX * p.tpY, 8);
    EXPECT_EQ(4 % p.tpX, 0);
    EXPECT_EQ(4 % p.tpY, 0);
}

TEST(Parallelism, DecomposeTp18On6x6)
{
    // The paper's 6×6 TP=18 configuration (Fig. 13(c)).
    const auto p = decomposeTp(18, 6, 6);
    EXPECT_EQ(p.tp(), 18);
    EXPECT_EQ(6 % p.tpX, 0);
    EXPECT_EQ(6 % p.tpY, 0);
}

TEST(Parallelism, DpComplementsTp)
{
    const auto p = decomposeTp(4, 4, 4);
    EXPECT_EQ(p.dp(16), 4);
}

TEST(Parallelism, LabelMentionsShape)
{
    ParallelismConfig p;
    p.tpX = 2;
    p.tpY = 4;
    EXPECT_EQ(p.label(), "TP8(2x4)");
}

// -------------------------------------------- paper worked example ----

TEST(ErMapping, PaperFig8cGroupMembership)
{
    // 4×4 mesh, TP=(2,2): TP group (0,0) must be the stride-2 residue
    // class {(0,0),(0,2),(2,0),(2,2)} (1-based {1,1},{1,3},{3,1},{3,3}).
    const MeshTopology mesh = MeshTopology::singleWafer(4);
    const ErMapping er(mesh, ParallelismConfig{2, 2});
    EXPECT_EQ(er.strideRows(), 2);
    EXPECT_EQ(er.strideCols(), 2);

    std::set<DeviceId> expect{
        mesh.deviceAt(0, 0), mesh.deviceAt(0, 2), mesh.deviceAt(2, 0),
        mesh.deviceAt(2, 2)};
    const int g = er.tpGroupOf(mesh.deviceAt(0, 0));
    std::set<DeviceId> actual(er.tpGroups()[std::size_t(g)].begin(),
                              er.tpGroups()[std::size_t(g)].end());
    EXPECT_EQ(actual, expect);
}

TEST(ErMapping, PaperFig10aFtdExample)
{
    // FTD_{2,2} = {D_{x,y} | 2 < x ≤ 4, 2 < y ≤ 4} (1-based) — the
    // bottom-right 2×2 block.
    const MeshTopology mesh = MeshTopology::singleWafer(4);
    const ErMapping er(mesh, ParallelismConfig{2, 2});
    const int f = er.ftdOf(mesh.deviceAt(3, 3));
    std::set<DeviceId> expect{
        mesh.deviceAt(2, 2), mesh.deviceAt(2, 3), mesh.deviceAt(3, 2),
        mesh.deviceAt(3, 3)};
    std::set<DeviceId> actual(er.ftds()[std::size_t(f)].begin(),
                              er.ftds()[std::size_t(f)].end());
    EXPECT_EQ(actual, expect);
}

TEST(ErMapping, PaperAverageHops)
{
    // 2×2-area FTD: average hops 4/3 ≈ 1.33 (paper: "1.3").
    const MeshTopology mesh = MeshTopology::singleWafer(4);
    const ErMapping er(mesh, ParallelismConfig{2, 2});
    for (const auto &ftd : er.ftds())
        EXPECT_NEAR(ftdAverageHops(mesh, ftd), 4.0 / 3.0, 1e-12);
}

TEST(BaselineMapping, PaperAverageHops)
{
    // 3×3-area FTD: average hops 8/3 ≈ 2.67 (paper: "2.7").
    const MeshTopology mesh = MeshTopology::singleWafer(4);
    const BaselineMapping base(mesh, ParallelismConfig{2, 2});
    for (const auto &ftd : base.ftds())
        EXPECT_NEAR(ftdAverageHops(mesh, ftd), 8.0 / 3.0, 1e-12);
}

TEST(BaselineMapping, PaperFig8bFtdMembership)
{
    // FTD containing (0,0) pairs the same within-block offset across
    // blocks: {(0,0),(0,2),(2,0),(2,2)}.
    const MeshTopology mesh = MeshTopology::singleWafer(4);
    const BaselineMapping base(mesh, ParallelismConfig{2, 2});
    const int f = base.ftdOf(mesh.deviceAt(0, 0));
    std::set<DeviceId> expect{
        mesh.deviceAt(0, 0), mesh.deviceAt(0, 2), mesh.deviceAt(2, 0),
        mesh.deviceAt(2, 2)};
    std::set<DeviceId> actual(base.ftds()[std::size_t(f)].begin(),
                              base.ftds()[std::size_t(f)].end());
    EXPECT_EQ(actual, expect);
}

TEST(BaselineMapping, GroupsAreContiguousBlocks)
{
    const MeshTopology mesh = MeshTopology::singleWafer(4);
    const BaselineMapping base(mesh, ParallelismConfig{2, 2});
    const int g = base.tpGroupOf(mesh.deviceAt(0, 0));
    std::set<DeviceId> expect{
        mesh.deviceAt(0, 0), mesh.deviceAt(0, 1), mesh.deviceAt(1, 0),
        mesh.deviceAt(1, 1)};
    std::set<DeviceId> actual(base.tpGroups()[std::size_t(g)].begin(),
                              base.tpGroups()[std::size_t(g)].end());
    EXPECT_EQ(actual, expect);
}

TEST(Mapping, FtdIntersectionsBaselineVsEr)
{
    const MeshTopology mesh = MeshTopology::singleWafer(4);
    const BaselineMapping base(mesh, ParallelismConfig{2, 2});
    const ErMapping er(mesh, ParallelismConfig{2, 2});
    EXPECT_GT(countFtdIntersections(mesh, base.ftds()), 0);
    EXPECT_EQ(countFtdIntersections(mesh, er.ftds()), 0);
}

TEST(Mapping, ErAllReduceCostsTwiceBaseline)
{
    // Fig. 8(d): entwined two-hop rings double the all-reduce latency.
    const MeshTopology mesh = MeshTopology::singleWafer(4);
    const BaselineMapping base(mesh, ParallelismConfig{2, 2});
    const ErMapping er(mesh, ParallelismConfig{2, 2});
    const double bytes = 8e6;
    const double tBase = base.allReduce(bytes, true).time;
    const double tEr = er.allReduce(bytes, true).time;
    EXPECT_NEAR(tEr, 2.0 * tBase, 1e-9);
}

TEST(Mapping, DispatchSourceWithAllGatherIsNearest)
{
    const MeshTopology mesh = MeshTopology::singleWafer(4);
    const ErMapping er(mesh, ParallelismConfig{2, 2});
    // Group of device (0,0) = {(0,0),(0,2),(2,0),(2,2)}. For an expert
    // at (3,3), the nearest member is (2,2).
    const int g = er.tpGroupOf(mesh.deviceAt(0, 0));
    const DeviceId src =
        er.dispatchSource(g, 0, mesh.deviceAt(3, 3), true);
    EXPECT_EQ(src, mesh.deviceAt(2, 2));
}

TEST(Mapping, DispatchSourceWithoutAllGatherIsOwner)
{
    const MeshTopology mesh = MeshTopology::singleWafer(4);
    const ErMapping er(mesh, ParallelismConfig{2, 2});
    const int g = er.tpGroupOf(mesh.deviceAt(0, 0));
    const DeviceId owner = er.tpGroups()[std::size_t(g)][2];
    EXPECT_EQ(er.dispatchSource(g, 2, mesh.deviceAt(3, 3), false),
              owner);
}

TEST(Mapping, MeshDedupFactorIsOne)
{
    const MeshTopology mesh = MeshTopology::singleWafer(4);
    const ErMapping er(mesh, ParallelismConfig{2, 2});
    EXPECT_DOUBLE_EQ(er.dispatchDedupFactor(0, 15, 8), 1.0);
}

// ------------------------------------------------ invariant sweeps ----

/** (meshN, tpX, tpY) sweep covering the paper's configurations. */
class MappingInvariants
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
  protected:
    int meshN() const { return std::get<0>(GetParam()); }
    ParallelismConfig
    par() const
    {
        return ParallelismConfig{std::get<1>(GetParam()),
                                 std::get<2>(GetParam())};
    }
};

TEST_P(MappingInvariants, GroupsPartitionDevices)
{
    const MeshTopology mesh = MeshTopology::singleWafer(meshN());
    for (const bool er : {false, true}) {
        std::unique_ptr<Mapping> m;
        if (er)
            m = std::make_unique<ErMapping>(mesh, par());
        else
            m = std::make_unique<BaselineMapping>(mesh, par());
        EXPECT_EQ(m->tp(), par().tp());
        EXPECT_EQ(m->dp() * m->tp(), mesh.numDevices());
        std::set<DeviceId> seen;
        for (const auto &group : m->tpGroups()) {
            EXPECT_EQ(group.size(), std::size_t(par().tp()));
            seen.insert(group.begin(), group.end());
        }
        EXPECT_EQ(seen.size(), std::size_t(mesh.numDevices()));
    }
}

TEST_P(MappingInvariants, FtdsPartitionDevices)
{
    const MeshTopology mesh = MeshTopology::singleWafer(meshN());
    for (const bool er : {false, true}) {
        std::unique_ptr<Mapping> m;
        if (er)
            m = std::make_unique<ErMapping>(mesh, par());
        else
            m = std::make_unique<BaselineMapping>(mesh, par());
        std::set<DeviceId> seen;
        for (const auto &ftd : m->ftds())
            seen.insert(ftd.begin(), ftd.end());
        EXPECT_EQ(seen.size(), std::size_t(mesh.numDevices()));
    }
}

TEST_P(MappingInvariants, EveryFtdCoversAllGroups)
{
    // The defining FTD property: one member of every TP group.
    const MeshTopology mesh = MeshTopology::singleWafer(meshN());
    for (const bool er : {false, true}) {
        std::unique_ptr<Mapping> m;
        if (er)
            m = std::make_unique<ErMapping>(mesh, par());
        else
            m = std::make_unique<BaselineMapping>(mesh, par());
        for (const auto &ftd : m->ftds()) {
            std::set<int> groups;
            for (const DeviceId d : ftd)
                groups.insert(m->tpGroupOf(d));
            EXPECT_EQ(groups.size(), std::size_t(m->dp()));
        }
    }
}

TEST_P(MappingInvariants, ReverseIndicesConsistent)
{
    const MeshTopology mesh = MeshTopology::singleWafer(meshN());
    const ErMapping er(mesh, par());
    for (DeviceId d = 0; d < mesh.numDevices(); ++d) {
        const int g = er.tpGroupOf(d);
        const int r = er.tpRankOf(d);
        EXPECT_EQ(er.tpGroups()[std::size_t(g)][std::size_t(r)], d);
        const int f = er.ftdOf(d);
        const auto &ftd = er.ftds()[std::size_t(f)];
        EXPECT_NE(std::find(ftd.begin(), ftd.end(), d), ftd.end());
    }
}

TEST_P(MappingInvariants, ErFtdsAreCompactAndDisjoint)
{
    const MeshTopology mesh = MeshTopology::singleWafer(meshN());
    const ErMapping er(mesh, par());
    for (const auto &ftd : er.ftds()) {
        const BoundingBox box = ftdBoundingBox(mesh, ftd);
        EXPECT_EQ(box.area(), static_cast<int>(ftd.size()));
    }
    EXPECT_EQ(countFtdIntersections(mesh, er.ftds()), 0);
}

TEST_P(MappingInvariants, ErFtdHopsNeverWorseThanBaseline)
{
    const MeshTopology mesh = MeshTopology::singleWafer(meshN());
    const BaselineMapping base(mesh, par());
    const ErMapping er(mesh, par());
    if (base.dp() < 2)
        GTEST_SKIP() << "single group: FTDs are singletons";
    EXPECT_LE(ftdAverageHops(mesh, er.ftds().front()),
              ftdAverageHops(mesh, base.ftds().front()) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MappingInvariants,
    ::testing::Values(std::make_tuple(4, 2, 2),   // 4×4 TP=4 (paper)
                      std::make_tuple(4, 1, 2),   // TP=2
                      std::make_tuple(4, 2, 4),   // TP=8
                      std::make_tuple(4, 4, 4),   // TP=16
                      std::make_tuple(6, 2, 2),   // 6×6 TP=4
                      std::make_tuple(6, 2, 3),   // TP=6
                      std::make_tuple(6, 3, 6),   // TP=18
                      std::make_tuple(8, 2, 2),   // 8×8 TP=4
                      std::make_tuple(8, 2, 4),   // TP=8
                      std::make_tuple(8, 4, 4))); // TP=16
