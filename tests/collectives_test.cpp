/**
 * @file
 * Unit tests for the collective-communication timing models.
 */

#include <gtest/gtest.h>

#include "network/collectives.hh"
#include "topology/mesh.hh"

using namespace moentwine;

namespace {

MeshSpec
unitSpec(int n)
{
    MeshSpec spec;
    spec.meshRows = n;
    spec.meshCols = n;
    spec.linkBandwidth = 1e9;
    spec.linkLatency = 1e-6;
    return spec;
}

} // namespace

TEST(RingCollective, SingleMemberIsFree)
{
    const MeshTopology mesh(unitSpec(2));
    const auto result =
        ringCollective(mesh, {{0}}, 1e6, RingOp::AllReduce, false);
    EXPECT_DOUBLE_EQ(result.time, 0.0);
    EXPECT_EQ(result.traffic.busyLinkCount(), 0);
}

TEST(RingCollective, NeighbourRingMatchesFormula)
{
    const MeshTopology mesh(unitSpec(2));
    // Ring over all 4 devices of a 2×2 mesh in cycle order, unit hops.
    const std::vector<DeviceId> ring{
        mesh.deviceAt(0, 0), mesh.deviceAt(0, 1), mesh.deviceAt(1, 1),
        mesh.deviceAt(1, 0)};
    const double bytes = 4e6;
    const auto ar =
        ringCollective(mesh, {ring}, bytes, RingOp::AllReduce, false);
    // chunk = 1e6 over 1 GB/s = 1 ms per round, 2·(4-1) = 6 rounds;
    // bidirectional sends expose the 1 us hop latency only 3 times.
    EXPECT_NEAR(ar.time, 6.0 * 1e-3 + 3.0 * 1e-6, 1e-9);
}

TEST(RingCollective, ReduceScatterIsHalfOfAllReduce)
{
    const MeshTopology mesh(unitSpec(2));
    const std::vector<DeviceId> ring{0, 1, 3, 2};
    const auto rs =
        ringCollective(mesh, {ring}, 4e6, RingOp::ReduceScatter, false);
    const auto ag =
        ringCollective(mesh, {ring}, 4e6, RingOp::AllGather, false);
    const auto ar =
        ringCollective(mesh, {ring}, 4e6, RingOp::AllReduce, false);
    EXPECT_NEAR(rs.time + ag.time, ar.time, 1e-12);
    EXPECT_NEAR(rs.time, ag.time, 1e-12);
}

TEST(RingCollective, TwoHopRingDoublesTime)
{
    const MeshTopology mesh(unitSpec(4));
    // Unit-hop ring in a corner vs an entwined ring with stride 2.
    const std::vector<DeviceId> unit{
        mesh.deviceAt(0, 0), mesh.deviceAt(0, 1), mesh.deviceAt(1, 1),
        mesh.deviceAt(1, 0)};
    const std::vector<DeviceId> entwined{
        mesh.deviceAt(0, 0), mesh.deviceAt(0, 2), mesh.deviceAt(2, 2),
        mesh.deviceAt(2, 0)};
    const auto a =
        ringCollective(mesh, {unit}, 4e6, RingOp::AllReduce, true);
    const auto b =
        ringCollective(mesh, {entwined}, 4e6, RingOp::AllReduce, true);
    EXPECT_NEAR(b.time, 2.0 * a.time, 1e-9);
}

TEST(RingCollective, StaggeredIgnoresRingIntersections)
{
    const MeshTopology mesh(unitSpec(4));
    // Two entwined rings sharing central links (ER-style).
    const std::vector<DeviceId> r1{
        mesh.deviceAt(0, 0), mesh.deviceAt(0, 2), mesh.deviceAt(2, 2),
        mesh.deviceAt(2, 0)};
    const std::vector<DeviceId> r2{
        mesh.deviceAt(0, 1), mesh.deviceAt(0, 3), mesh.deviceAt(2, 3),
        mesh.deviceAt(2, 1)};
    const auto solo =
        ringCollective(mesh, {r1}, 4e6, RingOp::AllReduce, true);
    const auto both =
        ringCollective(mesh, {r1, r2}, 4e6, RingOp::AllReduce, true);
    EXPECT_NEAR(both.time, solo.time, 1e-12);
}

TEST(RingCollective, UnstaggeredPaysForSharing)
{
    const MeshTopology mesh(unitSpec(4));
    // Two rings with identical edges: a non-staggered schedule must
    // serialise the doubled per-round volume on every shared link,
    // while the staggered schedule alternates rounds for free.
    const std::vector<DeviceId> ring{
        mesh.deviceAt(1, 0), mesh.deviceAt(1, 2), mesh.deviceAt(1, 3),
        mesh.deviceAt(1, 1)};
    const auto staggered = ringCollective(
        mesh, {ring, ring, ring}, 4e6, RingOp::AllReduce, true);
    const auto shared = ringCollective(
        mesh, {ring, ring, ring}, 4e6, RingOp::AllReduce, false);
    EXPECT_GT(shared.time, staggered.time);
}

TEST(RingCollective, TrafficVolumeMatchesRounds)
{
    const MeshTopology mesh(unitSpec(2));
    const std::vector<DeviceId> ring{0, 1, 3, 2};
    const double bytes = 4e6;
    const auto ar =
        ringCollective(mesh, {ring}, bytes, RingOp::AllReduce, false);
    // Each of 4 edges carries 6 rounds × 1 MB chunks.
    EXPECT_NEAR(ar.traffic.totalByteHops(), 4.0 * 6.0 * 1e6, 1.0);
}

TEST(AllToAll, EmptyFlowsAreFree)
{
    const MeshTopology mesh(unitSpec(3));
    const auto r = allToAll(mesh, {});
    EXPECT_DOUBLE_EQ(r.time, 0.0);
}

TEST(AllToAll, TimeIsPhaseTimeOfFlows)
{
    const MeshTopology mesh(unitSpec(3));
    const std::vector<Flow> flows{{0, 2, 2e6}};
    const auto r = allToAll(mesh, flows);
    // 2 hops; serialisation on one link: 2e6/1e9 = 2 ms + 2 us latency.
    EXPECT_NEAR(r.time, 2e-3 + 2e-6, 1e-9);
}

TEST(HierarchicalAllReduce, CheaperThanFlatOnMultiWafer)
{
    MeshSpec spec;
    spec.meshRows = 4;
    spec.meshCols = 4;
    spec.waferGridCols = 2;
    const MeshTopology mesh(spec);

    // Flat entwined ring spanning both wafers (8 members, TP=8 style).
    std::vector<DeviceId> flat;
    for (int c = 0; c < 8; ++c)
        flat.push_back(mesh.deviceAt(0, c));
    const auto flatAr =
        ringCollective(mesh, {flat}, 8e6, RingOp::AllReduce, true);

    // Hierarchical: intra-wafer rings + inter-wafer all-gather.
    std::vector<DeviceId> intra1;
    std::vector<DeviceId> intra2;
    std::vector<std::vector<DeviceId>> inter;
    for (int c = 0; c < 4; ++c) {
        intra1.push_back(mesh.deviceAt(0, c));
        intra2.push_back(mesh.deviceAt(0, c + 4));
        inter.push_back(
            {mesh.deviceAt(0, c), mesh.deviceAt(0, c + 4)});
    }
    const auto hier =
        hierarchicalAllReduce(mesh, {intra1, intra2}, inter, 8e6);
    EXPECT_LT(hier.time, flatAr.time);
}

TEST(HierarchicalAllReduce, TrafficCoversBothStages)
{
    MeshSpec spec;
    spec.meshRows = 2;
    spec.meshCols = 2;
    spec.waferGridCols = 2;
    const MeshTopology mesh(spec);
    const std::vector<std::vector<DeviceId>> intra{
        {mesh.deviceAt(0, 0), mesh.deviceAt(0, 1)},
        {mesh.deviceAt(0, 2), mesh.deviceAt(0, 3)}};
    const std::vector<std::vector<DeviceId>> inter{
        {mesh.deviceAt(0, 0), mesh.deviceAt(0, 2)},
        {mesh.deviceAt(0, 1), mesh.deviceAt(0, 3)}};
    const auto hier = hierarchicalAllReduce(mesh, intra, inter, 2e6);
    EXPECT_GT(hier.time, 0.0);
    EXPECT_GT(hier.traffic.busyLinkCount(), 2);
}
